// Package retry implements context-aware retries with jittered exponential
// backoff. It exists for the long-lived service path (easerd): a resident
// process must ride out transient I/O failures — a model file mid-rewrite, a
// listen address still held by the previous instance during a restart —
// instead of dying on the first error, while still failing promptly on
// permanent ones.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes one retry loop.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first. Must be
	// at least 1.
	MaxAttempts int
	// InitialDelay is the backoff after the first failed attempt.
	InitialDelay time.Duration
	// MaxDelay caps the grown backoff. 0 means "no cap".
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts; values below 1 are
	// rejected (a shrinking backoff is a typo, not a strategy).
	Multiplier float64
	// Jitter randomizes each delay within ±Jitter·delay, in [0, 1]. Jitter
	// decorrelates colliding clients (a fleet of easerds restarting after a
	// deploy should not hammer the filesystem in lockstep).
	Jitter float64
	// PerAttemptTimeout bounds each attempt with its own context deadline.
	// 0 means attempts inherit the loop context unchanged.
	PerAttemptTimeout time.Duration
}

// DefaultPolicy suits startup I/O: five tries across roughly three seconds.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:  5,
		InitialDelay: 100 * time.Millisecond,
		MaxDelay:     2 * time.Second,
		Multiplier:   2,
		Jitter:       0.2,
	}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	switch {
	case p.MaxAttempts < 1:
		return errors.New("retry: MaxAttempts must be at least 1")
	case p.InitialDelay < 0 || p.MaxDelay < 0 || p.PerAttemptTimeout < 0:
		return errors.New("retry: delays must be non-negative")
	case p.Multiplier < 1:
		return errors.New("retry: Multiplier must be at least 1")
	case p.Jitter < 0 || p.Jitter > 1:
		return errors.New("retry: Jitter must be in [0, 1]")
	}
	return nil
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately instead of retrying: the
// operation failed in a way more attempts cannot fix (a corrupt model file,
// a malformed address). A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// randFloat is the jitter source; tests pin it for determinism.
var randFloat = rand.Float64

// sleepCtx waits for d or the context, whichever ends first.
var sleepCtx = func(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// p.MaxAttempts, or ctx is done. Each attempt sees its own context
// (per-attempt timeout applied when configured); backoff sleeps abort as
// soon as ctx is cancelled. The returned error wraps the last attempt's
// error, so errors.Is/As see through it.
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("retry: not attempted: %w", err)
	}
	delay := p.InitialDelay
	var last error
	for attempt := 1; ; attempt++ {
		last = runAttempt(ctx, p, op)
		if last == nil {
			return nil
		}
		if IsPermanent(last) {
			return fmt.Errorf("retry: attempt %d failed permanently: %w", attempt, last)
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry: all %d attempts failed: %w", p.MaxAttempts, last)
		}
		if err := sleepCtx(ctx, jittered(delay, p.Jitter)); err != nil {
			return fmt.Errorf("retry: cancelled after attempt %d: %w (last error: %v)", attempt, err, last)
		}
		delay = nextDelay(delay, p)
	}
}

// runAttempt executes one try under its per-attempt deadline.
func runAttempt(ctx context.Context, p Policy, op func(context.Context) error) error {
	if p.PerAttemptTimeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, p.PerAttemptTimeout)
	defer cancel()
	return op(actx)
}

// jittered spreads d within ±frac·d.
func jittered(d time.Duration, frac float64) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	// Uniform in [1-frac, 1+frac).
	scale := 1 - frac + 2*frac*randFloat()
	return time.Duration(float64(d) * scale)
}

// nextDelay grows the backoff, respecting the cap.
func nextDelay(d time.Duration, p Policy) time.Duration {
	if d <= 0 {
		// A zero initial delay still needs to grow once jitter has nothing to
		// scale; fall back to a millisecond seed so the loop cannot spin hot.
		d = time.Millisecond
	}
	grown := time.Duration(float64(d) * p.Multiplier)
	if p.MaxDelay > 0 && grown > p.MaxDelay {
		return p.MaxDelay
	}
	return grown
}
