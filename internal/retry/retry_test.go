package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fastPolicy keeps tests quick: real sleeps are intercepted below.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts:  4,
		InitialDelay: 10 * time.Millisecond,
		MaxDelay:     40 * time.Millisecond,
		Multiplier:   2,
		Jitter:       0,
	}
}

// captureSleeps replaces the backoff sleep with an instant recorder for the
// duration of one test.
func captureSleeps(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	orig := sleepCtx
	sleepCtx = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}
	t.Cleanup(func() { sleepCtx = orig })
	return &slept
}

func TestValidate(t *testing.T) {
	bad := []func(*Policy){
		func(p *Policy) { p.MaxAttempts = 0 },
		func(p *Policy) { p.InitialDelay = -1 },
		func(p *Policy) { p.MaxDelay = -1 },
		func(p *Policy) { p.PerAttemptTimeout = -1 },
		func(p *Policy) { p.Multiplier = 0.5 },
		func(p *Policy) { p.Jitter = -0.1 },
		func(p *Policy) { p.Jitter = 1.5 },
	}
	for i, mutate := range bad {
		p := DefaultPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad policy accepted: %+v", i, p)
		}
		if err := Do(context.Background(), p, func(context.Context) error { return nil }); err == nil {
			t.Errorf("case %d: Do accepted a bad policy", i)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy rejected: %v", err)
	}
}

func TestSucceedsFirstTry(t *testing.T) {
	slept := captureSleeps(t)
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want nil/1", err, calls)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v before a first-try success", *slept)
	}
}

func TestRetriesThenSucceeds(t *testing.T) {
	slept := captureSleeps(t)
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
	// Zero jitter: delays are exactly the doubled sequence.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("sleep %d = %v, want %v", i, (*slept)[i], d)
		}
	}
}

func TestExhaustsAttempts(t *testing.T) {
	captureSleeps(t)
	base := errors.New("disk on fire")
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return fmt.Errorf("attempt %d: %w", calls, base)
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want MaxAttempts = 4", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("final error %v does not wrap the last attempt's error", err)
	}
}

func TestDelayCapAndGrowth(t *testing.T) {
	slept := captureSleeps(t)
	p := fastPolicy()
	p.MaxAttempts = 6
	err := Do(context.Background(), p, func(context.Context) error { return errors.New("no") })
	if err == nil {
		t.Fatal("want failure")
	}
	want := []time.Duration{10, 20, 40, 40, 40} // ms: doubling, then capped
	for i, ms := range want {
		if (*slept)[i] != time.Duration(ms)*time.Millisecond {
			t.Fatalf("sleep %d = %v, want %dms (all: %v)", i, (*slept)[i], ms, *slept)
		}
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	captureSleeps(t)
	base := errors.New("model file corrupt")
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, base) || !IsPermanent(err) {
		t.Fatalf("error %v lost the permanent marker or cause", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain error reported permanent")
	}
}

func TestContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := fastPolicy()
	p.InitialDelay = time.Hour // real sleep: must be cut short by cancel
	calls := 0
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Do(ctx, p, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v, backoff not interrupted", elapsed)
	}
}

func TestContextAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, fastPolicy(), func(context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("op ran %d times under a dead context", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	captureSleeps(t)
	p := fastPolicy()
	p.MaxAttempts = 2
	p.PerAttemptTimeout = 10 * time.Millisecond
	var deadlines []bool
	err := Do(context.Background(), p, func(ctx context.Context) error {
		_, ok := ctx.Deadline()
		deadlines = append(deadlines, ok)
		// Simulate an attempt that outlives its budget.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if err == nil {
		t.Fatal("want failure after per-attempt timeouts")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap DeadlineExceeded", err)
	}
	for i, ok := range deadlines {
		if !ok {
			t.Fatalf("attempt %d saw no deadline", i)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	defer func(f func() float64) { randFloat = f }(randFloat)
	for _, r := range []float64{0, 0.25, 0.5, 0.999999} {
		randFloat = func() float64 { return r }
		d := jittered(100*time.Millisecond, 0.2)
		lo, hi := 80*time.Millisecond, 120*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("rand=%v: jittered delay %v outside [%v, %v]", r, d, lo, hi)
		}
	}
	if d := jittered(100*time.Millisecond, 0); d != 100*time.Millisecond {
		t.Fatalf("zero jitter changed the delay: %v", d)
	}
}

func TestZeroInitialDelayDoesNotSpin(t *testing.T) {
	slept := captureSleeps(t)
	p := fastPolicy()
	p.InitialDelay = 0
	p.MaxAttempts = 3
	if err := Do(context.Background(), p, func(context.Context) error { return errors.New("no") }); err == nil {
		t.Fatal("want failure")
	}
	// First backoff is the configured zero, but growth seeds at 1ms so later
	// waits are non-zero.
	if (*slept)[0] != 0 || (*slept)[1] <= 0 {
		t.Fatalf("backoff sequence %v, want 0 then positive", *slept)
	}
}
