package jsmini

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustRun(t *testing.T, src string) *Effects {
	t.Helper()
	eff, err := Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return eff
}

func TestFetchCollectsURLs(t *testing.T) {
	eff := mustRun(t, `fetch("a.png"); fetch("b.png");`)
	if len(eff.Fetches) != 2 || eff.Fetches[0] != "a.png" || eff.Fetches[1] != "b.png" {
		t.Fatalf("Fetches = %v", eff.Fetches)
	}
}

func TestWriteConcatenates(t *testing.T) {
	eff := mustRun(t, `write("<p>"); write("x"); write("</p>");`)
	if eff.HTML != "<p>x</p>" {
		t.Fatalf("HTML = %q", eff.HTML)
	}
}

func TestComputeAccumulates(t *testing.T) {
	eff := mustRun(t, `compute(5); compute(2.5);`)
	if math.Abs(eff.ComputeMillis-7.5) > 1e-12 {
		t.Fatalf("ComputeMillis = %v, want 7.5", eff.ComputeMillis)
	}
}

func TestNegativeComputeIgnored(t *testing.T) {
	eff := mustRun(t, `compute(0 - 10);`)
	if eff.ComputeMillis != 0 {
		t.Fatalf("ComputeMillis = %v, want 0", eff.ComputeMillis)
	}
}

func TestVariablesAndArithmetic(t *testing.T) {
	eff := mustRun(t, `
		let x = 3;
		x = x * 2 + 1;
		write("v=" + x);
	`)
	if eff.HTML != "v=7" {
		t.Fatalf("HTML = %q, want v=7", eff.HTML)
	}
}

func TestStringConcatInFetch(t *testing.T) {
	eff := mustRun(t, `
		let base = "img";
		for i = 0 to 3 {
			fetch(base + i + ".png");
		}
	`)
	want := []string{"img0.png", "img1.png", "img2.png"}
	if len(eff.Fetches) != len(want) {
		t.Fatalf("Fetches = %v, want %v", eff.Fetches, want)
	}
	for i := range want {
		if eff.Fetches[i] != want[i] {
			t.Fatalf("Fetches = %v, want %v", eff.Fetches, want)
		}
	}
}

func TestForLoopBounds(t *testing.T) {
	eff := mustRun(t, `let n = 0; for i = 2 to 6 { n = n + 1; } write("" + n);`)
	if eff.HTML != "4" {
		t.Fatalf("HTML = %q, want 4 iterations", eff.HTML)
	}
}

func TestForLoopRestoresOuterVariable(t *testing.T) {
	eff := mustRun(t, `let i = 99; for i = 0 to 3 { } write("" + i);`)
	if eff.HTML != "99" {
		t.Fatalf("HTML = %q, want 99 (loop variable scoped)", eff.HTML)
	}
}

func TestIfElse(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"then", `if 3 > 2 { write("yes"); } else { write("no"); }`, "yes"},
		{"else", `if 1 > 2 { write("yes"); } else { write("no"); }`, "no"},
		{"no else", `if 0 { write("yes"); }`, ""},
		{"string truthy", `if "x" { write("t"); }`, "t"},
		{"comparison ops", `if 2 <= 2 { if 3 != 4 { write("ok"); } }`, "ok"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := mustRun(t, tt.src).HTML; got != tt.want {
				t.Fatalf("HTML = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestOperatorPrecedence(t *testing.T) {
	eff := mustRun(t, `write("" + (2 + 3 * 4));`)
	if eff.HTML != "14" {
		t.Fatalf("HTML = %q, want 14", eff.HTML)
	}
	eff = mustRun(t, `write("" + ((2 + 3) * 4));`)
	if eff.HTML != "20" {
		t.Fatalf("HTML = %q, want 20", eff.HTML)
	}
}

func TestModuloAndDivision(t *testing.T) {
	eff := mustRun(t, `write("" + (7 % 3) + "," + (8 / 2));`)
	if eff.HTML != "1,4" {
		t.Fatalf("HTML = %q, want 1,4", eff.HTML)
	}
}

func TestUnaryMinus(t *testing.T) {
	eff := mustRun(t, `let x = -5; write("" + (0 - x));`)
	if eff.HTML != "5" {
		t.Fatalf("HTML = %q, want 5", eff.HTML)
	}
}

func TestComments(t *testing.T) {
	eff := mustRun(t, "// leading comment\nfetch(\"a\"); // trailing\n")
	if len(eff.Fetches) != 1 {
		t.Fatalf("Fetches = %v", eff.Fetches)
	}
}

func TestStringEscapes(t *testing.T) {
	eff := mustRun(t, `write("a\nb\t\"c\"");`)
	if eff.HTML != "a\nb\t\"c\"" {
		t.Fatalf("HTML = %q", eff.HTML)
	}
}

func TestRuntimeErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"undefined variable", `write(x);`},
		{"assign undefined", `x = 1;`},
		{"fetch number", `fetch(42);`},
		{"compute string", `compute("a");`},
		{"divide by zero", `let x = 1 / 0;`},
		{"modulo by zero", `let x = 1 % 0;`},
		{"subtract strings", `let x = "a" - "b";`},
		{"mixed compare", `if "a" < 3 { }`},
		{"negate string", `let x = -"a";`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Run(tt.src)
			var rte *RuntimeError
			if !errors.As(err, &rte) {
				t.Fatalf("Run(%q) err = %v, want RuntimeError", tt.src, err)
			}
		})
	}
}

func TestSyntaxErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"missing semicolon", `fetch("a")`},
		{"unterminated string", `fetch("a`},
		{"missing paren", `fetch "a";`},
		{"keyword as var", `let for = 1;`},
		{"dangling block", `if 1 { fetch("a");`},
		{"bad number", `let x = 1..2;`},
		{"garbage", `@#$`},
		{"missing to", `for i = 0 5 { }`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Run(tt.src)
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Run(%q) err = %v, want SyntaxError", tt.src, err)
			}
		})
	}
}

func TestStepBudget(t *testing.T) {
	src := `for i = 0 to 1000000 { let x = i * 2; }`
	_, err := RunBounded(src, 1000)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestProgramReusable(t *testing.T) {
	prog, err := ParseProgram(`fetch("a");`)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	for i := 0; i < 3; i++ {
		eff, err := prog.Run(0)
		if err != nil {
			t.Fatalf("Run #%d: %v", i, err)
		}
		if len(eff.Fetches) != 1 {
			t.Fatalf("Run #%d Fetches = %v", i, eff.Fetches)
		}
	}
}

func TestStepsReported(t *testing.T) {
	eff := mustRun(t, `let x = 1; let y = 2;`)
	if eff.Steps <= 0 {
		t.Fatalf("Steps = %d, want > 0", eff.Steps)
	}
}

func TestNumberFormatting(t *testing.T) {
	eff := mustRun(t, `write("" + 2.5 + "," + 3);`)
	if eff.HTML != "2.5,3" {
		t.Fatalf("HTML = %q, want 2.5,3", eff.HTML)
	}
}

// TestPropertyNeverPanics: arbitrary input must produce an error or effects,
// never a panic or a hang (step budget bounds execution).
func TestPropertyNeverPanics(t *testing.T) {
	f := func(s string) bool {
		eff, err := RunBounded(s, 10_000)
		return err != nil || eff != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLoopFetchCount: generated fetch loops produce exactly the
// requested number of fetches.
func TestPropertyLoopFetchCount(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n % 50)
		src := strings.ReplaceAll(`for i = 0 to N { fetch("u" + i); }`, "N",
			strings.TrimSpace(strings.Repeat(" ", 1)+itoa(count)))
		eff, err := Run(src)
		return err == nil && len(eff.Fetches) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
