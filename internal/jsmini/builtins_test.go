package jsmini

import (
	"errors"
	"testing"
)

func TestWhileLoop(t *testing.T) {
	eff := mustRun(t, `
		let n = 0;
		let total = 0;
		while n < 5 {
			total = total + n;
			n = n + 1;
		}
		write("" + total);
	`)
	if eff.HTML != "10" {
		t.Fatalf("HTML = %q, want 10", eff.HTML)
	}
}

func TestWhileFalseNeverRuns(t *testing.T) {
	eff := mustRun(t, `while 0 { write("no"); }`)
	if eff.HTML != "" {
		t.Fatalf("HTML = %q, want empty", eff.HTML)
	}
}

func TestWhileHitsStepBudget(t *testing.T) {
	_, err := RunBounded(`let x = 1; while x { x = 1; }`, 500)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestWhileDrivenFetches(t *testing.T) {
	eff := mustRun(t, `
		let i = 0;
		while i < 3 {
			fetch("w" + i + ".png");
			i = i + 1;
		}
	`)
	if len(eff.Fetches) != 3 || eff.Fetches[2] != "w2.png" {
		t.Fatalf("Fetches = %v", eff.Fetches)
	}
}

func TestLen(t *testing.T) {
	eff := mustRun(t, `write("" + len("hello"));`)
	if eff.HTML != "5" {
		t.Fatalf("HTML = %q, want 5", eff.HTML)
	}
}

func TestLenNeedsString(t *testing.T) {
	_, err := Run(`let x = len(5);`)
	var rte *RuntimeError
	if !errors.As(err, &rte) {
		t.Fatalf("err = %v, want RuntimeError", err)
	}
}

func TestFloor(t *testing.T) {
	eff := mustRun(t, `write("" + floor(3.9) + "," + floor(0 - 1.2));`)
	if eff.HTML != "3,-2" {
		t.Fatalf("HTML = %q, want 3,-2", eff.HTML)
	}
}

func TestMinMax(t *testing.T) {
	eff := mustRun(t, `write("" + min(3, 7) + "," + max(3, 7));`)
	if eff.HTML != "3,7" {
		t.Fatalf("HTML = %q, want 3,7", eff.HTML)
	}
}

func TestBuiltinArityErrors(t *testing.T) {
	for _, src := range []string{
		`let x = len("a", "b");`,
		`let x = floor(1, 2);`,
		`let x = min(1);`,
		`let x = max(1, 2, 3);`,
		`let x = min("a", 2);`,
	} {
		_, err := Run(src)
		var rte *RuntimeError
		if !errors.As(err, &rte) {
			t.Fatalf("Run(%q) err = %v, want RuntimeError", src, err)
		}
	}
}

func TestBuiltinsCompose(t *testing.T) {
	eff := mustRun(t, `
		let url = "background.png";
		if len(url) > 10 {
			fetch(url);
		}
		let budget = min(len(url) * 2, 30);
		compute(budget);
	`)
	if len(eff.Fetches) != 1 {
		t.Fatalf("Fetches = %v", eff.Fetches)
	}
	if eff.ComputeMillis != 28 {
		t.Fatalf("ComputeMillis = %v, want 28 (min(28, 30))", eff.ComputeMillis)
	}
}

func TestBuiltinNamesReservedAsVariables(t *testing.T) {
	for _, src := range []string{`let len = 1;`, `let while = 2;`, `let min = 3;`} {
		_, err := Run(src)
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Fatalf("Run(%q) err = %v, want SyntaxError", src, err)
		}
	}
}
