// Package jsmini implements a small script language standing in for the
// JavaScript embedded in the benchmark webpages.
//
// Section 4.1 of the paper observes that scripts are the hard case for
// computation reordering: "there is no simple approach to find out if they
// will generate new data transmission without executing them". Both browser
// pipelines therefore *execute* scripts during the data-transmission phase;
// what a script does — fetch objects, write markup into the document, or
// just burn CPU — is only known after evaluation. jsmini gives the benchmark
// pages scripts with exactly those three observable effects.
//
// The language: let bindings, assignment, arithmetic on numbers and string
// concatenation with +, comparisons, if/else, bounded for loops, and the
// three effectful builtins fetch(expr), write(expr) and compute(expr).
package jsmini

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Effects is everything a script did that the browser can observe.
type Effects struct {
	// Fetches lists URLs requested with fetch(), in order.
	Fetches []string
	// HTML is the concatenation of all write() output, to be parsed into
	// the document.
	HTML string
	// ComputeMillis is the extra CPU work requested via compute(), in
	// simulated milliseconds.
	ComputeMillis float64
	// Steps is the number of interpreter steps executed.
	Steps int
}

// DefaultMaxSteps bounds script execution (scripts in the corpus are tiny;
// the bound exists so corrupted input cannot hang a simulation).
const DefaultMaxSteps = 1_000_000

// ErrStepBudget is returned when a script exceeds its step budget.
var ErrStepBudget = errors.New("jsmini: step budget exceeded")

// SyntaxError describes a parse failure.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsmini: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// RuntimeError describes an evaluation failure.
type RuntimeError struct {
	Msg string
}

func (e *RuntimeError) Error() string {
	return "jsmini: runtime error: " + e.Msg
}

// Run parses and executes src with the default step budget.
func Run(src string) (*Effects, error) {
	return RunBounded(src, DefaultMaxSteps)
}

// RunBounded parses and executes src with an explicit step budget.
func RunBounded(src string, maxSteps int) (*Effects, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return prog.Run(maxSteps)
}

// Program is a parsed script, reusable across runs.
type Program struct {
	stmts []stmt
}

// ParseProgram parses src into an executable Program.
func ParseProgram(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmts, err := p.parseStmts(false)
	if err != nil {
		return nil, err
	}
	return &Program{stmts: stmts}, nil
}

// Run executes the program.
func (p *Program) Run(maxSteps int) (*Effects, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	ev := &evaluator{
		vars:     make(map[string]value),
		maxSteps: maxSteps,
		effects:  &Effects{},
	}
	var html strings.Builder
	ev.html = &html
	if err := ev.execBlock(p.stmts); err != nil {
		return nil, err
	}
	ev.effects.HTML = html.String()
	ev.effects.Steps = ev.steps
	return ev.effects, nil
}

// ---- lexer ----

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokPunct
)

type tok struct {
	kind tokKind
	text string
	num  float64
	off  int
}

var keywords = map[string]bool{
	"let": true, "for": true, "to": true, "if": true, "else": true,
	"while": true, "fetch": true, "write": true, "compute": true,
	"len": true, "floor": true, "min": true, "max": true,
}

func lex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentByte(src[i]) {
				i++
			}
			toks = append(toks, tok{kind: tokIdent, text: src[start:i], off: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			f, err := strconv.ParseFloat(src[start:i], 64)
			if err != nil {
				return nil, &SyntaxError{Offset: start, Msg: "bad number " + src[start:i]}
			}
			toks = append(toks, tok{kind: tokNumber, num: f, off: start})
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			start := i
			for i < n && src[i] != quote {
				if src[i] == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[i])
					}
					i++
					continue
				}
				sb.WriteByte(src[i])
				i++
			}
			if i >= n {
				return nil, &SyntaxError{Offset: start - 1, Msg: "unterminated string"}
			}
			i++
			toks = append(toks, tok{kind: tokString, text: sb.String(), off: start - 1})
		case strings.ContainsRune("+-*/%(){};=<>!,", rune(c)):
			start := i
			text := string(c)
			if i+1 < n {
				two := src[i : i+2]
				if two == "==" || two == "!=" || two == "<=" || two == ">=" {
					text = two
					i++
				}
			}
			i++
			toks = append(toks, tok{kind: tokPunct, text: text, off: start})
		default:
			return nil, &SyntaxError{Offset: i, Msg: fmt.Sprintf("unexpected byte %q", c)}
		}
	}
	toks = append(toks, tok{kind: tokEOF, off: n})
	return toks, nil
}

func isIdentStart(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_'
}

func isIdentByte(b byte) bool {
	return isIdentStart(b) || b >= '0' && b <= '9'
}

// ---- AST ----

type stmt interface{ isStmt() }

type letStmt struct {
	name string
	expr expr
}

type assignStmt struct {
	name string
	expr expr
}

type callStmt struct {
	builtin string // fetch, write, compute
	arg     expr
}

type forStmt struct {
	name     string
	from, to expr
	body     []stmt
}

type whileStmt struct {
	cond expr
	body []stmt
}

type ifStmt struct {
	cond      expr
	then, alt []stmt
	hasElse   bool
}

func (letStmt) isStmt()    {}
func (assignStmt) isStmt() {}
func (callStmt) isStmt()   {}
func (forStmt) isStmt()    {}
func (whileStmt) isStmt()  {}
func (ifStmt) isStmt()     {}

type expr interface{ isExpr() }

type numLit struct{ v float64 }
type strLit struct{ v string }
type varRef struct{ name string }
type binOp struct {
	op   string
	l, r expr
}
type negOp struct{ e expr }
type callExpr struct {
	fn   string // len, floor, min, max
	args []expr
}

func (numLit) isExpr()   {}
func (strLit) isExpr()   {}
func (varRef) isExpr()   {}
func (binOp) isExpr()    {}
func (negOp) isExpr()    {}
func (callExpr) isExpr() {}

// ---- parser ----

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) cur() tok { return p.toks[p.pos] }
func (p *parser) advance() { p.pos++ }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.cur().off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if p.cur().kind != tokPunct || p.cur().text != s {
		return p.errf("expected %q", s)
	}
	p.advance()
	return nil
}

func (p *parser) parseStmts(inBlock bool) ([]stmt, error) {
	var stmts []stmt
	for {
		c := p.cur()
		if c.kind == tokEOF {
			if inBlock {
				return nil, p.errf("unexpected end of script, expected '}'")
			}
			return stmts, nil
		}
		if inBlock && c.kind == tokPunct && c.text == "}" {
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) parseStmt() (stmt, error) {
	c := p.cur()
	if c.kind != tokIdent {
		return nil, p.errf("expected statement")
	}
	switch c.text {
	case "let":
		p.advance()
		name := p.cur()
		if name.kind != tokIdent || keywords[name.text] {
			return nil, p.errf("expected variable name after let")
		}
		p.advance()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return letStmt{name: name.text, expr: e}, nil
	case "fetch", "write", "compute":
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return callStmt{builtin: c.text, arg: e}, nil
	case "for":
		p.advance()
		name := p.cur()
		if name.kind != tokIdent || keywords[name.text] {
			return nil, p.errf("expected loop variable")
		}
		p.advance()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent || p.cur().text != "to" {
			return nil, p.errf("expected 'to' in for loop")
		}
		p.advance()
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return forStmt{name: name.text, from: from, to: to, body: body}, nil
	case "while":
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return whileStmt{cond: cond, body: body}, nil
	case "if":
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := ifStmt{cond: cond, then: then}
		if p.cur().kind == tokIdent && p.cur().text == "else" {
			p.advance()
			alt, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.alt = alt
			s.hasElse = true
		}
		return s, nil
	default:
		if keywords[c.text] {
			return nil, p.errf("unexpected keyword %q", c.text)
		}
		// Assignment.
		p.advance()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return assignStmt{name: c.text, expr: e}, nil
	}
}

func (p *parser) parseBlock() ([]stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	stmts, err := p.parseStmts(true)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return stmts, nil
}

func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct {
		switch p.cur().text {
		case "==", "!=", "<", ">", "<=", ">=":
			op := p.cur().text
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return binOp{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.advance()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = binOp{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.cur().text
		p.advance()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = binOp{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (expr, error) {
	c := p.cur()
	switch {
	case c.kind == tokNumber:
		p.advance()
		return numLit{v: c.num}, nil
	case c.kind == tokString:
		p.advance()
		return strLit{v: c.text}, nil
	case c.kind == tokIdent && (c.text == "len" || c.text == "floor" || c.text == "min" || c.text == "max"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		args := []expr{}
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return callExpr{fn: c.text, args: args}, nil
	case c.kind == tokIdent && !keywords[c.text]:
		p.advance()
		return varRef{name: c.text}, nil
	case c.kind == tokPunct && c.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case c.kind == tokPunct && c.text == "-":
		p.advance()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return negOp{e: e}, nil
	default:
		return nil, p.errf("expected expression")
	}
}

// ---- evaluator ----

type value struct {
	isStr bool
	num   float64
	str   string
}

func (v value) String() string {
	if v.isStr {
		return v.str
	}
	return strconv.FormatFloat(v.num, 'g', -1, 64)
}

type evaluator struct {
	vars     map[string]value
	steps    int
	maxSteps int
	effects  *Effects
	html     *strings.Builder
}

func (ev *evaluator) step() error {
	ev.steps++
	if ev.steps > ev.maxSteps {
		return ErrStepBudget
	}
	return nil
}

func (ev *evaluator) execBlock(stmts []stmt) error {
	for _, s := range stmts {
		if err := ev.exec(s); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) exec(s stmt) error {
	if err := ev.step(); err != nil {
		return err
	}
	switch st := s.(type) {
	case letStmt:
		v, err := ev.eval(st.expr)
		if err != nil {
			return err
		}
		ev.vars[st.name] = v
	case assignStmt:
		if _, ok := ev.vars[st.name]; !ok {
			return &RuntimeError{Msg: "assignment to undefined variable " + st.name}
		}
		v, err := ev.eval(st.expr)
		if err != nil {
			return err
		}
		ev.vars[st.name] = v
	case callStmt:
		v, err := ev.eval(st.arg)
		if err != nil {
			return err
		}
		switch st.builtin {
		case "fetch":
			if !v.isStr {
				return &RuntimeError{Msg: "fetch() needs a string URL"}
			}
			ev.effects.Fetches = append(ev.effects.Fetches, v.str)
		case "write":
			ev.html.WriteString(v.String())
		case "compute":
			if v.isStr {
				return &RuntimeError{Msg: "compute() needs a number"}
			}
			if v.num > 0 {
				ev.effects.ComputeMillis += v.num
			}
		}
	case forStmt:
		from, err := ev.evalNum(st.from)
		if err != nil {
			return err
		}
		to, err := ev.evalNum(st.to)
		if err != nil {
			return err
		}
		saved, had := ev.vars[st.name]
		for i := from; i < to; i++ {
			ev.vars[st.name] = value{num: i}
			if err := ev.execBlock(st.body); err != nil {
				return err
			}
			if err := ev.step(); err != nil {
				return err
			}
		}
		if had {
			ev.vars[st.name] = saved
		} else {
			delete(ev.vars, st.name)
		}
	case whileStmt:
		for {
			cond, err := ev.eval(st.cond)
			if err != nil {
				return err
			}
			if !truthy(cond) {
				break
			}
			if err := ev.execBlock(st.body); err != nil {
				return err
			}
			if err := ev.step(); err != nil {
				return err
			}
		}
	case ifStmt:
		cond, err := ev.eval(st.cond)
		if err != nil {
			return err
		}
		if truthy(cond) {
			return ev.execBlock(st.then)
		}
		if st.hasElse {
			return ev.execBlock(st.alt)
		}
	default:
		return &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}
	}
	return nil
}

func truthy(v value) bool {
	if v.isStr {
		return v.str != ""
	}
	return v.num != 0
}

func (ev *evaluator) evalNum(e expr) (float64, error) {
	v, err := ev.eval(e)
	if err != nil {
		return 0, err
	}
	if v.isStr {
		return 0, &RuntimeError{Msg: "expected a number"}
	}
	return v.num, nil
}

func (ev *evaluator) eval(e expr) (value, error) {
	if err := ev.step(); err != nil {
		return value{}, err
	}
	switch ex := e.(type) {
	case numLit:
		return value{num: ex.v}, nil
	case strLit:
		return value{isStr: true, str: ex.v}, nil
	case varRef:
		v, ok := ev.vars[ex.name]
		if !ok {
			return value{}, &RuntimeError{Msg: "undefined variable " + ex.name}
		}
		return v, nil
	case negOp:
		v, err := ev.eval(ex.e)
		if err != nil {
			return value{}, err
		}
		if v.isStr {
			return value{}, &RuntimeError{Msg: "cannot negate a string"}
		}
		return value{num: -v.num}, nil
	case binOp:
		l, err := ev.eval(ex.l)
		if err != nil {
			return value{}, err
		}
		r, err := ev.eval(ex.r)
		if err != nil {
			return value{}, err
		}
		return applyBinOp(ex.op, l, r)
	case callExpr:
		args := make([]value, 0, len(ex.args))
		for _, a := range ex.args {
			v, err := ev.eval(a)
			if err != nil {
				return value{}, err
			}
			args = append(args, v)
		}
		return applyBuiltin(ex.fn, args)
	default:
		return value{}, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}
	}
}

// applyBuiltin evaluates the built-in functions len, floor, min and max.
func applyBuiltin(fn string, args []value) (value, error) {
	needNumbers := func(n int) error {
		if len(args) != n {
			return &RuntimeError{Msg: fmt.Sprintf("%s() takes %d argument(s), got %d", fn, n, len(args))}
		}
		for _, a := range args {
			if a.isStr {
				return &RuntimeError{Msg: fn + "() needs numbers"}
			}
		}
		return nil
	}
	switch fn {
	case "len":
		if len(args) != 1 {
			return value{}, &RuntimeError{Msg: "len() takes 1 argument"}
		}
		if !args[0].isStr {
			return value{}, &RuntimeError{Msg: "len() needs a string"}
		}
		return value{num: float64(len(args[0].str))}, nil
	case "floor":
		if err := needNumbers(1); err != nil {
			return value{}, err
		}
		return value{num: math.Floor(args[0].num)}, nil
	case "min":
		if err := needNumbers(2); err != nil {
			return value{}, err
		}
		return value{num: math.Min(args[0].num, args[1].num)}, nil
	case "max":
		if err := needNumbers(2); err != nil {
			return value{}, err
		}
		return value{num: math.Max(args[0].num, args[1].num)}, nil
	default:
		return value{}, &RuntimeError{Msg: "unknown builtin " + fn}
	}
}

func applyBinOp(op string, l, r value) (value, error) {
	if op == "+" && (l.isStr || r.isStr) {
		return value{isStr: true, str: l.String() + r.String()}, nil
	}
	boolVal := func(b bool) value {
		if b {
			return value{num: 1}
		}
		return value{num: 0}
	}
	if l.isStr && r.isStr {
		switch op {
		case "==":
			return boolVal(l.str == r.str), nil
		case "!=":
			return boolVal(l.str != r.str), nil
		}
		return value{}, &RuntimeError{Msg: "operator " + op + " not defined on strings"}
	}
	if l.isStr || r.isStr {
		return value{}, &RuntimeError{Msg: "operator " + op + " mixes string and number"}
	}
	switch op {
	case "+":
		return value{num: l.num + r.num}, nil
	case "-":
		return value{num: l.num - r.num}, nil
	case "*":
		return value{num: l.num * r.num}, nil
	case "/":
		if r.num == 0 {
			return value{}, &RuntimeError{Msg: "division by zero"}
		}
		return value{num: l.num / r.num}, nil
	case "%":
		if r.num == 0 {
			return value{}, &RuntimeError{Msg: "modulo by zero"}
		}
		return value{num: float64(int64(l.num) % int64(r.num))}, nil
	case "==":
		return boolVal(l.num == r.num), nil
	case "!=":
		return boolVal(l.num != r.num), nil
	case "<":
		return boolVal(l.num < r.num), nil
	case ">":
		return boolVal(l.num > r.num), nil
	case "<=":
		return boolVal(l.num <= r.num), nil
	case ">=":
		return boolVal(l.num >= r.num), nil
	default:
		return value{}, &RuntimeError{Msg: "unknown operator " + op}
	}
}
