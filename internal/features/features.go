// Package features defines the Table 1 feature vector: the ten cheap
// webpage features the modified browser collects while opening a page, used
// as predictors x = {x1..x10} for the GBRT reading-time model.
package features

import (
	"fmt"

	"eabrowse/internal/browser"
)

// Num is the number of predictor features (Table 1, excluding the target
// "Reading Time").
const Num = 10

// SchemaVersion identifies the meaning and order of the vector's columns.
// Bump it whenever a feature is added, removed or reordered: saved models
// embed it, and loaders reject a model trained against a different schema —
// silently feeding a model features it was not trained on is the failure
// mode this guards against.
const SchemaVersion = 1

// Indices into a Vector, in Table 1 order.
const (
	TransmissionTime = iota
	WebpageSizeKB
	DownloadObjects
	DownloadJSFiles
	DownloadFigures
	FigureSizeKB
	JSRunningTime
	SecondURL
	PageHeight
	PageWidth
)

// Names lists the Table 1 feature names, aligned with the vector indices.
var Names = [Num]string{
	"Transmission Time",
	"Webpage Size",
	"Download Objects",
	"Download JavaScript files",
	"Download Figures",
	"Figure Size",
	"JavaScript Running Time",
	"Second URL",
	"Page Height",
	"Page Width",
}

// Vector is one page's feature vector.
type Vector [Num]float64

// FromResult extracts the Table 1 features from a completed page load.
func FromResult(r *browser.Result) (Vector, error) {
	if r == nil {
		return Vector{}, fmt.Errorf("features: nil result")
	}
	return Vector{
		TransmissionTime: r.TransmissionTime.Seconds(),
		WebpageSizeKB:    float64(r.PageSizeBytes) / 1024,
		DownloadObjects:  float64(r.Objects),
		DownloadJSFiles:  float64(r.JSFiles),
		DownloadFigures:  float64(r.Images),
		FigureSizeKB:     float64(r.ImageBytes) / 1024,
		JSRunningTime:    r.JSRunTime.Seconds(),
		SecondURL:        float64(r.SecondURLs),
		PageHeight:       float64(r.PageHeightPX),
		PageWidth:        float64(r.PageWidthPX),
	}, nil
}

// Slice returns the vector as a fresh []float64 (the GBRT input form).
func (v Vector) Slice() []float64 {
	out := make([]float64, Num)
	copy(out, v[:])
	return out
}
