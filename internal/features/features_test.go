package features

import (
	"testing"
	"time"

	"eabrowse/internal/browser"
)

func TestFromResult(t *testing.T) {
	r := &browser.Result{
		TransmissionTime: 12 * time.Second,
		PageSizeBytes:    200 * 1024,
		Objects:          40,
		JSFiles:          4,
		Images:           25,
		ImageBytes:       500 * 1024,
		JSRunTime:        3 * time.Second,
		SecondURLs:       30,
		PageHeightPX:     5000,
		PageWidthPX:      1000,
	}
	v, err := FromResult(r)
	if err != nil {
		t.Fatalf("FromResult: %v", err)
	}
	want := Vector{12, 200, 40, 4, 25, 500, 3, 30, 5000, 1000}
	if v != want {
		t.Fatalf("vector = %v, want %v", v, want)
	}
}

func TestFromNilResult(t *testing.T) {
	if _, err := FromResult(nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestSliceIsCopy(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := v.Slice()
	if len(s) != Num {
		t.Fatalf("slice length %d, want %d", len(s), Num)
	}
	s[0] = 99
	if v[0] != 1 {
		t.Fatal("mutating the slice mutated the vector")
	}
}

func TestNamesAligned(t *testing.T) {
	if len(Names) != Num {
		t.Fatalf("%d names for %d features", len(Names), Num)
	}
	if Names[TransmissionTime] != "Transmission Time" {
		t.Fatalf("Names[TransmissionTime] = %q", Names[TransmissionTime])
	}
	if Names[PageWidth] != "Page Width" {
		t.Fatalf("Names[PageWidth] = %q", Names[PageWidth])
	}
	seen := make(map[string]bool, Num)
	for _, n := range Names {
		if n == "" {
			t.Fatal("empty feature name")
		}
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}
