// Package report renders experiment results as plain-text charts — the
// terminal stand-in for the paper's figures, shared by the commands and
// examples.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Bar renders a horizontal bar of the given width for v on a [0, maxV]
// scale: filled with '#', padded with '.'. Values outside the scale clamp.
func Bar(v, maxV float64, width int) string {
	if width <= 0 {
		return ""
	}
	if maxV <= 0 {
		return strings.Repeat(".", width)
	}
	n := int(v / maxV * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Series is one labeled sequence of (x, y) samples.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// TimeSeries renders a series as one bar row per sample, downsampled to at
// most maxRows rows. maxY scales the bars; unit annotates the values.
func TimeSeries(w io.Writer, s Series, maxY float64, width, maxRows int, unit string) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x vs %d y", s.Label, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("report: series %q is empty", s.Label)
	}
	if maxRows <= 0 {
		maxRows = 40
	}
	step := 1
	if len(s.X) > maxRows {
		step = (len(s.X) + maxRows - 1) / maxRows
	}
	if s.Label != "" {
		if _, err := fmt.Fprintf(w, "%s:\n", s.Label); err != nil {
			return err
		}
	}
	for i := 0; i < len(s.X); i += step {
		if _, err := fmt.Fprintf(w, "%8.1f %s %.2f%s\n",
			s.X[i], Bar(s.Y[i], maxY, width), s.Y[i], unit); err != nil {
			return err
		}
	}
	return nil
}

// BarGroupItem is one labeled value of a grouped bar chart.
type BarGroupItem struct {
	Label string
	Value float64
}

// BarGroup renders labeled values against a shared scale, like one cluster
// of a paper bar chart.
func BarGroup(w io.Writer, title string, items []BarGroupItem, width int, unit string) error {
	if len(items) == 0 {
		return fmt.Errorf("report: bar group %q is empty", title)
	}
	maxV := items[0].Value
	maxLabel := 0
	for _, it := range items {
		if it.Value > maxV {
			maxV = it.Value
		}
		if len(it.Label) > maxLabel {
			maxLabel = len(it.Label)
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s:\n", title); err != nil {
			return err
		}
	}
	for _, it := range items {
		if _, err := fmt.Fprintf(w, "  %-*s %s %.1f%s\n",
			maxLabel, it.Label, Bar(it.Value, maxV, width), it.Value, unit); err != nil {
			return err
		}
	}
	return nil
}
