package report

import (
	"strings"
	"testing"
)

func TestBar(t *testing.T) {
	tests := []struct {
		name  string
		v     float64
		maxV  float64
		width int
		want  string
	}{
		{"empty", 1, 2, 0, ""},
		{"zero", 0, 10, 4, "...."},
		{"half", 5, 10, 4, "##.."},
		{"full", 10, 10, 4, "####"},
		{"clamped above", 99, 10, 4, "####"},
		{"clamped below", -5, 10, 4, "...."},
		{"zero scale", 5, 0, 4, "...."},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Bar(tt.v, tt.maxV, tt.width); got != tt.want {
				t.Fatalf("Bar = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestTimeSeries(t *testing.T) {
	var sb strings.Builder
	s := Series{Label: "power", X: []float64{0, 1, 2}, Y: []float64{0.5, 1.0, 1.5}}
	if err := TimeSeries(&sb, s, 2, 10, 40, "W"); err != nil {
		t.Fatalf("TimeSeries: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "power:") {
		t.Fatalf("missing label: %q", out)
	}
	if strings.Count(out, "\n") != 4 { // label + 3 rows
		t.Fatalf("rows = %d, want 4: %q", strings.Count(out, "\n"), out)
	}
	if !strings.Contains(out, "1.50W") {
		t.Fatalf("missing annotated value: %q", out)
	}
}

func TestTimeSeriesDownsamples(t *testing.T) {
	n := 100
	s := Series{X: make([]float64, n), Y: make([]float64, n)}
	for i := range s.X {
		s.X[i] = float64(i)
	}
	var sb strings.Builder
	if err := TimeSeries(&sb, s, 1, 10, 10, ""); err != nil {
		t.Fatalf("TimeSeries: %v", err)
	}
	if rows := strings.Count(sb.String(), "\n"); rows > 12 {
		t.Fatalf("downsampling failed: %d rows", rows)
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	var sb strings.Builder
	if err := TimeSeries(&sb, Series{X: []float64{1}, Y: nil}, 1, 10, 10, ""); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if err := TimeSeries(&sb, Series{}, 1, 10, 10, ""); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestBarGroup(t *testing.T) {
	var sb strings.Builder
	items := []BarGroupItem{
		{Label: "original", Value: 80},
		{Label: "energy-aware", Value: 55},
	}
	if err := BarGroup(&sb, "energy (J)", items, 20, "J"); err != nil {
		t.Fatalf("BarGroup: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "original") || !strings.Contains(out, "energy-aware") {
		t.Fatalf("missing labels: %q", out)
	}
	// The larger value fills the full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatalf("max bar not full width: %q", out)
	}
}

func TestBarGroupEmpty(t *testing.T) {
	var sb strings.Builder
	if err := BarGroup(&sb, "x", nil, 10, ""); err == nil {
		t.Fatal("empty group accepted")
	}
}
