package browser

import (
	"testing"
	"time"

	"eabrowse/internal/netsim"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

type rig struct {
	clock  *simtime.Clock
	radio  *rrc.Machine
	link   *netsim.Link
	engine *Engine
}

func newRig(t *testing.T, mode Mode, opts ...Option) *rig {
	t.Helper()
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	engine, err := NewEngine(clock, radio, link, DefaultCostModel(), mode, opts...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return &rig{clock: clock, radio: radio, link: link, engine: engine}
}

func (r *rig) load(t *testing.T, page *webpage.Page) *Result {
	t.Helper()
	var result *Result
	if err := r.engine.Load(page, func(res *Result) { result = res }); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for result == nil {
		if !r.clock.Step() {
			t.Fatal("simulation drained without a result")
		}
		if r.clock.Now() > time.Hour {
			t.Fatal("load did not finish within an hour of simulated time")
		}
	}
	return result
}

func testPage(t *testing.T) *webpage.Page {
	t.Helper()
	page, err := webpage.Generate(webpage.Spec{
		Name:            "unit.example.com",
		Seed:            11,
		TextKB:          16,
		Sections:        4,
		Images:          6,
		ImageKBMin:      3,
		ImageKBMax:      6,
		Stylesheets:     1,
		CSSKB:           8,
		CSSRules:        80,
		CSSImages:       1,
		Scripts:         2,
		ScriptKB:        4,
		ScriptFetches:   2,
		ScriptComputeMS: 100,
		InlineScripts:   1,
		Subdocs:         1,
		SubdocTextKB:    3,
		SubdocImages:    1,
		Anchors:         5,
		PageHeightPX:    2000,
		PageWidthPX:     800,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return page
}

func TestNewEngineValidation(t *testing.T) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	if _, err := NewEngine(nil, radio, link, DefaultCostModel(), ModeOriginal); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewEngine(clock, radio, link, DefaultCostModel(), Mode(0)); err == nil {
		t.Fatal("invalid mode accepted")
	}
	bad := DefaultCostModel()
	bad.ChunkBytes = 0
	if _, err := NewEngine(clock, radio, link, bad, ModeOriginal); err == nil {
		t.Fatal("invalid cost model accepted")
	}
}

func TestCostModelValidate(t *testing.T) {
	good := DefaultCostModel()
	if err := good.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := good
	bad.ExecJSPerKB = -time.Millisecond
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
	bad = good
	bad.CPUActiveWatts = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative watts accepted")
	}
}

func TestBothPipelinesDownloadEverything(t *testing.T) {
	page := testPage(t)
	for _, mode := range []Mode{ModeOriginal, ModeEnergyAware} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode)
			res := r.load(t, page)
			if res.Objects != page.ResourceCount() {
				t.Fatalf("Objects = %d, want %d", res.Objects, page.ResourceCount())
			}
			if res.BytesDown != page.TotalBytes() {
				t.Fatalf("BytesDown = %d, want %d", res.BytesDown, page.TotalBytes())
			}
			if res.Missing404 != 0 {
				t.Fatalf("Missing404 = %d", res.Missing404)
			}
		})
	}
}

func TestPipelinesBuildSameDOM(t *testing.T) {
	page := testPage(t)
	orig := newRig(t, ModeOriginal).load(t, page)
	aware := newRig(t, ModeEnergyAware).load(t, page)
	if orig.DOMNodes != aware.DOMNodes {
		t.Fatalf("DOM differs: original %d vs energy-aware %d", orig.DOMNodes, aware.DOMNodes)
	}
	if orig.DOMNodes == 0 {
		t.Fatal("empty DOM")
	}
	if orig.SecondURLs != aware.SecondURLs {
		t.Fatalf("SecondURLs differ: %d vs %d", orig.SecondURLs, aware.SecondURLs)
	}
}

func TestEnergyAwareShortensTransmission(t *testing.T) {
	page := testPage(t)
	orig := newRig(t, ModeOriginal).load(t, page)
	aware := newRig(t, ModeEnergyAware).load(t, page)
	if aware.TransmissionTime >= orig.TransmissionTime {
		t.Fatalf("energy-aware transmission %v not shorter than original %v",
			aware.TransmissionTime, orig.TransmissionTime)
	}
}

func TestEnergyAwareForcesDormancy(t *testing.T) {
	page := testPage(t)
	r := newRig(t, ModeEnergyAware)
	res := r.load(t, page)
	// Run past the dormancy guard and release delay.
	r.clock.RunFor(5 * time.Second)
	if got := r.radio.State(); got != rrc.StateIdle {
		t.Fatalf("radio = %v after energy-aware load, want IDLE", got)
	}
	if res.DormantAt == 0 {
		// DormantAt may be recorded after the result is delivered; check the
		// engine's view instead.
		if r.engine.RadioState() != rrc.StateIdle {
			t.Fatal("dormancy never recorded")
		}
	}
}

func TestOriginalFollowsTimers(t *testing.T) {
	page := testPage(t)
	r := newRig(t, ModeOriginal)
	r.load(t, page)
	cfg := r.radio.Config()
	// Right after load the radio is still on dedicated channels.
	if got := r.radio.State(); got != rrc.StateDCH {
		t.Fatalf("radio = %v right after original load, want DCH", got)
	}
	r.clock.RunFor(cfg.T1 + time.Second)
	if got := r.radio.State(); got != rrc.StateFACH {
		t.Fatalf("radio = %v after T1, want FACH", got)
	}
	r.clock.RunFor(cfg.T2)
	if got := r.radio.State(); got != rrc.StateIdle {
		t.Fatalf("radio = %v after T2, want IDLE", got)
	}
}

func TestWithoutAutoDormancyKeepsRadioUp(t *testing.T) {
	page := testPage(t)
	r := newRig(t, ModeEnergyAware, WithoutAutoDormancy())
	r.load(t, page)
	r.clock.RunFor(2 * time.Second)
	if got := r.radio.State(); got == rrc.StateIdle || got == rrc.StateReleasing {
		t.Fatalf("radio = %v with auto-dormancy disabled", got)
	}
}

func TestTransmissionDoneHook(t *testing.T) {
	page := testPage(t)
	called := false
	var r *rig
	r = newRig(t, ModeEnergyAware, WithTransmissionDoneHook(func() {
		called = true
	}))
	r.load(t, page)
	if !called {
		t.Fatal("transmission-done hook never invoked")
	}
	r.clock.RunFor(10 * time.Second)
	// The hook replaced auto-dormancy, and it did not force idle.
	if got := r.radio.State(); got == rrc.StateReleasing {
		t.Fatalf("radio = %v, hook should own dormancy", got)
	}
}

func TestDormancyGuardHonored(t *testing.T) {
	page := testPage(t)
	r := newRig(t, ModeEnergyAware, WithDormancyGuard(6*time.Second))
	res := r.load(t, page)
	r.clock.RunFor(10 * time.Second)
	if res.DormantAt == 0 {
		t.Fatal("never went dormant")
	}
	gap := res.DormantAt - res.TransmissionTime
	if gap < 6*time.Second {
		t.Fatalf("dormancy %v after transmission, want >= 6s", gap)
	}
}

func TestOriginalRedrawsAndReflows(t *testing.T) {
	page := testPage(t)
	orig := newRig(t, ModeOriginal).load(t, page)
	aware := newRig(t, ModeEnergyAware).load(t, page)
	if orig.Redraws == 0 || orig.Reflows < 2 {
		t.Fatalf("original redraws=%d reflows=%d, want plenty", orig.Redraws, orig.Reflows)
	}
	if aware.Redraws != 0 {
		t.Fatalf("energy-aware redraws = %d, want 0", aware.Redraws)
	}
	if aware.Reflows != 1 {
		t.Fatalf("energy-aware reflows = %d, want exactly the final one", aware.Reflows)
	}
}

func TestEnergyAwareLayoutAfterTransmission(t *testing.T) {
	page := testPage(t)
	res := newRig(t, ModeEnergyAware).load(t, page)
	if res.LayoutTime() <= 0 {
		t.Fatalf("LayoutTime = %v, want positive (deferred layout)", res.LayoutTime())
	}
	if res.FinalDisplayAt <= res.TransmissionTime {
		t.Fatalf("final display %v not after transmission %v", res.FinalDisplayAt, res.TransmissionTime)
	}
}

func TestIntermediateDisplayFullVsMobile(t *testing.T) {
	full := testPage(t) // not mobile
	res := newRig(t, ModeEnergyAware).load(t, full)
	if res.FirstDisplayAt == 0 {
		t.Fatal("full-version page has no simplified intermediate display")
	}
	if res.FirstDisplayAt >= res.FinalDisplayAt {
		t.Fatal("intermediate display not before final display")
	}

	mobileSpec := webpage.Spec{
		Name: "m.unit.example.com", Mobile: true, Seed: 3,
		TextKB: 6, Sections: 2, Images: 3, ImageKBMin: 2, ImageKBMax: 4,
		Stylesheets: 1, CSSKB: 4, CSSRules: 40,
		Scripts: 1, ScriptKB: 2, ScriptFetches: 1,
	}
	mobile, err := webpage.Generate(mobileSpec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	mres := newRig(t, ModeEnergyAware).load(t, mobile)
	if mres.FirstDisplayAt != 0 {
		t.Fatalf("mobile energy-aware drew an intermediate display at %v", mres.FirstDisplayAt)
	}
}

func TestFeatureExtraction(t *testing.T) {
	page := testPage(t)
	res := newRig(t, ModeEnergyAware).load(t, page)
	if res.PageHeightPX != 2000 || res.PageWidthPX != 800 {
		t.Fatalf("geometry = %dx%d, want 800x2000", res.PageWidthPX, res.PageHeightPX)
	}
	if res.JSFiles != 2 {
		t.Fatalf("JSFiles = %d, want 2", res.JSFiles)
	}
	if res.CSSFiles != 1 {
		t.Fatalf("CSSFiles = %d, want 1", res.CSSFiles)
	}
	if res.JSRunTime <= 0 {
		t.Fatal("JSRunTime not recorded")
	}
	if res.SecondURLs != 5 {
		t.Fatalf("SecondURLs = %d, want 5", res.SecondURLs)
	}
	// Images: 6 static + 1 CSS bg + 2*2 script-fetched + 1 subdoc = 12.
	if res.Images != 12 {
		t.Fatalf("Images = %d, want 12", res.Images)
	}
	if res.ImageBytes <= 0 || res.PageSizeBytes <= 0 {
		t.Fatalf("sizes: images %d page %d", res.ImageBytes, res.PageSizeBytes)
	}
	if res.PageSizeBytes+res.ImageBytes != res.BytesDown {
		t.Fatalf("size split %d+%d != %d", res.PageSizeBytes, res.ImageBytes, res.BytesDown)
	}
}

func TestEnergyAccounting(t *testing.T) {
	page := testPage(t)
	for _, mode := range []Mode{ModeOriginal, ModeEnergyAware} {
		res := newRig(t, mode).load(t, page)
		if res.CPUEnergyJ <= 0 {
			t.Fatalf("%v: CPU energy %v", mode, res.CPUEnergyJ)
		}
		if res.RadioEnergyJ <= 0 {
			t.Fatalf("%v: radio energy %v", mode, res.RadioEnergyJ)
		}
		if res.TotalEnergyJ() != res.CPUEnergyJ+res.RadioEnergyJ {
			t.Fatal("TotalEnergyJ mismatch")
		}
	}
}

func TestLoadRejectsConcurrentLoad(t *testing.T) {
	page := testPage(t)
	r := newRig(t, ModeOriginal)
	if err := r.engine.Load(page, nil); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := r.engine.Load(page, nil); err == nil {
		t.Fatal("second concurrent Load accepted")
	}
}

func TestLoadRejectsNilPage(t *testing.T) {
	r := newRig(t, ModeOriginal)
	if err := r.engine.Load(nil, nil); err == nil {
		t.Fatal("nil page accepted")
	}
}

func TestSequentialLoadsOnOneEngine(t *testing.T) {
	page := testPage(t)
	r := newRig(t, ModeEnergyAware)
	first := r.load(t, page)
	r.clock.RunFor(10 * time.Second)
	second := r.load(t, page)
	if first.Objects != second.Objects {
		t.Fatalf("objects differ across loads: %d vs %d", first.Objects, second.Objects)
	}
	if second.FinalDisplayAt <= 0 {
		t.Fatalf("second load final display %v", second.FinalDisplayAt)
	}
}

func TestDeterministicResults(t *testing.T) {
	page := testPage(t)
	a := newRig(t, ModeEnergyAware).load(t, page)
	b := newRig(t, ModeEnergyAware).load(t, page)
	if a.FinalDisplayAt != b.FinalDisplayAt || a.TransmissionTime != b.TransmissionTime {
		t.Fatalf("nondeterministic loads: %+v vs %+v", a, b)
	}
	if a.TotalEnergyJ() != b.TotalEnergyJ() {
		t.Fatalf("nondeterministic energy: %v vs %v", a.TotalEnergyJ(), b.TotalEnergyJ())
	}
}

func TestMissingResourceTolerated(t *testing.T) {
	// A page whose HTML references an object that does not exist.
	spec := webpage.Spec{
		Name: "broken.example.com", Seed: 5,
		TextKB: 4, Sections: 2, Images: 2, ImageKBMin: 2, ImageKBMax: 3,
		Stylesheets: 1, CSSKB: 3, CSSRules: 20,
	}
	page, err := webpage.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	main := page.Main()
	main.Body += `<img src="broken.example.com/img/missing.png">`
	main.Bytes = len(main.Body)

	for _, mode := range []Mode{ModeOriginal, ModeEnergyAware} {
		res := newRig(t, mode).load(t, page)
		if res.Missing404 != 1 {
			t.Fatalf("%v: Missing404 = %d, want 1", mode, res.Missing404)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeOriginal.String() != "original" || ModeEnergyAware.String() != "energy-aware" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatalf("unknown mode name = %q", Mode(9).String())
	}
}

func TestBuildStreamByteAttribution(t *testing.T) {
	src := `<html><body><p>hello world</p><img src="a.png"><script>fetch("b");</script></body></html>`
	ds := buildStream(src)
	total := 0
	for _, it := range ds.items {
		total += it.bytes
	}
	if total != len(src) {
		t.Fatalf("item bytes sum %d != source length %d", total, len(src))
	}
}

func TestBuildStreamGeometry(t *testing.T) {
	ds := buildStream(`<body data-width="320" data-height="1500"></body>`)
	if ds.widthPX != 320 || ds.heightPX != 1500 {
		t.Fatalf("geometry = %dx%d", ds.widthPX, ds.heightPX)
	}
}

func TestCPUPriorities(t *testing.T) {
	clock := simtime.NewClock()
	c := newCPU(clock, 0.35)
	var order []string
	c.exec(prioLow, time.Second, func() { order = append(order, "low1") })
	c.exec(prioHigh, time.Second, func() { order = append(order, "high1") })
	c.exec(prioHigh, time.Second, func() { order = append(order, "high2") })
	c.exec(prioLow, time.Second, func() { order = append(order, "low2") })
	clock.Run()
	// low1 starts first (queue was empty), then both highs preempt queued low2.
	want := []string{"low1", "high1", "high2", "low2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !c.idle() {
		t.Fatal("cpu not idle after drain")
	}
	if c.BusyTime() != 4*time.Second {
		t.Fatalf("BusyTime = %v, want 4s", c.BusyTime())
	}
	if got, want := c.EnergyJ(), 0.35*4; got != want {
		t.Fatalf("EnergyJ = %v, want %v", got, want)
	}
}

func TestCPUHighIdle(t *testing.T) {
	clock := simtime.NewClock()
	c := newCPU(clock, 0.1)
	if !c.highIdle() {
		t.Fatal("fresh cpu not high-idle")
	}
	c.exec(prioHigh, time.Second, nil)
	if c.highIdle() {
		t.Fatal("high-idle with running high task")
	}
	clock.Run()
	c.exec(prioLow, time.Second, nil)
	if !c.highIdle() {
		t.Fatal("not high-idle with only low work")
	}
	clock.Run()
}

func TestCPUPower(t *testing.T) {
	clock := simtime.NewClock()
	c := newCPU(clock, 0.35)
	if c.Power() != 0 {
		t.Fatal("idle cpu draws power")
	}
	c.exec(prioHigh, time.Second, nil)
	if c.Power() != 0.35 {
		t.Fatalf("busy power = %v", c.Power())
	}
	clock.Run()
	if c.Power() != 0 {
		t.Fatal("drained cpu draws power")
	}
}

func TestEventLogOrdering(t *testing.T) {
	page := testPage(t)
	for _, mode := range []Mode{ModeOriginal, ModeEnergyAware} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode, WithEventLog())
			res := r.load(t, page)
			if len(res.Events) == 0 {
				t.Fatal("no events logged")
			}
			for i := 1; i < len(res.Events); i++ {
				if res.Events[i].At < res.Events[i-1].At {
					t.Fatalf("events out of order: %+v before %+v",
						res.Events[i-1], res.Events[i])
				}
			}
			last := res.Events[len(res.Events)-1]
			if last.Kind != EventFinalDisplay {
				t.Fatalf("last event = %v, want final-display", last.Kind)
			}
			arrivals := 0
			scripts := 0
			transmissionDone := 0
			for _, ev := range res.Events {
				switch ev.Kind {
				case EventObjectArrived:
					arrivals++
				case EventScriptExecuted:
					scripts++
				case EventTransmissionDone:
					transmissionDone++
				}
			}
			if arrivals != res.Objects {
				t.Fatalf("logged %d arrivals, result says %d objects", arrivals, res.Objects)
			}
			if scripts == 0 {
				t.Fatal("no script executions logged")
			}
			if transmissionDone != 1 {
				t.Fatalf("transmission-done logged %d times", transmissionDone)
			}
		})
	}
}

func TestEventLogOffByDefault(t *testing.T) {
	page := testPage(t)
	res := newRig(t, ModeEnergyAware).load(t, page)
	if len(res.Events) != 0 {
		t.Fatalf("events logged without WithEventLog: %d", len(res.Events))
	}
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EventObjectArrived:    "object-arrived",
		EventScriptExecuted:   "script-executed",
		EventFirstDisplay:     "first-display",
		EventTransmissionDone: "transmission-done",
		EventDormant:          "radio-dormant",
		EventFinalDisplay:     "final-display",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("EventKind(%d) = %q, want %q", int(k), got, want)
		}
	}
	if EventKind(42).String() != "EventKind(42)" {
		t.Fatal("unknown event kind name wrong")
	}
}
