package browser

import (
	"sync"

	"eabrowse/internal/cssscan"
	"eabrowse/internal/jsmini"
	"eabrowse/internal/webpage"
)

// loadPlan is the immutable, precomputed parse product of one page: the
// tokenized document streams (main document, subdocuments, script-generated
// fragments), the effects of every script, and the image references of every
// stylesheet. It is built once per page and shared read-only across all
// visits and workers, so the steady-state simulation never re-runs
// htmlscan/cssscan/jsmini — the per-visit pipelines consume the plan and only
// charge the *simulated* parse/scan/execute costs.
//
// Everything reachable from a loadPlan is written only during buildPlan and
// read-only afterwards; the race-hammer test in loadplan_test.go runs
// concurrent visits over one plan under -race to enforce that.
type loadPlan struct {
	// streams holds the tokenized form of every HTML resource, keyed by URL.
	streams map[string]*docStream
	// scripts holds the evaluated effects of every external script, keyed by
	// URL; inline holds the same keyed by the script body.
	scripts map[string]*scriptPlan
	inline  map[string]*scriptPlan
	// cssRefs holds the image references of every stylesheet, keyed by URL
	// (identical for both pipelines: cssscan.Parse and cssscan.ScanRefs are
	// documented to extract the same reference set).
	cssRefs map[string][]string
}

// scriptPlan is the cached evaluation of one script: its effects and, when
// the script document.writes markup, the pre-tokenized fragment stream.
type scriptPlan struct {
	eff       *jsmini.Effects
	effStream *docStream
}

// planCache shares loadPlans across engines and goroutines. Racing builders
// for the same page produce identical plans (the build is a pure function of
// the page), so LoadOrStore keeping either one is sound.
var planCache sync.Map // *webpage.Page -> *loadPlan

// planFor returns the shared plan for page, building it on first use.
func planFor(page *webpage.Page) *loadPlan {
	if v, ok := planCache.Load(page); ok {
		return v.(*loadPlan)
	}
	v, _ := planCache.LoadOrStore(page, buildPlan(page))
	return v.(*loadPlan)
}

// buildPlan walks the page from its main document, tokenizing every reachable
// HTML stream and evaluating every reachable script exactly once.
func buildPlan(page *webpage.Page) *loadPlan {
	p := &loadPlan{
		streams: make(map[string]*docStream),
		scripts: make(map[string]*scriptPlan),
		inline:  make(map[string]*scriptPlan),
		cssRefs: make(map[string][]string),
	}
	var pending []*docStream
	addStream := func(url, body string) {
		if _, done := p.streams[url]; done {
			return
		}
		ds := buildStream(body)
		p.streams[url] = ds
		pending = append(pending, ds)
	}
	evalScript := func(body string) *scriptPlan {
		sp := &scriptPlan{}
		eff, err := jsmini.Run(body)
		if err != nil {
			// A broken script costs its parse time but has no effects, like a
			// browser swallowing a script error.
			sp.eff = &jsmini.Effects{}
			return sp
		}
		sp.eff = eff
		if eff.HTML != "" {
			sp.effStream = buildStream(eff.HTML)
			pending = append(pending, sp.effStream)
		}
		return sp
	}

	if main := page.Main(); main != nil {
		addStream(page.MainURL, main.Body)
	}
	for len(pending) > 0 {
		ds := pending[0]
		pending = pending[1:]
		for i := range ds.items {
			it := &ds.items[i]
			switch it.kind {
			case itemSubdoc:
				if res, ok := page.Resource(it.url); ok {
					addStream(it.url, res.Body)
				}
			case itemCSS:
				if _, done := p.cssRefs[it.url]; done {
					break
				}
				if res, ok := page.Resource(it.url); ok {
					refs, _ := cssscan.ScanRefs(res.Body)
					p.cssRefs[it.url] = refs
				}
			case itemScript:
				if _, done := p.scripts[it.url]; done {
					break
				}
				if res, ok := page.Resource(it.url); ok {
					p.scripts[it.url] = evalScript(res.Body)
				}
			case itemInlineScript:
				if _, done := p.inline[it.body]; done {
					break
				}
				p.inline[it.body] = evalScript(it.body)
			}
		}
	}
	return p
}

// stream returns the cached stream for url, tokenizing body as a fallback
// for resources the plan traversal could not reach.
func (p *loadPlan) stream(url, body string) *docStream {
	if ds, ok := p.streams[url]; ok {
		return ds
	}
	return buildStream(body)
}

// refs returns the cached stylesheet references for url, scanning body as a
// fallback.
func (p *loadPlan) refs(url, body string) []string {
	if refs, ok := p.cssRefs[url]; ok {
		return refs
	}
	refs, _ := cssscan.ScanRefs(body)
	return refs
}

// externalScript returns the cached plan for the external script at url (nil
// if the traversal missed it; callers then evaluate the body directly).
func (p *loadPlan) externalScript(url string) *scriptPlan {
	return p.scripts[url]
}

// inlineScript returns the cached plan for an inline script body.
func (p *loadPlan) inlineScript(body string) *scriptPlan {
	return p.inline[body]
}
