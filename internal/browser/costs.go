// Package browser implements the paper's two webpage-loading pipelines over
// the simulated radio (Section 4):
//
//   - the Original pipeline, which interleaves data-transmission computation
//     (parsing, script execution) with layout computation (image decoding,
//     CSS rule extraction, style formatting, layout calculation, rendering,
//     redraws and reflows) the way stock mobile browsers did; and
//   - the Energy-Aware pipeline, which runs all data-transmission
//     computation first so every object downloads as early as possible,
//     draws one cheap simplified intermediate display, forces the radio
//     dormant once the last byte arrives, and only then runs the layout
//     computation.
//
// Both pipelines process real markup (internal/htmlscan, internal/cssscan)
// and really execute scripts (internal/jsmini), so they discover work the
// way actual browsers do; only the *cost* of each operation comes from a
// calibrated model (CostModel) because the simulation stands in for a
// 2010-era smartphone CPU, not for the Go runtime.
package browser

import (
	"errors"
	"time"
)

// CostModel maps browser operations to simulated CPU time on the target
// device. The defaults are calibrated so the benchmark corpus reproduces the
// paper's measured behaviour: full-version pages load in tens of seconds
// with 40-70% of the time in layout computation (the Meyerovich/Bodik number
// the paper cites), mobile pages are network-bound, and the energy-aware
// reordering buys ≈27% of data-transmission time on the full benchmark.
type CostModel struct {
	// ScanHTMLPerKB is the cheap reference scan over HTML source.
	ScanHTMLPerKB time.Duration
	// ParseHTMLPerKB is full HTML parsing into the DOM tree.
	ParseHTMLPerKB time.Duration
	// ScanCSSPerKB is the cheap url()/@import scan over CSS source.
	ScanCSSPerKB time.Duration
	// ParseCSSPerKB is full CSS parsing and style-rule extraction.
	ParseCSSPerKB time.Duration
	// ExecJSPerKB is script execution cost per KB of script source, on top
	// of whatever compute() work the script itself requests.
	ExecJSPerKB time.Duration
	// DecodeImagePerKB is image decoding.
	DecodeImagePerKB time.Duration

	// StylePerNode is style formatting (matching CSS rules to a node).
	StylePerNode time.Duration
	// LayoutPerNode is layout calculation per node.
	LayoutPerNode time.Duration
	// RenderPerNode is painting per node.
	RenderPerNode time.Duration
	// RedrawPerNode is the cost, per DOM node, of a redraw (the browser
	// searches all nodes to determine what to repaint).
	RedrawPerNode time.Duration
	// SimpleDisplayPerNode is the energy-aware pipeline's text-only
	// intermediate display (no CSS rules, no styles, no images).
	SimpleDisplayPerNode time.Duration

	// JSComputeUnit converts a script's compute(n) units into CPU time.
	JSComputeUnit time.Duration

	// CPUActiveWatts is the extra power drawn while the CPU is busy
	// (Table 5: a fully running CPU adds ≈0.45 W over the idle baseline).
	CPUActiveWatts float64

	// ChunkBytes is the incremental parsing granularity: the parser yields
	// (issuing fetches, updating the display) after each chunk.
	ChunkBytes int
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanHTMLPerKB:        6 * time.Millisecond,
		ParseHTMLPerKB:       18 * time.Millisecond,
		ScanCSSPerKB:         6 * time.Millisecond,
		ParseCSSPerKB:        35 * time.Millisecond,
		ExecJSPerKB:          135 * time.Millisecond,
		DecodeImagePerKB:     4 * time.Millisecond,
		StylePerNode:         400 * time.Microsecond,
		LayoutPerNode:        200 * time.Microsecond,
		RenderPerNode:        160 * time.Microsecond,
		RedrawPerNode:        70 * time.Microsecond,
		SimpleDisplayPerNode: 90 * time.Microsecond,
		JSComputeUnit:        time.Millisecond,
		// Table 5 reports +0.45 W for a fully pegged CPU; browser workloads
		// average below that (the Fig. 9 traces oscillate well under the
		// DCH+CPU ceiling), so the busy-power is calibrated slightly lower.
		CPUActiveWatts: 0.35,
		ChunkBytes:     8 * 1024,
	}
}

// Validate checks the model for physical sense.
func (c CostModel) Validate() error {
	if c.ScanHTMLPerKB < 0 || c.ParseHTMLPerKB < 0 || c.ScanCSSPerKB < 0 ||
		c.ParseCSSPerKB < 0 || c.ExecJSPerKB < 0 || c.DecodeImagePerKB < 0 ||
		c.StylePerNode < 0 || c.LayoutPerNode < 0 || c.RenderPerNode < 0 ||
		c.RedrawPerNode < 0 || c.SimpleDisplayPerNode < 0 || c.JSComputeUnit < 0 {
		return errors.New("browser: negative cost in model")
	}
	if c.CPUActiveWatts < 0 {
		return errors.New("browser: negative CPU power")
	}
	if c.ChunkBytes <= 0 {
		return errors.New("browser: chunk size must be positive")
	}
	return nil
}

// perKB scales a per-KB cost by a byte count.
func perKB(cost time.Duration, bytes int) time.Duration {
	return time.Duration(float64(cost) * float64(bytes) / 1024)
}

// perNode scales a per-node cost by a node count.
func perNode(cost time.Duration, nodes int) time.Duration {
	return time.Duration(nodes) * cost
}
