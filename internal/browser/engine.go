package browser

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"eabrowse/internal/jsmini"
	"eabrowse/internal/netsim"
	"eabrowse/internal/obs"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// DefaultDormancyGuard is how long after the last data transmission the
// energy-aware pipeline waits before forcing the radio dormant. Fig. 9 shows
// the paper's prototype dropping to IDLE ≈2.5 s after the final transfer.
const DefaultDormancyGuard = 2500 * time.Millisecond

// Fetch-hardening defaults: how the engine reacts when the link reports a
// permanently failed transfer (possible only under fault injection). Each
// object gets DefaultFetchAttempts engine-level attempts — each of which is
// itself retried inside the link — with exponential backoff between them,
// and a wall-clock deadline after which the engine stops retrying and loads
// the page without the object instead of hanging the pipeline.
const (
	// DefaultFetchAttempts is the engine-level attempt budget per object.
	DefaultFetchAttempts = 3
	// DefaultFetchBackoff is the first retry delay; it doubles per attempt.
	DefaultFetchBackoff = 500 * time.Millisecond
	// DefaultFetchBackoffCap bounds the exponential backoff.
	DefaultFetchBackoffCap = 4 * time.Second
	// DefaultFetchDeadline is the per-object timeout: once this much time
	// has passed since the first attempt, a failed object is abandoned
	// rather than retried.
	DefaultFetchDeadline = 2 * time.Minute
)

// Engine loads webpages through one of the two pipelines. An Engine performs
// one load at a time; construct it once per simulation scenario and reuse it
// for sequential loads. Not safe for concurrent use.
type Engine struct {
	clock *simtime.Clock
	radio rrc.RadioModel
	link  *netsim.Link
	cost  CostModel
	mode  Mode
	cpu   *cpu

	dormancyGuard      time.Duration
	onTransmissionDone func()
	autoDormancy       bool
	radioIface         *ril.Interface
	logEvents          bool
	observer           *obs.Recorder

	fetchAttempts   int
	fetchBackoff    time.Duration
	fetchBackoffCap time.Duration
	fetchDeadline   time.Duration

	// Per-load state.
	page         *webpage.Page
	plan         *loadPlan
	res          *Result
	doneFn       func(*Result)
	loading      bool
	startAt      time.Duration
	radioJ0      float64
	cpuJ0        float64
	openWork     int
	linkRetries0 int
	linkFailed0  int

	fetched    map[string]bool
	cssApplied int
	domNodes   int

	// activeLedger is the current load's energy ledger; it outlives the load
	// (the tail phase covers post-display radio decay) and is closed by the
	// session driver or by the next Load.
	activeLedger *obs.Ledger

	// Result/ledger reuse (WithReusableResults): the same Result and Ledger
	// objects serve every load, so a steady-state visit allocates neither.
	reuseResults bool
	resBuf       *Result
	ledgerBuf    *obs.Ledger

	// Energy-aware state.
	scripts          []*scriptSlot
	nextScript       int
	scriptRunning    bool
	pendingCSS       []*webpage.Resource
	pendingImages    []*webpage.Resource
	scannedMainBytes int
	simpleDrawn      bool
	transmissionOver bool
	mainStream       *docStream
	simpleScanned    int

	// State of the one energy-aware script execution in flight (guarded by
	// scriptRunning, so a single set of fields suffices).
	eaExecSlot *scriptSlot
	eaExecEff  *jsmini.Effects
	eaExecFrag *docStream
	eaExecCost time.Duration

	// Object free lists. The engine is single-goroutine, so plain slices do;
	// in steady state every fetch, parser and script slot comes from here.
	fsFree     []*fetchState
	parserFree []*docParser
	slotFree   []*scriptSlot

	// Callbacks bound once at construction so hot-path scheduling allocates
	// nothing.
	reflowCostFn      func() time.Duration
	redrawCostFn      func() time.Duration
	styleCostFn       func() time.Duration
	layoutCostFn      func() time.Duration
	renderCostFn      func() time.Duration
	simpleCostFn      func() time.Duration
	reflowDoneNilFn   func()
	reflowDoneCloseFn func()
	reflowDoneEndFn   func()
	redrawDoneCloseFn func()
	origImageDoneFn   func()
	origCSSParsedFn   func(*webpage.Resource)
	origCSSStyledFn   func()
	eaCSSScannedFn    func(*webpage.Resource)
	addDOMNodesFn     func(int)
	cssAppliedFn      func()
	simpleShownFn     func()
	renderDoneFn      func()
	eaScriptDoneFn    func()
	forceDormantFn    func()
	deliverFn         func()
	energyProbeFn     obs.EnergyProbe

	// stateNames labels the radio's energy-probe slots, cached per profile.
	stateNames *obs.StateNames
}

// stateNamesCache holds one obs.StateNames per radio profile: slot i carries
// the cumulative joules of the backend's rrc.State(i). Ledgers share the
// cached table, so per-load ledger setup never rebuilds name strings.
var stateNamesCache sync.Map // profile string -> *obs.StateNames

// stateNamesFor returns the cached slot labels for the radio's profile.
func stateNamesFor(radio rrc.RadioModel) *obs.StateNames {
	if v, ok := stateNamesCache.Load(radio.Profile()); ok {
		return v.(*obs.StateNames)
	}
	var n obs.StateNames
	for i := 1; i < radio.NumStates(); i++ {
		n[i] = radio.StateName(rrc.State(i))
	}
	v, _ := stateNamesCache.LoadOrStore(radio.Profile(), &n)
	return v.(*obs.StateNames)
}

// The probe copies rrc's state-indexed array into an obs.EnergyVec, so the
// vector must be at least as wide as any radio backend's state space.
var _ [obs.NumEnergyStates - rrc.MaxStates]struct{}

type scriptSlot struct {
	url    string
	body   string
	ready  bool
	inline bool
}

// arrivalKind tells the shared fetch path what to do when an object arrives.
// It replaces the per-fetch onArrive closure: the handler code is a switch in
// dispatchArrival and the only per-fetch state is the pooled fetchState.
type arrivalKind int8

const (
	arriveMain arrivalKind = iota + 1
	arriveOrigScript
	arriveOrigImage
	arriveOrigCSS
	arriveOrigSubdoc
	arriveEAImage
	arriveEACSS
	arriveEASubdoc
	arriveEAScript
)

// Option configures an Engine.
type Option interface {
	apply(*Engine)
}

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithDormancyGuard overrides the delay between the end of data transmission
// and the forced radio release (energy-aware pipeline).
func WithDormancyGuard(d time.Duration) Option {
	return optionFunc(func(e *Engine) { e.dormancyGuard = d })
}

// WithTransmissionDoneHook replaces the engine's default dormancy behaviour:
// fn is invoked when the data-transmission phase completes and the caller
// (e.g. the Algorithm 2 policy) decides if and when to force dormancy.
func WithTransmissionDoneHook(fn func()) Option {
	return optionFunc(func(e *Engine) {
		e.onTransmissionDone = fn
		e.autoDormancy = false
	})
}

// WithoutAutoDormancy keeps the energy-aware computation reordering but
// disables the automatic radio release (used by ablation experiments).
func WithoutAutoDormancy() Option {
	return optionFunc(func(e *Engine) { e.autoDormancy = false })
}

// WithEventLog records the load timeline (object arrivals, script
// executions, displays) into Result.Events.
func WithEventLog() Option {
	return optionFunc(func(e *Engine) { e.logEvents = true })
}

// WithFetchRetryPolicy overrides the engine's fetch-hardening parameters:
// the per-object attempt budget, the initial exponential backoff and its
// cap, and the per-object deadline after which a failing fetch is abandoned
// (the page then loads without the object).
func WithFetchRetryPolicy(attempts int, backoff, backoffCap, deadline time.Duration) Option {
	return optionFunc(func(e *Engine) {
		e.fetchAttempts = attempts
		e.fetchBackoff = backoff
		e.fetchBackoffCap = backoffCap
		e.fetchDeadline = deadline
	})
}

// WithObserver streams load, transfer and phase events into r (a recorder
// registered with an obs.Collector). A nil recorder keeps the engine's
// observability hooks disabled.
func WithObserver(r *obs.Recorder) Option {
	return optionFunc(func(e *Engine) { e.observer = r })
}

// WithReusableResults makes the engine hand out the same Result and Ledger
// objects for every load instead of allocating fresh ones. The objects are
// valid until the next Load on the same engine begins; callers that keep
// results across loads (tables collecting one Result per page) must not use
// this. Session pools and fleet replays, which consume each visit's result
// before starting the next, turn it on to keep the per-visit allocation
// count flat.
func WithReusableResults() Option {
	return optionFunc(func(e *Engine) { e.reuseResults = true })
}

// WithRIL routes dormancy requests through a Radio Interface Layer endpoint
// (Section 4.4) instead of touching the radio directly. The request becomes
// an asynchronous message with hop latency and can come back BUSY, in which
// case the engine retries briefly — the behaviour an application-layer
// implementation on a closed firmware has to adopt.
func WithRIL(iface *ril.Interface) Option {
	return optionFunc(func(e *Engine) { e.radioIface = iface })
}

// NewEngine builds an engine over the given simulated radio (any
// rrc.RadioModel backend) and link.
func NewEngine(clock *simtime.Clock, radio rrc.RadioModel, link *netsim.Link,
	cost CostModel, mode Mode, opts ...Option) (*Engine, error) {
	if clock == nil || radio == nil || link == nil {
		return nil, errors.New("browser: nil clock, radio or link")
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if mode != ModeOriginal && mode != ModeEnergyAware {
		return nil, fmt.Errorf("browser: unknown mode %d", int(mode))
	}
	e := &Engine{
		clock:           clock,
		radio:           radio,
		link:            link,
		cost:            cost,
		mode:            mode,
		cpu:             newCPU(clock, cost.CPUActiveWatts),
		dormancyGuard:   DefaultDormancyGuard,
		autoDormancy:    mode == ModeEnergyAware,
		fetchAttempts:   DefaultFetchAttempts,
		fetchBackoff:    DefaultFetchBackoff,
		fetchBackoffCap: DefaultFetchBackoffCap,
		fetchDeadline:   DefaultFetchDeadline,
	}
	for _, o := range opts {
		o.apply(e)
	}
	if e.fetchAttempts < 1 || e.fetchBackoff < 0 || e.fetchBackoffCap < e.fetchBackoff || e.fetchDeadline <= 0 {
		return nil, errors.New("browser: invalid fetch retry policy")
	}
	e.stateNames = stateNamesFor(radio)
	e.cpu.observer = e.observer
	e.bindCallbacks()
	return e, nil
}

// bindCallbacks creates the engine's reusable callbacks once, so the load
// hot path never allocates a closure for routine scheduling.
func (e *Engine) bindCallbacks() {
	e.reflowCostFn = e.reflowCost
	e.redrawCostFn = e.redrawCost
	e.styleCostFn = e.styleCost
	e.layoutCostFn = e.layoutCost
	e.renderCostFn = e.renderCost
	e.simpleCostFn = e.simpleCost
	e.reflowDoneNilFn = e.reflowDoneNil
	e.reflowDoneCloseFn = e.reflowDoneClose
	e.reflowDoneEndFn = e.reflowDoneEnd
	e.redrawDoneCloseFn = e.redrawDoneClose
	e.origImageDoneFn = e.origImageDecoded
	e.origCSSParsedFn = e.origCSSParsed
	e.origCSSStyledFn = e.origCSSStyled
	e.eaCSSScannedFn = e.eaCSSScanned
	e.addDOMNodesFn = e.addDOMNodes
	e.cssAppliedFn = e.cssAppliedTick
	e.simpleShownFn = e.simpleShown
	e.renderDoneFn = e.renderDone
	e.eaScriptDoneFn = e.eaScriptDone
	e.forceDormantFn = func() { _ = e.forceDormant() }
	e.deliverFn = e.deliver
	e.energyProbeFn = e.energyProbe
}

// Mode returns the engine's pipeline.
func (e *Engine) Mode() Mode { return e.mode }

// CPUPower returns the instantaneous extra CPU power, for metering.
func (e *Engine) CPUPower() float64 { return e.cpu.Power() }

// Loading reports whether a load is in progress.
func (e *Engine) Loading() bool { return e.loading }

// Load starts loading page; done is invoked (via the clock) when the final
// display is on screen. Drive the simulation clock to make progress.
func (e *Engine) Load(page *webpage.Page, done func(*Result)) error {
	if e.loading {
		return errors.New("browser: load already in progress")
	}
	if page == nil || page.Main() == nil {
		return errors.New("browser: page has no main document")
	}
	e.page = page
	e.plan = planFor(page)
	e.doneFn = done
	e.loading = true
	e.startAt = e.clock.Now()
	e.radioJ0 = e.radio.EnergyJ()
	e.cpuJ0 = e.cpu.EnergyJ()
	e.linkRetries0 = e.link.Retries()
	e.linkFailed0 = e.link.FailedTransfers()
	e.openWork = 0
	if e.fetched == nil {
		// First load on this engine: size the discovery structures from the
		// page so the visit never grows them incrementally.
		n := page.ResourceCount()
		e.fetched = make(map[string]bool, n)
		e.scripts = make([]*scriptSlot, 0, fsSlabSize)
		e.pendingCSS = make([]*webpage.Resource, 0, fsSlabSize)
		e.pendingImages = make([]*webpage.Resource, 0, n)
	} else {
		clear(e.fetched)
	}
	e.cssApplied = 0
	e.domNodes = 0
	for i, s := range e.scripts {
		e.putSlot(s)
		e.scripts[i] = nil
	}
	e.scripts = e.scripts[:0]
	e.nextScript = 0
	e.scriptRunning = false
	for i := range e.pendingCSS {
		e.pendingCSS[i] = nil
	}
	e.pendingCSS = e.pendingCSS[:0]
	for i := range e.pendingImages {
		e.pendingImages[i] = nil
	}
	e.pendingImages = e.pendingImages[:0]
	e.scannedMainBytes = 0
	e.simpleDrawn = false
	e.transmissionOver = false
	e.mainStream = nil
	e.simpleScanned = 0
	if e.reuseResults && e.resBuf != nil {
		r := e.resBuf
		evs := r.Events[:0]
		*r = Result{PageName: page.Name, Mode: e.mode, Mobile: page.Mobile, Events: evs}
		e.res = r
	} else {
		e.res = &Result{PageName: page.Name, Mode: e.mode, Mobile: page.Mobile}
		if e.reuseResults {
			e.resBuf = e.res
		}
	}
	// Every load carries a ledger (tables want the attribution column even
	// without tracing); a still-open previous ledger ends here, so its tail
	// phase covers the inter-load reading window.
	e.CloseLedger()
	if e.reuseResults && e.ledgerBuf != nil {
		e.ledgerBuf.Reopen()
		e.activeLedger = e.ledgerBuf
	} else {
		e.activeLedger = obs.NewLedger(e.energyProbeFn, e.stateNames)
		if e.reuseResults {
			e.ledgerBuf = e.activeLedger
		}
	}
	e.activeLedger.Mark("transmission", e.clock.Now())
	e.res.Ledger = e.activeLedger

	e.fetch(page.MainURL, arriveMain, nil, nil)
	return nil
}

// energyProbe samples the device's cumulative energy for the ledger.
func (e *Engine) energyProbe() (obs.EnergyVec, float64) {
	var v obs.EnergyVec
	rv := e.radio.EnergyVec()
	copy(v[:], rv[:])
	return v, e.cpu.EnergyJ()
}

// markPhase ends the current ledger phase and opens the named one.
func (e *Engine) markPhase(name string) {
	e.activeLedger.Mark(name, e.clock.Now())
}

// CloseLedger seals the active load's energy ledger at the current simulated
// time (ending the tail phase) and emits the per-phase attribution onto the
// observer. Session drivers call it after the reading window; an unclosed
// ledger is also sealed by the next Load. Safe to call repeatedly.
func (e *Engine) CloseLedger() {
	if e.activeLedger == nil || e.activeLedger.Closed() {
		return
	}
	e.activeLedger.Close(e.clock.Now())
	e.activeLedger.EmitPhases(e.observer)
}

// Reset abandons any in-flight load and returns the engine to its
// post-construction state, keeping pooled buffers and bound callbacks. The
// caller must have reset the simulation clock first (dropping every pending
// callback) and must also reset the radio and link the engine is wired to;
// experiments.Session.Reset drives the full sequence.
func (e *Engine) Reset() {
	e.loading = false
	e.page = nil
	e.plan = nil
	e.res = nil
	e.doneFn = nil
	e.startAt = 0
	e.radioJ0 = 0
	e.cpuJ0 = 0
	e.openWork = 0
	e.linkRetries0 = 0
	e.linkFailed0 = 0
	if e.fetched != nil {
		clear(e.fetched)
	}
	e.cssApplied = 0
	e.domNodes = 0
	e.activeLedger = nil
	for i, s := range e.scripts {
		e.putSlot(s)
		e.scripts[i] = nil
	}
	e.scripts = e.scripts[:0]
	e.nextScript = 0
	e.scriptRunning = false
	for i := range e.pendingCSS {
		e.pendingCSS[i] = nil
	}
	e.pendingCSS = e.pendingCSS[:0]
	for i := range e.pendingImages {
		e.pendingImages[i] = nil
	}
	e.pendingImages = e.pendingImages[:0]
	e.scannedMainBytes = 0
	e.simpleDrawn = false
	e.transmissionOver = false
	e.mainStream = nil
	e.simpleScanned = 0
	e.eaExecSlot = nil
	e.eaExecEff = nil
	e.eaExecFrag = nil
	e.eaExecCost = 0
	e.cpu.reset()
}

// since converts an absolute clock time into load-relative time.
func (e *Engine) since(at time.Duration) time.Duration {
	return at - e.startAt
}

// fetchState is the pooled per-fetch bookkeeping: which object, which
// arrival handler, and the retry budget. Its done and retry callbacks are
// bound once on the object's first issue, so steady-state fetches allocate
// nothing.
type fetchState struct {
	e       *Engine
	res     *webpage.Resource
	kind    arrivalKind
	attempt int
	firstAt time.Duration
	parser  *docParser
	slot    *scriptSlot
	doneFn  func(error)
	retryFn func()
}

// fsSlabSize is how many fetchStates the free list grows by at a time: one
// backing allocation serves the next several fetches instead of one each.
const fsSlabSize = 8

func (e *Engine) getFS() *fetchState {
	if n := len(e.fsFree); n > 0 {
		fs := e.fsFree[n-1]
		e.fsFree[n-1] = nil
		e.fsFree = e.fsFree[:n-1]
		return fs
	}
	slab := make([]fetchState, fsSlabSize)
	if e.fsFree == nil {
		e.fsFree = make([]*fetchState, 0, 2*fsSlabSize)
	}
	for i := range slab {
		slab[i].e = e
	}
	for i := 1; i < len(slab); i++ {
		e.fsFree = append(e.fsFree, &slab[i])
	}
	return &slab[0]
}

func (e *Engine) putFS(fs *fetchState) {
	fs.res = nil
	fs.parser = nil
	fs.slot = nil
	e.fsFree = append(e.fsFree, fs)
}

func (e *Engine) getSlot() *scriptSlot {
	if n := len(e.slotFree); n > 0 {
		s := e.slotFree[n-1]
		e.slotFree[n-1] = nil
		e.slotFree = e.slotFree[:n-1]
		return s
	}
	slab := make([]scriptSlot, fsSlabSize)
	if e.slotFree == nil {
		e.slotFree = make([]*scriptSlot, 0, 2*fsSlabSize)
	}
	for i := 1; i < len(slab); i++ {
		e.slotFree = append(e.slotFree, &slab[i])
	}
	return &slab[0]
}

func (e *Engine) putSlot(s *scriptSlot) {
	*s = scriptSlot{}
	e.slotFree = append(e.slotFree, s)
}

// fetch requests url once; when the object has fully arrived the handler for
// kind runs (dispatchArrival) and must eventually close the discovery unit
// exactly once. Under fault injection a fetch can fail permanently at the
// link layer; the engine then retries with capped exponential backoff up to
// its attempt budget and deadline, and finally abandons the object — the
// load completes degraded, never hangs.
func (e *Engine) fetch(url string, kind arrivalKind, parser *docParser, slot *scriptSlot) {
	if e.fetched[url] {
		return
	}
	e.fetched[url] = true
	res, ok := e.page.Resource(url)
	if !ok {
		e.res.Missing404++
		return
	}
	e.openWork++
	fs := e.getFS()
	if fs.doneFn == nil {
		fs.doneFn = fs.done
		fs.retryFn = fs.retry
	}
	fs.res = res
	fs.kind = kind
	fs.parser = parser
	fs.slot = slot
	fs.attempt = 1
	fs.firstAt = e.clock.Now()
	fs.issue()
}

// issue starts one engine-level attempt (the link retries internally below
// this).
func (fs *fetchState) issue() {
	e := fs.e
	if err := e.link.FetchResult(fs.res.URL, fs.res.Bytes, fs.doneFn); err != nil {
		// Zero-size resources cannot exist in generated pages; account and
		// fail the unit rather than wedging the load.
		e.res.Missing404++
		e.putFS(fs)
		e.closeUnit()
	}
}

// done handles the outcome of one attempt.
func (fs *fetchState) done(ferr error) {
	e := fs.e
	if ferr != nil {
		e.fetchFailed(fs)
		return
	}
	e.recordArrival(fs.res)
	res, kind, parser, slot := fs.res, fs.kind, fs.parser, fs.slot
	e.putFS(fs)
	e.dispatchArrival(res, kind, parser, slot)
}

func (fs *fetchState) retry() {
	fs.attempt++
	fs.issue()
}

// fetchFailed decides between another backoff-delayed attempt and graceful
// abandonment (budget spent or the per-object deadline passed).
func (e *Engine) fetchFailed(fs *fetchState) {
	if fs.attempt >= e.fetchAttempts || e.clock.Now()-fs.firstAt >= e.fetchDeadline {
		e.res.FailedObjects++
		e.logEvent(EventObjectFailed, fs.res.URL)
		e.putFS(fs)
		e.closeUnit()
		return
	}
	backoff := e.fetchBackoff << (fs.attempt - 1)
	if backoff > e.fetchBackoffCap {
		backoff = e.fetchBackoffCap
	}
	e.res.FetchRetries++
	e.logEvent(EventFetchRetried, fs.res.URL)
	e.clock.Defer(backoff, fs.retryFn)
}

// dispatchArrival routes an arrived object to its pipeline-specific handler.
func (e *Engine) dispatchArrival(res *webpage.Resource, kind arrivalKind, parser *docParser, slot *scriptSlot) {
	switch kind {
	case arriveMain:
		ds := e.plan.stream(res.URL, res.Body)
		e.mainStream = ds
		e.res.PageHeightPX = ds.heightPX
		e.res.PageWidthPX = ds.widthPX
		p := e.getParser(ds, true)
		switch e.mode {
		case ModeOriginal:
			p.origStep()
		case ModeEnergyAware:
			p.eaStep()
		}
	case arriveOrigScript:
		parser.execSP = e.plan.externalScript(res.URL)
		parser.execBody = res.Body
		parser.execCloseUnit = true
		parser.startOrigExec()
	case arriveOrigImage:
		decode := perKB(e.cost.DecodeImagePerKB, res.Bytes)
		e.cpu.exec(prioHigh, decode, e.origImageDoneFn)
	case arriveOrigCSS:
		parse := perKB(e.cost.ParseCSSPerKB, res.Bytes)
		e.cpu.execRes(prioHigh, parse, e.origCSSParsedFn, res)
	case arriveOrigSubdoc:
		e.getParser(e.plan.stream(res.URL, res.Body), false).origStep()
	case arriveEAImage:
		e.pendingImages = append(e.pendingImages, res)
		e.closeUnit()
	case arriveEACSS:
		scan := perKB(e.cost.ScanCSSPerKB, res.Bytes)
		e.cpu.execRes(prioHigh, scan, e.eaCSSScannedFn, res)
	case arriveEASubdoc:
		e.getParser(e.plan.stream(res.URL, res.Body), false).eaStep()
	case arriveEAScript:
		slot.body = res.Body
		slot.ready = true
		e.eaPumpScripts()
	}
}

// closeUnit retires one unit of outstanding discovery work (a fetched
// object, a pending script, a document fragment being scanned). Callers that
// open a unit not tied to a fetch increment openWork directly.
func (e *Engine) closeUnit() {
	e.openWork--
	if e.openWork < 0 {
		panic("browser: openWork underflow (closeUnit called twice)")
	}
	if e.openWork == 0 {
		e.discoveryDone()
	}
}

// logEvent appends a timeline entry when event logging is on, and forwards
// it to the observer stream when one is attached.
func (e *Engine) logEvent(kind EventKind, detail string) {
	if e.observer != nil {
		e.observer.Record(e.clock.Now(), obs.Event{Kind: kind.String(), Detail: detail})
	}
	if !e.logEvents || e.res == nil {
		return
	}
	e.res.Events = append(e.res.Events, LoadEvent{
		At:     e.since(e.clock.Now()),
		Kind:   kind,
		Detail: detail,
	})
}

func (e *Engine) recordArrival(res *webpage.Resource) {
	e.logEvent(EventObjectArrived, res.URL)
	e.res.Objects++
	e.res.BytesDown += res.Bytes
	switch res.Type {
	case webpage.TypeJS:
		e.res.JSFiles++
		e.res.PageSizeBytes += res.Bytes
	case webpage.TypeImage:
		e.res.Images++
		e.res.ImageBytes += res.Bytes
	case webpage.TypeCSS:
		e.res.CSSFiles++
		e.res.PageSizeBytes += res.Bytes
	case webpage.TypeHTML:
		e.res.PageSizeBytes += res.Bytes
	case webpage.TypeFlash:
		e.res.ImageBytes += res.Bytes
	}
}

// discoveryDone fires when no outstanding fetches or discovery work remain.
func (e *Engine) discoveryDone() {
	if !e.loading {
		return
	}
	switch e.mode {
	case ModeOriginal:
		e.logEvent(EventTransmissionDone, "")
		e.markPhase("layout")
		// One final reflow puts the complete page on screen.
		e.cpu.execLazy(prioHigh, e.reflowCostFn, e.reflowDoneEndFn)
	case ModeEnergyAware:
		e.eaTransmissionDone()
	}
}

// runScript evaluates a script body (real execution via jsmini) and returns
// its effects plus the simulated cost. Broken scripts cost their parse time
// but have no effects, like a browser swallowing a script error.
func (e *Engine) runScript(body string) (*jsmini.Effects, time.Duration) {
	cost := perKB(e.cost.ExecJSPerKB, len(body))
	eff, err := jsmini.Run(body)
	if err != nil {
		return &jsmini.Effects{}, cost
	}
	cost += time.Duration(eff.ComputeMillis * float64(e.cost.JSComputeUnit))
	return eff, cost
}

// scriptEffects resolves a script's effects, generated-markup stream and
// simulated cost from the load plan, falling back to direct evaluation for
// scripts the plan traversal missed.
func (e *Engine) scriptEffects(sp *scriptPlan, body string) (*jsmini.Effects, *docStream, time.Duration) {
	if sp == nil {
		eff, cost := e.runScript(body)
		var frag *docStream
		if eff.HTML != "" {
			frag = buildStream(eff.HTML)
		}
		return eff, frag, cost
	}
	cost := perKB(e.cost.ExecJSPerKB, len(body))
	cost += time.Duration(sp.eff.ComputeMillis * float64(e.cost.JSComputeUnit))
	return sp.eff, sp.effStream, cost
}

// countAnchor records a secondary URL (Table 1 feature).
func (e *Engine) countAnchor() {
	e.res.SecondURLs++
}

// Reflows and redraws come in a few fixed continuation shapes (nothing,
// close a discovery unit, finish the load); each shape has a callback bound
// once so scheduling the display update allocates nothing.

func (e *Engine) reflowCost() time.Duration {
	return perNode(e.cost.LayoutPerNode+e.cost.RenderPerNode, e.domNodes)
}

func (e *Engine) redrawCost() time.Duration {
	return perNode(e.cost.RedrawPerNode, e.domNodes)
}

func (e *Engine) styleCost() time.Duration {
	return perNode(e.cost.StylePerNode, e.domNodes)
}

func (e *Engine) layoutCost() time.Duration {
	return perNode(e.cost.LayoutPerNode, e.domNodes)
}

func (e *Engine) renderCost() time.Duration {
	return perNode(e.cost.RenderPerNode, e.domNodes)
}

func (e *Engine) reflowDoneNil() {
	e.res.Reflows++
	e.maybeFirstDisplay()
}

func (e *Engine) reflowDoneClose() {
	e.res.Reflows++
	e.maybeFirstDisplay()
	e.closeUnit()
}

func (e *Engine) reflowDoneEnd() {
	e.res.Reflows++
	e.maybeFirstDisplay()
	e.finish()
}

func (e *Engine) redrawDoneClose() {
	e.res.Redraws++
	e.closeUnit()
}

// scheduleReflowNil enqueues a reflow (layout + render over the whole DOM)
// with no continuation.
func (e *Engine) scheduleReflowNil() {
	e.cpu.execLazy(prioHigh, e.reflowCostFn, e.reflowDoneNilFn)
}

// addDOMNodes is the completion of a deferred (low-priority) DOM parse task.
func (e *Engine) addDOMNodes(n int) {
	e.domNodes += n
}

// maybeFirstDisplay records the first useful intermediate display of the
// original pipeline: a reflow that had both content and style to show.
func (e *Engine) maybeFirstDisplay() {
	if e.res.FirstDisplayAt == 0 && e.cssApplied > 0 && e.domNodes > 0 {
		e.res.FirstDisplayAt = e.since(e.clock.Now())
		e.logEvent(EventFirstDisplay, "")
	}
}

// finish closes out the load and reports the result.
func (e *Engine) finish() {
	if !e.loading {
		return
	}
	e.loading = false
	now := e.clock.Now()
	e.res.FinalDisplayAt = e.since(now)
	e.logEvent(EventFinalDisplay, "")
	e.markPhase("tail")
	if start, end, ok := e.link.TransmissionWindow(); ok {
		_ = start
		e.res.TransmissionTime = e.since(end)
	}
	e.res.DOMNodes = e.domNodes
	e.res.RadioEnergyJ = e.radio.EnergyJ() - e.radioJ0
	e.res.CPUEnergyJ = e.cpu.EnergyJ() - e.cpuJ0
	e.res.LinkRetries = e.link.Retries() - e.linkRetries0
	e.res.FailedTransfers = e.link.FailedTransfers() - e.linkFailed0
	if e.doneFn != nil {
		e.clock.Defer(0, e.deliverFn)
	}
}

// deliver hands the finished Result to the load's done callback. It reads
// the fields at fire time; nothing can overwrite them between finish and the
// zero-delay delivery event.
func (e *Engine) deliver() {
	done := e.doneFn
	res := e.res
	done(res)
}
