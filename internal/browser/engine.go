package browser

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/jsmini"
	"eabrowse/internal/netsim"
	"eabrowse/internal/obs"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// DefaultDormancyGuard is how long after the last data transmission the
// energy-aware pipeline waits before forcing the radio dormant. Fig. 9 shows
// the paper's prototype dropping to IDLE ≈2.5 s after the final transfer.
const DefaultDormancyGuard = 2500 * time.Millisecond

// Fetch-hardening defaults: how the engine reacts when the link reports a
// permanently failed transfer (possible only under fault injection). Each
// object gets DefaultFetchAttempts engine-level attempts — each of which is
// itself retried inside the link — with exponential backoff between them,
// and a wall-clock deadline after which the engine stops retrying and loads
// the page without the object instead of hanging the pipeline.
const (
	// DefaultFetchAttempts is the engine-level attempt budget per object.
	DefaultFetchAttempts = 3
	// DefaultFetchBackoff is the first retry delay; it doubles per attempt.
	DefaultFetchBackoff = 500 * time.Millisecond
	// DefaultFetchBackoffCap bounds the exponential backoff.
	DefaultFetchBackoffCap = 4 * time.Second
	// DefaultFetchDeadline is the per-object timeout: once this much time
	// has passed since the first attempt, a failed object is abandoned
	// rather than retried.
	DefaultFetchDeadline = 2 * time.Minute
)

// Engine loads webpages through one of the two pipelines. An Engine performs
// one load at a time; construct it once per simulation scenario and reuse it
// for sequential loads. Not safe for concurrent use.
type Engine struct {
	clock *simtime.Clock
	radio *rrc.Machine
	link  *netsim.Link
	cost  CostModel
	mode  Mode
	cpu   *cpu

	dormancyGuard      time.Duration
	onTransmissionDone func()
	autoDormancy       bool
	radioIface         *ril.Interface
	logEvents          bool
	observer           *obs.Recorder

	fetchAttempts   int
	fetchBackoff    time.Duration
	fetchBackoffCap time.Duration
	fetchDeadline   time.Duration

	// Per-load state.
	page         *webpage.Page
	res          *Result
	doneFn       func(*Result)
	loading      bool
	startAt      time.Duration
	radioJ0      float64
	cpuJ0        float64
	openWork     int
	linkRetries0 int
	linkFailed0  int

	fetched    map[string]bool
	cssApplied int
	domNodes   int

	// activeLedger is the current load's energy ledger; it outlives the load
	// (the tail phase covers post-display radio decay) and is closed by the
	// session driver or by the next Load.
	activeLedger *obs.Ledger

	// Energy-aware state.
	scripts          []*scriptSlot
	nextScript       int
	scriptRunning    bool
	pendingCSS       []*webpage.Resource
	pendingImages    []*webpage.Resource
	scannedMainBytes int
	simpleDrawn      bool
	transmissionOver bool
}

type scriptSlot struct {
	url    string
	body   string
	ready  bool
	inline bool
	close  func()
}

// Option configures an Engine.
type Option interface {
	apply(*Engine)
}

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithDormancyGuard overrides the delay between the end of data transmission
// and the forced radio release (energy-aware pipeline).
func WithDormancyGuard(d time.Duration) Option {
	return optionFunc(func(e *Engine) { e.dormancyGuard = d })
}

// WithTransmissionDoneHook replaces the engine's default dormancy behaviour:
// fn is invoked when the data-transmission phase completes and the caller
// (e.g. the Algorithm 2 policy) decides if and when to force dormancy.
func WithTransmissionDoneHook(fn func()) Option {
	return optionFunc(func(e *Engine) {
		e.onTransmissionDone = fn
		e.autoDormancy = false
	})
}

// WithoutAutoDormancy keeps the energy-aware computation reordering but
// disables the automatic radio release (used by ablation experiments).
func WithoutAutoDormancy() Option {
	return optionFunc(func(e *Engine) { e.autoDormancy = false })
}

// WithEventLog records the load timeline (object arrivals, script
// executions, displays) into Result.Events.
func WithEventLog() Option {
	return optionFunc(func(e *Engine) { e.logEvents = true })
}

// WithFetchRetryPolicy overrides the engine's fetch-hardening parameters:
// the per-object attempt budget, the initial exponential backoff and its
// cap, and the per-object deadline after which a failing fetch is abandoned
// (the page then loads without the object).
func WithFetchRetryPolicy(attempts int, backoff, backoffCap, deadline time.Duration) Option {
	return optionFunc(func(e *Engine) {
		e.fetchAttempts = attempts
		e.fetchBackoff = backoff
		e.fetchBackoffCap = backoffCap
		e.fetchDeadline = deadline
	})
}

// WithObserver streams load, transfer and phase events into r (a recorder
// registered with an obs.Collector). A nil recorder keeps the engine's
// observability hooks disabled.
func WithObserver(r *obs.Recorder) Option {
	return optionFunc(func(e *Engine) { e.observer = r })
}

// WithRIL routes dormancy requests through a Radio Interface Layer endpoint
// (Section 4.4) instead of touching the radio directly. The request becomes
// an asynchronous message with hop latency and can come back BUSY, in which
// case the engine retries briefly — the behaviour an application-layer
// implementation on a closed firmware has to adopt.
func WithRIL(iface *ril.Interface) Option {
	return optionFunc(func(e *Engine) { e.radioIface = iface })
}

// NewEngine builds an engine over the given simulated radio and link.
func NewEngine(clock *simtime.Clock, radio *rrc.Machine, link *netsim.Link,
	cost CostModel, mode Mode, opts ...Option) (*Engine, error) {
	if clock == nil || radio == nil || link == nil {
		return nil, errors.New("browser: nil clock, radio or link")
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if mode != ModeOriginal && mode != ModeEnergyAware {
		return nil, fmt.Errorf("browser: unknown mode %d", int(mode))
	}
	e := &Engine{
		clock:           clock,
		radio:           radio,
		link:            link,
		cost:            cost,
		mode:            mode,
		cpu:             newCPU(clock, cost.CPUActiveWatts),
		dormancyGuard:   DefaultDormancyGuard,
		autoDormancy:    mode == ModeEnergyAware,
		fetchAttempts:   DefaultFetchAttempts,
		fetchBackoff:    DefaultFetchBackoff,
		fetchBackoffCap: DefaultFetchBackoffCap,
		fetchDeadline:   DefaultFetchDeadline,
	}
	for _, o := range opts {
		o.apply(e)
	}
	if e.fetchAttempts < 1 || e.fetchBackoff < 0 || e.fetchBackoffCap < e.fetchBackoff || e.fetchDeadline <= 0 {
		return nil, errors.New("browser: invalid fetch retry policy")
	}
	e.cpu.observer = e.observer
	return e, nil
}

// Mode returns the engine's pipeline.
func (e *Engine) Mode() Mode { return e.mode }

// CPUPower returns the instantaneous extra CPU power, for metering.
func (e *Engine) CPUPower() float64 { return e.cpu.Power() }

// Loading reports whether a load is in progress.
func (e *Engine) Loading() bool { return e.loading }

// Load starts loading page; done is invoked (via the clock) when the final
// display is on screen. Drive the simulation clock to make progress.
func (e *Engine) Load(page *webpage.Page, done func(*Result)) error {
	if e.loading {
		return errors.New("browser: load already in progress")
	}
	if page == nil || page.Main() == nil {
		return errors.New("browser: page has no main document")
	}
	e.page = page
	e.doneFn = done
	e.loading = true
	e.startAt = e.clock.Now()
	e.radioJ0 = e.radio.EnergyJ()
	e.cpuJ0 = e.cpu.EnergyJ()
	e.linkRetries0 = e.link.Retries()
	e.linkFailed0 = e.link.FailedTransfers()
	e.openWork = 0
	e.fetched = make(map[string]bool, page.ResourceCount())
	e.cssApplied = 0
	e.domNodes = 0
	e.scripts = nil
	e.nextScript = 0
	e.scriptRunning = false
	e.pendingCSS = nil
	e.pendingImages = nil
	e.scannedMainBytes = 0
	e.simpleDrawn = false
	e.transmissionOver = false
	e.res = &Result{PageName: page.Name, Mode: e.mode, Mobile: page.Mobile}
	// Every load carries a ledger (tables want the attribution column even
	// without tracing); a still-open previous ledger ends here, so its tail
	// phase covers the inter-load reading window.
	e.CloseLedger()
	e.activeLedger = obs.NewLedger(e.energyProbe)
	e.activeLedger.Mark("transmission", e.clock.Now())
	e.res.Ledger = e.activeLedger

	e.fetch(page.MainURL, func(res *webpage.Resource, closeUnit func()) {
		ds := buildStream(res.Body)
		e.res.PageHeightPX = ds.heightPX
		e.res.PageWidthPX = ds.widthPX
		switch e.mode {
		case ModeOriginal:
			e.origRunDoc(ds, closeUnit)
		case ModeEnergyAware:
			e.eaRunDoc(ds, true, closeUnit)
		}
	})
	return nil
}

// energyProbe samples the device's cumulative energy for the ledger.
func (e *Engine) energyProbe() (map[string]float64, float64) {
	return e.radio.EnergyByState(), e.cpu.EnergyJ()
}

// markPhase ends the current ledger phase and opens the named one.
func (e *Engine) markPhase(name string) {
	e.activeLedger.Mark(name, e.clock.Now())
}

// CloseLedger seals the active load's energy ledger at the current simulated
// time (ending the tail phase) and emits the per-phase attribution onto the
// observer. Session drivers call it after the reading window; an unclosed
// ledger is also sealed by the next Load. Safe to call repeatedly.
func (e *Engine) CloseLedger() {
	if e.activeLedger == nil || e.activeLedger.Closed() {
		return
	}
	e.activeLedger.Close(e.clock.Now())
	e.activeLedger.EmitPhases(e.observer)
}

// since converts an absolute clock time into load-relative time.
func (e *Engine) since(at time.Duration) time.Duration {
	return at - e.startAt
}

// fetch requests url once; onArrive runs when the object has fully arrived
// and must eventually call its closeUnit exactly once. Under fault injection
// a fetch can fail permanently at the link layer; the engine then retries
// with capped exponential backoff up to its attempt budget and deadline, and
// finally abandons the object — the load completes degraded, never hangs.
func (e *Engine) fetch(url string, onArrive func(res *webpage.Resource, closeUnit func())) {
	if e.fetched[url] {
		return
	}
	e.fetched[url] = true
	res, ok := e.page.Resource(url)
	if !ok {
		e.res.Missing404++
		return
	}
	e.openWork++
	e.fetchAttempt(res, 1, e.clock.Now(), onArrive)
}

// fetchAttempt issues one engine-level attempt (the link retries internally
// below this) and handles its outcome.
func (e *Engine) fetchAttempt(res *webpage.Resource, attempt int, firstAt time.Duration,
	onArrive func(res *webpage.Resource, closeUnit func())) {
	err := e.link.FetchResult(res.URL, res.Bytes, func(ferr error) {
		if ferr != nil {
			e.fetchFailed(res, attempt, firstAt, onArrive)
			return
		}
		e.recordArrival(res)
		onArrive(res, e.closeUnit)
	})
	if err != nil {
		// Zero-size resources cannot exist in generated pages; account and
		// fail the unit rather than wedging the load.
		e.res.Missing404++
		e.closeUnit()
	}
}

// fetchFailed decides between another backoff-delayed attempt and graceful
// abandonment (budget spent or the per-object deadline passed).
func (e *Engine) fetchFailed(res *webpage.Resource, attempt int, firstAt time.Duration,
	onArrive func(res *webpage.Resource, closeUnit func())) {
	if attempt >= e.fetchAttempts || e.clock.Now()-firstAt >= e.fetchDeadline {
		e.res.FailedObjects++
		e.logEvent(EventObjectFailed, res.URL)
		e.closeUnit()
		return
	}
	backoff := e.fetchBackoff << (attempt - 1)
	if backoff > e.fetchBackoffCap {
		backoff = e.fetchBackoffCap
	}
	e.res.FetchRetries++
	e.logEvent(EventFetchRetried, res.URL)
	e.clock.After(backoff, func() {
		e.fetchAttempt(res, attempt+1, firstAt, onArrive)
	})
}

// openUnit registers a unit of outstanding discovery work not tied to a
// fetch (e.g. a pending inline script).
func (e *Engine) openUnit() func() {
	e.openWork++
	return e.closeUnit
}

func (e *Engine) closeUnit() {
	e.openWork--
	if e.openWork < 0 {
		panic("browser: openWork underflow (closeUnit called twice)")
	}
	if e.openWork == 0 {
		e.discoveryDone()
	}
}

// logEvent appends a timeline entry when event logging is on, and forwards
// it to the observer stream when one is attached.
func (e *Engine) logEvent(kind EventKind, detail string) {
	if e.observer != nil {
		e.observer.Record(e.clock.Now(), obs.Event{Kind: kind.String(), Detail: detail})
	}
	if !e.logEvents || e.res == nil {
		return
	}
	e.res.Events = append(e.res.Events, LoadEvent{
		At:     e.since(e.clock.Now()),
		Kind:   kind,
		Detail: detail,
	})
}

func (e *Engine) recordArrival(res *webpage.Resource) {
	e.logEvent(EventObjectArrived, res.URL)
	e.res.Objects++
	e.res.BytesDown += res.Bytes
	switch res.Type {
	case webpage.TypeJS:
		e.res.JSFiles++
		e.res.PageSizeBytes += res.Bytes
	case webpage.TypeImage:
		e.res.Images++
		e.res.ImageBytes += res.Bytes
	case webpage.TypeCSS:
		e.res.CSSFiles++
		e.res.PageSizeBytes += res.Bytes
	case webpage.TypeHTML:
		e.res.PageSizeBytes += res.Bytes
	case webpage.TypeFlash:
		e.res.ImageBytes += res.Bytes
	}
}

// discoveryDone fires when no outstanding fetches or discovery work remain.
func (e *Engine) discoveryDone() {
	if !e.loading {
		return
	}
	switch e.mode {
	case ModeOriginal:
		e.logEvent(EventTransmissionDone, "")
		e.markPhase("layout")
		// One final reflow puts the complete page on screen.
		e.scheduleReflow(func() { e.finish() })
	case ModeEnergyAware:
		e.eaTransmissionDone()
	}
}

// runScript evaluates a script body (real execution via jsmini) and returns
// its effects plus the simulated cost. Broken scripts cost their parse time
// but have no effects, like a browser swallowing a script error.
func (e *Engine) runScript(body string) (*jsmini.Effects, time.Duration) {
	cost := perKB(e.cost.ExecJSPerKB, len(body))
	eff, err := jsmini.Run(body)
	if err != nil {
		return &jsmini.Effects{}, cost
	}
	cost += time.Duration(eff.ComputeMillis * float64(e.cost.JSComputeUnit))
	return eff, cost
}

// countAnchor records a secondary URL (Table 1 feature).
func (e *Engine) countAnchor() {
	e.res.SecondURLs++
}

// scheduleReflow enqueues a reflow (layout + render over the whole DOM) and
// runs then when it completes.
func (e *Engine) scheduleReflow(then func()) {
	e.cpu.execLazy(prioHigh, func() time.Duration {
		return perNode(e.cost.LayoutPerNode+e.cost.RenderPerNode, e.domNodes)
	}, func() {
		e.res.Reflows++
		e.maybeFirstDisplay()
		if then != nil {
			then()
		}
	})
}

// scheduleRedraw enqueues a redraw (search all nodes, repaint).
func (e *Engine) scheduleRedraw(then func()) {
	e.cpu.execLazy(prioHigh, func() time.Duration {
		return perNode(e.cost.RedrawPerNode, e.domNodes)
	}, func() {
		e.res.Redraws++
		if then != nil {
			then()
		}
	})
}

// maybeFirstDisplay records the first useful intermediate display of the
// original pipeline: a reflow that had both content and style to show.
func (e *Engine) maybeFirstDisplay() {
	if e.res.FirstDisplayAt == 0 && e.cssApplied > 0 && e.domNodes > 0 {
		e.res.FirstDisplayAt = e.since(e.clock.Now())
		e.logEvent(EventFirstDisplay, "")
	}
}

// finish closes out the load and reports the result.
func (e *Engine) finish() {
	if !e.loading {
		return
	}
	e.loading = false
	now := e.clock.Now()
	e.res.FinalDisplayAt = e.since(now)
	e.logEvent(EventFinalDisplay, "")
	e.markPhase("tail")
	if start, end, ok := e.link.TransmissionWindow(); ok {
		_ = start
		e.res.TransmissionTime = e.since(end)
	}
	e.res.DOMNodes = e.domNodes
	e.res.RadioEnergyJ = e.radio.EnergyJ() - e.radioJ0
	e.res.CPUEnergyJ = e.cpu.EnergyJ() - e.cpuJ0
	e.res.LinkRetries = e.link.Retries() - e.linkRetries0
	e.res.FailedTransfers = e.link.FailedTransfers() - e.linkFailed0
	if e.doneFn != nil {
		done := e.doneFn
		res := e.res
		e.clock.After(0, func() { done(res) })
	}
}
