package browser

import "eabrowse/internal/webpage"

// Original-pipeline arrival processing (the chunked parse itself lives on
// docParser in parser.go). Every object is fully processed on arrival —
// images decoded and redrawn, stylesheets parsed, applied and reflowed —
// exactly as the stock browser of Section 2.2 does.

// origFetchObject fetches a non-script object and processes it on arrival
// the way the original pipeline does.
func (e *Engine) origFetchObject(it item) {
	switch it.kind {
	case itemImage, itemFlash:
		e.fetch(it.url, arriveOrigImage, nil, nil)
	case itemCSS:
		e.fetch(it.url, arriveOrigCSS, nil, nil)
	case itemSubdoc:
		e.fetch(it.url, arriveOrigSubdoc, nil, nil)
	}
}

// origImageDecoded completes an image decode: a freshly decoded image
// changes visibility only, so redraw and close the unit.
func (e *Engine) origImageDecoded() {
	e.cpu.execLazy(prioHigh, e.redrawCostFn, e.redrawDoneCloseFn)
}

// origCSSParsed completes a stylesheet parse: fetch the referenced images,
// then apply the new rules (style formatting over the DOM, then a reflow —
// rule changes affect the whole layout).
func (e *Engine) origCSSParsed(res *webpage.Resource) {
	for _, u := range e.plan.refs(res.URL, res.Body) {
		e.origFetchObject(item{kind: itemImage, url: u})
	}
	e.cpu.execLazy(prioHigh, e.styleCostFn, e.origCSSStyledFn)
}

// origCSSStyled completes the style pass after a stylesheet was applied.
func (e *Engine) origCSSStyled() {
	e.cssApplied++
	e.cpu.execLazy(prioHigh, e.reflowCostFn, e.reflowDoneCloseFn)
}
