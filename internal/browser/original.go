package browser

import (
	"time"

	"eabrowse/internal/cssscan"
	"eabrowse/internal/webpage"
)

// The original pipeline (Section 2.2 / Fig. 2): the browser parses HTML
// incrementally; every discovered object is fetched and then *fully
// processed on arrival* — images decoded, stylesheets parsed and applied,
// layout recalculated — before parsing continues. External scripts block the
// parser until they are fetched and executed. Intermediate displays are
// redrawn and reflowed frequently. Data transmissions end up spread across
// the whole load (Fig. 4) because discovery keeps stalling on computation.

// origRunDoc drives the incremental parse of one document stream. closeUnit
// must be called exactly once when the document (and the scripts it blocks
// on) has been fully consumed.
func (e *Engine) origRunDoc(ds *docStream, closeUnit func()) {
	e.origStep(ds, 0, closeUnit)
}

// origStep consumes items starting at index i: batches plain content into
// chunks, fetches referenced objects, and suspends on scripts.
func (e *Engine) origStep(ds *docStream, i int, closeUnit func()) {
	if i >= len(ds.items) {
		closeUnit()
		return
	}

	chunkBytes := 0
	chunkNodes := 0
	var fetchables []item
	anchors := 0
	j := i
	var blocking *item
	for ; j < len(ds.items); j++ {
		it := ds.items[j]
		if it.kind == itemScript || it.kind == itemInlineScript {
			blocking = &ds.items[j]
			chunkBytes += it.bytes
			chunkNodes += it.nodes
			j++
			break
		}
		chunkBytes += it.bytes
		chunkNodes += it.nodes
		switch it.kind {
		case itemImage, itemCSS, itemSubdoc, itemFlash:
			fetchables = append(fetchables, it)
		case itemAnchor:
			anchors++
		}
		if chunkBytes >= e.cost.ChunkBytes {
			j++
			break
		}
	}
	next := j

	parseCost := perKB(e.cost.ParseHTMLPerKB, chunkBytes)
	e.cpu.exec(prioHigh, parseCost, func() {
		e.domNodes += chunkNodes
		for k := 0; k < anchors; k++ {
			e.countAnchor()
		}
		for _, it := range fetchables {
			e.origFetchObject(it)
		}
		// The original browser updates the intermediate display after each
		// parsed chunk: a reflow over the current DOM.
		e.scheduleReflow(nil)

		if blocking == nil {
			e.origStep(ds, next, closeUnit)
			return
		}
		if blocking.kind == itemInlineScript {
			e.origExecScript(blocking.body, func() {
				e.origStep(ds, next, closeUnit)
			})
			return
		}
		// External script: parsing is suspended until the script is fetched
		// and executed (classic parser-blocking <script src>).
		e.fetch(blocking.url, func(res *webpage.Resource, scriptUnit func()) {
			e.origExecScript(res.Body, func() {
				scriptUnit()
				e.origStep(ds, next, closeUnit)
			})
		})
	})
}

// origExecScript executes a script body, applies its effects (new fetches,
// document.write markup) and then continues.
func (e *Engine) origExecScript(body string, then func()) {
	eff, cost := e.runScript(body)
	e.cpu.exec(prioHigh, cost, func() {
		e.res.JSRunTime += cost
		e.logEvent(EventScriptExecuted, "")
		for _, u := range eff.Fetches {
			e.origFetchObject(item{kind: itemImage, url: u})
		}
		if eff.HTML != "" {
			frag := buildStream(eff.HTML)
			unit := e.openUnit()
			e.origRunDoc(frag, unit)
		}
		then()
	})
}

// origFetchObject fetches a non-script object and processes it on arrival
// the way the original pipeline does.
func (e *Engine) origFetchObject(it item) {
	switch it.kind {
	case itemImage, itemFlash:
		e.fetch(it.url, func(res *webpage.Resource, closeUnit func()) {
			decode := perKB(e.cost.DecodeImagePerKB, res.Bytes)
			e.cpu.exec(prioHigh, decode, func() {
				// A freshly decoded image changes visibility only: redraw.
				e.scheduleRedraw(closeUnit)
			})
		})
	case itemCSS:
		e.fetch(it.url, func(res *webpage.Resource, closeUnit func()) {
			parse := perKB(e.cost.ParseCSSPerKB, res.Bytes)
			e.cpu.exec(prioHigh, parse, func() {
				sheet := cssscan.Parse(res.Body)
				for _, u := range sheet.Refs {
					e.origFetchObject(item{kind: itemImage, url: u})
				}
				// Apply the new rules: style formatting over the DOM, then
				// a reflow (rule changes affect the whole layout).
				e.cpu.execLazy(prioHigh, func() time.Duration {
					return perNode(e.cost.StylePerNode, e.domNodes)
				}, func() {
					e.cssApplied++
					e.scheduleReflow(closeUnit)
				})
			})
		})
	case itemSubdoc:
		e.fetch(it.url, func(res *webpage.Resource, closeUnit func()) {
			e.origRunDoc(buildStream(res.Body), closeUnit)
		})
	}
}
