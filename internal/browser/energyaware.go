package browser

import (
	"time"

	"eabrowse/internal/cssscan"
	"eabrowse/internal/obs"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/webpage"
)

// The energy-aware pipeline (Section 4.1-4.2): run every computation that
// can generate data transmissions first — scan HTML and CSS for references,
// execute scripts in document order — issuing fetches as early as possible
// so transfers group together. HTML is still parsed into the DOM (scripts
// may need it), but as lower-priority work that never delays discovery.
// Layout computation (CSS rule extraction, image decoding, style formatting,
// layout calculation, rendering) is deferred until the last byte arrived;
// the radio is forced dormant right after data transmission ends. One cheap
// text-only intermediate display is drawn after a third of the main document
// has been scanned (full-version pages only).

// eaRunDoc scans one document stream chunk by chunk; closeUnit is called
// when the whole stream has been scanned (parse tasks may still be queued at
// low priority — they are layout-side work and do not hold up discovery).
func (e *Engine) eaRunDoc(ds *docStream, isMain bool, closeUnit func()) {
	e.eaStep(ds, 0, isMain, closeUnit)
}

func (e *Engine) eaStep(ds *docStream, i int, isMain bool, closeUnit func()) {
	if i >= len(ds.items) {
		closeUnit()
		return
	}

	chunkBytes := 0
	chunkNodes := 0
	var fetchables []item
	var scriptURLs []string
	var inlineBodies []string
	anchors := 0
	j := i
	for ; j < len(ds.items); j++ {
		it := ds.items[j]
		chunkBytes += it.bytes
		chunkNodes += it.nodes
		switch it.kind {
		case itemImage, itemCSS, itemSubdoc, itemFlash:
			fetchables = append(fetchables, it)
		case itemScript:
			scriptURLs = append(scriptURLs, it.url)
		case itemInlineScript:
			inlineBodies = append(inlineBodies, it.body)
		case itemAnchor:
			anchors++
		}
		if chunkBytes >= e.cost.ChunkBytes {
			j++
			break
		}
	}
	next := j

	scanCost := perKB(e.cost.ScanHTMLPerKB, chunkBytes)
	e.cpu.exec(prioHigh, scanCost, func() {
		for k := 0; k < anchors; k++ {
			e.countAnchor()
		}
		// Discovery first: issue every fetch found in this chunk.
		for _, it := range fetchables {
			e.eaFetchObject(it)
		}
		// Scripts are registered in document order; execution happens as
		// soon as each is available and all earlier ones have run.
		for _, u := range scriptURLs {
			e.eaRegisterExternalScript(u)
		}
		for _, body := range inlineBodies {
			e.eaRegisterInlineScript(body)
		}
		// The DOM parse of this chunk is deferred work: it must happen
		// before scripts use the DOM and before layout, but it never blocks
		// discovery. Low priority keeps it behind all discovery tasks.
		e.cpu.exec(prioLow, perKB(e.cost.ParseHTMLPerKB, chunkBytes), func() {
			e.domNodes += chunkNodes
		})

		if isMain {
			e.scannedMainBytes += chunkBytes
			e.eaMaybeSimpleDisplay(ds)
		}
		e.eaStep(ds, next, isMain, closeUnit)
	})
}

// eaMaybeSimpleDisplay draws the low-overhead text-only intermediate display
// once a third of the main document has been scanned (Section 4.2). Mobile
// pages skip it: their load is short enough that only the final display is
// drawn.
func (e *Engine) eaMaybeSimpleDisplay(ds *docStream) {
	if e.simpleDrawn || e.page.Mobile {
		return
	}
	if e.scannedMainBytes*3 < ds.totalSize {
		return
	}
	e.simpleDrawn = true
	scanned := e.scannedMainBytes
	e.cpu.execLazy(prioHigh, func() time.Duration {
		// Cost scales with the content scanned so far; the display needs no
		// CSS rules, styles or images.
		nodes := estimateNodes(ds, scanned)
		return perNode(e.cost.SimpleDisplayPerNode, nodes)
	}, func() {
		if e.res.FirstDisplayAt == 0 {
			e.res.FirstDisplayAt = e.since(e.clock.Now())
			e.logEvent(EventFirstDisplay, "simplified")
		}
	})
}

// estimateNodes counts the nodes within the first scannedBytes of a stream.
func estimateNodes(ds *docStream, scannedBytes int) int {
	nodes := 0
	seen := 0
	for _, it := range ds.items {
		if seen >= scannedBytes {
			break
		}
		seen += it.bytes
		nodes += it.nodes
	}
	return nodes
}

// eaFetchObject fetches a non-script object. During the transmission phase
// nothing but discovery work happens on arrival: CSS is scanned for more
// references, images and flash are stored in memory undecoded, subdocuments
// are scanned recursively.
func (e *Engine) eaFetchObject(it item) {
	switch it.kind {
	case itemImage, itemFlash:
		e.fetch(it.url, func(res *webpage.Resource, closeUnit func()) {
			e.pendingImages = append(e.pendingImages, res)
			closeUnit()
		})
	case itemCSS:
		e.fetch(it.url, func(res *webpage.Resource, closeUnit func()) {
			scan := perKB(e.cost.ScanCSSPerKB, res.Bytes)
			e.cpu.exec(prioHigh, scan, func() {
				refs, _ := cssscan.ScanRefs(res.Body)
				for _, u := range refs {
					e.eaFetchObject(item{kind: itemImage, url: u})
				}
				e.pendingCSS = append(e.pendingCSS, res)
				closeUnit()
			})
		})
	case itemSubdoc:
		e.fetch(it.url, func(res *webpage.Resource, closeUnit func()) {
			e.eaRunDoc(buildStream(res.Body), false, closeUnit)
		})
	}
}

// eaRegisterExternalScript queues a script for in-order execution and
// fetches it.
func (e *Engine) eaRegisterExternalScript(url string) {
	if e.fetched[url] {
		return
	}
	slot := &scriptSlot{url: url}
	e.scripts = append(e.scripts, slot)
	e.fetch(url, func(res *webpage.Resource, closeUnit func()) {
		slot.body = res.Body
		slot.ready = true
		slot.close = closeUnit
		e.eaPumpScripts()
	})
}

// eaRegisterInlineScript queues an inline script (body already available).
func (e *Engine) eaRegisterInlineScript(body string) {
	slot := &scriptSlot{body: body, ready: true, inline: true, close: e.openUnit()}
	e.scripts = append(e.scripts, slot)
	e.eaPumpScripts()
}

// eaPumpScripts executes ready scripts in document order, one at a time.
func (e *Engine) eaPumpScripts() {
	if e.scriptRunning || e.nextScript >= len(e.scripts) {
		return
	}
	slot := e.scripts[e.nextScript]
	if !slot.ready {
		return
	}
	e.scriptRunning = true
	e.nextScript++
	eff, cost := e.runScript(slot.body)
	e.cpu.exec(prioHigh, cost, func() {
		e.res.JSRunTime += cost
		e.logEvent(EventScriptExecuted, scriptDetail(slot))
		for _, u := range eff.Fetches {
			e.eaFetchObject(item{kind: itemImage, url: u})
		}
		if eff.HTML != "" {
			frag := buildStream(eff.HTML)
			unit := e.openUnit()
			e.eaRunDoc(frag, false, unit)
		}
		slot.close()
		e.scriptRunning = false
		e.eaPumpScripts()
	})
}

// eaTransmissionDone fires when the last discovery obligation closed: every
// object is on the device. The radio can be released and layout can start.
func (e *Engine) eaTransmissionDone() {
	if e.transmissionOver {
		return
	}
	e.transmissionOver = true
	e.logEvent(EventTransmissionDone, "")
	e.markPhase("layout")

	if e.onTransmissionDone != nil {
		e.onTransmissionDone()
	} else if e.autoDormancy {
		e.clock.After(e.dormancyGuard, func() { e.forceDormant() })
	}

	e.eaLayoutPhase()
}

// ForceDormantNow releases the radio immediately (used by policies driving
// the engine through WithTransmissionDoneHook).
func (e *Engine) ForceDormantNow() error {
	return e.forceDormant()
}

// Dormancy retry policy: how often and how many times the engine re-submits
// a fast-dormancy request that came back BUSY, errored, or timed out before
// giving up and leaving the radio to its inactivity timers.
const (
	dormancyAttempts      = 3
	dormancyRetryInterval = 500 * time.Millisecond
)

func (e *Engine) forceDormant() error {
	if e.observer != nil {
		path := "direct"
		if e.radioIface != nil {
			path = "ril"
		}
		e.observer.Record(e.clock.Now(), obs.Event{Kind: obs.KindDormancyRequest, Detail: path})
	}
	if e.radioIface != nil {
		// Through the RIL: asynchronous, with retries — a transfer may have
		// started between the decision and the daemon executing it (BUSY),
		// and under fault injection the daemon may also error out or lose
		// the response entirely (per-attempt timeout).
		res := e.res
		e.radioIface.ForceDormancyWithRetry(dormancyAttempts, dormancyRetryInterval, func(resp ril.Response) {
			if resp.Status == ril.StatusOK {
				if res != nil && res.DormantAt == 0 {
					res.DormantAt = e.since(e.clock.Now())
					e.logEvent(EventDormant, "via RIL")
				}
				return
			}
			// Graceful degradation: every attempt failed. Do not hang the
			// guard — record the give-up and fall back to the timer-driven
			// DCH→FACH→IDLE demotion (T1/T2 are armed whenever the radio
			// goes quiet, exactly as in the stock pipeline).
			if res != nil {
				res.DormancyFailed = true
			}
			e.logEvent(EventDormantFailed, "RIL "+resp.Status.String())
		})
		return nil
	}
	err := e.radio.ForceIdle()
	if err != nil {
		// Same fallback on the direct path: the inactivity timers will
		// demote the radio; the load just spends more energy.
		if e.res != nil {
			e.res.DormancyFailed = true
		}
		e.logEvent(EventDormantFailed, err.Error())
		return err
	}
	if e.res != nil && e.res.DormantAt == 0 {
		e.res.DormantAt = e.since(e.clock.Now())
		e.logEvent(EventDormant, "")
	}
	return nil
}

// scriptDetail labels a script slot for the event log.
func scriptDetail(slot *scriptSlot) string {
	if slot.inline {
		return "(inline script)"
	}
	return slot.url
}

// RadioState exposes the radio state (for policies and tests).
func (e *Engine) RadioState() rrc.State {
	return e.radio.State()
}

// eaLayoutPhase queues the deferred layout computation: parse all CSS,
// decode all images, then style, lay out and render the page once. All
// low-priority, so any remaining DOM parse tasks run first.
func (e *Engine) eaLayoutPhase() {
	for _, css := range e.pendingCSS {
		res := css
		e.cpu.exec(prioLow, perKB(e.cost.ParseCSSPerKB, res.Bytes), func() {
			cssscan.Parse(res.Body)
			e.cssApplied++
		})
	}
	for _, img := range e.pendingImages {
		res := img
		e.cpu.exec(prioLow, perKB(e.cost.DecodeImagePerKB, res.Bytes), nil)
	}
	e.cpu.execLazy(prioLow, func() time.Duration {
		return perNode(e.cost.StylePerNode, e.domNodes)
	}, nil)
	e.cpu.execLazy(prioLow, func() time.Duration {
		return perNode(e.cost.LayoutPerNode, e.domNodes)
	}, nil)
	e.cpu.execLazy(prioLow, func() time.Duration {
		return perNode(e.cost.RenderPerNode, e.domNodes)
	}, func() {
		e.res.Reflows++
		e.finish()
	})
}
