package browser

import (
	"time"

	"eabrowse/internal/obs"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/webpage"
)

// The energy-aware pipeline (Section 4.1-4.2): run every computation that
// can generate data transmissions first — scan HTML and CSS for references,
// execute scripts in document order — issuing fetches as early as possible
// so transfers group together. HTML is still parsed into the DOM (scripts
// may need it), but as lower-priority work that never delays discovery.
// Layout computation (CSS rule extraction, image decoding, style formatting,
// layout calculation, rendering) is deferred until the last byte arrived;
// the radio is forced dormant right after data transmission ends. One cheap
// text-only intermediate display is drawn after a third of the main document
// has been scanned (full-version pages only). The chunked scan itself lives
// on docParser (parser.go).

// eaMaybeSimpleDisplay draws the low-overhead text-only intermediate display
// once a third of the main document has been scanned (Section 4.2). Mobile
// pages skip it: their load is short enough that only the final display is
// drawn.
func (e *Engine) eaMaybeSimpleDisplay() {
	if e.simpleDrawn || e.page.Mobile {
		return
	}
	if e.scannedMainBytes*3 < e.mainStream.totalSize {
		return
	}
	e.simpleDrawn = true
	e.simpleScanned = e.scannedMainBytes
	e.cpu.execLazy(prioHigh, e.simpleCostFn, e.simpleShownFn)
}

// simpleCost scales with the content scanned when the simplified display was
// triggered; the display needs no CSS rules, styles or images.
func (e *Engine) simpleCost() time.Duration {
	nodes := estimateNodes(e.mainStream, e.simpleScanned)
	return perNode(e.cost.SimpleDisplayPerNode, nodes)
}

func (e *Engine) simpleShown() {
	if e.res.FirstDisplayAt == 0 {
		e.res.FirstDisplayAt = e.since(e.clock.Now())
		e.logEvent(EventFirstDisplay, "simplified")
	}
}

// estimateNodes counts the nodes within the first scannedBytes of a stream.
func estimateNodes(ds *docStream, scannedBytes int) int {
	nodes := 0
	seen := 0
	for _, it := range ds.items {
		if seen >= scannedBytes {
			break
		}
		seen += it.bytes
		nodes += it.nodes
	}
	return nodes
}

// eaFetchObject fetches a non-script object. During the transmission phase
// nothing but discovery work happens on arrival: CSS is scanned for more
// references, images and flash are stored in memory undecoded, subdocuments
// are scanned recursively. (The arrival handlers live in dispatchArrival.)
func (e *Engine) eaFetchObject(it item) {
	switch it.kind {
	case itemImage, itemFlash:
		e.fetch(it.url, arriveEAImage, nil, nil)
	case itemCSS:
		e.fetch(it.url, arriveEACSS, nil, nil)
	case itemSubdoc:
		e.fetch(it.url, arriveEASubdoc, nil, nil)
	}
}

// eaCSSScanned completes an arrived stylesheet's reference scan: fetch what
// it references, park it for the layout phase, close the unit.
func (e *Engine) eaCSSScanned(res *webpage.Resource) {
	for _, u := range e.plan.refs(res.URL, res.Body) {
		e.eaFetchObject(item{kind: itemImage, url: u})
	}
	e.pendingCSS = append(e.pendingCSS, res)
	e.closeUnit()
}

// eaRegisterExternalScript queues a script for in-order execution and
// fetches it.
func (e *Engine) eaRegisterExternalScript(url string) {
	if e.fetched[url] {
		return
	}
	slot := e.getSlot()
	slot.url = url
	e.scripts = append(e.scripts, slot)
	e.fetch(url, arriveEAScript, nil, slot)
}

// eaRegisterInlineScript queues an inline script (body already available).
func (e *Engine) eaRegisterInlineScript(body string) {
	slot := e.getSlot()
	slot.body = body
	slot.ready = true
	slot.inline = true
	e.scripts = append(e.scripts, slot)
	e.openWork++
	e.eaPumpScripts()
}

// eaPumpScripts executes ready scripts in document order, one at a time.
// Exactly one execution is in flight (scriptRunning), so its state lives in
// a single set of engine fields consumed by eaScriptDone.
func (e *Engine) eaPumpScripts() {
	if e.scriptRunning || e.nextScript >= len(e.scripts) {
		return
	}
	slot := e.scripts[e.nextScript]
	if !slot.ready {
		return
	}
	e.scriptRunning = true
	e.nextScript++
	var sp *scriptPlan
	if slot.inline {
		sp = e.plan.inlineScript(slot.body)
	} else {
		sp = e.plan.externalScript(slot.url)
	}
	eff, frag, cost := e.scriptEffects(sp, slot.body)
	e.eaExecSlot, e.eaExecEff, e.eaExecFrag, e.eaExecCost = slot, eff, frag, cost
	e.cpu.exec(prioHigh, cost, e.eaScriptDoneFn)
}

// eaScriptDone applies the finished script's effects and pumps the next one.
func (e *Engine) eaScriptDone() {
	slot, eff, frag, cost := e.eaExecSlot, e.eaExecEff, e.eaExecFrag, e.eaExecCost
	e.eaExecSlot, e.eaExecEff, e.eaExecFrag = nil, nil, nil
	e.res.JSRunTime += cost
	e.logEvent(EventScriptExecuted, scriptDetail(slot))
	for _, u := range eff.Fetches {
		e.eaFetchObject(item{kind: itemImage, url: u})
	}
	if frag != nil {
		e.openWork++
		e.getParser(frag, false).eaStep()
	}
	e.closeUnit()
	e.scriptRunning = false
	e.eaPumpScripts()
}

// eaTransmissionDone fires when the last discovery obligation closed: every
// object is on the device. The radio can be released and layout can start.
func (e *Engine) eaTransmissionDone() {
	if e.transmissionOver {
		return
	}
	e.transmissionOver = true
	e.logEvent(EventTransmissionDone, "")
	e.markPhase("layout")

	if e.onTransmissionDone != nil {
		e.onTransmissionDone()
	} else if e.autoDormancy {
		e.clock.Defer(e.dormancyGuard, e.forceDormantFn)
	}

	e.eaLayoutPhase()
}

// ForceDormantNow releases the radio immediately (used by policies driving
// the engine through WithTransmissionDoneHook).
func (e *Engine) ForceDormantNow() error {
	return e.forceDormant()
}

// Dormancy retry policy: how often and how many times the engine re-submits
// a fast-dormancy request that came back BUSY, errored, or timed out before
// giving up and leaving the radio to its inactivity timers.
const (
	dormancyAttempts      = 3
	dormancyRetryInterval = 500 * time.Millisecond
)

func (e *Engine) forceDormant() error {
	if e.observer != nil {
		path := "direct"
		if e.radioIface != nil {
			path = "ril"
		}
		e.observer.Record(e.clock.Now(), obs.Event{Kind: obs.KindDormancyRequest, Detail: path})
	}
	if e.radioIface != nil {
		// Through the RIL: asynchronous, with retries — a transfer may have
		// started between the decision and the daemon executing it (BUSY),
		// and under fault injection the daemon may also error out or lose
		// the response entirely (per-attempt timeout).
		res := e.res
		e.radioIface.ForceDormancyWithRetry(dormancyAttempts, dormancyRetryInterval, func(resp ril.Response) {
			if resp.Status == ril.StatusOK {
				if res != nil && res.DormantAt == 0 {
					res.DormantAt = e.since(e.clock.Now())
					e.logEvent(EventDormant, "via RIL")
				}
				return
			}
			// Graceful degradation: every attempt failed. Do not hang the
			// guard — record the give-up and fall back to the timer-driven
			// DCH→FACH→IDLE demotion (T1/T2 are armed whenever the radio
			// goes quiet, exactly as in the stock pipeline).
			if res != nil {
				res.DormancyFailed = true
			}
			e.logEvent(EventDormantFailed, "RIL "+resp.Status.String())
		})
		return nil
	}
	err := e.radio.ForceIdle()
	if err != nil {
		// Same fallback on the direct path: the inactivity timers will
		// demote the radio; the load just spends more energy.
		if e.res != nil {
			e.res.DormancyFailed = true
		}
		e.logEvent(EventDormantFailed, err.Error())
		return err
	}
	if e.res != nil && e.res.DormantAt == 0 {
		e.res.DormantAt = e.since(e.clock.Now())
		e.logEvent(EventDormant, "")
	}
	return nil
}

// scriptDetail labels a script slot for the event log.
func scriptDetail(slot *scriptSlot) string {
	if slot.inline {
		return "(inline script)"
	}
	return slot.url
}

// RadioState exposes the radio state (for policies and tests).
func (e *Engine) RadioState() rrc.State {
	return e.radio.State()
}

// eaLayoutPhase queues the deferred layout computation: parse all CSS,
// decode all images, then style, lay out and render the page once. All
// low-priority, so any remaining DOM parse tasks run first.
func (e *Engine) eaLayoutPhase() {
	for _, css := range e.pendingCSS {
		// The parse product is already in the load plan; only the simulated
		// parse cost is charged here.
		e.cpu.exec(prioLow, perKB(e.cost.ParseCSSPerKB, css.Bytes), e.cssAppliedFn)
	}
	for _, img := range e.pendingImages {
		e.cpu.exec(prioLow, perKB(e.cost.DecodeImagePerKB, img.Bytes), nil)
	}
	e.cpu.execLazy(prioLow, e.styleCostFn, nil)
	e.cpu.execLazy(prioLow, e.layoutCostFn, nil)
	e.cpu.execLazy(prioLow, e.renderCostFn, e.renderDoneFn)
}

func (e *Engine) cssAppliedTick() {
	e.cssApplied++
}

func (e *Engine) renderDone() {
	e.res.Reflows++
	e.finish()
}
