package browser

import (
	"fmt"
	"time"

	"eabrowse/internal/obs"
)

// Mode selects a loading pipeline.
type Mode int

const (
	// ModeOriginal is the stock pipeline: data-transmission and layout
	// computation interleaved, intermediate displays redrawn frequently.
	ModeOriginal Mode = iota + 1
	// ModeEnergyAware is the paper's reordered pipeline.
	ModeEnergyAware
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOriginal:
		return "original"
	case ModeEnergyAware:
		return "energy-aware"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Result summarizes one page load. Durations are measured from the moment
// Load was called.
type Result struct {
	PageName string
	Mode     Mode
	Mobile   bool

	// TransmissionTime is the paper's "data transmission time": the time at
	// which the last byte of the last object arrived.
	TransmissionTime time.Duration
	// FirstDisplayAt is when the first intermediate display appeared
	// (zero if the pipeline drew only the final display).
	FirstDisplayAt time.Duration
	// FinalDisplayAt is when the complete page was on screen (the webpage
	// loading time).
	FinalDisplayAt time.Duration
	// DormantAt is when the radio was forced to IDLE (energy-aware pipeline
	// only; zero otherwise).
	DormantAt time.Duration

	// DOM and object statistics (Table 1 features among them).
	DOMNodes   int
	Objects    int // downloaded objects, including the main document
	JSFiles    int
	Images     int
	CSSFiles   int
	BytesDown  int
	ImageBytes int
	// PageSizeBytes is the webpage size without figures (Table 1).
	PageSizeBytes int
	JSRunTime     time.Duration
	SecondURLs    int
	PageHeightPX  int
	PageWidthPX   int

	// Pipeline-behaviour counters.
	Reflows    int
	Redraws    int
	Missing404 int

	// Fault-hardening counters; all zero in the fault-free simulation.
	//
	// FetchRetries counts engine-level re-fetches after the link reported a
	// permanent transfer failure. FailedObjects counts objects abandoned
	// after the retry budget or deadline ran out (the page rendered without
	// them). LinkRetries and FailedTransfers mirror the link's own
	// lower-level counters over this load's window.
	FetchRetries    int
	FailedObjects   int
	LinkRetries     int
	FailedTransfers int
	// DormancyFailed marks a load whose fast-dormancy request kept failing
	// (radio busy, RIL errors, or lost responses); the engine gave up and
	// left the radio to the timer-driven DCH→FACH→IDLE demotion instead.
	DormancyFailed bool

	// Energy over the load window (start → FinalDisplayAt).
	CPUEnergyJ   float64
	RadioEnergyJ float64

	// Events is the load timeline (object arrivals, script executions,
	// displays, phase boundaries), in order. Populated only when the engine
	// was built WithEventLog.
	Events []LoadEvent

	// Ledger attributes the load's energy to phases (transmission, layout,
	// tail) and RRC states. Always populated; the tail phase ends when the
	// session driver closes the ledger (after the reading window) or at the
	// engine's next Load.
	Ledger *obs.Ledger
}

// LoadEvent is one entry of the load timeline.
type LoadEvent struct {
	At   time.Duration
	Kind EventKind
	// Detail names the object or script involved, when applicable.
	Detail string
}

// EventKind classifies a load-timeline entry.
type EventKind int

const (
	// EventObjectArrived: the last byte of an object arrived.
	EventObjectArrived EventKind = iota + 1
	// EventScriptExecuted: a script finished executing.
	EventScriptExecuted
	// EventFirstDisplay: the intermediate display appeared.
	EventFirstDisplay
	// EventTransmissionDone: the data-transmission phase ended.
	EventTransmissionDone
	// EventDormant: the radio was forced to IDLE.
	EventDormant
	// EventFinalDisplay: the complete page was on screen.
	EventFinalDisplay
	// EventFetchRetried: the link reported a permanent transfer failure and
	// the engine scheduled a backoff retry.
	EventFetchRetried
	// EventObjectFailed: an object was abandoned after the retry budget or
	// deadline ran out; the load continued without it.
	EventObjectFailed
	// EventDormantFailed: every fast-dormancy attempt failed; the radio was
	// left to the timer-driven demotion path.
	EventDormantFailed
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventObjectArrived:
		return "object-arrived"
	case EventScriptExecuted:
		return "script-executed"
	case EventFirstDisplay:
		return "first-display"
	case EventTransmissionDone:
		return "transmission-done"
	case EventDormant:
		return "radio-dormant"
	case EventFinalDisplay:
		return "final-display"
	case EventFetchRetried:
		return "fetch-retried"
	case EventObjectFailed:
		return "object-failed"
	case EventDormantFailed:
		return "dormancy-failed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// TotalEnergyJ is radio plus CPU energy over the load.
func (r *Result) TotalEnergyJ() float64 {
	return r.CPUEnergyJ + r.RadioEnergyJ
}

// Degraded reports whether the load completed with reduced fidelity: objects
// were abandoned or the fast-dormancy fallback kicked in. A degraded load
// still finished — that is the guarantee the hardening buys.
func (r *Result) Degraded() bool {
	return r.FailedObjects > 0 || r.DormancyFailed
}

// LayoutTime is the part of the load spent after the last byte arrived —
// the visible "layout computation time" bar of Fig. 8.
func (r *Result) LayoutTime() time.Duration {
	if r.FinalDisplayAt <= r.TransmissionTime {
		return 0
	}
	return r.FinalDisplayAt - r.TransmissionTime
}
