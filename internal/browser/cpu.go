package browser

import (
	"time"

	"eabrowse/internal/obs"
	"eabrowse/internal/simtime"
)

// priority selects one of the CPU's two run queues. The energy-aware
// pipeline puts data-transmission computation (scanning, script execution)
// on the high queue and layout computation on the low queue, which is
// exactly the paper's reordering: discovery work always runs before deferred
// layout work.
type priority int

const (
	prioHigh priority = iota + 1
	prioLow
)

// cpuTask is one unit of simulated browser computation. The cost is
// evaluated when the task starts, so costs may depend on state built by
// earlier tasks (e.g. styling cost depends on the final DOM size).
type cpuTask struct {
	cost func() time.Duration
	fn   func()
}

// cpu is the single-threaded browser CPU: a non-preemptive two-level
// priority queue of tasks, with busy-time energy accounting.
type cpu struct {
	clock *simtime.Clock
	watts float64

	high []cpuTask
	low  []cpuTask

	busy        bool
	runningHigh bool
	busyStart   time.Duration
	busyTotal   time.Duration

	// onIdle fires whenever the CPU drains both queues.
	onIdle func()

	// observer receives one compute-slice event per completed task.
	observer *obs.Recorder
}

func newCPU(clock *simtime.Clock, watts float64) *cpu {
	return &cpu{clock: clock, watts: watts}
}

// exec enqueues a task with a fixed cost.
func (c *cpu) exec(p priority, cost time.Duration, fn func()) {
	c.execLazy(p, func() time.Duration { return cost }, fn)
}

// execLazy enqueues a task whose cost is computed when it starts.
func (c *cpu) execLazy(p priority, cost func() time.Duration, fn func()) {
	t := cpuTask{cost: cost, fn: fn}
	if p == prioHigh {
		c.high = append(c.high, t)
	} else {
		c.low = append(c.low, t)
	}
	c.pump()
}

func (c *cpu) pump() {
	if c.busy {
		return
	}
	var t cpuTask
	fromHigh := false
	switch {
	case len(c.high) > 0:
		t = c.high[0]
		c.high = c.high[1:]
		fromHigh = true
	case len(c.low) > 0:
		t = c.low[0]
		c.low = c.low[1:]
	default:
		if c.onIdle != nil {
			c.onIdle()
		}
		return
	}
	c.busy = true
	c.runningHigh = fromHigh
	c.busyStart = c.clock.Now()
	d := t.cost()
	if d < 0 {
		d = 0
	}
	c.clock.After(d, func() {
		slice := c.clock.Now() - c.busyStart
		c.busyTotal += slice
		c.busy = false
		c.runningHigh = false
		if c.observer != nil {
			queue := "low"
			if fromHigh {
				queue = "high"
			}
			c.observer.Record(c.clock.Now(), obs.Event{
				Kind:   obs.KindComputeSlice,
				Detail: queue,
				DurNS:  int64(slice),
			})
			c.observer.ObserveDur("compute_ns", slice)
		}
		if t.fn != nil {
			t.fn()
		}
		c.pump()
	})
}

// idle reports whether the CPU has no running or queued work.
func (c *cpu) idle() bool {
	return !c.busy && len(c.high) == 0 && len(c.low) == 0
}

// highIdle reports whether no high-priority (discovery) work is running or
// queued. A running low-priority task does not count.
func (c *cpu) highIdle() bool {
	if len(c.high) > 0 {
		return false
	}
	return !c.busy || !c.runningHigh
}

// Power returns the CPU's instantaneous extra power draw in watts.
func (c *cpu) Power() float64 {
	if c.busy {
		return c.watts
	}
	return 0
}

// EnergyJ returns CPU energy consumed so far, in Joules.
func (c *cpu) EnergyJ() float64 {
	busy := c.busyTotal
	if c.busy {
		busy += c.clock.Now() - c.busyStart
	}
	return c.watts * busy.Seconds()
}

// BusyTime returns total CPU busy time so far.
func (c *cpu) BusyTime() time.Duration {
	busy := c.busyTotal
	if c.busy {
		busy += c.clock.Now() - c.busyStart
	}
	return busy
}
