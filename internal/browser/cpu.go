package browser

import (
	"time"

	"eabrowse/internal/obs"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// priority selects one of the CPU's two run queues. The energy-aware
// pipeline puts data-transmission computation (scanning, script execution)
// on the high queue and layout computation on the low queue, which is
// exactly the paper's reordering: discovery work always runs before deferred
// layout work.
type priority int

const (
	prioHigh priority = iota + 1
	prioLow
)

// cpuTask is one unit of simulated browser computation. Most tasks carry a
// fixed costDur; tasks whose cost depends on state built by earlier tasks
// (e.g. styling cost depends on the final DOM size) carry a cost function
// evaluated when the task starts. The completion callback comes in three
// flavours — plain, resource-carrying and int-carrying — so callers can use
// a callback bound once per engine and pass the per-task datum alongside it
// instead of allocating a capturing closure per task.
type cpuTask struct {
	costDur time.Duration
	cost    func() time.Duration
	fn      func()
	fnRes   func(*webpage.Resource)
	argRes  *webpage.Resource
	fnInt   func(int)
	argInt  int
}

// cpu is the single-threaded browser CPU: a non-preemptive two-level
// priority queue of tasks, with busy-time energy accounting. The queues are
// head-indexed slices so the steady state recycles their backing arrays
// instead of reallocating per load.
type cpu struct {
	clock *simtime.Clock
	watts float64

	high     []cpuTask
	low      []cpuTask
	highHead int
	lowHead  int

	busy        bool
	runningHigh bool
	busyStart   time.Duration
	busyTotal   time.Duration

	// cur* hold the completion callback of the running task (one of the three
	// flavours); finishFn is the slice-completion handler, bound once so
	// scheduling it never allocates.
	curFn     func()
	curFnRes  func(*webpage.Resource)
	curArgRes *webpage.Resource
	curFnInt  func(int)
	curArgInt int
	finishFn  func()

	// onIdle fires whenever the CPU drains both queues.
	onIdle func()

	// observer receives one compute-slice event per completed task.
	observer *obs.Recorder
}

func newCPU(clock *simtime.Clock, watts float64) *cpu {
	// Queue capacity covers a typical page load outright, so a fresh CPU
	// never reallocates mid-visit.
	c := &cpu{
		clock: clock,
		watts: watts,
		high:  make([]cpuTask, 0, 32),
		low:   make([]cpuTask, 0, 8),
	}
	c.finishFn = c.finishSlice
	return c
}

// reset returns the CPU to a fresh idle state, keeping queue capacity.
func (c *cpu) reset() {
	for i := range c.high {
		c.high[i] = cpuTask{}
	}
	for i := range c.low {
		c.low[i] = cpuTask{}
	}
	c.high = c.high[:0]
	c.low = c.low[:0]
	c.highHead = 0
	c.lowHead = 0
	c.busy = false
	c.runningHigh = false
	c.busyStart = 0
	c.busyTotal = 0
	c.curFn = nil
	c.curFnRes = nil
	c.curArgRes = nil
	c.curFnInt = nil
	c.curArgInt = 0
}

// exec enqueues a task with a fixed cost.
func (c *cpu) exec(p priority, cost time.Duration, fn func()) {
	c.push(p, cpuTask{costDur: cost, fn: fn})
}

// execRes enqueues a fixed-cost task whose completion receives a resource.
func (c *cpu) execRes(p priority, cost time.Duration, fn func(*webpage.Resource), res *webpage.Resource) {
	c.push(p, cpuTask{costDur: cost, fnRes: fn, argRes: res})
}

// execInt enqueues a fixed-cost task whose completion receives an int.
func (c *cpu) execInt(p priority, cost time.Duration, fn func(int), n int) {
	c.push(p, cpuTask{costDur: cost, fnInt: fn, argInt: n})
}

// execLazy enqueues a task whose cost is computed when it starts.
func (c *cpu) execLazy(p priority, cost func() time.Duration, fn func()) {
	c.push(p, cpuTask{cost: cost, fn: fn})
}

func (c *cpu) push(p priority, t cpuTask) {
	if p == prioHigh {
		c.high = append(c.high, t)
	} else {
		c.low = append(c.low, t)
	}
	c.pump()
}

func (c *cpu) pump() {
	if c.busy {
		return
	}
	var t cpuTask
	fromHigh := false
	switch {
	case c.highHead < len(c.high):
		t = c.high[c.highHead]
		c.high[c.highHead] = cpuTask{}
		c.highHead++
		if c.highHead == len(c.high) {
			c.high = c.high[:0]
			c.highHead = 0
		}
		fromHigh = true
	case c.lowHead < len(c.low):
		t = c.low[c.lowHead]
		c.low[c.lowHead] = cpuTask{}
		c.lowHead++
		if c.lowHead == len(c.low) {
			c.low = c.low[:0]
			c.lowHead = 0
		}
	default:
		if c.onIdle != nil {
			c.onIdle()
		}
		return
	}
	c.busy = true
	c.runningHigh = fromHigh
	c.busyStart = c.clock.Now()
	d := t.costDur
	if t.cost != nil {
		d = t.cost()
	}
	if d < 0 {
		d = 0
	}
	c.curFn = t.fn
	c.curFnRes = t.fnRes
	c.curArgRes = t.argRes
	c.curFnInt = t.fnInt
	c.curArgInt = t.argInt
	c.clock.Defer(d, c.finishFn)
}

// finishSlice completes the running task: accounts the busy slice, reports
// it to the observer, runs the task's completion callback, and pumps.
func (c *cpu) finishSlice() {
	slice := c.clock.Now() - c.busyStart
	c.busyTotal += slice
	c.busy = false
	fromHigh := c.runningHigh
	c.runningHigh = false
	if c.observer != nil {
		queue := "low"
		if fromHigh {
			queue = "high"
		}
		c.observer.Record(c.clock.Now(), obs.Event{
			Kind:   obs.KindComputeSlice,
			Detail: queue,
			DurNS:  int64(slice),
		})
		c.observer.ObserveDur("compute_ns", slice)
	}
	fn, fnRes, argRes := c.curFn, c.curFnRes, c.curArgRes
	fnInt, argInt := c.curFnInt, c.curArgInt
	c.curFn, c.curFnRes, c.curArgRes, c.curFnInt = nil, nil, nil, nil
	switch {
	case fn != nil:
		fn()
	case fnRes != nil:
		fnRes(argRes)
	case fnInt != nil:
		fnInt(argInt)
	}
	c.pump()
}

// idle reports whether the CPU has no running or queued work.
func (c *cpu) idle() bool {
	return !c.busy && c.highHead == len(c.high) && c.lowHead == len(c.low)
}

// highIdle reports whether no high-priority (discovery) work is running or
// queued. A running low-priority task does not count.
func (c *cpu) highIdle() bool {
	if c.highHead < len(c.high) {
		return false
	}
	return !c.busy || !c.runningHigh
}

// Power returns the CPU's instantaneous extra power draw in watts.
func (c *cpu) Power() float64 {
	if c.busy {
		return c.watts
	}
	return 0
}

// EnergyJ returns CPU energy consumed so far, in Joules.
func (c *cpu) EnergyJ() float64 {
	busy := c.busyTotal
	if c.busy {
		busy += c.clock.Now() - c.busyStart
	}
	return c.watts * busy.Seconds()
}

// BusyTime returns total CPU busy time so far.
func (c *cpu) BusyTime() time.Duration {
	busy := c.busyTotal
	if c.busy {
		busy += c.clock.Now() - c.busyStart
	}
	return busy
}
