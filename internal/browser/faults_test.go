package browser

import (
	"testing"
	"time"

	"eabrowse/internal/faults"
	"eabrowse/internal/netsim"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// newFaultyRig wires a full phone — radio, impaired link, RIL endpoint
// sharing the same injector — under an engine in the given mode.
func newFaultyRig(t *testing.T, mode Mode, cfg faults.Config, opts ...Option) *rig {
	t.Helper()
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	link.SetFaults(in)
	iface, err := ril.New(clock, radio, ril.WithFaults(in))
	if err != nil {
		t.Fatalf("ril.New: %v", err)
	}
	engine, err := NewEngine(clock, radio, link, DefaultCostModel(), mode,
		append([]Option{WithRIL(iface)}, opts...)...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return &rig{clock: clock, radio: radio, link: link, engine: engine}
}

func hasEvent(res *Result, kind EventKind) bool {
	for _, ev := range res.Events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// TestEnergyAwareLoadCompletesUnderHeavyFaults is the liveness acceptance
// test: at 10% and 30% loss with stalls, hard failures, and a flaky RIL all
// active at once, every energy-aware page load must reach final display —
// degraded if need be, but never hung.
func TestEnergyAwareLoadCompletesUnderHeavyFaults(t *testing.T) {
	for _, loss := range []float64{0.10, 0.30} {
		loss := loss
		t.Run(time.Duration(loss*100).String(), func(t *testing.T) {
			cfg := faults.Config{
				Seed:                21,
				LossRate:            loss,
				RTTJitter:           300 * time.Millisecond,
				StallRate:           0.10,
				StallMin:            time.Second,
				StallMax:            8 * time.Second,
				FailRate:            0.05,
				FACHCongestionRate:  0.10,
				FACHCongestionDelay: 2 * time.Second,
				RILTimeoutRate:      0.10,
				RILErrorRate:        0.05,
				RILExtraLatency:     50 * time.Millisecond,
			}
			r := newFaultyRig(t, ModeEnergyAware, cfg, WithEventLog())
			res := r.load(t, testPage(t))
			if res.FinalDisplayAt <= 0 {
				t.Fatal("no final display recorded")
			}
			if res.FailedObjects+res.FetchRetries+res.LinkRetries == 0 {
				t.Fatal("impairments this heavy left no trace in the result counters")
			}
			if res.FetchRetries > 0 && !hasEvent(res, EventFetchRetried) {
				t.Fatal("FetchRetries counted but no EventFetchRetried logged")
			}
			if res.FailedObjects > 0 && !hasEvent(res, EventObjectFailed) {
				t.Fatal("FailedObjects counted but no EventObjectFailed logged")
			}
			// Let the dormancy machinery and reading window play out; the
			// radio must end up idle no matter how the RIL behaved.
			r.clock.RunFor(2 * time.Minute)
			if got := r.radio.State(); got != rrc.StateIdle {
				t.Fatalf("radio = %v two minutes after load, want IDLE", got)
			}
		})
	}
}

// TestDormancyFailureDegradesGracefully: with every RIL response lost, the
// energy-aware engine must record the give-up on the Result, log the event,
// and leave demotion to the rrc inactivity timers instead of hanging.
func TestDormancyFailureDegradesGracefully(t *testing.T) {
	cfg := faults.Config{Seed: 22, RILTimeoutRate: 0.999}
	r := newFaultyRig(t, ModeEnergyAware, cfg, WithEventLog())
	res := r.load(t, testPage(t))
	// Run past the retry loop (attempts x (timeout + interval)) and the
	// inactivity timers.
	r.clock.RunFor(2 * time.Minute)
	if !res.DormancyFailed {
		t.Fatal("DormancyFailed not set although every RIL response was lost")
	}
	if !res.Degraded() {
		t.Fatal("Degraded() false despite dormancy failure")
	}
	if !hasEvent(res, EventDormantFailed) {
		t.Fatal("EventDormantFailed missing from the event log")
	}
	if got := r.radio.State(); got != rrc.StateIdle {
		t.Fatalf("radio = %v, want IDLE via timer fallback", got)
	}
}

// TestFetchRetryBudgetAbandonsObjects: with a tight retry policy and a link
// that fails most transfers, the engine must abandon objects (counting them)
// rather than retry forever, and still finish the page.
func TestFetchRetryBudgetAbandonsObjects(t *testing.T) {
	cfg := faults.Config{Seed: 23, FailRate: 0.9}
	r := newFaultyRig(t, ModeEnergyAware, cfg, WithEventLog(),
		WithFetchRetryPolicy(2, 100*time.Millisecond, 200*time.Millisecond, 30*time.Second))
	res := r.load(t, testPage(t))
	if res.FailedObjects == 0 {
		t.Fatal("no objects abandoned at 90% hard-failure rate with a 2-attempt budget")
	}
	if !res.Degraded() {
		t.Fatal("Degraded() false despite abandoned objects")
	}
	if !hasEvent(res, EventObjectFailed) {
		t.Fatal("EventObjectFailed missing from the event log")
	}
	if res.FailedTransfers == 0 {
		t.Fatal("link-level failed-transfer counter not surfaced on the result")
	}
	if res.FinalDisplayAt <= 0 {
		t.Fatal("page never reached final display")
	}
}

// TestOriginalModeAlsoSurvivesFaults: the hardening is not specific to the
// energy-aware policy; the original engine completes under the same mix.
func TestOriginalModeAlsoSurvivesFaults(t *testing.T) {
	cfg := faults.Config{
		Seed:      24,
		LossRate:  0.2,
		StallRate: 0.1,
		StallMin:  time.Second,
		StallMax:  6 * time.Second,
		FailRate:  0.05,
	}
	r := newFaultyRig(t, ModeOriginal, cfg)
	res := r.load(t, testPage(t))
	if res.FinalDisplayAt <= 0 {
		t.Fatal("original mode never finished under faults")
	}
}

func TestWithFetchRetryPolicyValidation(t *testing.T) {
	tests := []struct {
		name                          string
		attempts                      int
		backoff, backoffCap, deadline time.Duration
	}{
		{"zero attempts", 0, time.Second, time.Second, time.Minute},
		{"negative backoff", 3, -time.Second, time.Second, time.Minute},
		{"cap below backoff", 3, 2 * time.Second, time.Second, time.Minute},
		{"zero deadline", 3, time.Second, time.Second, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			clock := simtime.NewClock()
			radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
			if err != nil {
				t.Fatalf("NewMachine: %v", err)
			}
			link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
			if err != nil {
				t.Fatalf("NewLink: %v", err)
			}
			_, err = NewEngine(clock, radio, link, DefaultCostModel(), ModeOriginal,
				WithFetchRetryPolicy(tt.attempts, tt.backoff, tt.backoffCap, tt.deadline))
			if err == nil {
				t.Fatal("bad retry policy accepted")
			}
		})
	}
}
