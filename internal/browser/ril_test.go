package browser

import (
	"testing"
	"time"

	"eabrowse/internal/netsim"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// TestEnergyAwareDormancyThroughRIL checks the Section 4.4 path: with a RIL
// endpoint configured, the energy-aware pipeline's forced dormancy goes
// through the message interface and still lands the radio in IDLE.
func TestEnergyAwareDormancyThroughRIL(t *testing.T) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	iface, err := ril.New(clock, radio)
	if err != nil {
		t.Fatalf("ril.New: %v", err)
	}
	engine, err := NewEngine(clock, radio, link, DefaultCostModel(), ModeEnergyAware, WithRIL(iface))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	page := testPage(t)
	var result *Result
	if err := engine.Load(page, func(r *Result) { result = r }); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for result == nil {
		if !clock.Step() {
			t.Fatal("simulation drained without result")
		}
	}
	clock.RunFor(5 * time.Second)

	if radio.State() != rrc.StateIdle {
		t.Fatalf("radio = %v, want IDLE via RIL", radio.State())
	}
	if iface.Served(ril.StatusOK) == 0 {
		t.Fatal("RIL served no successful dormancy request")
	}
	if result.DormantAt == 0 {
		t.Fatal("DormantAt not recorded through the RIL path")
	}
	// The RIL adds hop latency on top of the guard.
	if gap := result.DormantAt - result.TransmissionTime; gap < DefaultDormancyGuard {
		t.Fatalf("dormancy gap %v below guard %v", gap, DefaultDormancyGuard)
	}
}
