package browser

import (
	"strconv"
	"strings"

	"eabrowse/internal/htmlscan"
)

// itemKind classifies one unit of a document stream.
type itemKind int

const (
	itemMarkup itemKind = iota + 1 // text or plain element: contributes nodes
	itemImage
	itemCSS
	itemScript // external script reference
	itemInlineScript
	itemSubdoc
	itemFlash
	itemAnchor
)

// item is one unit of a parsed document stream, in source order. The
// simulated pipelines consume items incrementally: bytes drive parse/scan
// cost, nodes grow the DOM, refs trigger fetches, scripts suspend or enqueue
// execution.
type item struct {
	kind  itemKind
	url   string
	body  string // inline script body
	bytes int    // source bytes attributed to this item
	nodes int    // DOM nodes contributed
}

// docStream is the pre-tokenized form of one HTML document.
type docStream struct {
	items     []item
	totalSize int
	// heightPX/widthPX are the page geometry advertised on the body tag
	// (Table 1 features).
	heightPX int
	widthPX  int
}

// buildStream tokenizes an HTML source into a document stream. Byte
// attribution: each item owns the source bytes from its own offset up to the
// next event's offset, so the per-item byte counts always sum to len(src).
func buildStream(src string) *docStream {
	ds := &docStream{totalSize: len(src)}
	type rawEvent struct {
		ev  htmlscan.Event
		off int
	}
	var events []rawEvent
	htmlscan.Stream(src, func(ev htmlscan.Event) {
		events = append(events, rawEvent{ev: ev, off: ev.Off})
	})

	for idx, re := range events {
		end := len(src)
		if idx+1 < len(events) {
			end = events[idx+1].off
		}
		bytes := end - re.off
		if bytes < 0 {
			bytes = 0
		}
		ev := re.ev
		switch ev.Kind {
		case htmlscan.EventText:
			ds.append(item{kind: itemMarkup, bytes: bytes, nodes: 1})
		case htmlscan.EventEnd:
			ds.append(item{kind: itemMarkup, bytes: bytes})
		case htmlscan.EventScriptBody:
			// Only a non-empty <script> body is an inline script; the raw
			// text of a <script src=...></script> element is empty.
			if ev.Tag == "script" && strings.TrimSpace(ev.Text) != "" {
				ds.append(item{kind: itemInlineScript, body: ev.Text, bytes: bytes})
			} else {
				ds.append(item{kind: itemMarkup, bytes: bytes})
			}
		case htmlscan.EventStart:
			if ev.Tag == "body" {
				ds.heightPX = atoiAttr(ev.Attrs, "data-height")
				ds.widthPX = atoiAttr(ev.Attrs, "data-width")
			}
			if ev.Ref == nil {
				ds.append(item{kind: itemMarkup, bytes: bytes, nodes: 1})
				break
			}
			switch ev.Ref.Kind {
			case htmlscan.RefImage:
				ds.append(item{kind: itemImage, url: ev.Ref.URL, bytes: bytes, nodes: 1})
			case htmlscan.RefStylesheet:
				ds.append(item{kind: itemCSS, url: ev.Ref.URL, bytes: bytes, nodes: 1})
			case htmlscan.RefScript:
				ds.append(item{kind: itemScript, url: ev.Ref.URL, bytes: bytes, nodes: 1})
			case htmlscan.RefSubdocument:
				ds.append(item{kind: itemSubdoc, url: ev.Ref.URL, bytes: bytes, nodes: 1})
			case htmlscan.RefFlash:
				ds.append(item{kind: itemFlash, url: ev.Ref.URL, bytes: bytes, nodes: 1})
			case htmlscan.RefAnchor:
				ds.append(item{kind: itemAnchor, url: ev.Ref.URL, bytes: bytes, nodes: 1})
			default:
				ds.append(item{kind: itemMarkup, bytes: bytes, nodes: 1})
			}
		}
	}
	return ds
}

func (ds *docStream) append(it item) {
	// Merge consecutive plain-markup items so chunking stays cheap.
	if it.kind == itemMarkup && len(ds.items) > 0 {
		last := &ds.items[len(ds.items)-1]
		if last.kind == itemMarkup {
			last.bytes += it.bytes
			last.nodes += it.nodes
			return
		}
	}
	ds.items = append(ds.items, it)
}

func atoiAttr(attrs map[string]string, key string) int {
	v, ok := attrs[key]
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}
