package browser

import (
	"time"

	"eabrowse/internal/jsmini"
)

// docParser drives the chunked consumption of one document stream. It is the
// explicit-state replacement for the recursive closures the pipelines used to
// allocate per chunk: the parser object is pooled on the engine, its step and
// completion callbacks are bound once when the object is first created, and
// per-chunk state lives in fields. A parser is strictly sequential — at most
// one of its CPU tasks is pending at a time — so the chunk fields are safe to
// reuse between steps. When the stream is consumed the parser closes its
// discovery unit and returns itself to the pool.
type docParser struct {
	e      *Engine
	ds     *docStream
	pos    int
	isMain bool

	// Current chunk, set by the scan in origStep/eaStep and consumed by the
	// chunk-parsed completion.
	chunkStart   int
	chunkEnd     int
	chunkBytes   int
	chunkNodes   int
	chunkAnchors int
	blockingIdx  int

	// Script-execution state for the original pipeline (the parser suspends
	// on blocking scripts).
	execSP        *scriptPlan
	execBody      string
	execEff       *jsmini.Effects
	execFrag      *docStream
	execCost      time.Duration
	execCloseUnit bool

	// Callbacks bound once per parser object (amortised to zero by pooling).
	origChunkFn func()
	origExecFn  func()
	eaChunkFn   func()
}

// getParser checks a parser out of the engine's free list.
func (e *Engine) getParser(ds *docStream, isMain bool) *docParser {
	var p *docParser
	if n := len(e.parserFree); n > 0 {
		p = e.parserFree[n-1]
		e.parserFree[n-1] = nil
		e.parserFree = e.parserFree[:n-1]
	} else {
		p = &docParser{e: e}
		p.origChunkFn = p.origChunkDone
		p.origExecFn = p.origExecDone
		p.eaChunkFn = p.eaChunkDone
	}
	p.ds = ds
	p.isMain = isMain
	p.pos = 0
	p.blockingIdx = -1
	return p
}

// putParser clears the parser's references and returns it to the free list.
func (e *Engine) putParser(p *docParser) {
	p.ds = nil
	p.isMain = false
	p.execSP = nil
	p.execBody = ""
	p.execEff = nil
	p.execFrag = nil
	e.parserFree = append(e.parserFree, p)
}

// --- Original pipeline ---------------------------------------------------
//
// (Section 2.2 / Fig. 2): the browser parses HTML incrementally; every
// discovered object is fetched and then *fully processed on arrival* —
// images decoded, stylesheets parsed and applied, layout recalculated —
// before parsing continues. External scripts block the parser until they are
// fetched and executed. Intermediate displays are redrawn and reflowed
// frequently. Data transmissions end up spread across the whole load (Fig. 4)
// because discovery keeps stalling on computation.

// origStep scans the next chunk — batching plain content, stopping at a
// blocking script or the chunk-size bound — and schedules its parse.
func (p *docParser) origStep() {
	e := p.e
	if p.pos >= len(p.ds.items) {
		e.putParser(p)
		e.closeUnit()
		return
	}

	chunkBytes, chunkNodes, anchors := 0, 0, 0
	blockingIdx := -1
	j := p.pos
	for ; j < len(p.ds.items); j++ {
		it := &p.ds.items[j]
		if it.kind == itemScript || it.kind == itemInlineScript {
			blockingIdx = j
			chunkBytes += it.bytes
			chunkNodes += it.nodes
			j++
			break
		}
		chunkBytes += it.bytes
		chunkNodes += it.nodes
		if it.kind == itemAnchor {
			anchors++
		}
		if chunkBytes >= e.cost.ChunkBytes {
			j++
			break
		}
	}
	p.chunkStart, p.chunkEnd = p.pos, j
	p.chunkNodes, p.chunkAnchors = chunkNodes, anchors
	p.blockingIdx = blockingIdx
	p.pos = j

	e.cpu.exec(prioHigh, perKB(e.cost.ParseHTMLPerKB, chunkBytes), p.origChunkFn)
}

// origChunkDone applies a parsed chunk: grow the DOM, count anchors, fetch
// every referenced object, redraw the intermediate display, then either
// continue parsing or suspend on the chunk's blocking script.
func (p *docParser) origChunkDone() {
	e := p.e
	e.domNodes += p.chunkNodes
	for k := 0; k < p.chunkAnchors; k++ {
		e.countAnchor()
	}
	for k := p.chunkStart; k < p.chunkEnd; k++ {
		it := &p.ds.items[k]
		switch it.kind {
		case itemImage, itemCSS, itemSubdoc, itemFlash:
			e.origFetchObject(*it)
		}
	}
	// The original browser updates the intermediate display after each
	// parsed chunk: a reflow over the current DOM.
	e.scheduleReflowNil()

	if p.blockingIdx < 0 {
		p.origStep()
		return
	}
	bl := &p.ds.items[p.blockingIdx]
	if bl.kind == itemInlineScript {
		p.execSP = e.plan.inlineScript(bl.body)
		p.execBody = bl.body
		p.execCloseUnit = false
		p.startOrigExec()
		return
	}
	// External script: parsing is suspended until the script is fetched and
	// executed (classic parser-blocking <script src>); the arrival handler
	// resumes this parser.
	e.fetch(bl.url, arriveOrigScript, p, nil)
}

// startOrigExec resolves the suspended script through the load plan and
// schedules its execution.
func (p *docParser) startOrigExec() {
	e := p.e
	eff, frag, cost := e.scriptEffects(p.execSP, p.execBody)
	p.execEff, p.execFrag, p.execCost = eff, frag, cost
	e.cpu.exec(prioHigh, cost, p.origExecFn)
}

// origExecDone applies the executed script's effects (new fetches,
// document.write markup) and resumes parsing.
func (p *docParser) origExecDone() {
	e := p.e
	e.res.JSRunTime += p.execCost
	e.logEvent(EventScriptExecuted, "")
	for _, u := range p.execEff.Fetches {
		e.origFetchObject(item{kind: itemImage, url: u})
	}
	if p.execFrag != nil {
		e.openWork++
		child := e.getParser(p.execFrag, false)
		child.origStep()
	}
	wasFetch := p.execCloseUnit
	p.execSP, p.execBody, p.execEff, p.execFrag = nil, "", nil, nil
	p.execCloseUnit = false
	if wasFetch {
		e.closeUnit()
	}
	p.origStep()
}

// --- Energy-aware pipeline ------------------------------------------------
//
// (Section 4.1-4.2): run every computation that can generate data
// transmissions first — scan HTML and CSS for references, execute scripts in
// document order — issuing fetches as early as possible so transfers group
// together. HTML is still parsed into the DOM (scripts may need it), but as
// lower-priority work that never delays discovery.

// eaStep scans the next chunk of the stream and schedules the scan task.
func (p *docParser) eaStep() {
	e := p.e
	if p.pos >= len(p.ds.items) {
		e.putParser(p)
		e.closeUnit()
		return
	}

	chunkBytes, chunkNodes, anchors := 0, 0, 0
	j := p.pos
	for ; j < len(p.ds.items); j++ {
		it := &p.ds.items[j]
		chunkBytes += it.bytes
		chunkNodes += it.nodes
		if it.kind == itemAnchor {
			anchors++
		}
		if chunkBytes >= e.cost.ChunkBytes {
			j++
			break
		}
	}
	p.chunkStart, p.chunkEnd = p.pos, j
	p.chunkBytes, p.chunkNodes, p.chunkAnchors = chunkBytes, chunkNodes, anchors
	p.pos = j

	e.cpu.exec(prioHigh, perKB(e.cost.ScanHTMLPerKB, chunkBytes), p.eaChunkFn)
}

// eaChunkDone runs discovery for a scanned chunk: issue every fetch found,
// register scripts for in-order execution, defer the DOM parse to low
// priority, and continue scanning.
func (p *docParser) eaChunkDone() {
	e := p.e
	for k := 0; k < p.chunkAnchors; k++ {
		e.countAnchor()
	}
	// Discovery first: issue every fetch found in this chunk.
	for k := p.chunkStart; k < p.chunkEnd; k++ {
		it := &p.ds.items[k]
		switch it.kind {
		case itemImage, itemCSS, itemSubdoc, itemFlash:
			e.eaFetchObject(*it)
		}
	}
	// Scripts are registered in document order; execution happens as soon as
	// each is available and all earlier ones have run.
	for k := p.chunkStart; k < p.chunkEnd; k++ {
		if it := &p.ds.items[k]; it.kind == itemScript {
			e.eaRegisterExternalScript(it.url)
		}
	}
	for k := p.chunkStart; k < p.chunkEnd; k++ {
		if it := &p.ds.items[k]; it.kind == itemInlineScript {
			e.eaRegisterInlineScript(it.body)
		}
	}
	// The DOM parse of this chunk is deferred work: it must happen before
	// scripts use the DOM and before layout, but it never blocks discovery.
	// Low priority keeps it behind all discovery tasks.
	e.cpu.execInt(prioLow, perKB(e.cost.ParseHTMLPerKB, p.chunkBytes), e.addDOMNodesFn, p.chunkNodes)

	if p.isMain {
		e.scannedMainBytes += p.chunkBytes
		e.eaMaybeSimpleDisplay()
	}
	p.eaStep()
}
