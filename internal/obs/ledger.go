package obs

import (
	"sort"
	"time"
)

// NumEnergyStates is the fixed width of an EnergyVec. It must be at least as
// large as the radio model's state count (the browser layer asserts this at
// compile time); unused slots carry an empty name and stay zero.
const NumEnergyStates = 8

// EnergyVec is a cumulative radio-energy snapshot, one slot per RRC state.
// Fixed-size so ledger marks hold it by value: taking a snapshot allocates
// nothing, which keeps Mark off the per-visit allocation budget.
type EnergyVec [NumEnergyStates]float64

// StateNames labels the slots of an EnergyVec. Slots with an empty name are
// unused and must stay zero in every snapshot.
type StateNames [NumEnergyStates]string

// sortedIdx returns the used slot indices ordered by state name. Phase totals
// are accumulated in this order so the floating-point sums match the older
// map-based ledger, which iterated its keys sorted.
func (n *StateNames) sortedIdx() []int {
	idx := make([]int, 0, NumEnergyStates)
	for i, name := range n {
		if name != "" {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return n[idx[a]] < n[idx[b]] })
	return idx
}

// EnergyProbe samples the instrumented device's cumulative energy: radio
// joules split by RRC state, plus total CPU joules. The browser engine
// supplies one backed by rrc.Machine.EnergyVec and the CPU model.
type EnergyProbe func() (radioByStateJ EnergyVec, cpuJ float64)

// PhaseEnergy is one closed phase of a load: the energy spent between two
// ledger marks, attributed to RRC states and the CPU.
type PhaseEnergy struct {
	// Phase names the interval (transmission, layout, tail, reading...).
	Phase string `json:"phase"`
	// StartNS and EndNS bound the phase in simulated time.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// RadioByStateJ is the radio energy spent per RRC state during the phase.
	RadioByStateJ map[string]float64 `json:"radio_by_state_j"`
	// CPUJ is the compute energy spent during the phase.
	CPUJ float64 `json:"cpu_j"`
	// TotalJ is the phase's radio+CPU energy.
	TotalJ float64 `json:"total_j"`
}

// ledgerMark is one raw probe snapshot; deltas between consecutive marks
// become PhaseEnergy entries, so per-phase joules telescope exactly to the
// device totals. The snapshot is held by value: appending a mark to a ledger
// whose marks slice has capacity allocates nothing.
type ledgerMark struct {
	phase  string
	at     time.Duration
	radioJ EnergyVec
	cpuJ   float64
}

// Ledger attributes a load's energy to named phases. The engine marks phase
// boundaries (transmission start, layout start, tail start) and Close seals
// the last phase; Phases() then reports the per-phase, per-state breakdown.
// A nil Ledger is inert, like a nil Recorder.
type Ledger struct {
	probe  EnergyProbe
	names  *StateNames
	marks  []ledgerMark
	closed bool
}

// NewLedger builds a ledger over the given probe; names labels the probe's
// vector slots and must outlive the ledger.
func NewLedger(probe EnergyProbe, names *StateNames) *Ledger {
	// A load marks transmission, layout, tail and the closing seal; capacity
	// for eight keeps every normal load free of mark-slice growth.
	return &Ledger{probe: probe, names: names, marks: make([]ledgerMark, 0, 8)}
}

// Reopen resets a sealed ledger for a new load, keeping the probe, the name
// table and the marks slice's backing array. The previous load's phases are
// discarded, so callers must have consumed (or emitted) them first.
func (l *Ledger) Reopen() {
	if l == nil {
		return
	}
	l.marks = l.marks[:0]
	l.closed = false
}

// Mark opens a phase named phase at simulated time at, snapshotting the
// device's cumulative energy. The previous phase (if any) ends here.
func (l *Ledger) Mark(phase string, at time.Duration) {
	if l == nil || l.closed {
		return
	}
	radio, cpu := l.probe()
	l.marks = append(l.marks, ledgerMark{phase: phase, at: at, radioJ: radio, cpuJ: cpu})
}

// Close seals the ledger at simulated time at, ending the open phase. Further
// marks are ignored.
func (l *Ledger) Close(at time.Duration) {
	if l == nil || l.closed {
		return
	}
	l.Mark("", at)
	l.closed = true
}

// Closed reports whether Close has been called.
func (l *Ledger) Closed() bool {
	return l != nil && l.closed
}

// Phases returns the closed phases in chronological order. Values are
// rounded to a microjoule for stable serialization; TotalJ() remains exact.
func (l *Ledger) Phases() []PhaseEnergy {
	if l == nil || len(l.marks) < 2 {
		return nil
	}
	order := l.names.sortedIdx()
	out := make([]PhaseEnergy, 0, len(l.marks)-1)
	for i := 0; i+1 < len(l.marks); i++ {
		a, b := l.marks[i], l.marks[i+1]
		pe := PhaseEnergy{
			Phase:         a.phase,
			StartNS:       int64(a.at),
			EndNS:         int64(b.at),
			RadioByStateJ: make(map[string]float64),
			CPUJ:          Round6(b.cpuJ - a.cpuJ),
		}
		total := b.cpuJ - a.cpuJ
		for _, st := range order {
			d := b.radioJ[st] - a.radioJ[st]
			if d == 0 {
				continue
			}
			pe.RadioByStateJ[l.names[st]] = Round6(d)
			total += d
		}
		pe.TotalJ = Round6(total)
		out = append(out, pe)
	}
	return out
}

// TotalJ is the exact (unrounded) energy covered by the ledger: last
// snapshot minus first. Because phases are deltas between the same
// snapshots, the per-phase totals telescope to this value.
func (l *Ledger) TotalJ() float64 {
	if l == nil || len(l.marks) < 2 {
		return 0
	}
	first, last := l.marks[0], l.marks[len(l.marks)-1]
	total := last.cpuJ - first.cpuJ
	for _, st := range l.names.sortedIdx() {
		total += last.radioJ[st] - first.radioJ[st]
	}
	return total
}

// StartNS and EndNS bound the ledger in simulated time (0,0 when empty).
func (l *Ledger) StartNS() int64 {
	if l == nil || len(l.marks) == 0 {
		return 0
	}
	return int64(l.marks[0].at)
}

// EndNS is the simulated time of the last mark.
func (l *Ledger) EndNS() int64 {
	if l == nil || len(l.marks) == 0 {
		return 0
	}
	return int64(l.marks[len(l.marks)-1].at)
}

// PhaseTotalJ returns the rounded total of the named phase (0 if absent).
func (l *Ledger) PhaseTotalJ(phase string) float64 {
	for _, p := range l.Phases() {
		if p.Phase == phase {
			return p.TotalJ
		}
	}
	return 0
}

// EmitPhases records one phase-energy event per closed phase onto r. The
// events are retrospective summaries, so all of them are stamped at the
// ledger's close time — keeping the session's event stream monotone in
// simulated time — with each phase's own extent carried in DurNS.
func (l *Ledger) EmitPhases(r *Recorder) {
	if l == nil || r == nil {
		return
	}
	at := time.Duration(l.EndNS())
	for _, p := range l.Phases() {
		r.Record(at, Event{
			Kind:   KindPhaseEnergy,
			Detail: p.Phase,
			DurNS:  p.EndNS - p.StartNS,
			Joules: p.TotalJ,
		})
	}
}
