package obs

import (
	"sort"
	"time"
)

// EnergyProbe samples the instrumented device's cumulative energy: radio
// joules split by RRC state name, plus total CPU joules. The browser engine
// supplies one backed by rrc.Machine.EnergyByState and the CPU model.
type EnergyProbe func() (radioByStateJ map[string]float64, cpuJ float64)

// PhaseEnergy is one closed phase of a load: the energy spent between two
// ledger marks, attributed to RRC states and the CPU.
type PhaseEnergy struct {
	// Phase names the interval (transmission, layout, tail, reading...).
	Phase string `json:"phase"`
	// StartNS and EndNS bound the phase in simulated time.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// RadioByStateJ is the radio energy spent per RRC state during the phase.
	RadioByStateJ map[string]float64 `json:"radio_by_state_j"`
	// CPUJ is the compute energy spent during the phase.
	CPUJ float64 `json:"cpu_j"`
	// TotalJ is the phase's radio+CPU energy.
	TotalJ float64 `json:"total_j"`
}

// ledgerMark is one raw probe snapshot; deltas between consecutive marks
// become PhaseEnergy entries, so per-phase joules telescope exactly to the
// device totals.
type ledgerMark struct {
	phase  string
	at     time.Duration
	radioJ map[string]float64
	cpuJ   float64
}

// Ledger attributes a load's energy to named phases. The engine marks phase
// boundaries (transmission start, layout start, tail start) and Close seals
// the last phase; Phases() then reports the per-phase, per-state breakdown.
// A nil Ledger is inert, like a nil Recorder.
type Ledger struct {
	probe  EnergyProbe
	marks  []ledgerMark
	closed bool
}

// NewLedger builds a ledger over the given probe.
func NewLedger(probe EnergyProbe) *Ledger {
	return &Ledger{probe: probe}
}

// Mark opens a phase named phase at simulated time at, snapshotting the
// device's cumulative energy. The previous phase (if any) ends here.
func (l *Ledger) Mark(phase string, at time.Duration) {
	if l == nil || l.closed {
		return
	}
	radio, cpu := l.probe()
	l.marks = append(l.marks, ledgerMark{phase: phase, at: at, radioJ: radio, cpuJ: cpu})
}

// Close seals the ledger at simulated time at, ending the open phase. Further
// marks are ignored.
func (l *Ledger) Close(at time.Duration) {
	if l == nil || l.closed {
		return
	}
	l.Mark("", at)
	l.closed = true
}

// Closed reports whether Close has been called.
func (l *Ledger) Closed() bool {
	return l != nil && l.closed
}

// Phases returns the closed phases in chronological order. Values are
// rounded to a microjoule for stable serialization; TotalJ() remains exact.
func (l *Ledger) Phases() []PhaseEnergy {
	if l == nil || len(l.marks) < 2 {
		return nil
	}
	out := make([]PhaseEnergy, 0, len(l.marks)-1)
	for i := 0; i+1 < len(l.marks); i++ {
		a, b := l.marks[i], l.marks[i+1]
		pe := PhaseEnergy{
			Phase:         a.phase,
			StartNS:       int64(a.at),
			EndNS:         int64(b.at),
			RadioByStateJ: make(map[string]float64),
			CPUJ:          Round6(b.cpuJ - a.cpuJ),
		}
		total := b.cpuJ - a.cpuJ
		for _, st := range stateKeys(a.radioJ, b.radioJ) {
			d := b.radioJ[st] - a.radioJ[st]
			if d == 0 {
				continue
			}
			pe.RadioByStateJ[st] = Round6(d)
			total += d
		}
		pe.TotalJ = Round6(total)
		out = append(out, pe)
	}
	return out
}

// TotalJ is the exact (unrounded) energy covered by the ledger: last
// snapshot minus first. Because phases are deltas between the same
// snapshots, the per-phase totals telescope to this value.
func (l *Ledger) TotalJ() float64 {
	if l == nil || len(l.marks) < 2 {
		return 0
	}
	first, last := l.marks[0], l.marks[len(l.marks)-1]
	total := last.cpuJ - first.cpuJ
	for _, st := range stateKeys(first.radioJ, last.radioJ) {
		total += last.radioJ[st] - first.radioJ[st]
	}
	return total
}

// StartNS and EndNS bound the ledger in simulated time (0,0 when empty).
func (l *Ledger) StartNS() int64 {
	if l == nil || len(l.marks) == 0 {
		return 0
	}
	return int64(l.marks[0].at)
}

// EndNS is the simulated time of the last mark.
func (l *Ledger) EndNS() int64 {
	if l == nil || len(l.marks) == 0 {
		return 0
	}
	return int64(l.marks[len(l.marks)-1].at)
}

// PhaseTotalJ returns the rounded total of the named phase (0 if absent).
func (l *Ledger) PhaseTotalJ(phase string) float64 {
	for _, p := range l.Phases() {
		if p.Phase == phase {
			return p.TotalJ
		}
	}
	return 0
}

// EmitPhases records one phase-energy event per closed phase onto r. The
// events are retrospective summaries, so all of them are stamped at the
// ledger's close time — keeping the session's event stream monotone in
// simulated time — with each phase's own extent carried in DurNS.
func (l *Ledger) EmitPhases(r *Recorder) {
	if l == nil || r == nil {
		return
	}
	at := time.Duration(l.EndNS())
	for _, p := range l.Phases() {
		r.Record(at, Event{
			Kind:   KindPhaseEnergy,
			Detail: p.Phase,
			DurNS:  p.EndNS - p.StartNS,
			Joules: p.TotalJ,
		})
	}
}

// stateKeys merges the key sets of two snapshots in sorted order, so phase
// maps are built deterministically even if a state appears mid-load.
func stateKeys(a, b map[string]float64) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
