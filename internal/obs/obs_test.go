package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Key() != "" {
		t.Fatalf("nil recorder key = %q", r.Key())
	}
	// None of these may panic or allocate state.
	r.Record(time.Second, Event{Kind: KindTransition})
	r.Count("x", 3)
	r.ObserveDur("h", time.Millisecond)
	if r.Events() != nil || r.Counters() != nil {
		t.Fatal("nil recorder returned non-nil data")
	}
}

func TestRecorderStampsAndCounts(t *testing.T) {
	r := NewRecorder("sess")
	r.Record(1500*time.Millisecond, Event{Kind: KindXferStart, URL: "a.css", Attempt: 1})
	r.Record(2*time.Second, Event{Kind: KindXferEnd, URL: "a.css", Joules: 1.23456789})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Session != "sess" || evs[0].AtNS != int64(1500*time.Millisecond) {
		t.Fatalf("bad stamping: %+v", evs[0])
	}
	if evs[1].Joules != 1.234568 {
		t.Fatalf("Joules not rounded: %v", evs[1].Joules)
	}
	c := r.Counters()
	if c["events."+KindXferStart] != 1 || c["events."+KindXferEnd] != 1 {
		t.Fatalf("event counters wrong: %v", c)
	}
	// Events() must be a copy.
	evs[0].URL = "mutated"
	if r.Events()[0].URL != "a.css" {
		t.Fatal("Events() aliases internal slice")
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRecorder("h")
	r.ObserveDur("xfer_ns", 500*time.Microsecond) // bucket le=1ms
	r.ObserveDur("xfer_ns", time.Millisecond)     // le=1ms (inclusive)
	r.ObserveDur("xfer_ns", 3*time.Millisecond)   // le=5ms
	r.ObserveDur("xfer_ns", time.Minute)          // overflow
	h := r.hists["xfer_ns"]
	snap := h.snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d", snap.Count)
	}
	wantSum := Round6(float64(500*time.Microsecond+time.Millisecond+3*time.Millisecond+time.Minute) / float64(time.Millisecond))
	if snap.SumMS != wantSum {
		t.Fatalf("sum = %v want %v", snap.SumMS, wantSum)
	}
	if len(snap.Buckets) != len(histogramBucketsMS)+1 {
		t.Fatalf("bucket layout %d", len(snap.Buckets))
	}
	if snap.Buckets[0].N != 2 { // <=1ms
		t.Fatalf("le1ms bucket = %d", snap.Buckets[0].N)
	}
	if snap.Buckets[2].N != 1 { // <=5ms
		t.Fatalf("le5ms bucket = %d", snap.Buckets[2].N)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.LeMS != -1 || last.N != 1 {
		t.Fatalf("overflow bucket = %+v", last)
	}

	// Merge doubles every count.
	agg := h.snapshot()
	agg.merge(snap)
	if agg.Count != 8 || agg.Buckets[0].N != 4 {
		t.Fatalf("merge wrong: %+v", agg)
	}
	var empty HistogramSnapshot
	empty.merge(snap)
	if empty.Count != 4 || len(empty.Buckets) != len(snap.Buckets) {
		t.Fatalf("merge into empty wrong: %+v", empty)
	}
}

// fakeProbe is a scriptable EnergyProbe; radio is keyed by state name and
// converted to the vector form through fakeNames.
var fakeNames = StateNames{1: "IDLE", 2: "FACH", 3: "DCH"}

type fakeProbe struct {
	radio map[string]float64
	cpu   float64
}

func (p *fakeProbe) probe() (EnergyVec, float64) {
	var out EnergyVec
	for k, v := range p.radio {
		for i, name := range fakeNames {
			if name == k {
				out[i] = v
			}
		}
	}
	return out, p.cpu
}

func TestLedgerPhasesTelescopeToTotal(t *testing.T) {
	p := &fakeProbe{radio: map[string]float64{"DCH": 0, "FACH": 0}, cpu: 0}
	l := NewLedger(p.probe, &fakeNames)
	l.Mark("transmission", 0)

	p.radio["DCH"] = 2.5
	p.cpu = 0.25
	l.Mark("layout", 4*time.Second)

	p.radio["DCH"] = 3.0
	p.radio["FACH"] = 0.4
	p.radio["IDLE"] = 0.01 // state appearing mid-load
	p.cpu = 0.75
	l.Close(9 * time.Second)

	phases := l.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	tx := phases[0]
	if tx.Phase != "transmission" || tx.StartNS != 0 || tx.EndNS != int64(4*time.Second) {
		t.Fatalf("transmission phase bounds: %+v", tx)
	}
	if tx.RadioByStateJ["DCH"] != 2.5 || tx.CPUJ != 0.25 || tx.TotalJ != 2.75 {
		t.Fatalf("transmission attribution: %+v", tx)
	}
	lay := phases[1]
	if lay.Phase != "layout" || lay.RadioByStateJ["FACH"] != 0.4 || lay.RadioByStateJ["IDLE"] != 0.01 {
		t.Fatalf("layout attribution: %+v", lay)
	}

	var sum float64
	for _, ph := range phases {
		sum += ph.TotalJ
	}
	if got := Round6(l.TotalJ()); got != Round6(sum) {
		t.Fatalf("phases sum %v != total %v", sum, got)
	}
	if l.TotalJ() != 3.0+0.4+0.01+0.75 {
		t.Fatalf("TotalJ = %v", l.TotalJ())
	}
	if l.StartNS() != 0 || l.EndNS() != int64(9*time.Second) {
		t.Fatalf("ledger bounds %d..%d", l.StartNS(), l.EndNS())
	}
	if l.PhaseTotalJ("transmission") != 2.75 || l.PhaseTotalJ("absent") != 0 {
		t.Fatal("PhaseTotalJ lookup wrong")
	}
	if !l.Closed() {
		t.Fatal("ledger not closed")
	}
	// Marks after Close are ignored.
	l.Mark("late", 20*time.Second)
	l.Close(21 * time.Second)
	if len(l.Phases()) != 2 || l.EndNS() != int64(9*time.Second) {
		t.Fatal("ledger mutated after Close")
	}
}

func TestLedgerNilAndEmpty(t *testing.T) {
	var l *Ledger
	l.Mark("x", 0)
	l.Close(0)
	if l.Phases() != nil || l.TotalJ() != 0 || l.Closed() || l.StartNS() != 0 || l.EndNS() != 0 {
		t.Fatal("nil ledger not inert")
	}
	l.EmitPhases(NewRecorder("x"))

	p := &fakeProbe{radio: map[string]float64{}, cpu: 0}
	l2 := NewLedger(p.probe, &fakeNames)
	if l2.Phases() != nil || l2.TotalJ() != 0 {
		t.Fatal("empty ledger not zero")
	}
}

func TestLedgerEmitPhases(t *testing.T) {
	p := &fakeProbe{radio: map[string]float64{"DCH": 0}, cpu: 0}
	l := NewLedger(p.probe, &fakeNames)
	l.Mark("transmission", time.Second)
	p.radio["DCH"] = 1.5
	l.Close(3 * time.Second)

	r := NewRecorder("s")
	l.EmitPhases(r)
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.Kind != KindPhaseEnergy || ev.Detail != "transmission" ||
		ev.AtNS != int64(3*time.Second) || ev.DurNS != int64(2*time.Second) || ev.Joules != 1.5 {
		t.Fatalf("phase event wrong: %+v", ev)
	}
}

func TestCollectorKeysAndDuplicates(t *testing.T) {
	c := NewCollector()
	if _, err := c.NewRecorder(""); err == nil {
		t.Fatal("empty key accepted")
	}
	r1, err := c.NewRecorder("b")
	if err != nil || r1 == nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if _, err := c.NewRecorder("b"); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if _, err := c.NewRecorder("a"); err != nil {
		t.Fatalf("second key: %v", err)
	}
	if got := c.Sessions(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sessions = %v", got)
	}

	var nilC *Collector
	r, err := nilC.NewRecorder("x")
	if r != nil || err != nil {
		t.Fatal("nil collector must hand out nil recorders silently")
	}
	if nilC.Sessions() != nil {
		t.Fatal("nil collector sessions")
	}
	if err := nilC.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorTraceOrderIndependent(t *testing.T) {
	// Two collectors, registration and recording in opposite orders, same
	// per-session content — traces must be byte-identical.
	build := func(order []string) string {
		c := NewCollector()
		recs := make(map[string]*Recorder)
		for _, k := range order {
			r, err := c.NewRecorder(k)
			if err != nil {
				t.Fatal(err)
			}
			recs[k] = r
		}
		for _, k := range order {
			recs[k].Record(time.Second, Event{Kind: KindTransition, From: "IDLE", To: "DCH"})
			recs[k].Record(2*time.Second, Event{Kind: KindXferEnd, URL: k + ".html", Bytes: 10})
		}
		var buf bytes.Buffer
		if err := c.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"p1", "p2", "p3"})
	b := build([]string{"p3", "p1", "p2"})
	if a != b {
		t.Fatalf("trace depends on registration order:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Session != "p1" || first.Kind != KindTransition {
		t.Fatalf("first line %+v", first)
	}
}

func TestCollectorMetrics(t *testing.T) {
	c := NewCollector()
	r1, _ := c.NewRecorder("s1")
	r2, _ := c.NewRecorder("s2")
	r1.Record(time.Second, Event{Kind: KindXferStart})
	r1.ObserveDur("xfer_ns", 2*time.Millisecond)
	r2.Record(time.Second, Event{Kind: KindXferStart})
	r2.Record(2*time.Second, Event{Kind: KindXferEnd})
	r2.ObserveDur("xfer_ns", 3*time.Millisecond)

	m := c.Snapshot()
	if m.Sessions != 2 || m.Events != 3 {
		t.Fatalf("sessions=%d events=%d", m.Sessions, m.Events)
	}
	if m.Counters["events."+KindXferStart] != 2 || m.Counters["events."+KindXferEnd] != 1 {
		t.Fatalf("aggregate counters: %v", m.Counters)
	}
	if m.Histograms["xfer_ns"].Count != 2 {
		t.Fatalf("aggregate histogram: %+v", m.Histograms["xfer_ns"])
	}
	if m.PerSession["s1"].Counters["events."+KindXferStart] != 1 {
		t.Fatalf("per-session counters: %+v", m.PerSession["s1"])
	}

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Metrics
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if decoded.Events != 3 {
		t.Fatalf("round-trip events = %d", decoded.Events)
	}

	var buf2 bytes.Buffer
	if err := c.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("metrics serialization not stable")
	}
}

func TestDefaultCollectorLifecycle(t *testing.T) {
	Disable()
	if Default() != nil {
		t.Fatal("Default after Disable")
	}
	c := Enable()
	defer Disable()
	if Default() != c {
		t.Fatal("Default != Enable result")
	}
	r, err := Default().NewRecorder("k")
	if err != nil || r == nil {
		t.Fatalf("recorder via default: %v", err)
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable did not clear")
	}
}

func TestRound6(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.23456789, 1.234568},
		{-1.23456749, -1.234567},
		{0, 0},
		{2.0000004, 2.0},
	}
	for _, tc := range cases {
		if got := Round6(tc.in); got != tc.want {
			t.Fatalf("Round6(%v) = %v want %v", tc.in, got, tc.want)
		}
	}
}
