// Package obs is the structured observability layer of the simulated
// testbed: a typed event stream stamped with simulated time, a per-state /
// per-phase energy ledger, and counters and histograms snapshotable as JSON.
//
// The paper's headline numbers (>30 % energy saving, 17 % faster loads) rest
// on per-RRC-state energy accounting and on the exact ordering of fetch,
// compute and dormancy events. This package makes both visible without
// changing them:
//
//   - Zero overhead when disabled. Every hook threads a *Recorder that may be
//     nil; all Recorder methods are nil-safe no-ops, so the instrumented hot
//     paths pay only a pointer test.
//   - Deterministic when enabled. Each simulated phone owns one Recorder and
//     writes it single-threaded (the whole simulation is single-threaded by
//     design). Recorders register with an explicit, caller-chosen key, and
//     the Collector serializes sessions in sorted key order — so the merged
//     trace and metrics are byte-identical at any worker-pool size.
//
// Timestamps are simulated time (nanoseconds since each phone's simulation
// start), never wall clock, which is what makes traces diffable and the
// golden-trace regression test possible.
package obs

import (
	"math"
	"sort"
	"time"
)

// Event kinds emitted by the instrumented substrates. Browser load-timeline
// events additionally pass through their browser.EventKind names
// (object-arrived, transmission-done, radio-dormant, ...).
const (
	// KindTransition is an RRC state change (From/To carry the state names).
	KindTransition = "rrc-transition"
	// KindXferStart is a link-level transfer attempt starting (Detail names
	// the channel, DCH or FACH; Attempt counts from 1).
	KindXferStart = "xfer-start"
	// KindXferRetry is a link-level attempt dying with retry budget left.
	KindXferRetry = "xfer-retry"
	// KindXferEnd is a transfer delivering its last byte (DurNS spans first
	// attempt start to completion).
	KindXferEnd = "xfer-end"
	// KindXferFailed is a transfer exhausting its attempt budget.
	KindXferFailed = "xfer-failed"
	// KindComputeSlice is one completed browser CPU task (Detail is the
	// priority queue it ran from).
	KindComputeSlice = "compute-slice"
	// KindPhaseEnergy closes a ledger phase (Detail is the phase name,
	// Joules its radio+CPU energy).
	KindPhaseEnergy = "phase-energy"
	// KindDormancyRequest is the engine asking for fast dormancy.
	KindDormancyRequest = "dormancy-request"
	// KindPolicyDecision is one Algorithm 2 evaluation (Detail is the
	// reason, DurNS the predicted reading time).
	KindPolicyDecision = "policy-decision"
)

// Event is one entry of the observability stream. Fields are omitted from
// the JSON encoding when empty, so each kind serializes compactly.
type Event struct {
	// Session is the owning recorder's key (stamped by Record).
	Session string `json:"s"`
	// AtNS is the simulated timestamp, nanoseconds since simulation start.
	AtNS int64 `json:"at_ns"`
	// Kind classifies the event.
	Kind string `json:"kind"`
	// From and To carry RRC state names on transitions.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// URL names the object involved in fetch/transfer events.
	URL string `json:"url,omitempty"`
	// Detail carries kind-specific context (channel, phase, reason...).
	Detail string `json:"detail,omitempty"`
	// Bytes is the transfer size, when applicable.
	Bytes int `json:"bytes,omitempty"`
	// Attempt counts transfer attempts from 1.
	Attempt int `json:"attempt,omitempty"`
	// DurNS is a duration payload (transfer time, compute-slice length,
	// predicted reading time), in simulated nanoseconds.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Joules is an energy payload, rounded to a microjoule so traces stay
	// byte-identical across architectures (FMA contraction differs in the
	// last ulp).
	Joules float64 `json:"j,omitempty"`
}

// Round6 rounds v to 6 decimal places. All float values that reach a trace
// or metrics file pass through it: simulated energies are deterministic to
// the last ulp on one architecture but may differ across architectures
// (fused multiply-add), and a microjoule of rounding hides that without
// hiding regressions.
func Round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// Recorder collects one session's events, counters and histograms. It is
// owned by a single simulated phone and is not safe for concurrent use —
// exactly like the simulation that feeds it. A nil *Recorder is the disabled
// state: every method is a nil-safe no-op.
type Recorder struct {
	key      string
	events   []Event
	counters map[string]int64
	hists    map[string]*histogram
}

// NewRecorder returns a standalone recorder (not attached to a Collector);
// tests use this directly.
func NewRecorder(key string) *Recorder {
	return &Recorder{key: key}
}

// Key returns the recorder's session key ("" for nil).
func (r *Recorder) Key() string {
	if r == nil {
		return ""
	}
	return r.key
}

// Enabled reports whether events are being collected.
func (r *Recorder) Enabled() bool {
	return r != nil
}

// Record appends ev at simulated time at, stamping the session key and
// counting the event kind. No-op on a nil recorder.
func (r *Recorder) Record(at time.Duration, ev Event) {
	if r == nil {
		return
	}
	ev.Session = r.key
	ev.AtNS = int64(at)
	ev.Joules = Round6(ev.Joules)
	r.events = append(r.events, ev)
	r.Count("events."+ev.Kind, 1)
}

// Count adds delta to the named counter. No-op on a nil recorder.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
}

// ObserveDur records d into the named duration histogram. No-op on a nil
// recorder.
func (r *Recorder) ObserveDur(name string, d time.Duration) {
	if r == nil {
		return
	}
	if r.hists == nil {
		r.hists = make(map[string]*histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.observe(d)
}

// Events returns a copy of the recorded events, in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Counters returns a copy of the counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// histogramBucketsMS are the fixed upper bounds (milliseconds of simulated
// time) of every duration histogram. Fixed bounds keep snapshots structurally
// identical run to run, which is what makes metrics files diffable.
var histogramBucketsMS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// histogram is a fixed-bucket duration histogram (integer counts, integer
// nanosecond sum — fully deterministic).
type histogram struct {
	buckets [len14]int64
	count   int64
	sumNS   int64
}

// len14 is len(histogramBucketsMS)+1 (the overflow bucket); Go needs a
// constant for the array length.
const len14 = 14

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	idx := sort.SearchFloat64s(histogramBucketsMS, ms)
	h.buckets[idx]++
	h.count++
	h.sumNS += int64(d)
}

// HistogramBucket is one bucket of a snapshot; LeMS <= 0 marks the overflow
// bucket.
type HistogramBucket struct {
	LeMS float64 `json:"le_ms"`
	N    int64   `json:"n"`
}

// HistogramSnapshot is the JSON form of a duration histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	Buckets []HistogramBucket `json:"buckets"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count,
		SumMS:   Round6(float64(h.sumNS) / float64(time.Millisecond)),
		Buckets: make([]HistogramBucket, 0, len14),
	}
	for i, n := range h.buckets {
		le := float64(-1) // overflow
		if i < len(histogramBucketsMS) {
			le = histogramBucketsMS[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LeMS: le, N: n})
	}
	return s
}

// merge adds o's counts into the snapshot (bucket-wise; layouts are fixed).
func (s *HistogramSnapshot) merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumMS = Round6(s.SumMS + o.SumMS)
	if s.Buckets == nil {
		s.Buckets = append([]HistogramBucket(nil), o.Buckets...)
		return
	}
	for i := range s.Buckets {
		s.Buckets[i].N += o.Buckets[i].N
	}
}
