package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// AtomicHist is the concurrent sibling of the single-threaded histogram:
// the same fixed millisecond bucket layout (so snapshots merge bucket-wise
// with Recorder histograms), but every field is an atomic, making Observe
// safe — and lock-free — from any number of goroutines. The resident
// service stripes these per CPU on its request path; the simulation side
// keeps the plain histogram, which is cheaper when single-threaded.
type AtomicHist struct {
	buckets [len14]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration.
func (h *AtomicHist) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	idx := sort.SearchFloat64s(histogramBucketsMS, ms)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations so far.
func (h *AtomicHist) Count() int64 {
	return h.count.Load()
}

// Snapshot returns the histogram in the shared snapshot form. Concurrent
// Observe calls may land between field loads; each bucket is internally
// consistent and the snapshot is exact once writers quiesce.
func (h *AtomicHist) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumMS:   Round6(float64(h.sumNS.Load()) / float64(time.Millisecond)),
		Buckets: make([]HistogramBucket, 0, len14),
	}
	for i := range h.buckets {
		le := float64(-1) // overflow
		if i < len(histogramBucketsMS) {
			le = histogramBucketsMS[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LeMS: le, N: h.buckets[i].Load()})
	}
	return s
}

// Merge adds o's counts into s bucket-wise; both sides must use the fixed
// bucket layout. Exported so callers striping AtomicHists can fold the
// per-stripe snapshots into one.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.merge(o)
}
