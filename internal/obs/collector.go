package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Collector merges the recorders of many concurrently simulated phones into
// one deterministic trace and one deterministic metrics snapshot.
//
// Registration is the only synchronized step: NewRecorder takes a lock and
// files the recorder under its caller-chosen key. After that each recorder
// is written single-threaded by its own session. Serialization walks the
// keys in sorted order, so the output bytes depend only on the set of
// sessions and what each did — never on which worker finished first.
type Collector struct {
	mu       sync.Mutex
	sessions map[string]*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{sessions: make(map[string]*Recorder)}
}

// NewRecorder registers and returns a recorder for the given session key.
// Keys must be unique — a duplicate means two sessions would interleave
// nondeterministically, so it is rejected. A nil collector returns a nil
// recorder (the disabled path) with no error.
func (c *Collector) NewRecorder(key string) (*Recorder, error) {
	if c == nil {
		return nil, nil
	}
	if key == "" {
		return nil, fmt.Errorf("obs: empty session key")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sessions[key]; dup {
		return nil, fmt.Errorf("obs: duplicate session key %q", key)
	}
	r := NewRecorder(key)
	c.sessions[key] = r
	return r, nil
}

// Sessions returns the registered session keys in sorted order.
func (c *Collector) Sessions() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.sessions))
	for k := range c.sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTrace writes the merged event stream as JSON Lines: sessions in
// sorted key order, each session's events in emission (simulated-time)
// order. Call only after the simulations feeding the recorders are done.
func (c *Collector) WriteTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, key := range c.Sessions() {
		c.mu.Lock()
		r := c.sessions[key]
		c.mu.Unlock()
		for _, ev := range r.events {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SessionMetrics is one session's slice of the metrics snapshot.
type SessionMetrics struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Metrics is the snapshot of everything the collector's sessions counted.
type Metrics struct {
	// Sessions counts registered recorders.
	Sessions int `json:"sessions"`
	// Events counts events across all sessions.
	Events int `json:"events"`
	// Counters aggregates all sessions' counters by name.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Histograms aggregates all sessions' histograms by name.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// PerSession holds each session's own counters/histograms, keyed by
	// session key.
	PerSession map[string]SessionMetrics `json:"per_session,omitempty"`
}

// Snapshot aggregates counters and histograms across sessions. Aggregation
// walks sessions in sorted key order; since the merged quantities are
// integer counts (plus pre-rounded sums), the result is order-independent
// anyway, but the fixed order keeps the invariant obvious.
func (c *Collector) Snapshot() Metrics {
	m := Metrics{
		Counters:   make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		PerSession: make(map[string]SessionMetrics),
	}
	if c == nil {
		return m
	}
	for _, key := range c.Sessions() {
		c.mu.Lock()
		r := c.sessions[key]
		c.mu.Unlock()
		m.Sessions++
		m.Events += len(r.events)
		sm := SessionMetrics{}
		if len(r.counters) > 0 {
			sm.Counters = r.Counters()
			for name, v := range r.counters {
				m.Counters[name] += v
			}
		}
		if len(r.hists) > 0 {
			sm.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
			for name, h := range r.hists {
				snap := h.snapshot()
				sm.Histograms[name] = snap
				agg := m.Histograms[name]
				agg.merge(snap)
				m.Histograms[name] = agg
			}
		}
		m.PerSession[key] = sm
	}
	return m
}

// WriteMetrics writes the snapshot as indented JSON. encoding/json sorts
// map keys, so the bytes are deterministic.
func (c *Collector) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot())
}

// defaultCollector is the process-wide collector behind Enable/Default.
// Sites that can't thread a *Collector (deep inside experiment fan-out)
// consult Default(); it is nil unless tracing was switched on, so the
// disabled path stays a single atomic load.
var defaultCollector atomic.Pointer[Collector]

// Enable installs a fresh process-wide collector and returns it.
func Enable() *Collector {
	c := NewCollector()
	defaultCollector.Store(c)
	return c
}

// Disable removes the process-wide collector; subsequent Default() calls
// return nil and all recording downstream becomes a no-op.
func Disable() {
	defaultCollector.Store(nil)
}

// Default returns the process-wide collector, or nil when disabled.
func Default() *Collector {
	return defaultCollector.Load()
}
