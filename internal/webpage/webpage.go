// Package webpage defines the resource/page object model and generates the
// synthetic benchmark corpora standing in for the paper's Table 3 pages.
//
// The real evaluation used the Alexa top sites, split into a mobile-version
// benchmark (small, simple markup) and a full-version benchmark (large
// object graphs, heavy scripts and stylesheets). Those sites are long gone,
// so the generator builds pages with the same *shape*: object counts, size
// mix, script-discovered fetches and text density are calibrated so the
// simulated browser reproduces the paper's load-time and traffic behaviour
// (e.g. espn.go.com/sports ≈ 760 KB taking ~47 s in the original pipeline
// vs. ~8 s as a raw socket download, Fig. 4).
//
// Pages contain real markup: the HTML, CSS and scripts are actual sources
// parsed by internal/htmlscan, internal/cssscan and internal/jsmini, so both
// browser pipelines discover work the way real ones do.
package webpage

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// ResourceType classifies a fetchable resource.
type ResourceType int

const (
	// TypeHTML is a hypertext document (main page or subdocument).
	TypeHTML ResourceType = iota + 1
	// TypeCSS is a stylesheet.
	TypeCSS
	// TypeJS is a script.
	TypeJS
	// TypeImage is an image.
	TypeImage
	// TypeFlash is a multimedia object.
	TypeFlash
)

// String names the resource type.
func (t ResourceType) String() string {
	switch t {
	case TypeHTML:
		return "html"
	case TypeCSS:
		return "css"
	case TypeJS:
		return "js"
	case TypeImage:
		return "image"
	case TypeFlash:
		return "flash"
	default:
		return "unknown"
	}
}

// Resource is one fetchable object of a page.
type Resource struct {
	URL  string
	Type ResourceType
	// Body is the source text for HTML/CSS/JS resources; empty for binary
	// resources (images, flash).
	Body string
	// Bytes is the transfer size. For text resources it equals len(Body).
	Bytes int
}

// Page is a complete webpage: a main document plus every resource reachable
// from it.
type Page struct {
	Name      string
	Mobile    bool
	MainURL   string
	resources map[string]*Resource
}

// Resource looks up a resource by URL.
func (p *Page) Resource(url string) (*Resource, bool) {
	r, ok := p.resources[url]
	return r, ok
}

// Main returns the main HTML document.
func (p *Page) Main() *Resource {
	return p.resources[p.MainURL]
}

// ResourceCount returns the number of resources (including the main
// document).
func (p *Page) ResourceCount() int {
	return len(p.resources)
}

// TotalBytes returns the sum of all resource transfer sizes.
func (p *Page) TotalBytes() int {
	total := 0
	for _, r := range p.resources {
		total += r.Bytes
	}
	return total
}

// Spec parameterizes the page generator. All sizes are in KB unless noted.
type Spec struct {
	Name   string
	Mobile bool
	Seed   int64

	// TextKB is the size of the main document's text content.
	TextKB int
	// Sections is the number of content sections (each contributes heading,
	// paragraphs and DOM structure).
	Sections int

	// Images is the number of statically referenced images; sizes drawn
	// uniformly from [ImageKBMin, ImageKBMax].
	Images     int
	ImageKBMin int
	ImageKBMax int

	// Stylesheets is the number of external CSS files of CSSKB each, with
	// CSSRules rules and CSSImages url() image references per sheet.
	Stylesheets int
	CSSKB       int
	CSSRules    int
	CSSImages   int

	// Scripts is the number of external scripts; each fetches ScriptFetches
	// additional images, burns ScriptComputeMS of CPU and writes a small
	// amount of markup. ScriptKB is the transfer size of each script.
	Scripts         int
	ScriptKB        int
	ScriptFetches   int
	ScriptComputeMS int

	// InlineScripts embeds that many small scripts directly in the HTML.
	InlineScripts int

	// Flashes is the number of multimedia <object> embeds of FlashKB each.
	Flashes int
	FlashKB int

	// Subdocs is the number of iframes, each with SubdocTextKB of text and
	// SubdocImages images.
	Subdocs      int
	SubdocTextKB int
	SubdocImages int

	// Anchors is the number of outgoing links ("secondary URLs", Table 1).
	Anchors int

	// PageHeightPX / PageWidthPX describe the rendered geometry (Table 1
	// features).
	PageHeightPX int
	PageWidthPX  int
}

// Validate checks the spec for generatability.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return errors.New("webpage: spec needs a name")
	case s.TextKB <= 0:
		return errors.New("webpage: TextKB must be positive")
	case s.Sections <= 0:
		return errors.New("webpage: Sections must be positive")
	case s.Images < 0 || s.Stylesheets < 0 || s.Scripts < 0 || s.Subdocs < 0 ||
		s.Anchors < 0 || s.Flashes < 0:
		return errors.New("webpage: negative object counts")
	case s.Images > 0 && (s.ImageKBMin <= 0 || s.ImageKBMax < s.ImageKBMin):
		return errors.New("webpage: bad image size range")
	case s.Stylesheets > 0 && s.CSSKB <= 0:
		return errors.New("webpage: stylesheets need CSSKB > 0")
	case s.Scripts > 0 && s.ScriptKB <= 0:
		return errors.New("webpage: scripts need ScriptKB > 0")
	case s.Flashes > 0 && s.FlashKB <= 0:
		return errors.New("webpage: flashes need FlashKB > 0")
	}
	return nil
}

// Generate builds a deterministic page from the spec.
func Generate(spec Spec) (*Page, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eedbead))
	g := &generator{spec: spec, rng: rng, page: &Page{
		Name:      spec.Name,
		Mobile:    spec.Mobile,
		MainURL:   spec.Name + "/index.html",
		resources: make(map[string]*Resource),
	}}
	g.build()
	return g.page, nil
}

type generator struct {
	spec Spec
	rng  *rand.Rand
	page *Page
}

func (g *generator) build() {
	s := g.spec
	var stylesheetURLs, scriptURLs, imageURLs, subdocURLs, flashURLs []string

	for i := 0; i < s.Stylesheets; i++ {
		url := fmt.Sprintf("%s/css/style%d.css", s.Name, i)
		stylesheetURLs = append(stylesheetURLs, url)
		g.addCSS(url, i)
	}
	for i := 0; i < s.Scripts; i++ {
		url := fmt.Sprintf("%s/js/app%d.js", s.Name, i)
		scriptURLs = append(scriptURLs, url)
		g.addScript(url, i)
	}
	for i := 0; i < s.Images; i++ {
		url := fmt.Sprintf("%s/img/pic%d.jpg", s.Name, i)
		imageURLs = append(imageURLs, url)
		g.addImage(url)
	}
	for i := 0; i < s.Subdocs; i++ {
		url := fmt.Sprintf("%s/sub/frame%d.html", s.Name, i)
		subdocURLs = append(subdocURLs, url)
		g.addSubdoc(url, i)
	}
	for i := 0; i < s.Flashes; i++ {
		url := fmt.Sprintf("%s/media/clip%d.swf", s.Name, i)
		flashURLs = append(flashURLs, url)
		g.page.resources[url] = &Resource{URL: url, Type: TypeFlash, Bytes: s.FlashKB * 1024}
	}

	body := g.mainHTML(stylesheetURLs, scriptURLs, imageURLs, subdocURLs, flashURLs)
	g.page.resources[g.page.MainURL] = &Resource{
		URL:   g.page.MainURL,
		Type:  TypeHTML,
		Body:  body,
		Bytes: len(body),
	}
}

// mainHTML lays out the main document: stylesheets in the head, scripts and
// images distributed through the body the way real pages stagger them (this
// staggering is what spreads the original pipeline's transfers out, Fig. 4).
func (g *generator) mainHTML(stylesheets, scripts, images, subdocs, flashes []string) string {
	s := g.spec
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", s.Name)
	for _, u := range stylesheets {
		fmt.Fprintf(&sb, "<link rel=\"stylesheet\" href=\"%s\">\n", u)
	}
	sb.WriteString("</head>\n<body ")
	fmt.Fprintf(&sb, "data-width=\"%d\" data-height=\"%d\">\n", s.PageWidthPX, s.PageHeightPX)

	textBudget := s.TextKB * 1024
	perSection := textBudget / s.Sections
	imgIdx, scriptIdx, anchorIdx, inlineIdx := 0, 0, 0, 0
	for sec := 0; sec < s.Sections; sec++ {
		fmt.Fprintf(&sb, "<div class=\"section s%d\">\n<h2>%s</h2>\n", sec, g.words(4))
		remaining := perSection
		for remaining > 0 {
			chunk := 400 + g.rng.Intn(500)
			if chunk > remaining {
				chunk = remaining
			}
			fmt.Fprintf(&sb, "<p>%s</p>\n", g.text(chunk))
			remaining -= chunk
			// Interleave images and anchors with the text.
			if imgIdx < len(images) && g.rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "<img src=\"%s\" alt=\"%s\">\n", images[imgIdx], g.words(2))
				imgIdx++
			}
			if anchorIdx < s.Anchors && g.rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "<a href=\"%s/page%d.html\">%s</a>\n", s.Name, anchorIdx, g.words(3))
				anchorIdx++
			}
		}
		// Scripts staggered between sections: the original pipeline must
		// fetch and execute each before discovering what comes after.
		if scriptIdx < len(scripts) {
			fmt.Fprintf(&sb, "<script src=\"%s\"></script>\n", scripts[scriptIdx])
			scriptIdx++
		}
		if inlineIdx < s.InlineScripts {
			fmt.Fprintf(&sb, "<script>%s</script>\n", g.inlineScript(inlineIdx))
			inlineIdx++
		}
	}
	// Flush whatever the interleaving did not place.
	for ; imgIdx < len(images); imgIdx++ {
		fmt.Fprintf(&sb, "<img src=\"%s\">\n", images[imgIdx])
	}
	for ; scriptIdx < len(scripts); scriptIdx++ {
		fmt.Fprintf(&sb, "<script src=\"%s\"></script>\n", scripts[scriptIdx])
	}
	for ; anchorIdx < s.Anchors; anchorIdx++ {
		fmt.Fprintf(&sb, "<a href=\"%s/page%d.html\">%s</a>\n", s.Name, anchorIdx, g.words(2))
	}
	for _, u := range flashes {
		fmt.Fprintf(&sb, "<object data=\"%s\"></object>\n", u)
	}
	for _, u := range subdocs {
		fmt.Fprintf(&sb, "<iframe src=\"%s\"></iframe>\n", u)
	}
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

func (g *generator) addCSS(url string, idx int) {
	s := g.spec
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* %s stylesheet %d */\n", s.Name, idx)
	for i := 0; i < s.CSSImages; i++ {
		imgURL := fmt.Sprintf("%s/img/bg%d-%d.png", s.Name, idx, i)
		fmt.Fprintf(&sb, ".bg%d-%d { background: url(%s); }\n", idx, i, imgURL)
		g.addImage(imgURL)
	}
	rules := s.CSSRules
	if rules <= 0 {
		rules = 50
	}
	target := s.CSSKB * 1024
	for i := 0; sb.Len() < target; i++ {
		if i < rules {
			fmt.Fprintf(&sb, ".c%d-%d { color: #%06x; margin: %dpx; padding: %dpx; font-size: %dpx; }\n",
				idx, i, g.rng.Intn(1<<24), g.rng.Intn(32), g.rng.Intn(16), 8+g.rng.Intn(16))
			continue
		}
		// Pad with comments to hit the size without inflating the rule
		// count beyond the spec.
		fmt.Fprintf(&sb, "/* %s */\n", g.text(200))
	}
	body := sb.String()
	g.page.resources[url] = &Resource{URL: url, Type: TypeCSS, Body: body, Bytes: len(body)}
}

func (g *generator) addScript(url string, idx int) {
	s := g.spec
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s script %d\n", s.Name, idx)
	if s.ScriptFetches > 0 {
		// Alternate loop styles so the interpreter's whole surface is
		// exercised by the corpus, the way real pages vary.
		if idx%2 == 0 {
			fmt.Fprintf(&sb, "for i = 0 to %d {\n", s.ScriptFetches)
			fmt.Fprintf(&sb, "  fetch(\"%s/img/dyn%d-\" + i + \".jpg\");\n", s.Name, idx)
			sb.WriteString("}\n")
		} else {
			sb.WriteString("let i = 0;\n")
			fmt.Fprintf(&sb, "while i < %d {\n", s.ScriptFetches)
			fmt.Fprintf(&sb, "  fetch(\"%s/img/dyn%d-\" + i + \".jpg\");\n", s.Name, idx)
			sb.WriteString("  i = i + 1;\n}\n")
		}
		for i := 0; i < s.ScriptFetches; i++ {
			g.addImage(fmt.Sprintf("%s/img/dyn%d-%d.jpg", s.Name, idx, i))
		}
	}
	if s.ScriptComputeMS > 0 {
		// Budget the work through the builtins on odd scripts.
		if idx%2 == 1 {
			fmt.Fprintf(&sb, "let budget = min(%d, max(%d, floor(%d.5)));\n",
				s.ScriptComputeMS, s.ScriptComputeMS/2, s.ScriptComputeMS)
			sb.WriteString("compute(budget);\n")
		} else {
			fmt.Fprintf(&sb, "compute(%d);\n", s.ScriptComputeMS)
		}
	}
	fmt.Fprintf(&sb, "let label = \"%s\";\n", g.words(2))
	fmt.Fprintf(&sb, "write(\"<div class=dyn%d data-n=\" + len(label) + \">\" + label + \"</div>\");\n", idx)
	target := s.ScriptKB * 1024
	for sb.Len() < target {
		fmt.Fprintf(&sb, "// %s\n", g.text(200))
	}
	body := sb.String()
	g.page.resources[url] = &Resource{URL: url, Type: TypeJS, Body: body, Bytes: len(body)}
}

func (g *generator) inlineScript(idx int) string {
	return fmt.Sprintf("let n%d = %d; write(\"<span>inline \" + n%d + \"</span>\");",
		idx, g.rng.Intn(100), idx)
}

func (g *generator) addImage(url string) {
	s := g.spec
	kb := s.ImageKBMin
	if s.ImageKBMax > s.ImageKBMin {
		kb += g.rng.Intn(s.ImageKBMax - s.ImageKBMin + 1)
	}
	if kb <= 0 {
		kb = 2
	}
	g.page.resources[url] = &Resource{URL: url, Type: TypeImage, Bytes: kb * 1024}
}

func (g *generator) addSubdoc(url string, idx int) {
	s := g.spec
	var sb strings.Builder
	fmt.Fprintf(&sb, "<html><body><h3>%s</h3>\n", g.words(3))
	remaining := s.SubdocTextKB * 1024
	if remaining <= 0 {
		remaining = 2048
	}
	for remaining > 0 {
		chunk := 300 + g.rng.Intn(300)
		if chunk > remaining {
			chunk = remaining
		}
		fmt.Fprintf(&sb, "<p>%s</p>\n", g.text(chunk))
		remaining -= chunk
	}
	for i := 0; i < s.SubdocImages; i++ {
		imgURL := fmt.Sprintf("%s/img/sub%d-%d.jpg", s.Name, idx, i)
		fmt.Fprintf(&sb, "<img src=\"%s\">\n", imgURL)
		g.addImage(imgURL)
	}
	sb.WriteString("</body></html>\n")
	body := sb.String()
	g.page.resources[url] = &Resource{URL: url, Type: TypeHTML, Body: body, Bytes: len(body)}
}

var wordList = []string{
	"news", "market", "mobile", "report", "update", "travel", "sport",
	"score", "video", "photo", "world", "local", "music", "price", "deal",
	"story", "event", "review", "guide", "daily", "radio", "search",
	"weather", "finance", "game", "league", "season", "player", "team",
	"coach", "match", "trade", "stock", "index", "share", "growth",
}

// words returns n space-separated filler words.
func (g *generator) words(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = wordList[g.rng.Intn(len(wordList))]
	}
	return strings.Join(parts, " ")
}

// text returns roughly byteLen bytes of filler prose.
func (g *generator) text(byteLen int) string {
	var sb strings.Builder
	for sb.Len() < byteLen {
		sb.WriteString(wordList[g.rng.Intn(len(wordList))])
		sb.WriteByte(' ')
	}
	return sb.String()
}
