package webpage

import (
	"fmt"

	"eabrowse/internal/runner"
)

// The benchmark corpora mirror Table 3 of the paper: ten mobile-version
// pages and ten full-version pages. Each spec is a synthetic stand-in whose
// object-graph shape (total bytes, object count, script behaviour, text
// density) is calibrated so the simulated pipelines reproduce the paper's
// measured load times and savings. Individual pages vary around the corpus
// baseline the way real sites did.

// MobilePageNames lists the mobile-version benchmark (Table 3, left column).
var MobilePageNames = []string{
	"m.cnn.com", "m.ebay.com", "m.espn.go.com", "m.amazon.com", "m.msn.com",
	"m.myspace.com", "m.bbc.co.uk", "m.aol.com", "m.nytimes.com", "m.youtube.com",
}

// FullPageNames lists the full-version benchmark (Table 3, right column).
var FullPageNames = []string{
	"edition.cnn.com/WORLD", "www.motors.ebay.com", "espn.go.com/sports",
	"www.amazon.com", "home.autos.msn.com", "www.myspace.com/music",
	"bbc.com/travel", "www.popeater.com/celebrities", "www.apple.com",
	"hotjobs.yahoo.com",
}

// MobileSpec returns the generator spec for the i-th mobile benchmark page.
func MobileSpec(i int) (Spec, error) {
	if i < 0 || i >= len(MobilePageNames) {
		return Spec{}, fmt.Errorf("webpage: mobile page index %d out of range", i)
	}
	// Small pages: tens of KB, a handful of objects, minimal scripting.
	return Spec{
		Name:            MobilePageNames[i],
		Mobile:          true,
		Seed:            int64(1000 + i),
		TextKB:          10 + i%4*2,
		Sections:        3 + i%3,
		Images:          6 + i%5,
		ImageKBMin:      2,
		ImageKBMax:      5,
		Stylesheets:     1,
		CSSKB:           5 + i%3,
		CSSRules:        60,
		CSSImages:       1,
		Scripts:         3,
		ScriptKB:        3,
		ScriptFetches:   2,
		ScriptComputeMS: 150,
		InlineScripts:   1,
		Anchors:         10 + i%6,
		PageHeightPX:    1200 + 100*(i%5),
		PageWidthPX:     320,
	}, nil
}

// FullSpec returns the generator spec for the i-th full benchmark page.
func FullSpec(i int) (Spec, error) {
	if i < 0 || i >= len(FullPageNames) {
		return Spec{}, fmt.Errorf("webpage: full page index %d out of range", i)
	}
	// Large pages: hundreds of KB, dozens of objects, heavy scripts whose
	// execution discovers further fetches, big stylesheets.
	return Spec{
		Name:            FullPageNames[i],
		Mobile:          false,
		Seed:            int64(2000 + i),
		TextKB:          70 + i%5*10,
		Sections:        10 + i%4,
		Images:          18 + i%7*2,
		ImageKBMin:      6,
		ImageKBMax:      14,
		Stylesheets:     2,
		CSSKB:           28 + i%3*6,
		CSSRules:        400,
		CSSImages:       3,
		Scripts:         4,
		ScriptKB:        18 + i%3*4,
		ScriptFetches:   5,
		ScriptComputeMS: 700 + 100*(i%3),
		InlineScripts:   2,
		Flashes:         1,
		FlashKB:         20,
		Subdocs:         1,
		SubdocTextKB:    6,
		SubdocImages:    2,
		Anchors:         35 + i%10,
		PageHeightPX:    5200 + 300*(i%6),
		PageWidthPX:     1000,
	}, nil
}

// BenchmarkPageNames lists every benchmark page name, mobile corpus first —
// the valid inputs to name-based page lookups.
func BenchmarkPageNames() []string {
	names := make([]string, 0, len(MobilePageNames)+len(FullPageNames))
	names = append(names, MobilePageNames...)
	return append(names, FullPageNames...)
}

// MobileBenchmark generates the full mobile-version corpus. Each page is
// generated from its own seed, so generation parallelizes without changing
// the corpus.
func MobileBenchmark() ([]*Page, error) {
	return generateCorpus(len(MobilePageNames), MobileSpec)
}

// FullBenchmark generates the full-version corpus.
func FullBenchmark() ([]*Page, error) {
	return generateCorpus(len(FullPageNames), FullSpec)
}

func generateCorpus(n int, specAt func(int) (Spec, error)) ([]*Page, error) {
	return runner.Collect(n, func(i int) (*Page, error) {
		spec, err := specAt(i)
		if err != nil {
			return nil, err
		}
		p, err := Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", spec.Name, err)
		}
		return p, nil
	})
}

// ESPNSports generates the espn.go.com/sports stand-in used by Fig. 4,
// Fig. 9, Fig. 10(b), Fig. 12 and Fig. 13 (≈760 KB full-version page).
func ESPNSports() (*Page, error) {
	spec, err := FullSpec(2)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// MCNN generates the m.cnn.com stand-in used by Fig. 8(b) and Fig. 10(b).
func MCNN() (*Page, error) {
	spec, err := MobileSpec(0)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// MotorsEbay generates the www.motors.ebay.com stand-in used by Fig. 8(b).
func MotorsEbay() (*Page, error) {
	spec, err := FullSpec(1)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}
