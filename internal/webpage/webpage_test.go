package webpage

import (
	"strings"
	"testing"
	"testing/quick"

	"eabrowse/internal/cssscan"
	"eabrowse/internal/htmlscan"
	"eabrowse/internal/jsmini"
)

func testSpec() Spec {
	return Spec{
		Name:            "test.example.com",
		Seed:            7,
		TextKB:          20,
		Sections:        4,
		Images:          8,
		ImageKBMin:      3,
		ImageKBMax:      9,
		Stylesheets:     2,
		CSSKB:           10,
		CSSRules:        100,
		CSSImages:       2,
		Scripts:         2,
		ScriptKB:        6,
		ScriptFetches:   3,
		ScriptComputeMS: 200,
		InlineScripts:   1,
		Subdocs:         1,
		SubdocTextKB:    4,
		SubdocImages:    2,
		Anchors:         12,
		PageHeightPX:    3000,
		PageWidthPX:     980,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(testSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Main().Body != b.Main().Body {
		t.Fatal("same seed produced different main HTML")
	}
	if a.TotalBytes() != b.TotalBytes() {
		t.Fatalf("TotalBytes %d != %d", a.TotalBytes(), b.TotalBytes())
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	s1 := testSpec()
	s2 := testSpec()
	s2.Seed = 99
	a, err := Generate(s1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(s2)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Main().Body == b.Main().Body {
		t.Fatal("different seeds produced identical HTML")
	}
}

func TestSpecValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"no text", func(s *Spec) { s.TextKB = 0 }},
		{"no sections", func(s *Spec) { s.Sections = 0 }},
		{"negative images", func(s *Spec) { s.Images = -1 }},
		{"bad image range", func(s *Spec) { s.ImageKBMin = 5; s.ImageKBMax = 3 }},
		{"css no size", func(s *Spec) { s.CSSKB = 0 }},
		{"script no size", func(s *Spec) { s.ScriptKB = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := testSpec()
			tt.mutate(&spec)
			if _, err := Generate(spec); err == nil {
				t.Fatal("Generate succeeded with invalid spec")
			}
		})
	}
}

func TestAllRefsResolve(t *testing.T) {
	page, err := Generate(testSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	checkDocRefs(t, page, page.Main().Body)
}

// checkDocRefs walks a document and asserts every fetchable reference (from
// HTML, CSS and executed scripts) resolves to a page resource.
func checkDocRefs(t *testing.T, page *Page, html string) {
	t.Helper()
	doc := htmlscan.Parse(html)
	for _, ref := range doc.Refs {
		if !ref.Kind.Fetchable() {
			continue
		}
		res, ok := page.Resource(ref.URL)
		if !ok {
			t.Fatalf("unresolved ref %v", ref)
		}
		switch ref.Kind {
		case htmlscan.RefStylesheet:
			if res.Type != TypeCSS {
				t.Fatalf("ref %v resolves to %v", ref, res.Type)
			}
			cssRefs, _ := cssscan.ScanRefs(res.Body)
			for _, u := range cssRefs {
				if _, ok := page.Resource(u); !ok {
					t.Fatalf("unresolved CSS ref %q", u)
				}
			}
		case htmlscan.RefScript:
			if res.Type != TypeJS {
				t.Fatalf("ref %v resolves to %v", ref, res.Type)
			}
			eff, err := jsmini.Run(res.Body)
			if err != nil {
				t.Fatalf("script %s does not run: %v", res.URL, err)
			}
			for _, u := range eff.Fetches {
				if _, ok := page.Resource(u); !ok {
					t.Fatalf("unresolved script fetch %q", u)
				}
			}
		case htmlscan.RefSubdocument:
			if res.Type != TypeHTML {
				t.Fatalf("ref %v resolves to %v", ref, res.Type)
			}
			checkDocRefs(t, page, res.Body)
		}
	}
	for _, src := range doc.InlineScripts {
		if _, err := jsmini.Run(src); err != nil {
			t.Fatalf("inline script does not run: %v", err)
		}
	}
}

func TestResourceSizesMatchBodies(t *testing.T) {
	page, err := Generate(testSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	total := 0
	for _, name := range []string{page.MainURL} {
		r, ok := page.Resource(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if r.Bytes != len(r.Body) {
			t.Fatalf("%s: Bytes=%d len(Body)=%d", name, r.Bytes, len(r.Body))
		}
		total += r.Bytes
	}
	if total == 0 {
		t.Fatal("main document empty")
	}
}

func TestCSSHasSpecRuleCount(t *testing.T) {
	page, err := Generate(testSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	css, ok := page.Resource("test.example.com/css/style0.css")
	if !ok {
		t.Fatal("stylesheet missing")
	}
	sheet := cssscan.Parse(css.Body)
	// Spec rules plus the CSSImages background rules.
	want := testSpec().CSSRules + testSpec().CSSImages
	if sheet.Rules != want {
		t.Fatalf("Rules = %d, want %d", sheet.Rules, want)
	}
}

func TestScriptEffectsMatchSpec(t *testing.T) {
	spec := testSpec()
	page, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	js, ok := page.Resource("test.example.com/js/app0.js")
	if !ok {
		t.Fatal("script missing")
	}
	eff, err := jsmini.Run(js.Body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(eff.Fetches) != spec.ScriptFetches {
		t.Fatalf("Fetches = %d, want %d", len(eff.Fetches), spec.ScriptFetches)
	}
	if eff.ComputeMillis != float64(spec.ScriptComputeMS) {
		t.Fatalf("ComputeMillis = %v, want %d", eff.ComputeMillis, spec.ScriptComputeMS)
	}
	if !strings.Contains(eff.HTML, "<div") {
		t.Fatalf("script writes no markup: %q", eff.HTML)
	}
}

func TestAnchorCount(t *testing.T) {
	spec := testSpec()
	page, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	doc := htmlscan.Parse(page.Main().Body)
	anchors := 0
	for _, ref := range doc.Refs {
		if ref.Kind == htmlscan.RefAnchor {
			anchors++
		}
	}
	if anchors != spec.Anchors {
		t.Fatalf("anchors = %d, want %d", anchors, spec.Anchors)
	}
}

func TestMainTextSizeApproximate(t *testing.T) {
	spec := testSpec()
	page, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	doc := htmlscan.Parse(page.Main().Body)
	want := spec.TextKB * 1024
	if doc.TextBytes < want*8/10 || doc.TextBytes > want*13/10 {
		t.Fatalf("TextBytes = %d, want ≈%d", doc.TextBytes, want)
	}
}

func TestMobileBenchmark(t *testing.T) {
	pages, err := MobileBenchmark()
	if err != nil {
		t.Fatalf("MobileBenchmark: %v", err)
	}
	if len(pages) != len(MobilePageNames) {
		t.Fatalf("got %d pages, want %d", len(pages), len(MobilePageNames))
	}
	for _, p := range pages {
		if !p.Mobile {
			t.Fatalf("%s not marked mobile", p.Name)
		}
		kb := p.TotalBytes() / 1024
		if kb < 20 || kb > 200 {
			t.Fatalf("%s total %d KB, want mobile-scale (20-200)", p.Name, kb)
		}
	}
}

func TestFullBenchmark(t *testing.T) {
	pages, err := FullBenchmark()
	if err != nil {
		t.Fatalf("FullBenchmark: %v", err)
	}
	if len(pages) != len(FullPageNames) {
		t.Fatalf("got %d pages, want %d", len(pages), len(FullPageNames))
	}
	for _, p := range pages {
		if p.Mobile {
			t.Fatalf("%s marked mobile", p.Name)
		}
		kb := p.TotalBytes() / 1024
		if kb < 300 || kb > 1200 {
			t.Fatalf("%s total %d KB, want full-scale (300-1200)", p.Name, kb)
		}
	}
}

func TestESPNSportsSize(t *testing.T) {
	page, err := ESPNSports()
	if err != nil {
		t.Fatalf("ESPNSports: %v", err)
	}
	kb := page.TotalBytes() / 1024
	// The paper's espn.go.com/sports was 760 KB; stay in that ballpark.
	if kb < 500 || kb > 1000 {
		t.Fatalf("espn total = %d KB, want ≈760", kb)
	}
}

func TestNamedPages(t *testing.T) {
	cnn, err := MCNN()
	if err != nil {
		t.Fatalf("MCNN: %v", err)
	}
	if cnn.Name != "m.cnn.com" || !cnn.Mobile {
		t.Fatalf("MCNN = %s mobile=%v", cnn.Name, cnn.Mobile)
	}
	ebay, err := MotorsEbay()
	if err != nil {
		t.Fatalf("MotorsEbay: %v", err)
	}
	if ebay.Name != "www.motors.ebay.com" || ebay.Mobile {
		t.Fatalf("MotorsEbay = %s mobile=%v", ebay.Name, ebay.Mobile)
	}
}

func TestBenchmarkRefsAllResolve(t *testing.T) {
	mobile, err := MobileBenchmark()
	if err != nil {
		t.Fatalf("MobileBenchmark: %v", err)
	}
	full, err := FullBenchmark()
	if err != nil {
		t.Fatalf("FullBenchmark: %v", err)
	}
	for _, p := range append(mobile, full...) {
		checkDocRefs(t, p, p.Main().Body)
	}
}

func TestSpecIndexBounds(t *testing.T) {
	if _, err := MobileSpec(-1); err == nil {
		t.Fatal("MobileSpec(-1) succeeded")
	}
	if _, err := MobileSpec(len(MobilePageNames)); err == nil {
		t.Fatal("MobileSpec(out of range) succeeded")
	}
	if _, err := FullSpec(len(FullPageNames)); err == nil {
		t.Fatal("FullSpec(out of range) succeeded")
	}
}

func TestResourceTypeString(t *testing.T) {
	tests := []struct {
		give ResourceType
		want string
	}{
		{TypeHTML, "html"},
		{TypeCSS, "css"},
		{TypeJS, "js"},
		{TypeImage, "image"},
		{TypeFlash, "flash"},
		{ResourceType(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Fatalf("String = %q, want %q", got, tt.want)
		}
	}
}

// TestPropertyGenerateAlwaysResolves: random small specs generate pages whose
// references all resolve — the invariant the browser engines depend on.
func TestPropertyGenerateAlwaysResolves(t *testing.T) {
	f := func(seed int64, img, scripts uint8) bool {
		spec := Spec{
			Name:          "prop.example.com",
			Seed:          seed,
			TextKB:        5,
			Sections:      2,
			Images:        int(img % 10),
			ImageKBMin:    1,
			ImageKBMax:    4,
			Stylesheets:   1,
			CSSKB:         3,
			CSSRules:      20,
			CSSImages:     1,
			Scripts:       int(scripts % 4),
			ScriptKB:      2,
			ScriptFetches: 2,
			Anchors:       3,
		}
		page, err := Generate(spec)
		if err != nil {
			return false
		}
		doc := htmlscan.Parse(page.Main().Body)
		for _, ref := range doc.Refs {
			if !ref.Kind.Fetchable() {
				continue
			}
			if _, ok := page.Resource(ref.URL); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
