package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Centroid is one weighted point of a Sketch: N observations summarized at
// value V.
type Centroid struct {
	V float64
	N int64
}

// Sketch is a mergeable, bounded-size summary of a weighted one-dimensional
// sample, in the t-digest family: observations are kept as sorted centroids
// (fixed-bin behaviour while every distinct value fits the budget), and when
// the centroid count outgrows the budget, adjacent centroids are coalesced
// into their weighted mean by a width-doubling greedy pass. Three properties
// make it fit the fleet aggregator:
//
//   - Deterministic: the state after any sequence of Observe/Merge calls is a
//     pure function of that sequence — no randomness, no time dependence — so
//     per-shard sketches built from a deterministic replay are byte-identical
//     at any worker or process count.
//   - Mergeable: Merge folds another sketch in as if its centroids had been
//     observed here, so shard sketches combine in shard order into one fleet
//     summary.
//   - Bounded error with an explicit receipt: every compression step records
//     the maximum distance any observation may have moved, and ErrorBound
//     reports the accumulated worst case. Any quantile of the sketch is
//     within ErrorBound of the exact empirical quantile; N, Sum and Mean are
//     exact regardless of compression.
//
// A budget <= 0 disables compression entirely: the sketch stores every
// distinct value exactly (ErrorBound stays 0). Tests use that mode as the
// oracle the compressed mode is compared against.
//
// The zero value is not usable; construct sketches with NewSketch.
type Sketch struct {
	budget int
	cs     []Centroid // sorted ascending by V, values strictly increasing
	n      int64
	sum    float64 // exact Σ v·n in observation order
	errV   float64 // accumulated worst-case displacement of any observation
}

// NewSketch returns an empty sketch holding at most budget centroids after
// compression (<= 0: unbounded, exact).
func NewSketch(budget int) *Sketch {
	return &Sketch{budget: budget}
}

// Budget returns the centroid budget the sketch was built with.
func (s *Sketch) Budget() int { return s.budget }

// N returns the total observation count.
func (s *Sketch) N() int64 { return s.n }

// Sum returns the exact weighted sum of every observation, accumulated in
// observation order (compression never touches it).
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact weighted mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// NumCentroids returns the current number of centroids.
func (s *Sketch) NumCentroids() int { return len(s.cs) }

// Centroids returns the centroids in ascending value order. The slice is the
// sketch's own storage: read-only, valid until the next mutating call.
func (s *Sketch) Centroids() []Centroid { return s.cs }

// ErrorBound returns the worst-case distance any observed value may have
// drifted from the centroid now representing it. Consequently every quantile
// of the sketch is within ErrorBound of the exact sample quantile. It is 0
// until the first compression and only grows.
func (s *Sketch) ErrorBound() float64 { return s.errV }

// Observe records n observations of value v. n must be positive and v must
// be finite.
func (s *Sketch) Observe(v float64, n int64) {
	if n <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.n += n
	s.sum += v * float64(n)
	i := sort.Search(len(s.cs), func(i int) bool { return s.cs[i].V >= v })
	if i < len(s.cs) && s.cs[i].V == v {
		s.cs[i].N += n
		return
	}
	s.cs = append(s.cs, Centroid{})
	copy(s.cs[i+1:], s.cs[i:])
	s.cs[i] = Centroid{V: v, N: n}
	s.maybeCompress()
}

// Merge folds other into s as if its centroids had been observed here, in
// ascending value order. Deterministic: merging the same pair always yields
// the same state, so a fixed merge order (shard order) gives reproducible
// fleet summaries. The error bounds combine conservatively.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.n == 0 {
		return
	}
	if other.errV > s.errV {
		s.errV = other.errV
	}
	// Two-way merge of the sorted centroid lists; equal values coalesce.
	merged := make([]Centroid, 0, len(s.cs)+len(other.cs))
	i, j := 0, 0
	for i < len(s.cs) && j < len(other.cs) {
		switch {
		case s.cs[i].V < other.cs[j].V:
			merged = append(merged, s.cs[i])
			i++
		case s.cs[i].V > other.cs[j].V:
			merged = append(merged, other.cs[j])
			j++
		default:
			merged = append(merged, Centroid{V: s.cs[i].V, N: s.cs[i].N + other.cs[j].N})
			i, j = i+1, j+1
		}
	}
	merged = append(merged, s.cs[i:]...)
	merged = append(merged, other.cs[j:]...)
	s.cs = merged
	s.n += other.n
	s.sum += other.sum
	s.maybeCompress()
}

// compressSlack lets the sketch run ahead of its budget between compressions
// so Observe stays amortized-cheap instead of compressing on every insert.
const compressSlack = 2

func (s *Sketch) maybeCompress() {
	if s.budget > 0 && len(s.cs) > s.budget*compressSlack {
		s.compress()
	}
}

// compress coalesces adjacent centroids into weighted means until at most
// budget remain. The pass is greedy left-to-right over a value width w,
// doubling w (starting from span/budget) until the result fits — purely
// data-dependent, hence deterministic. The widest cluster span produced is
// added to the error receipt: no observation moves farther than its
// cluster's span in one pass.
func (s *Sketch) compress() {
	span := s.cs[len(s.cs)-1].V - s.cs[0].V
	w := span / float64(s.budget)
	for {
		if s.clusters(w) <= s.budget {
			break
		}
		w *= 2
	}
	out := s.cs[:0]
	maxSpan := 0.0
	for start := 0; start < len(s.cs); {
		end := start + 1
		for end < len(s.cs) && s.cs[end].V-s.cs[start].V <= w {
			end++
		}
		if end == start+1 {
			out = append(out, s.cs[start])
		} else {
			var vn float64
			var n int64
			for k := start; k < end; k++ {
				vn += s.cs[k].V * float64(s.cs[k].N)
				n += s.cs[k].N
			}
			if cs := s.cs[end-1].V - s.cs[start].V; cs > maxSpan {
				maxSpan = cs
			}
			out = append(out, Centroid{V: vn / float64(n), N: n})
		}
		start = end
	}
	s.cs = out
	s.errV += maxSpan
}

// clusters counts the greedy left-to-right clusters of width w.
func (s *Sketch) clusters(w float64) int {
	count := 0
	for start := 0; start < len(s.cs); count++ {
		end := start + 1
		for end < len(s.cs) && s.cs[end].V-s.cs[start].V <= w {
			end++
		}
		start = end
	}
	return count
}

// Quantile returns the q-th (0..1) weighted empirical quantile of the
// sketch: the smallest centroid value whose cumulative count reaches
// ceil(q·N). It differs from the exact sample quantile by at most
// ErrorBound. Returns 0 for an empty sketch; q is clamped to [0, 1].
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range s.cs {
		cum += s.cs[i].N
		if cum >= target {
			return s.cs[i].V
		}
	}
	return s.cs[len(s.cs)-1].V
}

// Wire format: everything little-endian and bit-exact, so a sketch
// round-tripped through AppendBinary/DecodeSketch is byte-identical to the
// original — the property the multi-process fleet protocol depends on.
//
//	u32 budget (two's complement)  u64 n  f64 sum  f64 errV
//	u32 numCentroids  then per centroid: f64 V  u64 N

// AppendBinary appends the sketch's exact binary encoding to b.
func (s *Sketch) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(s.budget)))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.sum))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.errV))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.cs)))
	for _, c := range s.cs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.V))
		b = binary.LittleEndian.AppendUint64(b, uint64(c.N))
	}
	return b
}

// maxDecodeCentroids bounds a decoded centroid count so a corrupt length
// field cannot drive a huge allocation.
const maxDecodeCentroids = 1 << 22

// DecodeSketch decodes one sketch from the front of b, returning it and the
// remaining bytes.
func DecodeSketch(b []byte) (*Sketch, []byte, error) {
	const header = 4 + 8 + 8 + 8 + 4
	if len(b) < header {
		return nil, nil, fmt.Errorf("stats: sketch truncated (%d header bytes)", len(b))
	}
	s := &Sketch{
		budget: int(int32(binary.LittleEndian.Uint32(b))),
		n:      int64(binary.LittleEndian.Uint64(b[4:])),
		sum:    math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
		errV:   math.Float64frombits(binary.LittleEndian.Uint64(b[20:])),
	}
	num := int(binary.LittleEndian.Uint32(b[28:]))
	if num > maxDecodeCentroids {
		return nil, nil, fmt.Errorf("stats: sketch centroid count %d exceeds limit", num)
	}
	b = b[header:]
	if len(b) < num*16 {
		return nil, nil, fmt.Errorf("stats: sketch truncated (%d centroids, %d bytes left)", num, len(b))
	}
	if num > 0 {
		s.cs = make([]Centroid, num)
		for i := range s.cs {
			s.cs[i].V = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
			s.cs[i].N = int64(binary.LittleEndian.Uint64(b[i*16+8:]))
		}
	}
	for i := 1; i < len(s.cs); i++ {
		if !(s.cs[i].V > s.cs[i-1].V) {
			return nil, nil, fmt.Errorf("stats: sketch centroids out of order at %d", i)
		}
	}
	return s, b[num*16:], nil
}
