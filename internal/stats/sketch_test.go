package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile mirrors Sketch.Quantile on the raw sample: the smallest
// value whose cumulative count reaches ceil(q·n).
func exactQuantile(sorted []float64, q float64) float64 {
	target := int(math.Ceil(q * float64(len(sorted))))
	if target < 1 {
		target = 1
	}
	return sorted[target-1]
}

// sampleSets generates the fuzzed distribution shapes the property tests
// sweep: uniform, exponential, tightly clustered, heavy duplicates, and a
// bimodal mix — each with its own seed per trial.
func sampleSets(t *testing.T, trial int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000 + trial)))
	n := 500 + rng.Intn(2000)
	uniform := make([]float64, n)
	exponential := make([]float64, n)
	clustered := make([]float64, n)
	duplicated := make([]float64, n)
	bimodal := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Float64() * 100
		exponential[i] = rng.ExpFloat64() * 3
		clustered[i] = 50 + rng.NormFloat64()*0.01
		duplicated[i] = float64(rng.Intn(7)) + 0.5
		if rng.Intn(2) == 0 {
			bimodal[i] = 1 + rng.Float64()
		} else {
			bimodal[i] = 100 + rng.Float64()*10
		}
	}
	return [][]float64{uniform, exponential, clustered, duplicated, bimodal}
}

func TestSketchQuantileWithinErrorBound(t *testing.T) {
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	for trial := 0; trial < 5; trial++ {
		for shape, xs := range sampleSets(t, trial) {
			for _, budget := range []int{16, 64, 256} {
				s := NewSketch(budget)
				sum := 0.0
				for _, x := range xs {
					s.Observe(x, 1)
					sum += x
				}
				if s.N() != int64(len(xs)) {
					t.Fatalf("shape %d budget %d: N = %d, want %d", shape, budget, s.N(), len(xs))
				}
				if s.Sum() != sum {
					t.Fatalf("shape %d budget %d: Sum = %v, want exact %v", shape, budget, s.Sum(), sum)
				}
				if got := s.NumCentroids(); got > budget*compressSlack {
					t.Fatalf("shape %d budget %d: %d centroids exceed slack cap", shape, budget, got)
				}
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				bound := s.ErrorBound()
				for _, q := range qs {
					got, want := s.Quantile(q), exactQuantile(sorted, q)
					if d := math.Abs(got - want); d > bound+1e-12 {
						t.Fatalf("shape %d budget %d q=%v: |%v - %v| = %v > ErrorBound %v",
							shape, budget, q, got, want, d, bound)
					}
				}
			}
		}
	}
}

func TestSketchExactModeIsLossless(t *testing.T) {
	xs := sampleSets(t, 0)[0]
	s := NewSketch(0)
	for _, x := range xs {
		s.Observe(x, 1)
	}
	if s.ErrorBound() != 0 {
		t.Fatalf("exact mode ErrorBound = %v, want 0", s.ErrorBound())
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.123, 0.5, 0.87, 1} {
		if got, want := s.Quantile(q), exactQuantile(sorted, q); got != want {
			t.Fatalf("exact mode q=%v: got %v want %v", q, got, want)
		}
	}
}

// TestSketchMergeFixedOrderDeterministic pins the property the fleet relies
// on: merging the same shard sketches in the same order always reproduces
// the same bytes, even when compression fires during the merges.
func TestSketchMergeFixedOrderDeterministic(t *testing.T) {
	build := func() *Sketch {
		shards := make([]*Sketch, 8)
		rng := rand.New(rand.NewSource(7))
		for i := range shards {
			shards[i] = NewSketch(32)
			for j := 0; j < 400; j++ {
				shards[i].Observe(rng.Float64()*50, int64(1+rng.Intn(5)))
			}
		}
		global := NewSketch(32)
		for _, sh := range shards {
			global.Merge(sh)
		}
		return global
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.AppendBinary(nil), b.AppendBinary(nil)) {
		t.Fatal("fixed-order merge is not reproducible")
	}
}

// TestSketchMergeAssociativeUncompressed: while every distinct value fits the
// budget, merge is exactly associative and commutative (the sketch is just a
// sorted multiset), so any grouping of the shard merges yields identical
// centroids.
func TestSketchMergeAssociativeUncompressed(t *testing.T) {
	mk := func(vals ...float64) *Sketch {
		s := NewSketch(1024)
		for i, v := range vals {
			s.Observe(v, int64(i+1))
		}
		return s
	}
	a := mk(1, 3, 5, 7)
	b := mk(2, 3, 8)
	c := mk(0.5, 5, 9)

	left := NewSketch(1024)
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := NewSketch(1024)
	bc.Merge(b)
	bc.Merge(c)
	right := NewSketch(1024)
	right.Merge(a)
	right.Merge(bc)

	swapped := NewSketch(1024)
	swapped.Merge(c)
	swapped.Merge(a)
	swapped.Merge(b)

	if !reflect.DeepEqual(left.Centroids(), right.Centroids()) {
		t.Fatal("uncompressed merge is not associative")
	}
	if !reflect.DeepEqual(left.Centroids(), swapped.Centroids()) {
		t.Fatal("uncompressed merge is not commutative")
	}
	if left.N() != right.N() || left.N() != swapped.N() {
		t.Fatal("merge changed total count")
	}
}

// TestSketchMergeConservesMass: under any merge order, with compression
// firing, N and Sum are conserved exactly (Sum is FP-order-sensitive only in
// its observation order, which merges replay identically).
func TestSketchMergeConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	parts := make([]*Sketch, 4)
	var wantN int64
	for i := range parts {
		parts[i] = NewSketch(16)
		for j := 0; j < 300; j++ {
			parts[i].Observe(rng.ExpFloat64(), 2)
			wantN += 2
		}
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}} {
		g := NewSketch(16)
		for _, i := range order {
			g.Merge(parts[i])
		}
		if g.N() != wantN {
			t.Fatalf("order %v: N = %d, want %d", order, g.N(), wantN)
		}
		var cn int64
		for _, c := range g.Centroids() {
			cn += c.N
		}
		if cn != wantN {
			t.Fatalf("order %v: centroid mass %d, want %d", order, cn, wantN)
		}
	}
}

func TestSketchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	s := NewSketch(24)
	for i := 0; i < 1000; i++ {
		s.Observe(rng.NormFloat64()*10+50, int64(1+rng.Intn(3)))
	}
	enc := s.AppendBinary(nil)
	got, rest, err := DecodeSketch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d bytes", len(rest))
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("round trip changed the sketch")
	}
	// Re-encoding must reproduce the exact bytes.
	if !reflect.DeepEqual(got.AppendBinary(nil), enc) {
		t.Fatal("re-encode differs")
	}
	// An empty sketch round-trips too.
	empty := NewSketch(0)
	got2, _, err := DecodeSketch(empty.AppendBinary(nil))
	if err != nil || got2.N() != 0 || got2.NumCentroids() != 0 {
		t.Fatalf("empty round trip: %v %+v", err, got2)
	}
}

func TestSketchDecodeRejectsCorrupt(t *testing.T) {
	s := NewSketch(8)
	s.Observe(1, 1)
	s.Observe(2, 1)
	enc := s.AppendBinary(nil)
	if _, _, err := DecodeSketch(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, _, err := DecodeSketch(enc[:3]); err == nil {
		t.Fatal("truncated header decoded")
	}
	// Swap the two centroids' values to break the order invariant.
	bad := append([]byte(nil), enc...)
	copy(bad[32:40], enc[48:56])
	copy(bad[48:56], enc[32:40])
	if _, _, err := DecodeSketch(bad); err == nil {
		t.Fatal("out-of-order centroids decoded")
	}
}

func TestSketchIgnoresInvalidObservations(t *testing.T) {
	s := NewSketch(8)
	s.Observe(math.NaN(), 1)
	s.Observe(math.Inf(1), 1)
	s.Observe(1, 0)
	s.Observe(1, -3)
	if s.N() != 0 || s.NumCentroids() != 0 {
		t.Fatalf("invalid observations were recorded: %+v", s)
	}
}
