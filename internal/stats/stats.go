// Package stats provides the small statistical toolkit shared by the
// experiment harnesses: means, percentiles, empirical CDFs, histograms and
// Pearson correlation (used to reproduce Table 4 of the paper).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. It returns 0 (and no error) when either side has zero variance,
// matching the convention used for Table 4 where degenerate features simply
// show no correlation.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input slice is copied.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Len returns the number of samples behind the CDF.
func (c *CDF) Len() int {
	return len(c.sorted)
}

// Histogram counts samples into uniform-width bins over [lo, hi). Samples
// outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int {
	return h.total
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Summary bundles the descriptive statistics printed by the experiment
// harnesses.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	p50, _ := Percentile(xs, 50)
	p90, _ := Percentile(xs, 90)
	s := Summary{N: len(xs), Mean: mean, StdDev: sd, Min: xs[0], Max: xs[0], P50: p50, P90: p90}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s, nil
}

// Spearman returns Spearman's rank correlation coefficient: the Pearson
// correlation of the ranks, robust to monotone nonlinearity. Ties receive
// their average rank.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: spearman length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks converts values to average ranks (1-based).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
