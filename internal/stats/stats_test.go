package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "single", give: []float64{5}, want: 5},
		{name: "pair", give: []float64{2, 4}, want: 3},
		{name: "negatives", give: []float64{-1, 1}, want: 0},
		{name: "uniform", give: []float64{7, 7, 7, 7}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.give)
			if err != nil {
				t.Fatalf("Mean: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if !almostEqual(sd, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{25, 2},
		{50, 3},
		{75, 4},
		{100, 5},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	if !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
}

func TestPercentileRejectsOutOfRange(t *testing.T) {
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("Percentile(101) succeeded, want error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("Percentile(-1) succeeded, want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
}

func TestPearsonAntiCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{8, 6, 4, 2}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if r != 0 {
		t.Fatalf("Pearson with zero variance = %v, want 0", r)
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("Pearson length mismatch succeeded, want error")
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("CDF.At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 10},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestCDFEmptyFails(t *testing.T) {
	if _, err := NewCDF(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("NewCDF(nil) err = %v, want ErrEmpty", err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0, 1, 2.5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	// -3 clamps into bin 0; 42 clamps into bin 4.
	if h.Counts[0] != 3 {
		t.Fatalf("bin 0 count = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 {
		t.Fatalf("bin 4 count = %d, want 2", h.Counts[4])
	}
	if !almostEqual(h.Fraction(0), 0.5, 1e-12) {
		t.Fatalf("Fraction(0) = %v, want 0.5", h.Fraction(0))
	}
}

func TestHistogramRejectsBadArgs(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("NewHistogram bins=0 succeeded")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("NewHistogram empty range succeeded")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almostEqual(s.Mean, 3, 1e-12) {
		t.Fatalf("Summary = %+v", s)
	}
}

// TestPropertyPearsonBounded checks |r| <= 1 on random samples.
func TestPropertyPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCDFMonotone checks the CDF is non-decreasing and within [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := -10.0; x <= 110; x += 1.5 {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQuantileInverse checks At(Quantile(q)) >= q.
func TestPropertyQuantileInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		for _, q := range []float64{0.1, 0.3, 0.5, 0.9, 1.0} {
			if c.At(c.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Perfectly monotone but nonlinear: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", rho)
	}
	r, _ := Pearson(xs, ys)
	if r >= 1 {
		t.Fatalf("Pearson = %v, expected < 1 on cubic", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	ys := []float64{3, 3, 5, 5}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Fatalf("Spearman with ties = %v, want 1", rho)
	}
}

func TestSpearmanValidation(t *testing.T) {
	if _, err := Spearman(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty accepted")
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}
