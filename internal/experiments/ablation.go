package experiments

import (
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
)

// AblationRow is one design variant's outcome on the espn-like page with a
// 20-second reading window.
type AblationRow struct {
	Name           string
	EnergyJ        float64
	LoadS          float64
	EnergyDeltaPct float64 // relative to the energy-aware default
}

// AblationResult collects the design-choice ablations DESIGN.md calls out.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations quantifies the contribution of each design choice:
//
//   - computation reordering alone (no forced dormancy) — how much of the
//     saving is the radio release vs. the grouped transfers;
//   - the dormancy guard length (releasing too eagerly vs. too lazily);
//   - the paper's Section 1 argument that merely shortening the operator
//     timers (T1/T2) on the *original* browser is not a substitute.
func Ablations() (*AblationResult, error) {
	page, err := ESPNPage()
	if err != nil {
		return nil, err
	}
	const reading = 20 * time.Second

	type variant struct {
		name  string
		mode  browser.Mode
		radio rrc.Config
		opts  []browser.Option
	}
	half := rrc.DefaultConfig()
	half.T1 = half.T1 / 2
	half.T2 = half.T2 / 2
	variants := []variant{
		{name: "energy-aware (default, guard 2.5s)", mode: browser.ModeEnergyAware, radio: rrc.DefaultConfig()},
		{name: "reordering only (no dormancy)", mode: browser.ModeEnergyAware,
			radio: rrc.DefaultConfig(), opts: []browser.Option{browser.WithoutAutoDormancy()}},
		{name: "energy-aware, guard 0s", mode: browser.ModeEnergyAware,
			radio: rrc.DefaultConfig(), opts: []browser.Option{browser.WithDormancyGuard(0)}},
		{name: "energy-aware, guard 8s", mode: browser.ModeEnergyAware,
			radio: rrc.DefaultConfig(), opts: []browser.Option{browser.WithDormancyGuard(8 * time.Second)}},
		{name: "original (default timers)", mode: browser.ModeOriginal, radio: rrc.DefaultConfig()},
		{name: "original, halved timers (T1=2s, T2=7.5s)", mode: browser.ModeOriginal, radio: half},
	}

	// Each variant is an independent phone; run them on the pool and compute
	// the deltas afterwards, once the index-0 baseline is known.
	rows, err := runner.Collect(len(variants), func(i int) (AblationRow, error) {
		v := variants[i]
		s, err := New(v.mode, WithRadioConfig(v.radio), WithEngineOptions(v.opts...))
		if err != nil {
			return AblationRow{}, err
		}
		r, err := s.LoadToEnd(page)
		if err != nil {
			return AblationRow{}, err
		}
		s.Clock.RunFor(reading)
		return AblationRow{
			Name:    v.name,
			EnergyJ: s.Radio.EnergyJ() + r.CPUEnergyJ,
			LoadS:   r.FinalDisplayAt.Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	baseline := rows[0].EnergyJ
	for i := range rows {
		rows[i].EnergyDeltaPct = (rows[i].EnergyJ - baseline) / baseline * 100
	}
	return &AblationResult{Rows: rows}, nil
}
