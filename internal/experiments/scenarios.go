package experiments

import (
	"eabrowse/internal/channel"
	"eabrowse/internal/rrc"
)

// The scenario×policy matrix: every built-in channel scenario replayed under
// the paper's static thresholds, the per-user adaptive estimator, and the
// greedy counterfactual oracle, on one radio backend. The replay itself is
// closed-form and strictly sequential; the parallel work — loading each pool
// page under each channel segment — happens inside the evaluator on the
// shared worker pool and folds deterministically, so the matrix is
// byte-identical at any -parallel width.

// ScenarioRow is one scenario×policy cell.
type ScenarioRow struct {
	Scenario string
	Policy   string
	EnergyJ  float64
	DelayS   float64
	// SavingPct is the energy saving relative to the static policy under the
	// same scenario (zero for the static row itself).
	SavingPct   float64
	Switches    int
	Predictions int
}

// ScenarioMatrix is the full scenario×policy table for one radio backend.
type ScenarioMatrix struct {
	Radio string
	Rows  []ScenarioRow
}

// Scenarios replays the matrix on the process-default radio backend
// (eabench -radio).
func Scenarios() (*ScenarioMatrix, error) {
	return ScenariosWithRadio(DefaultRadioSpec())
}

// ScenariosWithRadio replays the matrix on an explicit backend; the golden
// regression test uses this to cover umts/lte/nr without touching the
// process default.
func ScenariosWithRadio(spec rrc.ModelSpec) (*ScenarioMatrix, error) {
	m := &ScenarioMatrix{Radio: spec.Profile()}
	for _, name := range channel.Scenarios() {
		ev, err := scenarioEvaluator(name, spec)
		if err != nil {
			return nil, err
		}
		results, err := ev.EvaluateAll()
		if err != nil {
			return nil, err
		}
		staticJ := results[0].EnergyJ
		for _, r := range results {
			m.Rows = append(m.Rows, ScenarioRow{
				Scenario:    r.Scenario,
				Policy:      r.Policy.String(),
				EnergyJ:     r.EnergyJ,
				DelayS:      r.DelayS,
				SavingPct:   savingPct(staticJ, r.EnergyJ),
				Switches:    r.Switches,
				Predictions: r.Predictions,
			})
		}
	}
	return m, nil
}
