package experiments

import (
	"eabrowse/internal/channel"
	"eabrowse/internal/policy"
	"eabrowse/internal/predictor"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
	"eabrowse/internal/webpage"
)

// The artifact store memoizes the expensive inputs shared by many
// experiments: the generated benchmark corpora, the default synthesized
// 40-user trace with its train/test split, and the GBRT predictors trained
// on it. Before this cache, `eabench -exp all` re-synthesized the trace and
// retrained the predictors once per experiment that needed them (Fig. 7,
// Table 4, Fig. 11, Fig. 15, Fig. 16, Table 7, the predictor ablations);
// now each is built exactly once per process, even when experiments run
// concurrently.
//
// Cached artifacts are shared by pointer and must be treated as immutable:
// pages are read-only to the browser engine, datasets are read-only to
// training and evaluation, and trained predictors are read-only to Predict.
type artifactStore struct {
	mobile runner.Memo[[]*webpage.Page]
	full   runner.Memo[[]*webpage.Page]
	espn   runner.Memo[*webpage.Page]
	mcnn   runner.Memo[*webpage.Page]
	ebay   runner.Memo[*webpage.Page]
	trace  runner.Memo[*trace.Dataset]
	split  runner.Memo[traceSplit]
	// predictors is keyed by whether the interest threshold was applied in
	// training (the only predictor variants shared across experiments).
	predictors runner.KeyedMemo[bool, *predictor.Predictor]
	// scenTrace is the smaller trace the scenario×policy matrix replays;
	// scenEvals caches the per-(scenario, radio) evaluators, whose segment
	// cost tables are the expensive part.
	scenTrace runner.Memo[*trace.Dataset]
	scenEvals runner.KeyedMemo[scenEvalKey, *policy.ScenarioEvaluator]
}

// scenEvalKey identifies one cached scenario evaluator.
type scenEvalKey struct {
	scenario string
	radio    string
}

type traceSplit struct {
	train []trace.Visit
	test  []trace.Visit
}

var artifacts artifactStore

// ResetArtifacts drops every cached artifact so the next accessor rebuilds
// from scratch. It is meant for benchmarks that need cold-cache timings; it
// must not race with concurrent artifact accessors.
func ResetArtifacts() {
	artifacts = artifactStore{}
}

// MobilePages returns the shared mobile-version benchmark corpus.
func MobilePages() ([]*webpage.Page, error) {
	return artifacts.mobile.Get(webpage.MobileBenchmark)
}

// FullPages returns the shared full-version benchmark corpus.
func FullPages() ([]*webpage.Page, error) {
	return artifacts.full.Get(webpage.FullBenchmark)
}

// BenchmarkPages returns both corpora concatenated (mobile first). The slice
// is fresh on every call; the pages it points to are shared.
func BenchmarkPages() ([]*webpage.Page, error) {
	mobile, err := MobilePages()
	if err != nil {
		return nil, err
	}
	full, err := FullPages()
	if err != nil {
		return nil, err
	}
	pages := make([]*webpage.Page, 0, len(mobile)+len(full))
	pages = append(pages, mobile...)
	return append(pages, full...), nil
}

// ESPNPage returns the shared espn.go.com/sports stand-in.
func ESPNPage() (*webpage.Page, error) {
	return artifacts.espn.Get(webpage.ESPNSports)
}

// MCNNPage returns the shared m.cnn.com stand-in.
func MCNNPage() (*webpage.Page, error) {
	return artifacts.mcnn.Get(webpage.MCNN)
}

// MotorsEbayPage returns the shared www.motors.ebay.com stand-in.
func MotorsEbayPage() (*webpage.Page, error) {
	return artifacts.ebay.Get(webpage.MotorsEbay)
}

// DefaultTrace returns the shared default synthesized trace (the paper's
// 40-user collection).
func DefaultTrace() (*trace.Dataset, error) {
	return artifacts.trace.Get(func() (*trace.Dataset, error) {
		return trace.Synthesize(trace.DefaultConfig())
	})
}

// DefaultSplit returns the shared 70/30 train/test split of the default
// trace (split seed 7 — the one every trace-driven experiment uses).
func DefaultSplit() (train, test []trace.Visit, err error) {
	s, err := artifacts.split.Get(func() (traceSplit, error) {
		ds, err := DefaultTrace()
		if err != nil {
			return traceSplit{}, err
		}
		tr, te, err := predictor.Split(ds.Visits, 0.3, 7)
		if err != nil {
			return traceSplit{}, err
		}
		return traceSplit{train: tr, test: te}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return s.train, s.test, nil
}

// ScenarioTraceConfig sizes the trace the scenario×policy matrix replays: a
// quarter of the paper's collection, so the matrix (5 scenarios × up to 7
// segments × pool loads per radio backend) stays a few seconds per backend.
func ScenarioTraceConfig() trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Users = 12
	cfg.HoursPerUser = 1
	cfg.PoolSize = 24
	return cfg
}

// ScenarioTrace returns the shared trace the scenario matrix replays.
func ScenarioTrace() (*trace.Dataset, error) {
	return artifacts.scenTrace.Get(func() (*trace.Dataset, error) {
		return trace.Synthesize(ScenarioTraceConfig())
	})
}

// scenarioEvaluator returns the shared (memoized) evaluator for one
// scenario on one radio backend.
func scenarioEvaluator(scenario string, spec rrc.ModelSpec) (*policy.ScenarioEvaluator, error) {
	return artifacts.scenEvals.Get(scenEvalKey{scenario, spec.Profile()},
		func() (*policy.ScenarioEvaluator, error) {
			sched, err := channel.ScenarioSchedule(scenario)
			if err != nil {
				return nil, err
			}
			ds, err := ScenarioTrace()
			if err != nil {
				return nil, err
			}
			pred, err := TrainedPredictor(true)
			if err != nil {
				return nil, err
			}
			return policy.NewScenarioEvaluator(ds, pred, policy.DefaultParams(), spec, sched)
		})
}

// TrainedPredictor returns the shared GBRT predictor trained on the default
// split, with or without the interest threshold. withInterest=true is the
// paper's deployed configuration (used by Fig. 16 and the fleet experiment);
// both variants appear in Fig. 15.
func TrainedPredictor(withInterest bool) (*predictor.Predictor, error) {
	return artifacts.predictors.Get(withInterest, func() (*predictor.Predictor, error) {
		train, _, err := DefaultSplit()
		if err != nil {
			return nil, err
		}
		cfg := predictor.DefaultConfig()
		cfg.UseInterestThreshold = withInterest
		return predictor.Train(train, cfg)
	})
}
