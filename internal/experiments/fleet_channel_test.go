package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"eabrowse/internal/channel"
	"eabrowse/internal/obs"
	"eabrowse/internal/runner"
)

// TestFleetChannelPolicyValidation pins the valid-name-list error contract
// for the channel and policy knobs.
func TestFleetChannelPolicyValidation(t *testing.T) {
	err := FleetConfig{Users: 4, HoursPerUser: 0.02, Channel: "warp-drive"}.Validate()
	if err == nil {
		t.Fatal("unknown channel scenario accepted")
	}
	for _, name := range channel.Scenarios() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("channel error %q missing scenario %q", err, name)
		}
	}

	err = FleetConfig{Users: 4, HoursPerUser: 0.02, Policy: "oracle"}.Validate()
	if err == nil {
		t.Fatal("unsupported policy accepted")
	}
	for _, name := range []string{"adaptive", "static"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("policy error %q missing %q", err, name)
		}
	}

	for _, cfg := range []FleetConfig{
		{Users: 4, HoursPerUser: 0.02, Channel: "fading"},
		{Users: 4, HoursPerUser: 0.02, Policy: "adaptive"},
		{Users: 4, HoursPerUser: 0.02, Channel: "steady-3g", Policy: "static"},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", cfg, err)
		}
	}
}

// TestFleetChannelSlowsTransfers: a degraded scenario must stretch the
// fleet's transmission times relative to the fixed ideal link, and the
// result must echo the channel and resolved policy.
func TestFleetChannelSlowsTransfers(t *testing.T) {
	base := FleetConfig{Users: 6, HoursPerUser: 0.03, Seed: 7}
	ideal, err := Fleet(base)
	if err != nil {
		t.Fatalf("Fleet (ideal): %v", err)
	}
	if ideal.Channel != "" || ideal.Policy != "static" {
		t.Fatalf("ideal fleet reports channel %q policy %q", ideal.Channel, ideal.Policy)
	}

	faded := base
	faded.Channel = "fading"
	shaped, err := Fleet(faded)
	if err != nil {
		t.Fatalf("Fleet (fading): %v", err)
	}
	if shaped.Channel != "fading" {
		t.Fatalf("shaped fleet reports channel %q", shaped.Channel)
	}
	if shaped.Visits != ideal.Visits {
		t.Fatalf("visits changed with channel: %d vs %d", shaped.Visits, ideal.Visits)
	}
	if !(shaped.Original.MeanTransmissionS > ideal.Original.MeanTransmissionS) {
		t.Errorf("fading did not stretch transmissions: %.3fs vs ideal %.3fs",
			shaped.Original.MeanTransmissionS, ideal.Original.MeanTransmissionS)
	}
	if !(shaped.Original.EnergyJ > ideal.Original.EnergyJ) {
		t.Errorf("fading did not cost energy: %.1f J vs ideal %.1f J",
			shaped.Original.EnergyJ, ideal.Original.EnergyJ)
	}
}

// TestFleetAdaptivePolicyRuns: the adaptive fleet replays end to end, still
// saves energy against the original pipeline on the paper's radio, and
// reports the policy it ran.
func TestFleetAdaptivePolicyRuns(t *testing.T) {
	cfg := FleetConfig{Users: 6, HoursPerUser: 0.03, Seed: 7, Channel: "congestion-ramp", Policy: "adaptive"}
	res, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("Fleet (adaptive): %v", err)
	}
	if res.Policy != "adaptive" {
		t.Fatalf("result reports policy %q", res.Policy)
	}
	if res.Aware.Predictions == 0 {
		t.Error("adaptive fleet made no predictions")
	}
	if !(res.Aware.EnergyJ < res.Original.EnergyJ) {
		t.Errorf("adaptive pipeline did not save energy: aware %.1f J, original %.1f J",
			res.Aware.EnergyJ, res.Original.EnergyJ)
	}
}

// TestFleetChannelParallelDeterminism: the channel-shaped adaptive fleet is
// byte-identical at any worker count, like every other fleet configuration.
func TestFleetChannelParallelDeterminism(t *testing.T) {
	cfg := FleetConfig{Users: 24, HoursPerUser: 0.02, Seed: 5, Channel: "fading", Policy: "adaptive"}
	defer runner.SetWorkers(runner.Workers())

	runner.SetWorkers(1)
	seq, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("sequential Fleet: %v", err)
	}
	runner.SetWorkers(8)
	par, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("parallel Fleet: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fleet differs between 1 and 8 workers:\n%+v\nvs\n%+v", seq, par)
	}
}

// TestFleetChannelTracedMatchesTemplated cross-checks the two replay engines
// under a channel on the steady-3g scenario, whose single segment makes the
// template engine's epoch approximation exact: a load sees the same
// conditions whether it is shaped segment-by-segment or against the full
// schedule.
func TestFleetChannelTracedMatchesTemplated(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replay is slow")
	}
	cfg := FleetConfig{Users: 6, HoursPerUser: 0.04, Seed: 13, Channel: "steady-3g", Policy: "adaptive"}
	analytic, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("templated Fleet: %v", err)
	}
	obs.Enable()
	defer obs.Disable()
	traced, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("traced Fleet: %v", err)
	}
	if analytic.Visits != traced.Visits {
		t.Errorf("visits: templated %d, traced %d", analytic.Visits, traced.Visits)
	}
	if analytic.Aware.Predictions != traced.Aware.Predictions {
		t.Errorf("predictions: templated %d, traced %d",
			analytic.Aware.Predictions, traced.Aware.Predictions)
	}
	if analytic.Aware.Switches != traced.Aware.Switches {
		t.Errorf("switches: templated %d, traced %d",
			analytic.Aware.Switches, traced.Aware.Switches)
	}
	relClose := func(name string, a, b, tol float64) {
		t.Helper()
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			return
		}
		if math.Abs(a-b)/scale > tol {
			t.Errorf("%s: templated %.9f, traced %.9f (rel err %.2e)",
				name, a, b, math.Abs(a-b)/scale)
		}
	}
	relClose("original energy", analytic.Original.EnergyJ, traced.Original.EnergyJ, 1e-6)
	relClose("aware energy", analytic.Aware.EnergyJ, traced.Aware.EnergyJ, 1e-6)
	relClose("original mean trans", analytic.Original.MeanTransmissionS, traced.Original.MeanTransmissionS, 1e-6)
	relClose("aware mean trans", analytic.Aware.MeanTransmissionS, traced.Aware.MeanTransmissionS, 1e-6)
}
