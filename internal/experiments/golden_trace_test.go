package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eabrowse/internal/browser"
	"eabrowse/internal/obs"
	"eabrowse/internal/rrc"
)

// update rewrites the committed golden files instead of comparing against
// them: go test ./internal/experiments -run TestGoldenTrace -update
var update = flag.Bool("update", false, "rewrite golden trace files")

const goldenTracePath = "testdata/golden_trace.jsonl"

// goldenTrace loads m.cnn.com under both pipelines (20 s reading window, as
// in Fig. 10) into a private collector and returns the merged trace bytes.
// Everything feeding the trace is simulated-time deterministic, so these
// bytes must be stable across runs, worker counts and architectures.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	c := obs.NewCollector()
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		rec, err := c.NewRecorder("golden/" + mode.String())
		if err != nil {
			t.Fatalf("NewRecorder(%v): %v", mode, err)
		}
		if _, err := LoadPageSession(page, mode, Fig10ReadingTime, nil, WithObsRecorder(rec)); err != nil {
			t.Fatalf("load %v: %v", mode, err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenTrace is the regression guard for the whole observability path:
// any change to event kinds, field names, emission points, timestamps or the
// energy ledger shows up as a line-level diff against the committed trace.
// Behaviour changes that are intended update the file with -update and show
// the reviewer the exact event-stream delta in the commit.
func TestGoldenTrace(t *testing.T) {
	got := goldenTrace(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenTracePath, len(got))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("read golden file: %v\n(generate it with: go test ./internal/experiments -run TestGoldenTrace -update)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Error(traceDiff(want, got))
}

// traceDiff renders a readable first-divergence diff between two traces: line
// counts, the first differing line number, and both versions of that line.
func traceDiff(want, got []byte) string {
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	var b strings.Builder
	fmt.Fprintf(&b, "trace diverges from %s (want %d lines, got %d)\n",
		goldenTracePath, len(wantLines), len(gotLines))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if wantLines[i] != gotLines[i] {
			fmt.Fprintf(&b, "first difference at line %d:\n  want: %s\n  got:  %s\n",
				i+1, wantLines[i], gotLines[i])
			b.WriteString("rerun with -update if the change is intended")
			return b.String()
		}
	}
	fmt.Fprintf(&b, "traces agree on the first %d lines; the longer one continues:\n", n)
	if len(gotLines) > n {
		fmt.Fprintf(&b, "  got line %d: %s\n", n+1, gotLines[n])
	} else {
		fmt.Fprintf(&b, "  want line %d: %s\n", n+1, wantLines[n])
	}
	b.WriteString("rerun with -update if the change is intended")
	return b.String()
}

// TestGoldenTraceStability regenerates the trace a second time in-process and
// requires byte equality — the determinism claim the golden file rests on.
func TestGoldenTraceStability(t *testing.T) {
	a := goldenTrace(t)
	b := goldenTrace(t)
	if !bytes.Equal(a, b) {
		t.Error(traceDiff(a, b))
	}
}

// goldenTraceFor is goldenTrace on an explicit radio backend: the same
// m.cnn.com double load, routed through WithRadioModel.
func goldenTraceFor(t *testing.T, profile string) []byte {
	t.Helper()
	spec, err := rrc.ProfileSpec(profile)
	if err != nil {
		t.Fatalf("ProfileSpec(%q): %v", profile, err)
	}
	c := obs.NewCollector()
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		rec, err := c.NewRecorder("golden/" + mode.String())
		if err != nil {
			t.Fatalf("NewRecorder(%v): %v", mode, err)
		}
		_, err = LoadPageSession(page, mode, Fig10ReadingTime, nil,
			WithRadioModel(spec), WithObsRecorder(rec))
		if err != nil {
			t.Fatalf("load %v on %s: %v", mode, profile, err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenTraceBackends pins one golden trace per non-UMTS radio backend
// (UMTS is the main golden_trace.jsonl). Each backend's event stream —
// state names, tail timings, ledger columns — is its own committed contract.
func TestGoldenTraceBackends(t *testing.T) {
	for _, profile := range []string{"lte", "nr"} {
		t.Run(profile, func(t *testing.T) {
			path := fmt.Sprintf("testdata/golden_trace_%s.jsonl", profile)
			got := goldenTraceFor(t, profile)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden file: %v\n(generate it with: go test ./internal/experiments -run TestGoldenTraceBackends -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Error(traceDiff(want, got))
			}
		})
	}
}

// TestGoldenTraceUMTSExplicitMatchesDefault proves the named "umts" profile
// routed through the RadioModel interface is byte-identical to the default
// path pinned by golden_trace.jsonl — the refactor's no-regression contract
// at the event-stream level.
func TestGoldenTraceUMTSExplicitMatchesDefault(t *testing.T) {
	def := goldenTrace(t)
	explicit := goldenTraceFor(t, "umts")
	if !bytes.Equal(def, explicit) {
		t.Error(traceDiff(def, explicit))
	}
}
