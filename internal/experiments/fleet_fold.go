package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/features"
	"eabrowse/internal/policy"
	"eabrowse/internal/stats"
	"eabrowse/internal/trace"
)

// Counted-multiplicity replay.
//
// In the templated engine every visit still walks the radio cursor through
// its reading window per visit. But for the static policy the whole visit —
// load energy, reading-window walk, prediction count, switch decision, and
// the session-break drain — is a piecewise-linear function of the reading
// time r alone, given the visit's template: the cursor starts the window in
// the template's end state, decays stage by stage at fixed boundaries, and
// every stage charges a constant power. So instead of walking each visit,
// the folded engine classifies it into a (template, reading-bucket,
// break-bit) cell, counts n and Σr per cell, and settles each touched cell
// once per shard: energy = n·constJ + slopeW·Σr.
//
// The only visits that escape the fold are delayed-release loads: when a
// forced release is still in flight at the next load, the load is shifted by
// the remaining release time δ, which stretches the observed transmission
// time (a predictor feature) and so makes the visit's outcome depend on the
// previous visit's reading time. Those visits replay individually through
// the same arithmetic as the per-visit engine. Everything stays exact up to
// floating-point association — the equivalence is pinned by tests against
// the per-visit engine.

// foldCell is one settled path through a visit: energy constJ + slopeW·r
// (reading seconds), the cursor stage the visit leaves behind, and what it
// counts. Cells with brk folded in include the session-break drain.
type foldCell struct {
	constJ   float64
	slopeW   float64
	endStage int
	// endRel marks the engaged-switch short-window cell without a break: the
	// cursor ends mid-release and the NEXT load is a delayed (exceptional)
	// one with δ = (alpha + ReleaseDelay) − r.
	endRel bool
	pred   bool
	swc    bool
}

// foldPlan is a template's precomputed fold: walk boundaries for bucket
// classification plus the cell table. Cell layout (b = 0 no-break, 1 break):
//
//	walk cells   [2k+b]            k = 0..K   — original visits; aware r ≤ α
//	hold cells   [holdOff+2k+b]    k = 0..K   — aware r > α, no forced release
//	switch cells [swOff+2j+b]      j = 0, 1   — aware r > α, engaged release
//
// where K+1 is the number of walk buckets (bucket k covers r ∈ [c_{k-1},
// c_k), the last bucket is the terminal stage) and the two switch buckets
// split at w = ReleaseDelay. Aware templates whose decision is Switch but
// whose cursor is already terminal after the α wait ("not engaged") release
// as a no-op, so they use the hold cells with the switch counted.
type foldPlan struct {
	aware   bool
	bounds  []time.Duration // c_0..c_{K-1}, cumulative stage boundaries
	cells   []foldCell
	holdOff int
	swOff   int           // -1 when the template never releases while engaged
	swBound time.Duration // alpha + ReleaseDelay, the switch-bucket split
}

// bucket classifies a reading window against the walk boundaries, mirroring
// phoneCursor.advance exactly: a window reaching a boundary crosses it
// (d ≥ rem advances the stage), and a zero window leaves the cursor alone.
func (p *foldPlan) bucket(r time.Duration) int {
	if r == 0 {
		return 0
	}
	k := 0
	for k < len(p.bounds) && p.bounds[k] <= r {
		k++
	}
	return k
}

// classify maps one visit (reading time, break-follows bit) to its cell.
// For the engaged-switch short-window cell without a break it also returns
// the release remainder the next load starts under.
func (p *foldPlan) classify(r time.Duration, brk bool, alpha time.Duration) (int, time.Duration) {
	b := 0
	if brk {
		b = 1
	}
	if !p.aware || r <= alpha {
		return 2*p.bucket(r) + b, 0
	}
	if p.swOff >= 0 {
		if r < p.swBound {
			idx := p.swOff + b
			if !brk {
				return idx, p.swBound - r
			}
			return idx, 0
		}
		return p.swOff + 2 + b, 0
	}
	return p.holdOff + 2*p.bucket(r) + b, 0
}

// buildFoldPlan derives a template's fold table from the tail profile, the
// session-break drain, and the interest threshold α. Pure function of its
// arguments, so racing builders in the template cache agree.
func buildFoldPlan(t *visitTemplate, mode browser.Mode, fr *fleetRadio, alpha time.Duration) *foldPlan {
	tp := &fr.tail
	term := tp.TerminalIndex()
	loadJ := t.radioJ + t.cpuJ
	drainS := fr.drain.Seconds()
	termW := tp.Terminal().PowerW

	// Walk geometry from the template's end state: bucket k sits in stage
	// s0+k; c_k is the cumulative time to leave it.
	s0 := t.endStage
	K := term - s0
	bounds := make([]time.Duration, K)
	powers := make([]float64, K+1)
	var cum time.Duration
	for k := 0; k < K; k++ {
		if k == 0 {
			cum = t.endRem
		} else {
			cum += tp.Stage(s0 + k).Dwell
		}
		bounds[k] = cum
		powers[k] = tp.Stage(s0 + k).PowerW
	}
	powers[K] = termW

	// Pure walk linear forms: walking r from the end state costs
	// wConst[k] + wSlope[k]·r for r in bucket k; draining afterwards costs
	// dConst[k] + dSlope[k]·r more and always ends terminal.
	wConst := make([]float64, K+1)
	wSlope := make([]float64, K+1)
	dConst := make([]float64, K+1)
	dSlope := make([]float64, K+1)
	spent := 0.0 // Σ P_j·Δ_j for stages fully traversed before bucket k
	for k := 0; k <= K; k++ {
		var prev time.Duration
		if k > 0 {
			prev = bounds[k-1]
			var width time.Duration
			if k == 1 {
				width = bounds[0]
			} else {
				width = bounds[k-1] - bounds[k-2]
			}
			spent += powers[k-1] * width.Seconds()
		}
		wConst[k] = spent - powers[k]*prev.Seconds()
		wSlope[k] = powers[k]
		if k == K {
			dConst[k] = termW * drainS
			dSlope[k] = 0
			continue
		}
		// Post-walk state: stage s0+k with c_k − r remaining. The drain
		// finishes the stage, the rest of the tail, then idles terminal.
		restJ := 0.0
		for j := k + 1; j < K; j++ {
			restJ += powers[j] * (bounds[j] - bounds[j-1]).Seconds()
		}
		ck := bounds[k].Seconds()
		restT := (bounds[K-1] - bounds[k]).Seconds()
		dConst[k] = powers[k]*ck + restJ + termW*(drainS-ck-restT)
		dSlope[k] = termW - powers[k]
	}

	p := &foldPlan{
		aware:  mode == browser.ModeEnergyAware,
		bounds: bounds,
		swOff:  -1,
	}
	walkEnd := func(k int) int { return s0 + k } // stage after bucket k's walk
	addWalkPair := func(pred, swc bool) {
		for k := 0; k <= K; k++ {
			p.cells = append(p.cells,
				foldCell{constJ: loadJ + wConst[k], slopeW: wSlope[k],
					endStage: walkEnd(k), pred: pred, swc: swc},
				foldCell{constJ: loadJ + wConst[k] + dConst[k], slopeW: wSlope[k] + dSlope[k],
					endStage: term, pred: pred, swc: swc})
		}
	}
	addWalkPair(false, false)
	if !p.aware {
		return p
	}

	p.holdOff = len(p.cells)
	if !t.switchOn {
		addWalkPair(true, false)
		return p
	}
	// Switch templates: after the α wait the cursor is in bucket(α); if that
	// is already terminal the forced release is a free no-op and the visit
	// walks like a hold (switch still counted). Otherwise the release lump
	// is charged and the window walks the releasing stage.
	ka := p.bucket(alpha)
	if walkEnd(ka) == term {
		addWalkPair(true, true)
		return p
	}
	preJ := wConst[ka] + wSlope[ka]*alpha.Seconds() + tp.ReleaseLumpJ
	relW := tp.ReleasePowerW
	alphaS := alpha.Seconds()
	p.swBound = alpha + tp.ReleaseDelay
	swBoundS := p.swBound.Seconds()
	p.swOff = len(p.cells)
	// Short window (w < ReleaseDelay): the window ends mid-release.
	p.cells = append(p.cells,
		foldCell{constJ: loadJ + preJ - relW*alphaS, slopeW: relW,
			endStage: term, endRel: true, pred: true, swc: true},
		// With a break the drain finishes the release then idles: the
		// remainder (swBound − r) burns at release power, the rest terminal.
		foldCell{constJ: loadJ + preJ - relW*alphaS + relW*swBoundS + termW*(drainS-swBoundS),
			slopeW:   relW + (termW - relW),
			endStage: term, pred: true, swc: true})
	// Long window (w ≥ ReleaseDelay): release completes, terminal after.
	longConst := loadJ + preJ + relW*tp.ReleaseDelay.Seconds() - termW*swBoundS
	p.cells = append(p.cells,
		foldCell{constJ: longConst, slopeW: termW, endStage: term, pred: true, swc: true},
		foldCell{constJ: longConst + termW*drainS, slopeW: termW, endStage: term, pred: true, swc: true})
	return p
}

// tmplAgg is one shard's per-template fold accumulator: visit count and
// reading-time sum per cell, in the template's cell layout.
type tmplAgg struct {
	t    *visitTemplate
	n    []int64
	sumR []float64
}

// foldState is a shard's fold accumulators, in template first-use order.
// Shards replay their users sequentially, so the order — and therefore the
// settle order and its floating-point association — is a pure function of
// the shard, independent of worker or process count.
type foldState struct {
	idx  map[*visitTemplate]int32
	aggs []tmplAgg
}

func (fs *foldState) agg(t *visitTemplate) *tmplAgg {
	if i, ok := fs.idx[t]; ok {
		return &fs.aggs[i]
	}
	if fs.idx == nil {
		fs.idx = make(map[*visitTemplate]int32, 256)
	}
	fs.idx[t] = int32(len(fs.aggs))
	fs.aggs = append(fs.aggs, tmplAgg{
		t:    t,
		n:    make([]int64, len(t.fold.cells)),
		sumR: make([]float64, len(t.fold.cells)),
	})
	return &fs.aggs[len(fs.aggs)-1]
}

// replayUserFolded is replayUserTemplated with the per-visit cursor walks
// replaced by cell counting. Only delayed-release loads (awareRel > 0) fall
// back to per-visit arithmetic.
func (rt *fleetRuntime) replayUserFolded(u int, visits []trace.Visit, fs *foldState, shard *FleetShardResult) error {
	if len(visits) == 0 {
		return nil
	}
	fr := rt.radioFor(u)
	term := fr.tail.TerminalIndex()
	alpha := rt.params.Alpha
	origStage := term
	awareStage := term
	var awareRel time.Duration
	var chT time.Duration
	session := visits[0].Session
	for i := range visits {
		v := &visits[i]
		if v.Session != session {
			// The previous visit's break cell already drained both cursors.
			session = v.Session
			chT += fr.drain
		}
		reading := time.Duration(v.ReadingSeconds * float64(time.Second))
		rs := reading.Seconds()
		brk := i+1 < len(visits) && visits[i+1].Session != v.Session
		seg := -1
		if rt.sched != nil {
			seg = rt.sched.SegmentIndexAt(chT)
		}

		// Original pipeline: never releases, so every visit folds.
		ot, err := rt.template(fr, tmplKey{page: v.Page, mode: browser.ModeOriginal,
			radio: fr.name, start: origStage, seg: seg})
		if err != nil {
			return err
		}
		ci, _ := ot.fold.classify(reading, brk, alpha)
		oa := fs.agg(ot)
		oa.n[ci]++
		oa.sumR[ci] += rs
		origStage = ot.fold.cells[ci].endStage
		observeVisitJ(shard.OrigVisitJ, ot, ci, rs, 0)

		// Energy-aware pipeline.
		if awareRel > 0 {
			awareStage, awareRel, err = rt.replayExceptional(fr, v.Page, awareRel, reading, brk, seg, shard)
			if err != nil {
				return err
			}
		} else {
			at, err := rt.template(fr, tmplKey{page: v.Page, mode: browser.ModeEnergyAware,
				radio: fr.name, start: awareStage, seg: seg})
			if err != nil {
				return err
			}
			ci, rel := at.fold.classify(reading, brk, alpha)
			aa := fs.agg(at)
			aa.n[ci]++
			aa.sumR[ci] += rs
			awareStage = at.fold.cells[ci].endStage
			awareRel = rel
			observeVisitJ(shard.AwareVisitJ, at, ci, rs, rt.predVisitJ)
		}

		chT += time.Duration(ot.loadS*float64(time.Second)) + reading
		shard.Visits++
	}
	return nil
}

// observeVisitJ files one folded visit's energy into the per-visit sketch.
// The drain-exclusive definition means the break bit never participates:
// cells come in (no-break, break) pairs, so ci&^1 is always the visit's own
// load + reading-window linear form without the appended session drain. The
// prediction cost joins here per visit (it is not in any cell's constJ).
func observeVisitJ(sk *stats.Sketch, t *visitTemplate, ci int, rs, predVisitJ float64) {
	c := &t.fold.cells[ci&^1]
	e := c.constJ + c.slopeW*rs
	if c.pred {
		e += predVisitJ
	}
	sk.Observe(e, 1)
}

// replayExceptional replays one delayed-release energy-aware visit
// per-visit: the pending release (remainder delta) stretches the load, the
// stretched transmission time re-enters the predictor, and the cursor walks
// the window for real. Mirrors replayUserTemplated's aware branch exactly.
// Returns the stage (or release remainder) the next load starts from.
func (rt *fleetRuntime) replayExceptional(fr *fleetRadio, page string, delta, reading time.Duration,
	brk bool, seg int, shard *FleetShardResult) (int, time.Duration, error) {

	tp := &fr.tail
	t, err := rt.template(fr, tmplKey{page: page, mode: browser.ModeEnergyAware,
		radio: fr.name, start: tp.TerminalIndex(), seg: seg})
	if err != nil {
		return 0, 0, err
	}
	e := t.radioJ + t.cpuJ + tp.ReleasePowerW*delta.Seconds()
	shard.AwareTrans.Observe(t.transS+delta.Seconds(), 1)
	pc := phoneCursor{stage: t.endStage, rem: t.endRem}
	alpha := rt.params.Alpha
	if reading <= alpha {
		e += pc.advance(reading, tp)
	} else {
		e += pc.advance(alpha, tp)
		vec := t.vec
		vec[features.TransmissionTime] += delta.Seconds()
		predS, err := rt.pred.PredictSeconds(vec)
		if err != nil {
			return 0, 0, err
		}
		shard.Predictions++
		shard.PredJ += rt.predVisitJ
		e += rt.predVisitJ // the per-visit engine folds predJ into awareJ per user
		window := reading - alpha
		if policy.Evaluate(time.Duration(predS*float64(time.Second)), rt.params).Switch {
			e += pc.forceIdle(tp)
			shard.Switches++
		}
		e += pc.advance(window, tp)
	}
	// The visit's own energy excludes the session-break drain appended below,
	// matching the per-visit engine's drain-exclusive observation.
	shard.AwareVisitJ.Observe(e, 1)
	if brk {
		e += pc.advance(fr.drain, tp)
	}
	shard.AwareJ += e
	if pc.stage == cursorReleasing {
		return 0, pc.rem, nil
	}
	return pc.stage, 0, nil
}

// flush settles every touched cell into the shard accumulator, in template
// first-use order, cells in layout order: energy, prediction and switch
// counts, and one bulk sketch observation per template. The prediction
// energy joins AwareJ at the end, as the per-visit engine adds it per user.
func (fs *foldState) flush(rt *fleetRuntime, shard *FleetShardResult) {
	for ai := range fs.aggs {
		agg := &fs.aggs[ai]
		t := agg.t
		var visits int64
		var energy float64
		for ci := range agg.n {
			n := agg.n[ci]
			if n == 0 {
				continue
			}
			c := &t.fold.cells[ci]
			visits += n
			energy += float64(n)*c.constJ + c.slopeW*agg.sumR[ci]
			if c.pred {
				shard.Predictions += n
				shard.PredJ += float64(n) * rt.predVisitJ
			}
			if c.swc {
				shard.Switches += n
			}
		}
		if visits == 0 {
			continue
		}
		if t.fold.aware {
			shard.AwareJ += energy
			shard.AwareTrans.Observe(t.transS, visits)
		} else {
			shard.OrigJ += energy
			shard.OrigTrans.Observe(t.transS, visits)
		}
	}
	shard.AwareJ += sumFoldPredJ(fs, rt)
}

// sumFoldPredJ recomputes the shard's folded prediction energy so it can be
// added into AwareJ exactly once (the exceptional path already added its own
// share to PredJ and AwareJ separately).
func sumFoldPredJ(fs *foldState, rt *fleetRuntime) float64 {
	var n int64
	for ai := range fs.aggs {
		agg := &fs.aggs[ai]
		for ci := range agg.n {
			if agg.n[ci] > 0 && agg.t.fold.cells[ci].pred {
				n += agg.n[ci]
			}
		}
	}
	return float64(n) * rt.predVisitJ
}

// foldPlanCheck is a build-time sanity hook used by tests to assert cell
// layout invariants on arbitrary templates.
func (p *foldPlan) check() error {
	for i := 1; i < len(p.bounds); i++ {
		if p.bounds[i] < p.bounds[i-1] {
			return fmt.Errorf("fold: boundaries out of order at %d", i)
		}
	}
	want := 2 * (len(p.bounds) + 1)
	if p.aware {
		if p.swOff >= 0 {
			want = p.swOff + 4
		} else {
			want = 2 * p.holdOff
		}
	}
	if len(p.cells) != want {
		return fmt.Errorf("fold: %d cells, want %d", len(p.cells), want)
	}
	return nil
}
