package experiments

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"eabrowse/internal/browser"
	"eabrowse/internal/faults"
	"eabrowse/internal/obs"
)

// resultSnapshot copies the value-comparable part of a load result. Events
// and Ledger are pointers into engine-owned buffers (reused under
// WithReusableResults), so identity comparisons go through this copy.
func resultSnapshot(r *browser.Result) browser.Result {
	snap := *r
	snap.Events = nil
	snap.Ledger = nil
	return snap
}

// TestPooledSessionMatchesFresh is the pooling layer's core guarantee: a
// visit on a recycled session is byte-identical to the same visit on a
// brand-new phone — pooled buffers change where the bytes live, never what
// they say.
func TestPooledSessionMatchesFresh(t *testing.T) {
	pages, err := BenchmarkPages()
	if err != nil {
		t.Fatal(err)
	}
	pages = pages[:4]
	// Visit sequence with repeats, so the plan cache and pooled buffers see
	// both cold and warm pages.
	seq := []int{0, 1, 2, 3, 1, 0, 3, 2, 0, 0}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		pool := NewSessionPool(mode, WithEngineOptions(browser.WithReusableResults()))
		for i, pi := range seq {
			fresh, err := New(mode)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.LoadToEnd(pages[pi])
			if err != nil {
				t.Fatalf("%v fresh %s: %v", mode, pages[pi].Name, err)
			}
			pooled, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			got, err := pooled.LoadToEnd(pages[pi])
			if err != nil {
				t.Fatalf("%v pooled %s: %v", mode, pages[pi].Name, err)
			}
			if !reflect.DeepEqual(resultSnapshot(got), resultSnapshot(want)) {
				t.Fatalf("%v visit %d (%s): pooled result diverged from fresh\npooled: %+v\nfresh:  %+v",
					mode, i, pages[pi].Name, resultSnapshot(got), resultSnapshot(want))
			}
			if pooled.Clock.Now() != fresh.Clock.Now() {
				t.Fatalf("%v visit %d: pooled clock %v, fresh clock %v",
					mode, i, pooled.Clock.Now(), fresh.Clock.Now())
			}
			if pooled.Radio.EnergyJ() != fresh.Radio.EnergyJ() {
				t.Fatalf("%v visit %d: pooled radio %.9f J, fresh %.9f J",
					mode, i, pooled.Radio.EnergyJ(), fresh.Radio.EnergyJ())
			}
			pool.Put(pooled)
		}
	}
}

// TestSessionPoolHammer drives a shared pool — and through it the shared
// read-only load-plan cache — from many goroutines at once. Run under
// -race in CI; every goroutine must still see exactly the per-page results
// the serial reference produced.
func TestSessionPoolHammer(t *testing.T) {
	pages, err := BenchmarkPages()
	if err != nil {
		t.Fatal(err)
	}
	pages = pages[:4]
	mode := browser.ModeEnergyAware
	want := make([]browser.Result, len(pages))
	for i, page := range pages {
		s, err := New(mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.LoadToEnd(page)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultSnapshot(res)
	}

	pool := NewSessionPool(mode, WithEngineOptions(browser.WithReusableResults()))
	const goroutines = 8
	const visitsEach = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := 0; v < visitsEach; v++ {
				pi := (g + v) % len(pages)
				s, err := pool.Get()
				if err != nil {
					t.Errorf("goroutine %d: Get: %v", g, err)
					return
				}
				res, err := s.LoadToEnd(pages[pi])
				if err != nil {
					t.Errorf("goroutine %d: load %s: %v", g, pages[pi].Name, err)
					return
				}
				if got := resultSnapshot(res); !reflect.DeepEqual(got, want[pi]) {
					t.Errorf("goroutine %d visit %d (%s): result diverged under concurrency",
						g, v, pages[pi].Name)
					return
				}
				pool.Put(s)
			}
		}(g)
	}
	wg.Wait()
}

// TestResetAfterFaultyVisit checks that nothing from a visit full of
// injected failures — link retries, RIL timeouts, failed dormancy — leaks
// through Reset: a reset session must replay the next visit byte-identically
// to a fresh session built with the same fault profile (Reset reseeds the
// injector, so both phones face the very same impairments).
func TestResetAfterFaultyVisit(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.Config{
		Seed:           9,
		LossRate:       0.2,
		FailRate:       0.3,
		StallRate:      0.2,
		RILTimeoutRate: 0.6,
		RILErrorRate:   0.3,
	}
	dirty, err := NewFaultySession(browser.ModeEnergyAware, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirtyRes, err := dirty.LoadToEnd(page)
	if err == nil {
		// A failed load is fine too; what matters is that faults actually hit.
		if dirtyRes.LinkRetries == 0 && !dirtyRes.DormancyFailed && dirty.Link.FailedTransfers() == 0 {
			t.Fatal("fault injection produced a perfectly clean visit; raise the rates")
		}
	}
	dirty.Reset()

	fresh, err := NewFaultySession(browser.ModeEnergyAware, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, gotErr := dirty.LoadToEnd(page)
	wantRes, wantErr := fresh.LoadToEnd(page)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("reset session err %v, fresh session err %v", gotErr, wantErr)
	}
	if gotErr == nil {
		if !reflect.DeepEqual(resultSnapshot(gotRes), resultSnapshot(wantRes)) {
			t.Fatalf("visit after Reset diverged from fresh session\nreset: %+v\nfresh: %+v",
				resultSnapshot(gotRes), resultSnapshot(wantRes))
		}
	}
	if dirty.Clock.Now() != fresh.Clock.Now() {
		t.Errorf("clock after reset visit %v, fresh %v", dirty.Clock.Now(), fresh.Clock.Now())
	}
	if dirty.Radio.EnergyJ() != fresh.Radio.EnergyJ() {
		t.Errorf("radio energy after reset visit %.9f J, fresh %.9f J",
			dirty.Radio.EnergyJ(), fresh.Radio.EnergyJ())
	}
	if dirty.Link.Retries() != fresh.Link.Retries() {
		t.Errorf("link retries after reset visit %d, fresh %d",
			dirty.Link.Retries(), fresh.Link.Retries())
	}
}

// TestFleetConfigBounds checks that out-of-range fleet parameters are
// rejected with errors that state the accepted range, and that the extremes
// of the range validate.
func TestFleetConfigBounds(t *testing.T) {
	bad := []struct {
		cfg  FleetConfig
		want string
	}{
		{FleetConfig{Users: 0, HoursPerUser: 1}, "[1, 2000000]"},
		{FleetConfig{Users: -5, HoursPerUser: 1}, "[1, 2000000]"},
		{FleetConfig{Users: 2000001, HoursPerUser: 1}, "[1, 2000000]"},
		{FleetConfig{Users: 10, HoursPerUser: 0}, "(0, 24]"},
		{FleetConfig{Users: 10, HoursPerUser: -1}, "(0, 24]"},
		{FleetConfig{Users: 10, HoursPerUser: 25}, "(0, 24]"},
		{FleetConfig{Users: 10, HoursPerUser: math.NaN()}, "(0, 24]"},
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("Validate accepted %+v", tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error for %+v does not state the bounds %q: %v", tc.cfg, tc.want, err)
		}
	}
	for _, cfg := range []FleetConfig{
		{Users: 1, HoursPerUser: 0.01, Seed: 1},
		{Users: 2000000, HoursPerUser: 24, Seed: 1},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected in-range %+v: %v", cfg, err)
		}
	}
}

// TestFleetTracedMatchesTemplated cross-checks the fleet's two replay
// engines on the same small fleet: the template/cursor engine (untraced
// runs) against full per-phone simulation (tracing runs). Counts must match
// exactly; energies and transmission times only to floating-point tolerance,
// because the two accumulate the same physical quantities in different
// association orders.
func TestFleetTracedMatchesTemplated(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replay is slow")
	}
	cfg := FleetConfig{Users: 8, HoursPerUser: 0.05, Seed: 11}
	analytic, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("templated Fleet: %v", err)
	}
	obs.Enable()
	defer obs.Disable()
	traced, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("traced Fleet: %v", err)
	}

	if analytic.Visits != traced.Visits {
		t.Errorf("visits: templated %d, traced %d", analytic.Visits, traced.Visits)
	}
	if analytic.Aware.Predictions != traced.Aware.Predictions {
		t.Errorf("predictions: templated %d, traced %d",
			analytic.Aware.Predictions, traced.Aware.Predictions)
	}
	if analytic.Aware.Switches != traced.Aware.Switches {
		t.Errorf("switches: templated %d, traced %d",
			analytic.Aware.Switches, traced.Aware.Switches)
	}
	relClose := func(name string, a, b, tol float64) {
		t.Helper()
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			return
		}
		if math.Abs(a-b)/scale > tol {
			t.Errorf("%s: templated %.9f, traced %.9f (rel err %.2e)",
				name, a, b, math.Abs(a-b)/scale)
		}
	}
	relClose("original energy", analytic.Original.EnergyJ, traced.Original.EnergyJ, 1e-6)
	relClose("aware energy", analytic.Aware.EnergyJ, traced.Aware.EnergyJ, 1e-6)
	relClose("original mean trans", analytic.Original.MeanTransmissionS, traced.Original.MeanTransmissionS, 1e-6)
	relClose("aware mean trans", analytic.Aware.MeanTransmissionS, traced.Aware.MeanTransmissionS, 1e-6)
	relClose("prediction energy", analytic.Aware.PredictionEnergyJ, traced.Aware.PredictionEnergyJ, 1e-9)
}
