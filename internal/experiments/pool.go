package experiments

import (
	"sync"

	"eabrowse/internal/browser"
)

// Reset rewinds the session to a just-built state so it can be reused for
// another independent simulation: virtual time returns to zero and every
// pending callback is dropped, then the radio, link, engine, RIL endpoint
// and fault injector are rewound deterministically. A reset session behaves
// bit-identically to a fresh one built with the same options — the only
// difference is that queues, free lists and result buffers keep their
// capacity, which is what makes pooled visits allocation-free.
//
// The clock must be reset before the substrates: their pending timers and
// in-flight messages live in the clock's heap, so dropping it first leaves
// nothing to fire against half-reset state.
func (s *Session) Reset() {
	s.Clock.Reset()
	s.Radio.Reset()
	s.Link.Reset()
	s.Engine.Reset()
	s.RIL.Reset()
	s.Faults.Reset()
}

// SessionPool recycles phones for repeated independent simulations. Get
// returns a ready session (fresh or reset); Put rewinds it and shelves it
// for the next Get. Sessions built with an observer key cannot be pooled —
// obs keys must be unique per logical session — so use the pool only for
// untraced workloads (replay loops, benchmarks). The pool itself is safe
// for concurrent use; each session must still be driven by one goroutine
// at a time.
type SessionPool struct {
	mode browser.Mode
	opts []SessionOption
	pool sync.Pool
}

// NewSessionPool builds a pool whose sessions are created by
// New(mode, opts...). Pass browser.WithReusableResults through
// WithEngineOptions to also flatten per-visit Result allocations.
func NewSessionPool(mode browser.Mode, opts ...SessionOption) *SessionPool {
	return &SessionPool{mode: mode, opts: opts}
}

// Get returns a ready session: a reset pooled one when available, otherwise
// a freshly built one.
func (p *SessionPool) Get() (*Session, error) {
	if s, ok := p.pool.Get().(*Session); ok && s != nil {
		return s, nil
	}
	return New(p.mode, p.opts...)
}

// Put rewinds the session and shelves it. The caller must be done with every
// object the session handed out (results, ledgers, transfer records): they
// are rewound or overwritten by the next user.
func (p *SessionPool) Put(s *Session) {
	if s == nil {
		return
	}
	s.Reset()
	p.pool.Put(s)
}
