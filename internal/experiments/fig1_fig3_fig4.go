package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/energy"
	"eabrowse/internal/netsim"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// Fig1Result is the sampled power trace of the radio walking through its
// states (Fig. 1: IDLE → DCH → FACH → IDLE).
type Fig1Result struct {
	Samples []energy.Sample
	// Landmarks for the plot annotations.
	MeanPowerW float64
}

// Fig1 reproduces Fig. 1: the radio promotes from IDLE, transmits on DCH for
// a few seconds, then decays through T1 (DCH), T2 (FACH) back to IDLE, with
// power sampled every 0.25 s like the Agilent rig.
func Fig1() (*Fig1Result, error) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	meter, err := energy.NewMeter(clock, energy.DefaultInterval, radio.RadioPower)
	if err != nil {
		return nil, err
	}
	meter.Start()
	// Idle lead-in, then a 5-second transfer, then the timer decay.
	clock.RunUntil(3 * time.Second)
	radio.RequestDCH(func() {
		if err := radio.BeginTransfer(); err != nil {
			return
		}
		clock.After(5*time.Second, func() {
			_ = radio.EndTransfer()
		})
	})
	clock.RunUntil(40 * time.Second)
	meter.Stop()
	return &Fig1Result{Samples: meter.Samples(), MeanPowerW: meter.MeanPower()}, nil
}

// Fig3Point is one x-position of Fig. 3.
type Fig3Point struct {
	IntervalS  float64
	OriginalJ  float64
	IntuitiveJ float64
	SavingJ    float64
}

// Fig3Result is the Fig. 3 sweep plus the measured crossover.
type Fig3Result struct {
	Points []Fig3Point
	// CrossoverS is the smallest interval at which the intuitive approach
	// (drop to IDLE after every transfer) starts saving energy.
	CrossoverS float64
}

// Fig3 reproduces Fig. 3 (Section 3.1): send 1 KB, wait the interval, send
// 1 KB again — once following the timers, once forcing IDLE after each
// transfer — and compare per-cycle energy. The paper measured the crossover
// at 9 seconds.
func Fig3() (*Fig3Result, error) {
	intervals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 16, 18, 20, 22, 24}
	res := &Fig3Result{}
	for _, iv := range intervals {
		orig, err := fig3Cycle(iv, false)
		if err != nil {
			return nil, err
		}
		intuitive, err := fig3Cycle(iv, true)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig3Point{
			IntervalS:  iv,
			OriginalJ:  orig,
			IntuitiveJ: intuitive,
			SavingJ:    orig - intuitive,
		})
	}
	for _, p := range res.Points {
		// Break-even counts: the paper's "only when the interval is larger
		// than 9 s" places the crossover exactly at 9.
		if p.SavingJ >= -1e-9 {
			res.CrossoverS = p.IntervalS
			break
		}
	}
	return res, nil
}

// fig3Cycle measures the energy of one transfer-wait-transfer cycle: from
// the end of the first 1 KB transfer, through the interval, to the end of
// the second transfer's promotion+transfer. Forcing idle adds the release
// cost now and the IDLE→DCH re-promotion later.
func fig3Cycle(intervalS float64, forceIdle bool) (float64, error) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		return 0, err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return 0, err
	}
	// The paper's experiment *sends* 1 KB from the phone to a server.
	transfer := func(done func()) {
		if err := link.Send("1kb", 1024, done); err != nil {
			panic(err)
		}
	}

	var startJ, endJ float64
	finished := false
	transfer(func() {
		startJ = radio.EnergyJ()
		if forceIdle {
			// The intuitive approach of Section 3.1.
			clock.After(0, func() { _ = radio.ForceIdle() })
		}
		clock.After(time.Duration(intervalS*float64(time.Second)), func() {
			transfer(func() {
				endJ = radio.EnergyJ()
				finished = true
			})
		})
	})
	for !finished {
		if !clock.Step() {
			return 0, fmt.Errorf("fig3: cycle stalled at interval %v", intervalS)
		}
	}
	return endJ - startJ, nil
}

// Fig4Bin is one 0.5-second traffic bucket of Fig. 4.
type Fig4Bin struct {
	StartS    float64
	TrafficKB float64
}

// Fig4Result compares the browser's spread-out transfers with a raw socket
// download of the same bytes.
type Fig4Result struct {
	BrowserBins   []Fig4Bin
	BulkBins      []Fig4Bin
	BrowserTotalS float64
	BulkTotalS    float64
	TotalKB       int
}

// Fig4 reproduces Fig. 4: the original browser opening the espn-like page
// spreads its transfers across the whole load, while a single socket
// download of the same bytes finishes in ≈8 s.
func Fig4() (*Fig4Result, error) {
	page, err := ESPNPage()
	if err != nil {
		return nil, err
	}

	// Browser load, original pipeline.
	s, err := New(browser.ModeOriginal)
	if err != nil {
		return nil, err
	}
	if _, err := s.LoadToEnd(page); err != nil {
		return nil, err
	}
	browserRecords := s.Link.Records()

	// Raw socket download of the same total bytes.
	bulk, err := New(browser.ModeOriginal)
	if err != nil {
		return nil, err
	}
	total := page.TotalBytes()
	bulkDone := false
	if err := bulk.Link.Fetch("bulk", total, func() { bulkDone = true }); err != nil {
		return nil, err
	}
	for !bulkDone {
		if !bulk.Clock.Step() {
			return nil, fmt.Errorf("fig4: bulk download stalled")
		}
	}
	bulkRecords := bulk.Link.Records()

	res := &Fig4Result{TotalKB: total / 1024}
	res.BrowserBins, res.BrowserTotalS = binTraffic(browserRecords)
	res.BulkBins, res.BulkTotalS = binTraffic(bulkRecords)
	return res, nil
}

// binTraffic buckets transfer bytes into 0.5 s bins (bytes are spread
// uniformly over each transfer's duration).
func binTraffic(records []netsim.Record) ([]Fig4Bin, float64) {
	if len(records) == 0 {
		return nil, 0
	}
	end := 0.0
	for _, r := range records {
		if e := r.End.Seconds(); e > end {
			end = e
		}
	}
	const binW = 0.5
	nBins := int(end/binW) + 1
	bins := make([]Fig4Bin, nBins)
	for i := range bins {
		bins[i].StartS = float64(i) * binW
	}
	for _, r := range records {
		s := r.Start.Seconds()
		e := r.End.Seconds()
		dur := e - s
		if dur <= 0 {
			continue
		}
		kbPerSec := float64(r.Bytes) / 1024 / dur
		for b := int(s / binW); b < nBins; b++ {
			lo := max64(s, float64(b)*binW)
			hi := min64(e, float64(b+1)*binW)
			if hi <= lo {
				if float64(b)*binW > e {
					break
				}
				continue
			}
			bins[b].TrafficKB += kbPerSec * (hi - lo)
		}
	}
	return bins, end
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
