package experiments

import (
	"fmt"

	"eabrowse/internal/browser"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
)

// ReorderProfiles is the fixed backend order of the cross-RAN comparison:
// the paper's UMTS radio first, then the newer generations.
var ReorderProfiles = []string{"umts", "lte", "nr"}

// ReorderRow is one radio backend's original-vs-energy-aware comparison for
// a page load followed by Fig. 10's 20 s reading window.
type ReorderRow struct {
	Profile string
	// OriginalJ and AwareJ are load + reading energy per pipeline.
	OriginalJ float64
	AwareJ    float64
	// SavingPct is the energy saving of the reordered pipeline.
	SavingPct float64
	// OrigLoadS and AwareLoadS are the final-display times.
	OrigLoadS  float64
	AwareLoadS float64
	// AwareDormant reports whether the energy-aware pipeline reached the
	// terminal idle state before the reading window ended.
	AwareDormant bool
}

// ReorderResult compares the pipelines across radio generations.
type ReorderResult struct {
	Page string
	Rows []ReorderRow
}

// Reorder replays the paper's tentpole intervention — reorder computation
// before communication, then force the radio dormant — on every radio
// backend: the same m.cnn.com load plus a 20 s reading window on UMTS, LTE
// DRX and 5G NR radios. The absolute energies differ (each generation has
// its own powers and tail), but the reordering wins on all of them; the
// saving shrinks as the native tails get shorter.
func Reorder() (*ReorderResult, error) {
	page, err := MCNNPage()
	if err != nil {
		return nil, err
	}
	rows, err := runner.Collect(len(ReorderProfiles), func(i int) (ReorderRow, error) {
		name := ReorderProfiles[i]
		spec, err := rrc.ProfileSpec(name)
		if err != nil {
			return ReorderRow{}, err
		}
		row := ReorderRow{Profile: name}
		orig, err := LoadPageSession(page, browser.ModeOriginal, Fig10ReadingTime, nil,
			WithRadioModel(spec),
			WithObsKey(fmt.Sprintf("reorder/%s/original", name)))
		if err != nil {
			return ReorderRow{}, fmt.Errorf("reorder %s original: %w", name, err)
		}
		row.OriginalJ = orig.TotalWithReadingJ
		row.OrigLoadS = orig.Result.FinalDisplayAt.Seconds()
		aware, err := LoadPageSession(page, browser.ModeEnergyAware, Fig10ReadingTime,
			func(s *Session) {
				row.AwareDormant = s.Radio.State() == rrc.StateIdle
			},
			WithRadioModel(spec),
			WithObsKey(fmt.Sprintf("reorder/%s/energy-aware", name)))
		if err != nil {
			return ReorderRow{}, fmt.Errorf("reorder %s energy-aware: %w", name, err)
		}
		row.AwareJ = aware.TotalWithReadingJ
		row.AwareLoadS = aware.Result.FinalDisplayAt.Seconds()
		row.SavingPct = savingPct(row.OriginalJ, row.AwareJ)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &ReorderResult{Page: page.Name, Rows: rows}, nil
}
