package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/capacity"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/policy"
	"eabrowse/internal/predictor"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
	"eabrowse/internal/webpage"
)

// Fig11Curve is one pipeline's dropping-probability curve.
type Fig11Curve struct {
	Mode    browser.Mode
	Users   []int
	DropPct []float64
	// SupportedAt2Pct is the largest population kept under 2% dropping.
	SupportedAt2Pct int
}

// Fig11Bench is one benchmark's capacity comparison.
type Fig11Bench struct {
	Label           string
	Original        Fig11Curve
	Aware           Fig11Curve
	CapacityGainPct float64
}

// Fig11Result holds both benchmarks (Fig. 11 a and b).
type Fig11Result struct {
	Mobile *Fig11Bench
	Full   *Fig11Bench
}

// Fig11 reproduces Fig. 11: the M/G/200 Erlang-loss simulation fed with the
// measured per-page data-transmission times of each pipeline. The paper
// reports 14.3% more users on the mobile benchmark and 19.6% on the full
// benchmark at equal dropping probability.
func Fig11() (*Fig11Result, error) {
	mobile, err := MobilePages()
	if err != nil {
		return nil, err
	}
	full, err := FullPages()
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	if res.Mobile, err = fig11Bench("mobile benchmark", mobile,
		[]int{300, 350, 400, 450, 500, 550, 600, 650, 700}); err != nil {
		return nil, err
	}
	if res.Full, err = fig11Bench("full benchmark", full,
		[]int{200, 220, 240, 260, 280, 300, 320, 340, 360}); err != nil {
		return nil, err
	}
	return res, nil
}

func fig11Bench(label string, pages []*webpage.Page, sweep []int) (*Fig11Bench, error) {
	bench := &Fig11Bench{Label: label}
	cfg := capacity.DefaultConfig()
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		service, err := transmissionTimes(pages, mode)
		if err != nil {
			return nil, err
		}
		curve := Fig11Curve{Mode: mode, Users: sweep}
		results, err := capacity.Sweep(sweep, service, cfg)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			curve.DropPct = append(curve.DropPct, r.DropPercent)
		}
		supported, err := capacity.SupportedUsers(service, 2, cfg)
		if err != nil {
			return nil, err
		}
		curve.SupportedAt2Pct = supported
		if mode == browser.ModeOriginal {
			bench.Original = curve
		} else {
			bench.Aware = curve
		}
	}
	if bench.Original.SupportedAt2Pct > 0 {
		bench.CapacityGainPct = float64(bench.Aware.SupportedAt2Pct-bench.Original.SupportedAt2Pct) /
			float64(bench.Original.SupportedAt2Pct) * 100
	}
	return bench, nil
}

// transmissionTimes loads every page once under mode (in parallel, collected
// in page order) and returns the per-page data-transmission times in seconds
// — the channel-hold times of the capacity model.
func transmissionTimes(pages []*webpage.Page, mode browser.Mode) ([]float64, error) {
	return runner.Collect(len(pages), func(i int) (float64, error) {
		res, err := LoadPage(pages[i], mode, 0)
		if err != nil {
			return 0, err
		}
		return res.Result.TransmissionTime.Seconds(), nil
	})
}

// Fig15Result is the prediction-accuracy comparison of Fig. 15.
type Fig15Result struct {
	WithoutTp float64
	WithoutTd float64
	WithTp    float64
	WithTd    float64
	// Gains are the with-minus-without improvements (paper: ≥ 10 points).
	GainTp     float64
	GainTd     float64
	TestVisits int
}

// Fig15 reproduces Fig. 15: GBRT accuracy at Tp = 9 s and Td = 20 s, trained
// and evaluated with and without the interest threshold. The trace, split
// and both trained models come from the shared artifact cache, and the two
// variants evaluate concurrently.
func Fig15() (*Fig15Result, error) {
	_, test, err := DefaultSplit()
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{TestVisits: len(test)}
	type accPair struct{ a9, a20 float64 }
	variants := []bool{false, true}
	accs, err := runner.Collect(len(variants), func(i int) (accPair, error) {
		withInterest := variants[i]
		p, err := TrainedPredictor(withInterest)
		if err != nil {
			return accPair{}, err
		}
		a9, err := p.Evaluate(test, 9, withInterest)
		if err != nil {
			return accPair{}, err
		}
		a20, err := p.Evaluate(test, 20, withInterest)
		if err != nil {
			return accPair{}, err
		}
		return accPair{a9: a9.Pct(), a20: a20.Pct()}, nil
	})
	if err != nil {
		return nil, err
	}
	res.WithoutTp, res.WithoutTd = accs[0].a9, accs[0].a20
	res.WithTp, res.WithTd = accs[1].a9, accs[1].a20
	res.GainTp = res.WithTp - res.WithoutTp
	res.GainTd = res.WithTd - res.WithoutTd
	return res, nil
}

// Fig15From runs the Fig. 15 evaluation on an existing dataset (bypassing
// the artifact cache).
func Fig15From(ds *trace.Dataset) (*Fig15Result, error) {
	train, test, err := predictor.Split(ds.Visits, 0.3, 7)
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{TestVisits: len(test)}
	for _, withInterest := range []bool{false, true} {
		cfg := predictor.DefaultConfig()
		cfg.UseInterestThreshold = withInterest
		p, err := predictor.Train(train, cfg)
		if err != nil {
			return nil, err
		}
		a9, err := p.Evaluate(test, 9, withInterest)
		if err != nil {
			return nil, err
		}
		a20, err := p.Evaluate(test, 20, withInterest)
		if err != nil {
			return nil, err
		}
		if withInterest {
			res.WithTp = a9.Pct()
			res.WithTd = a20.Pct()
		} else {
			res.WithoutTp = a9.Pct()
			res.WithoutTd = a20.Pct()
		}
	}
	res.GainTp = res.WithTp - res.WithoutTp
	res.GainTd = res.WithTd - res.WithoutTd
	return res, nil
}

// Fig16Result is the six-case comparison of Fig. 16.
type Fig16Result struct {
	Cases []policy.CaseResult
}

// Fig16 reproduces Fig. 16: the six Table 6 strategies replayed over the
// synthesized trace, reporting power and delay savings against the original
// browser with stock timers. The trace and the trained predictor come from
// the shared artifact cache.
func Fig16() (*Fig16Result, error) {
	ds, err := DefaultTrace()
	if err != nil {
		return nil, err
	}
	pred, err := TrainedPredictor(true)
	if err != nil {
		return nil, err
	}
	ev, err := policy.NewEvaluator(ds, pred, policy.DefaultParams())
	if err != nil {
		return nil, err
	}
	cases, err := ev.EvaluateAll()
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Cases: cases}, nil
}

// Fig16From runs Fig. 16 on an existing dataset (bypassing the artifact
// cache).
func Fig16From(ds *trace.Dataset) (*Fig16Result, error) {
	train, _, err := predictor.Split(ds.Visits, 0.3, 7)
	if err != nil {
		return nil, err
	}
	pred, err := predictor.Train(train, predictor.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ev, err := policy.NewEvaluator(ds, pred, policy.DefaultParams())
	if err != nil {
		return nil, err
	}
	cases, err := ev.EvaluateAll()
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Cases: cases}, nil
}

// Table7Row is one prediction-cost entry.
type Table7Row struct {
	Trees       int
	EnergyJ     float64
	TimeSeconds float64
	// GoWallTime is how long the Go implementation actually takes for the
	// same forest size (informational; the paper's numbers are the phone's).
	GoWallTime time.Duration
}

// Table7 reproduces Table 7: simulated on-phone prediction cost for
// 1,000/10,000/20,000 eight-node trees, alongside the Go implementation's
// real wall time for the same workload.
func Table7() ([]Table7Row, error) {
	device := gbrt.DefaultDeviceCost()
	// A real forest to time: train on a small synthetic problem and re-walk
	// its trees the requested number of times.
	xs := [][]float64{{1, 2}, {2, 1}, {3, 4}, {4, 3}, {5, 6}, {6, 5}, {7, 8}, {8, 7}}
	ys := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	model, err := gbrt.Train(xs, ys, gbrt.Config{Trees: 50, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 1})
	if err != nil {
		return nil, err
	}
	if model.NumTrees() == 0 {
		return nil, fmt.Errorf("table7: empty model")
	}
	probe := []float64{2.5, 3.5}
	rows := make([]Table7Row, 0, 3)
	for _, trees := range []int{1000, 10000, 20000} {
		evals := trees / model.NumTrees()
		start := time.Now()
		for i := 0; i < evals; i++ {
			if _, err := model.Predict(probe); err != nil {
				return nil, err
			}
		}
		rows = append(rows, Table7Row{
			Trees:       trees,
			EnergyJ:     device.PredictionEnergyJ(trees),
			TimeSeconds: device.PredictionTime(trees).Seconds(),
			GoWallTime:  time.Since(start),
		})
	}
	return rows, nil
}
