package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os/exec"
	"sort"
	"sync"

	"eabrowse/internal/stats"
)

// Multi-process fleet protocol. A coordinator splits the shard range across
// N workers (re-execs of the same binary); each worker replays its shards
// and streams the accumulators back over stdout in one length-prefixed
// binary message. Everything is little-endian and bit-exact — float fields
// travel as their IEEE-754 bits — so a merged multi-process run is
// byte-identical to the single-process run.
//
//	header:     "EAFL"  u16 version  u32 shard count
//	per shard:  u32 frame length, then within the frame:
//	            u32 shard  i64 visits  i64 switches  i64 predictions
//	            f64 origJ  f64 awareJ  f64 predJ
//	            sketch origTrans  sketch awareTrans     (stats codec)
//	            sketch origVisitJ  sketch awareVisitJ   (v2)
//
// Version 2 appended the two per-visit energy sketches. Workers are re-execs
// of the coordinator binary, so the version check is strict — there is no
// cross-version negotiation to support.

const (
	fleetWireMagic   = "EAFL"
	fleetWireVersion = 2
	// fleetWireMaxFrame bounds one shard frame so a corrupt length field
	// cannot drive an unbounded allocation: four max-size sketches plus the
	// fixed fields fit comfortably.
	fleetWireMaxFrame = 1 << 28
)

// WriteFleetShards encodes a shard result set onto w.
func WriteFleetShards(w io.Writer, outs []FleetShardResult) error {
	head := make([]byte, 0, 16)
	head = append(head, fleetWireMagic...)
	head = binary.LittleEndian.AppendUint16(head, fleetWireVersion)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(outs)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	var buf []byte
	for i := range outs {
		o := &outs[i]
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Shard))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.Visits))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.Switches))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.Predictions))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.OrigJ))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.AwareJ))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.PredJ))
		buf = o.OrigTrans.AppendBinary(buf)
		buf = o.AwareTrans.AppendBinary(buf)
		buf = o.OrigVisitJ.AppendBinary(buf)
		buf = o.AwareVisitJ.AppendBinary(buf)
		var frame [4]byte
		binary.LittleEndian.PutUint32(frame[:], uint32(len(buf)))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadFleetShards decodes a shard result set from r, validating framing and
// field structure. Shards are returned in wire order.
func ReadFleetShards(r io.Reader) ([]FleetShardResult, error) {
	var head [10]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("fleet wire: header: %w", err)
	}
	if string(head[:4]) != fleetWireMagic {
		return nil, fmt.Errorf("fleet wire: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != fleetWireVersion {
		return nil, fmt.Errorf("fleet wire: version %d, want %d", v, fleetWireVersion)
	}
	count := int(binary.LittleEndian.Uint32(head[6:]))
	if count > fleetShards {
		return nil, fmt.Errorf("fleet wire: %d shards exceeds maximum %d", count, fleetShards)
	}
	outs := make([]FleetShardResult, 0, count)
	var buf []byte
	for i := 0; i < count; i++ {
		var lenb [4]byte
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			return nil, fmt.Errorf("fleet wire: shard %d length: %w", i, err)
		}
		n := int(binary.LittleEndian.Uint32(lenb[:]))
		if n < 56 || n > fleetWireMaxFrame {
			return nil, fmt.Errorf("fleet wire: shard %d frame length %d out of range", i, n)
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("fleet wire: shard %d frame: %w", i, err)
		}
		var o FleetShardResult
		o.Shard = int(int32(binary.LittleEndian.Uint32(buf)))
		o.Visits = int64(binary.LittleEndian.Uint64(buf[4:]))
		o.Switches = int64(binary.LittleEndian.Uint64(buf[12:]))
		o.Predictions = int64(binary.LittleEndian.Uint64(buf[20:]))
		o.OrigJ = math.Float64frombits(binary.LittleEndian.Uint64(buf[28:]))
		o.AwareJ = math.Float64frombits(binary.LittleEndian.Uint64(buf[36:]))
		o.PredJ = math.Float64frombits(binary.LittleEndian.Uint64(buf[44:]))
		rest := buf[52:]
		var err error
		if o.OrigTrans, rest, err = stats.DecodeSketch(rest); err != nil {
			return nil, fmt.Errorf("fleet wire: shard %d orig sketch: %w", i, err)
		}
		if o.AwareTrans, rest, err = stats.DecodeSketch(rest); err != nil {
			return nil, fmt.Errorf("fleet wire: shard %d aware sketch: %w", i, err)
		}
		if o.OrigVisitJ, rest, err = stats.DecodeSketch(rest); err != nil {
			return nil, fmt.Errorf("fleet wire: shard %d orig visit sketch: %w", i, err)
		}
		if o.AwareVisitJ, rest, err = stats.DecodeSketch(rest); err != nil {
			return nil, fmt.Errorf("fleet wire: shard %d aware visit sketch: %w", i, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("fleet wire: shard %d frame has %d trailing bytes", i, len(rest))
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// FleetMultiProc runs the fleet across procs worker processes. spawn must
// return a ready-to-start command computing shards [lo, hi) and writing the
// wire format to its stdout (eabench wires this to a re-exec of itself with
// -fleet-worker). Worker outputs merge sorted by shard index, so the result
// is byte-identical to Fleet() at any process count.
func FleetMultiProc(cfg FleetConfig, procs int, spawn func(lo, hi int) (*exec.Cmd, error)) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("fleet: need at least one worker process, got %d", procs)
	}
	total := FleetShardCount(cfg)
	if procs > total {
		procs = total
	}

	type workerOut struct {
		outs []FleetShardResult
		err  error
	}
	results := make([]workerOut, procs)
	var wg sync.WaitGroup
	cmds := make([]*exec.Cmd, procs)
	for p := 0; p < procs; p++ {
		lo := p * total / procs
		hi := (p + 1) * total / procs
		cmd, err := spawn(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("fleet worker %d: %w", p, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("fleet worker %d: %w", p, err)
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("fleet worker %d: %w", p, err)
		}
		cmds[p] = cmd
		wg.Add(1)
		go func(p int, r io.Reader) {
			defer wg.Done()
			results[p].outs, results[p].err = ReadFleetShards(r)
		}(p, stdout)
	}
	wg.Wait()
	var firstErr error
	for p := 0; p < procs; p++ {
		if err := cmds[p].Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet worker %d: %w", p, err)
		}
		if results[p].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet worker %d: %w", p, results[p].err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	all := make([]FleetShardResult, 0, total)
	for p := range results {
		all = append(all, results[p].outs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Shard < all[j].Shard })
	return FleetFromShards(cfg, all)
}
