package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/runner"
	"eabrowse/internal/webpage"
)

// PipelineTiming summarizes one pipeline's loading behaviour averaged over a
// benchmark (Fig. 8 bars).
type PipelineTiming struct {
	Mode browser.Mode
	// TransmissionS is the mean data transmission time, seconds.
	TransmissionS float64
	// LayoutS is the mean post-transmission layout time, seconds.
	LayoutS float64
	// TotalS is the mean webpage loading time, seconds.
	TotalS float64
	// FirstDisplayS is the mean time to first (intermediate) display; zero
	// when the pipeline draws only the final display.
	FirstDisplayS float64
	// EnergyLoadJ is mean radio+CPU energy to the final display.
	EnergyLoadJ float64
	// EnergyWithReadingJ is mean energy including the reading window.
	EnergyWithReadingJ float64
	// TransmissionJ, LayoutJ and TailJ attribute EnergyWithReadingJ to the
	// ledger phases: energy while data moved, energy during deferred layout,
	// and energy after the final display (reading window, radio decay).
	TransmissionJ float64
	LayoutJ       float64
	TailJ         float64
}

// BenchComparison is an Original vs. Energy-Aware comparison over one set of
// pages (one pair of grouped bars in Fig. 8 / Fig. 10 / Fig. 14).
type BenchComparison struct {
	Label    string
	Pages    int
	Original PipelineTiming
	Aware    PipelineTiming
}

// TransmissionSavingPct is the Fig. 8 headline: how much data-transmission
// time the reordering saves.
func (b *BenchComparison) TransmissionSavingPct() float64 {
	return savingPct(b.Original.TransmissionS, b.Aware.TransmissionS)
}

// TotalSavingPct is the loading-time saving (transmission + layout).
func (b *BenchComparison) TotalSavingPct() float64 {
	return savingPct(b.Original.TotalS, b.Aware.TotalS)
}

// EnergySavingPct is the Fig. 10 headline: energy saving over load plus the
// reading window.
func (b *BenchComparison) EnergySavingPct() float64 {
	return savingPct(b.Original.EnergyWithReadingJ, b.Aware.EnergyWithReadingJ)
}

// FirstDisplaySavingPct is the Fig. 14 intermediate-display saving.
func (b *BenchComparison) FirstDisplaySavingPct() float64 {
	return savingPct(b.Original.FirstDisplayS, b.Aware.FirstDisplayS)
}

func savingPct(orig, aware float64) float64 {
	if orig == 0 {
		return 0
	}
	return (orig - aware) / orig * 100
}

// ComparePages loads every page under both pipelines on fresh phones,
// simulating reading seconds of reading time after each load, and averages.
// The per-page loads run on the shared worker pool; outcomes are averaged in
// page order, so the comparison is identical at any worker count.
func ComparePages(label string, pages []*webpage.Page, reading time.Duration) (*BenchComparison, error) {
	return ComparePagesTraced("", label, pages, reading)
}

// ComparePagesTraced is ComparePages with an observability namespace: when
// traceKey is non-empty, every session registers in the process-wide obs
// collector under "<traceKey>/<mode>/<page>" (a no-op unless tracing is
// enabled). Distinct experiments must pass distinct keys so an -exp all run
// never collides.
func ComparePagesTraced(traceKey, label string, pages []*webpage.Page, reading time.Duration) (*BenchComparison, error) {
	if len(pages) == 0 {
		return nil, fmt.Errorf("experiments: no pages for %s", label)
	}
	cmp := &BenchComparison{Label: label, Pages: len(pages)}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		mode := mode
		outcomes, err := runner.Collect(len(pages), func(i int) (*LoadOutcome, error) {
			var sopts []SessionOption
			if traceKey != "" {
				sopts = append(sopts, WithObsKey(fmt.Sprintf("%s/%s/%s", traceKey, mode, pages[i].Name)))
			}
			out, err := LoadPageSession(pages[i], mode, reading, nil, sopts...)
			if err != nil {
				return nil, fmt.Errorf("load %s (%v): %w", pages[i].Name, mode, err)
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		var agg PipelineTiming
		agg.Mode = mode
		firstDisplayed := 0
		for _, out := range outcomes {
			r := out.Result
			agg.TransmissionS += r.TransmissionTime.Seconds()
			agg.LayoutS += r.LayoutTime().Seconds()
			agg.TotalS += r.FinalDisplayAt.Seconds()
			if r.FirstDisplayAt > 0 {
				agg.FirstDisplayS += r.FirstDisplayAt.Seconds()
				firstDisplayed++
			} else {
				// Final-display-only pipelines count the final display as
				// their first (Fig. 14's mobile energy-aware bar).
				agg.FirstDisplayS += r.FinalDisplayAt.Seconds()
				firstDisplayed++
			}
			agg.EnergyLoadJ += r.TotalEnergyJ()
			agg.EnergyWithReadingJ += out.TotalWithReadingJ
			agg.TransmissionJ += r.Ledger.PhaseTotalJ("transmission")
			agg.LayoutJ += r.Ledger.PhaseTotalJ("layout")
			agg.TailJ += r.Ledger.PhaseTotalJ("tail")
		}
		n := float64(len(pages))
		agg.TransmissionS /= n
		agg.LayoutS /= n
		agg.TotalS /= n
		agg.FirstDisplayS /= float64(firstDisplayed)
		agg.EnergyLoadJ /= n
		agg.EnergyWithReadingJ /= n
		agg.TransmissionJ /= n
		agg.LayoutJ /= n
		agg.TailJ /= n
		if mode == browser.ModeOriginal {
			cmp.Original = agg
		} else {
			cmp.Aware = agg
		}
	}
	return cmp, nil
}

// Fig8Result holds the four comparisons of Fig. 8 (both benchmarks) and
// Fig. 8(b) (the two named pages).
type Fig8Result struct {
	Mobile     *BenchComparison
	Full       *BenchComparison
	MCNN       *BenchComparison
	MotorsEbay *BenchComparison
}

// Fig8 reproduces Fig. 8: data transmission time and total loading time for
// the mobile and full benchmarks, plus the two representative pages.
func Fig8() (*Fig8Result, error) {
	mobile, err := MobilePages()
	if err != nil {
		return nil, err
	}
	full, err := FullPages()
	if err != nil {
		return nil, err
	}
	cnn, err := MCNNPage()
	if err != nil {
		return nil, err
	}
	ebay, err := MotorsEbayPage()
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	if res.Mobile, err = ComparePagesTraced("fig8/mobile", "mobile benchmark", mobile, 0); err != nil {
		return nil, err
	}
	if res.Full, err = ComparePagesTraced("fig8/full", "full benchmark", full, 0); err != nil {
		return nil, err
	}
	if res.MCNN, err = ComparePagesTraced("fig8/mcnn", "m.cnn.com", []*webpage.Page{cnn}, 0); err != nil {
		return nil, err
	}
	if res.MotorsEbay, err = ComparePagesTraced("fig8/ebay", "www.motors.ebay.com", []*webpage.Page{ebay}, 0); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig10ReadingTime is the reading window assumed by Fig. 10 ("suppose the
// reading time is larger than 20 seconds").
const Fig10ReadingTime = 20 * time.Second

// Fig10Result holds the energy comparisons of Fig. 10.
type Fig10Result struct {
	Mobile *BenchComparison
	Full   *BenchComparison
	MCNN   *BenchComparison
	ESPN   *BenchComparison
}

// Fig10 reproduces Fig. 10: energy to open each page plus 20 s of reading.
func Fig10() (*Fig10Result, error) {
	mobile, err := MobilePages()
	if err != nil {
		return nil, err
	}
	full, err := FullPages()
	if err != nil {
		return nil, err
	}
	cnn, err := MCNNPage()
	if err != nil {
		return nil, err
	}
	espn, err := ESPNPage()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	if res.Mobile, err = ComparePagesTraced("fig10/mobile", "mobile benchmark", mobile, Fig10ReadingTime); err != nil {
		return nil, err
	}
	if res.Full, err = ComparePagesTraced("fig10/full", "full benchmark", full, Fig10ReadingTime); err != nil {
		return nil, err
	}
	if res.MCNN, err = ComparePagesTraced("fig10/mcnn", "m.cnn.com", []*webpage.Page{cnn}, Fig10ReadingTime); err != nil {
		return nil, err
	}
	if res.ESPN, err = ComparePagesTraced("fig10/espn", "espn.go.com/sports", []*webpage.Page{espn}, Fig10ReadingTime); err != nil {
		return nil, err
	}
	return res, nil
}
