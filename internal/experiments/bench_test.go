package experiments

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"

	"eabrowse/internal/browser"
)

// BenchmarkVisit measures the steady-state cost of one page visit on a
// pooled phone: check a session out, replay the m.cnn.com load to final
// display, check it back in. With the plan cache warm and result buffers
// reused the visit is expected to stay within single-digit allocations —
// scripts/bench.sh records the numbers in BENCH_SIM.json and CI fails on a
// >25% allocs/op regression.
func BenchmarkVisit(b *testing.B) {
	page, err := MCNNPage()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		b.Run(mode.String(), func(b *testing.B) {
			pool := NewSessionPool(mode,
				WithEngineOptions(browser.WithReusableResults()))
			// Warm the load-plan cache and the pool's buffers.
			s, err := pool.Get()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.LoadToEnd(page); err != nil {
				b.Fatal(err)
			}
			pool.Put(s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := pool.Get()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.LoadToEnd(page); err != nil {
					b.Fatal(err)
				}
				pool.Put(s)
			}
		})
	}
}

// BenchmarkFleetReplay measures the full fleet experiment end to end —
// streaming trace, template replay, capacity model — at a small population,
// with the training artifacts pre-warmed so the number tracks the replay
// engine rather than one-time GBRT training.
func BenchmarkFleetReplay(b *testing.B) {
	if _, err := TrainedPredictor(true); err != nil {
		b.Fatal(err)
	}
	cfg := FleetConfig{Users: 50, HoursPerUser: 0.1, Seed: 20130709}
	b.ReportAllocs()
	b.ResetTimer()
	var visits int
	for i := 0; i < b.N; i++ {
		res, err := Fleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		visits = res.Visits
	}
	b.ReportMetric(float64(visits), "visits")
}

// BenchmarkFleetScale measures fleet throughput at a population large enough
// for the counted-multiplicity fold to dominate (every visit after the first
// few thousand hits an existing template). scripts/bench.sh records
// users_per_sec, visits, and the process peak RSS in BENCH_FLEET.json; CI
// gates on allocs/visit.
func BenchmarkFleetScale(b *testing.B) {
	if _, err := TrainedPredictor(true); err != nil {
		b.Fatal(err)
	}
	cfg := FleetConfig{Users: 20_000, HoursPerUser: 0.25, Seed: 20130709}
	b.ReportAllocs()
	b.ResetTimer()
	var visits int
	for i := 0; i < b.N; i++ {
		res, err := Fleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		visits = res.Visits
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(cfg.Users)/sec, "users_per_sec")
	b.ReportMetric(float64(visits), "visits")
	b.ReportMetric(float64(benchVmHWM())/1024, "peak_rss_mb")
}

// benchVmHWM reads the process peak resident set (kB) from
// /proc/self/status; 0 when the file is unavailable (non-Linux).
func benchVmHWM() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "VmHWM:" {
			kb, _ := strconv.ParseInt(fields[1], 10, 64)
			return kb
		}
	}
	return 0
}

// BenchmarkVisitFresh is the unpooled baseline for BenchmarkVisit: a new
// session per visit, fresh result buffers every load. The gap between the
// two is what the pooling layer buys.
func BenchmarkVisitFresh(b *testing.B) {
	page, err := MCNNPage()
	if err != nil {
		b.Fatal(err)
	}
	mode := browser.ModeEnergyAware
	b.Run(mode.String(), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := New(mode)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.LoadToEnd(page); err != nil {
				b.Fatal(err)
			}
		}
	})
}
