package experiments

import (
	"reflect"
	"testing"

	"eabrowse/internal/browser"
	"eabrowse/internal/faults"
)

func TestChaosLossGrid(t *testing.T) {
	tests := []struct {
		maxLoss float64
		want    []float64
	}{
		{0, []float64{0}},
		{0.05, []float64{0, 0.02, 0.05}},
		{0.07, []float64{0, 0.02, 0.05, 0.07}},
		{0.30, []float64{0, 0.02, 0.05, 0.10, 0.20, 0.30}},
	}
	for _, tt := range tests {
		if got := chaosLossGrid(tt.maxLoss); !reflect.DeepEqual(got, tt.want) {
			t.Fatalf("chaosLossGrid(%v) = %v, want %v", tt.maxLoss, got, tt.want)
		}
	}
}

func TestChaosSweepRejectsBadLoss(t *testing.T) {
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := ChaosSweep(DefaultChaosProfile(), bad); err == nil {
			t.Fatalf("ChaosSweep accepted max loss %v", bad)
		}
	}
}

// TestChaosSweepDeterministicAndLive is the two central acceptance checks in
// one sweep (they share the expensive part): a fixed seed plus nonzero fault
// rates give byte-identical results across runs, and the energy-aware
// pipeline completes every page load at every loss rate up to and including
// 10% — degraded, never hung.
func TestChaosSweepDeterministicAndLive(t *testing.T) {
	profile := DefaultChaosProfile()
	a, err := ChaosSweep(profile, 0.10)
	if err != nil {
		t.Fatalf("ChaosSweep: %v", err)
	}
	b, err := ChaosSweep(profile, 0.10)
	if err != nil {
		t.Fatalf("ChaosSweep (second run): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two chaos sweeps with identical inputs diverged")
	}
	if len(a.Points) == 0 {
		t.Fatal("sweep produced no points")
	}
	sawTenPct := false
	for _, p := range a.Points {
		for _, st := range []ChaosModeStats{p.Original, p.Aware} {
			if st.Completed != a.Pages {
				t.Fatalf("loss %.0f%% (%v): %d/%d loads completed",
					p.LossPct, st.Mode, st.Completed, a.Pages)
			}
			if st.EnergyJ <= 0 || st.LoadS <= 0 {
				t.Fatalf("loss %.0f%% (%v): non-positive aggregates %+v", p.LossPct, st.Mode, st)
			}
		}
		if p.LossPct == 10 {
			sawTenPct = true
		}
	}
	if !sawTenPct {
		t.Fatal("sweep to 10% never visited the 10% point")
	}
	// The background impairment mix must leave visible traces somewhere in
	// the sweep; a silent sweep means the injector is not wired in.
	traces := 0
	for _, p := range a.Points {
		traces += p.Aware.FetchRetries + p.Aware.LinkRetries + p.Aware.FailedTransfers +
			p.Original.FetchRetries + p.Original.LinkRetries + p.Original.FailedTransfers
	}
	if traces == 0 {
		t.Fatal("no retries or failures recorded anywhere in the sweep")
	}
}

// TestChaosZeroRatesSeedIndependent: with every fault rate zero the injector
// must be inert, so the seed cannot matter and no impairment may be counted.
func TestChaosZeroRatesSeedIndependent(t *testing.T) {
	quiet := faults.Config{Seed: 123}
	a, err := ChaosSweep(quiet, 0)
	if err != nil {
		t.Fatalf("ChaosSweep: %v", err)
	}
	quiet.Seed = 456
	b, err := ChaosSweep(quiet, 0)
	if err != nil {
		t.Fatalf("ChaosSweep: %v", err)
	}
	// Seeds differ, so strip them before comparing the measurements.
	a.Seed, b.Seed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero-rate sweep depends on the seed")
	}
	p := a.Points[0]
	for _, st := range []ChaosModeStats{p.Original, p.Aware} {
		if st.Degraded != 0 || st.FetchRetries != 0 || st.LinkRetries != 0 ||
			st.FailedObjects != 0 || st.FailedTransfers != 0 || st.DormancyFailures != 0 {
			t.Fatalf("zero-rate sweep recorded impairments: %+v", st)
		}
	}
}

// TestNewFaultySessionWiring: the faulty constructor must expose the shared
// injector and the RIL endpoint so callers can inspect them.
func TestNewFaultySessionWiring(t *testing.T) {
	s, err := NewFaultySession(browser.ModeEnergyAware, faults.Config{Seed: 9, FailRate: 0.1})
	if err != nil {
		t.Fatalf("NewFaultySession: %v", err)
	}
	if s.RIL == nil || s.Faults == nil {
		t.Fatal("RIL or Faults not exposed on the session")
	}
	if !s.Faults.Enabled() {
		t.Fatal("injector with nonzero rates reports disabled")
	}
	if !s.Link.FaultsActive() {
		t.Fatal("link does not report the injector")
	}
	if _, err := NewFaultySession(browser.ModeEnergyAware, faults.Config{FailRate: -1}); err == nil {
		t.Fatal("invalid fault config accepted")
	}
}
