package experiments

import (
	"math"
	"testing"
)

// fleetWith runs Fleet with the fold toggle and sketch budget pinned for the
// duration of the call. budget 0 keeps the sketches exact, so both engines
// feed the capacity model identical distributions.
func fleetWith(t *testing.T, cfg FleetConfig, folded bool, budget int) *FleetResult {
	t.Helper()
	oldOff, oldBudget := fleetFoldOff, fleetSketchBudget
	fleetFoldOff, fleetSketchBudget = !folded, budget
	defer func() { fleetFoldOff, fleetSketchBudget = oldOff, oldBudget }()
	res, err := Fleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetFoldMatchesSequential pins the counted-multiplicity engine
// against the per-visit templated engine: counters and capacity figures must
// agree exactly (with exact sketches the two produce the same transmission
// multiset), energies to floating-point association.
func TestFleetFoldMatchesSequential(t *testing.T) {
	cases := []FleetConfig{
		{Users: 400, HoursPerUser: 0.1, Seed: 20130709},
		{Users: 200, HoursPerUser: 0.1, Seed: 7, Radio: "lte"},
		{Users: 200, HoursPerUser: 0.1, Seed: 11, RadioMix: "umts:0.5,nr:0.5"},
		{Users: 120, HoursPerUser: 0.1, Seed: 3, Channel: "fading"},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(cfg.Radio+cfg.RadioMix+cfg.Channel, func(t *testing.T) {
			folded := fleetWith(t, cfg, true, 0)
			seq := fleetWith(t, cfg, false, 0)

			if folded.Visits != seq.Visits {
				t.Fatalf("visits: folded %d, sequential %d", folded.Visits, seq.Visits)
			}
			if folded.Aware.Switches != seq.Aware.Switches {
				t.Fatalf("switches: folded %d, sequential %d", folded.Aware.Switches, seq.Aware.Switches)
			}
			if folded.Aware.Predictions != seq.Aware.Predictions {
				t.Fatalf("predictions: folded %d, sequential %d", folded.Aware.Predictions, seq.Aware.Predictions)
			}
			relClose := func(name string, a, b float64) {
				t.Helper()
				scale := math.Max(math.Abs(a), math.Abs(b))
				if scale == 0 {
					return
				}
				if math.Abs(a-b)/scale > 1e-9 {
					t.Fatalf("%s: folded %v, sequential %v (rel %.3g)", name, a, b, math.Abs(a-b)/scale)
				}
			}
			relClose("original energy", folded.Original.EnergyJ, seq.Original.EnergyJ)
			relClose("aware energy", folded.Aware.EnergyJ, seq.Aware.EnergyJ)
			relClose("prediction energy", folded.Aware.PredictionEnergyJ, seq.Aware.PredictionEnergyJ)
			relClose("orig mean trans", folded.Original.MeanTransmissionS, seq.Original.MeanTransmissionS)
			relClose("aware mean trans", folded.Aware.MeanTransmissionS, seq.Aware.MeanTransmissionS)
			// Per-visit energies agree up to association (the fold evaluates
			// constJ + slopeW·r where the cursor walks stage by stage), so a
			// quantile may land on a value differing in the last ulps; the
			// rank it lands on is the same.
			relClose("orig visit p50", folded.Original.VisitEnergyP50J, seq.Original.VisitEnergyP50J)
			relClose("orig visit p95", folded.Original.VisitEnergyP95J, seq.Original.VisitEnergyP95J)
			relClose("orig visit p99", folded.Original.VisitEnergyP99J, seq.Original.VisitEnergyP99J)
			relClose("aware visit p50", folded.Aware.VisitEnergyP50J, seq.Aware.VisitEnergyP50J)
			relClose("aware visit p95", folded.Aware.VisitEnergyP95J, seq.Aware.VisitEnergyP95J)
			relClose("aware visit p99", folded.Aware.VisitEnergyP99J, seq.Aware.VisitEnergyP99J)
			// With exact sketches the capacity inputs are identical multisets,
			// so the simulated figures must match to the bit.
			if folded.Original.SupportedAt2Pct != seq.Original.SupportedAt2Pct ||
				folded.Aware.SupportedAt2Pct != seq.Aware.SupportedAt2Pct {
				t.Fatalf("supported@2%%: folded %d/%d, sequential %d/%d",
					folded.Original.SupportedAt2Pct, folded.Aware.SupportedAt2Pct,
					seq.Original.SupportedAt2Pct, seq.Aware.SupportedAt2Pct)
			}
			if folded.Original.DropPctAtFleet != seq.Original.DropPctAtFleet ||
				folded.Aware.DropPctAtFleet != seq.Aware.DropPctAtFleet {
				t.Fatalf("drop@fleet: folded %v/%v, sequential %v/%v",
					folded.Original.DropPctAtFleet, folded.Aware.DropPctAtFleet,
					seq.Original.DropPctAtFleet, seq.Aware.DropPctAtFleet)
			}
		})
	}
}

// TestFleetSketchWithinTolerance pins the sketch tolerance contract on the
// capacity inputs: with the production budget the distributions the capacity
// model sees may be compressed, but every quantile differs from the exact
// path by at most the sketch's declared ErrorBound, and the reported mean
// transmission time is exact. Proxied through the public result: the mean
// must match the exact run to association error, and the capacity figures
// must agree between the default budget and the exact budget within the
// bisection's quantization (asserted equal here — the default fleet's
// distinct-value count stays under the budget, so no compression fires).
func TestFleetSketchWithinTolerance(t *testing.T) {
	cfg := FleetConfig{Users: 300, HoursPerUser: 0.1, Seed: 20130709}
	def := fleetWith(t, cfg, true, 512)
	exact := fleetWith(t, cfg, true, 0)
	if def.Original.SupportedAt2Pct != exact.Original.SupportedAt2Pct ||
		def.Aware.SupportedAt2Pct != exact.Aware.SupportedAt2Pct {
		t.Fatalf("capacity drifted under default budget: %d/%d vs %d/%d",
			def.Original.SupportedAt2Pct, def.Aware.SupportedAt2Pct,
			exact.Original.SupportedAt2Pct, exact.Aware.SupportedAt2Pct)
	}
	if def.Original.MeanTransmissionS != exact.Original.MeanTransmissionS {
		t.Fatalf("sketch mean not exact: %v vs %v",
			def.Original.MeanTransmissionS, exact.Original.MeanTransmissionS)
	}
}

// TestFoldPlanInvariants walks every template a mixed fleet builds and
// checks the fold-table layout invariants.
func TestFoldPlanInvariants(t *testing.T) {
	cfg := FleetConfig{Users: 60, HoursPerUser: 0.1, Seed: 5, RadioMix: "umts:0.4,lte:0.3,nr:0.3"}
	if _, err := Fleet(cfg); err != nil {
		t.Fatal(err)
	}
	rt, err := newFleetRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.runShards(cfg, 0, FleetShardCount(cfg)); err != nil {
		t.Fatal(err)
	}
	n := 0
	rt.templates.Range(func(_, v any) bool {
		n++
		if err := v.(*visitTemplate).fold.check(); err != nil {
			t.Error(err)
		}
		return true
	})
	if n == 0 {
		t.Fatal("no templates built")
	}
}

// TestFleetShardRangeValidation exercises the exported shard API's bounds.
func TestFleetShardRangeValidation(t *testing.T) {
	cfg := FleetConfig{Users: 50, HoursPerUser: 0.05, Seed: 1}
	total := FleetShardCount(cfg)
	if total != 50 {
		t.Fatalf("FleetShardCount = %d, want 50 (one per user below %d)", total, fleetShards)
	}
	if _, err := RunFleetShards(cfg, -1, 2); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := RunFleetShards(cfg, 3, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := RunFleetShards(cfg, 0, total+1); err == nil {
		t.Fatal("out-of-range hi accepted")
	}
	outs, err := RunFleetShards(cfg, 0, total)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FleetFromShards(cfg, outs[:total-1]); err == nil {
		t.Fatal("incomplete shard set accepted")
	}
	bad := append([]FleetShardResult(nil), outs...)
	bad[0], bad[1] = bad[1], bad[0]
	if _, err := FleetFromShards(cfg, bad); err == nil {
		t.Fatal("out-of-order shard set accepted")
	}
	if _, err := FleetFromShards(cfg, outs); err != nil {
		t.Fatal(err)
	}
}
