package experiments

import (
	"fmt"

	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/linreg"
	"eabrowse/internal/predictor"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
)

// PredictorAblationRow is one variant's accuracy.
type PredictorAblationRow struct {
	Name  string
	TpPct float64
	TdPct float64
}

// PredictorAblationResult sweeps the design choices behind the reading-time
// predictor (DESIGN.md §5): GBRT vs. a linear baseline, per-user vs. global
// models, forest size M, leaf budget J, and the interest threshold α, plus
// the forest's split-gain feature importance.
type PredictorAblationResult struct {
	Baselines []PredictorAblationRow
	Trees     []PredictorAblationRow
	Leaves    []PredictorAblationRow
	Alpha     []PredictorAblationRow
	// Importance is the default model's normalized split-gain share per
	// Table 1 feature.
	Importance     [features.Num]float64
	PersonalModels int
}

// PredictorAblation runs the sweep on the shared default trace.
func PredictorAblation() (*PredictorAblationResult, error) {
	ds, err := DefaultTrace()
	if err != nil {
		return nil, err
	}
	return PredictorAblationFrom(ds)
}

// PredictorAblationFrom runs the sweep on an existing dataset.
func PredictorAblationFrom(ds *trace.Dataset) (*PredictorAblationResult, error) {
	train, test, err := predictor.Split(ds.Visits, 0.3, 7)
	if err != nil {
		return nil, err
	}
	res := &PredictorAblationResult{}

	// Every variant trains an independent model on the same (read-only)
	// split, so the whole sweep is one flat job list on the worker pool.
	// Rows land by job index, keeping the output order fixed.
	type job func() (PredictorAblationRow, error)
	var jobs []job

	// GBRT vs. the linear baseline Table 4 rules out, and per-user vs.
	// global models. All trained with the interest threshold (the stronger
	// setting for each).
	var personal int
	jobs = append(jobs,
		func() (PredictorAblationRow, error) {
			row, err := gbrtAccuracy(train, test, gbrt.DefaultConfig(), 2)
			row.Name = "GBRT (default: M=400, J=8)"
			return row, err
		},
		func() (PredictorAblationRow, error) {
			return linearAccuracy(train, test, 2)
		},
		func() (PredictorAblationRow, error) {
			row, n, err := perUserAccuracy(train, test, 2)
			personal = n
			return row, err
		},
	)

	for _, m := range []int{25, 100, 400} {
		cfg := gbrt.DefaultConfig()
		cfg.Trees = m
		name := fmt.Sprintf("M = %d trees", m)
		jobs = append(jobs, func() (PredictorAblationRow, error) {
			row, err := gbrtAccuracy(train, test, cfg, 2)
			row.Name = name
			return row, err
		})
	}
	treesEnd := len(jobs)

	for _, j := range []int{2, 4, 8, 16} {
		cfg := gbrt.DefaultConfig()
		cfg.MaxLeaves = j
		cfg.Trees = 200
		name := fmt.Sprintf("J = %d leaves", j)
		jobs = append(jobs, func() (PredictorAblationRow, error) {
			row, err := gbrtAccuracy(train, test, cfg, 2)
			row.Name = name
			return row, err
		})
	}
	leavesEnd := len(jobs)

	for _, alpha := range []float64{0, 1, 2, 3, 5} {
		cfg := gbrt.DefaultConfig()
		cfg.Trees = 200
		a := alpha
		name := fmt.Sprintf("alpha = %.0f s", alpha)
		jobs = append(jobs, func() (PredictorAblationRow, error) {
			row, err := gbrtAccuracy(train, test, cfg, a)
			row.Name = name
			return row, err
		})
	}

	rows, err := runner.Collect(len(jobs), func(i int) (PredictorAblationRow, error) {
		return jobs[i]()
	})
	if err != nil {
		return nil, err
	}
	res.Baselines = rows[:3]
	res.PersonalModels = personal
	res.Trees = rows[3:treesEnd]
	res.Leaves = rows[treesEnd:leavesEnd]
	res.Alpha = rows[leavesEnd:]

	// Importance of the default global model.
	defaultModel, err := predictor.Train(train, predictor.Config{
		GBRT: gbrt.DefaultConfig(), UseInterestThreshold: true, Alpha: 2,
	})
	if err != nil {
		return nil, err
	}
	copy(res.Importance[:], defaultModel.FeatureImportance())
	return res, nil
}

func gbrtAccuracy(train, test []trace.Visit, cfg gbrt.Config, alpha float64) (PredictorAblationRow, error) {
	pcfg := predictor.Config{GBRT: cfg, UseInterestThreshold: alpha > 0, Alpha: alpha}
	p, err := predictor.Train(train, pcfg)
	if err != nil {
		return PredictorAblationRow{}, err
	}
	applyInterest := alpha > 0
	a9, err := p.Evaluate(test, 9, applyInterest)
	if err != nil {
		return PredictorAblationRow{}, err
	}
	a20, err := p.Evaluate(test, 20, applyInterest)
	if err != nil {
		return PredictorAblationRow{}, err
	}
	return PredictorAblationRow{TpPct: a9.Pct(), TdPct: a20.Pct()}, nil
}

// perUserAccuracy trains one model per user (the paper's deployment) and
// scores the routed predictions.
func perUserAccuracy(train, test []trace.Visit, alpha float64) (PredictorAblationRow, int, error) {
	cfg := predictor.Config{
		GBRT:                 gbrt.Config{Trees: 150, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5},
		UseInterestThreshold: alpha > 0,
		Alpha:                alpha,
	}
	pu, err := predictor.TrainPerUser(train, cfg)
	if err != nil {
		return PredictorAblationRow{}, 0, err
	}
	row := PredictorAblationRow{Name: "per-user GBRT models"}
	a9, err := pu.Evaluate(test, 9, alpha > 0)
	if err != nil {
		return PredictorAblationRow{}, 0, err
	}
	a20, err := pu.Evaluate(test, 20, alpha > 0)
	if err != nil {
		return PredictorAblationRow{}, 0, err
	}
	row.TpPct = a9.Pct()
	row.TdPct = a20.Pct()
	return row, pu.PersonalModels(), nil
}

// linearAccuracy fits the ordinary-least-squares baseline under the same
// interest-threshold regime and scores it identically.
func linearAccuracy(train, test []trace.Visit, alpha float64) (PredictorAblationRow, error) {
	var xs [][]float64
	var ys []float64
	for _, v := range train {
		if v.ReadingSeconds < alpha {
			continue
		}
		xs = append(xs, v.Features.Slice())
		ys = append(ys, v.ReadingSeconds)
	}
	m, err := linreg.Fit(xs, ys)
	if err != nil {
		return PredictorAblationRow{}, err
	}
	row := PredictorAblationRow{Name: "linear regression baseline"}
	for _, threshold := range []float64{9, 20} {
		correct, total := 0, 0
		for _, v := range test {
			if v.ReadingSeconds < alpha {
				continue
			}
			pred, err := m.Predict(v.Features.Slice())
			if err != nil {
				return PredictorAblationRow{}, err
			}
			if (pred > threshold) == (v.ReadingSeconds > threshold) {
				correct++
			}
			total++
		}
		pct := float64(correct) / float64(total) * 100
		if threshold == 9 {
			row.TpPct = pct
		} else {
			row.TdPct = pct
		}
	}
	return row, nil
}
