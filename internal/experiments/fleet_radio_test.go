package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestFleetRadioValidation checks the radio selection's failure modes: the
// single-profile and mix fields are mutually exclusive, and every malformed
// mix string is rejected with a pointed error.
func TestFleetRadioValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  FleetConfig
		want string
	}{
		{"unknown single profile",
			FleetConfig{Users: 2, HoursPerUser: 0.01, Radio: "wimax"},
			"unknown radio profile"},
		{"single and mix together",
			FleetConfig{Users: 2, HoursPerUser: 0.01, Radio: "umts", RadioMix: "lte:1"},
			"mutually exclusive"},
		{"mix entry without weight",
			FleetConfig{Users: 2, HoursPerUser: 0.01, RadioMix: "umts"},
			"not name:weight"},
		{"mix with unknown profile",
			FleetConfig{Users: 2, HoursPerUser: 0.01, RadioMix: "umts:0.5,zz:0.5"},
			"unknown radio profile"},
		{"mix with duplicate profile",
			FleetConfig{Users: 2, HoursPerUser: 0.01, RadioMix: "lte:0.5,lte:0.5"},
			"twice"},
		{"mix with zero weight",
			FleetConfig{Users: 2, HoursPerUser: 0.01, RadioMix: "umts:0,lte:1"},
			"positive number"},
		{"mix with negative weight",
			FleetConfig{Users: 2, HoursPerUser: 0.01, RadioMix: "umts:-1,lte:1"},
			"positive number"},
		{"mix with garbage weight",
			FleetConfig{Users: 2, HoursPerUser: 0.01, RadioMix: "umts:heavy"},
			"positive number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Fleet(tc.cfg)
			if err == nil {
				t.Fatalf("Fleet accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFleetExplicitUMTSMatchesDefault pins the refactor's no-perturbation
// contract on the fleet path: naming "umts" explicitly must reproduce the
// default fleet bit for bit (same templates, same cursor arithmetic, no
// radio-assignment draw on single-profile fleets).
func TestFleetExplicitUMTSMatchesDefault(t *testing.T) {
	cfg := FleetConfig{Users: 6, HoursPerUser: 0.02, Seed: 11}
	def, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("default Fleet: %v", err)
	}
	cfg.Radio = "umts"
	named, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("umts Fleet: %v", err)
	}
	if !reflect.DeepEqual(def, named) {
		t.Fatalf("explicit umts fleet diverged from default:\ndefault: %+v\numts:    %+v", def, named)
	}
	if def.Radio != "umts" {
		t.Errorf("Radio = %q, want umts", def.Radio)
	}
}

// TestFleetSingleRadioBackends runs a small fleet on each non-default backend
// end to end: the replay must complete, visits must flow, and the energy-aware
// pipeline must still win.
func TestFleetSingleRadioBackends(t *testing.T) {
	for _, profile := range []string{"lte", "nr"} {
		t.Run(profile, func(t *testing.T) {
			res, err := Fleet(FleetConfig{Users: 4, HoursPerUser: 0.02, Seed: 3, Radio: profile})
			if err != nil {
				t.Fatalf("Fleet(%s): %v", profile, err)
			}
			if res.Radio != profile {
				t.Errorf("Radio = %q, want %q", res.Radio, profile)
			}
			if res.Visits == 0 {
				t.Fatal("fleet replayed no visits")
			}
			if res.Aware.EnergyJ >= res.Original.EnergyJ {
				t.Errorf("energy-aware %.1f J >= original %.1f J on %s",
					res.Aware.EnergyJ, res.Original.EnergyJ, profile)
			}
		})
	}
}

// TestFleetRadioMixParallelDeterminism extends the 1-vs-N worker identity
// gate to a mixed-RAN fleet: the per-user profile draw comes from the trace
// seed, not from scheduling, so worker count must not change a single field.
func TestFleetRadioMixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replay is slow")
	}
	cfg := FleetConfig{Users: 12, HoursPerUser: 0.05, Seed: 7,
		RadioMix: "umts:0.5,lte:0.3,nr:0.2"}
	var seq, par *FleetResult
	withWorkers(t, 1, func() {
		var err error
		if seq, err = Fleet(cfg); err != nil {
			t.Fatalf("sequential Fleet: %v", err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if par, err = Fleet(cfg); err != nil {
			t.Fatalf("parallel Fleet: %v", err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("mixed-RAN fleet diverged between 1 and 8 workers:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.Visits == 0 {
		t.Fatal("fleet replayed no visits")
	}
	if want := "umts:0.50,lte:0.30,nr:0.20"; seq.Radio != want {
		t.Errorf("Radio = %q, want %q", seq.Radio, want)
	}
}

// TestFleetMixWeightsNormalize checks that mix weights are ratios, not
// probabilities: "umts:3,lte:1" and "umts:0.75,lte:0.25" assign users
// identically.
func TestFleetMixWeightsNormalize(t *testing.T) {
	cfg := FleetConfig{Users: 8, HoursPerUser: 0.02, Seed: 5}
	cfg.RadioMix = "umts:3,lte:1"
	a, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("ratio mix: %v", err)
	}
	cfg.RadioMix = "umts:0.75,lte:0.25"
	b, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("probability mix: %v", err)
	}
	// The description echoes the normalized weights, so both spell the same.
	if a.Radio != b.Radio {
		t.Fatalf("Radio descriptions differ: %q vs %q", a.Radio, b.Radio)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("normalized mixes diverged:\nratio: %+v\nprob:  %+v", a, b)
	}
}
