package experiments

import (
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/netsim"
	"eabrowse/internal/rrc"
	"eabrowse/internal/webpage"
)

// TimerSweepRow is one (T1, T2) operating point for the original browser.
type TimerSweepRow struct {
	T1 time.Duration
	T2 time.Duration
	// EnergyJ is load + 20 s reading energy on the espn-like page.
	EnergyJ float64
	// NextClickDelayS is the promotion delay a click 10 s into the reading
	// window pays under these timers (0 while DCH, the FACH promotion while
	// FACH, the full IDLE promotion after T1+T2).
	NextClickDelayS float64
}

// TimerSweepResult quantifies the introduction's argument: shrinking the
// operator timers saves some tail energy but charges every early click a
// promotion delay, and even the most aggressive setting cannot reach the
// energy-aware pipeline (which also wins the loading time itself).
type TimerSweepResult struct {
	Rows []TimerSweepRow
	// EnergyAwareJ is the reference: the energy-aware pipeline with default
	// timers on the same workload.
	EnergyAwareJ float64
}

// TimerSweep runs the grid.
func TimerSweep() (*TimerSweepResult, error) {
	page, err := webpage.ESPNSports()
	if err != nil {
		return nil, err
	}
	const reading = 20 * time.Second

	res := &TimerSweepResult{}
	for _, t1 := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		for _, t2 := range []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second} {
			cfg := rrc.DefaultConfig()
			cfg.T1 = t1
			cfg.T2 = t2
			s, err := NewSessionWithConfig(browser.ModeOriginal, cfg,
				netsim.DefaultConfig(), browser.DefaultCostModel())
			if err != nil {
				return nil, err
			}
			r, err := s.LoadToEnd(page)
			if err != nil {
				return nil, err
			}
			s.Clock.RunFor(reading)
			row := TimerSweepRow{
				T1:      t1,
				T2:      t2,
				EnergyJ: s.Radio.EnergyJ() + r.CPUEnergyJ,
			}
			// Where is the radio 10 s after the page opened?
			switch {
			case 10*time.Second < t1:
				row.NextClickDelayS = 0
			case 10*time.Second < t1+t2:
				row.NextClickDelayS = cfg.PromoFACHToDCH.Seconds()
			default:
				row.NextClickDelayS = cfg.PromoIdleToDCH.Seconds()
			}
			res.Rows = append(res.Rows, row)
		}
	}

	aware, err := LoadPage(page, browser.ModeEnergyAware, reading)
	if err != nil {
		return nil, err
	}
	res.EnergyAwareJ = aware.TotalWithReadingJ
	return res, nil
}
