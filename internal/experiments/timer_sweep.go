package experiments

import (
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
)

// TimerSweepRow is one (T1, T2) operating point for the original browser.
type TimerSweepRow struct {
	T1 time.Duration
	T2 time.Duration
	// EnergyJ is load + 20 s reading energy on the espn-like page.
	EnergyJ float64
	// NextClickDelayS is the promotion delay a click 10 s into the reading
	// window pays under these timers (0 while DCH, the FACH promotion while
	// FACH, the full IDLE promotion after T1+T2).
	NextClickDelayS float64
}

// TimerSweepResult quantifies the introduction's argument: shrinking the
// operator timers saves some tail energy but charges every early click a
// promotion delay, and even the most aggressive setting cannot reach the
// energy-aware pipeline (which also wins the loading time itself).
type TimerSweepResult struct {
	Rows []TimerSweepRow
	// EnergyAwareJ is the reference: the energy-aware pipeline with default
	// timers on the same workload.
	EnergyAwareJ float64
}

// TimerSweep runs the grid. The 4×3 (T1, T2) points are independent phones,
// so they run flattened on the worker pool; rows come back in grid order.
func TimerSweep() (*TimerSweepResult, error) {
	page, err := ESPNPage()
	if err != nil {
		return nil, err
	}
	const reading = 20 * time.Second

	type gridPoint struct{ t1, t2 time.Duration }
	var grid []gridPoint
	for _, t1 := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		for _, t2 := range []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second} {
			grid = append(grid, gridPoint{t1, t2})
		}
	}
	rows, err := runner.Collect(len(grid), func(i int) (TimerSweepRow, error) {
		t1, t2 := grid[i].t1, grid[i].t2
		cfg := rrc.DefaultConfig()
		cfg.T1 = t1
		cfg.T2 = t2
		s, err := New(browser.ModeOriginal, WithRadioConfig(cfg))
		if err != nil {
			return TimerSweepRow{}, err
		}
		r, err := s.LoadToEnd(page)
		if err != nil {
			return TimerSweepRow{}, err
		}
		s.Clock.RunFor(reading)
		row := TimerSweepRow{
			T1:      t1,
			T2:      t2,
			EnergyJ: s.Radio.EnergyJ() + r.CPUEnergyJ,
		}
		// Where is the radio 10 s after the page opened?
		switch {
		case 10*time.Second < t1:
			row.NextClickDelayS = 0
		case 10*time.Second < t1+t2:
			row.NextClickDelayS = cfg.PromoFACHToDCH.Seconds()
		default:
			row.NextClickDelayS = cfg.PromoIdleToDCH.Seconds()
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &TimerSweepResult{Rows: rows}

	aware, err := LoadPage(page, browser.ModeEnergyAware, reading)
	if err != nil {
		return nil, err
	}
	res.EnergyAwareJ = aware.TotalWithReadingJ
	return res, nil
}
