package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"eabrowse/internal/rrc"
)

const goldenScenariosPath = "testdata/golden_scenarios.tsv"

// goldenScenarioMatrix renders the full scenario×policy×radio table as TSV.
// Every number in it is simulated-time deterministic and folds in index
// order, so the bytes must be stable across runs, worker counts and
// architectures — the same contract as the golden event trace.
func goldenScenarioMatrix(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "radio\tscenario\tpolicy\tenergy_j\tdelay_s\tsaving_pct\tswitches\tpredictions")
	for _, profile := range rrc.Profiles() {
		spec, err := rrc.ProfileSpec(profile)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ScenariosWithRadio(spec)
		if err != nil {
			t.Fatalf("ScenariosWithRadio(%s): %v", profile, err)
		}
		for _, r := range m.Rows {
			fmt.Fprintf(&buf, "%s\t%s\t%s\t%.6f\t%.6f\t%.6f\t%d\t%d\n",
				m.Radio, r.Scenario, r.Policy, r.EnergyJ, r.DelayS, r.SavingPct, r.Switches, r.Predictions)
		}
	}
	return buf.Bytes()
}

// TestGoldenScenarioMatrix is the regression guard for the channel and
// adaptive-policy stack: any change to the channel scenarios, the transfer
// shaping, the closed-form replay, the adaptive estimator or the oracle
// shows up as a cell-level diff against the committed matrix. Intended
// behaviour changes update the file with -update and show the reviewer the
// exact numeric delta in the commit.
func TestGoldenScenarioMatrix(t *testing.T) {
	got := goldenScenarioMatrix(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenScenariosPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenScenariosPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenScenariosPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenScenariosPath)
	if err != nil {
		t.Fatalf("read golden file: %v\n(generate it with: go test ./internal/experiments -run TestGoldenScenarioMatrix -update)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Error(traceDiff(want, got))
}
