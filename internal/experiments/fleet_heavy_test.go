//go:build fleetheavy

package experiments

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// vmHWM reads the process peak resident set (kB) from /proc/self/status.
// The high-water mark is monotone, so the 100k measurement must be taken
// before the million-user run in the same process.
func vmHWM(t *testing.T) int64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			break
		}
		return kb
	}
	t.Fatal("VmHWM not found in /proc/self/status")
	return 0
}

// TestFleetMillionUsersBoundedMemory is the headline scaling smoke: a
// million-user fleet must complete with a peak RSS within 2x of a 100k-user
// run (the streaming shard design keeps memory independent of population)
// and under an absolute 1 GiB budget. Build with -tags fleetheavy; the run
// takes on the order of half a minute on one core.
func TestFleetMillionUsersBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy fleet smoke")
	}
	small := FleetConfig{Users: 100_000, HoursPerUser: 0.25, Seed: 20130709}
	if _, err := Fleet(small); err != nil {
		t.Fatalf("100k fleet: %v", err)
	}
	h1 := vmHWM(t)

	big := FleetConfig{Users: 1_000_000, HoursPerUser: 0.25, Seed: 20130709}
	start := time.Now()
	res, err := Fleet(big)
	if err != nil {
		t.Fatalf("1M fleet: %v", err)
	}
	elapsed := time.Since(start)
	h2 := vmHWM(t)

	t.Logf("100k peak RSS %d kB; 1M peak RSS %d kB; 1M run %.1fs (%.0f users/sec, %d visits)",
		h1, h2, elapsed.Seconds(), float64(big.Users)/elapsed.Seconds(), res.Visits)
	if h2 > 2*h1 {
		t.Errorf("1M-user peak RSS %d kB exceeds 2x the 100k-user run's %d kB", h2, h1)
	}
	if limit := int64(1 << 20); h2 > limit { // 1 GiB in kB
		t.Errorf("1M-user peak RSS %d kB exceeds the absolute budget %d kB", h2, limit)
	}
	if res.Visits == 0 || res.Aware.Predictions == 0 {
		t.Error("million-user fleet replayed no work")
	}
}
