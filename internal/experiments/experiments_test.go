package experiments

import (
	"math"
	"testing"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/rrc"
)

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(browser.Mode(0)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestPageByName(t *testing.T) {
	page, err := PageByName("m.cnn.com")
	if err != nil {
		t.Fatalf("PageByName: %v", err)
	}
	if page.Name != "m.cnn.com" {
		t.Fatalf("page = %s", page.Name)
	}
	full, err := PageByName("espn.go.com/sports")
	if err != nil {
		t.Fatalf("PageByName: %v", err)
	}
	if full.Mobile {
		t.Fatal("espn marked mobile")
	}
	if _, err := PageByName("no.such.page"); err == nil {
		t.Fatal("unknown page accepted")
	}
}

func TestLoadPageReadingEnergy(t *testing.T) {
	page, err := PageByName("m.cnn.com")
	if err != nil {
		t.Fatalf("PageByName: %v", err)
	}
	out, err := LoadPage(page, browser.ModeOriginal, 20*time.Second)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	if out.ReadingJ <= 0 {
		t.Fatalf("ReadingJ = %v", out.ReadingJ)
	}
	// Original reading window follows the timers: 4 s DCH + 15 s FACH +
	// 1 s idle ≈ 14.2 J.
	cfg := rrc.DefaultConfig()
	want := 4*cfg.PowerDCHIdle + 15*cfg.PowerFACH + 1*cfg.PowerIdle
	if math.Abs(out.ReadingJ-want) > 1.0 {
		t.Fatalf("original 20s reading = %.1f J, want ≈%.1f", out.ReadingJ, want)
	}
}

// TestFig1Shape: the power trace must visit all three plateaus in order.
func TestFig1Shape(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	cfg := rrc.DefaultConfig()
	var sawIdle, sawDCH, sawFACH, sawIdleAfter bool
	for _, s := range res.Samples {
		switch {
		case !sawIdle:
			if s.Watts == cfg.PowerIdle {
				sawIdle = true
			}
		case !sawDCH:
			if s.Watts >= cfg.PowerDCHIdle {
				sawDCH = true
			}
		case !sawFACH:
			if s.Watts == cfg.PowerFACH {
				sawFACH = true
			}
		case !sawIdleAfter:
			if s.Watts == cfg.PowerIdle {
				sawIdleAfter = true
			}
		}
	}
	if !sawIdle || !sawDCH || !sawFACH || !sawIdleAfter {
		t.Fatalf("trace misses plateaus: idle=%v dch=%v fach=%v idle2=%v",
			sawIdle, sawDCH, sawFACH, sawIdleAfter)
	}
}

// TestFig3Crossover: the intuitive approach must only win past ≈9 s
// (the paper's central motivation measurement).
func TestFig3Crossover(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if res.CrossoverS < 8 || res.CrossoverS > 10 {
		t.Fatalf("crossover = %v s, want ≈9", res.CrossoverS)
	}
	// Savings must be monotone-ish: negative early, positive late.
	for _, p := range res.Points {
		if p.IntervalS <= 4 && p.SavingJ >= 0 {
			t.Fatalf("interval %v s: intuitive already saves %v J", p.IntervalS, p.SavingJ)
		}
		if p.IntervalS >= 12 && p.SavingJ <= 0 {
			t.Fatalf("interval %v s: intuitive still loses %v J", p.IntervalS, p.SavingJ)
		}
	}
}

// TestFig4Shape: the browser must take several times longer than the raw
// socket download for the same bytes (paper: 47 s vs 8 s).
func TestFig4Shape(t *testing.T) {
	res, err := Fig4()
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if res.BulkTotalS < 7 || res.BulkTotalS > 13 {
		t.Fatalf("socket download = %.1f s, want ≈8-10 (760 KB at ≈96 KB/s + promotion)", res.BulkTotalS)
	}
	if res.BrowserTotalS < 3*res.BulkTotalS {
		t.Fatalf("browser (%.1f s) not ≥3x socket (%.1f s): transfers not spread out",
			res.BrowserTotalS, res.BulkTotalS)
	}
	// Browser traffic must be spread: no 2-second window may carry more
	// than half the page.
	half := float64(res.TotalKB) / 2
	for i := 0; i+3 < len(res.BrowserBins); i++ {
		window := res.BrowserBins[i].TrafficKB + res.BrowserBins[i+1].TrafficKB +
			res.BrowserBins[i+2].TrafficKB + res.BrowserBins[i+3].TrafficKB
		if window > half {
			t.Fatalf("browser moved %.0f KB in one 2 s window (page %d KB): not spread",
				window, res.TotalKB)
		}
	}
}

// TestFig8Bands: the headline Fig. 8 savings must land near the paper's.
func TestFig8Bands(t *testing.T) {
	res, err := Fig8()
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	check := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.1f%%, want in [%v, %v]", name, got, lo, hi)
		}
	}
	// Paper: mobile -15%, full -27% transmission; -2.5% / -17% total.
	check("mobile transmission saving", res.Mobile.TransmissionSavingPct(), 5, 25)
	check("full transmission saving", res.Full.TransmissionSavingPct(), 20, 42)
	check("full total saving", res.Full.TotalSavingPct(), 10, 28)
	if res.Mobile.TotalSavingPct() < 0 {
		t.Errorf("mobile total saving = %.1f%%, want non-negative", res.Mobile.TotalSavingPct())
	}
	// Named pages (paper: m.cnn -15%, ebay -31%).
	check("m.cnn transmission saving", res.MCNN.TransmissionSavingPct(), 5, 25)
	check("motors.ebay transmission saving", res.MotorsEbay.TransmissionSavingPct(), 20, 45)
}

// TestFig10Bands: the >30% energy-saving headline.
func TestFig10Bands(t *testing.T) {
	res, err := Fig10()
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	for name, c := range map[string]*BenchComparison{
		"mobile": res.Mobile, "full": res.Full, "m.cnn": res.MCNN, "espn": res.ESPN,
	} {
		if s := c.EnergySavingPct(); s < 25 || s > 50 {
			t.Errorf("%s energy saving = %.1f%%, want ≈30-45%%", name, s)
		}
	}
}

// TestFig9Shape: the energy-aware trace must end its transmission earlier
// and drop to idle power while the original still burns FACH power.
func TestFig9Shape(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if res.AwareTransmissionS >= res.OrigTransmissionS {
		t.Fatalf("aware transmission %.1f s not before original %.1f s",
			res.AwareTransmissionS, res.OrigTransmissionS)
	}
	if res.AwareDormantS <= res.AwareTransmissionS {
		t.Fatalf("dormancy at %.1f s not after transmission end %.1f s",
			res.AwareDormantS, res.AwareTransmissionS)
	}
	gap := res.AwareDormantS - res.AwareTransmissionS
	if gap < 2 || gap > 4 {
		t.Fatalf("dormancy gap = %.1f s, want ≈2.5 (Fig. 9)", gap)
	}
	cfg := rrc.DefaultConfig()
	// Late in the window the aware trace is at idle baseline while the
	// original is at FACH or above.
	awareLast := res.Aware[len(res.Aware)-1]
	if awareLast.Watts > cfg.PowerIdle+0.01 {
		t.Fatalf("aware trace ends at %.2f W, want idle %.2f", awareLast.Watts, cfg.PowerIdle)
	}
}

// TestFig12Bands: display-time gains on espn.
func TestFig12Bands(t *testing.T) {
	res, err := Fig12()
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if res.FirstDisplayGainS < 2 {
		t.Errorf("first display gain = %.1f s, want several seconds (paper: 10.6)", res.FirstDisplayGainS)
	}
	if res.FinalDisplayGainS < 2 {
		t.Errorf("final display gain = %.1f s, want several seconds (paper: 5.9)", res.FinalDisplayGainS)
	}
}

// TestFig14Bands: first-display saving on the full benchmark ≈45.5%.
func TestFig14Bands(t *testing.T) {
	res, err := Fig14()
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	if s := res.Full.FirstDisplaySavingPct(); s < 30 || s > 60 {
		t.Errorf("full first-display saving = %.1f%%, want ≈45.5%%", s)
	}
	if res.Full.Aware.FirstDisplayS >= res.Full.Original.FirstDisplayS {
		t.Error("energy-aware first display not earlier on full pages")
	}
}

// TestTable4Band: no notable single-feature correlation.
func TestTable4Band(t *testing.T) {
	res, err := Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if res.MaxAbs > 0.2 {
		t.Fatalf("max |r| = %.3f, want < 0.2 (paper: ≤ 0.067)", res.MaxAbs)
	}
}

// TestTable5Values: the Table 5 power levels are the paper's.
func TestTable5Values(t *testing.T) {
	rows := Table5()
	want := map[string]float64{
		"IDLE state":                     0.15,
		"FACH state":                     0.63,
		"DCH state without transmission": 1.15,
		"DCH state with transmission":    1.25,
		"Fully running CPU (IDLE state)": 0.60,
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w, ok := want[row.State]
		if !ok {
			t.Fatalf("unexpected row %q", row.State)
		}
		if math.Abs(row.PowerW-w) > 1e-9 {
			t.Fatalf("%s = %v W, want %v", row.State, row.PowerW, w)
		}
	}
}

// TestTable7Values: the device cost model reproduces the measured
// prediction costs exactly.
func TestTable7Values(t *testing.T) {
	rows, err := Table7()
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	want := []struct {
		trees int
		timeS float64
		engJ  float64
	}{
		{1000, 0.0295, 0.0177},
		{10000, 0.295, 0.177},
		{20000, 0.590, 0.354},
	}
	for i, w := range want {
		if rows[i].Trees != w.trees {
			t.Fatalf("row %d trees = %d, want %d", i, rows[i].Trees, w.trees)
		}
		if math.Abs(rows[i].TimeSeconds-w.timeS) > 1e-9 {
			t.Fatalf("row %d time = %v, want %v", i, rows[i].TimeSeconds, w.timeS)
		}
		if math.Abs(rows[i].EnergyJ-w.engJ) > 1e-9 {
			t.Fatalf("row %d energy = %v, want %v", i, rows[i].EnergyJ, w.engJ)
		}
		if rows[i].GoWallTime <= 0 {
			t.Fatalf("row %d has no Go wall time", i)
		}
	}
}

// TestAblationShape: the ablation sweep must show the expected structure.
func TestAblationShape(t *testing.T) {
	res, err := Ablations()
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	find := func(name string) AblationRow {
		t.Helper()
		for _, r := range res.Rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("ablation row %q missing", name)
		return AblationRow{}
	}
	def := find("energy-aware (default, guard 2.5s)")
	noDorm := find("reordering only (no dormancy)")
	orig := find("original (default timers)")
	halved := find("original, halved timers (T1=2s, T2=7.5s)")
	if noDorm.EnergyJ <= def.EnergyJ {
		t.Error("disabling dormancy did not cost energy")
	}
	if noDorm.EnergyJ >= orig.EnergyJ {
		t.Error("reordering alone saves nothing over the original")
	}
	if halved.EnergyJ >= orig.EnergyJ {
		t.Error("halved timers did not help the original at all")
	}
	if halved.EnergyJ <= def.EnergyJ {
		t.Error("timer tuning alone beat the full energy-aware approach — contradicts the paper's argument")
	}
}

// TestTimerSweepShape: shrinking timers helps the original but never reaches
// the energy-aware pipeline, and aggressive timers charge early clicks the
// full IDLE promotion — the introduction's argument, quantified.
func TestTimerSweepShape(t *testing.T) {
	res, err := TimerSweep()
	if err != nil {
		t.Fatalf("TimerSweep: %v", err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(res.Rows))
	}
	best := res.Rows[0].EnergyJ
	sawIdlePenalty := false
	for _, r := range res.Rows {
		if r.EnergyJ < best {
			best = r.EnergyJ
		}
		if r.NextClickDelayS > 1 {
			sawIdlePenalty = true
		}
	}
	if best <= res.EnergyAwareJ {
		t.Fatalf("a timer setting (%.1f J) beat the energy-aware pipeline (%.1f J)",
			best, res.EnergyAwareJ)
	}
	if !sawIdlePenalty {
		t.Fatal("no timer setting showed the IDLE promotion penalty")
	}
}
