package experiments

import (
	"eabrowse/internal/features"
	"eabrowse/internal/rrc"
	"eabrowse/internal/stats"
	"eabrowse/internal/trace"
)

// Fig7Result is the reading-time CDF of the synthesized trace, with the
// paper's three landmark quantiles.
type Fig7Result struct {
	Visits int
	// Under2Pct, Under9Pct, Under20Pct mirror the paper's reading of Fig. 7
	// (30%, 53% and 68% respectively).
	Under2Pct  float64
	Under9Pct  float64
	Under20Pct float64
	// CurvePoints samples the CDF at 1-second steps up to 60 s.
	CurvePoints []CDFPoint
}

// CDFPoint is one (x, P(X<=x)) pair.
type CDFPoint struct {
	Seconds float64
	CumPct  float64
}

// Fig7 computes the reading-time CDF of the shared default trace.
func Fig7() (*Fig7Result, error) {
	ds, err := DefaultTrace()
	if err != nil {
		return nil, err
	}
	return Fig7From(ds)
}

// Fig7From computes the CDF of an existing dataset.
func Fig7From(ds *trace.Dataset) (*Fig7Result, error) {
	reads := make([]float64, 0, len(ds.Visits))
	for _, v := range ds.Visits {
		reads = append(reads, v.ReadingSeconds)
	}
	cdf, err := stats.NewCDF(reads)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		Visits:     len(reads),
		Under2Pct:  cdf.At(2) * 100,
		Under9Pct:  cdf.At(9) * 100,
		Under20Pct: cdf.At(20) * 100,
	}
	for s := 0.0; s <= 60; s++ {
		res.CurvePoints = append(res.CurvePoints, CDFPoint{Seconds: s, CumPct: cdf.At(s) * 100})
	}
	return res, nil
}

// Table4Result holds the Pearson correlations between reading time and each
// Table 1 feature.
type Table4Result struct {
	Correlations [features.Num]float64
	// Spearman holds the rank correlations — robust to monotone
	// nonlinearity, so near-zero values here rule out more than the linear
	// Pearson test does.
	Spearman [features.Num]float64
	Names    [features.Num]string
	// MaxAbs is the largest Pearson magnitude — the paper's point is that
	// none is notable (all ≤ 0.067 in their data).
	MaxAbs float64
}

// Table4 computes the correlations over the shared default trace.
func Table4() (*Table4Result, error) {
	ds, err := DefaultTrace()
	if err != nil {
		return nil, err
	}
	return Table4From(ds)
}

// Table4From computes the correlations over an existing dataset.
func Table4From(ds *trace.Dataset) (*Table4Result, error) {
	reads := make([]float64, 0, len(ds.Visits))
	for _, v := range ds.Visits {
		reads = append(reads, v.ReadingSeconds)
	}
	res := &Table4Result{Names: features.Names}
	for f := 0; f < features.Num; f++ {
		xs := make([]float64, 0, len(ds.Visits))
		for _, v := range ds.Visits {
			xs = append(xs, v.Features[f])
		}
		r, err := stats.Pearson(xs, reads)
		if err != nil {
			return nil, err
		}
		res.Correlations[f] = r
		rho, err := stats.Spearman(xs, reads)
		if err != nil {
			return nil, err
		}
		res.Spearman[f] = rho
		if r < 0 {
			r = -r
		}
		if r > res.MaxAbs {
			res.MaxAbs = r
		}
	}
	return res, nil
}

// Table5Row is one state-power entry.
type Table5Row struct {
	State  string
	PowerW float64
}

// Table5 returns the per-state power levels of the radio model — these are
// the paper's measured Table 5 values, which the whole energy model is
// parameterized by.
func Table5() []Table5Row {
	cfg := rrc.DefaultConfig()
	return []Table5Row{
		{State: "IDLE state", PowerW: cfg.PowerIdle},
		{State: "FACH state", PowerW: cfg.PowerFACH},
		{State: "DCH state without transmission", PowerW: cfg.PowerDCHIdle},
		{State: "DCH state with transmission", PowerW: cfg.PowerDCHTx},
		{State: "Fully running CPU (IDLE state)", PowerW: cfg.PowerIdle + 0.45},
	}
}
