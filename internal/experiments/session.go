// Package experiments wires the substrates together and regenerates every
// table and figure of the paper's evaluation (Section 5). Each experiment is
// a plain function returning a printable result structure, shared by the
// eabench command and the repository's benchmark suite.
package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/channel"
	"eabrowse/internal/faults"
	"eabrowse/internal/netsim"
	"eabrowse/internal/obs"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// maxSimTime bounds any single page-load simulation; a load that has not
// finished by then indicates a wedged pipeline (bug), not a slow page.
const maxSimTime = 30 * time.Minute

// LoadOutcome is the result of loading one page on a fresh simulated phone.
type LoadOutcome struct {
	Result *browser.Result
	// TotalWithReadingJ is radio+CPU energy over the window from load start
	// to final display plus the requested reading time.
	TotalWithReadingJ float64
	// ReadingJ is the energy spent during the reading window alone.
	ReadingJ float64
}

// Session is one simulated phone: clock, radio, link and a browser engine.
// RIL and Faults are non-nil only when the session was built with
// WithFaultInjector.
type Session struct {
	Clock  *simtime.Clock
	Radio  rrc.RadioModel
	Link   *netsim.Link
	Engine *browser.Engine
	RIL    *ril.Interface
	Faults *faults.Injector
	// Obs is the session's event recorder; nil unless the session was built
	// with WithObsKey (and tracing is enabled) or WithObsRecorder.
	Obs *obs.Recorder

	// LoadToEnd scratch: the once-bound completion callback and the result it
	// last delivered.
	loadDone   *browser.Result
	loadDoneFn func(*browser.Result)
}

// sessionConfig is what SessionOptions configure; New starts from the
// calibrated defaults.
type sessionConfig struct {
	radio      rrc.ModelSpec
	link       netsim.Config
	cost       browser.CostModel
	faults     *faults.Config
	channel    *channel.Schedule
	engineOpts []browser.Option
	obsKey     string
	obsRec     *obs.Recorder
}

// SessionOption configures one aspect of a session built by New.
type SessionOption func(*sessionConfig)

// defaultRadioSpec is the process-wide default radio backend, settable once
// at startup (eabench -radio); nil means UMTS with the paper's parameters.
var defaultRadioSpec atomic.Value // stores *rrc.ModelSpec

// SetDefaultRadioProfile selects the radio backend sessions use when built
// without an explicit WithRadioModel/WithRadioConfig option. Unknown names
// fail with the valid-profile list.
func SetDefaultRadioProfile(name string) error {
	spec, err := rrc.ProfileSpec(name)
	if err != nil {
		return err
	}
	defaultRadioSpec.Store(&spec)
	return nil
}

// DefaultRadioSpec returns the process-wide default radio backend: the
// profile selected by SetDefaultRadioProfile, or the paper's UMTS
// parameters.
func DefaultRadioSpec() rrc.ModelSpec {
	if v := defaultRadioSpec.Load(); v != nil {
		return *(v.(*rrc.ModelSpec))
	}
	return rrc.DefaultConfig()
}

// WithRadioModel selects the radio backend (and its parameters) for the
// session: any rrc.ModelSpec, typically resolved from a named profile via
// rrc.ProfileSpec("lte").
func WithRadioModel(spec rrc.ModelSpec) SessionOption {
	return func(c *sessionConfig) { c.radio = spec }
}

// WithRadioConfig overrides the RRC timers, latencies and per-state powers
// of the UMTS backend.
//
// Deprecated: use WithRadioModel, which accepts any backend; rrc.Config is
// itself a ModelSpec, so WithRadioModel(cfg) is the direct replacement.
func WithRadioConfig(cfg rrc.Config) SessionOption {
	return WithRadioModel(cfg)
}

// WithLinkConfig overrides the radio-link bandwidth and RTT parameters.
func WithLinkConfig(cfg netsim.Config) SessionOption {
	return func(c *sessionConfig) { c.link = cfg }
}

// WithCostModel overrides the browser CPU cost model.
func WithCostModel(cost browser.CostModel) SessionOption {
	return func(c *sessionConfig) { c.cost = cost }
}

// WithFaultInjector impairs the session's link and RIL daemon with the given
// fault profile, and routes the engine's dormancy requests through the
// (flaky) RIL, exercising the whole Section 4.4 path under impairment.
func WithFaultInjector(cfg faults.Config) SessionOption {
	return func(c *sessionConfig) { c.faults = &cfg }
}

// WithChannel attaches a time-varying channel schedule to the session's
// link: bandwidth, latency and loss follow the schedule as simulated time
// advances (origin = clock zero). A nil schedule keeps the calibrated fixed
// link bit-for-bit. Composes with WithFaultInjector — the channel shapes the
// link first, injected faults stack on top.
func WithChannel(sched *channel.Schedule) SessionOption {
	return func(c *sessionConfig) { c.channel = sched }
}

// WithEngineOptions appends browser-engine options (dormancy guard,
// event log, ...) to the session's engine.
func WithEngineOptions(opts ...browser.Option) SessionOption {
	return func(c *sessionConfig) { c.engineOpts = append(c.engineOpts, opts...) }
}

// WithObsKey names the session in the process-wide obs collector (when
// tracing is enabled via obs.Enable; otherwise it is a no-op). The key must
// be unique and deterministic — derived from the experiment and its inputs,
// never from scheduling — so merged traces are byte-stable at any worker
// count.
func WithObsKey(key string) SessionOption {
	return func(c *sessionConfig) { c.obsKey = key }
}

// WithObsRecorder attaches an explicit event recorder (typically from a
// private obs.Collector); tests use this to trace a session without touching
// the process-wide collector.
func WithObsRecorder(r *obs.Recorder) SessionOption {
	return func(c *sessionConfig) { c.obsRec = r }
}

// New builds a fresh phone — virtual clock, radio, link and a browser in the
// given mode — from the calibrated defaults, adjusted by options:
//
//	s, err := experiments.New(browser.ModeEnergyAware,
//	        experiments.WithRadioConfig(radio),
//	        experiments.WithFaultInjector(profile),
//	        experiments.WithEngineOptions(browser.WithDormancyGuard(0)))
//
// Sessions are cheap and single-goroutine; parallel workloads give every
// goroutine its own.
func New(mode browser.Mode, opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{
		link: netsim.DefaultConfig(),
		cost: browser.DefaultCostModel(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.radio == nil {
		cfg.radio = DefaultRadioSpec()
	}

	var inj *faults.Injector
	if cfg.faults != nil {
		var err error
		if inj, err = faults.New(*cfg.faults); err != nil {
			return nil, fmt.Errorf("new injector: %w", err)
		}
	}
	rec := cfg.obsRec
	if rec == nil && cfg.obsKey != "" {
		var err error
		if rec, err = obs.Default().NewRecorder(cfg.obsKey); err != nil {
			return nil, fmt.Errorf("new session observer: %w", err)
		}
	}
	clock := simtime.NewClock()
	var radioOpts []rrc.Option
	if rec != nil {
		spec := cfg.radio
		radioOpts = append(radioOpts, rrc.WithTransitionHook(func(tr rrc.Transition) {
			rec.Record(tr.At, obs.Event{
				Kind: obs.KindTransition,
				From: spec.StateName(tr.From),
				To:   spec.StateName(tr.To),
			})
		}))
	}
	radio, err := cfg.radio.New(clock, radioOpts...)
	if err != nil {
		return nil, fmt.Errorf("new radio: %w", err)
	}
	link, err := netsim.NewLink(clock, radio, cfg.link)
	if err != nil {
		return nil, fmt.Errorf("new link: %w", err)
	}
	link.SetObserver(rec)
	if cfg.channel != nil {
		link.SetChannel(cfg.channel)
	}
	s := &Session{Clock: clock, Radio: radio, Link: link, Obs: rec}
	engineOpts := cfg.engineOpts
	if rec != nil {
		engineOpts = append([]browser.Option{browser.WithObserver(rec)}, engineOpts...)
	}
	if inj != nil {
		link.SetFaults(inj)
		iface, err := ril.New(clock, radio, ril.WithFaults(inj))
		if err != nil {
			return nil, fmt.Errorf("new ril: %w", err)
		}
		engineOpts = append([]browser.Option{browser.WithRIL(iface)}, engineOpts...)
		s.RIL = iface
		s.Faults = inj
	}
	engine, err := browser.NewEngine(clock, radio, link, cfg.cost, mode, engineOpts...)
	if err != nil {
		return nil, fmt.Errorf("new engine: %w", err)
	}
	s.Engine = engine
	return s, nil
}

// NewSession builds a fresh phone with default radio/link parameters and a
// browser in the given mode.
//
// Deprecated: use New; engine options go through WithEngineOptions.
func NewSession(mode browser.Mode, opts ...browser.Option) (*Session, error) {
	return New(mode, WithEngineOptions(opts...))
}

// NewSessionWithConfig builds a phone with explicit substrate parameters.
//
// Deprecated: use New with WithRadioConfig, WithLinkConfig and
// WithCostModel.
func NewSessionWithConfig(mode browser.Mode, radioCfg rrc.Config,
	linkCfg netsim.Config, cost browser.CostModel, opts ...browser.Option) (*Session, error) {
	return New(mode, WithRadioConfig(radioCfg), WithLinkConfig(linkCfg),
		WithCostModel(cost), WithEngineOptions(opts...))
}

// LoadToEnd loads one page and runs the simulation until the final display.
// The completion callback is bound once per session (not per call), keeping
// repeated pooled visits allocation-free.
func (s *Session) LoadToEnd(page *webpage.Page) (*browser.Result, error) {
	if s.loadDoneFn == nil {
		s.loadDoneFn = func(r *browser.Result) { s.loadDone = r }
	}
	s.loadDone = nil
	err := s.Engine.Load(page, s.loadDoneFn)
	if err != nil {
		return nil, err
	}
	deadline := s.Clock.Now() + maxSimTime
	for s.loadDone == nil && s.Clock.Now() < deadline {
		if !s.Clock.Step() {
			break
		}
	}
	if s.loadDone == nil {
		return nil, fmt.Errorf("load of %s did not finish within %v", page.Name, maxSimTime)
	}
	return s.loadDone, nil
}

// LoadPage loads page on a fresh phone in the given mode and then simulates
// reading time: the phone sits there (timers running or radio already
// dormant) while the user reads.
func LoadPage(page *webpage.Page, mode browser.Mode, reading time.Duration,
	opts ...browser.Option) (*LoadOutcome, error) {
	return LoadPageObserved(page, mode, reading, nil, opts...)
}

// LoadPageObserved is LoadPage with a hook that receives the session after
// the reading window, for callers that want to inspect the substrate state
// (radio residency, transfer records) beyond the load result.
func LoadPageObserved(page *webpage.Page, mode browser.Mode, reading time.Duration,
	observe func(*Session), opts ...browser.Option) (*LoadOutcome, error) {
	return LoadPageSession(page, mode, reading, observe, WithEngineOptions(opts...))
}

// LoadPageSession is the full-control variant of LoadPage: the session is
// built from arbitrary session options (fault injector, obs key, ...).
func LoadPageSession(page *webpage.Page, mode browser.Mode, reading time.Duration,
	observe func(*Session), opts ...SessionOption) (*LoadOutcome, error) {
	s, err := New(mode, opts...)
	if err != nil {
		return nil, err
	}
	res, err := s.LoadToEnd(page)
	if err != nil {
		return nil, err
	}
	energyAtFinal := s.Radio.EnergyJ() + res.CPUEnergyJ
	if reading > 0 {
		s.Clock.RunFor(reading)
	}
	total := s.Radio.EnergyJ() + res.CPUEnergyJ
	// Seal the attribution ledger here so its tail phase covers the radio's
	// post-display decay across the reading window.
	s.Engine.CloseLedger()
	if observe != nil {
		observe(s)
	}
	return &LoadOutcome{
		Result:            res,
		TotalWithReadingJ: total,
		ReadingJ:          total - energyAtFinal,
	}, nil
}

// PageByName generates the named benchmark page.
func PageByName(name string) (*webpage.Page, error) {
	for i, n := range webpage.MobilePageNames {
		if n == name {
			spec, err := webpage.MobileSpec(i)
			if err != nil {
				return nil, err
			}
			return webpage.Generate(spec)
		}
	}
	for i, n := range webpage.FullPageNames {
		if n == name {
			spec, err := webpage.FullSpec(i)
			if err != nil {
				return nil, err
			}
			return webpage.Generate(spec)
		}
	}
	return nil, fmt.Errorf("experiments: unknown benchmark page %q (have: %s)",
		name, strings.Join(webpage.BenchmarkPageNames(), ", "))
}
