// Package experiments wires the substrates together and regenerates every
// table and figure of the paper's evaluation (Section 5). Each experiment is
// a plain function returning a printable result structure, shared by the
// eabench command and the repository's benchmark suite.
package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/faults"
	"eabrowse/internal/netsim"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// maxSimTime bounds any single page-load simulation; a load that has not
// finished by then indicates a wedged pipeline (bug), not a slow page.
const maxSimTime = 30 * time.Minute

// LoadOutcome is the result of loading one page on a fresh simulated phone.
type LoadOutcome struct {
	Result *browser.Result
	// TotalWithReadingJ is radio+CPU energy over the window from load start
	// to final display plus the requested reading time.
	TotalWithReadingJ float64
	// ReadingJ is the energy spent during the reading window alone.
	ReadingJ float64
}

// Session is one simulated phone: clock, radio, link and a browser engine.
// RIL and Faults are set only by NewFaultySession (nil on the fault-free
// constructors).
type Session struct {
	Clock  *simtime.Clock
	Radio  *rrc.Machine
	Link   *netsim.Link
	Engine *browser.Engine
	RIL    *ril.Interface
	Faults *faults.Injector
}

// NewSession builds a fresh phone with default radio/link parameters and a
// browser in the given mode.
func NewSession(mode browser.Mode, opts ...browser.Option) (*Session, error) {
	return NewSessionWithConfig(mode, rrc.DefaultConfig(), netsim.DefaultConfig(),
		browser.DefaultCostModel(), opts...)
}

// NewSessionWithConfig builds a phone with explicit substrate parameters.
func NewSessionWithConfig(mode browser.Mode, radioCfg rrc.Config,
	linkCfg netsim.Config, cost browser.CostModel, opts ...browser.Option) (*Session, error) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, radioCfg)
	if err != nil {
		return nil, fmt.Errorf("new radio: %w", err)
	}
	link, err := netsim.NewLink(clock, radio, linkCfg)
	if err != nil {
		return nil, fmt.Errorf("new link: %w", err)
	}
	engine, err := browser.NewEngine(clock, radio, link, cost, mode, opts...)
	if err != nil {
		return nil, fmt.Errorf("new engine: %w", err)
	}
	return &Session{Clock: clock, Radio: radio, Link: link, Engine: engine}, nil
}

// LoadToEnd loads one page and runs the simulation until the final display.
func (s *Session) LoadToEnd(page *webpage.Page) (*browser.Result, error) {
	var result *browser.Result
	err := s.Engine.Load(page, func(r *browser.Result) { result = r })
	if err != nil {
		return nil, err
	}
	deadline := s.Clock.Now() + maxSimTime
	for result == nil && s.Clock.Now() < deadline {
		if !s.Clock.Step() {
			break
		}
	}
	if result == nil {
		return nil, fmt.Errorf("load of %s did not finish within %v", page.Name, maxSimTime)
	}
	return result, nil
}

// LoadPage loads page on a fresh phone in the given mode and then simulates
// reading time: the phone sits there (timers running or radio already
// dormant) while the user reads.
func LoadPage(page *webpage.Page, mode browser.Mode, reading time.Duration,
	opts ...browser.Option) (*LoadOutcome, error) {
	return LoadPageObserved(page, mode, reading, nil, opts...)
}

// LoadPageObserved is LoadPage with a hook that receives the session after
// the reading window, for callers that want to inspect the substrate state
// (radio residency, transfer records) beyond the load result.
func LoadPageObserved(page *webpage.Page, mode browser.Mode, reading time.Duration,
	observe func(*Session), opts ...browser.Option) (*LoadOutcome, error) {
	s, err := NewSession(mode, opts...)
	if err != nil {
		return nil, err
	}
	res, err := s.LoadToEnd(page)
	if err != nil {
		return nil, err
	}
	energyAtFinal := s.Radio.EnergyJ() + res.CPUEnergyJ
	if reading > 0 {
		s.Clock.RunFor(reading)
	}
	total := s.Radio.EnergyJ() + res.CPUEnergyJ
	if observe != nil {
		observe(s)
	}
	return &LoadOutcome{
		Result:            res,
		TotalWithReadingJ: total,
		ReadingJ:          total - energyAtFinal,
	}, nil
}

// PageByName generates the named benchmark page.
func PageByName(name string) (*webpage.Page, error) {
	for i, n := range webpage.MobilePageNames {
		if n == name {
			spec, err := webpage.MobileSpec(i)
			if err != nil {
				return nil, err
			}
			return webpage.Generate(spec)
		}
	}
	for i, n := range webpage.FullPageNames {
		if n == name {
			spec, err := webpage.FullSpec(i)
			if err != nil {
				return nil, err
			}
			return webpage.Generate(spec)
		}
	}
	return nil, fmt.Errorf("experiments: unknown benchmark page %q", name)
}
