package experiments

import (
	"reflect"
	"strings"
	"testing"

	"eabrowse/internal/channel"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
)

// TestScenarioPolicyOrdering is the acceptance property of the adaptive
// estimator: on every built-in scenario the oracle is a lower bound and the
// adaptive policy lands between it and the static thresholds.
func TestScenarioPolicyOrdering(t *testing.T) {
	for _, profile := range rrc.Profiles() {
		spec, err := rrc.ProfileSpec(profile)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ScenariosWithRadio(spec)
		if err != nil {
			t.Fatalf("ScenariosWithRadio(%s): %v", profile, err)
		}
		wantRows := len(channel.Scenarios()) * 3
		if len(m.Rows) != wantRows {
			t.Fatalf("%s: %d rows, want %d", profile, len(m.Rows), wantRows)
		}
		for i := 0; i < len(m.Rows); i += 3 {
			static, adaptive, oracle := m.Rows[i], m.Rows[i+1], m.Rows[i+2]
			if static.Policy != "static" || adaptive.Policy != "adaptive" || oracle.Policy != "oracle" {
				t.Fatalf("%s: unexpected policy order at row %d: %s/%s/%s",
					profile, i, static.Policy, adaptive.Policy, oracle.Policy)
			}
			if static.Scenario != adaptive.Scenario || static.Scenario != oracle.Scenario {
				t.Fatalf("%s: scenario mismatch at row %d", profile, i)
			}
			if !(adaptive.EnergyJ <= static.EnergyJ) {
				t.Errorf("%s/%s: adaptive %.1f J > static %.1f J",
					profile, static.Scenario, adaptive.EnergyJ, static.EnergyJ)
			}
			if !(oracle.EnergyJ <= adaptive.EnergyJ) {
				t.Errorf("%s/%s: oracle %.1f J > adaptive %.1f J",
					profile, static.Scenario, oracle.EnergyJ, adaptive.EnergyJ)
			}
			if oracle.Predictions != 0 {
				t.Errorf("%s/%s: oracle made %d predictions",
					profile, static.Scenario, oracle.Predictions)
			}
		}
	}
}

// TestScenariosParallelDeterminism: the matrix is byte-identical at any
// worker count (the cost tables fold in index order).
func TestScenariosParallelDeterminism(t *testing.T) {
	defer runner.SetWorkers(runner.Workers())
	spec := rrc.DefaultConfig()

	runner.SetWorkers(1)
	ResetArtifacts()
	seq, err := ScenariosWithRadio(spec)
	if err != nil {
		t.Fatal(err)
	}
	runner.SetWorkers(8)
	ResetArtifacts()
	par, err := ScenariosWithRadio(spec)
	if err != nil {
		t.Fatal(err)
	}
	ResetArtifacts()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("matrix differs between 1 and 8 workers:\n%v\nvs\n%v", seq, par)
	}
}

// TestScenarioEvaluatorErrors pins the valid-name-list error contract.
func TestScenarioEvaluatorErrors(t *testing.T) {
	_, err := channel.ScenarioSchedule("warp-drive")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range channel.Scenarios() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q missing scenario %q", err, name)
		}
	}
}
