package experiments

import (
	"fmt"
	"math"
	"testing"

	"eabrowse/internal/browser"
	"eabrowse/internal/netsim"
	"eabrowse/internal/obs"
)

// ledgerTol absorbs the float64 reordering between the ledger's per-state
// accumulators and the machine's single energy counter, plus the Round6
// applied to each serialized phase.
const ledgerTol = 1e-5

// TestLedgerInvariants checks the energy-attribution ledger against the
// substrate it observes, for every benchmark page under both pipelines:
// phases must telescope exactly to the ledger total, each phase must equal
// its own radio+CPU split, and the total must match the session's measured
// radio+CPU energy over the same window.
func TestLedgerInvariants(t *testing.T) {
	pages, err := BenchmarkPages()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		for _, page := range pages {
			var radioJ float64
			out, err := LoadPageSession(page, mode, Fig10ReadingTime, func(s *Session) {
				radioJ = s.Radio.EnergyJ()
			})
			if err != nil {
				t.Fatalf("%v %s: %v", mode, page.Name, err)
			}
			led := out.Result.Ledger
			if led == nil {
				t.Fatalf("%v %s: result carries no ledger", mode, page.Name)
			}
			if !led.Closed() {
				t.Fatalf("%v %s: ledger not closed after the reading window", mode, page.Name)
			}
			phases := led.Phases()
			if len(phases) == 0 {
				t.Fatalf("%v %s: ledger has no phases", mode, page.Name)
			}
			var sum float64
			for _, ph := range phases {
				var split float64
				for _, j := range ph.RadioByStateJ {
					if j < 0 {
						t.Errorf("%v %s: phase %q has negative %v", mode, page.Name, ph.Phase, ph.RadioByStateJ)
					}
					split += j
				}
				split += ph.CPUJ
				if math.Abs(split-ph.TotalJ) > ledgerTol {
					t.Errorf("%v %s: phase %q split %.9f != total %.9f",
						mode, page.Name, ph.Phase, split, ph.TotalJ)
				}
				if ph.EndNS < ph.StartNS {
					t.Errorf("%v %s: phase %q ends before it starts", mode, page.Name, ph.Phase)
				}
				sum += ph.TotalJ
			}
			if total := led.TotalJ(); math.Abs(sum-total) > ledgerTol {
				t.Errorf("%v %s: phases sum to %.9f, ledger total %.9f",
					mode, page.Name, sum, total)
			}
			// The session starts at zero energy and the ledger closes after
			// the reading window, so its total is the phone's whole budget.
			// The CPU mill is quiet after the final display, making the
			// result's CPUEnergyJ the closed-ledger CPU value too.
			measured := radioJ + out.Result.CPUEnergyJ
			if total := led.TotalJ(); math.Abs(total-measured) > ledgerTol {
				t.Errorf("%v %s: ledger total %.9f != measured radio+CPU %.9f",
					mode, page.Name, total, measured)
			}
			if math.Abs(out.TotalWithReadingJ-led.TotalJ()) > ledgerTol {
				t.Errorf("%v %s: TotalWithReadingJ %.9f != ledger total %.9f",
					mode, page.Name, out.TotalWithReadingJ, led.TotalJ())
			}
		}
	}
}

// allowedRRCEdges is the complete transition graph of the UMTS state machine:
// promotions go through a PROMO state, demotions step DCH→FACH→IDLE on the
// inactivity timers, and fast dormancy goes through RELEASING. Anything else
// in a trace — an IDLE→DCH jump above all — is a bug.
var allowedRRCEdges = map[string]bool{
	"IDLE->PROMO(IDLE→DCH)": true,
	"PROMO(IDLE→DCH)->DCH":  true,
	"FACH->PROMO(FACH→DCH)": true,
	"PROMO(FACH→DCH)->DCH":  true,
	"DCH->FACH":             true,
	"FACH->IDLE":            true,
	"DCH->RELEASING":        true,
	"FACH->RELEASING":       true,
	"RELEASING->IDLE":       true,
}

// TestTraceInvariants loads a page under both pipelines — once clean and once
// under the chaos fault profile at 30% loss, to force retries — and checks
// structural properties of the resulting event streams: timestamps
// non-decreasing, every RRC edge in the whitelist, and transfer attempts
// within the link's retry budget.
func TestTraceInvariants(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector()
	profile := DefaultChaosProfile()
	profile.LossRate = 0.30
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		for _, faulty := range []bool{false, true} {
			key := fmt.Sprintf("inv/%s/faulty=%v", mode, faulty)
			rec, err := c.NewRecorder(key)
			if err != nil {
				t.Fatal(err)
			}
			opts := []SessionOption{WithObsRecorder(rec)}
			if faulty {
				opts = append(opts, WithFaultInjector(profile))
			}
			if _, err := LoadPageSession(page, mode, Fig10ReadingTime, nil, opts...); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			checkSessionTrace(t, key, rec.Events())
		}
	}
}

func checkSessionTrace(t *testing.T, key string, events []obs.Event) {
	t.Helper()
	if len(events) == 0 {
		t.Errorf("%s: empty trace", key)
		return
	}
	var lastNS int64
	transitions := 0
	retriesByURL := make(map[string]int)
	for _, ev := range events {
		if ev.AtNS < lastNS {
			t.Errorf("%s: timestamps regress at %v (%d after %d)", key, ev.Kind, ev.AtNS, lastNS)
		}
		lastNS = ev.AtNS
		switch ev.Kind {
		case obs.KindTransition:
			transitions++
			if edge := ev.From + "->" + ev.To; !allowedRRCEdges[edge] {
				t.Errorf("%s: illegal RRC transition %s", key, edge)
			}
		case obs.KindXferStart, obs.KindXferRetry:
			if ev.Attempt < 1 || ev.Attempt > netsim.DefaultTransferAttempts {
				t.Errorf("%s: %v of %s with attempt %d outside [1, %d]",
					key, ev.Kind, ev.URL, ev.Attempt, netsim.DefaultTransferAttempts)
			}
			if ev.Kind == obs.KindXferRetry {
				retriesByURL[ev.URL]++
			}
		case obs.KindXferEnd, obs.KindXferFailed:
			if ev.Attempt > netsim.DefaultTransferAttempts {
				t.Errorf("%s: %v of %s finished on attempt %d > budget %d",
					key, ev.Kind, ev.URL, ev.Attempt, netsim.DefaultTransferAttempts)
			}
			if ev.DurNS < 0 {
				t.Errorf("%s: %v of %s with negative duration", key, ev.Kind, ev.URL)
			}
		}
	}
	if transitions == 0 {
		t.Errorf("%s: no RRC transitions traced", key)
	}
	// Every fetch of a URL grants the link its attempt budget; engine-level
	// refetches grant it again. The trace must never show more link retries
	// than both budgets combined allow.
	maxRetries := browser.DefaultFetchAttempts * (netsim.DefaultTransferAttempts - 1)
	for url, n := range retriesByURL {
		if n > maxRetries {
			t.Errorf("%s: %s retried %d times, policy allows at most %d", key, url, n, maxRetries)
		}
	}
}
