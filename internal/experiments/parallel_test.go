package experiments

import (
	"reflect"
	"sync"
	"testing"

	"eabrowse/internal/browser"
	"eabrowse/internal/runner"
)

// withWorkers runs fn under a fixed worker-pool size, restoring the previous
// size afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := runner.Workers()
	runner.SetWorkers(n)
	defer runner.SetWorkers(prev)
	fn()
}

// TestChaosSweepParallelDeterminism is the tentpole acceptance check: the
// chaos sweep must produce identical results at one worker (fully sequential,
// no goroutines) and at eight.
func TestChaosSweepParallelDeterminism(t *testing.T) {
	profile := DefaultChaosProfile()
	var seq, par *ChaosResult
	withWorkers(t, 1, func() {
		var err error
		if seq, err = ChaosSweep(profile, 0.02); err != nil {
			t.Fatalf("sequential ChaosSweep: %v", err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if par, err = ChaosSweep(profile, 0.02); err != nil {
			t.Fatalf("parallel ChaosSweep: %v", err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("chaos sweep diverged between 1 and 8 workers:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFleetParallelDeterminism replays a small fleet at one worker and at
// eight; per-phone virtual clocks must make the outcomes identical.
func TestFleetParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replay is slow")
	}
	cfg := FleetConfig{Users: 12, HoursPerUser: 0.05, Seed: 7}
	var seq, par *FleetResult
	withWorkers(t, 1, func() {
		var err error
		if seq, err = Fleet(cfg); err != nil {
			t.Fatalf("sequential Fleet: %v", err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if par, err = Fleet(cfg); err != nil {
			t.Fatalf("parallel Fleet: %v", err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fleet diverged between 1 and 8 workers:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.Visits == 0 {
		t.Fatal("fleet replayed no visits")
	}
	if seq.EnergySavingPct <= 0 {
		t.Errorf("fleet energy saving %.2f%%, want > 0", seq.EnergySavingPct)
	}
	if seq.Aware.Switches == 0 {
		t.Error("Algorithm 2 never forced a release over the whole fleet")
	}
	if seq.Aware.Predictions < seq.Aware.Switches {
		t.Errorf("predictions %d < switches %d", seq.Aware.Predictions, seq.Aware.Switches)
	}
}

func TestFleetRejectsBadConfig(t *testing.T) {
	for _, cfg := range []FleetConfig{
		{Users: 0, HoursPerUser: 1},
		{Users: 10, HoursPerUser: 0},
	} {
		if _, err := Fleet(cfg); err == nil {
			t.Errorf("Fleet accepted %+v", cfg)
		}
	}
}

// TestArtifactCacheHammer pounds the artifact store from many goroutines
// (run with -race): every accessor must build exactly once and hand every
// caller the same pointer.
func TestArtifactCacheHammer(t *testing.T) {
	const goroutines = 32
	type grab struct {
		mobile interface{}
		espn   interface{}
		ds     interface{}
		pred   interface{}
	}
	grabs := make([]grab, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mobile, err := MobilePages()
			if err != nil {
				t.Errorf("MobilePages: %v", err)
				return
			}
			espn, err := ESPNPage()
			if err != nil {
				t.Errorf("ESPNPage: %v", err)
				return
			}
			ds, err := DefaultTrace()
			if err != nil {
				t.Errorf("DefaultTrace: %v", err)
				return
			}
			pred, err := TrainedPredictor(true)
			if err != nil {
				t.Errorf("TrainedPredictor: %v", err)
				return
			}
			grabs[g] = grab{mobile: &mobile[0], espn: espn, ds: ds, pred: pred}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if grabs[g] != grabs[0] {
			t.Fatalf("goroutine %d saw different artifacts than goroutine 0", g)
		}
	}
}

// TestBenchmarkPagesFreshSlice guards the aliasing bug the cache design rules
// out: appending to the combined slice must never scribble over the cached
// mobile corpus.
func TestBenchmarkPagesFreshSlice(t *testing.T) {
	a, err := BenchmarkPages()
	if err != nil {
		t.Fatalf("BenchmarkPages: %v", err)
	}
	b, err := BenchmarkPages()
	if err != nil {
		t.Fatalf("BenchmarkPages: %v", err)
	}
	if &a[0] == &b[0] {
		t.Fatal("BenchmarkPages returned the same backing array twice")
	}
	if len(a) != len(b) || a[0] != b[0] || a[len(a)-1] != b[len(b)-1] {
		t.Fatal("BenchmarkPages contents diverged between calls")
	}
}

// TestSessionOptionEquivalence checks that the deprecated constructors and
// the option form build identical phones (same load outcome).
func TestSessionOptionEquivalence(t *testing.T) {
	page, err := ESPNPage()
	if err != nil {
		t.Fatalf("ESPNPage: %v", err)
	}
	load := func(s *Session, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		r, err := s.LoadToEnd(page)
		if err != nil {
			t.Fatalf("LoadToEnd: %v", err)
		}
		return s.Radio.EnergyJ() + r.CPUEnergyJ
	}
	viaOptions := load(New(browser.ModeEnergyAware))
	viaDeprecated := load(NewSession(browser.ModeEnergyAware))
	if viaOptions != viaDeprecated {
		t.Errorf("New = %.6f J, NewSession = %.6f J", viaOptions, viaDeprecated)
	}
}
