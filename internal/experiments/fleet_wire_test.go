package experiments

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

func testShardSet(t *testing.T, cfg FleetConfig) []FleetShardResult {
	t.Helper()
	outs, err := RunFleetShards(cfg, 0, FleetShardCount(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestFleetWireRoundTrip(t *testing.T) {
	cfg := FleetConfig{Users: 120, HoursPerUser: 0.05, Seed: 99}
	outs := testShardSet(t, cfg)
	var buf bytes.Buffer
	if err := WriteFleetShards(&buf, outs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleetShards(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, outs) {
		t.Fatal("wire round trip changed the shard set")
	}
	// Re-encoding must reproduce the identical bytes (the determinism matrix
	// depends on the wire being bit-exact, not just value-preserving).
	var buf2 bytes.Buffer
	if err := WriteFleetShards(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encode differs")
	}
}

func TestFleetWireRejectsCorrupt(t *testing.T) {
	cfg := FleetConfig{Users: 8, HoursPerUser: 0.05, Seed: 1}
	outs := testShardSet(t, cfg)
	var buf bytes.Buffer
	if err := WriteFleetShards(&buf, outs); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	bad := append([]byte(nil), enc...)
	copy(bad, "NOPE")
	if _, err := ReadFleetShards(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[4] = 0xFF // version
	if _, err := ReadFleetShards(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadFleetShards(bytes.NewReader(enc[:len(enc)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := ReadFleetShards(bytes.NewReader(enc[:7])); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[10] = 0x01 // first frame length corrupted
	if _, err := ReadFleetShards(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt frame length accepted")
	}
}

// TestFleetMultiProcMatchesInProcess runs the coordinator against real child
// processes (cat-ing precomputed worker outputs, so the test exercises the
// full pipe/merge path without re-execing the test binary) and checks the
// merged result equals the in-process run exactly.
func TestFleetMultiProcMatchesInProcess(t *testing.T) {
	cfg := FleetConfig{Users: 300, HoursPerUser: 0.05, Seed: 20130709}
	want, err := Fleet(cfg)
	if err != nil {
		t.Fatal(err)
	}

	total := FleetShardCount(cfg)
	dir := t.TempDir()
	const procs = 4
	for p := 0; p < procs; p++ {
		lo := p * total / procs
		hi := (p + 1) * total / procs
		outs, err := RunFleetShards(cfg, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFleetShards(&buf, outs); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, workerFile(p)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p := 0
	got, err := FleetMultiProc(cfg, procs, func(lo, hi int) (*exec.Cmd, error) {
		cmd := exec.Command("cat", filepath.Join(dir, workerFile(p)))
		p++
		return cmd, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-process result differs:\n got %+v\nwant %+v", got, want)
	}

	if _, err := FleetMultiProc(cfg, 0, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func workerFile(p int) string {
	return "worker" + string(rune('0'+p)) + ".bin"
}
