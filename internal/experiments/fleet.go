package experiments

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/capacity"
	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/obs"
	"eabrowse/internal/policy"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
	"eabrowse/internal/webpage"
)

// FleetConfig sizes the fleet replay.
type FleetConfig struct {
	// Users is the fleet population (each user is one simulated phone).
	Users int
	// HoursPerUser is how much browsing each user's trace covers.
	HoursPerUser float64
	// Seed makes the fleet trace reproducible.
	Seed int64
}

// DefaultFleetConfig replays a 300-phone fleet for a quarter hour each.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Users: 300, HoursPerUser: 0.25, Seed: 20130709}
}

// Validate checks the configuration.
func (c FleetConfig) Validate() error {
	switch {
	case c.Users <= 0:
		return errors.New("fleet: need at least one user")
	case c.HoursPerUser <= 0:
		return errors.New("fleet: hours per user must be positive")
	}
	return nil
}

// FleetModeStats aggregates one pipeline's behaviour across the fleet.
type FleetModeStats struct {
	Mode browser.Mode
	// EnergyJ is total radio+CPU energy across every phone.
	EnergyJ float64
	// MeanEnergyPerUserJ is EnergyJ / users.
	MeanEnergyPerUserJ float64
	// MeanTransmissionS is the mean per-visit data-transmission time — the
	// channel-hold time the capacity model charges.
	MeanTransmissionS float64
	// SupportedAt2Pct is the largest population the cell keeps under 2%
	// dropping with this pipeline's transmission times.
	SupportedAt2Pct int
	// DropPctAtFleet is the dropping probability at the fleet's own size.
	DropPctAtFleet float64
	// Switches counts Algorithm 2's forced releases; Predictions counts GBRT
	// evaluations; PredictionEnergyJ is their Table 7 cost (already included
	// in EnergyJ). All zero for the original pipeline.
	Switches          int
	Predictions       int
	PredictionEnergyJ float64
}

// FleetResult compares the two pipelines over the same fleet trace.
type FleetResult struct {
	Users  int
	Visits int
	// TraceHours is the per-user browsing time replayed.
	TraceHours float64
	Original   FleetModeStats
	Aware      FleetModeStats
	// EnergySavingPct is the fleet-wide energy saving.
	EnergySavingPct float64
	// CapacityGainPct is the Fig. 11-style capacity gain at 2% dropping.
	CapacityGainPct float64
}

// fleetUserOutcome is one phone's replay under both pipelines.
type fleetUserOutcome struct {
	origEnergyJ  float64
	awareEnergyJ float64
	origTransS   []float64
	awareTransS  []float64
	visits       int
	switches     int
	predictions  int
	predEnergyJ  float64
}

// Fleet replays a multi-hundred-user browsing trace concurrently, one
// simulated phone per user per pipeline, and reports aggregate energy and
// cell capacity. The energy-aware phones run Algorithm 2 end to end: load,
// wait the interest threshold α, predict the reading time with the shared
// trained GBRT, force the radio dormant when the prediction clears the
// delay-driven threshold, and pay the Table 7 prediction cost for every
// evaluation.
//
// Every phone owns its own virtual clock, so the replay is deterministic at
// any worker count: users run on the worker pool and aggregate in user order.
func Fleet(cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tcfg := trace.DefaultConfig()
	tcfg.Users = cfg.Users
	tcfg.HoursPerUser = cfg.HoursPerUser
	tcfg.Seed = cfg.Seed
	ds, err := trace.Synthesize(tcfg)
	if err != nil {
		return nil, fmt.Errorf("fleet trace: %w", err)
	}
	// The predictor is trained offline on the default collection trace and
	// deployed to every phone — the paper's deployment model.
	pred, err := TrainedPredictor(true)
	if err != nil {
		return nil, err
	}

	pages := make(map[string]*webpage.Page, len(ds.Pool))
	for i := range ds.Pool {
		pages[ds.Pool[i].Name] = ds.Pool[i].Page
	}
	// Visits arrive grouped by user and ordered within each user.
	byUser := make([][]trace.Visit, cfg.Users)
	for _, v := range ds.Visits {
		byUser[v.User] = append(byUser[v.User], v)
	}

	params := policy.DefaultParams()
	device := gbrt.DefaultDeviceCost()
	outcomes, err := runner.Collect(cfg.Users, func(u int) (fleetUserOutcome, error) {
		return replayFleetUser(u, byUser[u], pages, pred, params, device)
	})
	if err != nil {
		return nil, err
	}

	res := &FleetResult{Users: cfg.Users, TraceHours: cfg.HoursPerUser}
	res.Original.Mode = browser.ModeOriginal
	res.Aware.Mode = browser.ModeEnergyAware
	var origTrans, awareTrans []float64
	for _, o := range outcomes {
		res.Visits += o.visits
		res.Original.EnergyJ += o.origEnergyJ
		res.Aware.EnergyJ += o.awareEnergyJ
		res.Aware.Switches += o.switches
		res.Aware.Predictions += o.predictions
		res.Aware.PredictionEnergyJ += o.predEnergyJ
		origTrans = append(origTrans, o.origTransS...)
		awareTrans = append(awareTrans, o.awareTransS...)
	}
	res.Original.MeanEnergyPerUserJ = res.Original.EnergyJ / float64(cfg.Users)
	res.Aware.MeanEnergyPerUserJ = res.Aware.EnergyJ / float64(cfg.Users)
	if res.Original.EnergyJ > 0 {
		res.EnergySavingPct = (res.Original.EnergyJ - res.Aware.EnergyJ) /
			res.Original.EnergyJ * 100
	}

	ccfg := capacity.DefaultConfig()
	for _, side := range []struct {
		stats *FleetModeStats
		trans []float64
	}{{&res.Original, origTrans}, {&res.Aware, awareTrans}} {
		var sum float64
		for _, t := range side.trans {
			sum += t
		}
		side.stats.MeanTransmissionS = sum / float64(len(side.trans))
		supported, err := capacity.SupportedUsers(side.trans, 2, ccfg)
		if err != nil {
			return nil, err
		}
		side.stats.SupportedAt2Pct = supported
		atFleet, err := capacity.Simulate(cfg.Users, side.trans, ccfg)
		if err != nil {
			return nil, err
		}
		side.stats.DropPctAtFleet = atFleet.DropPercent
	}
	if res.Original.SupportedAt2Pct > 0 {
		res.CapacityGainPct = float64(res.Aware.SupportedAt2Pct-res.Original.SupportedAt2Pct) /
			float64(res.Original.SupportedAt2Pct) * 100
	}
	return res, nil
}

// replayFleetUser walks one user's visit sequence on two persistent phones —
// one per pipeline — so radio state carries across the visits of a session
// exactly as it would on a real handset.
func replayFleetUser(user int, visits []trace.Visit, pages map[string]*webpage.Page,
	pred TrainedReadingPredictor, params policy.Params,
	device gbrt.DeviceCost) (fleetUserOutcome, error) {

	out := fleetUserOutcome{}
	if len(visits) == 0 {
		return out, nil
	}

	orig, err := New(browser.ModeOriginal,
		WithObsKey(fmt.Sprintf("fleet/u%03d/original", user)))
	if err != nil {
		return out, err
	}
	// In the policy setting the release decision belongs to Algorithm 2, not
	// the engine's own end-of-load dormancy.
	aware, err := New(browser.ModeEnergyAware,
		WithObsKey(fmt.Sprintf("fleet/u%03d/energy-aware", user)),
		WithEngineOptions(browser.WithoutAutoDormancy()))
	if err != nil {
		return out, err
	}

	drain := orig.Radio.Config().T1 + orig.Radio.Config().T2 + time.Second
	alpha := params.Alpha
	var origCPUJ, awareCPUJ float64
	session := visits[0].Session
	for _, v := range visits {
		page, ok := pages[v.Page]
		if !ok || page == nil {
			return out, fmt.Errorf("fleet: no page body for %s", v.Page)
		}
		if v.Session != session {
			// Session breaks are minutes apart — let both radios idle out.
			orig.Clock.RunFor(drain)
			aware.Clock.RunFor(drain)
			session = v.Session
		}
		reading := time.Duration(v.ReadingSeconds * float64(time.Second))

		// Original pipeline: load, then sit through the reading window on
		// operator timers.
		origRes, err := orig.LoadToEnd(page)
		if err != nil {
			return out, fmt.Errorf("fleet original %s: %w", v.Page, err)
		}
		origCPUJ += origRes.CPUEnergyJ
		out.origTransS = append(out.origTransS, origRes.TransmissionTime.Seconds())
		orig.Clock.RunFor(reading)

		// Energy-aware pipeline: Algorithm 2.
		awareRes, err := aware.LoadToEnd(page)
		if err != nil {
			return out, fmt.Errorf("fleet aware %s: %w", v.Page, err)
		}
		awareCPUJ += awareRes.CPUEnergyJ
		out.awareTransS = append(out.awareTransS, awareRes.TransmissionTime.Seconds())
		if reading <= alpha {
			// The user clicked away before the interest threshold — no
			// prediction, timers handle the short gap.
			aware.Clock.RunFor(reading)
		} else {
			aware.Clock.RunFor(alpha)
			vec, err := features.FromResult(awareRes)
			if err != nil {
				return out, err
			}
			predS, err := pred.PredictSeconds(vec)
			if err != nil {
				return out, err
			}
			out.predictions++
			out.predEnergyJ += device.PredictionEnergyJ(pred.NumTrees())
			decision := policy.Evaluate(time.Duration(predS*float64(time.Second)), params)
			if aware.Obs != nil {
				aware.Obs.Record(aware.Clock.Now(), obs.Event{
					Kind:   obs.KindPolicyDecision,
					URL:    v.Page,
					Detail: decision.Reason,
					DurNS:  int64(decision.Predicted),
				})
			}
			if decision.Switch {
				// A busy radio (ErrBusy) degrades to the inactivity timers,
				// exactly as on a real handset; only a successful release
				// counts as a switch.
				if err := aware.Engine.ForceDormantNow(); err == nil {
					out.switches++
				}
			}
			aware.Clock.RunFor(reading - alpha)
		}
		out.visits++
	}
	out.origEnergyJ = orig.Radio.EnergyJ() + origCPUJ
	out.awareEnergyJ = aware.Radio.EnergyJ() + awareCPUJ + out.predEnergyJ
	return out, nil
}

// TrainedReadingPredictor is the slice of the predictor API Algorithm 2
// needs; the fleet replay takes it as an interface so tests can stub the
// model. Fleet predictions stay per-visit rather than batched: each feature
// vector comes from the load result just simulated, and the release decision
// feeds back into the radio state of the following visits, so there is no
// batch to precompute — the fleet's share of the GBRT speedup comes from
// training, which dominates its wall-clock.
type TrainedReadingPredictor interface {
	PredictSeconds(v features.Vector) (float64, error)
	NumTrees() int
}
