package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/capacity"
	"eabrowse/internal/channel"
	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/obs"
	"eabrowse/internal/policy"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
	"eabrowse/internal/stats"
	"eabrowse/internal/trace"
	"eabrowse/internal/webpage"
)

// Fleet population and duration bounds, enforced by FleetConfig.Validate.
// The ceiling keeps a mistyped flag from committing the process to days of
// simulation. The counted-multiplicity replay handles 2M users in minutes on
// one core (visits beyond the first per (template, reading-bucket) cell are
// one int64 increment), so the bound sits an order of magnitude above the
// paper's million-user framing rather than at the old per-visit-replay limit
// of 200k.
const (
	MinFleetUsers        = 1
	MaxFleetUsers        = 2_000_000
	MaxFleetHoursPerUser = 24.0
)

// FleetConfig sizes the fleet replay.
type FleetConfig struct {
	// Users is the fleet population (each user is one simulated phone).
	Users int
	// HoursPerUser is how much browsing each user's trace covers.
	HoursPerUser float64
	// Seed makes the fleet trace reproducible.
	Seed int64
	// Radio names the radio profile every phone runs ("umts", "lte", "nr").
	// Empty means the session default (see SetDefaultRadioProfile).
	Radio string
	// RadioMix assigns profiles across the fleet, e.g. "umts:0.6,lte:0.4":
	// each user is drawn one profile, deterministically in (Seed, user).
	// Mutually exclusive with Radio.
	RadioMix string
	// Channel names a built-in channel scenario (see channel.Scenarios) every
	// phone browses through; its clock starts at each user's first visit and
	// advances with the user's browsing. Empty means a fixed ideal link —
	// exactly the pre-channel fleet, bit for bit.
	Channel string
	// Policy selects the energy-aware release rule: "static" (the paper's
	// fixed thresholds, the default) or "adaptive" (a per-user recursive
	// threshold estimator, see policy.Adaptive).
	Policy string
	// Progress, when non-nil, is called after each shard finishes with the
	// number of completed shards and the shard total. Calls are serialized
	// but may come from any worker goroutine. It does not affect the replay
	// (eabench wires it to stderr under -timing so long fleets aren't
	// silent).
	Progress func(done, total int) `json:"-"`
}

// DefaultFleetConfig replays a 300-phone fleet for a quarter hour each.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Users: 300, HoursPerUser: 0.25, Seed: 20130709}
}

// Validate checks the configuration against the documented bounds.
func (c FleetConfig) Validate() error {
	if c.Users < MinFleetUsers || c.Users > MaxFleetUsers {
		return fmt.Errorf("fleet: users = %d out of range [%d, %d]",
			c.Users, MinFleetUsers, MaxFleetUsers)
	}
	if !(c.HoursPerUser > 0) || c.HoursPerUser > MaxFleetHoursPerUser {
		return fmt.Errorf("fleet: hours per user = %g out of range (0, %g]",
			c.HoursPerUser, MaxFleetHoursPerUser)
	}
	if _, err := c.fleetRadios(); err != nil {
		return err
	}
	if _, err := c.fleetChannel(); err != nil {
		return err
	}
	if _, err := c.fleetAdaptive(); err != nil {
		return err
	}
	return nil
}

// fleetChannel resolves the optional channel scenario (nil when unset).
func (c FleetConfig) fleetChannel() (*channel.Schedule, error) {
	if c.Channel == "" {
		return nil, nil
	}
	sched, err := channel.ScenarioSchedule(c.Channel)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return sched, nil
}

// fleetAdaptive resolves the policy selection to "run adaptive?".
func (c FleetConfig) fleetAdaptive() (bool, error) {
	switch c.Policy {
	case "", "static":
		return false, nil
	case "adaptive":
		return true, nil
	default:
		return false, fmt.Errorf("fleet: unknown policy %q (have: adaptive, static)", c.Policy)
	}
}

// policyName is the resolved policy for FleetResult.Policy.
func (c FleetConfig) policyName() string {
	if c.Policy == "" {
		return "static"
	}
	return c.Policy
}

// fleetRadio is one resolved radio profile of the fleet: the spec that
// mints phones, the precomputed tail its analytic cursors replay on, the
// drain window that settles it between sessions, and the cumulative mix
// weight used for the per-user draw (user u runs the first radio whose cum
// exceeds the user's draw).
type fleetRadio struct {
	name   string
	spec   rrc.ModelSpec
	tail   rrc.TailProfile
	drain  time.Duration
	weight float64
	cum    float64
}

func newFleetRadio(spec rrc.ModelSpec) fleetRadio {
	tail := spec.Tail()
	return fleetRadio{
		name:   spec.Profile(),
		spec:   spec,
		tail:   tail,
		drain:  tail.TotalDwell() + time.Second,
		weight: 1,
		cum:    1,
	}
}

// parseRadioMix parses a "name:weight,name:weight" mix into resolved radios
// with normalized cumulative weights. Entry order follows the mix string,
// so equal strings produce identical per-user assignments.
func parseRadioMix(mix string) ([]fleetRadio, error) {
	parts := strings.Split(mix, ",")
	out := make([]fleetRadio, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	total := 0.0
	for _, part := range parts {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("fleet: radio mix entry %q is not name:weight", strings.TrimSpace(part))
		}
		name = strings.TrimSpace(name)
		spec, err := rrc.ProfileSpec(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: radio mix lists %q twice", name)
		}
		seen[name] = true
		w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
		if err != nil || !(w > 0) || w > 1e9 {
			return nil, fmt.Errorf("fleet: radio mix weight %q for %s must be a positive number", strings.TrimSpace(weightStr), name)
		}
		fr := newFleetRadio(spec)
		fr.weight = w
		out = append(out, fr)
		total += w
	}
	cum := 0.0
	for i := range out {
		out[i].weight /= total
		cum += out[i].weight
		out[i].cum = cum
	}
	// Draws are in [0, 1); pin the last bound so rounding can't strand one.
	out[len(out)-1].cum = 1
	return out, nil
}

// fleetRadios resolves the configured radio selection: an explicit mix, a
// single named profile, or the session default.
func (c FleetConfig) fleetRadios() ([]fleetRadio, error) {
	switch {
	case c.RadioMix != "":
		if c.Radio != "" {
			return nil, fmt.Errorf("fleet: Radio %q and RadioMix %q are mutually exclusive", c.Radio, c.RadioMix)
		}
		return parseRadioMix(c.RadioMix)
	case c.Radio != "":
		spec, err := rrc.ProfileSpec(c.Radio)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		return []fleetRadio{newFleetRadio(spec)}, nil
	default:
		return []fleetRadio{newFleetRadio(DefaultRadioSpec())}, nil
	}
}

// describeRadios renders the resolved selection for FleetResult.Radio.
func describeRadios(radios []fleetRadio) string {
	if len(radios) == 1 {
		return radios[0].name
	}
	var b strings.Builder
	for i := range radios {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%.2f", radios[i].name, radios[i].weight)
	}
	return b.String()
}

// FleetModeStats aggregates one pipeline's behaviour across the fleet.
type FleetModeStats struct {
	Mode browser.Mode
	// EnergyJ is total radio+CPU energy across every phone.
	EnergyJ float64
	// MeanEnergyPerUserJ is EnergyJ / users.
	MeanEnergyPerUserJ float64
	// MeanTransmissionS is the mean per-visit data-transmission time — the
	// channel-hold time the capacity model charges.
	MeanTransmissionS float64
	// SupportedAt2Pct is the largest population the cell keeps under 2%
	// dropping with this pipeline's transmission times.
	SupportedAt2Pct int
	// DropPctAtFleet is the dropping probability at the fleet's own size.
	DropPctAtFleet float64
	// VisitEnergyP50J/P95J/P99J are percentiles of the per-visit energy
	// distribution, estimated from the merged shard sketches (so they carry
	// the sketch's quantile error bound, not association-exact values). A
	// visit's energy is its load plus the reading-window radio walk, with the
	// prediction cost included when a prediction ran; session-break drains are
	// excluded — they belong to the idle gap between sessions, not to a visit.
	VisitEnergyP50J float64
	VisitEnergyP95J float64
	VisitEnergyP99J float64
	// Switches counts Algorithm 2's forced releases; Predictions counts GBRT
	// evaluations; PredictionEnergyJ is their Table 7 cost (already included
	// in EnergyJ). All zero for the original pipeline.
	Switches          int
	Predictions       int
	PredictionEnergyJ float64
}

// FleetResult compares the two pipelines over the same fleet trace.
type FleetResult struct {
	Users  int
	Visits int
	// TraceHours is the per-user browsing time replayed.
	TraceHours float64
	// Radio describes the resolved radio selection: a single profile name,
	// or a normalized "name:weight,…" list for mixed-RAN fleets.
	Radio string
	// Channel is the channel scenario replayed ("" for a fixed ideal link);
	// Policy is the energy-aware release rule ("static" or "adaptive").
	Channel  string
	Policy   string
	Original FleetModeStats
	Aware    FleetModeStats
	// EnergySavingPct is the fleet-wide energy saving.
	EnergySavingPct float64
	// CapacityGainPct is the Fig. 11-style capacity gain at 2% dropping.
	CapacityGainPct float64
}

// fleetShards bounds both the aggregation memory and the merge cost: each
// shard replays a contiguous user range into one accumulator, so peak state
// is O(shards), independent of the fleet size.
const fleetShards = 64

// fleetSketchBudget is the centroid budget of the per-shard and merged
// transmission-time sketches. Distinct values are normally bounded by the
// template population, but delayed-release loads contribute one distinct
// shifted value each, so the sketch compresses when a fleet produces more.
// A var (not const) so equivalence tests can raise it to force exact mode.
var fleetSketchBudget = 512

// FleetShardCount returns how many shards a fleet of this size replays
// (shard indices are 0..count-1). Exposed so multi-process coordinators can
// split the shard range across workers.
func FleetShardCount(cfg FleetConfig) int {
	if cfg.Users < fleetShards {
		return cfg.Users
	}
	return fleetShards
}

// FleetShardResult is one shard's accumulated replay outcome: counters,
// energies, the two transmission-time sketches and the two per-visit energy
// sketches. Shards are pure functions of (config, shard index), so any
// process can compute any shard and a coordinator can merge them in shard
// order with FleetFromShards.
type FleetShardResult struct {
	Shard       int
	Visits      int64
	Switches    int64
	Predictions int64
	OrigJ       float64
	AwareJ      float64
	PredJ       float64
	OrigTrans   *stats.Sketch
	AwareTrans  *stats.Sketch
	// OrigVisitJ/AwareVisitJ hold one observation per visit: the visit's
	// energy (load + reading-window walk + prediction cost when one ran,
	// session-break drains excluded). They feed the fleet-wide per-visit
	// energy percentiles.
	OrigVisitJ  *stats.Sketch
	AwareVisitJ *stats.Sketch
}

func (s *FleetShardResult) fold(o userOutcome) {
	s.Visits += int64(o.visits)
	s.Switches += int64(o.switches)
	s.Predictions += int64(o.predictions)
	s.OrigJ += o.origJ
	s.AwareJ += o.awareJ
	s.PredJ += o.predJ
}

// userOutcome is one phone's replay under both pipelines. Transmission
// times go straight into the shard sketches instead of riding here.
type userOutcome struct {
	visits      int
	switches    int
	predictions int
	origJ       float64
	awareJ      float64
	predJ       float64
}

// Fleet replays a fleet-scale browsing trace, one simulated phone per user
// per pipeline, and reports aggregate energy and cell capacity. The
// energy-aware phones run Algorithm 2 end to end: load, wait the interest
// threshold α, predict the reading time with the shared trained GBRT, force
// the radio dormant when the prediction clears the delay-driven threshold,
// and pay the Table 7 prediction cost for every evaluation.
//
// Users are generated on demand from independent per-user random streams
// (trace.Stream) and replayed in fixed-size shards of contiguous user
// ranges, so memory stays O(shards) while populations scale to 100k+. Shard
// accumulators merge in shard order, making the result byte-identical at
// any worker count.
//
// Two replay engines produce the numbers:
//
//   - Untraced runs use precomputed visit templates: each distinct (page,
//     pipeline, radio-start-state) combination is simulated once on a real
//     phone, and every further visit replays the cached load outcome with a
//     closed-form radio walk through the reading window. This is exact up
//     to floating-point association: the load evolution depends only on the
//     template key (the first fetch disarms the inactivity timers at t=0),
//     and between loads the radio follows the deterministic
//     DCH→(T1)→FACH→(T2)→IDLE decay that the cursor mirrors.
//   - Tracing runs (obs enabled) simulate every phone in full so the event
//     stream is complete; they agree with the template engine to
//     floating-point tolerance and are meant for small fleets.
func Fleet(cfg FleetConfig) (*FleetResult, error) {
	rt, err := newFleetRuntime(cfg)
	if err != nil {
		return nil, err
	}
	outs, err := rt.runShards(cfg, 0, FleetShardCount(cfg))
	if err != nil {
		return nil, err
	}
	return FleetFromShards(cfg, outs)
}

// RunFleetShards replays shards [lo, hi) of the fleet and returns their
// accumulators. It is the worker half of the multi-process mode: each worker
// builds its own runtime (template cache, predictor) for its contiguous
// shard range, and the coordinator merges the results with FleetFromShards.
// Because each shard is a pure function of (config, shard index), the merge
// is byte-identical to a single-process run.
func RunFleetShards(cfg FleetConfig, lo, hi int) ([]FleetShardResult, error) {
	rt, err := newFleetRuntime(cfg)
	if err != nil {
		return nil, err
	}
	return rt.runShards(cfg, lo, hi)
}

// newFleetRuntime validates the config and builds the shared read-only
// replay state: the streaming trace, the deployed predictor, the resolved
// radios and channel segmentation.
func newFleetRuntime(cfg FleetConfig) (*fleetRuntime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tcfg := trace.DefaultConfig()
	tcfg.Users = cfg.Users
	tcfg.HoursPerUser = cfg.HoursPerUser
	tcfg.Seed = cfg.Seed
	stream, err := trace.NewStream(tcfg)
	if err != nil {
		return nil, fmt.Errorf("fleet trace: %w", err)
	}
	// The predictor is trained offline on the default collection trace and
	// deployed to every phone — the paper's deployment model.
	pred, err := TrainedPredictor(true)
	if err != nil {
		return nil, err
	}

	pool := stream.Pool()
	pages := make(map[string]*webpage.Page, len(pool))
	for i := range pool {
		pages[pool[i].Name] = pool[i].Page
	}

	radios, err := cfg.fleetRadios()
	if err != nil {
		return nil, err
	}
	sched, err := cfg.fleetChannel()
	if err != nil {
		return nil, err
	}
	adaptive, err := cfg.fleetAdaptive()
	if err != nil {
		return nil, err
	}
	rt := &fleetRuntime{
		stream:   stream,
		pages:    pages,
		pred:     pred,
		params:   policy.DefaultParams(),
		device:   gbrt.DefaultDeviceCost(),
		radios:   radios,
		mixSeed:  cfg.Seed,
		sched:    sched,
		adaptive: adaptive,
		traced:   obs.Default() != nil,
	}
	rt.predVisitJ = rt.device.PredictionEnergyJ(pred.NumTrees())
	rt.acfg = policy.DefaultAdaptiveConfig(rt.params)
	// The folded replay assumes a session-break drain always completes an
	// in-flight forced release (true for every registered backend: the drain
	// spans the whole tail plus a second). A backend violating that falls
	// back to the per-visit engine rather than folding incorrectly.
	rt.folded = !rt.traced && !rt.adaptive && !fleetFoldOff
	for i := range radios {
		if radios[i].tail.ReleaseDelay > radios[i].drain {
			rt.folded = false
		}
	}
	if sched != nil {
		// One constant schedule per segment: a load replayed from a template
		// sees the conditions of the segment its user's channel clock is in
		// at load start, held for the whole load (the epoch approximation;
		// tracing runs shape every transfer against the full schedule).
		rt.segScheds = make([]*channel.Schedule, sched.NumSegments())
		for i := range rt.segScheds {
			cs, err := channel.Constant(fmt.Sprintf("%s#%d", sched.Name(), i), sched.Segment(i).Cond)
			if err != nil {
				return nil, fmt.Errorf("fleet channel: %w", err)
			}
			rt.segScheds[i] = cs
		}
	}
	return rt, nil
}

// runShards replays shards [lo, hi) on the runner pool, one task per shard.
// Each task owns one rng and one visit buffer, reused across its users.
func (rt *fleetRuntime) runShards(cfg FleetConfig, lo, hi int) ([]FleetShardResult, error) {
	total := FleetShardCount(cfg)
	if lo < 0 || hi > total || lo >= hi {
		return nil, fmt.Errorf("fleet: shard range [%d, %d) outside [0, %d)", lo, hi, total)
	}
	var progressMu sync.Mutex
	done := 0
	outs, err := runner.Collect(hi-lo, func(i int) (FleetShardResult, error) {
		sh := lo + i
		out := FleetShardResult{
			Shard:       sh,
			OrigTrans:   stats.NewSketch(fleetSketchBudget),
			AwareTrans:  stats.NewSketch(fleetSketchBudget),
			OrigVisitJ:  stats.NewSketch(fleetSketchBudget),
			AwareVisitJ: stats.NewSketch(fleetSketchBudget),
		}
		shLo := sh * cfg.Users / total
		shHi := (sh + 1) * cfg.Users / total
		rng := rand.New(rand.NewSource(1)) // reseeded per user
		var visitBuf []trace.Visit
		var fs foldState
		for u := shLo; u < shHi; u++ {
			visitBuf = rt.stream.UserVisitsRand(rng, u, visitBuf[:0])
			var o userOutcome
			var err error
			switch {
			case rt.traced:
				o, err = rt.replayUserTraced(u, visitBuf, &out)
			case rt.folded:
				err = rt.replayUserFolded(u, visitBuf, &fs, &out)
			default:
				o, err = rt.replayUserTemplated(u, visitBuf, &out)
			}
			if err != nil {
				return out, fmt.Errorf("fleet user %d: %w", u, err)
			}
			out.fold(o)
		}
		if rt.folded {
			fs.flush(rt, &out)
		}
		if cfg.Progress != nil {
			progressMu.Lock()
			done++
			cfg.Progress(done, hi-lo)
			progressMu.Unlock()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// FleetFromShards merges a complete, shard-ordered set of shard accumulators
// into the fleet result. Counters and energies fold in shard order; the
// per-shard sketches merge in shard order into one summary per pipeline,
// whose centroids (ascending) feed the capacity model. The merge is the same
// whether the shards came from this process, from runner workers, or over
// the multi-process wire — the byte-identity contract of the fleet.
func FleetFromShards(cfg FleetConfig, outs []FleetShardResult) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := FleetShardCount(cfg)
	if len(outs) != total {
		return nil, fmt.Errorf("fleet: got %d shards, want %d", len(outs), total)
	}
	radios, err := cfg.fleetRadios()
	if err != nil {
		return nil, err
	}

	res := &FleetResult{
		Users:      cfg.Users,
		TraceHours: cfg.HoursPerUser,
		Radio:      describeRadios(radios),
		Channel:    cfg.Channel,
		Policy:     cfg.policyName(),
	}
	res.Original.Mode = browser.ModeOriginal
	res.Aware.Mode = browser.ModeEnergyAware
	origTrans := stats.NewSketch(fleetSketchBudget)
	awareTrans := stats.NewSketch(fleetSketchBudget)
	origVisit := stats.NewSketch(fleetSketchBudget)
	awareVisit := stats.NewSketch(fleetSketchBudget)
	for i := range outs {
		o := &outs[i]
		if o.Shard != i {
			return nil, fmt.Errorf("fleet: shard %d out of order at position %d", o.Shard, i)
		}
		res.Visits += int(o.Visits)
		res.Original.EnergyJ += o.OrigJ
		res.Aware.EnergyJ += o.AwareJ
		res.Aware.Switches += int(o.Switches)
		res.Aware.Predictions += int(o.Predictions)
		res.Aware.PredictionEnergyJ += o.PredJ
		origTrans.Merge(o.OrigTrans)
		awareTrans.Merge(o.AwareTrans)
		origVisit.Merge(o.OrigVisitJ)
		awareVisit.Merge(o.AwareVisitJ)
	}
	res.Original.MeanEnergyPerUserJ = res.Original.EnergyJ / float64(cfg.Users)
	res.Aware.MeanEnergyPerUserJ = res.Aware.EnergyJ / float64(cfg.Users)
	if res.Original.EnergyJ > 0 {
		res.EnergySavingPct = (res.Original.EnergyJ - res.Aware.EnergyJ) /
			res.Original.EnergyJ * 100
	}

	ccfg := capacity.DefaultConfig()
	for _, side := range []struct {
		stats  *FleetModeStats
		sketch *stats.Sketch
		visit  *stats.Sketch
	}{{&res.Original, origTrans, origVisit}, {&res.Aware, awareTrans, awareVisit}} {
		var dist capacity.Dist
		for _, c := range side.sketch.Centroids() {
			if err := dist.Add(c.V, c.N); err != nil {
				return nil, err
			}
		}
		// The sketch's mean is exact (compression never touches the running
		// sum), so the reported hold time carries no sketch error.
		side.stats.MeanTransmissionS = side.sketch.Mean()
		supported, err := capacity.SupportedUsersDist(&dist, 2, ccfg)
		if err != nil {
			return nil, err
		}
		side.stats.SupportedAt2Pct = supported
		atFleet, err := capacity.DropPercentAt(cfg.Users, &dist, ccfg)
		if err != nil {
			return nil, err
		}
		side.stats.DropPctAtFleet = atFleet
		side.stats.VisitEnergyP50J = side.visit.Quantile(0.50)
		side.stats.VisitEnergyP95J = side.visit.Quantile(0.95)
		side.stats.VisitEnergyP99J = side.visit.Quantile(0.99)
	}
	if res.Original.SupportedAt2Pct > 0 {
		res.CapacityGainPct = float64(res.Aware.SupportedAt2Pct-res.Original.SupportedAt2Pct) /
			float64(res.Original.SupportedAt2Pct) * 100
	}
	return res, nil
}

// fleetFoldOff disables the counted-multiplicity fold (tests compare the
// folded and per-visit engines through it).
var fleetFoldOff bool

// fleetRuntime is the read-only state shared by every shard.
type fleetRuntime struct {
	stream     *trace.Stream
	pages      map[string]*webpage.Page
	pred       TrainedReadingPredictor
	params     policy.Params
	device     gbrt.DeviceCost
	radios     []fleetRadio
	mixSeed    int64
	predVisitJ float64
	traced     bool
	// folded selects the counted-multiplicity replay (fleet_fold.go): static
	// policy, untraced, and every radio's release completes within a
	// session-break drain.
	folded bool

	// sched is the fleet's channel scenario (nil for a fixed link);
	// segScheds holds one constant schedule per segment for template builds.
	// adaptive switches the energy-aware pipeline to per-user recursive
	// thresholds, configured by acfg.
	sched     *channel.Schedule
	segScheds []*channel.Schedule
	adaptive  bool
	acfg      policy.AdaptiveConfig

	// templates caches one simulated visit per (page, mode, radio, start
	// stage); sync.Map because shards race on first use. Duplicate builds
	// are harmless: the build is deterministic, LoadOrStore keeps one winner.
	templates sync.Map
}

// radioMixDrawTag keys the per-user profile draw inside the trace seed's
// splitmix64 chain ("radio" in hex), decorrelating it from the visit
// streams and from any future per-user assignment.
const radioMixDrawTag = 0x726164696f

// radioFor picks user u's radio. Single-profile fleets skip the draw, so a
// fleet without a mix replays exactly as it did before mixes existed.
func (rt *fleetRuntime) radioFor(u int) *fleetRadio {
	if len(rt.radios) == 1 {
		return &rt.radios[0]
	}
	d := trace.UserDraw(rt.mixSeed, radioMixDrawTag, u)
	for i := range rt.radios {
		if d < rt.radios[i].cum {
			return &rt.radios[i]
		}
	}
	return &rt.radios[len(rt.radios)-1]
}

// tmplKey identifies one distinct visit evolution. start is the tail-stage
// index of the radio at load begin; inactivity-timer remainders don't
// participate because the load's first fetch disarms them at t=0 (a
// RELEASING start is handled as a shifted terminal-stage template, see
// replayUserTemplated). seg is the channel segment the user's channel clock
// is in at load start (-1 when the fleet runs without a channel).
type tmplKey struct {
	page  string
	mode  browser.Mode
	radio string
	start int
	seg   int
}

// visitTemplate is the cached outcome of simulating one visit's load.
type visitTemplate struct {
	transS   float64       // TransmissionTime, seconds
	loadS    float64       // load wall-clock duration, seconds
	radioJ   float64       // radio energy over the load window
	cpuJ     float64       // CPU energy over the load window
	endStage int           // tail-stage index at load end
	endRem   time.Duration // remaining dwell in endStage at load end
	// Policy products (energy-aware templates only): the Table 1 vector,
	// the GBRT prediction over it and Algorithm 2's decision — all pure
	// functions of the template.
	vec      features.Vector
	predS    float64
	switchOn bool
	// fold is the precomputed piecewise-linear reading-walk table the
	// counted-multiplicity replay folds visits through (fleet_fold.go).
	fold *foldPlan
}

func (rt *fleetRuntime) template(fr *fleetRadio, key tmplKey) (*visitTemplate, error) {
	if v, ok := rt.templates.Load(key); ok {
		return v.(*visitTemplate), nil
	}
	t, err := rt.buildTemplate(fr, key)
	if err != nil {
		return nil, err
	}
	actual, _ := rt.templates.LoadOrStore(key, t)
	return actual.(*visitTemplate), nil
}

// buildTemplate simulates the keyed visit once on a real phone: prime the
// radio into the start stage, load the page, and capture the load's energy,
// transmission time and the radio state it leaves behind.
func (rt *fleetRuntime) buildTemplate(fr *fleetRadio, key tmplKey) (*visitTemplate, error) {
	page, ok := rt.pages[key.page]
	if !ok || page == nil {
		return nil, fmt.Errorf("no page body for %s", key.page)
	}
	opts := []SessionOption{WithRadioModel(fr.spec)}
	if key.mode == browser.ModeEnergyAware {
		// In the policy setting the release decision belongs to Algorithm 2,
		// not the engine's own end-of-load dormancy.
		opts = append(opts, WithEngineOptions(browser.WithoutAutoDormancy()))
	}
	if key.seg >= 0 {
		opts = append(opts, WithChannel(rt.segScheds[key.seg]))
	}
	s, err := New(key.mode, opts...)
	if err != nil {
		return nil, err
	}
	tp := &fr.tail
	switch {
	case key.start == tp.TerminalIndex():
		// Fresh phone.
	case key.start >= 0 && key.start < tp.TerminalIndex():
		promoted := false
		s.Radio.RequestActive(func() { promoted = true })
		for !promoted {
			if !s.Clock.Step() {
				return nil, fmt.Errorf("template %v: radio priming stalled", key)
			}
		}
		// Let each inactivity timer fire at its stage boundary, demoting the
		// radio one stage at a time down to the start stage; the fresh timer
		// the last demotion arms is irrelevant to the load (disarmed by the
		// first fetch at t=0).
		for k := 1; k <= key.start; k++ {
			s.Clock.RunFor(tp.Stage(k - 1).Dwell)
		}
	default:
		return nil, fmt.Errorf("template %v: unsupported start stage", key)
	}
	loadFrom := s.Clock.Now()
	res, err := s.LoadToEnd(page)
	if err != nil {
		return nil, fmt.Errorf("template %v: %w", key, err)
	}
	now := s.Clock.Now()
	endState := s.Radio.State()
	t := &visitTemplate{
		transS:   res.TransmissionTime.Seconds(),
		loadS:    (now - loadFrom).Seconds(),
		radioJ:   res.RadioEnergyJ,
		cpuJ:     res.CPUEnergyJ,
		endStage: tp.StageIndexOf(endState),
	}
	switch {
	case t.endStage < 0:
		return nil, fmt.Errorf("template %v: load ended in unexpected radio state %s",
			key, s.Radio.StateName(endState))
	case t.endStage == tp.TerminalIndex():
		// No pending timers.
	default:
		at, armed := s.Radio.NextDemotion()
		if !armed {
			return nil, fmt.Errorf("template %v: no demotion armed in %s",
				key, s.Radio.StateName(endState))
		}
		t.endRem = at - now
	}
	if key.mode == browser.ModeEnergyAware {
		vec, err := features.FromResult(res)
		if err != nil {
			return nil, err
		}
		predS, err := rt.pred.PredictSeconds(vec)
		if err != nil {
			return nil, err
		}
		t.vec = vec
		t.predS = predS
		t.switchOn = policy.Evaluate(time.Duration(predS*float64(time.Second)), rt.params).Switch
	}
	t.fold = buildFoldPlan(t, key.mode, fr, rt.params.Alpha)
	return t, nil
}

// cursorReleasing marks a cursor completing a forced release; it is not a
// tail-stage index, so it lives below the valid range.
const cursorReleasing = -1

// phoneCursor is the analytic mirror of an idle phone's radio: the current
// tail-stage index (cursorReleasing during a forced release, TerminalIndex
// at rest) plus the remaining time before its pending timer fires. Between
// loads the radio only ever decays stage by stage down the backend's tail
// (UMTS DCH→(T1)→FACH→(T2)→IDLE, LTE CONNECTED→DRX→IDLE, …) or completes
// a forced release, so this pair fully determines the walk.
type phoneCursor struct {
	stage int
	rem   time.Duration
}

// advance walks the cursor d forward and returns the radio energy spent.
// A timer expiring exactly at the window boundary fires, matching
// simtime.Clock.RunFor, which processes events due at the boundary.
func (pc *phoneCursor) advance(d time.Duration, tp *rrc.TailProfile) float64 {
	var j float64
	terminal := tp.TerminalIndex()
	for d > 0 {
		switch {
		case pc.stage == cursorReleasing:
			if d < pc.rem {
				j += tp.ReleasePowerW * d.Seconds()
				pc.rem -= d
				d = 0
			} else {
				j += tp.ReleasePowerW * pc.rem.Seconds()
				d -= pc.rem
				pc.stage = terminal
				pc.rem = 0
			}
		case pc.stage >= terminal:
			j += tp.Terminal().PowerW * d.Seconds()
			d = 0
		default:
			st := tp.Stage(pc.stage)
			if d < pc.rem {
				j += st.PowerW * d.Seconds()
				pc.rem -= d
				d = 0
			} else {
				j += st.PowerW * pc.rem.Seconds()
				d -= pc.rem
				pc.stage++
				if pc.stage < terminal {
					pc.rem = tp.Stage(pc.stage).Dwell
				} else {
					pc.rem = 0
				}
			}
		}
	}
	return j
}

// forceIdle mirrors RadioModel.ForceIdle for an idle phone (no transfer in
// flight, no waiters — always the case between loads): when already at the
// terminal stage or releasing it is a successful no-op; otherwise the
// release signaling lump is charged and the radio spends ReleaseDelay in
// the releasing state. Every branch reports success, exactly as ForceIdle
// returns nil in all of them.
func (pc *phoneCursor) forceIdle(tp *rrc.TailProfile) float64 {
	if pc.stage == cursorReleasing || pc.stage == tp.TerminalIndex() {
		return 0
	}
	pc.stage = cursorReleasing
	pc.rem = tp.ReleaseDelay
	return tp.ReleaseLumpJ
}

// sessionCursor snapshots a live phone's radio into an analytic cursor —
// the tail stage it sits in and the remaining dwell before its pending
// demotion. The traced adaptive path advances a copy of it to price the
// counterfactual "had the radio been left to its timers" window. States
// outside the tail (mid-release) map to the terminal stage, the
// conservative floor.
func sessionCursor(s *Session, tp *rrc.TailProfile) phoneCursor {
	stage := tp.StageIndexOf(s.Radio.State())
	if stage < 0 || stage >= tp.TerminalIndex() {
		return phoneCursor{stage: tp.TerminalIndex()}
	}
	pc := phoneCursor{stage: stage}
	if at, armed := s.Radio.NextDemotion(); armed {
		pc.rem = at - s.Clock.Now()
	} else {
		pc.rem = tp.Stage(stage).Dwell
	}
	return pc
}

// replayUserTemplated replays one user's visits through the template cache
// and the analytic radio cursor. No per-visit simulation, no per-visit
// allocation beyond first-touch template builds and histogram growth.
//
// With a channel configured, a per-user channel clock tracks where in the
// schedule the user's browsing has reached: it selects the segment each load
// replays under (the template key's seg, the epoch approximation) and
// advances by the original pipeline's load duration plus the reading window
// — decision-independent, so both pipelines browse the same channel and the
// energy-aware policy cannot shift its own conditions by releasing.
func (rt *fleetRuntime) replayUserTemplated(u int, visits []trace.Visit, shard *FleetShardResult) (userOutcome, error) {
	var out userOutcome
	if len(visits) == 0 {
		return out, nil
	}
	fr := rt.radioFor(u)
	tp := &fr.tail
	alpha := rt.params.Alpha
	orig := phoneCursor{stage: tp.TerminalIndex()}
	aware := phoneCursor{stage: tp.TerminalIndex()}
	var ad *policy.Adaptive
	if rt.adaptive {
		var err error
		if ad, err = policy.NewAdaptive(rt.acfg, fr.tail); err != nil {
			return out, err
		}
	}
	var chT time.Duration
	session := visits[0].Session
	for i := range visits {
		v := &visits[i]
		if v.Session != session {
			// Session breaks are minutes apart — let both radios idle out.
			out.origJ += orig.advance(fr.drain, tp)
			out.awareJ += aware.advance(fr.drain, tp)
			chT += fr.drain
			session = v.Session
		}
		reading := time.Duration(v.ReadingSeconds * float64(time.Second))
		seg := -1
		if rt.sched != nil {
			seg = rt.sched.SegmentIndexAt(chT)
		}

		// Original pipeline: load, then sit through the reading window on
		// operator timers. A RELEASING start never happens here (the stock
		// pipeline never forces dormancy), but the shift handles it anyway.
		origFrom := out.origJ
		loadS, err := rt.playLoad(fr, &orig, browser.ModeOriginal, v.Page, seg, &out.origJ, shard.OrigTrans, nil)
		if err != nil {
			return out, err
		}
		out.origJ += orig.advance(reading, tp)
		shard.OrigVisitJ.Observe(out.origJ-origFrom, 1)

		// Energy-aware pipeline: Algorithm 2.
		awareFrom := out.awareJ
		var predS float64
		havePred := false
		if _, err := rt.playLoad(fr, &aware, browser.ModeEnergyAware, v.Page, seg, &out.awareJ, shard.AwareTrans, func(t *visitTemplate, delta time.Duration) error {
			if delta == 0 {
				predS = t.predS
				havePred = true
				return nil
			}
			// A delayed (RELEASING-start) load stretches the measured
			// transmission time, which is a predictor feature — re-predict.
			vec := t.vec
			vec[features.TransmissionTime] += delta.Seconds()
			var err error
			predS, err = rt.pred.PredictSeconds(vec)
			havePred = err == nil
			return err
		}); err != nil {
			return out, err
		}
		if reading <= alpha {
			// The user clicked away before the interest threshold — no
			// prediction, timers handle the short gap.
			out.awareJ += aware.advance(reading, tp)
		} else {
			out.awareJ += aware.advance(alpha, tp)
			if !havePred {
				return out, fmt.Errorf("no prediction for %s", v.Page)
			}
			out.predictions++
			out.predJ += rt.predVisitJ
			predD := time.Duration(predS * float64(time.Second))
			var dec policy.Decision
			if ad != nil {
				dec = ad.Decide(predD)
			} else {
				dec = policy.Evaluate(predD, rt.params)
			}
			window := reading - alpha
			if dec.Switch {
				held := aware // the stage the timers would have reached
				lumpJ := aware.forceIdle(tp)
				out.awareJ += lumpJ
				out.switches++
				winJ := aware.advance(window, tp)
				out.awareJ += winJ
				if ad != nil {
					held.advance(window, tp)
					ad.ObserveRelease(lumpJ+winJ, window.Seconds(), held.stage)
				}
			} else {
				winJ := aware.advance(window, tp)
				out.awareJ += winJ
				if ad != nil {
					ad.ObserveHold(winJ, window.Seconds())
				}
			}
		}
		visitJ := out.awareJ - awareFrom
		if reading > alpha {
			// out.predJ joins out.awareJ once per user; per visit the
			// prediction cost belongs to the visit that ran the predictor.
			visitJ += rt.predVisitJ
		}
		shard.AwareVisitJ.Observe(visitJ, 1)
		chT += time.Duration(loadS*float64(time.Second)) + reading
		out.visits++
	}
	out.awareJ += out.predJ
	return out, nil
}

// playLoad replays one load on the cursor: resolve the template for the
// cursor's stage (a RELEASING start reuses the terminal-stage template
// shifted by the remaining release time δ — the queued active request waits
// out the release, then evolves exactly as from idle), charge its energy,
// file its transmission time, and leave the cursor in the load's end stage.
// seg is the channel segment the load runs under (-1 without a channel).
// onPredict (aware loads) receives the template and the shift. The return is
// the load's wall-clock duration in seconds, shift included.
func (rt *fleetRuntime) playLoad(fr *fleetRadio, pc *phoneCursor, mode browser.Mode, page string,
	seg int, energyJ *float64, hist *stats.Sketch,
	onPredict func(*visitTemplate, time.Duration) error) (float64, error) {

	tp := &fr.tail
	var delta time.Duration
	start := pc.stage
	if start == cursorReleasing {
		delta = pc.rem
		start = tp.TerminalIndex()
	}
	t, err := rt.template(fr, tmplKey{page: page, mode: mode, radio: fr.name, start: start, seg: seg})
	if err != nil {
		return 0, err
	}
	transS := t.transS
	*energyJ += t.radioJ + t.cpuJ
	if delta > 0 {
		*energyJ += tp.ReleasePowerW * delta.Seconds()
		transS += delta.Seconds()
	}
	hist.Observe(transS, 1)
	pc.stage = t.endStage
	pc.rem = t.endRem
	if onPredict != nil {
		if err := onPredict(t, delta); err != nil {
			return 0, err
		}
	}
	return t.loadS + delta.Seconds(), nil
}

// replayUserTraced walks one user's visit sequence on two fully simulated
// persistent phones — one per pipeline — so radio state carries across the
// visits of a session exactly as it would on a real handset, and every
// transition, transfer and policy decision lands in the trace. Used when
// obs tracing is enabled; agrees with the template engine to floating-point
// tolerance.
func (rt *fleetRuntime) replayUserTraced(user int, visits []trace.Visit, shard *FleetShardResult) (userOutcome, error) {
	out := userOutcome{}
	if len(visits) == 0 {
		return out, nil
	}

	fr := rt.radioFor(user)
	origOpts := []SessionOption{
		WithRadioModel(fr.spec),
		WithObsKey(fmt.Sprintf("fleet/u%03d/original", user)),
	}
	awareOpts := []SessionOption{
		WithRadioModel(fr.spec),
		WithObsKey(fmt.Sprintf("fleet/u%03d/energy-aware", user)),
		WithEngineOptions(browser.WithoutAutoDormancy()),
	}
	if rt.sched != nil {
		origOpts = append(origOpts, WithChannel(rt.sched))
		awareOpts = append(awareOpts, WithChannel(rt.sched))
	}
	orig, err := New(browser.ModeOriginal, origOpts...)
	if err != nil {
		return out, err
	}
	aware, err := New(browser.ModeEnergyAware, awareOpts...)
	if err != nil {
		return out, err
	}
	var ad *policy.Adaptive
	if rt.adaptive {
		if ad, err = policy.NewAdaptive(rt.acfg, fr.tail); err != nil {
			return out, err
		}
	}

	alpha := rt.params.Alpha
	var origCPUJ, awareCPUJ float64
	session := visits[0].Session
	for i := range visits {
		v := &visits[i]
		page, ok := rt.pages[v.Page]
		if !ok || page == nil {
			return out, fmt.Errorf("no page body for %s", v.Page)
		}
		if v.Session != session {
			orig.Clock.RunFor(fr.drain)
			aware.Clock.RunFor(fr.drain)
			session = v.Session
		}
		reading := time.Duration(v.ReadingSeconds * float64(time.Second))

		origFromJ := orig.Radio.EnergyJ()
		origRes, err := orig.LoadToEnd(page)
		if err != nil {
			return out, fmt.Errorf("original %s: %w", v.Page, err)
		}
		origCPUJ += origRes.CPUEnergyJ
		shard.OrigTrans.Observe(origRes.TransmissionTime.Seconds(), 1)
		orig.Clock.RunFor(reading)
		shard.OrigVisitJ.Observe(orig.Radio.EnergyJ()-origFromJ+origRes.CPUEnergyJ, 1)

		awareFromJ := aware.Radio.EnergyJ()
		awareRes, err := aware.LoadToEnd(page)
		if err != nil {
			return out, fmt.Errorf("aware %s: %w", v.Page, err)
		}
		awareCPUJ += awareRes.CPUEnergyJ
		shard.AwareTrans.Observe(awareRes.TransmissionTime.Seconds(), 1)
		if reading <= alpha {
			aware.Clock.RunFor(reading)
		} else {
			aware.Clock.RunFor(alpha)
			vec, err := features.FromResult(awareRes)
			if err != nil {
				return out, err
			}
			predS, err := rt.pred.PredictSeconds(vec)
			if err != nil {
				return out, err
			}
			out.predictions++
			out.predJ += rt.predVisitJ
			var decision policy.Decision
			if ad != nil {
				decision = ad.Decide(time.Duration(predS * float64(time.Second)))
			} else {
				decision = policy.Evaluate(time.Duration(predS*float64(time.Second)), rt.params)
			}
			if aware.Obs != nil {
				aware.Obs.Record(aware.Clock.Now(), obs.Event{
					Kind:   obs.KindPolicyDecision,
					URL:    v.Page,
					Detail: decision.Reason,
					DurNS:  int64(decision.Predicted),
				})
			}
			window := reading - alpha
			winFromJ := aware.Radio.EnergyJ()
			held := sessionCursor(aware, &fr.tail)
			released := false
			if decision.Switch {
				// A busy radio (ErrBusy) degrades to the inactivity timers,
				// exactly as on a real handset; only a successful release
				// counts as a switch.
				if err := aware.Engine.ForceDormantNow(); err == nil {
					out.switches++
					released = true
				}
			}
			aware.Clock.RunFor(window)
			if ad != nil {
				winJ := aware.Radio.EnergyJ() - winFromJ
				if released {
					held.advance(window, &fr.tail)
					ad.ObserveRelease(winJ, window.Seconds(), held.stage)
				} else {
					ad.ObserveHold(winJ, window.Seconds())
				}
			}
		}
		awareVisitJ := aware.Radio.EnergyJ() - awareFromJ + awareRes.CPUEnergyJ
		if reading > alpha {
			awareVisitJ += rt.predVisitJ
		}
		shard.AwareVisitJ.Observe(awareVisitJ, 1)
		out.visits++
	}
	out.origJ = orig.Radio.EnergyJ() + origCPUJ
	out.awareJ = aware.Radio.EnergyJ() + awareCPUJ + out.predJ
	return out, nil
}

// TrainedReadingPredictor is the slice of the predictor API Algorithm 2
// needs; the fleet replay takes it as an interface so tests can stub the
// model. Predictions stay per-visit rather than batched: each feature
// vector comes from the load (or load template) just replayed, and the
// release decision feeds back into the radio state of the following visits,
// so there is no batch to precompute.
type TrainedReadingPredictor interface {
	PredictSeconds(v features.Vector) (float64, error)
	NumTrees() int
}
