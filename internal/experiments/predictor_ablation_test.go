package experiments

import "testing"

// TestPredictorAblationShape asserts the design-choice story:
//
//   - GBRT beats the linear baseline at both thresholds (Table 4's
//     correlations say linear models must fail; the trees recover the
//     feature interactions);
//   - depth-starved trees (J = 2 stumps) lose to the default J = 8,
//     because the latent structure is interaction-based;
//   - the interest threshold strictly helps (alpha = 0 is the worst).
func TestPredictorAblationShape(t *testing.T) {
	res, err := PredictorAblation()
	if err != nil {
		t.Fatalf("PredictorAblation: %v", err)
	}
	if len(res.Baselines) != 3 {
		t.Fatalf("baselines = %d rows, want GBRT + linear + per-user", len(res.Baselines))
	}
	gbrtRow, linRow, perUserRow := res.Baselines[0], res.Baselines[1], res.Baselines[2]
	if perUserRow.TpPct < gbrtRow.TpPct-12 {
		t.Errorf("per-user models (%.1f%%) collapsed vs global (%.1f%%)", perUserRow.TpPct, gbrtRow.TpPct)
	}
	if res.PersonalModels == 0 {
		t.Error("no personal models fitted")
	}
	// Importance must be a distribution and concentrate on the features the
	// latent model actually uses (size/figures/height), not leak onto ones
	// it ignores.
	sum := 0.0
	for _, v := range res.Importance {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("importance sums to %.3f, want 1", sum)
	}
	if gbrtRow.TpPct <= linRow.TpPct {
		t.Errorf("GBRT Tp %.1f%% not above linear %.1f%%", gbrtRow.TpPct, linRow.TpPct)
	}
	if gbrtRow.TdPct <= linRow.TdPct {
		t.Errorf("GBRT Td %.1f%% not above linear %.1f%%", gbrtRow.TdPct, linRow.TdPct)
	}

	var stump, deep PredictorAblationRow
	for _, r := range res.Leaves {
		switch r.Name {
		case "J = 2 leaves":
			stump = r
		case "J = 8 leaves":
			deep = r
		}
	}
	if stump.TpPct >= deep.TpPct {
		t.Errorf("stumps (%.1f%%) not below J=8 trees (%.1f%%) — interactions should need depth",
			stump.TpPct, deep.TpPct)
	}

	var alpha0, alpha2 PredictorAblationRow
	for _, r := range res.Alpha {
		switch r.Name {
		case "alpha = 0 s":
			alpha0 = r
		case "alpha = 2 s":
			alpha2 = r
		}
	}
	if alpha0.TpPct >= alpha2.TpPct {
		t.Errorf("alpha=0 (%.1f%%) not below alpha=2 (%.1f%%)", alpha0.TpPct, alpha2.TpPct)
	}

	// More trees never hurt badly: the largest forest is within a point of
	// the best.
	best := 0.0
	for _, r := range res.Trees {
		if r.TpPct > best {
			best = r.TpPct
		}
	}
	last := res.Trees[len(res.Trees)-1]
	if last.TpPct < best-1 {
		t.Errorf("largest forest (%.1f%%) more than a point below best (%.1f%%)", last.TpPct, best)
	}
}
