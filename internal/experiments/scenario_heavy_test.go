//go:build scenario

// Heavy scenario suite, excluded from `go test ./...` by the build tag and
// run by the scenario-smoke CI job:
//
//	go test -race -tags scenario -run TestScenarioHeavy ./internal/experiments/
//
// These runs trade minutes of wall clock for coverage the tier-1 tests
// cannot afford: a full simulated phone browsing through many fading cycles,
// and a 10k-user mixed-scenario fleet at the population scale the capacity
// model is meant for.
package experiments

import (
	"testing"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/channel"
	"eabrowse/internal/policy"
	"eabrowse/internal/rrc"
)

// TestScenarioHeavyLongFadingRun drives one fully simulated phone through
// dozens of fading cycles and checks the long-horizon invariants the short
// tests only sample: energy strictly accumulates, the radio always returns
// to its terminal state between sessions, and an identical second run is
// bit-identical.
func TestScenarioHeavyLongFadingRun(t *testing.T) {
	sched, err := channel.ScenarioSchedule("fading")
	if err != nil {
		t.Fatal(err)
	}
	page, err := MCNNPage()
	if err != nil {
		t.Fatal(err)
	}
	run := func() (float64, time.Duration) {
		s, err := New(browser.ModeEnergyAware, WithChannel(sched))
		if err != nil {
			t.Fatal(err)
		}
		tail := DefaultRadioSpec().Tail()
		lastJ := -1.0
		for i := 0; i < 40; i++ {
			if _, err := s.LoadToEnd(page); err != nil {
				t.Fatalf("load %d: %v", i, err)
			}
			// A full tail drain plus slack: the radio must be back at its
			// terminal stage before the next session starts.
			s.Clock.RunFor(tail.TotalDwell() + 5*time.Second)
			j := s.Radio.EnergyJ()
			if !(j > lastJ) {
				t.Fatalf("energy not strictly increasing at load %d: %v then %v", i, lastJ, j)
			}
			lastJ = j
			if got, want := s.Radio.State(), rrc.StateIdle; got != want {
				t.Fatalf("load %d: radio in state %v after drain, want %v", i, got, want)
			}
		}
		return s.Radio.EnergyJ(), s.Clock.Now()
	}
	j1, t1 := run()
	j2, t2 := run()
	if j1 != j2 || t1 != t2 {
		t.Fatalf("long fading runs diverge: %.9f J/%v vs %.9f J/%v", j1, t1, j2, t2)
	}
}

// TestScenarioHeavyMixedFleet replays a 10k-user mixed-RAN fleet through a
// channel scenario with the adaptive policy — the full stack at population
// scale. The energy-aware pipeline must still win, and the capacity model
// must report a coherent population.
func TestScenarioHeavyMixedFleet(t *testing.T) {
	cfg := FleetConfig{
		Users:        10_000,
		HoursPerUser: 0.05,
		Seed:         20130709,
		RadioMix:     "umts:0.5,lte:0.3,nr:0.2",
		Channel:      "congestion-ramp",
		Policy:       "adaptive",
	}
	res, err := Fleet(cfg)
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if res.Users != cfg.Users || res.Visits == 0 {
		t.Fatalf("fleet replayed %d users / %d visits", res.Users, res.Visits)
	}
	if !(res.Aware.EnergyJ < res.Original.EnergyJ) {
		t.Errorf("adaptive pipeline did not save energy at scale: aware %.0f J, original %.0f J",
			res.Aware.EnergyJ, res.Original.EnergyJ)
	}
	if res.Aware.Switches == 0 || res.Aware.Predictions == 0 {
		t.Errorf("policy never engaged: %d switches, %d predictions",
			res.Aware.Switches, res.Aware.Predictions)
	}
	if res.Original.SupportedAt2Pct <= 0 || res.Aware.SupportedAt2Pct < res.Original.SupportedAt2Pct {
		t.Errorf("capacity incoherent: original supports %d, aware %d",
			res.Original.SupportedAt2Pct, res.Aware.SupportedAt2Pct)
	}
}

// TestScenarioHeavyAdaptiveConvergence runs the adaptive estimator over a
// long synthetic observation stream and checks it converges into its clamp
// band and stays there — no drift, no oscillation blow-up.
func TestScenarioHeavyAdaptiveConvergence(t *testing.T) {
	p := policy.DefaultParams()
	for _, profile := range rrc.Profiles() {
		spec, err := rrc.ProfileSpec(profile)
		if err != nil {
			t.Fatal(err)
		}
		tail := spec.Tail()
		a, err := policy.NewAdaptive(policy.DefaultAdaptiveConfig(p), tail)
		if err != nil {
			t.Fatal(err)
		}
		cfg := policy.DefaultAdaptiveConfig(p)
		for i := 0; i < 100_000; i++ {
			switch i % 3 {
			case 0:
				a.ObserveRelease(float64(i%23)+1, float64(i%11)+5, tail.TerminalIndex())
			default:
				a.ObserveHold(float64(i%17)+2, float64(i%13)+4)
			}
			if th := a.Threshold(); th < cfg.Floor || th > cfg.Ceil {
				t.Fatalf("%s: threshold %v escaped clamp [%v, %v] at step %d",
					profile, th, cfg.Floor, cfg.Ceil, i)
			}
		}
	}
}
