package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/energy"
	"eabrowse/internal/runner"
)

// Fig9Result holds the two sampled power traces of loading the espn-like
// page (original vs. energy-aware) plus the landmark times the paper calls
// out in the Fig. 9 discussion.
type Fig9Result struct {
	Original           []energy.Sample
	Aware              []energy.Sample
	OrigTransmissionS  float64
	AwareTransmissionS float64
	AwareDormantS      float64
}

// Fig9 reproduces Fig. 9: total (radio + CPU) power sampled at 0.25 s while
// loading espn.go.com/sports, then through a 20-second reading window. The
// energy-aware trace must drop to near-idle shortly after its transmission
// ends; the original keeps burning FACH power.
func Fig9() (*Fig9Result, error) {
	page, err := ESPNPage()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
		s, err := New(mode, WithObsKey("fig9/"+mode.String()))
		if err != nil {
			return nil, err
		}
		meter, err := energy.NewMeter(s.Clock, energy.DefaultInterval,
			s.Radio.RadioPower, s.Engine.CPUPower)
		if err != nil {
			return nil, err
		}
		meter.Start()
		r, err := s.LoadToEnd(page)
		if err != nil {
			return nil, err
		}
		s.Clock.RunFor(20 * time.Second)
		meter.Stop()
		switch mode {
		case browser.ModeOriginal:
			res.Original = meter.Samples()
			res.OrigTransmissionS = r.TransmissionTime.Seconds()
		case browser.ModeEnergyAware:
			res.Aware = meter.Samples()
			res.AwareTransmissionS = r.TransmissionTime.Seconds()
			res.AwareDormantS = r.DormantAt.Seconds()
		}
	}
	return res, nil
}

// Fig12Result carries the intermediate/final display timings of the espn
// page (the paper shows screenshots in Fig. 12/13; the measurable content is
// when each display appears).
type Fig12Result struct {
	OrigFirstDisplayS  float64
	AwareFirstDisplayS float64
	FirstDisplayGainS  float64
	OrigFinalDisplayS  float64
	AwareFinalDisplayS float64
	FinalDisplayGainS  float64
}

// Fig12 reproduces the Fig. 12/13 timings: the energy-aware simplified
// intermediate display appears much earlier (paper: 7 s vs. 17.6 s) and the
// final display somewhat earlier (28.6 s vs. 34.5 s).
func Fig12() (*Fig12Result, error) {
	page, err := ESPNPage()
	if err != nil {
		return nil, err
	}
	// The two pipelines run on independent phones — load them concurrently.
	modes := []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware}
	outs, err := runner.Collect(len(modes), func(i int) (*LoadOutcome, error) {
		return LoadPage(page, modes[i], 0)
	})
	if err != nil {
		return nil, err
	}
	orig, aware := outs[0], outs[1]
	res := &Fig12Result{
		OrigFirstDisplayS:  orig.Result.FirstDisplayAt.Seconds(),
		AwareFirstDisplayS: aware.Result.FirstDisplayAt.Seconds(),
		OrigFinalDisplayS:  orig.Result.FinalDisplayAt.Seconds(),
		AwareFinalDisplayS: aware.Result.FinalDisplayAt.Seconds(),
	}
	res.FirstDisplayGainS = res.OrigFirstDisplayS - res.AwareFirstDisplayS
	res.FinalDisplayGainS = res.OrigFinalDisplayS - res.AwareFinalDisplayS
	if res.AwareFirstDisplayS == 0 {
		return nil, fmt.Errorf("fig12: energy-aware pipeline drew no intermediate display")
	}
	return res, nil
}

// Fig14Result is the average screen display time comparison over both
// benchmarks (Fig. 14).
type Fig14Result struct {
	Mobile *BenchComparison
	Full   *BenchComparison
}

// Fig14 reproduces Fig. 14: first (intermediate) and final display times
// averaged over the mobile and full benchmarks. The paper reports the
// energy-aware approach cutting the full benchmark's first display by 45.5%
// and its final display by 16.8%; on mobile pages it draws only the final
// display, roughly when the original draws its intermediate one.
func Fig14() (*Fig14Result, error) {
	mobile, err := MobilePages()
	if err != nil {
		return nil, err
	}
	full, err := FullPages()
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{}
	if res.Mobile, err = ComparePagesTraced("fig14/mobile", "mobile benchmark", mobile, 0); err != nil {
		return nil, err
	}
	if res.Full, err = ComparePagesTraced("fig14/full", "full benchmark", full, 0); err != nil {
		return nil, err
	}
	return res, nil
}
