package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/faults"
	"eabrowse/internal/runner"
	"eabrowse/internal/webpage"
)

// The chaos sweep is the regression guard for the fault-hardening layer: it
// loads both benchmarks under increasingly hostile network conditions and
// checks that the energy-aware pipeline degrades instead of hanging. The
// paper's evaluation ran on a live T-Mobile UMTS network; this experiment
// recreates that environment's misbehaviour — loss-driven throughput
// collapse, stalls, dead connections, flaky RIL — deterministically, so
// "every load completes, merely degraded" stays a measured property.

// DefaultChaosProfile is the background impairment mix applied at every
// point of the sweep (the loss rate is the swept variable on top of it).
func DefaultChaosProfile() faults.Config {
	return faults.Config{
		Seed:                1,
		RTTJitter:           200 * time.Millisecond,
		StallRate:           0.05,
		StallMin:            1 * time.Second,
		StallMax:            8 * time.Second,
		FailRate:            0.02,
		FACHCongestionRate:  0.10,
		FACHCongestionDelay: 2 * time.Second,
		RILTimeoutRate:      0.05,
		RILErrorRate:        0.02,
	}
}

// ChaosReadingTime is the reading window simulated after each load, so the
// energy numbers capture the dormancy benefit (as in Fig. 10).
const ChaosReadingTime = 20 * time.Second

// ChaosModeStats aggregates one pipeline's behaviour over all pages at one
// loss rate.
type ChaosModeStats struct {
	Mode browser.Mode
	// Completed counts loads that reached the final display; Degraded the
	// subset that finished with reduced fidelity (abandoned objects or a
	// failed fast dormancy).
	Completed int
	Degraded  int
	// EnergyJ is the mean radio+CPU energy per load including the reading
	// window; LoadS the mean time to the final display.
	EnergyJ float64
	LoadS   float64
	// Retry/failure tallies summed over all loads.
	FetchRetries     int
	LinkRetries      int
	FailedObjects    int
	FailedTransfers  int
	DormancyFailures int
}

// ChaosPoint is one loss rate of the sweep.
type ChaosPoint struct {
	LossPct  float64
	Original ChaosModeStats
	Aware    ChaosModeStats
}

// EnergySavingPct is the energy-aware saving at this loss rate.
func (p *ChaosPoint) EnergySavingPct() float64 {
	return savingPct(p.Original.EnergyJ, p.Aware.EnergyJ)
}

// ChaosResult is the whole sweep.
type ChaosResult struct {
	Seed   int64
	Pages  int
	Points []ChaosPoint
}

// chaosLossGrid returns the swept loss rates: the canonical grid clipped to
// maxLoss, always including 0 and maxLoss itself.
func chaosLossGrid(maxLoss float64) []float64 {
	canonical := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.30}
	grid := make([]float64, 0, len(canonical)+1)
	for _, p := range canonical {
		if p < maxLoss {
			grid = append(grid, p)
		}
	}
	return append(grid, maxLoss)
}

// NewFaultySession builds a phone whose link and RIL daemon are impaired by
// the given fault config; the engine routes dormancy through the RIL, so the
// whole Section 4.4 path is exercised under impairment.
//
// Deprecated: use New with WithFaultInjector.
func NewFaultySession(mode browser.Mode, cfg faults.Config, opts ...browser.Option) (*Session, error) {
	return New(mode, WithFaultInjector(cfg), WithEngineOptions(opts...))
}

// ChaosSweep runs the chaos experiment: both benchmarks, both pipelines, at
// every loss rate of the grid up to maxLoss, on top of the given background
// profile. Everything is seeded, so two sweeps with equal inputs are
// byte-identical.
func ChaosSweep(profile faults.Config, maxLoss float64) (*ChaosResult, error) {
	if maxLoss < 0 || maxLoss >= 1 {
		return nil, fmt.Errorf("experiments: max loss %v outside [0, 1)", maxLoss)
	}
	pages, err := BenchmarkPages()
	if err != nil {
		return nil, err
	}

	res := &ChaosResult{Seed: profile.Seed, Pages: len(pages)}
	for li, loss := range chaosLossGrid(maxLoss) {
		point := ChaosPoint{LossPct: loss * 100}
		for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
			stats, err := chaosRunMode(mode, pages, profile, loss, li)
			if err != nil {
				return nil, fmt.Errorf("loss %.0f%% (%v): %w", loss*100, mode, err)
			}
			if mode == browser.ModeOriginal {
				point.Original = *stats
			} else {
				point.Aware = *stats
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// chaosPageOutcome is one page's contribution to a mode's stats; loads run
// in parallel and outcomes are aggregated in page order, so the averages are
// bit-identical at any worker count.
type chaosPageOutcome struct {
	degraded        bool
	energyJ         float64
	loadS           float64
	fetchRetries    int
	linkRetries     int
	failedObjects   int
	failedTransfers int
	dormancyFailed  bool
}

func chaosRunMode(mode browser.Mode, pages []*webpage.Page, profile faults.Config,
	loss float64, lossIdx int) (*ChaosModeStats, error) {
	outcomes, err := runner.Collect(len(pages), func(pi int) (chaosPageOutcome, error) {
		page := pages[pi]
		cfg := profile
		cfg.LossRate = loss
		// One independent, reproducible fault stream per (loss, mode, page).
		cfg.Seed = profile.Seed + int64(lossIdx)*10_000 + int64(mode)*1_000 + int64(pi)
		s, err := New(mode, WithFaultInjector(cfg),
			WithObsKey(fmt.Sprintf("chaos/L%d/%s/%s", lossIdx, mode, page.Name)))
		if err != nil {
			return chaosPageOutcome{}, err
		}
		r, err := s.LoadToEnd(page)
		if err != nil {
			return chaosPageOutcome{}, fmt.Errorf("page %s: %w", page.Name, err)
		}
		s.Clock.RunFor(ChaosReadingTime)
		return chaosPageOutcome{
			degraded:        r.Degraded(),
			energyJ:         s.Radio.EnergyJ() + r.CPUEnergyJ,
			loadS:           r.FinalDisplayAt.Seconds(),
			fetchRetries:    r.FetchRetries,
			linkRetries:     r.LinkRetries,
			failedObjects:   r.FailedObjects,
			failedTransfers: r.FailedTransfers,
			dormancyFailed:  r.DormancyFailed,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	stats := &ChaosModeStats{Mode: mode}
	for _, o := range outcomes {
		stats.Completed++
		if o.degraded {
			stats.Degraded++
		}
		stats.EnergyJ += o.energyJ
		stats.LoadS += o.loadS
		stats.FetchRetries += o.fetchRetries
		stats.LinkRetries += o.linkRetries
		stats.FailedObjects += o.failedObjects
		stats.FailedTransfers += o.failedTransfers
		if o.dormancyFailed {
			stats.DormancyFailures++
		}
	}
	n := float64(len(pages))
	stats.EnergyJ /= n
	stats.LoadS /= n
	return stats, nil
}
