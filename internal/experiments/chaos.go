package experiments

import (
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/faults"
	"eabrowse/internal/netsim"
	"eabrowse/internal/ril"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// The chaos sweep is the regression guard for the fault-hardening layer: it
// loads both benchmarks under increasingly hostile network conditions and
// checks that the energy-aware pipeline degrades instead of hanging. The
// paper's evaluation ran on a live T-Mobile UMTS network; this experiment
// recreates that environment's misbehaviour — loss-driven throughput
// collapse, stalls, dead connections, flaky RIL — deterministically, so
// "every load completes, merely degraded" stays a measured property.

// DefaultChaosProfile is the background impairment mix applied at every
// point of the sweep (the loss rate is the swept variable on top of it).
func DefaultChaosProfile() faults.Config {
	return faults.Config{
		Seed:                1,
		RTTJitter:           200 * time.Millisecond,
		StallRate:           0.05,
		StallMin:            1 * time.Second,
		StallMax:            8 * time.Second,
		FailRate:            0.02,
		FACHCongestionRate:  0.10,
		FACHCongestionDelay: 2 * time.Second,
		RILTimeoutRate:      0.05,
		RILErrorRate:        0.02,
	}
}

// ChaosReadingTime is the reading window simulated after each load, so the
// energy numbers capture the dormancy benefit (as in Fig. 10).
const ChaosReadingTime = 20 * time.Second

// ChaosModeStats aggregates one pipeline's behaviour over all pages at one
// loss rate.
type ChaosModeStats struct {
	Mode browser.Mode
	// Completed counts loads that reached the final display; Degraded the
	// subset that finished with reduced fidelity (abandoned objects or a
	// failed fast dormancy).
	Completed int
	Degraded  int
	// EnergyJ is the mean radio+CPU energy per load including the reading
	// window; LoadS the mean time to the final display.
	EnergyJ float64
	LoadS   float64
	// Retry/failure tallies summed over all loads.
	FetchRetries     int
	LinkRetries      int
	FailedObjects    int
	FailedTransfers  int
	DormancyFailures int
}

// ChaosPoint is one loss rate of the sweep.
type ChaosPoint struct {
	LossPct  float64
	Original ChaosModeStats
	Aware    ChaosModeStats
}

// EnergySavingPct is the energy-aware saving at this loss rate.
func (p *ChaosPoint) EnergySavingPct() float64 {
	return savingPct(p.Original.EnergyJ, p.Aware.EnergyJ)
}

// ChaosResult is the whole sweep.
type ChaosResult struct {
	Seed   int64
	Pages  int
	Points []ChaosPoint
}

// chaosLossGrid returns the swept loss rates: the canonical grid clipped to
// maxLoss, always including 0 and maxLoss itself.
func chaosLossGrid(maxLoss float64) []float64 {
	canonical := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.30}
	grid := make([]float64, 0, len(canonical)+1)
	for _, p := range canonical {
		if p < maxLoss {
			grid = append(grid, p)
		}
	}
	return append(grid, maxLoss)
}

// NewFaultySession builds a phone whose link and RIL daemon are impaired by
// the given fault config; the engine routes dormancy through the RIL, so the
// whole Section 4.4 path is exercised under impairment.
func NewFaultySession(mode browser.Mode, cfg faults.Config, opts ...browser.Option) (*Session, error) {
	inj, err := faults.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("new injector: %w", err)
	}
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("new radio: %w", err)
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("new link: %w", err)
	}
	link.SetFaults(inj)
	iface, err := ril.New(clock, radio, ril.WithFaults(inj))
	if err != nil {
		return nil, fmt.Errorf("new ril: %w", err)
	}
	opts = append([]browser.Option{browser.WithRIL(iface)}, opts...)
	engine, err := browser.NewEngine(clock, radio, link, browser.DefaultCostModel(), mode, opts...)
	if err != nil {
		return nil, fmt.Errorf("new engine: %w", err)
	}
	return &Session{Clock: clock, Radio: radio, Link: link, Engine: engine, RIL: iface, Faults: inj}, nil
}

// ChaosSweep runs the chaos experiment: both benchmarks, both pipelines, at
// every loss rate of the grid up to maxLoss, on top of the given background
// profile. Everything is seeded, so two sweeps with equal inputs are
// byte-identical.
func ChaosSweep(profile faults.Config, maxLoss float64) (*ChaosResult, error) {
	if maxLoss < 0 || maxLoss >= 1 {
		return nil, fmt.Errorf("experiments: max loss %v outside [0, 1)", maxLoss)
	}
	mobile, err := webpage.MobileBenchmark()
	if err != nil {
		return nil, err
	}
	full, err := webpage.FullBenchmark()
	if err != nil {
		return nil, err
	}
	pages := append(mobile, full...)

	res := &ChaosResult{Seed: profile.Seed, Pages: len(pages)}
	for li, loss := range chaosLossGrid(maxLoss) {
		point := ChaosPoint{LossPct: loss * 100}
		for _, mode := range []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware} {
			stats, err := chaosRunMode(mode, pages, profile, loss, li)
			if err != nil {
				return nil, fmt.Errorf("loss %.0f%% (%v): %w", loss*100, mode, err)
			}
			if mode == browser.ModeOriginal {
				point.Original = *stats
			} else {
				point.Aware = *stats
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

func chaosRunMode(mode browser.Mode, pages []*webpage.Page, profile faults.Config,
	loss float64, lossIdx int) (*ChaosModeStats, error) {
	stats := &ChaosModeStats{Mode: mode}
	for pi, page := range pages {
		cfg := profile
		cfg.LossRate = loss
		// One independent, reproducible fault stream per (loss, mode, page).
		cfg.Seed = profile.Seed + int64(lossIdx)*10_000 + int64(mode)*1_000 + int64(pi)
		s, err := NewFaultySession(mode, cfg)
		if err != nil {
			return nil, err
		}
		r, err := s.LoadToEnd(page)
		if err != nil {
			return nil, fmt.Errorf("page %s: %w", page.Name, err)
		}
		s.Clock.RunFor(ChaosReadingTime)
		stats.Completed++
		if r.Degraded() {
			stats.Degraded++
		}
		stats.EnergyJ += s.Radio.EnergyJ() + r.CPUEnergyJ
		stats.LoadS += r.FinalDisplayAt.Seconds()
		stats.FetchRetries += r.FetchRetries
		stats.LinkRetries += r.LinkRetries
		stats.FailedObjects += r.FailedObjects
		stats.FailedTransfers += r.FailedTransfers
		if r.DormancyFailed {
			stats.DormancyFailures++
		}
	}
	n := float64(len(pages))
	stats.EnergyJ /= n
	stats.LoadS /= n
	return stats, nil
}
