// Package energy implements the measurement harness of Section 5.1.1: a
// power meter that samples the phone's total power draw at a fixed interval
// (0.25 s, like the paper's Agilent E3631A + LabVIEW setup) and integrates
// energy from the samples.
//
// Exact energy bookkeeping lives with each power source (the RRC machine and
// the browser CPU integrate piecewise-constant power themselves); the meter
// exists to reproduce the sampled power traces of Fig. 1 and Fig. 9 and to
// cross-check the exact integrals.
package energy

import (
	"errors"
	"time"

	"eabrowse/internal/simtime"
)

// DefaultInterval matches the paper's 0.25 s sampling period.
const DefaultInterval = 250 * time.Millisecond

// Source is an instantaneous power reading, in watts.
type Source func() float64

// Sample is one meter reading.
type Sample struct {
	At    time.Duration
	Watts float64
}

// Meter periodically samples the sum of its power sources.
type Meter struct {
	clock    *simtime.Clock
	interval time.Duration
	sources  []Source
	samples  []Sample
	running  bool
	next     *simtime.Event
}

// NewMeter creates a meter sampling the given sources every interval. An
// interval of zero uses DefaultInterval.
func NewMeter(clock *simtime.Clock, interval time.Duration, sources ...Source) (*Meter, error) {
	if clock == nil {
		return nil, errors.New("energy: nil clock")
	}
	if interval < 0 {
		return nil, errors.New("energy: negative sampling interval")
	}
	if interval == 0 {
		interval = DefaultInterval
	}
	if len(sources) == 0 {
		return nil, errors.New("energy: meter needs at least one power source")
	}
	srcs := make([]Source, len(sources))
	copy(srcs, sources)
	return &Meter{clock: clock, interval: interval, sources: srcs}, nil
}

// Start begins sampling, taking the first sample immediately. Starting a
// running meter is a no-op.
func (m *Meter) Start() {
	if m.running {
		return
	}
	m.running = true
	m.sample()
}

// Stop halts sampling. The collected samples remain available.
func (m *Meter) Stop() {
	if !m.running {
		return
	}
	m.running = false
	if m.next != nil {
		m.next.Cancel()
		m.next = nil
	}
}

// Running reports whether the meter is actively sampling.
func (m *Meter) Running() bool {
	return m.running
}

// Interval returns the sampling period.
func (m *Meter) Interval() time.Duration {
	return m.interval
}

// Samples returns a copy of the collected samples.
func (m *Meter) Samples() []Sample {
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// EnergyJ integrates the sampled power over time (rectangle rule: each
// sample holds until the next), in Joules. With piecewise-constant sources
// and a sampling interval that divides every dwell time this is exact;
// otherwise it is the same approximation the paper's 0.25 s rig makes.
func (m *Meter) EnergyJ() float64 {
	if len(m.samples) < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(m.samples)-1; i++ {
		dt := (m.samples[i+1].At - m.samples[i].At).Seconds()
		total += m.samples[i].Watts * dt
	}
	return total
}

// MeanPower returns the average of all samples, in watts (0 if no samples).
func (m *Meter) MeanPower() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range m.samples {
		sum += s.Watts
	}
	return sum / float64(len(m.samples))
}

func (m *Meter) sample() {
	if !m.running {
		return
	}
	total := 0.0
	for _, src := range m.sources {
		total += src()
	}
	m.samples = append(m.samples, Sample{At: m.clock.Now(), Watts: total})
	m.next = m.clock.After(m.interval, m.sample)
}
