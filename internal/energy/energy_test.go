package energy

import (
	"math"
	"testing"
	"time"

	"eabrowse/internal/simtime"
)

func TestNewMeterValidation(t *testing.T) {
	clock := simtime.NewClock()
	if _, err := NewMeter(nil, 0, func() float64 { return 1 }); err == nil {
		t.Fatal("NewMeter(nil clock) succeeded")
	}
	if _, err := NewMeter(clock, -time.Second, func() float64 { return 1 }); err == nil {
		t.Fatal("NewMeter(negative interval) succeeded")
	}
	if _, err := NewMeter(clock, 0); err == nil {
		t.Fatal("NewMeter(no sources) succeeded")
	}
}

func TestDefaultInterval(t *testing.T) {
	clock := simtime.NewClock()
	m, err := NewMeter(clock, 0, func() float64 { return 1 })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	if m.Interval() != DefaultInterval {
		t.Fatalf("Interval = %v, want %v", m.Interval(), DefaultInterval)
	}
}

func TestSamplingCadence(t *testing.T) {
	clock := simtime.NewClock()
	m, err := NewMeter(clock, 250*time.Millisecond, func() float64 { return 2 })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	m.Start()
	clock.RunUntil(time.Second)
	m.Stop()
	samples := m.Samples()
	// Samples at 0, 0.25, 0.5, 0.75, 1.0.
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for i, s := range samples {
		wantAt := time.Duration(i) * 250 * time.Millisecond
		if s.At != wantAt {
			t.Fatalf("sample %d at %v, want %v", i, s.At, wantAt)
		}
		if s.Watts != 2 {
			t.Fatalf("sample %d = %v W, want 2", i, s.Watts)
		}
	}
}

func TestStopPreventsFurtherSamples(t *testing.T) {
	clock := simtime.NewClock()
	m, err := NewMeter(clock, 100*time.Millisecond, func() float64 { return 1 })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	m.Start()
	clock.RunUntil(300 * time.Millisecond)
	m.Stop()
	n := len(m.Samples())
	clock.RunFor(time.Second)
	if len(m.Samples()) != n {
		t.Fatalf("samples grew after Stop: %d -> %d", n, len(m.Samples()))
	}
	if m.Running() {
		t.Fatal("Running() = true after Stop")
	}
}

func TestStartTwiceIsNoop(t *testing.T) {
	clock := simtime.NewClock()
	m, err := NewMeter(clock, 100*time.Millisecond, func() float64 { return 1 })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	m.Start()
	m.Start()
	clock.RunUntil(200 * time.Millisecond)
	m.Stop()
	// 0, 100ms, 200ms — not doubled.
	if got := len(m.Samples()); got != 3 {
		t.Fatalf("got %d samples, want 3", got)
	}
}

func TestEnergyIntegration(t *testing.T) {
	clock := simtime.NewClock()
	power := 1.0
	m, err := NewMeter(clock, 250*time.Millisecond, func() float64 { return power })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	m.Start()
	clock.RunUntil(time.Second) // 1 W for 1 s
	power = 3.0
	clock.RunFor(time.Second) // 3 W for 1 s
	m.Stop()
	// RunUntil(1s) fires the 1.0 s sample before power changes, so samples
	// read 1 W on [0,1.0] and 3 W on [1.25,2.0]. Rectangle rule holds each
	// sample until the next: 1 W over [0,1.25) + 3 W over [1.25,2.0).
	want := 1.0*1.25 + 3.0*0.75
	if got := m.EnergyJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want %v", got, want)
	}
}

func TestEnergyNeedsTwoSamples(t *testing.T) {
	clock := simtime.NewClock()
	m, err := NewMeter(clock, 250*time.Millisecond, func() float64 { return 5 })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	if m.EnergyJ() != 0 {
		t.Fatalf("EnergyJ with no samples = %v, want 0", m.EnergyJ())
	}
	m.Start()
	m.Stop()
	if m.EnergyJ() != 0 {
		t.Fatalf("EnergyJ with one sample = %v, want 0", m.EnergyJ())
	}
}

func TestMultipleSourcesSum(t *testing.T) {
	clock := simtime.NewClock()
	m, err := NewMeter(clock, 250*time.Millisecond,
		func() float64 { return 0.15 },
		func() float64 { return 0.45 },
	)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	m.Start()
	m.Stop()
	samples := m.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	if math.Abs(samples[0].Watts-0.6) > 1e-12 {
		t.Fatalf("summed power = %v, want 0.6", samples[0].Watts)
	}
}

func TestMeanPower(t *testing.T) {
	clock := simtime.NewClock()
	power := 2.0
	m, err := NewMeter(clock, 500*time.Millisecond, func() float64 { return power })
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	if m.MeanPower() != 0 {
		t.Fatalf("MeanPower with no samples = %v, want 0", m.MeanPower())
	}
	m.Start()
	clock.RunUntil(500 * time.Millisecond)
	power = 4.0
	clock.RunFor(time.Second)
	m.Stop()
	// RunUntil(0.5s) fires the 0.5 s sample before the power change, so the
	// samples read 2 (t=0), 2 (t=0.5), 4 (t=1.0), 4 (t=1.5) -> mean 3.
	if got := m.MeanPower(); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("MeanPower = %v, want 3", got)
	}
}
