package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(3*time.Second, func() { order = append(order, 3) })
	c.After(1*time.Second, func() { order = append(order, 1) })
	c.After(2*time.Second, func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", c.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestScheduleAtPastFails(t *testing.T) {
	c := NewClock()
	c.After(5*time.Second, func() {})
	c.Run()
	if _, err := c.ScheduleAt(time.Second, func() {}); err == nil {
		t.Fatal("ScheduleAt in the past succeeded, want error")
	}
}

func TestScheduleNilCallbackFails(t *testing.T) {
	c := NewClock()
	if _, err := c.ScheduleAt(time.Second, nil); err == nil {
		t.Fatal("ScheduleAt(nil) succeeded, want error")
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	c := NewClock()
	ran := false
	c.After(-time.Second, func() { ran = true })
	c.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := NewClock()
	ran := false
	ev := c.After(time.Second, func() { ran = true })
	if !ev.Cancel() {
		t.Fatal("Cancel() = false on pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	c.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	c := NewClock()
	ev := c.After(time.Second, func() {})
	c.Run()
	if !ev.Fired() {
		t.Fatal("event did not fire")
	}
	if ev.Cancel() {
		t.Fatal("Cancel() after fire = true, want false")
	}
}

func TestCancelNilEventIsNoop(t *testing.T) {
	var ev *Event
	if ev.Cancel() {
		t.Fatal("Cancel() on nil event = true")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	c := NewClock()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		c.After(d, func() { fired = append(fired, d) })
	}
	c.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", c.Now())
	}
	c.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunUntilAdvancesPastEmptyQueue(t *testing.T) {
	c := NewClock()
	c.RunUntil(10 * time.Second)
	if c.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", c.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	c := NewClock()
	c.After(time.Second, func() {})
	c.Run()
	c.RunFor(4 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", c.Now())
	}
}

func TestEventsScheduledDuringEvents(t *testing.T) {
	c := NewClock()
	var times []time.Duration
	c.After(time.Second, func() {
		times = append(times, c.Now())
		c.After(time.Second, func() {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v, want [1s 2s]", times)
	}
}

func TestStepReturnsFalseOnEmpty(t *testing.T) {
	c := NewClock()
	if c.Step() {
		t.Fatal("Step() = true on empty queue")
	}
}

func TestPendingCountsOnlyLive(t *testing.T) {
	c := NewClock()
	ev := c.After(time.Second, func() {})
	c.After(2*time.Second, func() {})
	ev.Cancel()
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

// TestPropertyEventOrder checks that arbitrary schedules always fire in
// non-decreasing time order, with ties broken by insertion sequence.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delaysMillis []uint16) bool {
		c := NewClock()
		var fired []time.Duration
		for _, m := range delaysMillis {
			c.After(time.Duration(m)*time.Millisecond, func() {
				fired = append(fired, c.Now())
			})
		}
		c.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyClockMonotonic checks that the clock never moves backwards
// under a random mix of scheduling and stepping.
func TestPropertyClockMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewClock()
	last := c.Now()
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0:
			c.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
		case 1:
			c.Step()
		default:
			c.RunFor(time.Duration(rng.Intn(100)) * time.Millisecond)
		}
		if c.Now() < last {
			t.Fatalf("clock moved backwards: %v -> %v", last, c.Now())
		}
		last = c.Now()
	}
}

// scanPending recounts pending events the way the pre-counter Pending did:
// a full queue scan skipping cancelled entries. It is the oracle the live
// counter is checked against.
func scanPending(c *Clock) int {
	n := 0
	for _, e := range c.queue {
		if e.ev == nil || !e.ev.cancelled {
			n++
		}
	}
	return n
}

// TestPendingCounterMatchesScan drives the clock through a random mix of
// scheduling, cancelling (including double-cancels and cancels of fired
// events), stepping and bounded runs, asserting after every operation that
// the O(1) Pending counter agrees with a full queue scan.
func TestPendingCounterMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := NewClock()
	var handles []*Event
	for i := 0; i < 10000; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			ev := c.After(time.Duration(rng.Intn(500))*time.Millisecond, func() {})
			handles = append(handles, ev)
		case 2:
			if len(handles) > 0 {
				// Cancel a random handle; repeats exercise the no-op paths
				// for already-cancelled and already-fired events.
				handles[rng.Intn(len(handles))].Cancel()
			}
		case 3:
			c.Step()
		default:
			c.RunFor(time.Duration(rng.Intn(200)) * time.Millisecond)
		}
		if got, want := c.Pending(), scanPending(c); got != want {
			t.Fatalf("op %d: Pending() = %d, queue scan = %d", i, got, want)
		}
	}
	c.Run()
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", got)
	}
	if got := scanPending(c); got != 0 {
		t.Fatalf("queue scan = %d after Run, want 0", got)
	}
}
