// Package simtime implements a deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by (time, insertion
// sequence), and cancellable timers.
//
// Every subsystem in this repository (radio, browser, capacity model) runs on
// a simtime.Clock instead of the wall clock, which makes experiments exactly
// reproducible and orders of magnitude faster than real time.
package simtime

import (
	"fmt"
	"time"
)

// Clock is a virtual clock driving a discrete-event simulation.
//
// The zero value is not usable; construct clocks with NewClock. A Clock is
// not safe for concurrent use: simulations are single-threaded by design so
// that event order is deterministic.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	// pending counts scheduled, not-yet-fired, not-cancelled events. It is
	// maintained on schedule/fire/cancel so Pending is O(1); cancelled
	// events still occupying the heap are already excluded.
	pending int
}

// NewClock returns a clock positioned at time zero with an empty event queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time (elapsed since simulation start).
func (c *Clock) Now() time.Duration {
	return c.now
}

// Pending returns the number of scheduled, not-yet-fired, not-cancelled
// events.
func (c *Clock) Pending() int {
	return c.pending
}

// Reset returns the clock to time zero with an empty queue, dropping every
// pending event. Callbacks of dropped events never run; outstanding Event
// handles stay valid but are permanently detached (cancelling them is a
// no-op). Session pools use Reset to recycle a finished simulation.
func (c *Clock) Reset() {
	for i := range c.queue {
		if ev := c.queue[i].ev; ev != nil {
			// Detach the handle so a retained pointer cannot touch the
			// recycled clock; mark it cancelled so Cancel stays a no-op.
			ev.cancelled = true
			ev.clock = nil
		}
		if tm := c.queue[i].tm; tm != nil {
			// Timers stay bound to the clock and usable after Reset, but any
			// pending firing is dropped with the queue.
			tm.armed = false
			tm.inHeap = false
		}
		c.queue[i].fn = nil
		c.queue[i].ev = nil
		c.queue[i].tm = nil
	}
	c.queue = c.queue[:0]
	c.now = 0
	c.seq = 0
	c.pending = 0
}

// schedule validates and enqueues one entry, returning its heap slot inputs.
func (c *Clock) schedule(at time.Duration, fn func(), ev *Event) error {
	if at < c.now {
		return fmt.Errorf("simtime: schedule at %v before now %v", at, c.now)
	}
	if fn == nil {
		return fmt.Errorf("simtime: schedule nil callback at %v", at)
	}
	c.queue.pushEntry(entry{at: at, seq: c.seq, fn: fn, ev: ev})
	c.seq++
	c.pending++
	return nil
}

// ScheduleAt schedules fn to run at the absolute virtual time at. Scheduling
// in the past (before Now) is an error: discrete-event simulations must never
// travel backwards.
func (c *Clock) ScheduleAt(at time.Duration, fn func()) (*Event, error) {
	ev := &Event{at: at, clock: c}
	if err := c.schedule(at, fn, ev); err != nil {
		return nil, err
	}
	return ev, nil
}

// After schedules fn to run d after the current virtual time. A negative d is
// treated as zero so callers can pass computed (possibly slightly negative)
// durations without a guard.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := c.ScheduleAt(c.now+d, fn)
	if err != nil {
		// Unreachable: now+d >= now and fn checked below by ScheduleAt.
		panic(err)
	}
	return ev
}

// Defer schedules fn like After but returns no handle: the event cannot be
// cancelled or inspected. Hot paths that never retain the handle use Defer —
// it allocates nothing beyond the queue slot, which the steady-state
// simulation reuses.
func (c *Clock) Defer(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if err := c.schedule(c.now+d, fn, nil); err != nil {
		// Unreachable: now+d >= now; nil fn panics as After always has.
		panic(err)
	}
}

// Step runs the earliest pending event and advances the clock to its time.
// It reports whether an event ran (false means the queue is empty).
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		e := c.queue.popEntry()
		if e.ev != nil && e.ev.cancelled {
			// Already excluded from pending when it was cancelled.
			continue
		}
		if e.tm != nil {
			t := e.tm
			t.inHeap = false
			if !t.armed {
				// Disarmed while queued: garbage entry, drop silently.
				continue
			}
			if t.deadline > e.at {
				// The deadline moved while the entry was queued; requeue at
				// the real deadline under the seq reserved by the last Arm,
				// so the firing order is exactly that of an eager re-push.
				c.queue.pushEntry(entry{at: t.deadline, seq: t.seq, fn: t.fn, tm: t})
				t.inHeap = true
				continue
			}
			c.now = e.at
			t.armed = false
			c.pending--
			t.fn()
			return true
		}
		c.now = e.at
		if e.ev != nil {
			e.ev.fired = true
		}
		c.pending--
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes all events scheduled at or before deadline, then advances
// the clock to deadline (even if the queue emptied earlier). Events scheduled
// beyond the deadline stay queued.
func (c *Clock) RunUntil(deadline time.Duration) {
	for len(c.queue) > 0 {
		next := &c.queue[0]
		if next.ev != nil && next.ev.cancelled {
			c.queue.popEntry()
			continue
		}
		if tm := next.tm; tm != nil {
			if !tm.armed {
				tm.inHeap = false
				c.queue.popEntry()
				continue
			}
			if tm.deadline > next.at {
				// Stale entry for a timer whose deadline moved later; requeue
				// it here so the bound check below sees the real firing time.
				e := c.queue.popEntry()
				e.at = tm.deadline
				e.seq = tm.seq
				c.queue.pushEntry(e)
				continue
			}
		}
		if next.at > deadline {
			break
		}
		c.Step()
	}
	if deadline > c.now {
		c.now = deadline
	}
}

// RunFor executes events for d of virtual time starting from Now.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.now + d)
}

// Event is a handle to a scheduled callback.
type Event struct {
	at        time.Duration
	clock     *Clock
	cancelled bool
	fired     bool
}

// At returns the virtual time the event is (or was) scheduled for.
func (e *Event) At() time.Duration {
	return e.at
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// actually cancelled by this call.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.cancelled {
		return false
	}
	e.cancelled = true
	if e.clock != nil {
		e.clock.pending--
	}
	return true
}

// Fired reports whether the event callback has run.
func (e *Event) Fired() bool {
	return e.fired
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool {
	return e.cancelled
}

// Timer is a re-armable deadline bound to one callback. Unlike After, which
// pushes a fresh heap entry per call, re-arming a Timer whose previous entry
// is still queued only moves its deadline: the stale entry re-queues itself
// when it surfaces. Each Arm still reserves an insertion sequence number, so
// the eventual firing order is bit-identical to cancelling and re-pushing
// eagerly — the RRC inactivity timers re-arm on every transfer, and this
// keeps them from flooding the queue with cancelled entries.
//
// An armed Timer counts as one pending event, like an outstanding After.
type Timer struct {
	clock    *Clock
	fn       func()
	deadline time.Duration
	seq      uint64
	armed    bool
	inHeap   bool
}

// NewTimer creates a disarmed timer that runs fn when it fires.
func (c *Clock) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("simtime: nil timer callback")
	}
	return &Timer{clock: c, fn: fn}
}

// Arm (re)schedules the timer to fire d after now, replacing any earlier
// deadline. A negative d is treated as zero.
func (t *Timer) Arm(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c := t.clock
	t.deadline = c.now + d
	t.seq = c.seq
	c.seq++
	if !t.armed {
		t.armed = true
		c.pending++
	}
	if !t.inHeap {
		c.queue.pushEntry(entry{at: t.deadline, seq: t.seq, fn: t.fn, tm: t})
		t.inHeap = true
	}
}

// Disarm stops the timer; a later Arm reuses it. Disarming an unarmed timer
// is a no-op.
func (t *Timer) Disarm() {
	if !t.armed {
		return
	}
	t.armed = false
	t.clock.pending--
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the absolute virtual time of the next firing (only
// meaningful while Armed).
func (t *Timer) Deadline() time.Duration { return t.deadline }

// entry is one queued callback. Entries live inline in the heap slice so the
// (at, seq) comparisons that dominate simulation time touch only contiguous
// memory; ev is non-nil only for events scheduled through ScheduleAt/After,
// which hand out a cancellable handle; tm is non-nil only for Timer entries.
type entry struct {
	at  time.Duration
	seq uint64
	fn  func()
	ev  *Event
	tm  *Timer
}

// eventQueue is a min-heap ordered by (at, seq) so same-time events fire in
// scheduling order. The heap is hand-rolled over the concrete entry type:
// container/heap would box every entry through interface{} (one allocation
// per scheduled event) and its comparisons would go through dynamic dispatch,
// and the event queue is the single hottest structure in the simulator.
type eventQueue []entry

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// pushEntry appends e and sifts it up.
func (q *eventQueue) pushEntry(e entry) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popEntry removes and returns the earliest entry.
func (q *eventQueue) popEntry() entry {
	h := *q
	n := len(h)
	e := h[0]
	h[0] = h[n-1]
	h[n-1] = entry{}
	h = h[:n-1]
	*q = h
	// Sift the moved element down.
	i := 0
	for {
		left := 2*i + 1
		if left >= len(h) {
			break
		}
		j := left
		if right := left + 1; right < len(h) && h.less(right, left) {
			j = right
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return e
}
