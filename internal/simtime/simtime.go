// Package simtime implements a deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by (time, insertion
// sequence), and cancellable timers.
//
// Every subsystem in this repository (radio, browser, capacity model) runs on
// a simtime.Clock instead of the wall clock, which makes experiments exactly
// reproducible and orders of magnitude faster than real time.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual clock driving a discrete-event simulation.
//
// The zero value is not usable; construct clocks with NewClock. A Clock is
// not safe for concurrent use: simulations are single-threaded by design so
// that event order is deterministic.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	// pending counts scheduled, not-yet-fired, not-cancelled events. It is
	// maintained on schedule/fire/cancel so Pending is O(1); cancelled
	// events still occupying the heap are already excluded.
	pending int
}

// NewClock returns a clock positioned at time zero with an empty event queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time (elapsed since simulation start).
func (c *Clock) Now() time.Duration {
	return c.now
}

// Pending returns the number of scheduled, not-yet-fired, not-cancelled
// events.
func (c *Clock) Pending() int {
	return c.pending
}

// ScheduleAt schedules fn to run at the absolute virtual time at. Scheduling
// in the past (before Now) is an error: discrete-event simulations must never
// travel backwards.
func (c *Clock) ScheduleAt(at time.Duration, fn func()) (*Event, error) {
	if at < c.now {
		return nil, fmt.Errorf("simtime: schedule at %v before now %v", at, c.now)
	}
	if fn == nil {
		return nil, fmt.Errorf("simtime: schedule nil callback at %v", at)
	}
	ev := &Event{at: at, seq: c.seq, fn: fn, clock: c}
	c.seq++
	heap.Push(&c.queue, ev)
	c.pending++
	return ev, nil
}

// After schedules fn to run d after the current virtual time. A negative d is
// treated as zero so callers can pass computed (possibly slightly negative)
// durations without a guard.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := c.ScheduleAt(c.now+d, fn)
	if err != nil {
		// Unreachable: now+d >= now and fn checked below by ScheduleAt.
		panic(err)
	}
	return ev
}

// Step runs the earliest pending event and advances the clock to its time.
// It reports whether an event ran (false means the queue is empty).
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		ev, ok := heap.Pop(&c.queue).(*Event)
		if !ok {
			return false
		}
		if ev.cancelled {
			// Already excluded from pending when it was cancelled.
			continue
		}
		c.now = ev.at
		ev.fired = true
		c.pending--
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes all events scheduled at or before deadline, then advances
// the clock to deadline (even if the queue emptied earlier). Events scheduled
// beyond the deadline stay queued.
func (c *Clock) RunUntil(deadline time.Duration) {
	for c.queue.Len() > 0 {
		next := c.queue[0]
		if next.cancelled {
			heap.Pop(&c.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		c.Step()
	}
	if deadline > c.now {
		c.now = deadline
	}
}

// RunFor executes events for d of virtual time starting from Now.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.now + d)
}

// Event is a handle to a scheduled callback.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	clock     *Clock
	cancelled bool
	fired     bool
}

// At returns the virtual time the event is (or was) scheduled for.
func (e *Event) At() time.Duration {
	return e.at
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// actually cancelled by this call.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.cancelled {
		return false
	}
	e.cancelled = true
	if e.clock != nil {
		e.clock.pending--
	}
	return true
}

// Fired reports whether the event callback has run.
func (e *Event) Fired() bool {
	return e.fired
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool {
	return e.cancelled
}

// eventQueue is a min-heap ordered by (at, seq) so same-time events fire in
// scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
