// Package ril models Section 4.4's state-switch path: on Android the radio
// firmware is closed, so the prototype forces dormancy *through the Radio
// Interface Layer* — the application sends an abstract operation message to
// RIL.java in the framework, which forwards it over a Unix socket to the
// RIL daemon, which finally drives the firmware.
//
// The simulation keeps that structure: requests are asynchronous messages
// with a hop latency, answered by responses, and the application layer never
// touches the rrc.Machine directly. The indirection matters for fidelity —
// a dormancy request can race with a new transfer and be rejected, exactly
// the failure mode an application-layer implementation has to handle.
package ril

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/faults"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// Op is an abstract radio operation (the "message describing an operation
// to be performed" of Section 4.4).
type Op int

const (
	// OpForceDormancy releases the signaling connection (fast dormancy).
	OpForceDormancy Op = iota + 1
	// OpQueryState reads the current RRC state.
	OpQueryState
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpForceDormancy:
		return "FORCE_DORMANCY"
	case OpQueryState:
		return "QUERY_STATE"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status is the outcome of a request.
type Status int

const (
	// StatusOK: the operation was applied.
	StatusOK Status = iota + 1
	// StatusBusy: the radio could not perform the operation now (e.g. a
	// transfer was in flight when the dormancy request arrived).
	StatusBusy
	// StatusError: malformed request, or the daemon rejected the operation
	// (flaky firmware under fault injection).
	StatusError
	// StatusTimeout: no response arrived within the caller's deadline. The
	// operation may still have executed at the daemon — the caller cannot
	// tell, exactly the ambiguity a real RIL client faces. Synthesized
	// locally by SubmitWithTimeout, never sent by the daemon.
	StatusTimeout
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusBusy:
		return "BUSY"
	case StatusError:
		return "ERROR"
	case StatusTimeout:
		return "TIMEOUT"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Response answers one request.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	// State is the RRC state observed when the operation executed.
	State rrc.State
}

// DefaultHopLatency is the application → framework → daemon round trip.
// The two in-process hops plus a Unix-socket crossing are fast compared to
// any radio procedure; 20 ms is generous for a 2010-era device.
const DefaultHopLatency = 20 * time.Millisecond

// DefaultOpTimeout is how long SubmitWithTimeout waits for a response before
// synthesizing StatusTimeout. Generous against any realistic hop latency, yet
// short enough that a retry loop converges before the rrc inactivity timers
// would have demoted the radio anyway.
const DefaultOpTimeout = 1 * time.Second

// Interface is the simulated RIL daemon endpoint.
type Interface struct {
	clock   *simtime.Clock
	radio   rrc.RadioModel
	latency time.Duration
	nextID  uint64

	served   map[Status]int
	faults   *faults.Injector
	dropped  int
	timeouts int
}

// Option configures the Interface.
type Option interface {
	apply(*Interface)
}

type optionFunc func(*Interface)

func (f optionFunc) apply(r *Interface) { f(r) }

// WithHopLatency overrides the message round-trip latency.
func WithHopLatency(d time.Duration) Option {
	return optionFunc(func(r *Interface) { r.latency = d })
}

// WithFaults attaches an impairment injector: operations can come back with
// extra latency, be rejected with StatusError, or lose their response
// entirely. A nil or disabled injector leaves the endpoint fault-free.
func WithFaults(in *faults.Injector) Option {
	return optionFunc(func(r *Interface) { r.faults = in })
}

// New creates a RIL endpoint over the given radio (any rrc.RadioModel
// backend).
func New(clock *simtime.Clock, radio rrc.RadioModel, opts ...Option) (*Interface, error) {
	if clock == nil || radio == nil {
		return nil, errors.New("ril: nil clock or radio")
	}
	r := &Interface{
		clock:   clock,
		radio:   radio,
		latency: DefaultHopLatency,
		served:  make(map[Status]int, 3),
	}
	for _, o := range opts {
		o.apply(r)
	}
	if r.latency < 0 {
		return nil, errors.New("ril: negative hop latency")
	}
	return r, nil
}

// Reset rewinds the endpoint's counters and request ids to their initial
// state. The caller must have reset the simulation clock first, dropping any
// in-flight messages; experiments.Session.Reset drives the full sequence.
func (r *Interface) Reset() {
	if r == nil {
		return
	}
	r.nextID = 0
	clear(r.served)
	r.dropped = 0
	r.timeouts = 0
}

// Submit sends an operation request; reply (optional) is delivered after the
// hop latency with the outcome. Returns the request id. Under fault
// injection the response may never arrive — callers that must make progress
// regardless use SubmitWithTimeout.
func (r *Interface) Submit(op Op, reply func(Response)) uint64 {
	r.nextID++
	id := r.nextID
	plan := r.faults.PlanOp()
	outbound := plan.ExtraLatency / 2
	// One hop to the daemon; the operation executes there, and the response
	// takes the same path back.
	r.clock.After(r.latency/2+outbound, func() {
		var resp Response
		if plan.Error {
			// The daemon rejects the request without executing it.
			resp = Response{ID: id, Op: op, Status: StatusError, State: r.radio.State()}
		} else {
			resp = r.execute(id, op)
		}
		r.served[resp.Status]++
		if plan.DropResponse {
			// The operation ran (or was rejected) at the daemon, but the
			// response is lost on the way back; the caller never hears.
			r.dropped++
			return
		}
		if reply != nil {
			r.clock.After(r.latency/2+(plan.ExtraLatency-outbound), func() { reply(resp) })
		}
	})
	return id
}

// SubmitWithTimeout is Submit plus a response deadline: if no response is
// delivered within timeout, reply receives a synthesized StatusTimeout and a
// late response (if any) is discarded. With no enabled fault injector the
// deadline machinery is skipped entirely — responses always arrive — so the
// fault-free event schedule is untouched.
func (r *Interface) SubmitWithTimeout(op Op, timeout time.Duration, reply func(Response)) uint64 {
	if reply == nil || timeout <= 0 || !r.faults.Enabled() {
		return r.Submit(op, reply)
	}
	settled := false
	var watchdog *simtime.Event
	id := r.Submit(op, func(resp Response) {
		if settled {
			return
		}
		settled = true
		watchdog.Cancel()
		reply(resp)
	})
	watchdog = r.clock.After(timeout, func() {
		if settled {
			return
		}
		settled = true
		r.timeouts++
		reply(Response{ID: id, Op: op, Status: StatusTimeout, State: r.radio.State()})
	})
	return id
}

func (r *Interface) execute(id uint64, op Op) Response {
	resp := Response{ID: id, Op: op, State: r.radio.State()}
	switch op {
	case OpForceDormancy:
		err := r.radio.ForceIdle()
		switch {
		case err == nil:
			resp.Status = StatusOK
		case errors.Is(err, rrc.ErrBusy):
			resp.Status = StatusBusy
		default:
			resp.Status = StatusError
		}
		resp.State = r.radio.State()
	case OpQueryState:
		resp.Status = StatusOK
	default:
		resp.Status = StatusError
	}
	return resp
}

// Served returns how many requests completed with the given status at the
// daemon (including ones whose response was subsequently lost).
func (r *Interface) Served(s Status) int {
	return r.served[s]
}

// Dropped returns how many responses were lost on the way back (fault
// injection only).
func (r *Interface) Dropped() int { return r.dropped }

// Timeouts returns how many SubmitWithTimeout deadlines expired.
func (r *Interface) Timeouts() int { return r.timeouts }

// ForceDormancyWithRetry submits a dormancy request and retries on any
// non-OK outcome — BUSY (a transfer raced the request), ERROR (flaky
// daemon), or a lost response that hit the per-attempt deadline — every
// interval, up to attempts times. This is the pattern an application layer
// needs because it can neither atomically observe the radio nor trust the
// daemon to always answer. done (optional) receives the final response;
// its status is StatusOK only if some attempt succeeded.
func (r *Interface) ForceDormancyWithRetry(attempts int, interval time.Duration, done func(Response)) {
	if attempts <= 0 {
		attempts = 1
	}
	var attempt func(left int)
	attempt = func(left int) {
		r.SubmitWithTimeout(OpForceDormancy, DefaultOpTimeout, func(resp Response) {
			if resp.Status != StatusOK && left > 1 {
				r.clock.After(interval, func() { attempt(left - 1) })
				return
			}
			if done != nil {
				done(resp)
			}
		})
	}
	attempt(attempts)
}
