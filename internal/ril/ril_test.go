package ril

import (
	"testing"
	"time"

	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

func newRig(t *testing.T, opts ...Option) (*simtime.Clock, *rrc.Machine, *Interface) {
	t.Helper()
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	r, err := New(clock, radio, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return clock, radio, r
}

func promoteToDCH(t *testing.T, clock *simtime.Clock, radio *rrc.Machine) {
	t.Helper()
	radio.RequestDCH(func() {})
	clock.RunUntil(clock.Now() + radio.Config().PromoIdleToDCH)
	if radio.State() != rrc.StateDCH {
		t.Fatalf("setup: radio = %v, want DCH", radio.State())
	}
}

func TestNewValidation(t *testing.T) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if _, err := New(nil, radio); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(clock, nil); err == nil {
		t.Fatal("nil radio accepted")
	}
	if _, err := New(clock, radio, WithHopLatency(-time.Second)); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestQueryState(t *testing.T) {
	clock, _, r := newRig(t)
	var resp Response
	got := false
	r.Submit(OpQueryState, func(rs Response) { resp = rs; got = true })
	clock.Run()
	if !got {
		t.Fatal("no response delivered")
	}
	if resp.Status != StatusOK || resp.State != rrc.StateIdle {
		t.Fatalf("response = %+v", resp)
	}
}

func TestForceDormancyFromDCH(t *testing.T) {
	clock, radio, r := newRig(t)
	promoteToDCH(t, clock, radio)
	var resp Response
	r.Submit(OpForceDormancy, func(rs Response) { resp = rs })
	clock.RunFor(time.Second)
	if resp.Status != StatusOK {
		t.Fatalf("status = %v, want OK", resp.Status)
	}
	clock.RunFor(radio.Config().ReleaseDelay)
	if radio.State() != rrc.StateIdle {
		t.Fatalf("radio = %v after dormancy, want IDLE", radio.State())
	}
	if r.Served(StatusOK) != 1 {
		t.Fatalf("Served(OK) = %d", r.Served(StatusOK))
	}
}

func TestForceDormancyBusyDuringTransfer(t *testing.T) {
	clock, radio, r := newRig(t)
	promoteToDCH(t, clock, radio)
	if err := radio.BeginTransfer(); err != nil {
		t.Fatalf("BeginTransfer: %v", err)
	}
	var resp Response
	r.Submit(OpForceDormancy, func(rs Response) { resp = rs })
	clock.RunFor(time.Second)
	if resp.Status != StatusBusy {
		t.Fatalf("status = %v, want BUSY", resp.Status)
	}
	if r.Served(StatusBusy) != 1 {
		t.Fatalf("Served(BUSY) = %d", r.Served(StatusBusy))
	}
}

func TestHopLatencyApplied(t *testing.T) {
	clock, _, r := newRig(t, WithHopLatency(100*time.Millisecond))
	var at time.Duration
	r.Submit(OpQueryState, func(Response) { at = clock.Now() })
	clock.Run()
	if at != 100*time.Millisecond {
		t.Fatalf("response at %v, want 100ms", at)
	}
}

func TestRequestIDsIncrease(t *testing.T) {
	_, _, r := newRig(t)
	a := r.Submit(OpQueryState, nil)
	b := r.Submit(OpQueryState, nil)
	if b <= a {
		t.Fatalf("ids not increasing: %d, %d", a, b)
	}
}

func TestUnknownOpErrors(t *testing.T) {
	clock, _, r := newRig(t)
	var resp Response
	r.Submit(Op(99), func(rs Response) { resp = rs })
	clock.Run()
	if resp.Status != StatusError {
		t.Fatalf("status = %v, want ERROR", resp.Status)
	}
}

func TestForceDormancyWithRetry(t *testing.T) {
	clock, radio, r := newRig(t)
	promoteToDCH(t, clock, radio)
	if err := radio.BeginTransfer(); err != nil {
		t.Fatalf("BeginTransfer: %v", err)
	}
	// The transfer ends after 300 ms; the first attempt hits BUSY, a retry
	// succeeds.
	clock.After(300*time.Millisecond, func() {
		if err := radio.EndTransfer(); err != nil {
			t.Fatalf("EndTransfer: %v", err)
		}
	})
	var final Response
	r.ForceDormancyWithRetry(5, 200*time.Millisecond, func(rs Response) { final = rs })
	clock.RunFor(3 * time.Second)
	if final.Status != StatusOK {
		t.Fatalf("final status = %v, want OK after retries", final.Status)
	}
	if r.Served(StatusBusy) == 0 {
		t.Fatal("no BUSY observed before success")
	}
}

func TestForceDormancyWithRetryGivesUp(t *testing.T) {
	clock, radio, r := newRig(t)
	promoteToDCH(t, clock, radio)
	if err := radio.BeginTransfer(); err != nil {
		t.Fatalf("BeginTransfer: %v", err)
	}
	var final Response
	gotFinal := false
	r.ForceDormancyWithRetry(3, 50*time.Millisecond, func(rs Response) { final = rs; gotFinal = true })
	clock.RunFor(2 * time.Second)
	if !gotFinal {
		t.Fatal("retry loop never reported")
	}
	if final.Status != StatusBusy {
		t.Fatalf("final status = %v, want BUSY after exhausting retries", final.Status)
	}
	if r.Served(StatusBusy) != 3 {
		t.Fatalf("Served(BUSY) = %d, want 3 attempts", r.Served(StatusBusy))
	}
}

func TestStrings(t *testing.T) {
	if OpForceDormancy.String() != "FORCE_DORMANCY" || OpQueryState.String() != "QUERY_STATE" {
		t.Fatal("op names wrong")
	}
	if Op(7).String() != "Op(7)" {
		t.Fatal("unknown op name wrong")
	}
	if StatusOK.String() != "OK" || StatusBusy.String() != "BUSY" || StatusError.String() != "ERROR" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Fatal("unknown status name wrong")
	}
}
