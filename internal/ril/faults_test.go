package ril

import (
	"testing"
	"time"

	"eabrowse/internal/faults"
	"eabrowse/internal/rrc"
)

func newInjector(t *testing.T, cfg faults.Config) *faults.Injector {
	t.Helper()
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	return in
}

func TestInjectedErrorRejectsWithoutExecuting(t *testing.T) {
	in := newInjector(t, faults.Config{Seed: 1, RILErrorRate: 0.999})
	clock, radio, r := newRig(t, WithFaults(in))
	promoteToDCH(t, clock, radio)
	var resp Response
	r.Submit(OpForceDormancy, func(rs Response) { resp = rs })
	clock.RunFor(time.Second)
	if resp.Status != StatusError {
		t.Fatalf("status = %v, want ERROR from flaky daemon", resp.Status)
	}
	// The daemon rejected the request without executing it: the radio must
	// still be in DCH, not releasing.
	if radio.State() != rrc.StateDCH {
		t.Fatalf("radio = %v, want DCH (operation must not have run)", radio.State())
	}
	if r.Served(StatusError) != 1 {
		t.Fatalf("Served(ERROR) = %d, want 1", r.Served(StatusError))
	}
}

func TestDroppedResponseAndTimeout(t *testing.T) {
	in := newInjector(t, faults.Config{Seed: 2, RILTimeoutRate: 0.999})
	clock, _, r := newRig(t, WithFaults(in))
	// Plain Submit: the response is simply lost; the caller never hears.
	heard := false
	r.Submit(OpQueryState, func(Response) { heard = true })
	clock.RunFor(5 * time.Second)
	if heard {
		t.Fatal("response delivered despite drop injection")
	}
	if r.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", r.Dropped())
	}
	// The operation still executed at the daemon.
	if r.Served(StatusOK) != 1 {
		t.Fatalf("Served(OK) = %d, want 1 (op ran, reply lost)", r.Served(StatusOK))
	}

	// SubmitWithTimeout: the caller gets a synthesized StatusTimeout instead.
	var resp Response
	got := false
	r.SubmitWithTimeout(OpQueryState, 500*time.Millisecond, func(rs Response) { resp = rs; got = true })
	clock.RunFor(5 * time.Second)
	if !got {
		t.Fatal("SubmitWithTimeout never reported")
	}
	if resp.Status != StatusTimeout {
		t.Fatalf("status = %v, want TIMEOUT", resp.Status)
	}
	if r.Timeouts() != 1 {
		t.Fatalf("Timeouts() = %d, want 1", r.Timeouts())
	}
	if resp.ID == 0 {
		t.Fatal("synthesized timeout response missing request id")
	}
}

func TestSubmitWithTimeoutDeliversRealResponse(t *testing.T) {
	// Faults enabled but at a rate of zero impairments actually drawn is not
	// guaranteed, so use a config whose only effect is extra latency: the
	// response always arrives, inside the deadline, and no timeout fires.
	in := newInjector(t, faults.Config{Seed: 3, RILExtraLatency: 100 * time.Millisecond})
	clock, _, r := newRig(t, WithFaults(in))
	var resp Response
	r.SubmitWithTimeout(OpQueryState, time.Second, func(rs Response) { resp = rs })
	clock.RunFor(5 * time.Second)
	if resp.Status != StatusOK {
		t.Fatalf("status = %v, want OK", resp.Status)
	}
	if r.Timeouts() != 0 {
		t.Fatalf("Timeouts() = %d, want 0", r.Timeouts())
	}
}

func TestSubmitWithTimeoutFaultFreeFallsThrough(t *testing.T) {
	// Without an enabled injector the deadline machinery must be skipped:
	// same behavior and same schedule as plain Submit.
	clock, _, r := newRig(t)
	var at time.Duration
	r.SubmitWithTimeout(OpQueryState, time.Nanosecond, func(Response) { at = clock.Now() })
	clock.Run()
	if at != DefaultHopLatency {
		t.Fatalf("response at %v, want plain hop latency %v", at, DefaultHopLatency)
	}
	if r.Timeouts() != 0 {
		t.Fatal("fault-free path armed a watchdog")
	}
}

func TestForceDormancyWithRetrySurvivesDrops(t *testing.T) {
	// Half the responses are lost; the retry loop must keep going through
	// StatusTimeout attempts and eventually land an OK.
	in := newInjector(t, faults.Config{Seed: 4, RILTimeoutRate: 0.5})
	clock, radio, r := newRig(t, WithFaults(in))
	promoteToDCH(t, clock, radio)
	var final Response
	got := false
	r.ForceDormancyWithRetry(10, 100*time.Millisecond, func(rs Response) { final = rs; got = true })
	clock.RunFor(30 * time.Second)
	if !got {
		t.Fatal("retry loop never reported")
	}
	if final.Status != StatusOK {
		t.Fatalf("final status = %v, want OK despite dropped responses", final.Status)
	}
	if r.Dropped() == 0 || r.Timeouts() == 0 {
		t.Fatalf("expected drops and timeouts along the way: dropped=%d timeouts=%d",
			r.Dropped(), r.Timeouts())
	}
}

func TestForceDormancyWithRetryAllErrors(t *testing.T) {
	// Every attempt is rejected by the daemon: the loop must terminate with a
	// non-OK final status instead of hanging, and the radio stays un-demoted
	// by RIL (the rrc timers remain the fallback).
	in := newInjector(t, faults.Config{Seed: 5, RILErrorRate: 0.999})
	clock, radio, r := newRig(t, WithFaults(in))
	promoteToDCH(t, clock, radio)
	var final Response
	got := false
	r.ForceDormancyWithRetry(3, 100*time.Millisecond, func(rs Response) { final = rs; got = true })
	clock.RunFor(10 * time.Second)
	if !got {
		t.Fatal("retry loop never reported")
	}
	if final.Status == StatusOK {
		t.Fatal("final status OK despite every attempt erroring")
	}
	if r.Served(StatusError) != 3 {
		t.Fatalf("Served(ERROR) = %d, want 3 attempts", r.Served(StatusError))
	}
	// The inactivity timers still demote the radio on their own.
	clock.RunFor(time.Minute)
	if radio.State() != rrc.StateIdle {
		t.Fatalf("radio = %v, want IDLE via timers", radio.State())
	}
}
