package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("zero-width accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestExactLinearRecovery(t *testing.T) {
	// y = 3 + 2a - b: recoverable exactly.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		xs = append(xs, []float64{a, b})
		ys = append(ys, 3+2*a-b)
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(m.Intercept()-3) > 1e-6 {
		t.Fatalf("intercept = %v, want 3", m.Intercept())
	}
	coef := m.Coefficients()
	if math.Abs(coef[0]-2) > 1e-6 || math.Abs(coef[1]+1) > 1e-6 {
		t.Fatalf("coef = %v, want [2 -1]", coef)
	}
	got, err := m.Predict([]float64{4, 2})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(got-9) > 1e-6 {
		t.Fatalf("Predict = %v, want 9", got)
	}
}

func TestPredictChecksWidth(t *testing.T) {
	m, err := Fit([][]float64{{1, 2}, {2, 3}, {3, 5}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
}

func TestCollinearFeaturesTolerated(t *testing.T) {
	// Second feature is a copy of the first; ridge keeps it solvable.
	xs := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	ys := []float64{2, 4, 6, 8}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	got, err := m.Predict([]float64{5, 5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(got-10) > 0.01 {
		t.Fatalf("Predict = %v, want ≈10", got)
	}
}

func TestConstantFeatureSingular(t *testing.T) {
	// A feature identical to the implicit intercept column: still solvable
	// with ridge, prediction ≈ mean behavior.
	xs := [][]float64{{1}, {1}, {1}}
	ys := []float64{5, 6, 7}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	got, _ := m.Predict([]float64{1})
	if math.Abs(got-6) > 0.5 {
		t.Fatalf("Predict = %v, want ≈6", got)
	}
}

// TestPropertyResidualOrthogonality: OLS residuals are orthogonal to every
// feature column (the defining normal-equation property).
func TestPropertyResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 3}
			ys[i] = rng.NormFloat64() * 10
		}
		m, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		var dot0, dot1, dotC float64
		for i := range xs {
			p, err := m.Predict(xs[i])
			if err != nil {
				return false
			}
			r := ys[i] - p
			dot0 += r * xs[i][0]
			dot1 += r * xs[i][1]
			dotC += r
		}
		scale := float64(n)
		return math.Abs(dot0)/scale < 1e-4 && math.Abs(dot1)/scale < 1e-4 && math.Abs(dotC)/scale < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
