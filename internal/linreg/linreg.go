// Package linreg implements ordinary least-squares linear regression — the
// baseline the paper's Table 4 implicitly rules out: with near-zero Pearson
// correlation between reading time and every individual feature, "we cannot
// use simple linear models for prediction". The experiment harness fits this
// model anyway and shows it losing to GBRT, closing the paper's argument
// empirically.
package linreg

import (
	"errors"
	"fmt"
	"math"
)

// Model is a fitted linear model y = b0 + Σ bi·xi.
type Model struct {
	intercept float64
	coef      []float64
}

// Fit solves the least-squares problem over the given rows using the normal
// equations with Gaussian elimination (the feature count is tiny). A small
// ridge term keeps the system solvable when features are collinear.
func Fit(xs [][]float64, ys []float64) (*Model, error) {
	if len(xs) == 0 {
		return nil, errors.New("linreg: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("linreg: %d rows vs %d targets", len(xs), len(ys))
	}
	d := len(xs[0])
	if d == 0 {
		return nil, errors.New("linreg: zero-width features")
	}
	for i, row := range xs {
		if len(row) != d {
			return nil, fmt.Errorf("linreg: row %d has %d features, want %d", i, len(row), d)
		}
	}
	// Augmented design: [1, x1..xd]. Build X'X and X'y.
	n := d + 1
	xtx := make([][]float64, n)
	for i := range xtx {
		xtx[i] = make([]float64, n)
	}
	xty := make([]float64, n)
	row := make([]float64, n)
	for r, x := range xs {
		row[0] = 1
		copy(row[1:], x)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * ys[r]
		}
	}
	// Ridge regularization for numerical stability.
	const ridge = 1e-8
	for i := 1; i < n; i++ {
		xtx[i][i] += ridge * xtx[i][i]
	}
	beta, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &Model{intercept: beta[0], coef: beta[1:]}, nil
}

// Predict evaluates the model.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != len(m.coef) {
		return 0, fmt.Errorf("linreg: got %d features, model wants %d", len(x), len(m.coef))
	}
	y := m.intercept
	for i, c := range m.coef {
		y += c * x[i]
	}
	return y, nil
}

// Coefficients returns a copy of the fitted weights (without intercept).
func (m *Model) Coefficients() []float64 {
	out := make([]float64, len(m.coef))
	copy(out, m.coef)
	return out
}

// Intercept returns the fitted intercept.
func (m *Model) Intercept() float64 {
	return m.intercept
}

// solve performs Gaussian elimination with partial pivoting on a (copy is
// destructive: a and b are mutated).
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("linreg: singular design matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
