package channel

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzParseTrace drives the JSONL trace parser with hostile input. Contract:
// never panic; on success the schedule is fully validated (usable by netsim
// without further checks) and survives a Format → Parse round trip.
func FuzzParseTrace(f *testing.F) {
	// Seed corpus: well-formed traces first.
	for _, name := range Scenarios() {
		s, err := ScenarioSchedule(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := FormatTrace(&buf, s); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add(`{"kind":"channel-trace","name":"t","repeat":true}` + "\n" + `{"dur_ms":1000}`)
	f.Add(`{"at_ms":0,"dur_ms":5000,"bw_factor":0.5,"extra_rtt_ms":100,"loss":0.02}`)
	f.Add("# comment\n\n{\"dur_ms\":1}")
	// Hostile shapes: truncated JSON, wrong types, boundary numbers.
	f.Add(`{"dur_ms":`)
	f.Add(`{"dur_ms":"1000"}`)
	f.Add(`{"dur_ms":1e308,"bw_factor":1e-308}`)
	f.Add(`{"dur_ms":1000,"loss":-0.0}`)
	f.Add(`{"dur_ms":1000,"at_ms":null}`)
	f.Add(`{"kind":"channel-trace"}` + "\n" + `{"kind":"channel-trace"}`)

	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		// Parsed schedules honour every documented invariant.
		if s.Name() == "" || s.NumSegments() == 0 || s.Cycle() <= 0 {
			t.Fatalf("invalid schedule from %q: %+v", in, s)
		}
		var end time.Duration
		for i := 0; i < s.NumSegments(); i++ {
			seg := s.Segment(i)
			if seg.Start != end || seg.Dur <= 0 {
				t.Fatalf("non-contiguous segment %d from %q: %+v", i, in, seg)
			}
			if err := seg.Cond.Validate(); err != nil {
				t.Fatalf("invalid conditions survived parse of %q: %v", in, err)
			}
			end = seg.End()
		}
		// The schedule is usable: lookups and integration terminate and give
		// sane answers anywhere on the timeline.
		for _, at := range []time.Duration{0, end / 2, end, 10 * end} {
			if f := s.At(at).EffectiveFactor(); f <= 0 {
				t.Fatalf("EffectiveFactor %g at %v from %q", f, at, in)
			}
		}
		if d := s.XferDuration(0, 4096, 96); d <= 0 {
			t.Fatalf("XferDuration %v from %q", d, in)
		}
		// Round trip preserves the schedule exactly.
		var buf bytes.Buffer
		if err := FormatTrace(&buf, s); err != nil {
			t.Fatalf("FormatTrace after parse of %q: %v", in, err)
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of formatted %q: %v", in, err)
		}
		if back.Name() != s.Name() || back.Repeat() != s.Repeat() || back.NumSegments() != s.NumSegments() {
			t.Fatalf("round trip changed shape for %q", in)
		}
		for i := 0; i < s.NumSegments(); i++ {
			if s.Segment(i) != back.Segment(i) {
				t.Fatalf("round trip changed segment %d for %q: %+v -> %+v",
					i, in, s.Segment(i), back.Segment(i))
			}
		}
	})
}
