// Package channel models deterministic time-varying radio channels: a
// Schedule is a piecewise-constant sequence of link conditions (bandwidth
// factor, extra latency, loss rate) that netsim.Link consults as simulated
// time advances. Real cells fade, congest and hand over — the paper's fixed
// Td/Tp thresholds were tuned on one static T-Mobile link, and the
// measurement literature shows energy results are highly sensitive to these
// conditions — so the scenario matrix replays the same workloads under named
// condition profiles instead of a single calibrated constant.
//
// Everything here is a pure function of simulated time: no random source, no
// internal state. Composition with the seed-driven fault injector follows the
// toxiproxy model of stacking "toxics" — the channel scales bandwidth and
// adds latency first, then the injector's per-attempt plan applies on top —
// so two runs with the same schedule, seed and workload are byte-identical.
//
// Schedules come from three places: the named built-in scenarios
// (ScenarioSchedule), hand-built segment lists (New), and parsed JSONL
// traces (ParseTrace — the eatrace-style interchange format, fuzzed).
package channel

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Validation bounds. Factors below MinBandwidthFactor would let a schedule
// wedge the simulation (a 1 MB transfer at 96 KB/s × 1e-6 outlives the
// 30-minute load watchdog); the caps on the other knobs keep parsed traces
// from encoding nonsense.
const (
	MinBandwidthFactor = 0.001
	MaxBandwidthFactor = 1000.0
	MaxExtraRTT        = 10 * time.Minute
	MaxSegmentDur      = 24 * time.Hour
	MaxSegments        = 100_000
)

// Conditions are the link impairments in force over one schedule segment.
// The zero value is invalid (bandwidth factor 0); Clear is the identity.
type Conditions struct {
	// BandwidthFactor scales the link's configured bandwidth, in
	// [MinBandwidthFactor, MaxBandwidthFactor]. 1 leaves it untouched.
	BandwidthFactor float64
	// ExtraRTT is added to every transfer's per-request overhead.
	ExtraRTT time.Duration
	// LossRate is the packet-loss probability in [0, 1). Loss degrades
	// throughput deterministically (Mathis-style steady-state goodput, no
	// randomness — the fault injector owns stochastic loss).
	LossRate float64
}

// Clear is the identity condition: full bandwidth, no extra latency, no loss.
var Clear = Conditions{BandwidthFactor: 1}

// Validate checks the conditions against the documented bounds.
func (c Conditions) Validate() error {
	switch {
	case math.IsNaN(c.BandwidthFactor) || c.BandwidthFactor < MinBandwidthFactor || c.BandwidthFactor > MaxBandwidthFactor:
		return fmt.Errorf("channel: bandwidth factor %g out of [%g, %g]",
			c.BandwidthFactor, MinBandwidthFactor, MaxBandwidthFactor)
	case c.ExtraRTT < 0 || c.ExtraRTT > MaxExtraRTT:
		return fmt.Errorf("channel: extra RTT %v out of [0, %v]", c.ExtraRTT, MaxExtraRTT)
	case math.IsNaN(c.LossRate) || c.LossRate < 0 || c.LossRate >= 1:
		return fmt.Errorf("channel: loss rate %g out of [0, 1)", c.LossRate)
	}
	return nil
}

// EffectiveFactor is the combined throughput multiplier: the bandwidth
// factor degraded by the deterministic loss model. Always positive.
func (c Conditions) EffectiveFactor() float64 {
	return c.BandwidthFactor * lossFactor(c.LossRate)
}

// lossFactor maps a loss rate onto a Mathis-style steady-state goodput
// fraction — the same shape the fault injector draws around, but with no
// jitter: the channel layer is strictly deterministic.
func lossFactor(p float64) float64 {
	if p <= 0 {
		return 1
	}
	f := (1 - p) / (1 + 3*math.Sqrt(p))
	if f < 0.01 {
		return 0.01
	}
	return f
}

// Segment is one constant-condition span of a schedule.
type Segment struct {
	// Start is the segment's offset from the schedule origin.
	Start time.Duration
	// Dur is the segment length; must be positive.
	Dur time.Duration
	// Cond are the conditions in force throughout the segment.
	Cond Conditions
}

// End is the segment's exclusive end offset.
func (s Segment) End() time.Duration { return s.Start + s.Dur }

// Schedule is a validated piecewise-constant channel: contiguous segments
// starting at offset zero. A repeating schedule cycles forever; a
// non-repeating one holds its last segment's conditions past the end.
// Schedules are immutable after New and safe for concurrent readers.
type Schedule struct {
	name     string
	segments []Segment
	cycle    time.Duration
	repeat   bool
}

// New builds a schedule from contiguous segments. Segment starts are
// validated, not inferred: a zero-length segment, a gap, or an overlap is
// rejected so trace files that disagree with their own offsets fail loudly.
func New(name string, repeat bool, segments ...Segment) (*Schedule, error) {
	if name == "" {
		return nil, errors.New("channel: schedule needs a name")
	}
	if len(segments) == 0 {
		return nil, fmt.Errorf("channel: schedule %q has no segments", name)
	}
	if len(segments) > MaxSegments {
		return nil, fmt.Errorf("channel: schedule %q has %d segments (max %d)",
			name, len(segments), MaxSegments)
	}
	var end time.Duration
	for i, seg := range segments {
		if seg.Dur <= 0 || seg.Dur > MaxSegmentDur {
			return nil, fmt.Errorf("channel: schedule %q segment %d duration %v out of (0, %v]",
				name, i, seg.Dur, MaxSegmentDur)
		}
		switch {
		case seg.Start < end:
			return nil, fmt.Errorf("channel: schedule %q segment %d starts at %v, overlapping the previous end %v",
				name, i, seg.Start, end)
		case seg.Start > end:
			return nil, fmt.Errorf("channel: schedule %q segment %d starts at %v, leaving a gap after %v",
				name, i, seg.Start, end)
		}
		if err := seg.Cond.Validate(); err != nil {
			return nil, fmt.Errorf("channel: schedule %q segment %d: %w", name, i, err)
		}
		end = seg.End()
	}
	segs := make([]Segment, len(segments))
	copy(segs, segments)
	return &Schedule{name: name, segments: segs, cycle: end, repeat: repeat}, nil
}

// Constant wraps one condition set as a schedule that holds forever — the
// degenerate channel the epoch-quantized fleet templates simulate under.
func Constant(name string, cond Conditions) (*Schedule, error) {
	return New(name, false, Segment{Dur: time.Second, Cond: cond})
}

// Name returns the schedule's name.
func (s *Schedule) Name() string { return s.name }

// Repeat reports whether the schedule cycles.
func (s *Schedule) Repeat() bool { return s.repeat }

// Cycle is the total length of one pass over the segments.
func (s *Schedule) Cycle() time.Duration { return s.cycle }

// NumSegments returns the segment count.
func (s *Schedule) NumSegments() int { return len(s.segments) }

// Segment returns the i-th segment.
func (s *Schedule) Segment(i int) Segment { return s.segments[i] }

// SegmentIndexAt returns the index of the segment in force at offset t
// (cycle-folded for repeating schedules, clamped to the last segment past
// the end of a non-repeating one). Negative offsets clamp to zero.
func (s *Schedule) SegmentIndexAt(t time.Duration) int {
	t = s.fold(t)
	// Binary search over starts; len is typically single digits but trace
	// files can be long.
	i := sort.Search(len(s.segments), func(i int) bool {
		return s.segments[i].Start > t
	})
	return i - 1
}

// At returns the conditions in force at offset t.
func (s *Schedule) At(t time.Duration) Conditions {
	return s.segments[s.SegmentIndexAt(t)].Cond
}

// fold maps an arbitrary offset into [0, cycle): modulo for repeating
// schedules, clamped into the last segment otherwise.
func (s *Schedule) fold(t time.Duration) time.Duration {
	if t < 0 {
		return 0
	}
	if t >= s.cycle {
		if !s.repeat {
			return s.cycle - 1 // inside the last segment
		}
		t %= s.cycle
	}
	return t
}

// XferDuration integrates the transfer of bytes at base rate baseKBps
// starting at schedule offset start: each segment contributes bytes at the
// base rate scaled by its effective factor, so a transfer spanning a segment
// boundary moves exactly the bytes each side of the boundary allows.
// BytesOver is the inverse; their agreement is a tested invariant.
func (s *Schedule) XferDuration(start time.Duration, bytes int, baseKBps float64) time.Duration {
	if bytes <= 0 || baseKBps <= 0 {
		return 0
	}
	remaining := float64(bytes)
	elapsed := 0.0
	at := start
	for {
		seg := s.segments[s.SegmentIndexAt(at)]
		rate := baseKBps * seg.Cond.EffectiveFactor() * 1024 // bytes/s
		span := s.spanWithin(at, seg)
		if span <= 0 {
			// Unbounded tail (last segment of a non-repeating schedule).
			return durationSeconds(elapsed + remaining/rate)
		}
		spanS := span.Seconds()
		capacity := rate * spanS
		if remaining <= capacity {
			return durationSeconds(elapsed + remaining/rate)
		}
		remaining -= capacity
		elapsed += spanS
		at += span
	}
}

// BytesOver integrates the deliverable bytes at base rate baseKBps over the
// window [start, start+dur) — the inverse of XferDuration.
func (s *Schedule) BytesOver(start, dur time.Duration, baseKBps float64) float64 {
	if dur <= 0 || baseKBps <= 0 {
		return 0
	}
	total := 0.0
	at := start
	left := dur
	for left > 0 {
		seg := s.segments[s.SegmentIndexAt(at)]
		rate := baseKBps * seg.Cond.EffectiveFactor() * 1024
		span := s.spanWithin(at, seg)
		if span <= 0 || span > left {
			span = left
		}
		total += rate * span.Seconds()
		at += span
		left -= span
	}
	return total
}

// spanWithin returns the time left inside seg from offset at, or 0 when the
// segment extends forever (non-repeating tail).
func (s *Schedule) spanWithin(at time.Duration, seg Segment) time.Duration {
	folded := s.fold(at)
	if !s.repeat && seg.End() >= s.cycle {
		return 0
	}
	return seg.End() - folded
}

func durationSeconds(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// --- built-in scenarios -------------------------------------------------------

// Scenarios lists the built-in scenario names, sorted. Every name is valid
// for ScenarioSchedule, eabench -exp scenarios, fleet channel configs and the
// easerd "channel" request field.
func Scenarios() []string {
	return []string{"bursty-loss", "cell-handover", "congestion-ramp", "fading", "steady-3g"}
}

// ScenarioSchedule resolves a built-in scenario by name. Unknown names fail
// with the valid-name list, mirroring the radio-profile and benchmark-page
// errors.
func ScenarioSchedule(name string) (*Schedule, error) {
	if build, ok := scenarioBuilders[name]; ok {
		return build()
	}
	return nil, fmt.Errorf("channel: unknown scenario %q (have: %s)",
		name, strings.Join(Scenarios(), ", "))
}

// seq builds a schedule from durations and conditions alone, deriving the
// contiguous starts. The built-ins are constructed at package init-by-use and
// must validate; a broken table is a programming error.
func seq(name string, repeat bool, parts ...Segment) func() (*Schedule, error) {
	return func() (*Schedule, error) {
		segs := make([]Segment, len(parts))
		var at time.Duration
		for i, p := range parts {
			segs[i] = Segment{Start: at, Dur: p.Dur, Cond: p.Cond}
			at += p.Dur
		}
		return New(name, repeat, segs...)
	}
}

// span is a Start-less segment for the scenario tables.
func span(dur time.Duration, factor float64, extraRTT time.Duration, loss float64) Segment {
	return Segment{Dur: dur, Cond: Conditions{BandwidthFactor: factor, ExtraRTT: extraRTT, LossRate: loss}}
}

// scenarioBuilders holds the built-in condition profiles, calibrated around
// the paper's 96 KB/s DCH link:
//
//   - steady-3g: the paper's fixed link, as a schedule (regression anchor).
//   - fading: a slow signal swell and trough, stepped sinusoid-style.
//   - congestion-ramp: rush-hour cell load ramping up, saturating, easing.
//   - cell-handover: long good intervals cut by a deep multi-second gap.
//   - bursty-loss: clean air interrupted by short high-loss bursts.
var scenarioBuilders = map[string]func() (*Schedule, error){
	"steady-3g": seq("steady-3g", false,
		span(time.Minute, 1, 0, 0)),
	"fading": seq("fading", true,
		span(10*time.Second, 1.0, 0, 0),
		span(8*time.Second, 0.65, 20*time.Millisecond, 0),
		span(6*time.Second, 0.35, 60*time.Millisecond, 0.01),
		span(6*time.Second, 0.15, 150*time.Millisecond, 0.03),
		span(6*time.Second, 0.35, 60*time.Millisecond, 0.01),
		span(8*time.Second, 0.65, 20*time.Millisecond, 0),
		span(10*time.Second, 1.1, 0, 0)),
	"congestion-ramp": seq("congestion-ramp", true,
		span(30*time.Second, 1.0, 0, 0),
		span(20*time.Second, 0.6, 80*time.Millisecond, 0.02),
		span(25*time.Second, 0.35, 200*time.Millisecond, 0.05),
		span(15*time.Second, 0.6, 80*time.Millisecond, 0.02)),
	"cell-handover": seq("cell-handover", true,
		span(25*time.Second, 1.0, 0, 0),
		span(3*time.Second, 0.05, 400*time.Millisecond, 0.10),
		span(12*time.Second, 0.5, 100*time.Millisecond, 0.02)),
	"bursty-loss": seq("bursty-loss", true,
		span(10*time.Second, 1.0, 0, 0),
		span(5*time.Second, 0.9, 30*time.Millisecond, 0.15),
		span(8*time.Second, 1.0, 0, 0),
		span(4*time.Second, 0.8, 60*time.Millisecond, 0.30)),
}
