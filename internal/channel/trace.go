package channel

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// The JSONL trace format mirrors eatrace's output style: one JSON object per
// line. An optional first line is a header:
//
//	{"kind":"channel-trace","name":"commute","repeat":true}
//
// and every other line is a segment:
//
//	{"dur_ms":5000,"bw_factor":0.5,"extra_rtt_ms":100,"loss":0.02}
//
// Segment starts are implied contiguous; a line may pin its own offset with
// "at_ms", in which case the offset must agree with the running end (the
// schedule validator rejects gaps and overlaps). Omitted fields default to
// the identity (bw_factor 1, extra_rtt_ms 0, loss 0); dur_ms is required.

// TraceKind is the header "kind" discriminator.
const TraceKind = "channel-trace"

// maxTraceLine bounds one JSONL line; longer lines are a parse error, not an
// unbounded allocation.
const maxTraceLine = 1 << 20

// traceLine is the wire shape of both header and segment lines.
type traceLine struct {
	Kind   string `json:"kind,omitempty"`
	Name   string `json:"name,omitempty"`
	Repeat bool   `json:"repeat,omitempty"`

	AtMs       *float64 `json:"at_ms,omitempty"`
	DurMs      *float64 `json:"dur_ms,omitempty"`
	BwFactor   *float64 `json:"bw_factor,omitempty"`
	ExtraRTTMs float64  `json:"extra_rtt_ms,omitempty"`
	Loss       float64  `json:"loss,omitempty"`
}

// ParseTrace reads a JSONL channel trace into a validated schedule. Errors
// carry the 1-based line number. The parser never panics on hostile input
// (fuzzed); it bounds line length and segment count instead.
func ParseTrace(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLine)

	name := "trace"
	repeat := false
	var segs []Segment
	var end time.Duration
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		var ln traceLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			return nil, fmt.Errorf("channel: trace line %d: %w", lineNo, err)
		}
		if ln.Kind != "" {
			if ln.Kind != TraceKind {
				return nil, fmt.Errorf("channel: trace line %d: kind %q, want %q", lineNo, ln.Kind, TraceKind)
			}
			if len(segs) > 0 {
				return nil, fmt.Errorf("channel: trace line %d: header after segments", lineNo)
			}
			if ln.Name != "" {
				name = ln.Name
			}
			repeat = ln.Repeat
			continue
		}
		seg, err := ln.segment(end)
		if err != nil {
			return nil, fmt.Errorf("channel: trace line %d: %w", lineNo, err)
		}
		if len(segs) >= MaxSegments {
			return nil, fmt.Errorf("channel: trace line %d: more than %d segments", lineNo, MaxSegments)
		}
		segs = append(segs, seg)
		end = seg.End()
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("channel: trace line %d: line exceeds %d bytes", lineNo+1, maxTraceLine)
		}
		return nil, fmt.Errorf("channel: trace: %w", err)
	}
	return New(name, repeat, segs...)
}

// segment converts a wire line into a Segment starting (by default) at the
// running end.
func (ln traceLine) segment(end time.Duration) (Segment, error) {
	if ln.DurMs == nil {
		return Segment{}, errors.New("segment needs dur_ms")
	}
	dur, err := msDuration("dur_ms", *ln.DurMs)
	if err != nil {
		return Segment{}, err
	}
	start := end
	if ln.AtMs != nil {
		if start, err = msDuration("at_ms", *ln.AtMs); err != nil {
			return Segment{}, err
		}
	}
	bw := 1.0
	if ln.BwFactor != nil {
		bw = *ln.BwFactor
	}
	extra, err := msDuration("extra_rtt_ms", ln.ExtraRTTMs)
	if err != nil {
		return Segment{}, err
	}
	return Segment{
		Start: start,
		Dur:   dur,
		Cond:  Conditions{BandwidthFactor: bw, ExtraRTT: extra, LossRate: ln.Loss},
	}, nil
}

// msDuration converts a millisecond count to a duration, rejecting values a
// Duration cannot faithfully hold. Rounding to the nearest nanosecond makes
// FormatTrace → ParseTrace lossless for durations up to MaxSegmentDur.
func msDuration(field string, ms float64) (time.Duration, error) {
	if math.IsNaN(ms) || ms < 0 || ms > float64(MaxSegmentDur/time.Millisecond) {
		return 0, fmt.Errorf("%s %g out of [0, %g]", field, ms, float64(MaxSegmentDur/time.Millisecond))
	}
	return time.Duration(math.Round(ms * float64(time.Millisecond))), nil
}

// FormatTrace writes the schedule in the JSONL trace format: a header line
// followed by one contiguous segment per line (no at_ms — offsets are
// implied, so a reformatted trace always re-parses cleanly).
func FormatTrace(w io.Writer, s *Schedule) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(traceLine{Kind: TraceKind, Name: s.Name(), Repeat: s.Repeat()}); err != nil {
		return err
	}
	for i := 0; i < s.NumSegments(); i++ {
		seg := s.Segment(i)
		dur := float64(seg.Dur) / float64(time.Millisecond)
		line := traceLine{DurMs: &dur, ExtraRTTMs: float64(seg.Cond.ExtraRTT) / float64(time.Millisecond), Loss: seg.Cond.LossRate}
		if seg.Cond.BandwidthFactor != 1 {
			f := seg.Cond.BandwidthFactor
			line.BwFactor = &f
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
