package channel

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseTraceRoundTrip(t *testing.T) {
	for _, name := range Scenarios() {
		s, err := ScenarioSchedule(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := FormatTrace(&buf, s); err != nil {
			t.Fatalf("FormatTrace(%q): %v", name, err)
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("ParseTrace(%q): %v", name, err)
		}
		if back.Name() != s.Name() || back.Repeat() != s.Repeat() || back.NumSegments() != s.NumSegments() {
			t.Fatalf("%q round trip changed shape: %+v vs %+v", name, back, s)
		}
		for i := 0; i < s.NumSegments(); i++ {
			if s.Segment(i) != back.Segment(i) {
				t.Fatalf("%q segment %d changed: %+v -> %+v", name, i, s.Segment(i), back.Segment(i))
			}
		}
	}
}

func TestParseTraceFormats(t *testing.T) {
	in := `# commute trace
{"kind":"channel-trace","name":"commute","repeat":true}

{"dur_ms":5000}
{"at_ms":5000,"dur_ms":2500,"bw_factor":0.5,"extra_rtt_ms":100,"loss":0.02}
`
	s, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "commute" || !s.Repeat() || s.NumSegments() != 2 {
		t.Fatalf("parsed %q repeat=%v n=%d", s.Name(), s.Repeat(), s.NumSegments())
	}
	want := Segment{
		Start: 5 * time.Second,
		Dur:   2500 * time.Millisecond,
		Cond:  Conditions{BandwidthFactor: 0.5, ExtraRTT: 100 * time.Millisecond, LossRate: 0.02},
	}
	if got := s.Segment(1); got != want {
		t.Fatalf("segment 1 = %+v, want %+v", got, want)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"bad-json", "{nope", "line 1"},
		{"missing-dur", `{"bw_factor":0.5}`, "dur_ms"},
		{"negative-dur", `{"dur_ms":-5}`, "dur_ms"},
		{"nan-loss", `{"dur_ms":1000,"loss":5}`, "loss rate"},
		{"overlap-at", "{\"dur_ms\":5000}\n{\"at_ms\":1000,\"dur_ms\":1000}", "overlapping"},
		{"gap-at", "{\"dur_ms\":5000}\n{\"at_ms\":9000,\"dur_ms\":1000}", "gap"},
		{"wrong-kind", `{"kind":"not-a-trace"}`, "kind"},
		{"late-header", "{\"dur_ms\":1000}\n{\"kind\":\"channel-trace\"}", "header after segments"},
		{"empty", "", "no segments"},
		{"huge-line", `{"dur_ms":1000,"name":"` + strings.Repeat("x", maxTraceLine+10) + `"}`, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseTrace accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
