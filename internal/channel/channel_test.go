package channel

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"
)

func mustSchedule(t *testing.T, name string, repeat bool, segs ...Segment) *Schedule {
	t.Helper()
	s, err := New(name, repeat, segs...)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return s
}

func seg(start, dur time.Duration, factor float64) Segment {
	return Segment{Start: start, Dur: dur, Cond: Conditions{BandwidthFactor: factor}}
}

func TestNewRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		segs []Segment
		want string
	}{
		{"empty", nil, "no segments"},
		{"zero-length", []Segment{seg(0, 0, 1)}, "duration"},
		{"negative-length", []Segment{seg(0, -time.Second, 1)}, "duration"},
		{"overlap", []Segment{seg(0, 10*time.Second, 1), seg(5*time.Second, 10*time.Second, 1)}, "overlapping"},
		{"gap", []Segment{seg(0, 10*time.Second, 1), seg(15*time.Second, 10*time.Second, 1)}, "gap"},
		{"late-start", []Segment{seg(5*time.Second, 10*time.Second, 1)}, "gap"},
		{"zero-factor", []Segment{seg(0, time.Second, 0)}, "bandwidth factor"},
		{"nan-factor", []Segment{seg(0, time.Second, math.NaN())}, "bandwidth factor"},
		{"huge-factor", []Segment{seg(0, time.Second, 1e9)}, "bandwidth factor"},
		{"loss-one", []Segment{{Dur: time.Second, Cond: Conditions{BandwidthFactor: 1, LossRate: 1}}}, "loss rate"},
		{"negative-rtt", []Segment{{Dur: time.Second, Cond: Conditions{BandwidthFactor: 1, ExtraRTT: -time.Second}}}, "extra RTT"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New("bad", false, tc.segs...); err == nil {
				t.Fatalf("New accepted %s schedule", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := New("", false, seg(0, time.Second, 1)); err == nil {
		t.Fatal("New accepted empty name")
	}
}

func TestAtFoldsAndClamps(t *testing.T) {
	rep := mustSchedule(t, "rep", true,
		seg(0, 10*time.Second, 1),
		seg(10*time.Second, 5*time.Second, 0.5))
	if got := rep.At(12 * time.Second).BandwidthFactor; got != 0.5 {
		t.Fatalf("At(12s) factor = %g, want 0.5", got)
	}
	// 27s folds to 12s in the 15s cycle.
	if got := rep.At(27 * time.Second).BandwidthFactor; got != 0.5 {
		t.Fatalf("At(27s) factor = %g, want 0.5 (cycle fold)", got)
	}
	if got := rep.At(-time.Second).BandwidthFactor; got != 1 {
		t.Fatalf("At(-1s) factor = %g, want 1 (clamped)", got)
	}

	once := mustSchedule(t, "once", false,
		seg(0, 10*time.Second, 1),
		seg(10*time.Second, 5*time.Second, 0.5))
	// Past the end, a non-repeating schedule holds its last segment.
	if got := once.At(time.Hour).BandwidthFactor; got != 0.5 {
		t.Fatalf("At(1h) factor = %g, want 0.5 (last segment holds)", got)
	}
	if got := once.SegmentIndexAt(time.Hour); got != 1 {
		t.Fatalf("SegmentIndexAt(1h) = %d, want 1", got)
	}
}

func TestEffectiveFactorLossModel(t *testing.T) {
	if got := (Conditions{BandwidthFactor: 1}).EffectiveFactor(); got != 1 {
		t.Fatalf("lossless factor = %g, want 1", got)
	}
	lossy := Conditions{BandwidthFactor: 1, LossRate: 0.04}
	want := (1 - 0.04) / (1 + 3*math.Sqrt(0.04))
	if got := lossy.EffectiveFactor(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("loss 4%% factor = %g, want %g", got, want)
	}
	// The floor keeps heavy loss from wedging transfers entirely.
	floor := Conditions{BandwidthFactor: 1, LossRate: 0.999}
	if got := floor.EffectiveFactor(); got < 0.009 {
		t.Fatalf("heavy-loss factor = %g, want >= 0.01 floor", got)
	}
}

// TestBytesConservedAcrossBoundaries is the core property: integrating a
// transfer's duration and integrating bytes over that duration are inverse,
// so no bytes are created or lost when a transfer spans segment boundaries.
func TestBytesConservedAcrossBoundaries(t *testing.T) {
	schedules := []*Schedule{
		mustSchedule(t, "two-step", false,
			seg(0, 4*time.Second, 1), seg(4*time.Second, 4*time.Second, 0.25)),
		mustSchedule(t, "cycle", true,
			seg(0, 3*time.Second, 1),
			seg(3*time.Second, 2*time.Second, 0.2),
			seg(5*time.Second, 4*time.Second, 0.6)),
	}
	for _, name := range Scenarios() {
		s, err := ScenarioSchedule(name)
		if err != nil {
			t.Fatal(err)
		}
		schedules = append(schedules, s)
	}

	const baseKBps = 96.0
	starts := []time.Duration{0, 1500 * time.Millisecond, 4 * time.Second, 29 * time.Second, 3 * time.Minute}
	sizes := []int{100, 4096, 100_000, 760 * 1024}
	for _, s := range schedules {
		for _, start := range starts {
			for _, bytes := range sizes {
				dur := s.XferDuration(start, bytes, baseKBps)
				if dur <= 0 {
					t.Fatalf("%s: XferDuration(%v, %d) = %v", s.Name(), start, bytes, dur)
				}
				got := s.BytesOver(start, dur, baseKBps)
				if math.Abs(got-float64(bytes)) > 1 { // 1 byte of FP slack
					t.Fatalf("%s: start %v, %d bytes -> dur %v -> %.3f bytes back",
						s.Name(), start, bytes, dur, got)
				}
			}
		}
	}
}

// TestXferDurationSplitsAtBoundary pins the integration arithmetic with a
// hand-computed boundary crossing: 96 KB at 96 KB/s under a schedule that
// halves bandwidth after 0.5 s must take 0.5 s + (48 KB / 48 KB/s) = 1.5 s.
func TestXferDurationSplitsAtBoundary(t *testing.T) {
	s := mustSchedule(t, "halve", false,
		seg(0, 500*time.Millisecond, 1),
		seg(500*time.Millisecond, time.Minute, 0.5))
	got := s.XferDuration(0, 96*1024, 96)
	want := 1500 * time.Millisecond
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("XferDuration = %v, want %v", got, want)
	}
}

func TestConstantHoldsForever(t *testing.T) {
	s, err := Constant("const", Conditions{BandwidthFactor: 0.5, ExtraRTT: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := s.At(at).BandwidthFactor; got != 0.5 {
			t.Fatalf("At(%v) factor = %g, want 0.5", at, got)
		}
	}
	// Constant rate: duration proportional to bytes even far past the
	// nominal segment end.
	d1 := s.XferDuration(time.Hour, 1024, 1)
	if diff := d1 - 2*time.Second; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("constant 1 KB at 0.5 KB/s = %v, want 2s", d1)
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := Scenarios()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Scenarios() not sorted: %v", names)
	}
	for _, name := range names {
		s, err := ScenarioSchedule(name)
		if err != nil {
			t.Fatalf("ScenarioSchedule(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("schedule %q reports name %q", name, s.Name())
		}
		if s.Cycle() <= 0 {
			t.Fatalf("scenario %q has cycle %v", name, s.Cycle())
		}
	}

	_, err := ScenarioSchedule("nope")
	if err == nil {
		t.Fatal("ScenarioSchedule accepted unknown name")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-scenario error %q does not list %q", err, name)
		}
	}
}
