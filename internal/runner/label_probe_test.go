package runner

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"runtime/pprof"
	"testing"
)

// TestWorkerProfileLabels captures a CPU profile of a labeled pool run and
// checks the samples carry the pool/worker tags eabench -pprof relies on.
func TestWorkerProfileLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("needs CPU samples")
	}
	SetProfileLabels(true)
	defer SetProfileLabels(false)
	f, err := os.CreateTemp(t.TempDir(), "cpu*.prof")
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	err = MapN(4, 64, func(i int) error {
		x := 0.0
		for j := 0; j < 5_000_000; j++ {
			x += float64(j % 7)
		}
		_ = x
		return nil
	})
	pprof.StopCPUProfile()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	prof, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	// Avoiding a profile-proto dependency: label keys and values land in the
	// proto's string table verbatim, so inflating the gzip stream and
	// searching for them is enough.
	if !profileContains(t, prof, "pool") || !profileContains(t, prof, "runner") {
		t.Fatal("CPU profile carries no pool=runner labels")
	}
}

func profileContains(t *testing.T, gz []byte, needle string) bool {
	t.Helper()
	r, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatalf("profile not gzip: %v", err)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("inflate profile: %v", err)
	}
	return bytes.Contains(raw, []byte(needle))
}
