package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := CollectN(workers, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		out, err := CollectN(workers, 30, func(i int) (string, error) {
			// Vary per-task latency so completion order differs from
			// submission order under real concurrency.
			time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
			return fmt.Sprintf("task-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("results differ between 1 and 8 workers")
	}
}

func TestMapLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := MapN(workers, 20, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 17:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}

func TestMapRunsEveryTaskDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	err := MapN(4, 25, func(i int) error {
		ran.Add(1)
		if i%2 == 0 {
			return errors.New("even")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() != 25 {
		t.Fatalf("ran %d tasks, want 25", ran.Load())
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := MapN(workers, 40, func(i int) error {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak.Load(), workers)
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	if err := Map(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Map(-5, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(0)
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset, want >= 1", Workers())
	}
	_ = old
}

func TestMemoBuildsOnce(t *testing.T) {
	var m Memo[int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Get(func() (int, error) {
				builds.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("built %d times, want 1", builds.Load())
	}
}

func TestMemoCachesError(t *testing.T) {
	var m Memo[int]
	boom := errors.New("boom")
	if _, err := m.Get(func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v", err)
	}
	// The failed build is not retried; the error is the artifact.
	if _, err := m.Get(func() (int, error) { return 7, nil }); !errors.Is(err, boom) {
		t.Fatalf("second Get err = %v, want cached %v", err, boom)
	}
}

func TestKeyedMemoPerKey(t *testing.T) {
	var km KeyedMemo[string, int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		key := fmt.Sprintf("k%d", g%3)
		want := g % 3
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := km.Get(key, func() (int, error) {
				builds.Add(1)
				return want, nil
			})
			if err != nil || v != want {
				t.Errorf("Get(%s) = %d, %v; want %d", key, v, err, want)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 3 {
		t.Fatalf("built %d times, want 3 (one per key)", builds.Load())
	}
}
