// Package runner is the execution layer behind the experiment harness: a
// bounded worker pool with deterministic, order-preserving result
// collection, and memoized artifact stores shared across experiments.
//
// Every simulated phone owns its own virtual clock, radio and link, so page
// loads are embarrassingly parallel — but the paper's tables must come out
// byte-identical no matter how many workers run them. The pool therefore
// never lets completion order leak into results: outputs land in a slice by
// input index, errors are reported lowest-index-first, and aggregation is
// left to the caller, who walks the slice in order. Two runs with worker
// counts 1 and N produce identical bits.
package runner

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool size used by Map/Collect when the caller does
// not pass one explicitly; 0 means GOMAXPROCS. It is set once at startup
// (eabench's -parallel flag) or by tests.
var defaultWorkers atomic.Int64

// SetWorkers sets the default pool size. n <= 0 resets to GOMAXPROCS.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers reports the default pool size (resolving 0 to GOMAXPROCS).
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// profileLabels, when set, tags every pool goroutine with runtime/pprof
// labels (pool=runner, worker=<id>) so CPU and goroutine profiles taken via
// eabench -pprof attribute samples to pool workers instead of anonymous
// goroutines. Off by default: unprofiled runs pay nothing.
var profileLabels atomic.Bool

// SetProfileLabels enables or disables pprof labelling of pool workers.
func SetProfileLabels(on bool) {
	profileLabels.Store(on)
}

// Map runs fn(i) for every i in [0, n) on the default pool and returns the
// lowest-index error, if any. See MapN for the execution contract.
func Map(n int, fn func(i int) error) error {
	return MapN(Workers(), n, fn)
}

// MapN runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS; one worker runs everything inline on the
// calling goroutine).
//
// All n tasks run even if some fail: cancelling on first completion-ordered
// error would make *which* error surfaces depend on scheduling. Instead the
// error returned is always the one with the lowest index — deterministic for
// any worker count.
func MapN(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			loop := func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}
			if profileLabels.Load() {
				pprof.Do(context.Background(),
					pprof.Labels("pool", "runner", "worker", strconv.Itoa(worker)),
					func(context.Context) { loop() })
				return
			}
			loop()
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect runs fn(i) for every i in [0, n) on the default pool and returns
// the results ordered by index — result[i] is fn(i)'s value regardless of
// which worker computed it or when it finished.
func Collect[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return CollectN[T](Workers(), n, fn)
}

// CollectN is Collect with an explicit worker count.
func CollectN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := MapN(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
