package runner

import "sync"

// Memo is a once-built, concurrency-safe artifact cell. The first Get builds
// the value; every later Get — from any goroutine — returns the same value
// (or the same build error) without rebuilding. Concurrent first callers
// block until the single build finishes.
//
// The zero value is ready to use. A Memo must not be copied after first use.
type Memo[T any] struct {
	once sync.Once
	val  T
	err  error
}

// Get returns the memoized value, building it on first call.
func (m *Memo[T]) Get(build func() (T, error)) (T, error) {
	m.once.Do(func() { m.val, m.err = build() })
	return m.val, m.err
}

// KeyedMemo memoizes one value per key. Builds for distinct keys may run
// concurrently; builds for the same key are collapsed into one.
//
// The zero value is ready to use.
type KeyedMemo[K comparable, V any] struct {
	mu    sync.Mutex
	cells map[K]*Memo[V]
}

// Get returns the memoized value for key, building it on the key's first
// call.
func (km *KeyedMemo[K, V]) Get(key K, build func() (V, error)) (V, error) {
	km.mu.Lock()
	if km.cells == nil {
		km.cells = make(map[K]*Memo[V])
	}
	cell, ok := km.cells[key]
	if !ok {
		cell = &Memo[V]{}
		km.cells[key] = cell
	}
	km.mu.Unlock()
	return cell.Get(build)
}
