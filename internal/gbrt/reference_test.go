package gbrt

import (
	"sort"
)

// This file preserves the pre-refactor training engine verbatim (modulo
// renames) as the reference the presorted engine is checked against. The
// original grew each tree best-first by re-running a full split search over
// every open leaf on every iteration, re-sorting each feature column with
// sort.Slice inside every search, and copying the index sets of every
// improving candidate.
//
// The only semantic difference between the two engines is tie handling:
// sort.Slice leaves the relative order of equal feature values unspecified,
// while the presorted engine pins it to ascending sample index. Split
// *partitions* never depend on tie order (equal values cannot be split
// apart), but floating-point folds over a tie run do. The indexTies toggle
// therefore selects between the two comparators:
//
//   - indexTies=false is the byte-for-byte historical behaviour. Against it
//     the new engine is verified on datasets whose target sums are exact in
//     float64 (order-independent folds) and on tie-free datasets (unique
//     sort order), where the tie rule provably cannot matter.
//   - indexTies=true is the historical algorithm under the new canonical
//     tie rule. Against it the new engine must agree bit-for-bit on ANY
//     dataset — ties, duplicates, constant columns and all.
type refTreeBuilder struct {
	xs        [][]float64
	ys        []float64
	maxLeaves int
	minLeaf   int
	nodes     []treeNode
	indexTies bool
}

type refSplitCandidate struct {
	node      int
	feature   int
	threshold float64
	gain      float64
	leftIdx   []int
	rightIdx  []int
}

func refBuildTree(xs [][]float64, ys []float64, maxLeaves, minLeaf int, indexTies bool) *Tree {
	b := &refTreeBuilder{xs: xs, ys: ys, maxLeaves: maxLeaves, minLeaf: minLeaf, indexTies: indexTies}
	all := make([]int, len(ys))
	for i := range all {
		all[i] = i
	}
	b.nodes = append(b.nodes, treeNode{leaf: true, value: refMean(ys, all)})

	type openLeaf struct {
		node int
		idxs []int
	}
	open := []openLeaf{{node: 0, idxs: all}}
	leaves := 1
	for leaves < b.maxLeaves {
		best := refSplitCandidate{node: -1}
		bestAt := -1
		for oi, leaf := range open {
			cand, ok := b.bestSplit(leaf.node, leaf.idxs)
			if ok && (best.node == -1 || cand.gain > best.gain) {
				best = cand
				bestAt = oi
			}
		}
		if best.node == -1 {
			break
		}
		// Apply the split.
		li := len(b.nodes)
		b.nodes = append(b.nodes, treeNode{leaf: true, value: refMean(b.ys, best.leftIdx)})
		ri := len(b.nodes)
		b.nodes = append(b.nodes, treeNode{leaf: true, value: refMean(b.ys, best.rightIdx)})
		nd := &b.nodes[best.node]
		nd.leaf = false
		nd.feature = best.feature
		nd.threshold = best.threshold
		nd.left = li
		nd.right = ri
		nd.gain = best.gain
		open = append(open[:bestAt], open[bestAt+1:]...)
		open = append(open,
			openLeaf{node: li, idxs: best.leftIdx},
			openLeaf{node: ri, idxs: best.rightIdx},
		)
		leaves++
	}
	return &Tree{nodes: b.nodes}
}

// bestSplit finds the SSE-optimal (feature, threshold) split of the samples
// at a node, scanning each feature in sorted order with prefix sums.
func (b *refTreeBuilder) bestSplit(node int, idxs []int) (refSplitCandidate, bool) {
	n := len(idxs)
	if n < 2*b.minLeaf {
		return refSplitCandidate{}, false
	}
	var totalSum, totalSq float64
	for _, i := range idxs {
		totalSum += b.ys[i]
		totalSq += b.ys[i] * b.ys[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	best := refSplitCandidate{node: node, gain: 1e-12}
	found := false
	sorted := make([]int, n)
	numFeatures := len(b.xs[idxs[0]])
	for f := 0; f < numFeatures; f++ {
		copy(sorted, idxs)
		if b.indexTies {
			sort.Slice(sorted, func(a, c int) bool {
				if b.xs[sorted[a]][f] != b.xs[sorted[c]][f] {
					return b.xs[sorted[a]][f] < b.xs[sorted[c]][f]
				}
				return sorted[a] < sorted[c]
			})
		} else {
			sort.Slice(sorted, func(a, c int) bool {
				return b.xs[sorted[a]][f] < b.xs[sorted[c]][f]
			})
		}
		var leftSum, leftSq float64
		for pos := 0; pos < n-1; pos++ {
			y := b.ys[sorted[pos]]
			leftSum += y
			leftSq += y * y
			// Cannot split between equal feature values.
			if b.xs[sorted[pos]][f] == b.xs[sorted[pos+1]][f] {
				continue
			}
			nl := pos + 1
			nr := n - nl
			if nl < b.minLeaf || nr < b.minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childSSE := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			gain := parentSSE - childSSE
			if gain > best.gain {
				best.gain = gain
				best.feature = f
				best.threshold = (b.xs[sorted[pos]][f] + b.xs[sorted[pos+1]][f]) / 2
				best.leftIdx = append([]int(nil), sorted[:nl]...)
				best.rightIdx = append([]int(nil), sorted[nl:]...)
				found = true
			}
		}
	}
	return best, found
}

func refMean(ys []float64, idxs []int) float64 {
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, i := range idxs {
		sum += ys[i]
	}
	return sum / float64(len(idxs))
}

// refTrain is the pre-refactor Train loop on top of refBuildTree.
func refTrain(xs [][]float64, ys []float64, cfg Config, indexTies bool) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateData(xs, ys); err != nil {
		return nil, err
	}
	m := &Model{
		base:        median(ys),
		shrink:      cfg.Shrinkage,
		numFeatures: len(xs[0]),
	}
	current := make([]float64, len(ys))
	for i := range current {
		current[i] = m.base
	}
	residual := make([]float64, len(ys))
	for iter := 0; iter < cfg.Trees; iter++ {
		for i := range ys {
			residual[i] = ys[i] - current[i]
		}
		tree := refBuildTree(xs, residual, cfg.MaxLeaves, cfg.MinSamplesLeaf, indexTies)
		if tree.Leaves() <= 1 {
			break
		}
		m.trees = append(m.trees, tree)
		for i := range ys {
			current[i] += m.shrink * tree.Predict(xs[i])
		}
	}
	return m, nil
}
