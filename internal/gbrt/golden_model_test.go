package gbrt

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the committed golden model instead of comparing against
// it, mirroring the golden-trace harness:
//
//	go test ./internal/gbrt -run TestGoldenModel -update
var update = flag.Bool("update", false, "rewrite the golden model fixture")

const goldenModelPath = "testdata/golden_model.json"

// goldenDataset is a fixed synthetic training set exercising everything the
// split search has to handle: continuous columns, tie-heavy quantized
// columns, a constant column, and duplicated rows.
func goldenDataset() (xs [][]float64, ys []float64) {
	rng := rand.New(rand.NewSource(20130709))
	const n = 150
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = []float64{
			rng.Float64() * 50,          // continuous
			float64(rng.Intn(6)),        // quantized, heavy ties
			float64(rng.Intn(3)) * 2.25, // very heavy ties
			3.5,                         // constant: skipped at presort
			rng.NormFloat64(),           // continuous, signed
		}
		ys[i] = 2 + 5*xs[i][1] + rng.NormFloat64()*4
	}
	for d := 0; d < 10; d++ {
		copy(xs[(d+17)%n], xs[(d*13)%n])
	}
	return xs, ys
}

// TestGoldenModel trains the fixed dataset and requires the serialized model
// to match the committed fixture byte for byte. Any change to split
// selection, tie-breaking, leaf values or recorded gains shows up here.
func TestGoldenModel(t *testing.T) {
	xs, ys := goldenDataset()
	m, err := Train(xs, ys, Config{Trees: 60, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got := buf.Bytes()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenModelPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenModelPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenModelPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatalf("read golden model: %v\n(generate it with: go test ./internal/gbrt -run TestGoldenModel -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trained model differs from %s (%d vs %d bytes); if the change is intended, regenerate with -update",
			goldenModelPath, len(got), len(want))
	}
	// The fixture must also round-trip through Load unchanged.
	loaded, err := Load(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("Load golden model: %v", err)
	}
	probe := xs[7]
	a, err := m.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("golden round-trip prediction drifted: %v vs %v", a, b)
	}
}
