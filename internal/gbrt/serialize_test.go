package gbrt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func trainedModel(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(12))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		xs = append(xs, []float64{a, b})
		ys = append(ys, a*2+b*b/10+rng.NormFloat64()*0.2)
	}
	m, err := Train(xs, ys, Config{Trees: 40, MaxLeaves: 6, Shrinkage: 0.15, MinSamplesLeaf: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumTrees() != m.NumTrees() || loaded.NumFeatures() != m.NumFeatures() {
		t.Fatalf("shape differs: %d/%d vs %d/%d",
			loaded.NumTrees(), loaded.NumFeatures(), m.NumTrees(), m.NumFeatures())
	}
	if loaded.Base() != m.Base() {
		t.Fatalf("base differs: %v vs %v", loaded.Base(), m.Base())
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		a, err := m.Predict(x)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		b, err := loaded.Predict(x)
		if err != nil {
			t.Fatalf("loaded Predict: %v", err)
		}
		if a != b {
			t.Fatalf("round trip changed prediction: %v vs %v", a, b)
		}
	}
	// Importance is preserved too.
	origImp := m.FeatureImportance()
	loadedImp := loaded.FeatureImportance()
	for i := range origImp {
		if origImp[i] != loadedImp[i] {
			t.Fatalf("importance differs: %v vs %v", origImp, loadedImp)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "pickles",
		"wrong version": `{"version":99,"base":1,"shrinkage":0.1,"numFeatures":2,"trees":[]}`,
		"no features":   `{"version":1,"base":1,"shrinkage":0.1,"numFeatures":0,"trees":[]}`,
		"bad shrinkage": `{"version":1,"base":1,"shrinkage":2,"numFeatures":2,"trees":[]}`,
		"empty tree":    `{"version":1,"base":1,"shrinkage":0.1,"numFeatures":2,"trees":[{"nodes":[]}]}`,
		"backward child": `{"version":1,"base":1,"shrinkage":0.1,"numFeatures":2,
			"trees":[{"nodes":[{"feature":0,"threshold":1,"left":0,"right":0,"leaf":false}]}]}`,
		"bad feature": `{"version":1,"base":1,"shrinkage":0.1,"numFeatures":2,
			"trees":[{"nodes":[
				{"feature":7,"threshold":1,"left":1,"right":2,"leaf":false},
				{"leaf":true,"value":1},{"leaf":true,"value":2}]}]}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(payload)); err == nil {
				t.Fatalf("Load accepted %s", name)
			}
		})
	}
}

func TestLoadValidModelByHand(t *testing.T) {
	payload := `{"version":1,"base":5,"shrinkage":0.5,"numFeatures":1,
		"trees":[{"nodes":[
			{"feature":0,"threshold":2,"left":1,"right":2,"leaf":false,"gain":1},
			{"leaf":true,"value":-1},
			{"leaf":true,"value":1}]}]}`
	m, err := Load(strings.NewReader(payload))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	lo, err := m.Predict([]float64{1})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	hi, err := m.Predict([]float64{3})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	// F = 5 + 0.5 * leaf.
	if lo != 4.5 || hi != 5.5 {
		t.Fatalf("predictions = %v, %v; want 4.5, 5.5", lo, hi)
	}
}
