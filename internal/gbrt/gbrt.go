package gbrt

import (
	"errors"
	"fmt"
	"time"
)

// Config holds the boosting hyperparameters of Algorithm 1.
type Config struct {
	// Trees is the number of boosting iterations M.
	Trees int
	// MaxLeaves is J, the terminal-node budget per tree. The paper's phones
	// ran forests of 8-node trees (Table 7).
	MaxLeaves int
	// Shrinkage is the learning rate applied to every tree's contribution.
	Shrinkage float64
	// MinSamplesLeaf keeps leaves from memorizing single samples.
	MinSamplesLeaf int
}

// DefaultConfig mirrors the paper's setup: modest forests of small trees.
func DefaultConfig() Config {
	return Config{
		Trees:          400,
		MaxLeaves:      8,
		Shrinkage:      0.1,
		MinSamplesLeaf: 5,
	}
}

// Validate checks the hyperparameters.
func (c Config) Validate() error {
	switch {
	case c.Trees <= 0:
		return errors.New("gbrt: need at least one tree")
	case c.MaxLeaves < 2:
		return errors.New("gbrt: need at least two leaves per tree")
	case c.Shrinkage <= 0 || c.Shrinkage > 1:
		return errors.New("gbrt: shrinkage must be in (0, 1]")
	case c.MinSamplesLeaf < 1:
		return errors.New("gbrt: min samples per leaf must be >= 1")
	}
	return nil
}

// Model is a trained gradient-boosted forest: F(x) = F0 + ν·Σ tree_m(x).
type Model struct {
	base        float64
	shrink      float64
	trees       []*Tree
	numFeatures int
}

// Train fits a model with square loss (Algorithm 1): F0 is the median of the
// targets; each iteration fits a J-leaf regression tree to the current
// residuals and adds it with shrinkage. The feature columns are presorted
// once; every boosting iteration reuses the sorted orders and the trainer's
// scratch buffers.
func Train(xs [][]float64, ys []float64, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateData(xs, ys); err != nil {
		return nil, err
	}
	tr, err := newTrainer(xs, cfg.MinSamplesLeaf)
	if err != nil {
		return nil, err
	}
	m := &Model{
		base:        median(ys),
		shrink:      cfg.Shrinkage,
		numFeatures: len(xs[0]),
	}
	// residual_i = y_i - F_{m-1}(x_i); for square loss the negative gradient
	// is the plain residual.
	current := make([]float64, len(ys))
	for i := range current {
		current[i] = m.base
	}
	residual := make([]float64, len(ys))
	for iter := 0; iter < cfg.Trees; iter++ {
		for i := range ys {
			residual[i] = ys[i] - current[i]
		}
		tree := tr.buildTree(residual, cfg.MaxLeaves)
		if tree.Leaves() <= 1 {
			// Residuals are flat: boosting has converged.
			break
		}
		m.trees = append(m.trees, tree)
		// Every sample's new prediction comes straight from the leaf range
		// it was partitioned into — no per-sample tree walk.
		tr.addTo(current, m.shrink)
	}
	return m, nil
}

// Predict evaluates the model on one feature vector.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != m.numFeatures {
		return 0, fmt.Errorf("gbrt: got %d features, model wants %d", len(x), m.numFeatures)
	}
	sum := m.base
	for _, t := range m.trees {
		sum += m.shrink * t.Predict(x)
	}
	return sum, nil
}

// PredictBatch evaluates the model on len(xs) feature vectors, writing the
// predictions into out (which must be the same length). The forest is walked
// with the per-tree loop outermost, so each tree's nodes stay hot in cache
// across the whole batch; per-sample results are bit-identical to Predict.
func (m *Model) PredictBatch(xs [][]float64, out []float64) error {
	if len(out) != len(xs) {
		return fmt.Errorf("gbrt: batch of %d inputs with %d outputs", len(xs), len(out))
	}
	for i, x := range xs {
		if len(x) != m.numFeatures {
			return fmt.Errorf("gbrt: batch row %d has %d features, model wants %d",
				i, len(x), m.numFeatures)
		}
		out[i] = m.base
	}
	for _, t := range m.trees {
		for i, x := range xs {
			out[i] += m.shrink * t.Predict(x)
		}
	}
	return nil
}

// NumTrees returns the number of fitted trees (may be below Config.Trees if
// boosting converged early).
func (m *Model) NumTrees() int {
	return len(m.trees)
}

// NumFeatures returns the feature-vector width the model was trained on.
func (m *Model) NumFeatures() int {
	return m.numFeatures
}

// Base returns F0 (the target median).
func (m *Model) Base() float64 {
	return m.base
}

// DeviceCost models on-phone prediction cost, reproducing Table 7: the
// paper measured 0.295 s and 0.177 J to evaluate 10,000 eight-node trees on
// the Android Dev Phone 2, i.e. 29.5 µs per tree at the 0.6 W fully-running
// CPU power.
type DeviceCost struct {
	// PerTree is traversal time per 8-node tree on the device.
	PerTree time.Duration
	// CPUWatts is the device's busy-CPU power.
	CPUWatts float64
}

// DefaultDeviceCost returns the Table 7 calibration.
func DefaultDeviceCost() DeviceCost {
	return DeviceCost{PerTree: 29500 * time.Nanosecond, CPUWatts: 0.6}
}

// PredictionTime returns the simulated on-device time to evaluate a forest
// of trees trees.
func (d DeviceCost) PredictionTime(trees int) time.Duration {
	if trees < 0 {
		trees = 0
	}
	return time.Duration(trees) * d.PerTree
}

// PredictionEnergyJ returns the simulated on-device energy to evaluate a
// forest of trees trees.
func (d DeviceCost) PredictionEnergyJ(trees int) float64 {
	return d.PredictionTime(trees).Seconds() * d.CPUWatts
}

// FeatureImportance returns the normalized split-gain importance of each
// feature: the share of total SSE reduction attributable to splits on it
// across the whole forest (Breiman-style importance). The values sum to 1
// unless the model fitted no trees, in which case all are zero.
func (m *Model) FeatureImportance() []float64 {
	imp := make([]float64, m.numFeatures)
	total := 0.0
	for _, t := range m.trees {
		for _, nd := range t.nodes {
			if nd.leaf || nd.gain <= 0 {
				continue
			}
			imp[nd.feature] += nd.gain
			total += nd.gain
		}
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
