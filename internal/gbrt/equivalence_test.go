package gbrt

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// The presorted engine must reproduce the pre-refactor trainer exactly.
// Three properties pin that down from different angles:
//
//  1. On tie-free datasets every sort order is unique, so the historical
//     sort.Slice comparator and the canonical (value, index) order coincide:
//     the new engine must match the verbatim reference on arbitrary floats.
//  2. On tie-heavy datasets whose targets make every fold exact in float64,
//     summation order cannot change any value: the new engine must match
//     the verbatim reference even though their tie orders differ.
//  3. On arbitrary datasets (ties, duplicate rows, constant columns), the
//     new engine must match the reference run under the canonical index
//     tie-break bit-for-bit — the strongest statement: the rewrite is the
//     same algorithm, only faster.

// serializeOrDie returns the model's exact wire bytes.
func serializeOrDie(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

func assertSameModel(t *testing.T, trial string, ref, got *Model) {
	t.Helper()
	a, b := serializeOrDie(t, ref), serializeOrDie(t, got)
	if !bytes.Equal(a, b) {
		t.Fatalf("%s: presorted engine diverged from reference\nreference: %d bytes\nnew:       %d bytes\nref: %.120s\nnew: %.120s",
			trial, len(a), len(b), a, b)
	}
}

func randomConfig(rng *rand.Rand) Config {
	return Config{
		Trees:          5 + rng.Intn(30),
		MaxLeaves:      2 + rng.Intn(9),
		Shrinkage:      []float64{0.1, 0.3, 1.0}[rng.Intn(3)],
		MinSamplesLeaf: 1 + rng.Intn(3),
	}
}

// TestEquivalenceNoTies: arbitrary continuous targets, strictly distinct
// feature values per column, verbatim pre-refactor reference.
func TestEquivalenceNoTies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(100)
		numF := 1 + rng.Intn(6)
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = make([]float64, numF)
		}
		for f := 0; f < numF; f++ {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(i) + rng.Float64()*0.5 // strictly increasing
			}
			rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
			for i := range vals {
				xs[i][f] = vals[i]
			}
		}
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = rng.NormFloat64() * 10
		}
		cfg := randomConfig(rng)
		ref, err := refTrain(xs, ys, cfg, false)
		if err != nil {
			t.Fatalf("trial %d: refTrain: %v", trial, err)
		}
		got, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("trial %d: Train: %v", trial, err)
		}
		assertSameModel(t, fmt.Sprintf("no-ties trial %d (n=%d F=%d cfg=%+v)", trial, n, numF, cfg), ref, got)
	}
}

// TestEquivalenceTiesExactArithmetic: heavily tied integer-grid features and
// quarter-integer targets. Every fold the trainers perform — sums of at most
// a few hundred values that are multiples of 2⁻³ and bounded by 2⁶ — is
// exact in float64, so summation order is provably irrelevant and the
// verbatim sort.Slice reference must agree despite its different tie order.
// Trees is kept at 1 because later boosting rounds fit shrunk residuals that
// are no longer exactly representable.
func TestEquivalenceTiesExactArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(200)
		numF := 1 + rng.Intn(6)
		xs := make([][]float64, n)
		for i := range xs {
			row := make([]float64, numF)
			for f := range row {
				row[f] = float64(rng.Intn(5)) // dense ties
			}
			xs[i] = row
		}
		if numF > 1 && trial%3 == 0 {
			for i := range xs {
				xs[i][0] = 7 // constant column in front
			}
		}
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = float64(rng.Intn(256)) * 0.25
		}
		cfg := randomConfig(rng)
		cfg.Trees = 1
		ref, err := refTrain(xs, ys, cfg, false)
		if err != nil {
			t.Fatalf("trial %d: refTrain: %v", trial, err)
		}
		got, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("trial %d: Train: %v", trial, err)
		}
		assertSameModel(t, fmt.Sprintf("exact-ties trial %d (n=%d F=%d cfg=%+v)", trial, n, numF, cfg), ref, got)
	}
}

// TestEquivalenceTiesStableReference: arbitrary datasets — tied, duplicated
// and constant columns, continuous targets, full boosting — against the
// reference algorithm run under the canonical (value, sample index) order.
// Bit-for-bit agreement here shows the rewrite changes how the split search
// is computed, not what it computes.
func TestEquivalenceTiesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(150)
		numF := 1 + rng.Intn(8)
		xs := make([][]float64, n)
		for i := range xs {
			row := make([]float64, numF)
			for f := range row {
				switch f % 3 {
				case 0:
					row[f] = float64(rng.Intn(6)) // tie-heavy
				case 1:
					row[f] = rng.Float64() * 100 // continuous
				default:
					row[f] = float64(rng.Intn(3)) * 2.5 // very tie-heavy
				}
			}
			xs[i] = row
		}
		if trial%4 == 0 {
			for i := range xs {
				xs[i][numF-1] = -1.5 // constant column at the back
			}
		}
		// Occasionally duplicate whole rows so identical samples share every
		// feature value and the tie-break must fall back to sample index.
		for d := 0; d < n/10; d++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			copy(xs[dst], xs[src])
		}
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = rng.NormFloat64() * 30
		}
		cfg := randomConfig(rng)
		ref, err := refTrain(xs, ys, cfg, true)
		if err != nil {
			t.Fatalf("trial %d: refTrain: %v", trial, err)
		}
		got, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatalf("trial %d: Train: %v", trial, err)
		}
		assertSameModel(t, fmt.Sprintf("stable-ties trial %d (n=%d F=%d cfg=%+v)", trial, n, numF, cfg), ref, got)
	}
}
