package gbrt

import (
	"math/rand"
	"testing"
)

// The fleet-scale training shape: one per-user model of the 300-phone
// replay (Section 5 / the fleet experiment) — n≈500 visits, the 10 Table 1
// features, 400 boosting iterations.
func fleetShapeData() ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(77))
	const n, numF = 500, 10
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, numF)
		for f := range row {
			if f%2 == 0 {
				row[f] = rng.Float64() * 100
			} else {
				row[f] = float64(rng.Intn(8))
			}
		}
		xs[i] = row
		ys[i] = row[0]*0.3 + row[9]*2 + rng.NormFloat64()*5
	}
	return xs, ys
}

var fleetShapeCfg = Config{Trees: 400, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5}

// BenchmarkTrainFleetShape measures the presorted engine on the fleet-scale
// shape. Its ratio against BenchmarkReferenceTrainFleetShape is the tracked
// training speedup (EXPERIMENTS.md, BENCH_GBRT.json).
func BenchmarkTrainFleetShape(b *testing.B) {
	xs, ys := fleetShapeData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(xs, ys, fleetShapeCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceTrainFleetShape runs the pre-refactor engine (kept in
// reference_test.go) on the identical workload, so the speedup is always
// measured on the same machine as the new number, never quoted from an old
// run elsewhere.
func BenchmarkReferenceTrainFleetShape(b *testing.B) {
	xs, ys := fleetShapeData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := refTrain(xs, ys, fleetShapeCfg, true); err != nil {
			b.Fatal(err)
		}
	}
}
