package gbrt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// The paper's deployment splits training from prediction: "the model is
// trained either offline on a PC or on the smartphone when it is connected
// to a power source. Then, we deploy the tree model to the prediction
// program which is embedded in the web browser." Serialization is that
// deployment step: a trained forest round-trips through a stable JSON form.

// modelJSON is the wire format of a Model.
type modelJSON struct {
	Version     int        `json:"version"`
	Base        float64    `json:"base"`
	Shrinkage   float64    `json:"shrinkage"`
	NumFeatures int        `json:"numFeatures"`
	Trees       []treeJSON `json:"trees"`
}

type treeJSON struct {
	Nodes []nodeJSON `json:"nodes"`
}

type nodeJSON struct {
	Feature   int     `json:"feature"`
	Threshold float64 `json:"threshold"`
	Left      int     `json:"left"`
	Right     int     `json:"right"`
	Value     float64 `json:"value"`
	Leaf      bool    `json:"leaf"`
	Gain      float64 `json:"gain"`
}

// serializationVersion guards the wire format.
const serializationVersion = 1

// Save writes the model's JSON form to w.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{
		Version:     serializationVersion,
		Base:        m.base,
		Shrinkage:   m.shrink,
		NumFeatures: m.numFeatures,
		Trees:       make([]treeJSON, 0, len(m.trees)),
	}
	for _, t := range m.trees {
		tj := treeJSON{Nodes: make([]nodeJSON, 0, len(t.nodes))}
		for _, nd := range t.nodes {
			tj.Nodes = append(tj.Nodes, nodeJSON{
				Feature:   nd.feature,
				Threshold: nd.threshold,
				Left:      nd.left,
				Right:     nd.right,
				Value:     nd.value,
				Leaf:      nd.leaf,
				Gain:      nd.gain,
			})
		}
		out.Trees = append(out.Trees, tj)
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(out); err != nil {
		return fmt.Errorf("gbrt: save model: %w", err)
	}
	return bw.Flush()
}

// Load reads a model previously written with Save, validating its structure
// (node links in range, no cycles on the path down, finite values).
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("gbrt: load model: %w", err)
	}
	if in.Version != serializationVersion {
		return nil, fmt.Errorf("gbrt: unsupported model version %d", in.Version)
	}
	if in.NumFeatures <= 0 {
		return nil, errors.New("gbrt: model has no features")
	}
	if in.Shrinkage <= 0 || in.Shrinkage > 1 {
		return nil, fmt.Errorf("gbrt: model shrinkage %v out of (0,1]", in.Shrinkage)
	}
	if math.IsNaN(in.Base) || math.IsInf(in.Base, 0) {
		return nil, errors.New("gbrt: model base is not finite")
	}
	m := &Model{
		base:        in.Base,
		shrink:      in.Shrinkage,
		numFeatures: in.NumFeatures,
		trees:       make([]*Tree, 0, len(in.Trees)),
	}
	for ti, tj := range in.Trees {
		t := &Tree{nodes: make([]treeNode, 0, len(tj.Nodes))}
		for ni, nj := range tj.Nodes {
			if err := validateNode(nj, ni, len(tj.Nodes), in.NumFeatures); err != nil {
				return nil, fmt.Errorf("gbrt: tree %d: %w", ti, err)
			}
			t.nodes = append(t.nodes, treeNode{
				feature:   nj.Feature,
				threshold: nj.Threshold,
				left:      nj.Left,
				right:     nj.Right,
				value:     nj.Value,
				leaf:      nj.Leaf,
				gain:      nj.Gain,
			})
		}
		if len(t.nodes) == 0 {
			return nil, fmt.Errorf("gbrt: tree %d is empty", ti)
		}
		m.trees = append(m.trees, t)
	}
	return m, nil
}

func validateNode(nj nodeJSON, idx, total, numFeatures int) error {
	if math.IsNaN(nj.Value) || math.IsInf(nj.Value, 0) ||
		math.IsNaN(nj.Threshold) || math.IsInf(nj.Threshold, 0) {
		return fmt.Errorf("node %d has non-finite values", idx)
	}
	if nj.Leaf {
		return nil
	}
	if nj.Feature < 0 || nj.Feature >= numFeatures {
		return fmt.Errorf("node %d splits on feature %d of %d", idx, nj.Feature, numFeatures)
	}
	// Children must point strictly forward, which rules out cycles in the
	// flat array layout the builder produces.
	if nj.Left <= idx || nj.Left >= total || nj.Right <= idx || nj.Right >= total {
		return fmt.Errorf("node %d has out-of-range children %d/%d", idx, nj.Left, nj.Right)
	}
	return nil
}
