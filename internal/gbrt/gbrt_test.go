package gbrt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no trees", func(c *Config) { c.Trees = 0 }},
		{"one leaf", func(c *Config) { c.MaxLeaves = 1 }},
		{"zero shrinkage", func(c *Config) { c.Shrinkage = 0 }},
		{"shrinkage > 1", func(c *Config) { c.Shrinkage = 1.5 }},
		{"zero min leaf", func(c *Config) { c.MinSamplesLeaf = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate succeeded")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTrainValidatesData(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Train(nil, nil, cfg); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, cfg); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, cfg); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Train([][]float64{{math.NaN()}}, []float64{1}, cfg); err == nil {
		t.Fatal("NaN feature accepted")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, cfg); err == nil {
		t.Fatal("zero-width features accepted")
	}
}

func TestConstantTargetConverges(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{7, 7, 7, 7}
	m, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.NumTrees() != 0 {
		t.Fatalf("NumTrees = %d on constant target, want 0", m.NumTrees())
	}
	got, err := m.Predict([]float64{2.5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if got != 7 {
		t.Fatalf("Predict = %v, want 7", got)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		y := 1.0
		if x > 10 {
			y = 5.0
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, Config{Trees: 100, MaxLeaves: 4, Shrinkage: 0.3, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	lo, _ := m.Predict([]float64{5})
	hi, _ := m.Predict([]float64{15})
	if math.Abs(lo-1) > 0.2 || math.Abs(hi-5) > 0.2 {
		t.Fatalf("step not learned: f(5)=%v f(15)=%v", lo, hi)
	}
}

func TestLearnsInteraction(t *testing.T) {
	// y depends on the XOR of two thresholded features — invisible to any
	// single-feature linear model, exactly the situation Table 4 documents.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 600; i++ {
		a := rng.Float64()
		b := rng.Float64()
		y := 1.0
		if (a > 0.5) != (b > 0.5) {
			y = 9.0
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, Config{Trees: 200, MaxLeaves: 8, Shrinkage: 0.2, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	check := func(a, b, want float64) {
		got, _ := m.Predict([]float64{a, b})
		if math.Abs(got-want) > 1.0 {
			t.Fatalf("f(%v,%v) = %v, want ≈%v", a, b, got, want)
		}
	}
	check(0.2, 0.2, 1)
	check(0.8, 0.8, 1)
	check(0.2, 0.8, 9)
	check(0.8, 0.2, 9)
}

func TestLeavesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		xs = append(xs, []float64{x, rng.Float64()})
		ys = append(ys, math.Sin(x)+rng.NormFloat64()*0.1)
	}
	cfg := Config{Trees: 30, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 3}
	m, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.NumTrees() == 0 {
		t.Fatal("no trees fitted")
	}
	for i, tree := range m.trees {
		if tree.Leaves() > cfg.MaxLeaves {
			t.Fatalf("tree %d has %d leaves, budget %d", i, tree.Leaves(), cfg.MaxLeaves)
		}
		if tree.Leaves() < 2 {
			t.Fatalf("tree %d has %d leaves", i, tree.Leaves())
		}
	}
}

func TestMoreTreesReduceTrainingError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 6
		xs = append(xs, []float64{x})
		ys = append(ys, x*x)
	}
	mse := func(trees int) float64 {
		m, err := Train(xs, ys, Config{Trees: trees, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 3})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		sum := 0.0
		for i := range xs {
			p, _ := m.Predict(xs[i])
			d := p - ys[i]
			sum += d * d
		}
		return sum / float64(len(xs))
	}
	few := mse(5)
	many := mse(80)
	if many >= few {
		t.Fatalf("mse(80 trees)=%v not below mse(5 trees)=%v", many, few)
	}
}

func TestPredictChecksWidth(t *testing.T) {
	m, err := Train([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, []float64{1, 2, 3, 4}, DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
	if m.NumFeatures() != 2 {
		t.Fatalf("NumFeatures = %d", m.NumFeatures())
	}
}

func TestBaseIsMedian(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}}
	ys := []float64{10, 20, 30, 40, 1000}
	m, err := Train(xs, ys, Config{Trees: 1, MaxLeaves: 2, Shrinkage: 0.1, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.Base() != 30 {
		t.Fatalf("Base = %v, want median 30", m.Base())
	}
}

func TestTreeDepthAndNodes(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	ys := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	tree := buildTree(xs, ys, 4, 1)
	if tree.Leaves() != 4 {
		t.Fatalf("Leaves = %d, want 4", tree.Leaves())
	}
	if tree.Nodes() != 7 {
		t.Fatalf("Nodes = %d, want 7 (4 leaves + 3 internal)", tree.Nodes())
	}
	if d := tree.Depth(); d < 2 || d > 4 {
		t.Fatalf("Depth = %d", d)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, rng.Float64())
	}
	cfg := Config{Trees: 20, MaxLeaves: 6, Shrinkage: 0.1, MinSamplesLeaf: 2}
	a, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	b, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		pa, _ := a.Predict(x)
		pb, _ := b.Predict(x)
		if pa != pb {
			t.Fatalf("nondeterministic: %v vs %v", pa, pb)
		}
	}
}

func TestDeviceCostTable7(t *testing.T) {
	d := DefaultDeviceCost()
	tests := []struct {
		trees      int
		wantTimeS  float64
		wantEnergy float64
	}{
		{1000, 0.0295, 0.0177},
		{10000, 0.295, 0.177},
		{20000, 0.590, 0.354},
	}
	for _, tt := range tests {
		gotT := d.PredictionTime(tt.trees).Seconds()
		if math.Abs(gotT-tt.wantTimeS) > 1e-9 {
			t.Fatalf("PredictionTime(%d) = %v, want %v", tt.trees, gotT, tt.wantTimeS)
		}
		gotE := d.PredictionEnergyJ(tt.trees)
		if math.Abs(gotE-tt.wantEnergy) > 1e-9 {
			t.Fatalf("PredictionEnergyJ(%d) = %v, want %v", tt.trees, gotE, tt.wantEnergy)
		}
	}
	if d.PredictionTime(-1) != 0 {
		t.Fatal("negative tree count not clamped")
	}
}

// TestPropertyPredictionWithinRange: boosted square-loss predictions on the
// training inputs stay near the target hull. (Unlike a single tree, a
// boosted ensemble may overshoot [min(y), max(y)] slightly, so the property
// allows half a range of slack.)
func TestPropertyPredictionWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			ys[i] = rng.Float64() * 100
			lo = math.Min(lo, ys[i])
			hi = math.Max(hi, ys[i])
		}
		m, err := Train(xs, ys, Config{Trees: 30, MaxLeaves: 4, Shrinkage: 0.2, MinSamplesLeaf: 2})
		if err != nil {
			return false
		}
		slack := (hi - lo) / 2
		for i := range xs {
			p, err := m.Predict(xs[i])
			if err != nil || p < lo-slack || p > hi+slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTreePartitions: a single regression tree maps every training
// point to the mean of its leaf — so tree MSE never exceeds target variance.
func TestPropertyTreePartitions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		var sum, sq float64
		for i := range xs {
			xs[i] = []float64{rng.Float64()}
			ys[i] = rng.Float64() * 10
			sum += ys[i]
			sq += ys[i] * ys[i]
		}
		variance := sq/float64(n) - (sum/float64(n))*(sum/float64(n))
		tree := buildTree(xs, ys, 8, 1)
		var mse float64
		for i := range xs {
			d := tree.Predict(xs[i]) - ys[i]
			mse += d * d
		}
		mse /= float64(n)
		return mse <= variance+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictSpeed(t *testing.T) {
	// Sanity: a 10k-tree forest predicts in well under a second of real time
	// (the simulated phone takes 0.295 s; the Go implementation must not be
	// the bottleneck in large experiments).
	xs := [][]float64{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}}
	ys := []float64{1, 2, 3, 4, 5, 6}
	m, err := Train(xs, ys, Config{Trees: 200, MaxLeaves: 4, Shrinkage: 0.1, MinSamplesLeaf: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if _, err := m.Predict([]float64{2.5, 3.5}); err != nil {
			t.Fatalf("Predict: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("1000 predictions took %v", elapsed)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		xs = append(xs, []float64{rng.Float64() * 10, float64(rng.Intn(4)), rng.NormFloat64()})
		ys = append(ys, rng.Float64()*40)
	}
	m, err := Train(xs, ys, Config{Trees: 30, MaxLeaves: 6, Shrinkage: 0.1, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	probes := make([][]float64, 64)
	for i := range probes {
		probes[i] = []float64{rng.Float64() * 10, float64(rng.Intn(4)), rng.NormFloat64()}
	}
	out := make([]float64, len(probes))
	if err := m.PredictBatch(probes, out); err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	for i, x := range probes {
		want, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("probe %d: batch %v != single %v", i, out[i], want)
		}
	}
}

func TestPredictBatchErrors(t *testing.T) {
	xs := [][]float64{{1, 2}, {2, 1}, {3, 4}, {4, 3}}
	ys := []float64{1, 2, 3, 4}
	m, err := Train(xs, ys, Config{Trees: 5, MaxLeaves: 2, Shrinkage: 0.5, MinSamplesLeaf: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if err := m.PredictBatch([][]float64{{1, 2}}, make([]float64, 2)); err == nil {
		t.Fatal("mismatched out length accepted")
	}
	if err := m.PredictBatch([][]float64{{1, 2, 3}}, make([]float64, 1)); err == nil {
		t.Fatal("wrong feature width accepted")
	}
	if err := m.PredictBatch(nil, nil); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
}

// TestAllConstantFeatures exercises the degenerate dataset where no feature
// can ever split: presort drops every column, every tree is root-only, and
// training converges immediately to the median base with no panic.
func TestAllConstantFeatures(t *testing.T) {
	xs := make([][]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = []float64{1.5, -2, 0}
		ys[i] = float64(i)
	}
	m, err := Train(xs, ys, Config{Trees: 50, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.NumTrees() != 0 {
		t.Fatalf("NumTrees = %d, want 0 (nothing to split)", m.NumTrees())
	}
	pred, err := m.Predict([]float64{1.5, -2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pred != m.Base() {
		t.Fatalf("Predict = %v, want base %v", pred, m.Base())
	}
	// A single constant column among informative ones is skipped, not fatal:
	// the trained model must match the reference exactly (covered broadly by
	// the equivalence tests; pinned here for the minimal case).
	rng := rand.New(rand.NewSource(5))
	xs2 := make([][]float64, 40)
	ys2 := make([]float64, 40)
	for i := range xs2 {
		xs2[i] = []float64{42, rng.Float64() * 9}
		ys2[i] = xs2[i][1] * 3
	}
	cfg := Config{Trees: 10, MaxLeaves: 4, Shrinkage: 0.3, MinSamplesLeaf: 2}
	got, err := Train(xs2, ys2, cfg)
	if err != nil {
		t.Fatalf("Train with constant column: %v", err)
	}
	ref, err := refTrain(xs2, ys2, cfg, true)
	if err != nil {
		t.Fatalf("refTrain: %v", err)
	}
	if got.NumTrees() != ref.NumTrees() {
		t.Fatalf("NumTrees = %d, reference %d", got.NumTrees(), ref.NumTrees())
	}
	probe := []float64{42, 4.5}
	a, _ := got.Predict(probe)
	b, _ := ref.Predict(probe)
	if a != b {
		t.Fatalf("constant-column model diverged: %v vs %v", a, b)
	}
}
