// Package gbrt implements Gradient Boosted Regression Trees from scratch
// (Friedman's gradient boosting machine, the paper's Section 4.3 /
// Algorithm 1): least-squares CART regression trees with a bounded number of
// terminal nodes, grown best-first, boosted with shrinkage from a median
// base model.
//
// The paper runs prediction on the phone, so the package also provides a
// device cost model (Table 7): traversal time per tree calibrated to the
// measured 0.295 s / 0.177 J for 10,000 eight-node trees.
//
// Training uses the classic presorted-CART layout: every feature column is
// sorted once per Train call, ties broken by sample index, and the sorted
// orders are partitioned down each tree instead of re-sorted inside every
// split search. The index tie-break makes every downstream floating-point
// fold a pure function of the data — independent of sort internals, worker
// count, or iteration order — which is what keeps serialized models and
// experiment output byte-identical run over run.
package gbrt

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// treeNode is one node of a regression tree, stored in a flat slice.
type treeNode struct {
	feature   int
	threshold float64
	left      int
	right     int
	value     float64
	leaf      bool
	// gain is the SSE reduction this split achieved at fit time (zero for
	// leaves); it drives feature-importance accounting.
	gain float64
}

// Tree is a binary regression tree.
type Tree struct {
	nodes []treeNode
}

// Leaves returns the number of terminal nodes.
func (t *Tree) Leaves() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.leaf {
			n++
		}
	}
	return n
}

// Nodes returns the total node count (internal + terminal).
func (t *Tree) Nodes() int {
	return len(t.nodes)
}

// Predict returns the tree's output for the feature vector x.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	i := 0
	for !t.nodes[i].leaf {
		nd := t.nodes[i]
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
	return t.nodes[i].value
}

// Depth returns the maximum depth of the tree (a root-only tree has depth 1).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int) int
	walk = func(i int) int {
		nd := t.nodes[i]
		if nd.leaf {
			return 1
		}
		l := walk(nd.left)
		r := walk(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// trainer owns the presorted feature orders and every scratch buffer shared
// by the boosting iterations of one Train call. Constructing it costs one
// O(F·n log n) presort; afterwards each of the M trees is grown by
// partitioning the sorted orders down the tree, so the per-split work is the
// prefix-sum scan alone.
type trainer struct {
	xs      [][]float64
	n       int
	minLeaf int
	// feats lists the features worth scanning, ascending. A feature whose
	// value is constant across the whole training set can never split, so it
	// is detected here at presort time and never sorted, scanned, or
	// partitioned.
	feats []int
	// master holds one n-length column per feats entry: the sample indices
	// sorted by (feature value, sample index).
	master []int32
	// work is the per-tree copy of master; applied splits partition each of
	// its columns stably in place, which keeps every column sorted by
	// (value, index) within every node's range all the way down the tree.
	work []int32
	// mark flags the left-child samples while one split is being applied.
	mark []bool
	// scratch backs the right-hand side of each stable partition.
	scratch []int32
	// leaves records, after each buildTree, the sample range and fitted
	// value of every terminal node, so Train can update the boosted
	// predictions in O(n) without walking the tree per sample.
	leaves []leafRange

	// ys is the residual target vector of the tree currently being grown.
	ys []float64
}

type leafRange struct {
	lo, hi int
	value  float64
}

// newTrainer presorts the feature columns of xs. minLeaf is the smallest
// admissible child size.
func newTrainer(xs [][]float64, minLeaf int) (*trainer, error) {
	n := len(xs)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("gbrt: %d samples exceed the trainer's index space", n)
	}
	tr := &trainer{
		xs:      xs,
		n:       n,
		minLeaf: minLeaf,
		mark:    make([]bool, n),
		scratch: make([]int32, n),
	}
	numFeatures := len(xs[0])
	for f := 0; f < numFeatures; f++ {
		constant := true
		for i := 1; i < n; i++ {
			if xs[i][f] != xs[0][f] {
				constant = false
				break
			}
		}
		if !constant {
			tr.feats = append(tr.feats, f)
		}
	}
	tr.master = make([]int32, len(tr.feats)*n)
	tr.work = make([]int32, len(tr.feats)*n)
	for k, f := range tr.feats {
		col := tr.master[k*n : (k+1)*n]
		for i := range col {
			col[i] = int32(i)
		}
		f := f
		sort.Slice(col, func(a, b int) bool {
			va, vb := xs[col[a]][f], xs[col[b]][f]
			if va != vb {
				return va < vb
			}
			return col[a] < col[b]
		})
	}
	return tr, nil
}

// col returns working column k (the sorted sample order of feats[k]).
func (tr *trainer) col(k int) []int32 {
	return tr.work[k*tr.n : (k+1)*tr.n]
}

// splitCandidate is one open leaf's best split. It is computed exactly once,
// when the leaf is opened, and kept in a max-heap until the leaf is either
// split or the terminal-node budget runs out — the pre-refactor builder
// re-scanned every open leaf on every iteration instead.
type splitCandidate struct {
	node   int // index into the tree's node slice
	seq    int // leaf-opening order; breaks gain ties deterministically
	lo, hi int // the leaf's sample range in every work column
	// sum and sq fold the leaf's ys (and ys²) in the order the leaf's
	// samples appear in its parent's split column (sample-index order at the
	// root) — the same fold the recursive reference performs.
	sum, sq float64

	feature   int // chosen split feature
	slot      int // column slot of feature in feats
	splitPos  int // left-child size nl
	threshold float64
	gain      float64
	// leftSum and leftSq are the prefix fold at splitPos; they become the
	// left child's sum/sq (and its fitted mean) without another pass.
	leftSum, leftSq float64
}

// candidateHeap is a max-heap by gain; equal gains pop in leaf-opening
// order, matching the first-strictly-greater scan of the open-leaf list the
// pre-refactor builder used.
type candidateHeap []*splitCandidate

func (h candidateHeap) Len() int { return len(h) }

func (h candidateHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].seq < h[j].seq
}

func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *candidateHeap) Push(x any) {
	c, ok := x.(*splitCandidate)
	if !ok {
		return
	}
	*h = append(*h, c)
}

func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// buildTree grows one best-first tree on the residual targets ys: at every
// step the open leaf with the largest cached SSE reduction is split, until
// the terminal-node budget maxLeaves is exhausted (Section 4.3.1: "each base
// learner is a J-terminal node decision tree").
func (tr *trainer) buildTree(ys []float64, maxLeaves int) *Tree {
	tr.ys = ys
	tr.leaves = tr.leaves[:0]
	copy(tr.work, tr.master)
	n := tr.n

	// Root stats fold ys in sample-index order.
	var sum, sq float64
	for i := 0; i < n; i++ {
		y := ys[i]
		sum += y
		sq += y * y
	}
	nodes := make([]treeNode, 1, 2*maxLeaves-1)
	nodes[0] = treeNode{leaf: true, value: sum / float64(n)}
	ranges := make([]leafRange, 1, 2*maxLeaves-1)
	ranges[0] = leafRange{lo: 0, hi: n}

	var open candidateHeap
	root := &splitCandidate{node: 0, lo: 0, hi: n, sum: sum, sq: sq}
	if tr.findBest(root) {
		heap.Push(&open, root)
	}
	seq := 0
	leaves := 1
	for leaves < maxLeaves && open.Len() > 0 {
		c, ok := heap.Pop(&open).(*splitCandidate)
		if !ok {
			break
		}
		nl := c.splitPos
		mid := c.lo + nl
		ccol := tr.col(c.slot)[c.lo:c.hi]

		// The right child's stats fold in the split column's sorted order —
		// the order its samples will keep in every descendant scan.
		var rightSum, rightSq float64
		for _, idx := range ccol[nl:] {
			y := ys[idx]
			rightSum += y
			rightSq += y * y
		}

		// Partition every other column stably around the split; the split
		// column is already partitioned by construction.
		for _, idx := range ccol[:nl] {
			tr.mark[idx] = true
		}
		for k := range tr.feats {
			if k != c.slot {
				stablePartition(tr.col(k)[c.lo:c.hi], tr.mark, tr.scratch)
			}
		}
		for _, idx := range ccol[:nl] {
			tr.mark[idx] = false
		}

		li := len(nodes)
		nodes = append(nodes, treeNode{leaf: true, value: c.leftSum / float64(nl)})
		ranges = append(ranges, leafRange{lo: c.lo, hi: mid})
		ri := len(nodes)
		nodes = append(nodes, treeNode{leaf: true, value: rightSum / float64(c.hi-mid)})
		ranges = append(ranges, leafRange{lo: mid, hi: c.hi})
		nd := &nodes[c.node]
		nd.leaf = false
		nd.feature = c.feature
		nd.threshold = c.threshold
		nd.left = li
		nd.right = ri
		nd.gain = c.gain

		left := &splitCandidate{node: li, seq: seq + 1, lo: c.lo, hi: mid,
			sum: c.leftSum, sq: c.leftSq}
		right := &splitCandidate{node: ri, seq: seq + 2, lo: mid, hi: c.hi,
			sum: rightSum, sq: rightSq}
		seq += 2
		if tr.findBest(left) {
			heap.Push(&open, left)
		}
		if tr.findBest(right) {
			heap.Push(&open, right)
		}
		leaves++
	}

	for i := range nodes {
		if nodes[i].leaf {
			tr.leaves = append(tr.leaves, leafRange{
				lo: ranges[i].lo, hi: ranges[i].hi, value: nodes[i].value,
			})
		}
	}
	return &Tree{nodes: nodes}
}

// addTo adds shrinkage-scaled predictions of the just-built tree to current,
// using the recorded leaf ranges: every sample already sits in exactly one
// terminal range, so no per-sample tree traversal is needed. Must be called
// before the next buildTree reuses the work columns.
func (tr *trainer) addTo(current []float64, shrink float64) {
	if len(tr.feats) == 0 {
		// No splittable feature: the tree is root-only and Train stops
		// before applying it.
		return
	}
	base := tr.col(0)
	for _, lr := range tr.leaves {
		d := shrink * lr.value
		for _, idx := range base[lr.lo:lr.hi] {
			current[idx] += d
		}
	}
}

// findBest computes the SSE-optimal (feature, threshold) split of the leaf
// candidate c, scanning each presorted column with prefix sums, and reports
// whether any split clears the minimum-gain floor.
func (tr *trainer) findBest(c *splitCandidate) bool {
	n := c.hi - c.lo
	if n < 2*tr.minLeaf {
		return false
	}
	totalSum, totalSq := c.sum, c.sq
	parentSSE := totalSq - totalSum*totalSum/float64(n)
	bestGain := 1e-12
	found := false
	for k, f := range tr.feats {
		col := tr.col(k)[c.lo:c.hi]
		var leftSum, leftSq float64
		for pos := 0; pos < n-1; pos++ {
			y := tr.ys[col[pos]]
			leftSum += y
			leftSq += y * y
			// Cannot split between equal feature values.
			if tr.xs[col[pos]][f] == tr.xs[col[pos+1]][f] {
				continue
			}
			nl := pos + 1
			nr := n - nl
			if nl < tr.minLeaf || nr < tr.minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childSSE := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			gain := parentSSE - childSSE
			if gain > bestGain {
				bestGain = gain
				c.feature = f
				c.slot = k
				c.splitPos = nl
				c.threshold = (tr.xs[col[pos]][f] + tr.xs[col[pos+1]][f]) / 2
				c.gain = gain
				c.leftSum = leftSum
				c.leftSq = leftSq
				found = true
			}
		}
	}
	return found
}

// stablePartition reorders col so the marked (left-child) samples come
// first, preserving relative order on both sides — the invariant that keeps
// every column sorted by (feature value, sample index) down the tree.
func stablePartition(col []int32, mark []bool, scratch []int32) {
	w, s := 0, 0
	for _, idx := range col {
		if mark[idx] {
			col[w] = idx
			w++
		} else {
			scratch[s] = idx
			s++
		}
	}
	copy(col[w:], scratch[:s])
}

// buildTree grows a single tree on a fresh trainer — the one-shot entry
// point used by tests; Train constructs the trainer once and reuses it for
// every boosting iteration.
func buildTree(xs [][]float64, ys []float64, maxLeaves, minLeaf int) *Tree {
	tr, err := newTrainer(xs, minLeaf)
	if err != nil {
		panic(err)
	}
	return tr.buildTree(ys, maxLeaves)
}

func median(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	sorted := make([]float64, len(ys))
	copy(sorted, ys)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// validateData checks a training set for shape errors.
func validateData(xs [][]float64, ys []float64) error {
	if len(xs) == 0 {
		return errors.New("gbrt: empty training set")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("gbrt: %d feature rows vs %d targets", len(xs), len(ys))
	}
	width := len(xs[0])
	if width == 0 {
		return errors.New("gbrt: zero-width feature vectors")
	}
	for i, row := range xs {
		if len(row) != width {
			return fmt.Errorf("gbrt: row %d has %d features, want %d", i, len(row), width)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("gbrt: row %d contains NaN/Inf", i)
			}
		}
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return fmt.Errorf("gbrt: target %d is NaN/Inf", i)
		}
	}
	return nil
}
