// Package gbrt implements Gradient Boosted Regression Trees from scratch
// (Friedman's gradient boosting machine, the paper's Section 4.3 /
// Algorithm 1): least-squares CART regression trees with a bounded number of
// terminal nodes, grown best-first, boosted with shrinkage from a median
// base model.
//
// The paper runs prediction on the phone, so the package also provides a
// device cost model (Table 7): traversal time per tree calibrated to the
// measured 0.295 s / 0.177 J for 10,000 eight-node trees.
package gbrt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// treeNode is one node of a regression tree, stored in a flat slice.
type treeNode struct {
	feature   int
	threshold float64
	left      int
	right     int
	value     float64
	leaf      bool
	// gain is the SSE reduction this split achieved at fit time (zero for
	// leaves); it drives feature-importance accounting.
	gain float64
}

// Tree is a binary regression tree.
type Tree struct {
	nodes []treeNode
}

// Leaves returns the number of terminal nodes.
func (t *Tree) Leaves() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.leaf {
			n++
		}
	}
	return n
}

// Nodes returns the total node count (internal + terminal).
func (t *Tree) Nodes() int {
	return len(t.nodes)
}

// Predict returns the tree's output for the feature vector x.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	i := 0
	for !t.nodes[i].leaf {
		nd := t.nodes[i]
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
	return t.nodes[i].value
}

// Depth returns the maximum depth of the tree (a root-only tree has depth 1).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int) int
	walk = func(i int) int {
		nd := t.nodes[i]
		if nd.leaf {
			return 1
		}
		l := walk(nd.left)
		r := walk(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// treeBuilder grows a tree best-first: at every step the leaf with the
// largest SSE reduction is split, until the terminal-node budget J is
// exhausted (Section 4.3.1: "each base learner is a J-terminal node
// decision tree").
type treeBuilder struct {
	xs        [][]float64
	ys        []float64
	maxLeaves int
	minLeaf   int
	nodes     []treeNode
}

type splitCandidate struct {
	node      int
	feature   int
	threshold float64
	gain      float64
	leftIdx   []int
	rightIdx  []int
}

func buildTree(xs [][]float64, ys []float64, maxLeaves, minLeaf int) *Tree {
	b := &treeBuilder{xs: xs, ys: ys, maxLeaves: maxLeaves, minLeaf: minLeaf}
	all := make([]int, len(ys))
	for i := range all {
		all[i] = i
	}
	b.nodes = append(b.nodes, treeNode{leaf: true, value: mean(ys, all)})

	type openLeaf struct {
		node int
		idxs []int
	}
	open := []openLeaf{{node: 0, idxs: all}}
	leaves := 1
	for leaves < b.maxLeaves {
		best := splitCandidate{node: -1}
		bestAt := -1
		for oi, leaf := range open {
			cand, ok := b.bestSplit(leaf.node, leaf.idxs)
			if ok && (best.node == -1 || cand.gain > best.gain) {
				best = cand
				bestAt = oi
			}
		}
		if best.node == -1 {
			break
		}
		// Apply the split.
		li := len(b.nodes)
		b.nodes = append(b.nodes, treeNode{leaf: true, value: mean(b.ys, best.leftIdx)})
		ri := len(b.nodes)
		b.nodes = append(b.nodes, treeNode{leaf: true, value: mean(b.ys, best.rightIdx)})
		nd := &b.nodes[best.node]
		nd.leaf = false
		nd.feature = best.feature
		nd.threshold = best.threshold
		nd.left = li
		nd.right = ri
		nd.gain = best.gain
		open = append(open[:bestAt], open[bestAt+1:]...)
		open = append(open,
			openLeaf{node: li, idxs: best.leftIdx},
			openLeaf{node: ri, idxs: best.rightIdx},
		)
		leaves++
	}
	return &Tree{nodes: b.nodes}
}

// bestSplit finds the SSE-optimal (feature, threshold) split of the samples
// at a node, scanning each feature in sorted order with prefix sums.
func (b *treeBuilder) bestSplit(node int, idxs []int) (splitCandidate, bool) {
	n := len(idxs)
	if n < 2*b.minLeaf {
		return splitCandidate{}, false
	}
	var totalSum, totalSq float64
	for _, i := range idxs {
		totalSum += b.ys[i]
		totalSq += b.ys[i] * b.ys[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	best := splitCandidate{node: node, gain: 1e-12}
	found := false
	sorted := make([]int, n)
	numFeatures := len(b.xs[idxs[0]])
	for f := 0; f < numFeatures; f++ {
		copy(sorted, idxs)
		sort.Slice(sorted, func(a, c int) bool {
			return b.xs[sorted[a]][f] < b.xs[sorted[c]][f]
		})
		var leftSum, leftSq float64
		for pos := 0; pos < n-1; pos++ {
			y := b.ys[sorted[pos]]
			leftSum += y
			leftSq += y * y
			// Cannot split between equal feature values.
			if b.xs[sorted[pos]][f] == b.xs[sorted[pos+1]][f] {
				continue
			}
			nl := pos + 1
			nr := n - nl
			if nl < b.minLeaf || nr < b.minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childSSE := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			gain := parentSSE - childSSE
			if gain > best.gain {
				best.gain = gain
				best.feature = f
				best.threshold = (b.xs[sorted[pos]][f] + b.xs[sorted[pos+1]][f]) / 2
				best.leftIdx = append([]int(nil), sorted[:nl]...)
				best.rightIdx = append([]int(nil), sorted[nl:]...)
				found = true
			}
		}
	}
	return best, found
}

func mean(ys []float64, idxs []int) float64 {
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, i := range idxs {
		sum += ys[i]
	}
	return sum / float64(len(idxs))
}

func median(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	sorted := make([]float64, len(ys))
	copy(sorted, ys)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// validateData checks a training set for shape errors.
func validateData(xs [][]float64, ys []float64) error {
	if len(xs) == 0 {
		return errors.New("gbrt: empty training set")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("gbrt: %d feature rows vs %d targets", len(xs), len(ys))
	}
	width := len(xs[0])
	if width == 0 {
		return errors.New("gbrt: zero-width feature vectors")
	}
	for i, row := range xs {
		if len(row) != width {
			return fmt.Errorf("gbrt: row %d has %d features, want %d", i, len(row), width)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("gbrt: row %d contains NaN/Inf", i)
			}
		}
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return fmt.Errorf("gbrt: target %d is NaN/Inf", i)
		}
	}
	return nil
}
