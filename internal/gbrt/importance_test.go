package gbrt

import (
	"math"
	"math/rand"
	"testing"
)

func TestFeatureImportanceSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		xs = append(xs, []float64{a, b})
		ys = append(ys, a*a+rng.NormFloat64())
	}
	m, err := Train(xs, ys, Config{Trees: 50, MaxLeaves: 6, Shrinkage: 0.2, MinSamplesLeaf: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance width = %d", len(imp))
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v, want 1", sum)
	}
	// The signal lives entirely in feature 0.
	if imp[0] < 0.9 {
		t.Fatalf("importance = %v, want feature 0 dominant", imp)
	}
}

func TestFeatureImportanceEmptyModel(t *testing.T) {
	m, err := Train([][]float64{{1}, {2}, {3}}, []float64{5, 5, 5}, DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := m.FeatureImportance()
	if imp[0] != 0 {
		t.Fatalf("constant-target importance = %v, want 0", imp)
	}
}

func TestFeatureImportanceSplitsAcrossInteraction(t *testing.T) {
	// XOR of two features: both must carry importance.
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64()
		b := rng.Float64()
		y := 1.0
		if (a > 0.5) != (b > 0.5) {
			y = 9.0
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, Config{Trees: 100, MaxLeaves: 8, Shrinkage: 0.2, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := m.FeatureImportance()
	if imp[0] < 0.2 || imp[1] < 0.2 {
		t.Fatalf("interaction importance = %v, want both features used", imp)
	}
}
