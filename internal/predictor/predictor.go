// Package predictor wraps the GBRT model into the paper's reading-time
// predictor (Section 4.3): train on collected visits, optionally applying
// the interest threshold α (Section 4.3.4) — visits abandoned within α carry
// no feature signal, so excluding them from training, and only predicting
// once a page has survived α seconds, buys the ≥10-point accuracy
// improvement of Fig. 15.
package predictor

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/stats"
	"eabrowse/internal/trace"
)

// Thresholds bundles the Table 2 parameters.
type Thresholds struct {
	// Alpha is the interest threshold (paper: 2 s for this dataset).
	Alpha time.Duration
	// Tp is the power-driven threshold (Fig. 3 crossover: 9 s).
	Tp time.Duration
	// Td is the delay-driven threshold (T1 + T2 ≈ 20 s).
	Td time.Duration
}

// DefaultThresholds returns the paper's values.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Alpha: 2 * time.Second,
		Tp:    9 * time.Second,
		Td:    20 * time.Second,
	}
}

// Predictor predicts per-page reading time from Table 1 features.
type Predictor struct {
	model *gbrt.Model
	// interestTrained records whether training excluded sub-α visits.
	interestTrained bool
	alpha           float64
	// thresholds are the Algorithm 2 parameters this model was trained to
	// drive; they travel with the model file so a serving process needs no
	// separate policy configuration.
	thresholds Thresholds
}

// Config controls training.
type Config struct {
	// GBRT is the boosting setup.
	GBRT gbrt.Config
	// UseInterestThreshold excludes visits read for less than Alpha from
	// the training set (Section 4.3.4).
	UseInterestThreshold bool
	// Alpha is the interest threshold in seconds.
	Alpha float64
	// Tp and Td are the Algorithm 2 thresholds stamped into the trained
	// predictor (and its saved form). Zero means the paper's defaults.
	Tp, Td time.Duration
}

// DefaultConfig trains the paper's configuration: interest threshold on.
func DefaultConfig() Config {
	return Config{
		GBRT:                 gbrt.DefaultConfig(),
		UseInterestThreshold: true,
		Alpha:                DefaultThresholds().Alpha.Seconds(),
	}
}

// Train fits a predictor on the given visits.
func Train(visits []trace.Visit, cfg Config) (*Predictor, error) {
	if len(visits) == 0 {
		return nil, errors.New("predictor: no training visits")
	}
	var xs [][]float64
	var ys []float64
	for _, v := range visits {
		if cfg.UseInterestThreshold && v.ReadingSeconds < cfg.Alpha {
			continue
		}
		xs = append(xs, v.Features.Slice())
		ys = append(ys, v.ReadingSeconds)
	}
	if len(xs) == 0 {
		return nil, errors.New("predictor: interest threshold removed every training visit")
	}
	model, err := gbrt.Train(xs, ys, cfg.GBRT)
	if err != nil {
		return nil, fmt.Errorf("train gbrt: %w", err)
	}
	th := Thresholds{
		Alpha: time.Duration(cfg.Alpha * float64(time.Second)),
		Tp:    cfg.Tp,
		Td:    cfg.Td,
	}
	if th.Tp == 0 {
		th.Tp = DefaultThresholds().Tp
	}
	if th.Td == 0 {
		th.Td = DefaultThresholds().Td
	}
	return &Predictor{
		model:           model,
		interestTrained: cfg.UseInterestThreshold,
		alpha:           cfg.Alpha,
		thresholds:      th,
	}, nil
}

// Thresholds returns the Algorithm 2 parameters the predictor carries.
func (p *Predictor) Thresholds() Thresholds {
	return p.thresholds
}

// PredictSeconds predicts the reading time for a page's feature vector.
func (p *Predictor) PredictSeconds(v features.Vector) (float64, error) {
	return p.model.Predict(v.Slice())
}

// PredictVecSeconds is PredictSeconds without the defensive copy: the vector
// is read in place, so the steady-state path allocates nothing. This is the
// per-request hot path of the resident service; results are bit-identical to
// PredictSeconds.
func (p *Predictor) PredictVecSeconds(v *features.Vector) (float64, error) {
	return p.model.Predict(v[:])
}

// PredictBatchSeconds predicts reading times for many feature vectors at
// once, writing into out (same length as vs). Batching walks the forest
// tree-major, which keeps each tree hot in cache across the whole batch;
// per-vector results are bit-identical to PredictSeconds.
func (p *Predictor) PredictBatchSeconds(vs []features.Vector, out []float64) error {
	xs := make([][]float64, len(vs))
	for i := range vs {
		xs[i] = vs[i].Slice()
	}
	return p.model.PredictBatch(xs, out)
}

// PredictBatchVecSeconds is PredictBatchSeconds without the per-call row
// allocation: rows are read in place from vs and the row-pointer table is
// built in scratch, which the caller reuses across calls (grow it once,
// then every batch is allocation-free). It returns the possibly regrown
// scratch; per-vector results are bit-identical to PredictSeconds.
func (p *Predictor) PredictBatchVecSeconds(vs []features.Vector, out []float64, scratch [][]float64) ([][]float64, error) {
	scratch = scratch[:0]
	for i := range vs {
		scratch = append(scratch, vs[i][:])
	}
	return scratch, p.model.PredictBatch(scratch, out)
}

// NumTrees exposes the fitted forest size (Table 7 cost accounting).
func (p *Predictor) NumTrees() int {
	return p.model.NumTrees()
}

// FeatureImportance returns the forest's normalized split-gain importance
// per Table 1 feature.
func (p *Predictor) FeatureImportance() []float64 {
	return p.model.FeatureImportance()
}

// InterestTrained reports whether the interest threshold was applied during
// training.
func (p *Predictor) InterestTrained() bool {
	return p.interestTrained
}

// Accuracy is the Fig. 15 metric: a prediction is correct when the predicted
// and the real reading time fall on the same side of the given threshold.
type Accuracy struct {
	Threshold float64
	Correct   int
	Total     int
}

// Pct returns the accuracy percentage.
func (a Accuracy) Pct() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total) * 100
}

// Evaluate measures classification accuracy at threshold (seconds) on test
// visits. When applyInterest is true only visits the user kept open for at
// least α seconds are scored — the deployment behaviour: the phone waits α
// before predicting, so sub-α visits never reach the predictor.
func (p *Predictor) Evaluate(test []trace.Visit, threshold float64, applyInterest bool) (Accuracy, error) {
	scored, preds, err := p.batchPredict(test, applyInterest)
	if err != nil {
		return Accuracy{}, err
	}
	acc := Accuracy{Threshold: threshold}
	for i, v := range scored {
		if (preds[i] > threshold) == (v.ReadingSeconds > threshold) {
			acc.Correct++
		}
		acc.Total++
	}
	return acc, nil
}

// batchPredict filters test down to the visits that get scored (all of them,
// or only those surviving the α wait) and predicts them in one batch.
func (p *Predictor) batchPredict(test []trace.Visit, applyInterest bool) ([]trace.Visit, []float64, error) {
	scored := make([]trace.Visit, 0, len(test))
	vs := make([]features.Vector, 0, len(test))
	for _, v := range test {
		if applyInterest && v.ReadingSeconds < p.alpha {
			continue
		}
		scored = append(scored, v)
		vs = append(vs, v.Features)
	}
	if len(scored) == 0 {
		return nil, nil, errors.New("predictor: no test visits survive the interest threshold")
	}
	preds := make([]float64, len(vs))
	if err := p.PredictBatchSeconds(vs, preds); err != nil {
		return nil, nil, err
	}
	return scored, preds, nil
}

// Split partitions visits into train/test deterministically. testFrac is the
// fraction held out.
func Split(visits []trace.Visit, testFrac float64, seed int64) (train, test []trace.Visit, err error) {
	if len(visits) < 2 {
		return nil, nil, errors.New("predictor: not enough visits to split")
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("predictor: test fraction %v out of (0,1)", testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(visits))
	nTest := int(float64(len(visits)) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	test = make([]trace.Visit, 0, nTest)
	train = make([]trace.Visit, 0, len(visits)-nTest)
	for i, idx := range perm {
		if i < nTest {
			test = append(test, visits[idx])
		} else {
			train = append(train, visits[idx])
		}
	}
	return train, test, nil
}

// Metrics are regression-quality measures of the reading-time predictions,
// complementing the paper's threshold-classification accuracy.
type Metrics struct {
	// MAE is the mean absolute error, seconds.
	MAE float64
	// RMSE is the root-mean-square error, seconds.
	RMSE float64
	// MedianAE is the median absolute error, seconds.
	MedianAE float64
	// N is the number of scored visits.
	N int
}

// RegressionMetrics scores raw reading-time predictions on test visits.
// When applyInterest is true, only visits surviving the α wait are scored.
func (p *Predictor) RegressionMetrics(test []trace.Visit, applyInterest bool) (Metrics, error) {
	scored, preds, err := p.batchPredict(test, applyInterest)
	if err != nil {
		return Metrics{}, err
	}
	absErrs := make([]float64, 0, len(scored))
	var sumSq float64
	for i, v := range scored {
		d := preds[i] - v.ReadingSeconds
		if d < 0 {
			d = -d
		}
		absErrs = append(absErrs, d)
		sumSq += d * d
	}
	m := Metrics{N: len(absErrs)}
	sum := 0.0
	for _, e := range absErrs {
		sum += e
	}
	m.MAE = sum / float64(len(absErrs))
	m.RMSE = math.Sqrt(sumSq / float64(len(absErrs)))
	med, err := stats.Median(absErrs)
	if err != nil {
		return Metrics{}, err
	}
	m.MedianAE = med
	return m, nil
}

// fileVersion guards the predictor envelope's wire format. Version 2 added
// the explicit version stamp, the feature schema, and the Tp/Td thresholds;
// the unversioned pre-2 form is rejected with a re-save hint.
const fileVersion = 2

// predictorJSON is the deployment envelope: the GBRT forest plus everything
// a serving process needs to answer predict/decide requests — thresholds and
// the feature schema the model was trained against.
type predictorJSON struct {
	Version int `json:"version"`
	// FeatureSchema and NumFeatures pin the input contract; a loader running
	// a different Table 1 layout must refuse the model rather than feed it
	// misaligned columns.
	FeatureSchema   int             `json:"featureSchema"`
	NumFeatures     int             `json:"numFeatures"`
	Alpha           float64         `json:"alpha"`
	TpS             float64         `json:"tp_s"`
	TdS             float64         `json:"td_s"`
	InterestTrained bool            `json:"interestTrained"`
	Model           json.RawMessage `json:"model"`
}

// Save writes the predictor (model + thresholds + schema metadata) as JSON —
// the artifact the paper deploys from the training PC to the phone's
// browser, and the file easerd serves and hot-reloads.
func (p *Predictor) Save(w io.Writer) error {
	var modelBuf bytes.Buffer
	if err := p.model.Save(&modelBuf); err != nil {
		return err
	}
	out := predictorJSON{
		Version:         fileVersion,
		FeatureSchema:   features.SchemaVersion,
		NumFeatures:     p.model.NumFeatures(),
		Alpha:           p.alpha,
		TpS:             p.thresholds.Tp.Seconds(),
		TdS:             p.thresholds.Td.Seconds(),
		InterestTrained: p.interestTrained,
		Model:           json.RawMessage(bytes.TrimSpace(modelBuf.Bytes())),
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("predictor: save: %w", err)
	}
	return nil
}

// LoadPredictor reads a predictor previously written with Save, validating
// the envelope (version, feature schema, thresholds) and the embedded forest
// (gbrt.Load's structural checks).
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("predictor: load: %w", err)
	}
	if in.Version != fileVersion {
		return nil, fmt.Errorf("predictor: unsupported model file version %d, want %d (re-save with this build)",
			in.Version, fileVersion)
	}
	if in.FeatureSchema != features.SchemaVersion {
		return nil, fmt.Errorf("predictor: model trained against feature schema %d, this build speaks %d",
			in.FeatureSchema, features.SchemaVersion)
	}
	if in.NumFeatures != features.Num {
		return nil, fmt.Errorf("predictor: saved model declares %d features, want %d",
			in.NumFeatures, features.Num)
	}
	if in.Alpha < 0 {
		return nil, errors.New("predictor: negative alpha in saved model")
	}
	if in.TpS <= 0 || in.TdS <= 0 || math.IsNaN(in.TpS) || math.IsNaN(in.TdS) {
		return nil, fmt.Errorf("predictor: thresholds Tp=%v Td=%v must be positive", in.TpS, in.TdS)
	}
	if in.TdS < in.TpS {
		return nil, fmt.Errorf("predictor: Td %vs below Tp %vs (Algorithm 2 needs Td >= Tp)", in.TdS, in.TpS)
	}
	model, err := gbrt.Load(bytes.NewReader(in.Model))
	if err != nil {
		return nil, err
	}
	if model.NumFeatures() != in.NumFeatures {
		return nil, fmt.Errorf("predictor: envelope declares %d features but forest wants %d",
			in.NumFeatures, model.NumFeatures())
	}
	return &Predictor{
		model:           model,
		interestTrained: in.InterestTrained,
		alpha:           in.Alpha,
		thresholds: Thresholds{
			Alpha: time.Duration(in.Alpha * float64(time.Second)),
			Tp:    time.Duration(in.TpS * float64(time.Second)),
			Td:    time.Duration(in.TdS * float64(time.Second)),
		},
	}, nil
}

// SaveFile writes the predictor to path atomically: the bytes land in a
// temporary sibling first and are renamed into place, so a reader (easerd's
// hot reload) never observes a half-written model.
func (p *Predictor) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("predictor: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("predictor: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a predictor previously written with SaveFile (or Save).
func LoadFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("predictor: load %s: %w", path, err)
	}
	defer f.Close()
	p, err := LoadPredictor(f)
	if err != nil {
		return nil, fmt.Errorf("predictor: load %s: %w", path, err)
	}
	return p, nil
}
