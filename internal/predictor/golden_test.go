package predictor

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/trace"
)

// update rewrites the committed golden predictor instead of comparing
// against it, mirroring the gbrt golden-model harness:
//
//	go test ./internal/predictor -run TestGoldenPredictor -update
var update = flag.Bool("update", false, "rewrite the golden predictor fixture")

const goldenPredictorPath = "testdata/golden_predictor.json"

// goldenPredictor trains the fixed configuration the fixture pins: a small
// forest on the deterministic synthetic dataset, interest threshold on.
func goldenPredictor(t *testing.T) *Predictor {
	t.Helper()
	ds, err := trace.Synthesize(trace.DefaultConfig())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	train, _, err := Split(ds.Visits, 0.3, 20130709)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := Config{
		GBRT:                 gbrt.Config{Trees: 40, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5},
		UseInterestThreshold: true,
		Alpha:                2,
	}
	p, err := Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return p
}

// TestGoldenPredictor trains the fixed setup and requires its serialized
// form to match the committed fixture byte for byte: any drift in the
// envelope format, the thresholds, or the underlying forest shows up here —
// and the fixture doubles as the model file the easerd examples load.
func TestGoldenPredictor(t *testing.T) {
	p := goldenPredictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got := buf.Bytes()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPredictorPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPredictorPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPredictorPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPredictorPath)
	if err != nil {
		t.Fatalf("read golden predictor: %v\n(generate it with: go test ./internal/predictor -run TestGoldenPredictor -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trained predictor differs from %s (%d vs %d bytes); if intended, regenerate with -update",
			goldenPredictorPath, len(got), len(want))
	}
}

// TestGoldenPredictorRoundTrip loads the committed fixture and checks the
// full contract: metadata survives, predictions are bit-identical to the
// freshly trained model, and a second save reproduces the same bytes.
func TestGoldenPredictorRoundTrip(t *testing.T) {
	loaded, err := LoadFile(goldenPredictorPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !loaded.InterestTrained() {
		t.Fatal("fixture lost interestTrained")
	}
	th := loaded.Thresholds()
	if th.Alpha != 2*time.Second || th.Tp != 9*time.Second || th.Td != 20*time.Second {
		t.Fatalf("fixture thresholds %+v, want paper defaults", th)
	}

	p := goldenPredictor(t)
	if loaded.NumTrees() != p.NumTrees() {
		t.Fatalf("fixture has %d trees, fresh training %d", loaded.NumTrees(), p.NumTrees())
	}
	probe := features.Vector{12, 340, 25, 4, 9, 120, 0.8, 3, 2800, 320}
	a, err := p.PredictSeconds(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.PredictSeconds(probe)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fixture prediction drifted: fresh %v vs loaded %v", a, b)
	}
	c, err := loaded.PredictVecSeconds(&probe)
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Fatalf("PredictVecSeconds %v != PredictSeconds %v", c, b)
	}

	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	want, err := os.ReadFile(goldenPredictorPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatal("save→load→save is not byte-stable")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	p := goldenPredictor(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	// No temporary droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.json" {
		t.Fatalf("directory after SaveFile: %v", entries)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.NumTrees() != p.NumTrees() {
		t.Fatalf("round trip lost trees: %d vs %d", loaded.NumTrees(), p.NumTrees())
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestPredictVecSecondsAllocs pins the serving hot path at zero
// allocations.
func TestPredictVecSecondsAllocs(t *testing.T) {
	p := goldenPredictor(t)
	probe := features.Vector{12, 340, 25, 4, 9, 120, 0.8, 3, 2800, 320}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.PredictVecSeconds(&probe); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictVecSeconds allocates %.1f/op, want 0", allocs)
	}
}
