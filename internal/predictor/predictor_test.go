package predictor

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/trace"
)

var sharedDataset *trace.Dataset

func dataset(t *testing.T) *trace.Dataset {
	t.Helper()
	if sharedDataset == nil {
		ds, err := trace.Synthesize(trace.DefaultConfig())
		if err != nil {
			t.Fatalf("Synthesize: %v", err)
		}
		sharedDataset = ds
	}
	return sharedDataset
}

func fastGBRT() gbrt.Config {
	cfg := gbrt.DefaultConfig()
	cfg.Trees = 120
	return cfg
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if th.Alpha != 2*time.Second || th.Tp != 9*time.Second || th.Td != 20*time.Second {
		t.Fatalf("thresholds = %+v, want paper values", th)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
	// Interest threshold that excludes everything.
	visits := []trace.Visit{{ReadingSeconds: 1, Features: features.Vector{}}}
	cfg := DefaultConfig()
	cfg.Alpha = 100
	if _, err := Train(visits, cfg); err == nil {
		t.Fatal("training set fully excluded but Train succeeded")
	}
}

func TestSplit(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 1)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(train)+len(test) != len(ds.Visits) {
		t.Fatalf("split loses visits: %d + %d != %d", len(train), len(test), len(ds.Visits))
	}
	frac := float64(len(test)) / float64(len(ds.Visits))
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("test fraction = %.2f, want ≈0.3", frac)
	}
}

func TestSplitValidation(t *testing.T) {
	visits := []trace.Visit{{}, {}}
	if _, _, err := Split(visits, 0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, _, err := Split(visits, 1, 1); err == nil {
		t.Fatal("full fraction accepted")
	}
	if _, _, err := Split(visits[:1], 0.3, 1); err == nil {
		t.Fatal("single visit accepted")
	}
}

func TestSplitDeterministic(t *testing.T) {
	ds := dataset(t)
	a1, _, err := Split(ds.Visits, 0.3, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	a2, _, err := Split(ds.Visits, 0.3, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(a1) != len(a2) || a1[0].ReadingSeconds != a2[0].ReadingSeconds {
		t.Fatal("same seed, different split")
	}
}

func TestEvaluateNeedsSurvivors(t *testing.T) {
	ds := dataset(t)
	train, _, err := Split(ds.Visits, 0.3, 1)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := Config{GBRT: fastGBRT(), UseInterestThreshold: true, Alpha: 2}
	p, err := Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	shortOnly := []trace.Visit{{ReadingSeconds: 0.5, Features: train[0].Features}}
	if _, err := p.Evaluate(shortOnly, 9, true); err == nil {
		t.Fatal("evaluation with no surviving visits succeeded")
	}
}

// TestFig15AccuracyBands asserts the Fig. 15 reproduction: with the interest
// threshold the accuracy at both Tp and Td is solidly higher than without.
func TestFig15AccuracyBands(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	acc := make(map[bool][2]float64)
	for _, interest := range []bool{false, true} {
		cfg := Config{GBRT: fastGBRT(), UseInterestThreshold: interest, Alpha: 2}
		p, err := Train(train, cfg)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		a9, err := p.Evaluate(test, 9, interest)
		if err != nil {
			t.Fatalf("Evaluate(9): %v", err)
		}
		a20, err := p.Evaluate(test, 20, interest)
		if err != nil {
			t.Fatalf("Evaluate(20): %v", err)
		}
		acc[interest] = [2]float64{a9.Pct(), a20.Pct()}
	}
	with, without := acc[true], acc[false]
	if with[0] < 78 || with[1] < 78 {
		t.Errorf("with-threshold accuracy = %.1f/%.1f, want ≥ 78%% at both thresholds", with[0], with[1])
	}
	if with[0]-without[0] < 8 {
		t.Errorf("interest threshold gain at Tp = %.1f points, want ≥ 8", with[0]-without[0])
	}
	if with[1] <= without[1] {
		t.Errorf("interest threshold does not help at Td: %.1f vs %.1f", with[1], without[1])
	}
}

func TestPredictorMetadata(t *testing.T) {
	ds := dataset(t)
	train, _, err := Split(ds.Visits, 0.3, 1)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := Config{GBRT: fastGBRT(), UseInterestThreshold: true, Alpha: 2}
	p, err := Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !p.InterestTrained() {
		t.Fatal("InterestTrained() = false")
	}
	if p.NumTrees() <= 0 {
		t.Fatalf("NumTrees = %d", p.NumTrees())
	}
	pred, err := p.PredictSeconds(train[0].Features)
	if err != nil {
		t.Fatalf("PredictSeconds: %v", err)
	}
	if pred <= 0 {
		t.Fatalf("predicted reading time %v", pred)
	}
}

func TestAccuracyPct(t *testing.T) {
	a := Accuracy{Correct: 3, Total: 4}
	if a.Pct() != 75 {
		t.Fatalf("Pct = %v, want 75", a.Pct())
	}
	var empty Accuracy
	if empty.Pct() != 0 {
		t.Fatalf("empty Pct = %v, want 0", empty.Pct())
	}
}

func TestRegressionMetrics(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	p, err := Train(train, Config{GBRT: fastGBRT(), UseInterestThreshold: true, Alpha: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	m, err := p.RegressionMetrics(test, true)
	if err != nil {
		t.Fatalf("RegressionMetrics: %v", err)
	}
	if m.N == 0 || m.MAE <= 0 || m.RMSE < m.MAE/2 || m.MedianAE <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// RMSE upweights outliers, so it is at least the MAE.
	if m.RMSE < m.MAE {
		t.Fatalf("RMSE %.2f below MAE %.2f", m.RMSE, m.MAE)
	}
	// The latent medians span up to ~200 s; a useful model keeps the median
	// absolute error within a handful of seconds.
	if m.MedianAE > 15 {
		t.Fatalf("MedianAE = %.1f s, model not useful", m.MedianAE)
	}
}

func TestRegressionMetricsNoSurvivors(t *testing.T) {
	ds := dataset(t)
	train, _, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	p, err := Train(train, Config{GBRT: fastGBRT(), UseInterestThreshold: true, Alpha: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	short := []trace.Visit{{ReadingSeconds: 0.1}}
	if _, err := p.RegressionMetrics(short, true); err == nil {
		t.Fatal("no-survivor metrics succeeded")
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	p, err := Train(train, Config{GBRT: fastGBRT(), UseInterestThreshold: true, Alpha: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatalf("LoadPredictor: %v", err)
	}
	if !loaded.InterestTrained() || loaded.NumTrees() != p.NumTrees() {
		t.Fatalf("metadata lost: interest=%v trees=%d", loaded.InterestTrained(), loaded.NumTrees())
	}
	for _, v := range test[:20] {
		a, err := p.PredictSeconds(v.Features)
		if err != nil {
			t.Fatalf("PredictSeconds: %v", err)
		}
		b, err := loaded.PredictSeconds(v.Features)
		if err != nil {
			t.Fatalf("loaded PredictSeconds: %v", err)
		}
		if a != b {
			t.Fatalf("round trip changed prediction: %v vs %v", a, b)
		}
	}
}

// narrowModel is a structurally valid 1-feature gbrt forest for envelope
// tests.
const narrowModel = `{"version":1,"base":5,"shrinkage":0.5,"numFeatures":1,
	"trees":[{"nodes":[{"leaf":true,"value":1}]}]}`

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	cases := []struct {
		name, payload string
	}{
		{"not json", "junk"},
		{"pre-versioned envelope", `{"alpha":2,"interestTrained":true,"model":` + narrowModel + `}`},
		{"future version", `{"version":99,"featureSchema":1,"numFeatures":10,"alpha":2,"tp_s":9,"td_s":20,"model":` + narrowModel + `}`},
		{"wrong feature schema", `{"version":2,"featureSchema":7,"numFeatures":10,"alpha":2,"tp_s":9,"td_s":20,"model":` + narrowModel + `}`},
		{"wrong feature width", `{"version":2,"featureSchema":1,"numFeatures":1,"alpha":2,"tp_s":9,"td_s":20,"model":` + narrowModel + `}`},
		{"envelope/forest width mismatch", `{"version":2,"featureSchema":1,"numFeatures":10,"alpha":2,"tp_s":9,"td_s":20,"model":` + narrowModel + `}`},
		{"negative alpha", `{"version":2,"featureSchema":1,"numFeatures":10,"alpha":-1,"tp_s":9,"td_s":20,"model":` + narrowModel + `}`},
		{"zero thresholds", `{"version":2,"featureSchema":1,"numFeatures":10,"alpha":2,"tp_s":0,"td_s":0,"model":` + narrowModel + `}`},
		{"inverted thresholds", `{"version":2,"featureSchema":1,"numFeatures":10,"alpha":2,"tp_s":20,"td_s":9,"model":` + narrowModel + `}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadPredictor(strings.NewReader(tc.payload)); err == nil {
				t.Fatalf("payload accepted: %s", tc.payload)
			}
		})
	}
}

func TestPredictBatchSecondsMatchesSingle(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := DefaultConfig()
	cfg.GBRT = fastGBRT()
	p, err := Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	vs := make([]features.Vector, 0, len(test))
	for _, v := range test {
		vs = append(vs, v.Features)
	}
	out := make([]float64, len(vs))
	if err := p.PredictBatchSeconds(vs, out); err != nil {
		t.Fatalf("PredictBatchSeconds: %v", err)
	}
	for i, v := range vs {
		want, err := p.PredictSeconds(v)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("visit %d: batch %v != single %v", i, out[i], want)
		}
	}
}
