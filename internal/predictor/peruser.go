package predictor

import (
	"errors"
	"fmt"
	"sort"

	"eabrowse/internal/features"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
)

// PerUser holds one model per user plus a global fallback — the paper's
// deployment: "the model is trained either offline on a PC or on the
// smartphone when it is connected to a power source", i.e. each phone
// carries its own user's model. Per-user models can absorb the latent
// per-user pace that a global model must treat as noise.
type PerUser struct {
	models map[int]*Predictor
	global *Predictor
	// minVisits is the training-set size below which a user falls back to
	// the global model.
	minVisits int
}

// DefaultMinVisitsPerUser is the fewest visits worth fitting a personal
// model on.
const DefaultMinVisitsPerUser = 40

// TrainPerUser fits a personal model for every user with enough history and
// a shared global fallback for the rest.
func TrainPerUser(visits []trace.Visit, cfg Config) (*PerUser, error) {
	if len(visits) == 0 {
		return nil, errors.New("predictor: no training visits")
	}
	global, err := Train(visits, cfg)
	if err != nil {
		return nil, fmt.Errorf("train global model: %w", err)
	}
	byUser := make(map[int][]trace.Visit)
	for _, v := range visits {
		byUser[v.User] = append(byUser[v.User], v)
	}
	pu := &PerUser{
		models:    make(map[int]*Predictor, len(byUser)),
		global:    global,
		minVisits: DefaultMinVisitsPerUser,
	}
	// Personal models are independent fits, so train them on the worker
	// pool; users are sorted first so the work list is deterministic.
	eligible := make([]int, 0, len(byUser))
	for user, own := range byUser {
		if len(own) >= pu.minVisits {
			eligible = append(eligible, user)
		}
	}
	sort.Ints(eligible)
	models, err := runner.Collect(len(eligible), func(i int) (*Predictor, error) {
		m, err := Train(byUser[eligible[i]], cfg)
		if err != nil {
			// A user whose surviving visits all fall under the interest
			// threshold keeps the global model.
			return nil, nil
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range models {
		if m != nil {
			pu.models[eligible[i]] = m
		}
	}
	return pu, nil
}

// PersonalModels returns how many users got their own model.
func (p *PerUser) PersonalModels() int {
	return len(p.models)
}

// PredictSeconds predicts with the user's model, falling back to the global
// one for unknown or under-trained users.
func (p *PerUser) PredictSeconds(user int, v features.Vector) (float64, error) {
	if m, ok := p.models[user]; ok {
		return m.PredictSeconds(v)
	}
	return p.global.PredictSeconds(v)
}

// Evaluate scores threshold classification like Predictor.Evaluate, routing
// each visit to its user's model. Visits are grouped by the model that
// serves them and predicted in one batch per model, so every forest is
// walked cache-friendly; the counts are identical to per-visit routing.
func (p *PerUser) Evaluate(test []trace.Visit, threshold float64, applyInterest bool) (Accuracy, error) {
	alpha := p.global.alpha
	groups := make(map[*Predictor][]trace.Visit)
	for _, v := range test {
		if applyInterest && v.ReadingSeconds < alpha {
			continue
		}
		m, ok := p.models[v.User]
		if !ok {
			m = p.global
		}
		groups[m] = append(groups[m], v)
	}
	acc := Accuracy{Threshold: threshold}
	for m, visits := range groups {
		vs := make([]features.Vector, len(visits))
		for i, v := range visits {
			vs[i] = v.Features
		}
		preds := make([]float64, len(vs))
		if err := m.PredictBatchSeconds(vs, preds); err != nil {
			return Accuracy{}, err
		}
		for i, v := range visits {
			if (preds[i] > threshold) == (v.ReadingSeconds > threshold) {
				acc.Correct++
			}
			acc.Total++
		}
	}
	if acc.Total == 0 {
		return Accuracy{}, errors.New("predictor: no test visits survive the interest threshold")
	}
	return acc, nil
}
