package predictor

import (
	"testing"

	"eabrowse/internal/gbrt"
)

func TestTrainPerUser(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := Config{GBRT: gbrt.Config{Trees: 80, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5},
		UseInterestThreshold: true, Alpha: 2}
	pu, err := TrainPerUser(train, cfg)
	if err != nil {
		t.Fatalf("TrainPerUser: %v", err)
	}
	if pu.PersonalModels() == 0 {
		t.Fatal("no personal models fitted for 40 users with 2h each")
	}
	acc, err := pu.Evaluate(test, 9, true)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc.Pct() < 70 {
		t.Fatalf("per-user accuracy %.1f%%, want at least the global ballpark", acc.Pct())
	}
}

func TestTrainPerUserEmpty(t *testing.T) {
	if _, err := TrainPerUser(nil, DefaultConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestPerUserFallsBackToGlobal(t *testing.T) {
	ds := dataset(t)
	train, _, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := Config{GBRT: gbrt.Config{Trees: 40, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5},
		UseInterestThreshold: true, Alpha: 2}
	pu, err := TrainPerUser(train, cfg)
	if err != nil {
		t.Fatalf("TrainPerUser: %v", err)
	}
	// An unseen user id must still get a prediction.
	if _, err := pu.PredictSeconds(9999, train[0].Features); err != nil {
		t.Fatalf("fallback prediction failed: %v", err)
	}
}

func TestPerUserVsGlobalAccuracy(t *testing.T) {
	ds := dataset(t)
	train, test, err := Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	cfg := Config{GBRT: gbrt.Config{Trees: 100, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5},
		UseInterestThreshold: true, Alpha: 2}
	global, err := Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pu, err := TrainPerUser(train, cfg)
	if err != nil {
		t.Fatalf("TrainPerUser: %v", err)
	}
	gAcc, err := global.Evaluate(test, 9, true)
	if err != nil {
		t.Fatalf("global Evaluate: %v", err)
	}
	pAcc, err := pu.Evaluate(test, 9, true)
	if err != nil {
		t.Fatalf("per-user Evaluate: %v", err)
	}
	// Per-user models see far less data each; they must stay within a
	// reasonable band of the global model (they may win or lose slightly).
	if pAcc.Pct() < gAcc.Pct()-10 {
		t.Fatalf("per-user %.1f%% collapsed vs global %.1f%%", pAcc.Pct(), gAcc.Pct())
	}
	t.Logf("global %.1f%% vs per-user %.1f%% (personal models: %d)",
		gAcc.Pct(), pAcc.Pct(), pu.PersonalModels())
}
