package capacity

import (
	"math/rand"
	"testing"
	"time"

	"eabrowse/internal/simtime"
)

// simulateDistReference is the pre-optimization SimulateDist, verbatim: the
// simtime.Clock closure-based event loop. It is kept as the oracle the
// inlined-heap rewrite is pinned against — the two must agree bit-for-bit on
// every field for every (dist, users, seed) combination, since fleet output
// determinism depends on the capacity phase being an exact function of its
// inputs.
func simulateDistReference(users int, d *Dist, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	clock := simtime.NewClock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Users: users}
	busy := 0
	smp := newSampler(d)

	nextArrival := func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(cfg.MeanSessionInterval))
	}

	var arrive func()
	arrive = func() {
		res.Offered++
		if busy >= cfg.Channels {
			res.Dropped++
		} else {
			busy++
			if busy > res.MaxBusy {
				res.MaxBusy = busy
			}
			clock.After(time.Duration(smp.draw(rng)*float64(time.Second)), func() { busy-- })
		}
		clock.After(nextArrival(), arrive)
	}
	for u := 0; u < users; u++ {
		clock.After(nextArrival(), arrive)
	}
	clock.RunUntil(cfg.Duration)

	if res.Offered > 0 {
		res.DropPercent = float64(res.Dropped) / float64(res.Offered) * 100
	}
	return res, nil
}

func referenceDists(t *testing.T) []*Dist {
	t.Helper()
	single := &Dist{}
	if err := single.Add(2.5, 10); err != nil {
		t.Fatal(err)
	}
	spread := &Dist{}
	for i, v := range []float64{0.4, 1.2, 2.8, 5.5, 9.1, 14.7} {
		if err := spread.Add(v, int64(3+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	skewed := &Dist{}
	if err := skewed.Add(0.25, 100000); err != nil {
		t.Fatal(err)
	}
	if err := skewed.Add(30, 3); err != nil {
		t.Fatal(err)
	}
	return []*Dist{single, spread, skewed}
}

func TestSimulateDistMatchesReferenceBitIdentical(t *testing.T) {
	for di, d := range referenceDists(t) {
		for _, users := range []int{1, 7, 150, 900} {
			for _, seed := range []int64{1, 42, 987654321} {
				cfg := Config{
					Channels:            40,
					MeanSessionInterval: 25 * time.Second,
					Duration:            30 * time.Minute,
					Seed:                seed,
				}
				got, err := SimulateDist(users, d, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := simulateDistReference(users, d, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("dist %d users %d seed %d: fast %+v != reference %+v",
						di, users, seed, got, want)
				}
			}
		}
	}
}

func TestSimulateDistMatchesReferencePaperConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration run")
	}
	d := referenceDists(t)[1]
	cfg := DefaultConfig()
	got, err := SimulateDist(3000, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := simulateDistReference(3000, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("paper config: fast %+v != reference %+v", got, want)
	}
}

func TestDropPercentAt(t *testing.T) {
	d := referenceDists(t)[1]
	cfg := Config{
		Channels:            40,
		MeanSessionInterval: 25 * time.Second,
		Duration:            20 * time.Minute,
		Seed:                42,
	}
	// At or below the cap: exactly the simulated figure.
	simmed, err := SimulateDist(500, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DropPercentAt(500, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != simmed.DropPercent {
		t.Fatalf("below cap: DropPercentAt %v != SimulateDist %v", got, simmed.DropPercent)
	}
	// Above the cap: exactly the Erlang-B figure from the dist mean.
	analytic, err := cfg.AnalyticDropPercent(MaxSimulatedFleet+1, d.Mean())
	if err != nil {
		t.Fatal(err)
	}
	got, err = DropPercentAt(MaxSimulatedFleet+1, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != analytic {
		t.Fatalf("above cap: DropPercentAt %v != AnalyticDropPercent %v", got, analytic)
	}
	if _, err := DropPercentAt(10, &Dist{}, cfg); err == nil {
		t.Fatal("empty dist accepted")
	}
	if _, err := DropPercentAt(MaxSimulatedFleet+1, &Dist{}, cfg); err == nil {
		t.Fatal("empty dist accepted on analytic path")
	}
	if _, err := DropPercentAt(0, d, cfg); err == nil {
		t.Fatal("zero users accepted")
	}
}
