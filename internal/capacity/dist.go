package capacity

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Dist is an empirical service-time distribution in compressed form: each
// distinct value carries a weight (its observation count). Large fleets
// produce millions of per-visit transmission times but only a bounded set of
// distinct values (one per page/pipeline/radio-start-state template), so a
// weighted distribution keeps the capacity model's memory independent of the
// fleet size where a raw sample slice would grow with it.
type Dist struct {
	values []float64
	counts []int64
	total  int64
}

// Add records n observations of value v (appending a new slot or widening an
// existing one; lookup is linear, so callers with many distinct values should
// pre-aggregate). n must be positive and v must be a positive duration in
// seconds.
func (d *Dist) Add(v float64, n int64) error {
	if n <= 0 {
		return fmt.Errorf("capacity: non-positive weight %d", n)
	}
	if v <= 0 {
		return fmt.Errorf("capacity: non-positive service time %v", v)
	}
	for i, have := range d.values {
		if have == v {
			d.counts[i] += n
			d.total += n
			return nil
		}
	}
	d.values = append(d.values, v)
	d.counts = append(d.counts, n)
	d.total += n
	return nil
}

// Merge folds other into d, value by value in other's insertion order.
func (d *Dist) Merge(other *Dist) error {
	for i, v := range other.values {
		if err := d.Add(v, other.counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// N returns the total number of observations.
func (d *Dist) N() int64 { return d.total }

// Sum returns the weighted sum of values (observations × value), accumulated
// in insertion order so it is deterministic for deterministic insertions.
func (d *Dist) Sum() float64 {
	var s float64
	for i, v := range d.values {
		s += v * float64(d.counts[i])
	}
	return s
}

// Mean returns the weighted mean (0 for an empty distribution).
func (d *Dist) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	return d.Sum() / float64(d.total)
}

// sampler draws values with probability proportional to their counts via a
// cumulative-count table and one Int63n per draw.
type sampler struct {
	values []float64
	cum    []int64
	total  int64
}

func newSampler(d *Dist) sampler {
	cum := make([]int64, len(d.counts))
	var run int64
	for i, c := range d.counts {
		run += c
		cum[i] = run
	}
	return sampler{values: d.values, cum: cum, total: run}
}

func (s *sampler) draw(rng *rand.Rand) float64 {
	target := rng.Int63n(s.total)
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.values[lo]
}

// distEvent is one entry of SimulateDist's inline event heap: an arrival or
// departure at simulated time at, ordered by (at, seq) exactly as
// simtime.Clock orders its queue, so the fast loop replays the identical
// event sequence.
type distEvent struct {
	at  time.Duration
	seq uint64
	dep bool
}

// distHeap is a min-heap of events by (at, seq). It is hand-rolled (as
// simtime's is) so push/pop touch only the preallocated backing slice — the
// closure-based Clock version allocated two closures plus a queue entry per
// arrival, which dominated the fleet's capacity phase at 100k+ users.
type distHeap []distEvent

func (h distHeap) less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].seq < h[b].seq
}

func (h *distHeap) push(e distEvent) {
	q := append(*h, e)
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *distHeap) pop() distEvent {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	for i := 0; ; {
		m := i
		if l := 2*i + 1; l < len(q) && q.less(l, m) {
			m = l
		}
		if r := 2*i + 2; r < len(q) && q.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// SimulateDist is Simulate over a weighted service-time distribution. It is
// a separate entry point rather than a change to Simulate because the two
// draw from their rng differently (index vs. cumulative weight), and
// Simulate's exact draw sequence is pinned by the Fig. 11 golden output.
//
// The event loop is an inlined allocation-free replica of the
// simtime.Clock-based formulation (preserved as simulateDistReference in the
// test suite, which pins bit-identity): same rng draw order — service draw
// then next-arrival draw on accepted arrivals, next-arrival draw alone on
// drops — same (at, seq) tie order, same deadline-inclusive cutoff.
func SimulateDist(users int, d *Dist, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if users <= 0 {
		return Result{}, errors.New("capacity: need at least one user")
	}
	if d == nil || d.total == 0 {
		return Result{}, errors.New("capacity: empty service-time distribution")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Users: users}
	busy := 0
	smp := newSampler(d)

	// Each user always has exactly one pending arrival; at most Channels
	// departures are in flight — so the heap never outgrows this.
	h := make(distHeap, 0, users+cfg.Channels)
	var seq uint64
	schedule := func(now, d time.Duration, dep bool) {
		if d < 0 {
			d = 0 // simtime.After clamps the same way
		}
		h.push(distEvent{at: now + d, seq: seq, dep: dep})
		seq++
	}
	interval := float64(cfg.MeanSessionInterval)
	for u := 0; u < users; u++ {
		schedule(0, time.Duration(rng.ExpFloat64()*interval), false)
	}
	for len(h) > 0 && h[0].at <= cfg.Duration {
		ev := h.pop()
		if ev.dep {
			busy--
			continue
		}
		res.Offered++
		if busy >= cfg.Channels {
			res.Dropped++
		} else {
			busy++
			if busy > res.MaxBusy {
				res.MaxBusy = busy
			}
			schedule(ev.at, time.Duration(smp.draw(rng)*float64(time.Second)), true)
		}
		schedule(ev.at, time.Duration(rng.ExpFloat64()*interval), false)
	}

	if res.Offered > 0 {
		res.DropPercent = float64(res.Dropped) / float64(res.Offered) * 100
	}
	return res, nil
}

// MaxSimulatedFleet is the largest population DropPercentAt walks
// event-by-event. It matches the fleet-size ceiling that existed before the
// million-user bound was raised, so every previously expressible
// configuration still takes the simulated path and stays byte-identical.
const MaxSimulatedFleet = 200_000

// DropPercentAt returns the dropping probability (percent) for a population
// of the given size. Populations up to MaxSimulatedFleet run the full
// discrete-event simulation; beyond that the cost of walking hundreds of
// millions of arrivals buys nothing — the Erlang-B formula is exact for
// M/G/N/N loss systems regardless of the service-time shape (insensitivity
// property), so larger populations are answered analytically from the
// distribution's mean.
func DropPercentAt(users int, d *Dist, cfg Config) (float64, error) {
	if users <= MaxSimulatedFleet {
		r, err := SimulateDist(users, d, cfg)
		if err != nil {
			return 0, err
		}
		return r.DropPercent, nil
	}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if d == nil || d.total == 0 {
		return 0, errors.New("capacity: empty service-time distribution")
	}
	return cfg.AnalyticDropPercent(users, d.Mean())
}

// SupportedUsersDist finds (by bisection) the largest user population whose
// dropping probability stays at or below maxDropPercent, drawing service
// times from the weighted distribution.
func SupportedUsersDist(d *Dist, maxDropPercent float64, cfg Config) (int, error) {
	if maxDropPercent <= 0 || maxDropPercent >= 100 {
		return 0, fmt.Errorf("capacity: drop target %v%% out of (0,100)", maxDropPercent)
	}
	lo := 1
	hi := 1
	for {
		r, err := SimulateDist(hi, d, cfg)
		if err != nil {
			return 0, err
		}
		if r.DropPercent > maxDropPercent {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return 0, errors.New("capacity: target never exceeded (degenerate service times)")
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		r, err := SimulateDist(mid, d, cfg)
		if err != nil {
			return 0, err
		}
		if r.DropPercent > maxDropPercent {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
