package capacity

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"eabrowse/internal/simtime"
)

// Dist is an empirical service-time distribution in compressed form: each
// distinct value carries a weight (its observation count). Large fleets
// produce millions of per-visit transmission times but only a bounded set of
// distinct values (one per page/pipeline/radio-start-state template), so a
// weighted distribution keeps the capacity model's memory independent of the
// fleet size where a raw sample slice would grow with it.
type Dist struct {
	values []float64
	counts []int64
	total  int64
}

// Add records n observations of value v (appending a new slot or widening an
// existing one; lookup is linear, so callers with many distinct values should
// pre-aggregate). n must be positive and v must be a positive duration in
// seconds.
func (d *Dist) Add(v float64, n int64) error {
	if n <= 0 {
		return fmt.Errorf("capacity: non-positive weight %d", n)
	}
	if v <= 0 {
		return fmt.Errorf("capacity: non-positive service time %v", v)
	}
	for i, have := range d.values {
		if have == v {
			d.counts[i] += n
			d.total += n
			return nil
		}
	}
	d.values = append(d.values, v)
	d.counts = append(d.counts, n)
	d.total += n
	return nil
}

// Merge folds other into d, value by value in other's insertion order.
func (d *Dist) Merge(other *Dist) error {
	for i, v := range other.values {
		if err := d.Add(v, other.counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// N returns the total number of observations.
func (d *Dist) N() int64 { return d.total }

// Sum returns the weighted sum of values (observations × value), accumulated
// in insertion order so it is deterministic for deterministic insertions.
func (d *Dist) Sum() float64 {
	var s float64
	for i, v := range d.values {
		s += v * float64(d.counts[i])
	}
	return s
}

// Mean returns the weighted mean (0 for an empty distribution).
func (d *Dist) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	return d.Sum() / float64(d.total)
}

// sampler draws values with probability proportional to their counts via a
// cumulative-count table and one Int63n per draw.
type sampler struct {
	values []float64
	cum    []int64
	total  int64
}

func newSampler(d *Dist) sampler {
	cum := make([]int64, len(d.counts))
	var run int64
	for i, c := range d.counts {
		run += c
		cum[i] = run
	}
	return sampler{values: d.values, cum: cum, total: run}
}

func (s *sampler) draw(rng *rand.Rand) float64 {
	target := rng.Int63n(s.total)
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.values[lo]
}

// SimulateDist is Simulate over a weighted service-time distribution. It is
// a separate entry point rather than a change to Simulate because the two
// draw from their rng differently (index vs. cumulative weight), and
// Simulate's exact draw sequence is pinned by the Fig. 11 golden output.
func SimulateDist(users int, d *Dist, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if users <= 0 {
		return Result{}, errors.New("capacity: need at least one user")
	}
	if d == nil || d.total == 0 {
		return Result{}, errors.New("capacity: empty service-time distribution")
	}

	clock := simtime.NewClock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Users: users}
	busy := 0
	smp := newSampler(d)

	nextArrival := func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(cfg.MeanSessionInterval))
	}

	var arrive func()
	arrive = func() {
		res.Offered++
		if busy >= cfg.Channels {
			res.Dropped++
		} else {
			busy++
			if busy > res.MaxBusy {
				res.MaxBusy = busy
			}
			clock.After(time.Duration(smp.draw(rng)*float64(time.Second)), func() { busy-- })
		}
		clock.After(nextArrival(), arrive)
	}
	for u := 0; u < users; u++ {
		clock.After(nextArrival(), arrive)
	}
	clock.RunUntil(cfg.Duration)

	if res.Offered > 0 {
		res.DropPercent = float64(res.Dropped) / float64(res.Offered) * 100
	}
	return res, nil
}

// SupportedUsersDist finds (by bisection) the largest user population whose
// dropping probability stays at or below maxDropPercent, drawing service
// times from the weighted distribution.
func SupportedUsersDist(d *Dist, maxDropPercent float64, cfg Config) (int, error) {
	if maxDropPercent <= 0 || maxDropPercent >= 100 {
		return 0, fmt.Errorf("capacity: drop target %v%% out of (0,100)", maxDropPercent)
	}
	lo := 1
	hi := 1
	for {
		r, err := SimulateDist(hi, d, cfg)
		if err != nil {
			return 0, err
		}
		if r.DropPercent > maxDropPercent {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return 0, errors.New("capacity: target never exceeded (degenerate service times)")
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		r, err := SimulateDist(mid, d, cfg)
		if err != nil {
			return 0, err
		}
		if r.DropPercent > maxDropPercent {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
