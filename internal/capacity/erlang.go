package capacity

import (
	"errors"
	"fmt"
	"math"
)

// ErlangB returns the analytic blocking probability of an M/G/N/N loss
// system carrying offered traffic of `erlangs` over n servers, using the
// numerically stable recursive form:
//
//	B(0, A) = 1
//	B(k, A) = A·B(k-1, A) / (k + A·B(k-1, A))
//
// By the Erlang insensitivity property the result depends on the service
// distribution only through its mean, which is what lets this closed form
// validate the discrete-event simulation in Simulate.
func ErlangB(n int, erlangs float64) (float64, error) {
	if n <= 0 {
		return 0, errors.New("capacity: ErlangB needs at least one server")
	}
	if erlangs < 0 {
		return 0, fmt.Errorf("capacity: negative offered load %v", erlangs)
	}
	if erlangs == 0 {
		return 0, nil
	}
	b := 1.0
	for k := 1; k <= n; k++ {
		b = erlangs * b / (float64(k) + erlangs*b)
	}
	return b, nil
}

// OfferedErlangs converts a user population into offered load: each user
// generates one session per MeanSessionInterval holding a channel for
// meanServiceS seconds.
func (c Config) OfferedErlangs(users int, meanServiceS float64) float64 {
	if users <= 0 || meanServiceS <= 0 {
		return 0
	}
	return float64(users) * meanServiceS / c.MeanSessionInterval.Seconds()
}

// AnalyticDropPercent predicts the session-dropping percentage for a user
// population with the given mean service time, via Erlang B.
func (c Config) AnalyticDropPercent(users int, meanServiceS float64) (float64, error) {
	b, err := ErlangB(c.Channels, c.OfferedErlangs(users, meanServiceS))
	if err != nil {
		return 0, err
	}
	return b * 100, nil
}

// AnalyticSupportedUsers inverts AnalyticDropPercent by bisection: the
// largest population whose analytic blocking stays at or below
// maxDropPercent.
func (c Config) AnalyticSupportedUsers(meanServiceS float64, maxDropPercent float64) (int, error) {
	if meanServiceS <= 0 {
		return 0, errors.New("capacity: non-positive service time")
	}
	if maxDropPercent <= 0 || maxDropPercent >= 100 {
		return 0, fmt.Errorf("capacity: drop target %v%% out of (0,100)", maxDropPercent)
	}
	lo, hi := 1, 2
	for {
		drop, err := c.AnalyticDropPercent(hi, meanServiceS)
		if err != nil {
			return 0, err
		}
		if drop > maxDropPercent {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<24 {
			return 0, errors.New("capacity: blocking target never exceeded")
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		drop, err := c.AnalyticDropPercent(mid, meanServiceS)
		if err != nil {
			return 0, err
		}
		if drop > maxDropPercent {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}

// ValidateAgainstAnalytic runs the simulation and compares its dropping
// probability with Erlang B, returning both and their absolute difference in
// percentage points. Used by tests and by operators sanity-checking a
// configuration.
func ValidateAgainstAnalytic(users int, serviceTimes []float64, cfg Config) (simPct, analyticPct, diff float64, err error) {
	res, err := Simulate(users, serviceTimes, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	mean := 0.0
	for _, s := range serviceTimes {
		mean += s
	}
	mean /= float64(len(serviceTimes))
	analytic, err := cfg.AnalyticDropPercent(users, mean)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.DropPercent, analytic, math.Abs(res.DropPercent - analytic), nil
}
