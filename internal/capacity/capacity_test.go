package capacity

import (
	"testing"
	"time"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 20 * time.Minute
	return cfg
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no channels", func(c *Config) { c.Channels = 0 }},
		{"zero interval", func(c *Config) { c.MeanSessionInterval = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate succeeded")
			}
		})
	}
}

func TestSimulateValidatesInputs(t *testing.T) {
	cfg := fastConfig()
	if _, err := Simulate(0, []float64{1}, cfg); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := Simulate(10, nil, cfg); err == nil {
		t.Fatal("empty service times accepted")
	}
	if _, err := Simulate(10, []float64{0}, cfg); err == nil {
		t.Fatal("zero service time accepted")
	}
}

func TestLightLoadNoDrops(t *testing.T) {
	cfg := fastConfig()
	// 10 users, 5 s service, 25 s intervals: offered load ≈ 2 Erlang on 200
	// channels — nothing can drop.
	res, err := Simulate(10, []float64{5}, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d sessions under trivial load", res.Dropped)
	}
	if res.Offered == 0 {
		t.Fatal("no sessions offered")
	}
}

func TestOverloadDrops(t *testing.T) {
	cfg := fastConfig()
	cfg.Channels = 5
	// 100 users with 30 s sessions every 25 s: offered load 120 Erlang on 5
	// channels — most sessions must drop.
	res, err := Simulate(100, []float64{30}, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.DropPercent < 50 {
		t.Fatalf("drop %.1f%% under extreme overload, want > 50%%", res.DropPercent)
	}
	if res.MaxBusy != cfg.Channels {
		t.Fatalf("MaxBusy = %d, want %d", res.MaxBusy, cfg.Channels)
	}
}

func TestDropMonotoneInUsers(t *testing.T) {
	cfg := fastConfig()
	cfg.Channels = 50
	service := []float64{20}
	prev := -1.0
	for _, users := range []int{50, 100, 200, 400} {
		res, err := Simulate(users, service, cfg)
		if err != nil {
			t.Fatalf("Simulate(%d): %v", users, err)
		}
		if res.DropPercent < prev-2 { // allow small stochastic wiggle
			t.Fatalf("drop %% fell from %.1f to %.1f as users grew", prev, res.DropPercent)
		}
		prev = res.DropPercent
	}
}

func TestShorterServiceRaisesCapacity(t *testing.T) {
	cfg := fastConfig()
	longUsers, err := SupportedUsers([]float64{30}, 2, cfg)
	if err != nil {
		t.Fatalf("SupportedUsers(long): %v", err)
	}
	shortUsers, err := SupportedUsers([]float64{21}, 2, cfg)
	if err != nil {
		t.Fatalf("SupportedUsers(short): %v", err)
	}
	if shortUsers <= longUsers {
		t.Fatalf("short service supports %d users, long %d — want strictly more", shortUsers, longUsers)
	}
	// A 30% shorter hold time should buy very roughly 20-50% more users.
	gain := float64(shortUsers-longUsers) / float64(longUsers) * 100
	if gain < 5 || gain > 80 {
		t.Fatalf("capacity gain %.1f%% implausible", gain)
	}
}

func TestSupportedUsersValidatesTarget(t *testing.T) {
	cfg := fastConfig()
	if _, err := SupportedUsers([]float64{5}, 0, cfg); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := SupportedUsers([]float64{5}, 100, cfg); err == nil {
		t.Fatal("100% target accepted")
	}
}

func TestSweep(t *testing.T) {
	cfg := fastConfig()
	cfg.Channels = 20
	results, err := Sweep([]int{10, 50, 100}, []float64{15}, cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, users := range []int{10, 50, 100} {
		if results[i].Users != users {
			t.Fatalf("result %d users = %d, want %d", i, results[i].Users, users)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := fastConfig()
	a, err := Simulate(100, []float64{10, 20, 30}, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := Simulate(100, []float64{10, 20, 30}, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}
