// Package capacity implements the network-capacity model of Section 5.4: an
// M/G/N/N (Erlang-loss) discrete-event simulation of the backbone's
// dedicated-channel pool. Each browsing user generates data sessions with
// exponentially distributed intervals; a session needs a dedicated channel
// pair for exactly its data-transmission time; when all N pairs are busy the
// session is dropped. Shorter transmissions (the energy-aware pipeline's
// grouped transfers) hold channels for less time, so the same pool supports
// more users at equal dropping probability (Fig. 11).
package capacity

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"eabrowse/internal/simtime"
)

// Config parameterizes the queueing model (Section 5.4's values).
type Config struct {
	// Channels is N, the number of dedicated channel pairs (paper: 200).
	Channels int
	// MeanSessionInterval is the per-user Poisson inter-session time
	// (paper: λ = 25 s).
	MeanSessionInterval time.Duration
	// Duration is the simulated busy period (paper: 4 hours).
	Duration time.Duration
	// Seed drives the arrival and service sampling.
	Seed int64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Channels:            200,
		MeanSessionInterval: 25 * time.Second,
		Duration:            4 * time.Hour,
		Seed:                42,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return errors.New("capacity: need at least one channel")
	case c.MeanSessionInterval <= 0:
		return errors.New("capacity: session interval must be positive")
	case c.Duration <= 0:
		return errors.New("capacity: duration must be positive")
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	Users       int
	Offered     int
	Dropped     int
	MaxBusy     int
	DropPercent float64
}

// Simulate runs the Erlang-loss system with the given number of users, each
// generating sessions whose service times are drawn from the empirical
// serviceTimes distribution (seconds) — in the paper, the measured per-page
// data-transmission times of the pipeline under test.
func Simulate(users int, serviceTimes []float64, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if users <= 0 {
		return Result{}, errors.New("capacity: need at least one user")
	}
	if len(serviceTimes) == 0 {
		return Result{}, errors.New("capacity: empty service-time distribution")
	}
	for _, s := range serviceTimes {
		if s <= 0 {
			return Result{}, fmt.Errorf("capacity: non-positive service time %v", s)
		}
	}

	clock := simtime.NewClock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Users: users}
	busy := 0

	sample := func() time.Duration {
		return time.Duration(serviceTimes[rng.Intn(len(serviceTimes))] * float64(time.Second))
	}
	nextArrival := func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(cfg.MeanSessionInterval))
	}

	var arrive func()
	arrive = func() {
		res.Offered++
		if busy >= cfg.Channels {
			res.Dropped++
		} else {
			busy++
			if busy > res.MaxBusy {
				res.MaxBusy = busy
			}
			clock.After(sample(), func() { busy-- })
		}
		clock.After(nextArrival(), arrive)
	}
	for u := 0; u < users; u++ {
		clock.After(nextArrival(), arrive)
	}
	clock.RunUntil(cfg.Duration)

	if res.Offered > 0 {
		res.DropPercent = float64(res.Dropped) / float64(res.Offered) * 100
	}
	return res, nil
}

// Sweep runs Simulate for each user count and returns the results in order.
func Sweep(userCounts []int, serviceTimes []float64, cfg Config) ([]Result, error) {
	out := make([]Result, 0, len(userCounts))
	for _, u := range userCounts {
		r, err := Simulate(u, serviceTimes, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SupportedUsers finds (by bisection) the largest user population whose
// session-dropping probability stays at or below maxDropPercent.
func SupportedUsers(serviceTimes []float64, maxDropPercent float64, cfg Config) (int, error) {
	if maxDropPercent <= 0 || maxDropPercent >= 100 {
		return 0, fmt.Errorf("capacity: drop target %v%% out of (0,100)", maxDropPercent)
	}
	lo := 1
	hi := 1
	// Grow until the target is exceeded.
	for {
		r, err := Simulate(hi, serviceTimes, cfg)
		if err != nil {
			return 0, err
		}
		if r.DropPercent > maxDropPercent {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return 0, errors.New("capacity: target never exceeded (degenerate service times)")
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		r, err := Simulate(mid, serviceTimes, cfg)
		if err != nil {
			return 0, err
		}
		if r.DropPercent > maxDropPercent {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
