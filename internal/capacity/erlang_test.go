package capacity

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestErlangBKnownValues(t *testing.T) {
	// Textbook values: B(N=1, A=1) = 0.5; B(2, 1) = 0.2; B(5, 3) ≈ 0.1101.
	tests := []struct {
		n    int
		a    float64
		want float64
		tol  float64
	}{
		{1, 1, 0.5, 1e-12},
		{2, 1, 0.2, 1e-12},
		{5, 3, 0.11005, 1e-4},
		{10, 5, 0.018385, 1e-4},
		{200, 100, 0, 1e-9}, // hugely over-provisioned
	}
	for _, tt := range tests {
		got, err := ErlangB(tt.n, tt.a)
		if err != nil {
			t.Fatalf("ErlangB(%d, %v): %v", tt.n, tt.a, err)
		}
		if math.Abs(got-tt.want) > tt.tol {
			t.Fatalf("ErlangB(%d, %v) = %v, want %v", tt.n, tt.a, got, tt.want)
		}
	}
}

func TestErlangBValidation(t *testing.T) {
	if _, err := ErlangB(0, 1); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := ErlangB(5, -1); err == nil {
		t.Fatal("negative load accepted")
	}
	if b, err := ErlangB(5, 0); err != nil || b != 0 {
		t.Fatalf("ErlangB(5, 0) = %v, %v", b, err)
	}
}

// TestPropertyErlangBMonotone: blocking grows with load and shrinks with
// servers, always within [0, 1].
func TestPropertyErlangBMonotone(t *testing.T) {
	f := func(nRaw, aRaw uint8) bool {
		n := 1 + int(nRaw%50)
		a := float64(aRaw%80) + 0.5
		b, err := ErlangB(n, a)
		if err != nil || b < 0 || b > 1 {
			return false
		}
		bMore, err := ErlangB(n, a+5)
		if err != nil || bMore < b-1e-12 {
			return false
		}
		bServers, err := ErlangB(n+5, a)
		if err != nil || bServers > b+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOfferedErlangs(t *testing.T) {
	cfg := DefaultConfig() // λ = 25 s
	if got := cfg.OfferedErlangs(100, 25); math.Abs(got-100) > 1e-9 {
		t.Fatalf("OfferedErlangs = %v, want 100", got)
	}
	if got := cfg.OfferedErlangs(0, 25); got != 0 {
		t.Fatalf("zero users load = %v", got)
	}
}

// TestSimulationMatchesErlangB: the discrete-event loss system must agree
// with the closed form within Monte-Carlo noise. This is the capacity
// model's core validation.
func TestSimulationMatchesErlangB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 40
	cfg.Duration = 6 * time.Hour
	// Mixed service times; the mean is what Erlang B sees (insensitivity).
	service := []float64{10, 20, 30, 40}
	for _, users := range []int{80, 120, 160} {
		sim, analytic, diff, err := ValidateAgainstAnalytic(users, service, cfg)
		if err != nil {
			t.Fatalf("ValidateAgainstAnalytic(%d): %v", users, err)
		}
		if diff > 2.5 {
			t.Fatalf("users=%d: sim %.2f%% vs Erlang-B %.2f%% (diff %.2f points)",
				users, sim, analytic, diff)
		}
	}
}

func TestAnalyticSupportedUsersTracksSimulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = time.Hour
	analytic, err := cfg.AnalyticSupportedUsers(30, 2)
	if err != nil {
		t.Fatalf("AnalyticSupportedUsers: %v", err)
	}
	simulated, err := SupportedUsers([]float64{30}, 2, cfg)
	if err != nil {
		t.Fatalf("SupportedUsers: %v", err)
	}
	ratio := float64(simulated) / float64(analytic)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("simulated capacity %d vs analytic %d (ratio %.2f)", simulated, analytic, ratio)
	}
}

func TestAnalyticValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := cfg.AnalyticSupportedUsers(0, 2); err == nil {
		t.Fatal("zero service accepted")
	}
	if _, err := cfg.AnalyticSupportedUsers(30, 0); err == nil {
		t.Fatal("zero target accepted")
	}
}
