package cssscan

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary byte soup to the CSS parser and the cheap
// reference scan, checking the package's contract: ScanRefs must find exactly
// the references Parse does, imports are a subset of refs, and counters stay
// sane.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"body { color: red }",
		"a { background: url(img.png) }",
		`@import "other.css"; p { margin: 0 }`,
		"@import url('quoted.css');",
		"/* url(commented.png) */ div { background: url( spaced.gif ) }",
		`h1 { content: "url(in-string.png)" }`,
		"@media screen { .x { background: url(nested.jpg) } }",
		"broken { unclosed",
		"url(",
		"@import",
		"/* unterminated comment url(x.png)",
		"URL(UPPER.PNG) @IMPORT 'CAPS.CSS';",
		// Regression: U+2126 (Ω) lowercases to fewer bytes, so an index valid
		// in the original overran the ToLower'd copy used for matching.
		strings.Repeat("Ω", 5) + "url(x.png)",
		// U+0130 (İ) lowercases to more bytes, shifting matches the other way.
		strings.Repeat("İ", 5) + "@import 'y.css';",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sheet := Parse(src)
		if sheet == nil {
			t.Fatal("Parse returned nil")
		}
		if sheet.Rules < 0 || sheet.Declarations < 0 {
			t.Fatalf("negative counters: rules=%d decls=%d", sheet.Rules, sheet.Declarations)
		}
		refs, imports := ScanRefs(src)
		if len(refs) != len(sheet.Refs) {
			t.Fatalf("ScanRefs found %d refs, Parse found %d", len(refs), len(sheet.Refs))
		}
		for i := range refs {
			if refs[i] != sheet.Refs[i] {
				t.Fatalf("ref %d: scan %q vs parse %q", i, refs[i], sheet.Refs[i])
			}
		}
		if len(imports) > len(refs) {
			t.Fatalf("%d imports but only %d refs", len(imports), len(refs))
		}
		seen := make(map[string]int)
		for _, r := range refs {
			seen[r]++
		}
		for _, imp := range imports {
			if seen[imp] == 0 {
				t.Fatalf("import %q not among refs", imp)
			}
			seen[imp]--
		}
	})
}
