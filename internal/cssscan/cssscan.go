// Package cssscan implements the two CSS operations of Section 4.1: a cheap
// *scan* that only extracts fetchable references (url(...) values and
// @import targets) and a full *parse* that extracts style rules.
//
// The energy-aware browser only scans stylesheets during the data
// transmission phase — extracting the rules is exactly the expensive work
// the paper defers to the layout phase ("since the CSS file is large and
// complex, it takes a lot of processing time to extract the rules").
package cssscan

import (
	"strings"
)

// Stylesheet is the result of fully parsing CSS source.
type Stylesheet struct {
	// Rules is the number of style rules (selector blocks).
	Rules int
	// Declarations is the total number of property declarations.
	Declarations int
	// Refs lists referenced URLs (images, imported sheets) in order.
	Refs []string
	// Imports lists @import targets (a subset of Refs).
	Imports []string
}

// ScanRefs extracts every url(...) and @import reference from src without
// building rules. This is the energy-aware browser's cheap pass; it must
// find exactly the same references as Parse.
func ScanRefs(src string) (refs, imports []string) {
	return extractRefs(src)
}

// Parse fully parses the stylesheet: rules and declarations are counted
// (they drive the style-formatting cost model) and references extracted.
func Parse(src string) *Stylesheet {
	sheet := &Stylesheet{}
	sheet.Refs, sheet.Imports = extractRefs(src)

	depth := 0
	decls := 0
	inComment := false
	var quote byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inComment {
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inComment = false
				i++
			}
			continue
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '/':
			if i+1 < len(src) && src[i+1] == '*' {
				inComment = true
				i++
			}
		case '"', '\'':
			quote = c
		case '{':
			if depth == 0 {
				sheet.Rules++
			}
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case ':':
			if depth > 0 {
				decls++
			}
		}
	}
	sheet.Declarations = decls
	return sheet
}

// extractRefs finds url(...) values and @import "..." / @import url(...)
// targets, skipping comments and respecting quotes. The keyword match must be
// case-insensitive but index-preserving: strings.ToLower can change the byte
// length (U+0130, U+2126), so positions in its output would not be valid in
// src — asciiLower keeps every index aligned.
func extractRefs(src string) (refs, imports []string) {
	lower := asciiLower(src)
	i := 0
	for i < len(src) {
		if strings.HasPrefix(lower[i:], "/*") {
			end := strings.Index(lower[i+2:], "*/")
			if end < 0 {
				break
			}
			i += 2 + end + 2
			continue
		}
		if strings.HasPrefix(lower[i:], "url(") {
			u, next := readURLParen(src, i+4)
			if u != "" {
				refs = append(refs, u)
			}
			i = next
			continue
		}
		if strings.HasPrefix(lower[i:], "@import") {
			j := i + len("@import")
			for j < len(src) && isCSSSpace(src[j]) {
				j++
			}
			var u string
			switch {
			case strings.HasPrefix(lower[j:], "url("):
				u, j = readURLParen(src, j+4)
			case j < len(src) && (src[j] == '"' || src[j] == '\''):
				u, j = readQuoted(src, j)
			}
			if u != "" {
				refs = append(refs, u)
				imports = append(imports, u)
			}
			i = j
			continue
		}
		i++
	}
	return refs, imports
}

// readURLParen reads a url(...) body starting just past "url(".
func readURLParen(src string, i int) (string, int) {
	for i < len(src) && isCSSSpace(src[i]) {
		i++
	}
	if i < len(src) && (src[i] == '"' || src[i] == '\'') {
		u, next := readQuoted(src, i)
		// Skip to the closing paren.
		for next < len(src) && src[next] != ')' {
			next++
		}
		if next < len(src) {
			next++
		}
		return u, next
	}
	start := i
	for i < len(src) && src[i] != ')' {
		i++
	}
	u := strings.TrimSpace(src[start:i])
	if i < len(src) {
		i++
	}
	return u, i
}

// readQuoted reads a quoted string starting at the opening quote.
func readQuoted(src string, i int) (string, int) {
	quote := src[i]
	i++
	start := i
	for i < len(src) && src[i] != quote {
		i++
	}
	u := src[start:i]
	if i < len(src) {
		i++
	}
	return u, i
}

func isCSSSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// asciiLower lowercases ASCII letters only, leaving every other byte — and
// therefore the byte length and all indices — untouched.
func asciiLower(s string) string {
	i := 0
	for i < len(s) && (s[i] < 'A' || s[i] > 'Z') {
		i++
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
