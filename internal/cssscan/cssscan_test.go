package cssscan

import (
	"testing"
	"testing/quick"
)

func TestParseCountsRulesAndDeclarations(t *testing.T) {
	src := `
	body { margin: 0; padding: 0; }
	.header { color: red; }
	#main > p { font-size: 12px; line-height: 1.4; }
	`
	sheet := Parse(src)
	if sheet.Rules != 3 {
		t.Fatalf("Rules = %d, want 3", sheet.Rules)
	}
	if sheet.Declarations != 5 {
		t.Fatalf("Declarations = %d, want 5", sheet.Declarations)
	}
}

func TestNestedBlocksCountAsOneRule(t *testing.T) {
	src := `@media screen { body { margin: 0; } p { color: red; } }`
	sheet := Parse(src)
	if sheet.Rules != 1 {
		t.Fatalf("Rules = %d, want 1 (top-level @media block)", sheet.Rules)
	}
	if sheet.Declarations != 2 {
		t.Fatalf("Declarations = %d, want 2", sheet.Declarations)
	}
}

func TestURLExtraction(t *testing.T) {
	src := `
	body { background: url(bg.png); }
	.a { background-image: url("quoted.png"); }
	.b { background: url( 'spaced.png' ); }
	`
	refs, imports := ScanRefs(src)
	want := []string{"bg.png", "quoted.png", "spaced.png"}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("refs = %v, want %v", refs, want)
		}
	}
	if len(imports) != 0 {
		t.Fatalf("imports = %v, want none", imports)
	}
}

func TestImportForms(t *testing.T) {
	src := `
	@import "first.css";
	@import url(second.css);
	@import url("third.css");
	body { margin: 0; }
	`
	refs, imports := ScanRefs(src)
	wantImports := []string{"first.css", "second.css", "third.css"}
	if len(imports) != len(wantImports) {
		t.Fatalf("imports = %v, want %v", imports, wantImports)
	}
	for i := range wantImports {
		if imports[i] != wantImports[i] {
			t.Fatalf("imports = %v, want %v", imports, wantImports)
		}
	}
	if len(refs) != 3 {
		t.Fatalf("refs = %v, want 3 (imports are refs)", refs)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `/* url(hidden.png) @import "no.css" */ body { background: url(real.png); }`
	refs, imports := ScanRefs(src)
	if len(refs) != 1 || refs[0] != "real.png" {
		t.Fatalf("refs = %v, want [real.png]", refs)
	}
	if len(imports) != 0 {
		t.Fatalf("imports = %v, want none", imports)
	}
	sheet := Parse(src)
	if sheet.Rules != 1 {
		t.Fatalf("Rules = %d, want 1", sheet.Rules)
	}
}

func TestQuotedBracesNotRules(t *testing.T) {
	src := `.a { content: "{not a rule}"; }`
	sheet := Parse(src)
	if sheet.Rules != 1 {
		t.Fatalf("Rules = %d, want 1", sheet.Rules)
	}
}

func TestScanMatchesParseRefs(t *testing.T) {
	src := `@import "a.css"; .x { background: url(b.png); } /* url(c.png) */`
	refs, imports := ScanRefs(src)
	sheet := Parse(src)
	if len(refs) != len(sheet.Refs) {
		t.Fatalf("scan refs %v != parse refs %v", refs, sheet.Refs)
	}
	for i := range refs {
		if refs[i] != sheet.Refs[i] {
			t.Fatalf("scan refs %v != parse refs %v", refs, sheet.Refs)
		}
	}
	if len(imports) != len(sheet.Imports) {
		t.Fatalf("scan imports %v != parse imports %v", imports, sheet.Imports)
	}
}

func TestEmptyAndTruncatedInputs(t *testing.T) {
	for _, src := range []string{"", "/*", "url(", `@import "x`, ".a {", "}"} {
		sheet := Parse(src) // must not panic
		if sheet == nil {
			t.Fatalf("Parse(%q) returned nil", src)
		}
		ScanRefs(src)
	}
}

func TestUppercaseURLAndImport(t *testing.T) {
	refs, imports := ScanRefs(`@IMPORT "a.css"; .x { background: URL(b.png); }`)
	if len(refs) != 2 {
		t.Fatalf("refs = %v, want 2 (case-insensitive keywords)", refs)
	}
	if len(imports) != 1 {
		t.Fatalf("imports = %v, want 1", imports)
	}
}

// TestPropertyNeverPanics runs arbitrary bytes through the scanner and
// parser.
func TestPropertyNeverPanics(t *testing.T) {
	f := func(s string) bool {
		sheet := Parse(s)
		refs, imports := ScanRefs(s)
		return sheet != nil && sheet.Rules >= 0 && len(imports) <= len(refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScanParseAgree verifies the cheap scan and the full parse
// always discover the same references.
func TestPropertyScanParseAgree(t *testing.T) {
	f := func(s string) bool {
		refs, _ := ScanRefs(s)
		sheet := Parse(s)
		if len(refs) != len(sheet.Refs) {
			return false
		}
		for i := range refs {
			if refs[i] != sheet.Refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
