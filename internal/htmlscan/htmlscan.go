// Package htmlscan implements the HTML processing the browser engines need:
// a tolerant tokenizer, a DOM-tree builder, and a cheap reference scanner.
//
// The paper's two pipelines differ in *which* of these they run when
// (Section 4.1): the original browser fully parses HTML into the DOM before
// doing layout work per object, while the energy-aware browser first *scans*
// documents just to discover fetchable references (images, scripts,
// stylesheets, subdocuments) and defers everything it can. Both operations
// share one tokenizer so they always agree on what a document references.
package htmlscan

import (
	"strconv"
	"strings"
)

// RefKind classifies a discovered reference.
type RefKind int

const (
	// RefImage is an <img src> (or similar) image reference.
	RefImage RefKind = iota + 1
	// RefScript is an external <script src> reference.
	RefScript
	// RefStylesheet is a <link rel=stylesheet href> reference.
	RefStylesheet
	// RefSubdocument is an <iframe src> / <frame src> HTML reference.
	RefSubdocument
	// RefFlash is an <object data> / <embed src> multimedia reference.
	RefFlash
	// RefAnchor is an <a href> link — not fetched while loading, but counted
	// as a "secondary URL" feature (Table 1).
	RefAnchor
)

// String names the reference kind.
func (k RefKind) String() string {
	switch k {
	case RefImage:
		return "image"
	case RefScript:
		return "script"
	case RefStylesheet:
		return "stylesheet"
	case RefSubdocument:
		return "subdocument"
	case RefFlash:
		return "flash"
	case RefAnchor:
		return "anchor"
	default:
		return "unknown"
	}
}

// Fetchable reports whether the reference triggers a download during page
// load.
func (k RefKind) Fetchable() bool {
	return k == RefImage || k == RefScript || k == RefStylesheet ||
		k == RefSubdocument || k == RefFlash
}

// Ref is a reference discovered in a document.
type Ref struct {
	Kind RefKind
	URL  string
}

// Node is a DOM node. Element nodes carry Tag and Attrs; text nodes carry
// Text and an empty Tag.
type Node struct {
	Tag      string
	Attrs    map[string]string
	Text     string
	Children []*Node
}

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool {
	return n.Tag == ""
}

// Document is the result of fully parsing an HTML source.
type Document struct {
	// Root is the synthetic document root; its children are the top-level
	// nodes of the source.
	Root *Node
	// Refs lists every reference in document order.
	Refs []Ref
	// InlineScripts holds the bodies of <script> elements without src.
	InlineScripts []string
	// NodeCount is the total number of element and text nodes (excluding
	// the synthetic root).
	NodeCount int
	// TextBytes is the total length of text content.
	TextBytes int
}

// ScanResult is the output of the cheap reference scan.
type ScanResult struct {
	Refs          []Ref
	InlineScripts []string
}

// voidElements never take end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow raw text until their matching end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// EventKind classifies a streaming event.
type EventKind int

const (
	// EventText is a run of character data.
	EventText EventKind = iota + 1
	// EventStart is an element start tag.
	EventStart
	// EventEnd is an element end tag.
	EventEnd
	// EventScriptBody is the raw body of an inline <script> element.
	EventScriptBody
)

// Event is one item of the document stream, in source order. Off is the
// byte offset of the event in the source, which lets incremental consumers
// (the simulated browser pipelines) attribute parse cost to source bytes.
type Event struct {
	Kind        EventKind
	Off         int
	Tag         string
	Attrs       map[string]string
	Text        string
	Ref         *Ref
	SelfClosing bool
}

// Stream tokenizes src in document order, invoking emit for every event.
// Start-tag events carry a non-nil Ref when the element references another
// resource. Stream never fails; malformed markup degrades the way real
// browsers degrade (stray '<' becomes text, unclosed constructs are dropped
// at EOF).
func Stream(src string, emit func(Event)) {
	tokenize(src, func(tok token) {
		switch tok.kind {
		case tokenText:
			emit(Event{Kind: EventText, Off: tok.off, Text: tok.text})
		case tokenStart:
			ev := Event{
				Kind:        EventStart,
				Off:         tok.off,
				Tag:         tok.tag,
				Attrs:       tok.attrs,
				SelfClosing: tok.selfClosing,
			}
			if ref, ok := refFor(tok.tag, tok.attrs); ok {
				ev.Ref = &ref
			}
			emit(ev)
		case tokenEnd:
			emit(Event{Kind: EventEnd, Off: tok.off, Tag: tok.tag})
		case tokenRawText:
			emit(Event{Kind: EventScriptBody, Off: tok.off, Tag: tok.tag, Text: tok.text})
		}
	})
}

// Parse tokenizes src and builds the DOM tree, collecting references and
// inline scripts along the way. Parsing is tolerant: malformed markup never
// fails, it degrades the way real browsers do (stray '<' becomes text,
// unclosed tags are closed at EOF).
func Parse(src string) *Document {
	doc := &Document{Root: &Node{Tag: "#root"}}
	stack := []*Node{doc.Root}
	top := func() *Node { return stack[len(stack)-1] }

	Stream(src, func(ev Event) {
		switch ev.Kind {
		case EventText:
			if strings.TrimSpace(ev.Text) == "" {
				return
			}
			n := &Node{Text: ev.Text}
			top().Children = append(top().Children, n)
			doc.NodeCount++
			doc.TextBytes += len(ev.Text)
		case EventStart:
			n := &Node{Tag: ev.Tag, Attrs: ev.Attrs}
			top().Children = append(top().Children, n)
			doc.NodeCount++
			if ev.Ref != nil {
				doc.Refs = append(doc.Refs, *ev.Ref)
			}
			if !ev.SelfClosing && !voidElements[ev.Tag] {
				stack = append(stack, n)
			}
		case EventEnd:
			// Pop to the matching open tag if present; ignore stray ends.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == ev.Tag {
					stack = stack[:i]
					break
				}
			}
		case EventScriptBody:
			if ev.Tag == "script" {
				if strings.TrimSpace(ev.Text) != "" {
					doc.InlineScripts = append(doc.InlineScripts, ev.Text)
				}
			}
			// <style> bodies would be inline CSS; the benchmark pages use
			// external stylesheets, so style bodies only count as text.
			if ev.Tag == "style" && strings.TrimSpace(ev.Text) != "" {
				doc.TextBytes += len(ev.Text)
			}
		}
	})
	return doc
}

// Scan runs the same tokenizer but only collects references and inline
// scripts — the energy-aware browser's cheap discovery pass.
func Scan(src string) *ScanResult {
	res := &ScanResult{}
	Stream(src, func(ev Event) {
		switch ev.Kind {
		case EventStart:
			if ev.Ref != nil {
				res.Refs = append(res.Refs, *ev.Ref)
			}
		case EventScriptBody:
			if ev.Tag == "script" && strings.TrimSpace(ev.Text) != "" {
				res.InlineScripts = append(res.InlineScripts, ev.Text)
			}
		}
	})
	return res
}

// refFor returns the reference an element start tag carries, if any.
func refFor(tag string, attrs map[string]string) (Ref, bool) {
	get := func(key string) (string, bool) {
		v, ok := attrs[key]
		return v, ok && v != ""
	}
	switch tag {
	case "img":
		if u, ok := get("src"); ok {
			return Ref{Kind: RefImage, URL: u}, true
		}
	case "script":
		if u, ok := get("src"); ok {
			return Ref{Kind: RefScript, URL: u}, true
		}
	case "link":
		rel := strings.ToLower(attrs["rel"])
		if u, ok := get("href"); ok && rel == "stylesheet" {
			return Ref{Kind: RefStylesheet, URL: u}, true
		}
	case "iframe", "frame":
		if u, ok := get("src"); ok {
			return Ref{Kind: RefSubdocument, URL: u}, true
		}
	case "object":
		if u, ok := get("data"); ok {
			return Ref{Kind: RefFlash, URL: u}, true
		}
	case "embed":
		if u, ok := get("src"); ok {
			return Ref{Kind: RefFlash, URL: u}, true
		}
	case "a":
		if u, ok := get("href"); ok {
			return Ref{Kind: RefAnchor, URL: u}, true
		}
	}
	return Ref{}, false
}

type tokenKind int

const (
	tokenText tokenKind = iota + 1
	tokenStart
	tokenEnd
	tokenRawText
)

type token struct {
	kind        tokenKind
	off         int
	tag         string
	attrs       map[string]string
	text        string
	selfClosing bool
}

// tokenize walks src emitting tokens. It never fails.
func tokenize(src string, emit func(token)) {
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			emit(token{kind: tokenText, off: i, text: DecodeEntities(src[i:])})
			return
		}
		if lt > 0 {
			emit(token{kind: tokenText, off: i, text: DecodeEntities(src[i : i+lt])})
			i += lt
		}
		// src[i] == '<'
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				return
			}
			i += 4 + end + 3
			continue
		}
		if strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?") {
			// DOCTYPE / processing instruction: skip to '>'.
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				return
			}
			i += end + 1
			continue
		}
		if strings.HasPrefix(src[i:], "</") {
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				return
			}
			name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
			emit(token{kind: tokenEnd, off: i, tag: name})
			i += end + 1
			continue
		}
		// Start tag, or stray '<' treated as text.
		tok, next, ok := parseStartTag(src, i)
		if !ok {
			emit(token{kind: tokenText, off: i, text: "<"})
			i++
			continue
		}
		tok.off = i
		emit(tok)
		bodyStart := next
		i = next
		if rawTextElements[tok.tag] && !tok.selfClosing {
			body, after := rawTextUntilEnd(src, i, tok.tag)
			emit(token{kind: tokenRawText, off: bodyStart, tag: tok.tag, text: body})
			emit(token{kind: tokenEnd, off: after, tag: tok.tag})
			i = after
		}
	}
}

// parseStartTag parses a start tag beginning at src[i] == '<'. It returns
// ok=false when the text after '<' is not a tag name.
func parseStartTag(src string, i int) (token, int, bool) {
	j := i + 1
	n := len(src)
	start := j
	for j < n && isNameByte(src[j]) {
		j++
	}
	if j == start {
		return token{}, 0, false
	}
	name := strings.ToLower(src[start:j])
	attrs := make(map[string]string)
	selfClosing := false
	for j < n {
		// Skip whitespace.
		for j < n && isSpace(src[j]) {
			j++
		}
		if j >= n {
			return token{}, 0, false
		}
		if src[j] == '>' {
			j++
			break
		}
		if src[j] == '/' {
			selfClosing = true
			j++
			continue
		}
		// Attribute name.
		aStart := j
		for j < n && src[j] != '=' && src[j] != '>' && src[j] != '/' && !isSpace(src[j]) {
			j++
		}
		aName := strings.ToLower(src[aStart:j])
		for j < n && isSpace(src[j]) {
			j++
		}
		if j < n && src[j] == '=' {
			j++
			for j < n && isSpace(src[j]) {
				j++
			}
			var val string
			if j < n && (src[j] == '"' || src[j] == '\'') {
				quote := src[j]
				j++
				vStart := j
				for j < n && src[j] != quote {
					j++
				}
				val = src[vStart:j]
				if j < n {
					j++
				}
			} else {
				vStart := j
				for j < n && !isSpace(src[j]) && src[j] != '>' {
					j++
				}
				val = src[vStart:j]
			}
			if aName != "" {
				attrs[aName] = DecodeEntities(val)
			}
		} else if aName != "" {
			attrs[aName] = ""
		}
	}
	return token{kind: tokenStart, tag: name, attrs: attrs, selfClosing: selfClosing}, j, true
}

// rawTextUntilEnd returns the raw body of a script/style element and the
// index just past its end tag. End-tag matching must be case-insensitive but
// byte-position-preserving: strings.ToLower can change the byte length
// (U+0130, U+2126), so offsets found in its output would not be valid in src.
func rawTextUntilEnd(src string, i int, tag string) (string, int) {
	closer := "</" + tag
	idx := strings.Index(asciiLower(src[i:]), closer)
	if idx < 0 {
		return src[i:], len(src)
	}
	bodyEnd := i + idx
	gt := strings.IndexByte(src[bodyEnd:], '>')
	if gt < 0 {
		return src[i:bodyEnd], len(src)
	}
	return src[i:bodyEnd], bodyEnd + gt + 1
}

// asciiLower lowercases ASCII letters only, leaving every other byte — and
// therefore the byte length and all indices — untouched.
func asciiLower(s string) string {
	i := 0
	for i < len(s) && (s[i] < 'A' || s[i] > 'Z') {
		i++
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// namedEntities covers the entities that appear in real-world markup often
// enough to matter for text content and URLs.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'", "nbsp": "\u00a0",
}

// DecodeEntities resolves character references (&amp;, &#65;, &#x41;) in s.
// Unknown or malformed references pass through verbatim, as browsers do.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	i := 0
	for i < len(s) {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			sb.WriteByte(c)
			i++
			continue
		}
		body := s[i+1 : i+semi]
		if decoded, ok := decodeEntityBody(body); ok {
			sb.WriteString(decoded)
			i += semi + 1
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}

func decodeEntityBody(body string) (string, bool) {
	if body == "" {
		return "", false
	}
	if body[0] == '#' {
		num := body[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		code, err := strconv.ParseInt(num, base, 32)
		if err != nil || code <= 0 || code > 0x10FFFF {
			return "", false
		}
		return string(rune(code)), true
	}
	if v, ok := namedEntities[body]; ok {
		return v, true
	}
	return "", false
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == '_'
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}
