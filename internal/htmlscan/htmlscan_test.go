package htmlscan

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleTree(t *testing.T) {
	doc := Parse(`<html><body><p>hello</p><div><span>x</span></div></body></html>`)
	if len(doc.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(doc.Root.Children))
	}
	html := doc.Root.Children[0]
	if html.Tag != "html" {
		t.Fatalf("top tag = %q, want html", html.Tag)
	}
	body := html.Children[0]
	if body.Tag != "body" || len(body.Children) != 2 {
		t.Fatalf("body = %+v", body)
	}
	// Nodes: html, body, p, text(hello), div, span, text(x) = 7.
	if doc.NodeCount != 7 {
		t.Fatalf("NodeCount = %d, want 7", doc.NodeCount)
	}
	if doc.TextBytes != len("hello")+len("x") {
		t.Fatalf("TextBytes = %d, want 6", doc.TextBytes)
	}
}

func TestParseExtractsRefs(t *testing.T) {
	src := `<html><head>
		<link rel="stylesheet" href="main.css">
		<link rel="icon" href="favicon.ico">
		<script src="app.js"></script>
	</head><body>
		<img src="logo.png">
		<iframe src="ad.html"></iframe>
		<object data="movie.swf"></object>
		<embed src="clip.swf">
		<a href="/next">next</a>
	</body></html>`
	doc := Parse(src)
	want := []Ref{
		{RefStylesheet, "main.css"},
		{RefScript, "app.js"},
		{RefImage, "logo.png"},
		{RefSubdocument, "ad.html"},
		{RefFlash, "movie.swf"},
		{RefFlash, "clip.swf"},
		{RefAnchor, "/next"},
	}
	if len(doc.Refs) != len(want) {
		t.Fatalf("refs = %v, want %v", doc.Refs, want)
	}
	for i, r := range want {
		if doc.Refs[i] != r {
			t.Fatalf("ref[%d] = %v, want %v", i, doc.Refs[i], r)
		}
	}
}

func TestNonStylesheetLinkIgnored(t *testing.T) {
	doc := Parse(`<link rel="preload" href="x.woff">`)
	if len(doc.Refs) != 0 {
		t.Fatalf("refs = %v, want none", doc.Refs)
	}
}

func TestInlineScriptCaptured(t *testing.T) {
	doc := Parse(`<script>fetch("a.png");</script><p>text</p>`)
	if len(doc.InlineScripts) != 1 {
		t.Fatalf("inline scripts = %d, want 1", len(doc.InlineScripts))
	}
	if !strings.Contains(doc.InlineScripts[0], `fetch("a.png")`) {
		t.Fatalf("inline script = %q", doc.InlineScripts[0])
	}
	// The script body must not leak into the DOM as text: children are the
	// script element and the p element only.
	if len(doc.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (script, p)", len(doc.Root.Children))
	}
	if doc.Root.Children[0].Tag != "script" || len(doc.Root.Children[0].Children) != 0 {
		t.Fatalf("script element polluted: %+v", doc.Root.Children[0])
	}
}

func TestScriptWithSrcHasNoInlineBody(t *testing.T) {
	doc := Parse(`<script src="a.js"></script>`)
	if len(doc.InlineScripts) != 0 {
		t.Fatalf("inline scripts = %v, want none", doc.InlineScripts)
	}
	if len(doc.Refs) != 1 || doc.Refs[0].Kind != RefScript {
		t.Fatalf("refs = %v", doc.Refs)
	}
}

func TestScriptBodyWithAngleBrackets(t *testing.T) {
	doc := Parse(`<script>if (a < b) { write("<b>x</b>"); }</script>`)
	if len(doc.InlineScripts) != 1 {
		t.Fatalf("inline scripts = %d, want 1", len(doc.InlineScripts))
	}
	if !strings.Contains(doc.InlineScripts[0], "a < b") {
		t.Fatalf("script body mangled: %q", doc.InlineScripts[0])
	}
}

func TestVoidElementsDoNotNest(t *testing.T) {
	doc := Parse(`<div><img src="a.png"><br><p>t</p></div>`)
	div := doc.Root.Children[0]
	// img, br and p are siblings under div.
	if len(div.Children) != 3 {
		t.Fatalf("div children = %d, want 3", len(div.Children))
	}
}

func TestSelfClosingTag(t *testing.T) {
	doc := Parse(`<div><widget src="x"/><p>t</p></div>`)
	div := doc.Root.Children[0]
	if len(div.Children) != 2 {
		t.Fatalf("div children = %d, want 2 (self-closed widget, then p)", len(div.Children))
	}
}

func TestUnclosedTagsTolerated(t *testing.T) {
	doc := Parse(`<div><p>one<p>two`)
	if doc.NodeCount == 0 {
		t.Fatal("nothing parsed from unclosed markup")
	}
}

func TestStrayLtIsText(t *testing.T) {
	doc := Parse(`3 < 5 is true`)
	if doc.TextBytes == 0 {
		t.Fatal("stray < swallowed all text")
	}
}

func TestCommentsAndDoctypeSkipped(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><!-- a comment with <img src="no.png"> --><p>x</p>`)
	if len(doc.Refs) != 0 {
		t.Fatalf("refs from comment = %v", doc.Refs)
	}
	if doc.NodeCount != 2 { // p + text
		t.Fatalf("NodeCount = %d, want 2", doc.NodeCount)
	}
}

func TestAttributeForms(t *testing.T) {
	doc := Parse(`<img src=bare.png><img src='single.png'><img src="double.png"><input disabled>`)
	if len(doc.Refs) != 3 {
		t.Fatalf("refs = %v, want 3 images", doc.Refs)
	}
	urls := []string{doc.Refs[0].URL, doc.Refs[1].URL, doc.Refs[2].URL}
	want := []string{"bare.png", "single.png", "double.png"}
	for i := range want {
		if urls[i] != want[i] {
			t.Fatalf("urls = %v, want %v", urls, want)
		}
	}
}

func TestUppercaseTagsNormalized(t *testing.T) {
	doc := Parse(`<IMG SRC="a.png"><SCRIPT SRC="b.js"></SCRIPT>`)
	if len(doc.Refs) != 2 {
		t.Fatalf("refs = %v, want 2", doc.Refs)
	}
}

func TestScanMatchesParseRefs(t *testing.T) {
	src := `<html><head><link rel=stylesheet href=a.css><script>fetch("x");</script></head>
	<body><img src=b.png><iframe src=c.html></iframe><a href=d>d</a></body></html>`
	doc := Parse(src)
	scan := Scan(src)
	if len(scan.Refs) != len(doc.Refs) {
		t.Fatalf("scan refs %v != parse refs %v", scan.Refs, doc.Refs)
	}
	for i := range doc.Refs {
		if scan.Refs[i] != doc.Refs[i] {
			t.Fatalf("scan refs %v != parse refs %v", scan.Refs, doc.Refs)
		}
	}
	if len(scan.InlineScripts) != len(doc.InlineScripts) {
		t.Fatalf("scan scripts %d != parse scripts %d", len(scan.InlineScripts), len(doc.InlineScripts))
	}
}

func TestFetchableKinds(t *testing.T) {
	fetchable := []RefKind{RefImage, RefScript, RefStylesheet, RefSubdocument, RefFlash}
	for _, k := range fetchable {
		if !k.Fetchable() {
			t.Fatalf("%v not fetchable", k)
		}
	}
	if RefAnchor.Fetchable() {
		t.Fatal("anchor fetchable")
	}
}

func TestRefKindString(t *testing.T) {
	tests := []struct {
		give RefKind
		want string
	}{
		{RefImage, "image"},
		{RefScript, "script"},
		{RefStylesheet, "stylesheet"},
		{RefSubdocument, "subdocument"},
		{RefFlash, "flash"},
		{RefAnchor, "anchor"},
		{RefKind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Fatalf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestIsText(t *testing.T) {
	doc := Parse(`<p>hello</p>`)
	p := doc.Root.Children[0]
	if p.IsText() {
		t.Fatal("element node reported as text")
	}
	if !p.Children[0].IsText() {
		t.Fatal("text node not reported as text")
	}
}

func TestEmptyInput(t *testing.T) {
	doc := Parse("")
	if doc.NodeCount != 0 || len(doc.Refs) != 0 {
		t.Fatalf("empty parse: %+v", doc)
	}
}

// TestPropertyParseNeverPanics feeds arbitrary strings through both Parse
// and Scan — a browser-grade tokenizer must survive anything.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		scan := Scan(s)
		return doc != nil && scan != nil && doc.NodeCount >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScanAgreesWithParse checks the scan/parse ref agreement on
// arbitrary input, which the energy-aware engine's correctness rests on
// (both pipelines must fetch the same objects).
func TestPropertyScanAgreesWithParse(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		scan := Scan(s)
		if len(doc.Refs) != len(scan.Refs) {
			return false
		}
		for i := range doc.Refs {
			if doc.Refs[i] != scan.Refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedInputsTolerated(t *testing.T) {
	cases := []string{
		"<",
		"<img",
		"<img src=",
		`<img src="a`,
		"<!--",
		"<!doctype",
		"</",
		"<script>never closed",
	}
	for _, src := range cases {
		doc := Parse(src) // must not panic
		if doc == nil {
			t.Fatalf("Parse(%q) returned nil", src)
		}
	}
}
