package htmlscan

import (
	"testing"
	"testing/quick"
)

func TestDecodeEntities(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string
	}{
		{"no entities", "plain text", "plain text"},
		{"amp", "a &amp; b", "a & b"},
		{"lt gt", "&lt;tag&gt;", "<tag>"},
		{"quot apos", "&quot;x&apos;", `"x'`},
		{"nbsp", "a&nbsp;b", "a b"},
		{"decimal", "&#65;", "A"},
		{"hex", "&#x41;", "A"},
		{"hex upper", "&#X42;", "B"},
		{"unicode", "&#8364;", "€"},
		{"unknown named", "&bogus;", "&bogus;"},
		{"unterminated", "a &amp b", "a &amp b"},
		{"bare ampersand", "AT&T", "AT&T"},
		{"too long", "&waytoolongentityname;", "&waytoolongentityname;"},
		{"zero code", "&#0;", "&#0;"},
		{"overflow code", "&#99999999;", "&#99999999;"},
		{"adjacent", "&lt;&gt;", "<>"},
		{"trailing amp", "x&", "x&"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DecodeEntities(tt.give); got != tt.want {
				t.Fatalf("DecodeEntities(%q) = %q, want %q", tt.give, got, tt.want)
			}
		})
	}
}

func TestEntitiesDecodedInText(t *testing.T) {
	doc := Parse(`<p>fish &amp; chips</p>`)
	text := doc.Root.Children[0].Children[0]
	if text.Text != "fish & chips" {
		t.Fatalf("text = %q", text.Text)
	}
}

func TestEntitiesDecodedInAttributes(t *testing.T) {
	doc := Parse(`<img src="a.png?x=1&amp;y=2">`)
	if len(doc.Refs) != 1 || doc.Refs[0].URL != "a.png?x=1&y=2" {
		t.Fatalf("refs = %v", doc.Refs)
	}
}

func TestScriptBodiesNotEntityDecoded(t *testing.T) {
	// Script content is raw text: `a &amp; b` must stay verbatim.
	doc := Parse(`<script>write("a &amp; b");</script>`)
	if len(doc.InlineScripts) != 1 {
		t.Fatalf("scripts = %d", len(doc.InlineScripts))
	}
	if doc.InlineScripts[0] != `write("a &amp; b");` {
		t.Fatalf("script body = %q", doc.InlineScripts[0])
	}
}

// TestPropertyDecodeNeverPanics and never grows the string unreasonably.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		out := DecodeEntities(s)
		return len(out) <= len(s)+8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodeIdempotentOnPlain: strings without '&' pass through
// unchanged.
func TestPropertyDecodeIdempotentOnPlain(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '&' {
				clean += string(r)
			}
		}
		return DecodeEntities(clean) == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
