package htmlscan

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the tolerant tokenizer through Parse and Scan on arbitrary
// byte soup. The harness checks the package's documented contracts, not just
// absence of panics: both passes share one tokenizer, so Scan must discover
// exactly the references Parse does, and counters must stay sane.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hello</p></body></html>",
		`<img src="a.png"><script src="b.js"></script>`,
		`<link rel="stylesheet" href="c.css"><a href="/next">n</a>`,
		`<iframe src="inner.html"></iframe><object data="movie.swf"></object>`,
		"<script>var x = '<p>not a tag</p>';</script>",
		"<style>body { color: red }</style>",
		"<!-- comment --><!DOCTYPE html><?pi ?>",
		"<p>stray < bracket</p>",
		"text &amp; entities &#65; &#x41; &unknown; &#xD800;",
		"<p unclosed",
		"<SCRIPT SRC=UPPER.JS></SCRIPT>",
		"<script>no end tag",
		// Regression: Unicode case mapping changes byte length. U+0130 (İ)
		// lowercases to two runes (3 bytes for 2); enough of them pushed the
		// ToLower-derived end-tag offset past the end of the source.
		"<script>" + strings.Repeat("İ", 10) + "</script>",
		// U+2126 (Ω) lowercases to U+03C9 (2 bytes for 3), shifting offsets
		// the other way.
		"<script>" + strings.Repeat("Ω", 10) + "</script>x",
		"<style>" + strings.Repeat("İ", 10) + "</style>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil || doc.Root == nil {
			t.Fatal("Parse returned nil document")
		}
		if doc.NodeCount < 0 || doc.TextBytes < 0 {
			t.Fatalf("negative counters: nodes=%d textBytes=%d", doc.NodeCount, doc.TextBytes)
		}
		scan := Scan(src)
		if len(scan.Refs) != len(doc.Refs) {
			t.Fatalf("Scan found %d refs, Parse found %d", len(scan.Refs), len(doc.Refs))
		}
		for i := range scan.Refs {
			if scan.Refs[i] != doc.Refs[i] {
				t.Fatalf("ref %d: Scan %+v vs Parse %+v", i, scan.Refs[i], doc.Refs[i])
			}
		}
		if len(scan.InlineScripts) != len(doc.InlineScripts) {
			t.Fatalf("Scan found %d inline scripts, Parse found %d",
				len(scan.InlineScripts), len(doc.InlineScripts))
		}
	})
}

// FuzzDecodeEntities checks the entity decoder never panics and preserves
// UTF-8 validity of valid inputs.
func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{
		"", "&amp;", "&#65;", "&#x41;", "&#x110000;", "&#0;", "&#-1;",
		"&;", "&nosuch;", "plain", "&amp", "a&lt;b&gt;c", "&#xD800;",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := DecodeEntities(s)
		if utf8.ValidString(s) && !utf8.ValidString(out) {
			t.Fatalf("valid input decoded to invalid UTF-8: %q -> %q", s, out)
		}
		if !strings.ContainsRune(s, '&') && out != s {
			t.Fatalf("no references, but output changed: %q -> %q", s, out)
		}
	})
}
