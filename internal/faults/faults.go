// Package faults is a deterministic, seed-driven impairment model for the
// simulated testbed. The paper's prototype was evaluated on a live T-Mobile
// UMTS network where losses, RTT spikes, stalled transfers and flaky RIL
// responses are the norm; this package reproduces those conditions on the
// simulated radio path so that the energy-aware pipeline's behaviour under
// degradation is a measured, regression-guarded property rather than an
// untested assumption.
//
// An Injector is consulted by netsim.Link before every transfer attempt and
// by ril.Interface before every operation. All randomness comes from one
// seeded math/rand source and the simulation is single-threaded, so two runs
// with the same seed and the same workload produce byte-identical event
// sequences. A nil *Injector (or a zero Config) injects nothing: every plan
// it returns is the identity, and consumers schedule no extra events, so the
// fault-free simulation is bit-for-bit the same as before this package
// existed.
package faults

import (
	"errors"
	"math"
	"math/rand"
	"time"
)

// Config holds the impairment rates and magnitudes. The zero value disables
// every impairment.
type Config struct {
	// Seed drives the single random source; runs with equal seeds and equal
	// workloads are byte-identical.
	Seed int64

	// LossRate is the packet-loss probability on the radio path, in [0, 1).
	// Loss degrades throughput (TCP-style congestion backoff) and occasionally
	// doubles a request's RTT (retransmitted handshake).
	LossRate float64
	// RTTJitter is the maximum extra per-request latency; each transfer
	// attempt draws a uniform jitter in [0, RTTJitter].
	RTTJitter time.Duration
	// StallRate is the per-attempt probability that a transfer stalls
	// mid-flight (signal fade / blackout window).
	StallRate float64
	// StallMin and StallMax bound the uniform stall duration.
	StallMin, StallMax time.Duration
	// FailRate is the per-attempt probability that a transfer dies outright
	// (connection reset) partway through.
	FailRate float64
	// FACHCongestionRate is the probability that a transfer riding the shared
	// FACH channels hits cell congestion and is delayed.
	FACHCongestionRate float64
	// FACHCongestionDelay is the maximum uniform extra delay of a congested
	// FACH transfer.
	FACHCongestionDelay time.Duration

	// RILTimeoutRate is the probability that a RIL operation's response is
	// lost between the daemon and the application (the request may still have
	// executed — the caller cannot tell, exactly as on real firmware).
	RILTimeoutRate float64
	// RILErrorRate is the probability that the RIL daemon rejects an
	// operation with an error.
	RILErrorRate float64
	// RILExtraLatency is the maximum uniform extra hop latency of a RIL
	// round trip (a loaded framework or daemon).
	RILExtraLatency time.Duration
}

// Validate checks rates and magnitudes.
func (c Config) Validate() error {
	rates := []float64{c.LossRate, c.StallRate, c.FailRate,
		c.FACHCongestionRate, c.RILTimeoutRate, c.RILErrorRate}
	for _, r := range rates {
		if r < 0 || r >= 1 || math.IsNaN(r) {
			return errors.New("faults: rates must be in [0, 1)")
		}
	}
	if c.RTTJitter < 0 || c.StallMin < 0 || c.FACHCongestionDelay < 0 || c.RILExtraLatency < 0 {
		return errors.New("faults: durations must be non-negative")
	}
	if c.StallMax < c.StallMin {
		return errors.New("faults: StallMax below StallMin")
	}
	return nil
}

// enabled reports whether any impairment can fire.
func (c Config) enabled() bool {
	return c.LossRate > 0 || c.RTTJitter > 0 || c.StallRate > 0 ||
		c.FailRate > 0 || c.FACHCongestionRate > 0 ||
		c.RILTimeoutRate > 0 || c.RILErrorRate > 0 || c.RILExtraLatency > 0
}

// TransferPlan is the impairment drawn for one transfer attempt. The
// identity plan (ThroughputFactor 1, everything else zero) leaves the
// attempt untouched.
type TransferPlan struct {
	// ThroughputFactor scales the link bandwidth for this attempt, in (0, 1].
	ThroughputFactor float64
	// ExtraRTT is added to the per-request overhead.
	ExtraRTT time.Duration
	// Stall is a mid-transfer blackout inserted into the attempt; the link
	// may ride it out or abort and retry, depending on its length.
	Stall time.Duration
	// Fail kills the attempt after FailFrac of its transfer time.
	Fail bool
	// FailFrac is the fraction of the attempt completed before failure.
	FailFrac float64
}

// RILPlan is the impairment drawn for one RIL operation.
type RILPlan struct {
	// DropResponse loses the response on its way back: the operation may
	// have executed, but the caller never hears.
	DropResponse bool
	// Error makes the daemon reject the operation.
	Error bool
	// ExtraLatency is added to the message round trip.
	ExtraLatency time.Duration
}

// Stats counts injected impairments, for reports and tests.
type Stats struct {
	Transfers  int // transfer attempts planned
	Degraded   int // attempts with reduced throughput or extra RTT
	Stalls     int // attempts with a blackout window
	Fails      int // attempts killed outright
	FACHDelays int // FACH attempts hit by congestion
	RILOps     int // RIL operations planned
	RILDrops   int // responses lost
	RILErrors  int // operations rejected
}

// Injector draws impairments from one seeded source. Construct with New;
// a nil Injector is valid and injects nothing.
type Injector struct {
	cfg     Config
	rng     *rand.Rand
	enabled bool
	stats   Stats
}

// seedSalt decorrelates the injector's stream from other consumers of the
// same experiment seed.
const seedSalt = 0xfa_017_5eed

// New creates an injector. A zero Config yields an injector that never
// impairs anything (identical to using nil).
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ seedSalt)),
		enabled: cfg.enabled(),
	}, nil
}

// Reset rewinds the injector to its freshly constructed state: the random
// source is re-seeded and the impairment counters cleared, so a pooled
// session replays the exact fault sequence a fresh one would draw.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.rng.Seed(in.cfg.Seed ^ seedSalt)
	in.stats = Stats{}
}

// Enabled reports whether any impairment can fire. A nil injector is
// disabled.
func (in *Injector) Enabled() bool {
	return in != nil && in.enabled
}

// Config returns the injector's configuration (zero for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Stats returns the impairment counters so far (zero for nil).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// PlanTransfer draws the impairment for one transfer attempt. overFACH marks
// a transfer riding the shared channels (subject to congestion instead of
// the DCH loss model).
func (in *Injector) PlanTransfer(uplink, overFACH bool) TransferPlan {
	plan := TransferPlan{ThroughputFactor: 1}
	if !in.Enabled() {
		return plan
	}
	in.stats.Transfers++

	if p := in.cfg.LossRate; p > 0 {
		// Mathis-style steady-state degradation: goodput falls off with the
		// square root of the loss rate, jittered ±20 % per attempt.
		mean := (1 - p) / (1 + 3*math.Sqrt(p))
		jitter := 0.8 + 0.4*in.rng.Float64()
		plan.ThroughputFactor = clamp01(mean * jitter)
		// A lost handshake packet retransmits after a full extra round trip.
		if in.rng.Float64() < p {
			plan.ExtraRTT += 2 * baseRTTEstimate
		}
	}
	if in.cfg.RTTJitter > 0 {
		plan.ExtraRTT += time.Duration(in.rng.Int63n(int64(in.cfg.RTTJitter) + 1))
	}
	if overFACH {
		if in.cfg.FACHCongestionRate > 0 && in.rng.Float64() < in.cfg.FACHCongestionRate {
			if in.cfg.FACHCongestionDelay > 0 {
				plan.ExtraRTT += time.Duration(in.rng.Int63n(int64(in.cfg.FACHCongestionDelay) + 1))
			}
			in.stats.FACHDelays++
		}
	}
	if in.cfg.StallRate > 0 && in.rng.Float64() < in.cfg.StallRate {
		plan.Stall = in.cfg.StallMin
		if span := in.cfg.StallMax - in.cfg.StallMin; span > 0 {
			plan.Stall += time.Duration(in.rng.Int63n(int64(span) + 1))
		}
		if plan.Stall > 0 {
			in.stats.Stalls++
		}
	}
	if in.cfg.FailRate > 0 && in.rng.Float64() < in.cfg.FailRate {
		plan.Fail = true
		// The connection dies somewhere in the middle of the attempt, never
		// instantly and never at the very last byte.
		plan.FailFrac = 0.1 + 0.8*in.rng.Float64()
		in.stats.Fails++
	}
	if plan.ThroughputFactor < 1 || plan.ExtraRTT > 0 {
		in.stats.Degraded++
	}
	_ = uplink // the loss model is symmetric; the parameter documents intent
	return plan
}

// PlanOp draws the impairment for one RIL operation.
func (in *Injector) PlanOp() RILPlan {
	var plan RILPlan
	if !in.Enabled() {
		return plan
	}
	in.stats.RILOps++
	if in.cfg.RILTimeoutRate > 0 && in.rng.Float64() < in.cfg.RILTimeoutRate {
		plan.DropResponse = true
		in.stats.RILDrops++
	}
	if in.cfg.RILErrorRate > 0 && in.rng.Float64() < in.cfg.RILErrorRate {
		plan.Error = true
		in.stats.RILErrors++
	}
	if in.cfg.RILExtraLatency > 0 {
		plan.ExtraLatency = time.Duration(in.rng.Int63n(int64(in.cfg.RILExtraLatency) + 1))
	}
	return plan
}

// baseRTTEstimate approximates one radio-path round trip for the handshake
// retransmission penalty (netsim's calibrated default RTT).
const baseRTTEstimate = 300 * time.Millisecond

func clamp01(v float64) float64 {
	switch {
	case v < 0.01:
		return 0.01
	case v > 1:
		return 1
	}
	return v
}
