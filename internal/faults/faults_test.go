package faults

import (
	"fmt"
	"testing"
	"time"
)

func hostileConfig() Config {
	return Config{
		Seed:                7,
		LossRate:            0.3,
		RTTJitter:           500 * time.Millisecond,
		StallRate:           0.5,
		StallMin:            time.Second,
		StallMax:            10 * time.Second,
		FailRate:            0.4,
		FACHCongestionRate:  0.5,
		FACHCongestionDelay: 2 * time.Second,
		RILTimeoutRate:      0.5,
		RILErrorRate:        0.3,
		RILExtraLatency:     100 * time.Millisecond,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative loss", func(c *Config) { c.LossRate = -0.1 }},
		{"loss of 1", func(c *Config) { c.LossRate = 1 }},
		{"negative fail", func(c *Config) { c.FailRate = -1 }},
		{"ril timeout of 1", func(c *Config) { c.RILTimeoutRate = 1 }},
		{"negative jitter", func(c *Config) { c.RTTJitter = -time.Second }},
		{"stall bounds inverted", func(c *Config) { c.StallMin = 2 * time.Second; c.StallMax = time.Second }},
		{"negative ril latency", func(c *Config) { c.RILExtraLatency = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := hostileConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted a bad config")
			}
			if _, err := New(cfg); err == nil {
				t.Fatal("New accepted a bad config")
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestNilAndZeroInjectorsAreIdentity(t *testing.T) {
	var nilInj *Injector
	zero, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatalf("New(zero): %v", err)
	}
	for name, in := range map[string]*Injector{"nil": nilInj, "zero": zero} {
		if in.Enabled() {
			t.Fatalf("%s injector reports enabled", name)
		}
		for i := 0; i < 10; i++ {
			plan := in.PlanTransfer(i%2 == 0, i%3 == 0)
			if plan.ThroughputFactor != 1 || plan.ExtraRTT != 0 || plan.Stall != 0 || plan.Fail {
				t.Fatalf("%s injector returned non-identity transfer plan %+v", name, plan)
			}
			if op := in.PlanOp(); op != (RILPlan{}) {
				t.Fatalf("%s injector returned non-identity RIL plan %+v", name, op)
			}
		}
		if in.Stats() != (Stats{}) {
			t.Fatalf("%s injector counted impairments: %+v", name, in.Stats())
		}
	}
}

func TestDeterministicPlans(t *testing.T) {
	a, err := New(hostileConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(hostileConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 500; i++ {
		fach := i%4 == 0
		pa, pb := a.PlanTransfer(false, fach), b.PlanTransfer(false, fach)
		if pa != pb {
			t.Fatalf("transfer plan %d diverged: %+v vs %+v", i, pa, pb)
		}
		oa, ob := a.PlanOp(), b.PlanOp()
		if oa != ob {
			t.Fatalf("RIL plan %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestPlanBoundsAndStats(t *testing.T) {
	cfg := hostileConfig()
	in, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		plan := in.PlanTransfer(false, i%2 == 0)
		if plan.ThroughputFactor <= 0 || plan.ThroughputFactor > 1 {
			t.Fatalf("throughput factor %v out of (0, 1]", plan.ThroughputFactor)
		}
		// 30% loss must actually degrade throughput, never improve it.
		if plan.ThroughputFactor > 0.9 {
			t.Fatalf("throughput factor %v too high for 30%% loss", plan.ThroughputFactor)
		}
		if plan.Stall != 0 && (plan.Stall < cfg.StallMin || plan.Stall > cfg.StallMax) {
			t.Fatalf("stall %v outside [%v, %v]", plan.Stall, cfg.StallMin, cfg.StallMax)
		}
		if plan.Fail && (plan.FailFrac < 0.1 || plan.FailFrac > 0.9) {
			t.Fatalf("fail fraction %v outside [0.1, 0.9]", plan.FailFrac)
		}
		in.PlanOp()
	}
	st := in.Stats()
	if st.Transfers != n || st.RILOps != n {
		t.Fatalf("plan counters off: %+v", st)
	}
	// With rates this high, every impairment class must have fired.
	if st.Stalls == 0 || st.Fails == 0 || st.Degraded == 0 || st.FACHDelays == 0 {
		t.Fatalf("transfer impairments never fired: %+v", st)
	}
	if st.RILDrops == 0 || st.RILErrors == 0 {
		t.Fatalf("RIL impairments never fired: %+v", st)
	}
	// And roughly at the configured frequency (very loose bounds; the test
	// guards against rates being ignored, not against sampling noise).
	if frac := float64(st.Fails) / n; frac < 0.2 || frac > 0.6 {
		t.Fatalf("fail rate %v far from configured 0.4", frac)
	}
	if frac := float64(st.RILDrops) / n; frac < 0.3 || frac > 0.7 {
		t.Fatalf("RIL drop rate %v far from configured 0.5", frac)
	}
}

// TestZeroDurationOutage pins the degenerate stall window: StallRate fires
// but StallMin = StallMax = 0, so the drawn outage has zero duration. Such a
// plan must be indistinguishable from no stall at all — no Stall in the plan
// and, crucially, no phantom increment of the Stalls counter.
func TestZeroDurationOutage(t *testing.T) {
	in, err := New(Config{Seed: 7, StallRate: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		plan := in.PlanTransfer(false, false)
		if plan.Stall != 0 {
			t.Fatalf("attempt %d: zero-duration outage produced stall %v", i, plan.Stall)
		}
	}
	st := in.Stats()
	if st.Transfers != 500 {
		t.Fatalf("transfers %d, want 500", st.Transfers)
	}
	if st.Stalls != 0 {
		t.Fatalf("zero-duration outages counted as %d stalls", st.Stalls)
	}

	// The same seed with a real window stalls on the same draws: the
	// zero-width window changes magnitudes, never the decision stream.
	wide, err := New(Config{Seed: 7, StallRate: 0.99, StallMin: time.Second, StallMax: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		plan := wide.PlanTransfer(false, false)
		if plan.Stall != 0 && plan.Stall != time.Second {
			t.Fatalf("attempt %d: stall %v outside the fixed window", i, plan.Stall)
		}
	}
	if got := wide.Stats().Stalls; got == 0 {
		t.Fatal("widened window never stalled; the rate draw is broken")
	}
}

// TestRetryBudgetExhaustionOrdering emulates the netsim-style retry loop: a
// transfer retries until it draws a non-failing plan or exhausts its budget.
// The sequence of per-attempt verdicts must be a deterministic function of
// the seed alone — and reading Stats/Config/Enabled between attempts (as the
// link and reports do) must not consume randomness or shift the stream.
func TestRetryBudgetExhaustionOrdering(t *testing.T) {
	cfg := Config{Seed: 99, FailRate: 0.7, StallRate: 0.3, StallMin: time.Second, StallMax: 2 * time.Second}
	const budget = 4 // attempts per transfer, as a retrying link would bound

	runTransfers := func(in *Injector, observe bool) []string {
		var log []string
		for transfer := 0; transfer < 50; transfer++ {
			verdict := "exhausted"
			for attempt := 0; attempt < budget; attempt++ {
				if observe {
					// Accessors between attempts must be draw-free.
					_ = in.Stats()
					_ = in.Config()
					_ = in.Enabled()
				}
				plan := in.PlanTransfer(false, false)
				if !plan.Fail {
					verdict = fmt.Sprintf("ok@%d stall=%v", attempt, plan.Stall)
					break
				}
			}
			log = append(log, verdict)
		}
		return log
	}

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := runTransfers(a, false)
	observed := runTransfers(b, true)
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("transfer %d: verdict %q with accessors vs %q without — accessors consumed randomness",
				i, observed[i], plain[i])
		}
	}
	var exhausted int
	for _, v := range plain {
		if v == "exhausted" {
			exhausted++
		}
	}
	if exhausted == 0 || exhausted == len(plain) {
		t.Fatalf("%d/%d transfers exhausted their budget; the mix should include both outcomes", exhausted, len(plain))
	}
	// And the budget accounting matches the injector's own counters.
	if st := a.Stats(); st.Transfers < 50 || st.Fails == 0 {
		t.Fatalf("stats after retry loop: %+v", st)
	}
}

// TestResetMidOutage rewinds the injector halfway through a fault sequence —
// including right after a stall verdict, the worst spot — and requires the
// replay to match a fresh injector draw for draw.
func TestResetMidOutage(t *testing.T) {
	cfg := Config{
		Seed:      20130709,
		LossRate:  0.2,
		StallRate: 0.5,
		StallMin:  500 * time.Millisecond,
		StallMax:  3 * time.Second,
		FailRate:  0.2,
	}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Walk until mid-outage: stop immediately after a stall fires.
	stallAt := -1
	for i := 0; i < 1000; i++ {
		if in.PlanTransfer(false, false).Stall > 0 {
			stallAt = i
			break
		}
	}
	if stallAt < 0 {
		t.Fatal("no stall in 1000 draws at rate 0.5")
	}
	if in.Stats().Stalls != 1 {
		t.Fatalf("stalls %d, want 1", in.Stats().Stalls)
	}

	in.Reset()
	if in.Stats() != (Stats{}) {
		t.Fatalf("stats survived Reset: %+v", in.Stats())
	}

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got := in.PlanTransfer(false, i%3 == 0)
		want := fresh.PlanTransfer(false, i%3 == 0)
		if got != want {
			t.Fatalf("draw %d after mid-outage Reset: %+v, fresh %+v", i, got, want)
		}
		gotOp, wantOp := in.PlanOp(), fresh.PlanOp()
		if gotOp != wantOp {
			t.Fatalf("RIL draw %d after mid-outage Reset: %+v, fresh %+v", i, gotOp, wantOp)
		}
	}
	if in.Stats() != fresh.Stats() {
		t.Fatalf("stats diverged after Reset: %+v vs %+v", in.Stats(), fresh.Stats())
	}
}
