package netsim

import (
	"testing"
	"time"

	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

func newTestLink(t *testing.T) (*simtime.Clock, *rrc.Machine, *Link) {
	t.Helper()
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	link, err := NewLink(clock, radio, DefaultConfig())
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	return clock, radio, link
}

func TestNewLinkValidation(t *testing.T) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if _, err := NewLink(nil, radio, DefaultConfig()); err == nil {
		t.Fatal("NewLink(nil clock) succeeded")
	}
	if _, err := NewLink(clock, nil, DefaultConfig()); err == nil {
		t.Fatal("NewLink(nil radio) succeeded")
	}
	bad := DefaultConfig()
	bad.DCHDownKBps = 0
	if _, err := NewLink(clock, radio, bad); err == nil {
		t.Fatal("NewLink(bad config) succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero DCH bw", func(c *Config) { c.DCHDownKBps = 0 }},
		{"zero FACH bw", func(c *Config) { c.FACHDownKBps = 0 }},
		{"negative FACH max", func(c *Config) { c.FACHMaxBytes = -1 }},
		{"negative RTT", func(c *Config) { c.RTT = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate succeeded, want error")
			}
		})
	}
}

func TestFetchRejectsNonPositiveSize(t *testing.T) {
	_, _, link := newTestLink(t)
	if err := link.Fetch("x", 0, nil); err == nil {
		t.Fatal("Fetch(0 bytes) succeeded")
	}
	if err := link.Fetch("x", -5, nil); err == nil {
		t.Fatal("Fetch(-5 bytes) succeeded")
	}
}

func TestSingleFetchTiming(t *testing.T) {
	clock, radio, link := newTestLink(t)
	var doneAt time.Duration
	if err := link.Fetch("obj", 96*1024, func() { doneAt = clock.Now() }); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.Run()
	// Promotion (1.75 s) + RTT (0.12 s) + 96 KB at 96 KB/s (1 s).
	want := radio.Config().PromoIdleToDCH + link.Config().RTT + time.Second
	if doneAt != want {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	if link.BytesDown() != 96*1024 {
		t.Fatalf("BytesDown = %d, want %d", link.BytesDown(), 96*1024)
	}
}

func TestBulkDownloadCalibration(t *testing.T) {
	// The paper's Fig. 4: a raw socket download of 760 KB takes ~8 s.
	clock, _, link := newTestLink(t)
	var doneAt time.Duration
	if err := link.Fetch("bulk", 760*1024, func() { doneAt = clock.Now() }); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.Run()
	secs := doneAt.Seconds()
	if secs < 7 || secs > 11 {
		t.Fatalf("760 KB bulk download took %.2f s, want ~8-10 s (incl. promotion)", secs)
	}
}

func TestFIFOOrdering(t *testing.T) {
	clock, _, link := newTestLink(t)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		if err := link.Fetch(name, 10*1024, func() { order = append(order, name) }); err != nil {
			t.Fatalf("Fetch: %v", err)
		}
	}
	clock.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("completion order = %v, want [a b c]", order)
	}
}

func TestBackToBackTransfersKeepDCH(t *testing.T) {
	clock, radio, link := newTestLink(t)
	for i := 0; i < 5; i++ {
		if err := link.Fetch("obj", 48*1024, nil); err != nil {
			t.Fatalf("Fetch: %v", err)
		}
	}
	// After promotion plus half the transfers, radio must still be DCH and
	// never demote mid-queue.
	clock.RunUntil(radio.Config().PromoIdleToDCH + 1500*time.Millisecond)
	if radio.State() != rrc.StateDCH {
		t.Fatalf("State = %v mid-queue, want DCH", radio.State())
	}
	clock.Run()
	if got := link.BytesDown(); got != 5*48*1024 {
		t.Fatalf("BytesDown = %d, want %d", got, 5*48*1024)
	}
}

func TestRecordsAndWindow(t *testing.T) {
	clock, _, link := newTestLink(t)
	if _, _, ok := link.TransmissionWindow(); ok {
		t.Fatal("TransmissionWindow ok before any transfer")
	}
	for i := 0; i < 3; i++ {
		if err := link.Fetch("obj", 96*1024, nil); err != nil {
			t.Fatalf("Fetch: %v", err)
		}
	}
	clock.Run()
	recs := link.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	start, end, ok := link.TransmissionWindow()
	if !ok {
		t.Fatal("TransmissionWindow not ok")
	}
	if start != recs[0].Start || end != recs[2].End {
		t.Fatalf("window [%v,%v], want [%v,%v]", start, end, recs[0].Start, recs[2].End)
	}
	for _, r := range recs {
		if !r.OverDCH {
			t.Fatalf("record %+v not over DCH", r)
		}
		if r.End <= r.Start {
			t.Fatalf("record %+v has non-positive duration", r)
		}
	}
}

func TestSmallTransferOverFACH(t *testing.T) {
	clock, radio, link := newTestLink(t)
	// Get to FACH first: one transfer, then wait T1.
	if err := link.Fetch("warm", 10*1024, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.Run() // radio idles out eventually; rerun a fresh scenario instead
	// Radio back to IDLE. Promote and demote to FACH:
	if err := link.Fetch("warm2", 10*1024, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.RunUntil(clock.Now() + radio.Config().PromoIdleToDCH + time.Second + radio.Config().T1)
	if radio.State() != rrc.StateFACH {
		t.Fatalf("State = %v, want FACH", radio.State())
	}
	// 100-byte transfer stays on FACH.
	if err := link.Fetch("tiny", 100, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.RunFor(time.Second)
	if radio.State() != rrc.StateFACH {
		t.Fatalf("State = %v during tiny transfer, want FACH", radio.State())
	}
	clock.Run()
	recs := link.Records()
	last := recs[len(recs)-1]
	if last.OverDCH {
		t.Fatal("tiny transfer went over DCH")
	}
}

func TestDrainedHook(t *testing.T) {
	clock, _, link := newTestLink(t)
	drained := 0
	link.SetDrainedHook(func() { drained++ })
	if err := link.Fetch("a", 10*1024, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if err := link.Fetch("b", 10*1024, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.Run()
	if drained != 1 {
		t.Fatalf("drained hook ran %d times, want 1", drained)
	}
	if err := link.Fetch("c", 10*1024, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.Run()
	if drained != 2 {
		t.Fatalf("drained hook ran %d times after refill, want 2", drained)
	}
}

func TestQueueLenAndBusy(t *testing.T) {
	clock, _, link := newTestLink(t)
	if link.Busy() {
		t.Fatal("fresh link busy")
	}
	for i := 0; i < 3; i++ {
		if err := link.Fetch("obj", 10*1024, nil); err != nil {
			t.Fatalf("Fetch: %v", err)
		}
	}
	if !link.Busy() {
		t.Fatal("link not busy with queued work")
	}
	if got := link.QueueLen(); got != 2 {
		t.Fatalf("QueueLen = %d, want 2", got)
	}
	clock.Run()
	if link.Busy() || link.QueueLen() != 0 {
		t.Fatalf("link not drained: busy=%v queue=%d", link.Busy(), link.QueueLen())
	}
}

func TestUplinkSend(t *testing.T) {
	clock, radio, link := newTestLink(t)
	var doneAt time.Duration
	if err := link.Send("up", 32*1024, func() { doneAt = clock.Now() }); err != nil {
		t.Fatalf("Send: %v", err)
	}
	clock.Run()
	// Promotion + RTT + 32 KB at the slower uplink rate (32 KB/s → 1 s).
	want := radio.Config().PromoIdleToDCH + link.Config().RTT + time.Second
	if doneAt != want {
		t.Fatalf("uplink done at %v, want %v", doneAt, want)
	}
	recs := link.Records()
	if len(recs) != 1 || !recs[0].Uplink {
		t.Fatalf("records = %+v, want one uplink record", recs)
	}
}

func TestUplinkSlowerThanDownlink(t *testing.T) {
	clock, _, link := newTestLink(t)
	var upEnd, downEnd time.Duration
	if err := link.Send("up", 64*1024, func() { upEnd = clock.Now() }); err != nil {
		t.Fatalf("Send: %v", err)
	}
	clock.Run()
	clock2, _, link2 := newTestLink(t)
	if err := link2.Fetch("down", 64*1024, func() { downEnd = clock2.Now() }); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock2.Run()
	if upEnd <= downEnd {
		t.Fatalf("uplink (%v) not slower than downlink (%v)", upEnd, downEnd)
	}
}

func TestSendRejectsNonPositive(t *testing.T) {
	_, _, link := newTestLink(t)
	if err := link.Send("x", 0, nil); err == nil {
		t.Fatal("Send(0) accepted")
	}
}
