package netsim

import (
	"errors"
	"testing"
	"time"

	"eabrowse/internal/faults"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// newFaultyLink builds a link with the given injector attached.
func newFaultyLink(t *testing.T, cfg faults.Config) (*simtime.Clock, *rrc.Machine, *Link) {
	t.Helper()
	clock, radio, link := newTestLink(t)
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	link.SetFaults(in)
	return clock, radio, link
}

func TestZeroFaultInjectorKeepsTimingIdentical(t *testing.T) {
	_, _, plain := newTestLink(t)
	var plainDone time.Duration
	if err := plain.Fetch("obj", 96*1024, nil); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock2, _, faulty := newFaultyLink(t, faults.Config{Seed: 99})
	if err := faulty.Fetch("obj", 96*1024, func() { plainDone = clock2.Now() }); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	// Drive both simulations and compare the records.
	clockOf := func(l *Link) *simtime.Clock { return l.clock }
	clockOf(plain).Run()
	clock2.Run()
	pr, fr := plain.Records(), faulty.Records()
	if len(pr) != 1 || len(fr) != 1 {
		t.Fatalf("records: %d vs %d", len(pr), len(fr))
	}
	if pr[0] != fr[0] {
		t.Fatalf("zero-fault injector changed the transfer record: %+v vs %+v", pr[0], fr[0])
	}
	if fr[0].End != plainDone {
		t.Fatalf("done callback at %v, record end %v", plainDone, fr[0].End)
	}
	if faulty.Retries() != 0 || faulty.FailedTransfers() != 0 {
		t.Fatal("zero-fault injector produced retries or failures")
	}
}

// TestSendRidesOutShortStall: a stall below the watchdog threshold lengthens
// the uplink transfer but does not abort it.
func TestSendRidesOutShortStall(t *testing.T) {
	stall := 2 * time.Second
	clock, _, link := newFaultyLink(t, faults.Config{
		Seed:      3,
		StallRate: 0.999,
		StallMin:  stall,
		StallMax:  stall,
	})
	var doneAt time.Duration
	if err := link.Send("up", 32*1024, func() { doneAt = clock.Now() }); err != nil {
		t.Fatalf("Send: %v", err)
	}
	clock.Run()
	recs := link.Records()
	if len(recs) != 1 || recs[0].Failed || !recs[0].Uplink {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if recs[0].Attempts != 1 {
		t.Fatalf("short stall should not retry, got %d attempts", recs[0].Attempts)
	}
	// Fault-free: promo 1.75 s + RTT 0.3 s + 32 KB at 32 KB/s = 1 s; the
	// stall adds its full length on top.
	faultFree := 1750*time.Millisecond + 300*time.Millisecond + time.Second
	if doneAt < faultFree+stall {
		t.Fatalf("done at %v, want at least %v", doneAt, faultFree+stall)
	}
}

// TestSendAbortsLongStallAndFails: every attempt stalls beyond the watchdog,
// so the link aborts each one and finally reports failure through the
// error-aware callback — and the drained hook still fires.
func TestSendAbortsLongStallAndFails(t *testing.T) {
	clock, radio, link := newFaultyLink(t, faults.Config{
		Seed:      5,
		StallRate: 0.999,
		StallMin:  2 * StallAbortTimeout,
		StallMax:  2 * StallAbortTimeout,
	})
	drained := 0
	link.SetDrainedHook(func() { drained++ })
	var got error
	settled := 0
	if err := link.SendResult("up", 32*1024, func(err error) { settled++; got = err }); err != nil {
		t.Fatalf("SendResult: %v", err)
	}
	clock.Run()
	if settled != 1 {
		t.Fatalf("completion callback ran %d times, want 1", settled)
	}
	if !errors.Is(got, ErrTransferFailed) {
		t.Fatalf("error %v does not wrap ErrTransferFailed", got)
	}
	if link.Retries() != DefaultTransferAttempts-1 {
		t.Fatalf("retries = %d, want %d", link.Retries(), DefaultTransferAttempts-1)
	}
	if link.FailedTransfers() != 1 {
		t.Fatalf("failed transfers = %d, want 1", link.FailedTransfers())
	}
	recs := link.Records()
	if len(recs) != 1 || !recs[0].Failed || recs[0].Attempts != DefaultTransferAttempts {
		t.Fatalf("unexpected record: %+v", recs)
	}
	if link.BytesDown() != 0 {
		t.Fatalf("failed transfer counted %d bytes down", link.BytesDown())
	}
	if drained == 0 {
		t.Fatal("drained hook never fired after the failure")
	}
	if link.Busy() || link.QueueLen() != 0 {
		t.Fatal("link wedged after failed transfer")
	}
	// The radio must not be stuck transferring; its timers demote it.
	if radio.Transferring() {
		t.Fatal("radio still marked transferring after abort")
	}
}

// TestDrainedHookUnderInjectedFailures: a mixed queue of downlink and uplink
// transfers under heavy hard-failure injection still drains exactly, every
// callback fires exactly once, and the byte counter reflects successes only.
func TestDrainedHookUnderInjectedFailures(t *testing.T) {
	clock, _, link := newFaultyLink(t, faults.Config{Seed: 11, FailRate: 0.5})
	drained := 0
	link.SetDrainedHook(func() { drained++ })
	const n = 12
	size := 24 * 1024
	completions := 0
	failures := 0
	for i := 0; i < n; i++ {
		cb := func(err error) {
			completions++
			if err != nil {
				failures++
			}
		}
		var err error
		if i%3 == 0 {
			err = link.SendResult("up", size, cb)
		} else {
			err = link.FetchResult("down", size, cb)
		}
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	clock.Run()
	if completions != n {
		t.Fatalf("completions = %d, want %d", completions, n)
	}
	if failures != link.FailedTransfers() {
		t.Fatalf("callback failures %d != link failed transfers %d", failures, link.FailedTransfers())
	}
	// FailRate 0.5 over 12 transfers × 3 attempts: both outcomes must occur.
	if failures == 0 || failures == n {
		t.Fatalf("degenerate failure count %d of %d (seed drift?)", failures, n)
	}
	if want := (n - failures) * size; link.BytesDown() != want {
		t.Fatalf("bytes down = %d, want %d (successes only)", link.BytesDown(), want)
	}
	if drained == 0 || link.Busy() || link.QueueLen() != 0 {
		t.Fatalf("link not drained: hook=%d busy=%v queue=%d", drained, link.Busy(), link.QueueLen())
	}
	recs := link.Records()
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
	retried := 0
	for _, r := range recs {
		if r.Attempts > 1 {
			retried++
		}
		if r.Failed && r.Attempts != DefaultTransferAttempts {
			t.Fatalf("failed record with %d attempts: %+v", r.Attempts, r)
		}
	}
	if retried == 0 {
		t.Fatal("no transfer was ever retried at 50% fail rate")
	}
}

// TestEndTransferErrorPropagates is the regression test for the old
// fail-safe panic: when the radio's transfer bookkeeping is yanked away
// mid-flight (as an injected demotion can do), the link must propagate the
// problem into a retry instead of panicking the simulation.
func TestEndTransferErrorPropagates(t *testing.T) {
	clock, radio, link := newTestLink(t)
	var got error
	settled := 0
	if err := link.FetchResult("obj", 48*1024, func(err error) { settled++; got = err }); err != nil {
		t.Fatalf("FetchResult: %v", err)
	}
	for !radio.Transferring() {
		if !clock.Step() {
			t.Fatal("transfer never started")
		}
	}
	// Sabotage: end the transfer behind the link's back, so the link's own
	// EndTransfer at completion time fails.
	if err := radio.EndTransfer(); err != nil {
		t.Fatalf("sabotage EndTransfer: %v", err)
	}
	clock.Run()
	if settled != 1 {
		t.Fatalf("completion callback ran %d times, want 1", settled)
	}
	if got != nil {
		t.Fatalf("retry after EndTransfer error should succeed, got %v", got)
	}
	recs := link.Records()
	if len(recs) != 1 || recs[0].Attempts != 2 || recs[0].Failed {
		t.Fatalf("unexpected record after sabotage: %+v", recs)
	}
	if link.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", link.Retries())
	}
}
