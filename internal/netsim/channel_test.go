package netsim

import (
	"reflect"
	"testing"
	"time"

	"eabrowse/internal/channel"
	"eabrowse/internal/faults"
	"eabrowse/internal/obs"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

func constantChannel(t *testing.T, cond channel.Conditions) *channel.Schedule {
	t.Helper()
	s, err := channel.Constant("const", cond)
	if err != nil {
		t.Fatalf("channel.Constant: %v", err)
	}
	return s
}

// TestChannelScalesTransferTime pins the shaped DCH arithmetic: promo 1.75 s
// + RTT 0.3 s + payload, with the payload stretched by the bandwidth factor
// and the segment's extra RTT added to the overhead.
func TestChannelScalesTransferTime(t *testing.T) {
	cases := []struct {
		name string
		cond channel.Conditions
		want time.Duration
	}{
		{"unit", channel.Clear, 1750*time.Millisecond + 300*time.Millisecond + time.Second},
		{"half-bandwidth", channel.Conditions{BandwidthFactor: 0.5},
			1750*time.Millisecond + 300*time.Millisecond + 2*time.Second},
		{"extra-rtt", channel.Conditions{BandwidthFactor: 1, ExtraRTT: 200 * time.Millisecond},
			1750*time.Millisecond + 500*time.Millisecond + time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock, _, link := newTestLink(t)
			link.SetChannel(constantChannel(t, tc.cond))
			var doneAt time.Duration
			if err := link.Fetch("obj", 96*1024, func() { doneAt = clock.Now() }); err != nil {
				t.Fatalf("Fetch: %v", err)
			}
			clock.Run()
			if diff := doneAt - tc.want; diff < -time.Millisecond || diff > time.Millisecond {
				t.Fatalf("done at %v, want %v (±1ms)", doneAt, tc.want)
			}
		})
	}
}

// TestChannelBoundaryCrossing drives a transfer across a segment boundary:
// the payload must take exactly the piecewise time, not the conditions at
// the start of the transfer.
func TestChannelBoundaryCrossing(t *testing.T) {
	// Full bandwidth until the payload's halfway point, then half bandwidth:
	// promo 1.75 s + RTT 0.3 s puts the payload start at 2.05 s; 96 KB at
	// 96 KB/s would finish in 1 s, but bandwidth halves at 2.55 s, so the
	// second 48 KB takes 1 s instead of 0.5 s.
	sched, err := channel.New("boundary", false,
		channel.Segment{Dur: 2550 * time.Millisecond, Cond: channel.Clear},
		channel.Segment{Start: 2550 * time.Millisecond, Dur: time.Hour,
			Cond: channel.Conditions{BandwidthFactor: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	clock, _, link := newTestLink(t)
	link.SetChannel(sched)
	var doneAt time.Duration
	if err := link.Fetch("obj", 96*1024, func() { doneAt = clock.Now() }); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	clock.Run()
	want := 2050*time.Millisecond + 500*time.Millisecond + time.Second
	if diff := doneAt - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("done at %v, want %v (±1ms)", doneAt, want)
	}
}

// channelFaultRun drives one fetch issued at issueAt over a fading schedule
// with an aggressive fault injector, returning the obs event stream.
func channelFaultRun(t *testing.T, issueAt time.Duration) ([]obs.Event, []Record) {
	t.Helper()
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	link, err := NewLink(clock, radio, DefaultConfig())
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	// Peak for 20 s, deep trough for 20 s, repeating.
	sched, err := channel.New("peak-trough", true,
		channel.Segment{Dur: 20 * time.Second, Cond: channel.Clear},
		channel.Segment{Start: 20 * time.Second, Dur: 20 * time.Second,
			Cond: channel.Conditions{BandwidthFactor: 0.1, ExtraRTT: 150 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	link.SetChannel(sched)
	in, err := faults.New(faults.Config{Seed: 42, FailRate: 0.8})
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	link.SetFaults(in)
	rec := obs.NewRecorder("chan-fault")
	link.SetObserver(rec)
	clock.After(issueAt, func() {
		if err := link.FetchResult("obj", 96*1024, func(error) {}); err != nil {
			t.Errorf("FetchResult: %v", err)
		}
	})
	clock.Run()
	return rec.Events(), link.Records()
}

// TestFaultsChannelComposition is the toxiproxy-style stacking contract: an
// injected outage during a fading trough vs. a peak produces ordered,
// deterministic retry events in the obs stream — byte-identical across runs,
// with the trough's attempts visibly stretched by the channel.
func TestFaultsChannelComposition(t *testing.T) {
	peakEvents, peakRecs := channelFaultRun(t, 0)
	troughEvents, _ := channelFaultRun(t, 22*time.Second)

	for name, evs := range map[string][]obs.Event{"peak": peakEvents, "trough": troughEvents} {
		if len(evs) < 3 {
			t.Fatalf("%s: want at least start/retry/terminal events, got %d", name, len(evs))
		}
		// Events are ordered in simulated time, attempts count up from 1,
		// and every retry is followed by a fresh start.
		attempts := 0
		for i, ev := range evs {
			if i > 0 && ev.AtNS < evs[i-1].AtNS {
				t.Fatalf("%s: event %d at %d before predecessor %d", name, i, ev.AtNS, evs[i-1].AtNS)
			}
			switch ev.Kind {
			case obs.KindXferStart:
				attempts++
				if ev.Attempt != attempts {
					t.Fatalf("%s: start event %d has attempt %d, want %d", name, i, ev.Attempt, attempts)
				}
			case obs.KindXferRetry:
				if ev.Attempt != attempts {
					t.Fatalf("%s: retry event %d has attempt %d, want %d", name, i, ev.Attempt, attempts)
				}
			}
		}
		if attempts < 2 {
			t.Fatalf("%s: fault injection produced no retries (attempts=%d)", name, attempts)
		}
		last := evs[len(evs)-1].Kind
		if last != obs.KindXferEnd && last != obs.KindXferFailed {
			t.Fatalf("%s: stream ends with %q", name, last)
		}
	}

	// Determinism: replaying either run reproduces it byte-for-byte.
	peakAgain, peakRecsAgain := channelFaultRun(t, 0)
	if !reflect.DeepEqual(peakEvents, peakAgain) || !reflect.DeepEqual(peakRecs, peakRecsAgain) {
		t.Fatal("peak run is not deterministic")
	}
	troughAgain, _ := channelFaultRun(t, 22*time.Second)
	if !reflect.DeepEqual(troughEvents, troughAgain) {
		t.Fatal("trough run is not deterministic")
	}

	// The channel composes with the injector: the same fault plan sequence
	// plays out on a 10× slower link in the trough, so its attempts take
	// longer than the peak's (compare first-attempt spans via the stream).
	span := func(evs []obs.Event) int64 {
		var start int64 = -1
		for _, ev := range evs {
			switch ev.Kind {
			case obs.KindXferStart:
				if start < 0 {
					start = ev.AtNS
				}
			case obs.KindXferRetry, obs.KindXferEnd, obs.KindXferFailed:
				if start >= 0 {
					return ev.AtNS - start
				}
			}
		}
		t.Fatal("no attempt span found")
		return 0
	}
	peakSpan, troughSpan := span(peakEvents), span(troughEvents)
	if troughSpan <= peakSpan {
		t.Fatalf("trough attempt (%v) not slower than peak attempt (%v)",
			time.Duration(troughSpan), time.Duration(peakSpan))
	}
}
