// Package netsim models the data path between the smartphone and the web
// server on top of the RRC state machine: a FIFO radio link with DCH-grade
// throughput, a per-request round-trip overhead, and a slow FACH path for
// tiny transfers.
//
// Bandwidth is calibrated to the paper's Fig. 4 measurement: a raw socket
// download of 760 KB over DCH takes about 8 seconds, while the shared FACH
// channels move only a few hundred bytes per second (Section 2.1).
package netsim

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/channel"
	"eabrowse/internal/faults"
	"eabrowse/internal/obs"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// ErrTransferFailed marks a transfer that died after exhausting the link's
// retry budget (injected hard failure or unrecoverable stall).
var ErrTransferFailed = errors.New("netsim: transfer failed")

// DefaultTransferAttempts is how many times the link tries a transfer before
// reporting failure to the caller: the first attempt plus two retries.
const DefaultTransferAttempts = 3

// StallAbortTimeout is the link's stall watchdog: an attempt that makes no
// progress for this long is aborted and retried. Stalls shorter than this
// are ridden out (they just lengthen the transfer).
const StallAbortTimeout = 5 * time.Second

// Config holds link parameters.
type Config struct {
	// DCHDownKBps is downlink throughput on dedicated channels, KB/s.
	DCHDownKBps float64
	// DCHUpKBps is uplink throughput on dedicated channels, KB/s (UMTS
	// uplinks were several times slower than downlinks).
	DCHUpKBps float64
	// FACHDownKBps is downlink throughput on the shared channels, KB/s.
	FACHDownKBps float64
	// FACHMaxBytes is the largest transfer allowed to ride FACH without a
	// promotion to DCH.
	FACHMaxBytes int
	// RTT is the fixed per-request overhead (HTTP request + first byte).
	RTT time.Duration
}

// DefaultConfig returns the calibrated link: 760 KB in ≈8 s over DCH.
func DefaultConfig() Config {
	return Config{
		DCHDownKBps:  96,
		DCHUpKBps:    32,
		FACHDownKBps: 0.3,
		FACHMaxBytes: 256,
		RTT:          300 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.DCHDownKBps <= 0 || c.DCHUpKBps <= 0:
		return errors.New("netsim: DCH bandwidth must be positive")
	case c.FACHDownKBps <= 0:
		return errors.New("netsim: FACH bandwidth must be positive")
	case c.FACHMaxBytes < 0:
		return errors.New("netsim: FACH max bytes must be non-negative")
	case c.RTT < 0:
		return errors.New("netsim: RTT must be non-negative")
	}
	return nil
}

// Record describes one completed transfer, for the traffic-shape analysis of
// Fig. 4.
type Record struct {
	URL     string
	Bytes   int
	Start   time.Duration
	End     time.Duration
	OverDCH bool
	// Uplink marks a Send (device → server) transfer.
	Uplink bool
	// Attempts counts how many times the link tried the transfer (1 in the
	// fault-free simulation).
	Attempts int
	// Failed marks a transfer that exhausted its attempts without
	// delivering the last byte.
	Failed bool
}

// Transfer is a pending or in-flight transfer.
type Transfer struct {
	url      string
	bytes    int
	uplink   bool
	done     func(error)
	enqueued time.Duration
	attempt  int
	started  time.Duration
	everRan  bool
}

// URL returns the transfer's URL tag.
func (t *Transfer) URL() string { return t.url }

// Bytes returns the transfer size.
func (t *Transfer) Bytes() int { return t.bytes }

// Link is a FIFO radio data link bound to one RRC machine. Not safe for
// concurrent use (single-threaded simulation).
//
// The link moves one transfer at a time: queued transfers wait as values in a
// head-indexed slice and the in-flight one lives in cur, so the fault-free
// steady state allocates nothing per transfer. The completion callbacks the
// link schedules on the clock are bound once at construction.
type Link struct {
	clock *simtime.Clock
	radio rrc.RadioModel
	cfg   Config

	queue []Transfer
	qHead int
	cur   Transfer
	busy  bool

	// Prebound hot-path callbacks (fault paths build closures instead; they
	// only run under injection).
	startDCHFn func()
	dchEndFn   func()
	fachEndFn  func()

	records []Record

	bytesDown  int
	firstStart time.Duration
	lastEnd    time.Duration
	everMoved  bool

	onAllDrained func()

	faults      *faults.Injector
	channel     *channel.Schedule
	maxAttempts int
	retries     int
	failed      int

	observer *obs.Recorder
}

// NewLink creates a link over the given radio (any rrc.RadioModel backend).
func NewLink(clock *simtime.Clock, radio rrc.RadioModel, cfg Config) (*Link, error) {
	if clock == nil {
		return nil, errors.New("netsim: nil clock")
	}
	if radio == nil {
		return nil, errors.New("netsim: nil radio")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Queue and record capacity cover a typical page load outright, so a
	// fresh link never grows them mid-visit.
	l := &Link{
		clock:       clock,
		radio:       radio,
		cfg:         cfg,
		maxAttempts: DefaultTransferAttempts,
		queue:       make([]Transfer, 0, 8),
		records:     make([]Record, 0, 16),
	}
	l.startDCHFn = l.startDCHCur
	l.dchEndFn = l.dchEnd
	l.fachEndFn = l.fachEnd
	return l, nil
}

// Reset returns the link to a fresh drained state, keeping queue and record
// capacity. The owning session must Reset the shared clock first so no stale
// completion events remain queued.
func (l *Link) Reset() {
	for i := range l.queue {
		l.queue[i] = Transfer{}
	}
	l.queue = l.queue[:0]
	l.qHead = 0
	l.cur = Transfer{}
	l.busy = false
	l.records = l.records[:0]
	l.bytesDown = 0
	l.firstStart = 0
	l.lastEnd = 0
	l.everMoved = false
	l.retries = 0
	l.failed = 0
}

// SetFaults attaches an impairment injector. A nil injector (the default)
// leaves the link fault-free and bit-for-bit identical to the unimpaired
// simulation. Attach before issuing transfers.
func (l *Link) SetFaults(in *faults.Injector) {
	l.faults = in
}

// SetObserver attaches an event recorder. A nil recorder (the default)
// disables transfer tracing at the cost of a pointer test per hook.
func (l *Link) SetObserver(r *obs.Recorder) {
	l.observer = r
}

// SetChannel attaches a time-varying channel schedule; the schedule's origin
// is the clock's zero, so attach before the simulation starts. A nil schedule
// (the default) keeps the fixed-link arithmetic bit-for-bit unchanged.
//
// The channel composes with fault injection toxiproxy-style: the schedule
// first scales bandwidth and adds latency deterministically, then the
// injector's per-attempt plan stacks its own factor, extra RTT, stalls and
// failures on top. Like the injector and observer, the channel survives
// Reset — it is part of the link's wiring, not its per-run state.
func (l *Link) SetChannel(s *channel.Schedule) {
	l.channel = s
}

// Channel returns the attached schedule, or nil for the fixed link.
func (l *Link) Channel() *channel.Schedule { return l.channel }

// attemptDur computes one attempt's duration: per-request overhead plus the
// payload time at rate kbps (already scaled by the fault plan's factor).
// Under a channel schedule the payload is integrated piecewise across
// segment boundaries so each segment carries exactly the bytes its
// conditions allow; without one this is the original fixed-link arithmetic.
func (l *Link) attemptDur(t *Transfer, plan faults.TransferPlan, kbps float64) time.Duration {
	if l.channel == nil {
		return l.cfg.RTT + plan.ExtraRTT + kbDuration(t.bytes, kbps)
	}
	now := l.clock.Now()
	overhead := l.cfg.RTT + plan.ExtraRTT + l.channel.At(now).ExtraRTT
	return overhead + l.channel.XferDuration(now+overhead, t.bytes, kbps)
}

// FaultsActive reports whether an enabled injector is attached.
func (l *Link) FaultsActive() bool {
	return l.faults.Enabled()
}

// Retries returns how many transfer attempts the link aborted and retried.
func (l *Link) Retries() int { return l.retries }

// FailedTransfers returns how many transfers exhausted their attempts.
func (l *Link) FailedTransfers() int { return l.failed }

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Busy reports whether a transfer is in flight.
func (l *Link) Busy() bool { return l.busy }

// QueueLen returns the number of queued (not yet started) transfers.
func (l *Link) QueueLen() int { return len(l.queue) - l.qHead }

// BytesDown returns the total bytes downloaded so far.
func (l *Link) BytesDown() int { return l.bytesDown }

// Records returns a copy of the completed-transfer log.
func (l *Link) Records() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// TransmissionWindow returns the time of the first transfer start and the
// last transfer end, i.e. the paper's "data transmission time" window. ok is
// false if nothing has been transferred.
func (l *Link) TransmissionWindow() (start, end time.Duration, ok bool) {
	if !l.everMoved {
		return 0, 0, false
	}
	return l.firstStart, l.lastEnd, true
}

// SetDrainedHook registers fn to run whenever the link transitions to fully
// drained (no in-flight and no queued transfers). Pass nil to clear.
func (l *Link) SetDrainedHook(fn func()) {
	l.onAllDrained = fn
}

// Fetch enqueues a download of size bytes tagged with url; done (optional)
// runs when the last byte arrives. Returns an error for non-positive sizes.
// If the transfer fails permanently (possible only under fault injection),
// done never runs — callers that must observe failures use FetchResult.
func (l *Link) Fetch(url string, bytes int, done func()) error {
	return l.enqueue(url, bytes, false, adaptDone(done))
}

// Send enqueues an uplink transfer (device → server) of size bytes; done
// (optional) runs when the last byte has been sent. Like Fetch, done is not
// invoked for a permanently failed transfer; use SendResult to observe those.
func (l *Link) Send(url string, bytes int, done func()) error {
	return l.enqueue(url, bytes, true, adaptDone(done))
}

// FetchResult is Fetch with an error-aware completion callback: done runs
// exactly once, with nil when the last byte arrived or with an error
// (wrapping ErrTransferFailed) when the link gave up after its retry budget.
func (l *Link) FetchResult(url string, bytes int, done func(error)) error {
	return l.enqueue(url, bytes, false, done)
}

// SendResult is Send with an error-aware completion callback.
func (l *Link) SendResult(url string, bytes int, done func(error)) error {
	return l.enqueue(url, bytes, true, done)
}

// adaptDone wraps a success-only callback for the error-aware queue.
func adaptDone(done func()) func(error) {
	if done == nil {
		return nil
	}
	return func(err error) {
		if err == nil {
			done()
		}
	}
}

func (l *Link) enqueue(url string, bytes int, uplink bool, done func(error)) error {
	if bytes <= 0 {
		return fmt.Errorf("netsim: transfer %q with %d bytes", url, bytes)
	}
	l.queue = append(l.queue, Transfer{
		url:      url,
		bytes:    bytes,
		uplink:   uplink,
		done:     done,
		enqueued: l.clock.Now(),
	})
	l.pump()
	return nil
}

// pump starts the next queued transfer if the link is free.
func (l *Link) pump() {
	if l.busy || l.qHead == len(l.queue) {
		return
	}
	l.cur = l.queue[l.qHead]
	l.queue[l.qHead] = Transfer{}
	l.qHead++
	if l.qHead == len(l.queue) {
		l.queue = l.queue[:0]
		l.qHead = 0
	}
	l.busy = true

	// Tiny transfers ride the shared channel when the backend has one and
	// the radio already sits there (UMTS FACH).
	if l.cur.bytes <= l.cfg.FACHMaxBytes && l.radio.SharedReady() {
		l.startFACH(&l.cur)
		return
	}
	l.radio.RequestActive(l.startDCHFn)
}

// startDCHCur starts the in-flight transfer over DCH (the prebound form the
// radio calls back once dedicated channels are up).
func (l *Link) startDCHCur() {
	l.startDCH(&l.cur)
}

// dchEnd completes a clean DCH attempt of the in-flight transfer.
func (l *Link) dchEnd() {
	t := &l.cur
	if err := l.radio.EndTransfer(); err != nil {
		// A demotion reached the radio mid-transfer (fault-injected timing
		// can produce this); propagate instead of panicking so the transfer's
		// completion callback learns about it.
		l.retryOrFail(t, true, fmt.Errorf("netsim: end transfer %q: %v: %w", t.url, err, ErrTransferFailed))
		return
	}
	l.finish(t, true, nil)
}

// fachEnd completes a clean FACH attempt of the in-flight transfer.
func (l *Link) fachEnd() {
	l.radio.TouchShared()
	l.finish(&l.cur, false, nil)
}

// noteStart records the start of a transfer's first attempt.
func (t *Transfer) noteStart(now time.Duration) {
	if !t.everRan {
		t.started = now
		t.everRan = true
	}
}

func (l *Link) startDCH(t *Transfer) {
	if err := l.radio.BeginTransfer(); err != nil {
		// The radio was demoted between the callback being scheduled and
		// running (cannot happen with the current machine, but fail safe):
		// retry through a fresh active-state request.
		l.radio.RequestActive(l.startDCHFn)
		return
	}
	t.noteStart(l.clock.Now())
	l.noteAttempt(t, "DCH")
	plan := l.faults.PlanTransfer(t.uplink, false)
	bw := l.cfg.DCHDownKBps
	if t.uplink {
		bw = l.cfg.DCHUpKBps
	}
	bw *= plan.ThroughputFactor
	dur := l.attemptDur(t, plan, bw)

	// An injected hard failure kills the attempt partway through; a stall
	// longer than the watchdog aborts it once the watchdog expires. Either
	// way the radio transfer ends early and the attempt is retried (or the
	// transfer reported failed once the budget is spent). Short stalls are
	// ridden out — they only lengthen the attempt. The abort closure lives
	// in a helper so the fault-free path stays allocation-free.
	switch {
	case plan.Fail:
		l.abortDCH(t, time.Duration(float64(dur)*plan.FailFrac),
			fmt.Errorf("netsim: %q died mid-transfer: %w", t.url, ErrTransferFailed))
		return
	case plan.Stall >= StallAbortTimeout:
		l.abortDCH(t, dur/2+StallAbortTimeout,
			fmt.Errorf("netsim: %q stalled beyond %v: %w", t.url, StallAbortTimeout, ErrTransferFailed))
		return
	case plan.Stall > 0:
		dur += plan.Stall
	}
	l.clock.Defer(dur, l.dchEndFn)
}

// abortDCH schedules the early death of the in-flight DCH attempt (fault
// injection only).
func (l *Link) abortDCH(t *Transfer, after time.Duration, cause error) {
	l.clock.After(after, func() {
		if err := l.radio.EndTransfer(); err != nil {
			// The radio state decayed under the dead attempt; the abort
			// below retries or reports failure regardless.
			cause = fmt.Errorf("netsim: end aborted transfer %q: %v: %w", t.url, err, ErrTransferFailed)
		}
		l.retryOrFail(t, true, cause)
	})
}

func (l *Link) startFACH(t *Transfer) {
	t.noteStart(l.clock.Now())
	l.noteAttempt(t, "FACH")
	l.radio.TouchShared()
	plan := l.faults.PlanTransfer(t.uplink, true)
	dur := plan.Stall + l.attemptDur(t, plan, l.cfg.FACHDownKBps*plan.ThroughputFactor)
	if plan.Fail {
		at := time.Duration(float64(dur) * plan.FailFrac)
		l.clock.After(at, func() {
			l.radio.TouchShared()
			l.retryOrFail(t, false, fmt.Errorf("netsim: %q died on FACH: %w", t.url, ErrTransferFailed))
		})
		return
	}
	l.clock.Defer(dur, l.fachEndFn)
}

// noteAttempt traces the start of one transfer attempt on the given channel.
func (l *Link) noteAttempt(t *Transfer, channel string) {
	if l.observer == nil {
		return
	}
	l.observer.Record(l.clock.Now(), obs.Event{
		Kind:    obs.KindXferStart,
		URL:     t.url,
		Detail:  channel,
		Bytes:   t.bytes,
		Attempt: t.attempt + 1,
	})
}

// retryOrFail handles a dead attempt: start over while budget remains,
// otherwise complete the transfer with the error.
func (l *Link) retryOrFail(t *Transfer, overDCH bool, cause error) {
	if t.attempt+1 < l.maxAttempts {
		if l.observer != nil {
			l.observer.Record(l.clock.Now(), obs.Event{
				Kind:    obs.KindXferRetry,
				URL:     t.url,
				Detail:  cause.Error(),
				Attempt: t.attempt + 1,
			})
		}
		t.attempt++
		l.retries++
		if overDCH {
			l.radio.RequestActive(l.startDCHFn)
		} else {
			l.startFACH(t)
		}
		return
	}
	l.failed++
	l.finish(t, overDCH, cause)
}

func (l *Link) finish(t *Transfer, overDCH bool, failure error) {
	now := l.clock.Now()
	l.records = append(l.records, Record{
		URL:      t.url,
		Bytes:    t.bytes,
		Start:    t.started,
		End:      now,
		OverDCH:  overDCH,
		Uplink:   t.uplink,
		Attempts: t.attempt + 1,
		Failed:   failure != nil,
	})
	if failure == nil {
		l.bytesDown += t.bytes
	}
	if l.observer != nil {
		kind := obs.KindXferEnd
		if failure != nil {
			kind = obs.KindXferFailed
		}
		l.observer.Record(now, obs.Event{
			Kind:    kind,
			URL:     t.url,
			Bytes:   t.bytes,
			Attempt: t.attempt + 1,
			DurNS:   int64(now - t.started),
		})
		l.observer.ObserveDur("xfer_ns", now-t.started)
	}
	if !l.everMoved {
		l.firstStart = t.started
		l.everMoved = true
	}
	l.lastEnd = now
	l.busy = false
	// Copy the completion callback before pump can overwrite cur: done may
	// enqueue follow-up transfers, which start immediately on the free link.
	done := t.done
	t.done = nil
	if done != nil {
		done(failure)
	}
	l.pump()
	if !l.busy && l.qHead == len(l.queue) && l.onAllDrained != nil {
		l.onAllDrained()
	}
}

// kbDuration converts a byte count and a KB/s rate into a duration.
func kbDuration(bytes int, kbps float64) time.Duration {
	seconds := float64(bytes) / 1024 / kbps
	return time.Duration(seconds * float64(time.Second))
}
