// Package netsim models the data path between the smartphone and the web
// server on top of the RRC state machine: a FIFO radio link with DCH-grade
// throughput, a per-request round-trip overhead, and a slow FACH path for
// tiny transfers.
//
// Bandwidth is calibrated to the paper's Fig. 4 measurement: a raw socket
// download of 760 KB over DCH takes about 8 seconds, while the shared FACH
// channels move only a few hundred bytes per second (Section 2.1).
package netsim

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

// Config holds link parameters.
type Config struct {
	// DCHDownKBps is downlink throughput on dedicated channels, KB/s.
	DCHDownKBps float64
	// DCHUpKBps is uplink throughput on dedicated channels, KB/s (UMTS
	// uplinks were several times slower than downlinks).
	DCHUpKBps float64
	// FACHDownKBps is downlink throughput on the shared channels, KB/s.
	FACHDownKBps float64
	// FACHMaxBytes is the largest transfer allowed to ride FACH without a
	// promotion to DCH.
	FACHMaxBytes int
	// RTT is the fixed per-request overhead (HTTP request + first byte).
	RTT time.Duration
}

// DefaultConfig returns the calibrated link: 760 KB in ≈8 s over DCH.
func DefaultConfig() Config {
	return Config{
		DCHDownKBps:  96,
		DCHUpKBps:    32,
		FACHDownKBps: 0.3,
		FACHMaxBytes: 256,
		RTT:          300 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.DCHDownKBps <= 0 || c.DCHUpKBps <= 0:
		return errors.New("netsim: DCH bandwidth must be positive")
	case c.FACHDownKBps <= 0:
		return errors.New("netsim: FACH bandwidth must be positive")
	case c.FACHMaxBytes < 0:
		return errors.New("netsim: FACH max bytes must be non-negative")
	case c.RTT < 0:
		return errors.New("netsim: RTT must be non-negative")
	}
	return nil
}

// Record describes one completed transfer, for the traffic-shape analysis of
// Fig. 4.
type Record struct {
	URL     string
	Bytes   int
	Start   time.Duration
	End     time.Duration
	OverDCH bool
	// Uplink marks a Send (device → server) transfer.
	Uplink bool
}

// Transfer is a pending or in-flight transfer.
type Transfer struct {
	url      string
	bytes    int
	uplink   bool
	done     func()
	enqueued time.Duration
}

// URL returns the transfer's URL tag.
func (t *Transfer) URL() string { return t.url }

// Bytes returns the transfer size.
func (t *Transfer) Bytes() int { return t.bytes }

// Link is a FIFO radio data link bound to one RRC machine. Not safe for
// concurrent use (single-threaded simulation).
type Link struct {
	clock *simtime.Clock
	radio *rrc.Machine
	cfg   Config

	queue   []*Transfer
	busy    bool
	records []Record

	bytesDown  int
	firstStart time.Duration
	lastEnd    time.Duration
	everMoved  bool

	onAllDrained func()
}

// NewLink creates a link over the given radio.
func NewLink(clock *simtime.Clock, radio *rrc.Machine, cfg Config) (*Link, error) {
	if clock == nil {
		return nil, errors.New("netsim: nil clock")
	}
	if radio == nil {
		return nil, errors.New("netsim: nil radio")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{clock: clock, radio: radio, cfg: cfg}, nil
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Busy reports whether a transfer is in flight.
func (l *Link) Busy() bool { return l.busy }

// QueueLen returns the number of queued (not yet started) transfers.
func (l *Link) QueueLen() int { return len(l.queue) }

// BytesDown returns the total bytes downloaded so far.
func (l *Link) BytesDown() int { return l.bytesDown }

// Records returns a copy of the completed-transfer log.
func (l *Link) Records() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// TransmissionWindow returns the time of the first transfer start and the
// last transfer end, i.e. the paper's "data transmission time" window. ok is
// false if nothing has been transferred.
func (l *Link) TransmissionWindow() (start, end time.Duration, ok bool) {
	if !l.everMoved {
		return 0, 0, false
	}
	return l.firstStart, l.lastEnd, true
}

// SetDrainedHook registers fn to run whenever the link transitions to fully
// drained (no in-flight and no queued transfers). Pass nil to clear.
func (l *Link) SetDrainedHook(fn func()) {
	l.onAllDrained = fn
}

// Fetch enqueues a download of size bytes tagged with url; done (optional)
// runs when the last byte arrives. Returns an error for non-positive sizes.
func (l *Link) Fetch(url string, bytes int, done func()) error {
	return l.enqueue(url, bytes, false, done)
}

// Send enqueues an uplink transfer (device → server) of size bytes; done
// (optional) runs when the last byte has been sent.
func (l *Link) Send(url string, bytes int, done func()) error {
	return l.enqueue(url, bytes, true, done)
}

func (l *Link) enqueue(url string, bytes int, uplink bool, done func()) error {
	if bytes <= 0 {
		return fmt.Errorf("netsim: transfer %q with %d bytes", url, bytes)
	}
	l.queue = append(l.queue, &Transfer{
		url:      url,
		bytes:    bytes,
		uplink:   uplink,
		done:     done,
		enqueued: l.clock.Now(),
	})
	l.pump()
	return nil
}

// pump starts the next queued transfer if the link is free.
func (l *Link) pump() {
	if l.busy || len(l.queue) == 0 {
		return
	}
	t := l.queue[0]
	l.queue = l.queue[1:]
	l.busy = true

	// Tiny transfers ride FACH when the radio already sits there.
	if t.bytes <= l.cfg.FACHMaxBytes && l.radio.State() == rrc.StateFACH {
		l.startFACH(t)
		return
	}
	l.radio.RequestDCH(func() {
		l.startDCH(t)
	})
}

func (l *Link) startDCH(t *Transfer) {
	if err := l.radio.BeginTransfer(); err != nil {
		// The radio was demoted between the callback being scheduled and
		// running (cannot happen with the current machine, but fail safe):
		// retry through a fresh DCH request.
		l.radio.RequestDCH(func() { l.startDCH(t) })
		return
	}
	start := l.clock.Now()
	bw := l.cfg.DCHDownKBps
	if t.uplink {
		bw = l.cfg.DCHUpKBps
	}
	dur := l.cfg.RTT + kbDuration(t.bytes, bw)
	l.clock.After(dur, func() {
		if err := l.radio.EndTransfer(); err != nil {
			// Unreachable by construction; keep the simulation honest.
			panic(fmt.Sprintf("netsim: end transfer: %v", err))
		}
		l.finish(t, start, true)
	})
}

func (l *Link) startFACH(t *Transfer) {
	start := l.clock.Now()
	l.radio.TouchFACH()
	dur := l.cfg.RTT + kbDuration(t.bytes, l.cfg.FACHDownKBps)
	l.clock.After(dur, func() {
		l.radio.TouchFACH()
		l.finish(t, start, false)
	})
}

func (l *Link) finish(t *Transfer, start time.Duration, overDCH bool) {
	now := l.clock.Now()
	l.records = append(l.records, Record{
		URL:     t.url,
		Bytes:   t.bytes,
		Start:   start,
		End:     now,
		OverDCH: overDCH,
		Uplink:  t.uplink,
	})
	l.bytesDown += t.bytes
	if !l.everMoved {
		l.firstStart = start
		l.everMoved = true
	}
	l.lastEnd = now
	l.busy = false
	if t.done != nil {
		t.done()
	}
	l.pump()
	if !l.busy && len(l.queue) == 0 && l.onAllDrained != nil {
		l.onAllDrained()
	}
}

// kbDuration converts a byte count and a KB/s rate into a duration.
func kbDuration(bytes int, kbps float64) time.Duration {
	seconds := float64(bytes) / 1024 / kbps
	return time.Duration(seconds * float64(time.Second))
}
