// model.go defines the backend-neutral radio abstraction: the RadioModel
// interface every radio generation implements, the ModelSpec factory that
// names and builds a backend, the TailProfile description of a backend's
// post-transfer demotion chain (which the policy layer and the fleet's
// analytic replay consume instead of hardcoding DCH→FACH→IDLE), and the
// registry of named profiles ("umts", "lte", "nr").
//
// The UMTS Machine in rrc.go is the first RadioModel implementation and the
// reference for the contract; chain.go provides the table-driven LTE and
// 5G NR backends.
package rrc

import (
	"fmt"
	"strings"
	"time"

	"eabrowse/internal/simtime"
)

// MaxStates bounds the per-state accounting arrays of every backend: no
// radio model may use state indices at or above MaxStates. Slot 0 is always
// unused; slot 1 is always the terminal idle state. Keeping one fixed width
// lets EnergyVec snapshots, the obs ledger and the fleet's cursor math stay
// allocation-free regardless of which backend is plugged in.
const MaxStates = 8

// RadioModel is the behavior every radio backend exposes to the browser,
// netsim, policy and experiment layers. The contract, pinned by the
// conformance suite in model_test.go:
//
//   - States are small integers in [1, NumStates()); 1 is the terminal idle
//     state; StableState reports the non-transient ones.
//   - EnergyJ never decreases; EnergyVec slots sum to EnergyJ (up to
//     floating-point association) and are integrated exactly to "now".
//   - BeginTransfer requires the active (highest-power stable) state —
//     callers reach it via RequestActive; EndTransfer re-arms the demotion
//     timer chain described by Tail().
//   - ForceIdle is the fast-dormancy path: it fails with ErrBusy while a
//     transfer or promotion is in flight, and is a no-op when already idle
//     or releasing.
//   - Reset returns the model to a fresh idle radio at the clock's current
//     time; the owning session must Reset the shared clock first.
type RadioModel interface {
	// Profile names the backend ("umts", "lte", "nr").
	Profile() string
	// NumStates is one past the highest state index this backend uses.
	NumStates() int
	// StateName labels a state for traces and ledgers.
	StateName(State) string
	// StableState reports whether s is a stable (non-transient) state.
	StableState(State) bool

	// State returns the current radio state.
	State() State
	// Transferring reports whether user data is actively moving.
	Transferring() bool
	// RadioPower is the instantaneous power draw in watts.
	RadioPower() float64
	// EnergyJ is the total radio energy so far, integrated exactly to now.
	EnergyJ() float64
	// EnergyVec attributes EnergyJ to states without allocating.
	EnergyVec() [MaxStates]float64
	// EnergyByState is the map form of EnergyVec, keyed by StateName.
	EnergyByState() map[string]float64
	// TimeIn is the cumulative residency in state s, up to now.
	TimeIn(State) time.Duration
	// Residency copies the cumulative residency of every visited state.
	Residency() map[State]time.Duration
	// HoldTime is the cumulative time the network had channels committed to
	// this radio (the capacity model's per-session service time).
	HoldTime() time.Duration
	// NextDemotion reports the pending inactivity-demotion deadline, if any
	// timer is armed. The fleet replay uses it to fast-forward analytically.
	NextDemotion() (at time.Duration, armed bool)

	// RequestActive asks for the active state and calls ready once reached
	// (never synchronously; via the clock at the current time if already
	// active).
	RequestActive(ready func())
	// BeginTransfer marks the start of a user-data transfer (active state
	// only).
	BeginTransfer() error
	// EndTransfer marks the end of a transfer; the last one arms demotion.
	EndTransfer() error
	// SharedReady reports whether a low-rate shared channel can carry small
	// transfers right now without a promotion (UMTS FACH; false on backends
	// without one).
	SharedReady() bool
	// TouchShared records shared-channel activity, resetting its inactivity
	// timer. No-op on backends without a shared channel.
	TouchShared()
	// ForceIdle releases the connection early (fast dormancy).
	ForceIdle() error

	// Tail describes the backend's demotion chain for analytic replay.
	Tail() TailProfile
	// Reset returns the model to a fresh idle radio at the clock's time.
	Reset()
}

// ModelSpec is a validated, immutable description of a radio backend that
// can mint RadioModel instances. rrc.Config (UMTS) and ChainSpec (LTE/NR)
// implement it.
type ModelSpec interface {
	// Profile names the backend.
	Profile() string
	// StateName labels a state without building a model.
	StateName(State) string
	// NumStates is one past the highest state index the backend uses.
	NumStates() int
	// Tail describes the backend's demotion chain.
	Tail() TailProfile
	// Validate checks that the spec is physically sensible.
	Validate() error
	// New builds a radio on the given clock.
	New(clock *simtime.Clock, opts ...Option) (RadioModel, error)
}

// TailStage is one stable state in a backend's demotion chain.
type TailStage struct {
	// State is the backend's index for this stage.
	State State
	// Name labels the stage (matches StateName of State).
	Name string
	// PowerW is the stage's idle power draw.
	PowerW float64
	// Dwell is the inactivity time spent in this stage before demoting one
	// stage further down (zero on the terminal stage, which never demotes).
	Dwell time.Duration
	// PromoLatency is the promotion delay from this stage back to active
	// (zero on the active stage itself).
	PromoLatency time.Duration
	// PromoLumpJ is the lump signaling energy of that promotion.
	PromoLumpJ float64
}

// TailProfile describes a backend's post-transfer demotion chain in the
// closed form the policy layer and the fleet's analytic cursor replay on:
// after the last transfer the radio dwells in Active for Active.Dwell, then
// steps through Stages in order, remaining in the final (terminal) stage
// until the next transfer or forever.
type TailProfile struct {
	// Profile names the backend this tail belongs to.
	Profile string
	// Active is the highest-power stable stage (UMTS DCH, LTE/NR CONNECTED).
	Active TailStage
	// Stages are the demotion targets in order, ending at the terminal idle
	// stage (whose Dwell is zero).
	Stages []TailStage
	// PromoPowerW is the power draw during promotions.
	PromoPowerW float64
	// Releasing is the transient state a fast-dormancy release passes
	// through, with its delay, power and lump signaling energy.
	Releasing     State
	ReleaseDelay  time.Duration
	ReleasePowerW float64
	ReleaseLumpJ  float64
}

// NumStages counts the stable stages including Active.
func (tp *TailProfile) NumStages() int { return len(tp.Stages) + 1 }

// Stage returns the i-th stage of the chain: 0 is Active, NumStages()-1 the
// terminal idle stage.
func (tp *TailProfile) Stage(i int) *TailStage {
	if i == 0 {
		return &tp.Active
	}
	return &tp.Stages[i-1]
}

// TerminalIndex is the stage index of the terminal idle stage.
func (tp *TailProfile) TerminalIndex() int { return len(tp.Stages) }

// Terminal returns the terminal idle stage.
func (tp *TailProfile) Terminal() *TailStage { return &tp.Stages[len(tp.Stages)-1] }

// StageIndexOf maps a stable state to its stage index, or -1 if s is not a
// stable state of this chain.
func (tp *TailProfile) StageIndexOf(s State) int {
	if s == tp.Active.State {
		return 0
	}
	for i := range tp.Stages {
		if tp.Stages[i].State == s {
			return i + 1
		}
	}
	return -1
}

// TotalDwell sums every stage's dwell: the time from the end of the last
// transfer until the radio settles in the terminal stage on its own.
func (tp *TailProfile) TotalDwell() time.Duration {
	d := tp.Active.Dwell
	for i := range tp.Stages {
		d += tp.Stages[i].Dwell
	}
	return d
}

// --- named-profile registry -------------------------------------------------

// Profiles lists the built-in radio profile names, sorted.
func Profiles() []string { return []string{"lte", "nr", "umts"} }

// ProfileSpec resolves a named radio profile to its default spec. Unknown
// names fail with the valid-name list, mirroring the benchmark-page errors.
func ProfileSpec(name string) (ModelSpec, error) {
	switch name {
	case "umts":
		return DefaultConfig(), nil
	case "lte":
		return DefaultLTEConfig(), nil
	case "nr":
		return DefaultNRConfig(), nil
	}
	return nil, fmt.Errorf("rrc: unknown radio profile %q (have: %s)",
		name, strings.Join(Profiles(), ", "))
}

// --- UMTS Config as a ModelSpec ---------------------------------------------

// Profile names the UMTS backend.
func (c Config) Profile() string { return "umts" }

// StateName labels a UMTS state.
func (c Config) StateName(s State) string { return s.String() }

// NumStates is one past the highest UMTS state index.
func (c Config) NumStates() int { return NumStates }

// Tail describes the DCH→FACH→IDLE demotion chain in backend-neutral form.
func (c Config) Tail() TailProfile {
	return TailProfile{
		Profile: "umts",
		Active:  TailStage{State: StateDCH, Name: "DCH", PowerW: c.PowerDCHIdle, Dwell: c.T1},
		Stages: []TailStage{
			{State: StateFACH, Name: "FACH", PowerW: c.PowerFACH, Dwell: c.T2, PromoLatency: c.PromoFACHToDCH},
			{State: StateIdle, Name: "IDLE", PowerW: c.PowerIdle, PromoLatency: c.PromoIdleToDCH, PromoLumpJ: c.PromoIdleSignalEnergy},
		},
		PromoPowerW:   c.PowerPromo,
		Releasing:     StateReleasing,
		ReleaseDelay:  c.ReleaseDelay,
		ReleasePowerW: c.PowerRelease,
		ReleaseLumpJ:  c.ReleaseSignalEnergy,
	}
}

// New builds a UMTS machine on the given clock.
func (c Config) New(clock *simtime.Clock, opts ...Option) (RadioModel, error) {
	m, err := NewMachine(clock, c, opts...)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// --- UMTS Machine as a RadioModel -------------------------------------------

// Profile names the backend this machine implements.
func (m *Machine) Profile() string { return "umts" }

// NumStates is one past the highest state index this machine uses.
func (m *Machine) NumStates() int { return NumStates }

// StateName labels a UMTS state.
func (m *Machine) StateName(s State) string { return s.String() }

// StableState reports whether s is one of the three stable UMTS states.
func (m *Machine) StableState(s State) bool { return s.Stable() }

// RequestActive asks for the active (DCH) state; it is RequestDCH under the
// backend-neutral name.
func (m *Machine) RequestActive(ready func()) { m.RequestDCH(ready) }

// SharedReady reports whether the FACH shared channel can carry small
// transfers right now.
func (m *Machine) SharedReady() bool { return m.state == StateFACH }

// TouchShared records shared-channel activity (TouchFACH).
func (m *Machine) TouchShared() { m.TouchFACH() }

// HoldTime is DCHHoldTime under the backend-neutral name.
func (m *Machine) HoldTime() time.Duration { return m.DCHHoldTime() }

// NextDemotion reports the earlier of the pending T1/T2 deadlines. At most
// one is armed at a time (T1 only in DCH, T2 only in FACH).
func (m *Machine) NextDemotion() (time.Duration, bool) {
	if m.t1Timer.Armed() {
		return m.t1Timer.Deadline(), true
	}
	if m.t2Timer.Armed() {
		return m.t2Timer.Deadline(), true
	}
	return 0, false
}

// Tail describes this machine's demotion chain.
func (m *Machine) Tail() TailProfile { return m.cfg.Tail() }

var (
	_ RadioModel = (*Machine)(nil)
	_ ModelSpec  = Config{}
)
