// chain.go implements the table-driven demotion-chain radio backend behind
// the LTE and 5G NR profiles. Where UMTS has a bespoke machine (rrc.go) with
// a shared FACH channel and two promotion paths, LTE DRX and NR are pure
// chains: one active state at the top, a ladder of progressively cheaper
// stable states below it, each with its own inactivity dwell, promotion
// latency and promotion signaling cost. A ChainSpec is that ladder as data;
// chainMachine executes it with the same event discipline as the UMTS
// machine (lazily re-armed timers, prebound completion callbacks,
// double-buffered waiter queue, exact piecewise-constant energy
// integration) so pooled sessions stay allocation-free on any backend.
package rrc

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/simtime"
)

// ChainState is one stable state in a demotion chain.
type ChainState struct {
	// Name labels the state ("CONNECTED", "DRX_SHORT", ...).
	Name string
	// PowerW is the idle power draw in this state.
	PowerW float64
	// Dwell is the inactivity time before demoting one rung down (zero on
	// the terminal idle state, which never demotes).
	Dwell time.Duration
	// PromoLatency is the promotion delay from this state to the active
	// state (zero on the active state itself).
	PromoLatency time.Duration
	// PromoLumpJ is the lump signaling energy of that promotion, on top of
	// PromoPowerW over PromoLatency.
	PromoLumpJ float64
}

// ChainSpec describes a demotion-chain radio backend. Stable lists the
// stable states from the terminal idle state (index 0) up to the active
// state (last index); state indices are assigned 1..len(Stable) in that
// order, with PROMO and RELEASING transients above them.
type ChainSpec struct {
	// Name is the profile name ("lte", "nr").
	Name string
	// Stable is the chain, terminal idle first, active last.
	Stable []ChainState
	// TxPowerW is the active-state power while a transfer is in flight.
	TxPowerW float64
	// PromoPowerW is the power draw during promotions.
	PromoPowerW float64
	// ReleaseDelay, ReleasePowerW and ReleaseLumpJ parameterize the fast
	// dormancy release, as in the UMTS Config.
	ReleaseDelay  time.Duration
	ReleasePowerW float64
	ReleaseLumpJ  float64
}

// DefaultLTEConfig returns a stylized LTE DRX profile: CONNECTED with a
// short inactivity timer, short-cycle and long-cycle DRX rungs, and a cheap
// reconnect relative to UMTS (no expensive signaling-connection
// re-establishment; RRC connection setup from IDLE is ~260 ms). Power and
// timer shapes follow the published LTE power-model measurements (e.g.
// Huang et al., MobiSys 2012), rounded to the same stylization level as the
// paper's Table 5.
func DefaultLTEConfig() ChainSpec {
	return ChainSpec{
		Name: "lte",
		Stable: []ChainState{
			{Name: "IDLE", PowerW: 0.12, PromoLatency: 260 * time.Millisecond, PromoLumpJ: 0.90},
			{Name: "DRX_LONG", PowerW: 0.70, Dwell: 9500 * time.Millisecond, PromoLatency: 50 * time.Millisecond},
			{Name: "DRX_SHORT", PowerW: 0.95, Dwell: 1500 * time.Millisecond, PromoLatency: 20 * time.Millisecond},
			{Name: "CONNECTED", PowerW: 1.25, Dwell: 500 * time.Millisecond},
		},
		TxPowerW:      1.60,
		PromoPowerW:   1.40,
		ReleaseDelay:  150 * time.Millisecond,
		ReleasePowerW: 1.00,
		ReleaseLumpJ:  0.10,
	}
}

// DefaultNRConfig returns a simple 5G NR profile: CONNECTED, the
// RRC_INACTIVE suspend state (context retained in the RAN, so resuming is
// nearly free — the feature that most changes the dormancy trade-off), and
// IDLE.
func DefaultNRConfig() ChainSpec {
	return ChainSpec{
		Name: "nr",
		Stable: []ChainState{
			{Name: "IDLE", PowerW: 0.10, PromoLatency: 180 * time.Millisecond, PromoLumpJ: 0.45},
			{Name: "INACTIVE", PowerW: 0.35, Dwell: 7 * time.Second, PromoLatency: 25 * time.Millisecond, PromoLumpJ: 0.02},
			{Name: "CONNECTED", PowerW: 1.10, Dwell: 800 * time.Millisecond},
		},
		TxPowerW:      1.75,
		PromoPowerW:   1.30,
		ReleaseDelay:  100 * time.Millisecond,
		ReleasePowerW: 0.90,
		ReleaseLumpJ:  0.05,
	}
}

// Profile names the backend.
func (c ChainSpec) Profile() string { return c.Name }

// NumStates is one past the highest state index: len(Stable) stable states,
// then PROMO and RELEASING.
func (c ChainSpec) NumStates() int { return len(c.Stable) + 3 }

// active, promo and releasing are the spec's state indices.
func (c ChainSpec) active() State    { return State(len(c.Stable)) }
func (c ChainSpec) promo() State     { return State(len(c.Stable) + 1) }
func (c ChainSpec) releasing() State { return State(len(c.Stable) + 2) }

// StateName labels a state of this chain.
func (c ChainSpec) StateName(s State) string {
	switch {
	case s >= 1 && int(s) <= len(c.Stable):
		return c.Stable[s-1].Name
	case s == c.promo():
		return "PROMO"
	case s == c.releasing():
		return "RELEASING"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Validate checks that the chain is physically sensible and fits the fixed
// accounting width.
func (c ChainSpec) Validate() error {
	switch {
	case c.Name == "":
		return errors.New("rrc: chain spec needs a profile name")
	case len(c.Stable) < 2:
		return errors.New("rrc: chain needs at least an idle and an active state")
	case c.NumStates() > MaxStates:
		return fmt.Errorf("rrc: chain %q needs %d state slots, max %d", c.Name, c.NumStates(), MaxStates)
	case c.ReleaseDelay < 0 || c.ReleaseLumpJ < 0 || c.ReleasePowerW < 0:
		return errors.New("rrc: release parameters must be non-negative")
	case c.TxPowerW < c.Stable[len(c.Stable)-1].PowerW:
		return errors.New("rrc: transmit power below active idle power")
	}
	for i, st := range c.Stable {
		if st.Name == "" {
			return fmt.Errorf("rrc: chain %q stable state %d has no name", c.Name, i)
		}
		if st.PowerW < 0 || st.PromoLumpJ < 0 {
			return fmt.Errorf("rrc: chain %q state %s has negative power or lump", c.Name, st.Name)
		}
		if i > 0 && st.PowerW < c.Stable[i-1].PowerW {
			return fmt.Errorf("rrc: chain %q powers must be non-decreasing toward active (%s < %s)",
				c.Name, st.Name, c.Stable[i-1].Name)
		}
		if i > 0 && st.Dwell <= 0 {
			return fmt.Errorf("rrc: chain %q state %s needs a positive dwell", c.Name, st.Name)
		}
		if i < len(c.Stable)-1 && st.PromoLatency <= 0 {
			return fmt.Errorf("rrc: chain %q state %s needs a positive promotion latency", c.Name, st.Name)
		}
	}
	return nil
}

// Tail describes the chain's demotion ladder in backend-neutral form.
func (c ChainSpec) Tail() TailProfile {
	n := len(c.Stable)
	act := c.Stable[n-1]
	tp := TailProfile{
		Profile:       c.Name,
		Active:        TailStage{State: c.active(), Name: act.Name, PowerW: act.PowerW, Dwell: act.Dwell},
		Stages:        make([]TailStage, 0, n-1),
		PromoPowerW:   c.PromoPowerW,
		Releasing:     c.releasing(),
		ReleaseDelay:  c.ReleaseDelay,
		ReleasePowerW: c.ReleasePowerW,
		ReleaseLumpJ:  c.ReleaseLumpJ,
	}
	for i := n - 2; i >= 0; i-- {
		st := c.Stable[i]
		tp.Stages = append(tp.Stages, TailStage{
			State:        State(i + 1),
			Name:         st.Name,
			PowerW:       st.PowerW,
			Dwell:        st.Dwell,
			PromoLatency: st.PromoLatency,
			PromoLumpJ:   st.PromoLumpJ,
		})
	}
	return tp
}

// New builds a chain radio on the given clock, in the terminal idle state.
func (c ChainSpec) New(clock *simtime.Clock, opts ...Option) (RadioModel, error) {
	if clock == nil {
		return nil, errors.New("rrc: nil clock")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cm := &chainMachine{
		clock:      clock,
		spec:       c,
		active:     c.active(),
		promo:      c.promo(),
		releasing:  c.releasing(),
		state:      StateIdle,
		lastChange: clock.Now(),
	}
	for i := 1; i < cm.spec.NumStates(); i++ {
		cm.names[i] = c.StateName(State(i))
	}
	cm.demoteTimer = clock.NewTimer(cm.demoteExpired)
	cm.promoFinishFn = cm.promoFinish
	cm.releaseDoneFn = cm.releaseDone
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	cm.recordTrace = o.recordTrace
	cm.onTransition = o.onTransition
	return cm, nil
}

var (
	_ ModelSpec  = ChainSpec{}
	_ RadioModel = (*chainMachine)(nil)
)

// chainMachine executes a ChainSpec. It mirrors the UMTS Machine's event
// discipline exactly; see the package comment above.
type chainMachine struct {
	clock *simtime.Clock
	spec  ChainSpec

	active    State
	promo     State
	releasing State
	// names caches the per-state labels so EnergyByState and error paths
	// never rebuild strings.
	names [MaxStates]string

	state        State
	transferring int

	// demoteTimer is the single inactivity timer: only the current stable
	// state's dwell can be pending, so one lazily re-armed timer covers the
	// whole ladder.
	demoteTimer   *simtime.Timer
	promoFinishFn func()
	releaseDoneFn func()

	waiters      []func()
	spareWaiters []func()

	lastChange    time.Duration
	energyJ       float64
	timeInState   [MaxStates]time.Duration
	energyInState [MaxStates]float64

	history      []Transition
	recordTrace  bool
	onTransition func(Transition)

	// holdSince/holdTime track time with channels committed (active state
	// plus promotions), the capacity model's service time.
	holdSince time.Duration
	holdTime  time.Duration
}

// Profile names the backend.
func (cm *chainMachine) Profile() string { return cm.spec.Name }

// NumStates is one past the highest state index this chain uses.
func (cm *chainMachine) NumStates() int { return cm.spec.NumStates() }

// StateName labels a state from the cached table.
func (cm *chainMachine) StateName(s State) string {
	if s >= 1 && int(s) < cm.spec.NumStates() {
		return cm.names[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// StableState reports whether s is one of the chain's stable states.
func (cm *chainMachine) StableState(s State) bool { return s >= 1 && s <= cm.active }

// State returns the current state.
func (cm *chainMachine) State() State { return cm.state }

// Transferring reports whether user data is actively moving.
func (cm *chainMachine) Transferring() bool { return cm.transferring > 0 }

// RadioPower returns the instantaneous power draw in watts.
func (cm *chainMachine) RadioPower() float64 {
	switch {
	case cm.state == cm.active:
		if cm.transferring > 0 {
			return cm.spec.TxPowerW
		}
		return cm.spec.Stable[cm.state-1].PowerW
	case cm.state >= 1 && cm.state < cm.active:
		return cm.spec.Stable[cm.state-1].PowerW
	case cm.state == cm.promo:
		return cm.spec.PromoPowerW
	case cm.state == cm.releasing:
		return cm.spec.ReleasePowerW
	default:
		return 0
	}
}

// EnergyJ returns total radio energy so far, integrated exactly to now.
func (cm *chainMachine) EnergyJ() float64 {
	return cm.energyJ + cm.RadioPower()*sinceSeconds(cm.lastChange, cm.clock.Now())
}

// EnergyVec attributes EnergyJ to states without allocating.
func (cm *chainMachine) EnergyVec() [MaxStates]float64 {
	out := cm.energyInState
	out[cm.state] += cm.RadioPower() * sinceSeconds(cm.lastChange, cm.clock.Now())
	return out
}

// EnergyByState is the map form of EnergyVec, keyed by the cached names.
func (cm *chainMachine) EnergyByState() map[string]float64 {
	out := make(map[string]float64, cm.spec.NumStates())
	for i, e := range cm.energyInState {
		if e != 0 {
			out[cm.names[i]] = e
		}
	}
	out[cm.names[cm.state]] += cm.RadioPower() * sinceSeconds(cm.lastChange, cm.clock.Now())
	return out
}

// TimeIn returns the cumulative time spent in state s, up to now.
func (cm *chainMachine) TimeIn(s State) time.Duration {
	if s < 0 || int(s) >= MaxStates {
		return 0
	}
	d := cm.timeInState[s]
	if cm.state == s {
		d += cm.clock.Now() - cm.lastChange
	}
	return d
}

// Residency copies the cumulative residency of every visited state.
func (cm *chainMachine) Residency() map[State]time.Duration {
	out := make(map[State]time.Duration, cm.spec.NumStates())
	for i, d := range cm.timeInState {
		if d != 0 {
			out[State(i)] = d
		}
	}
	out[cm.state] += cm.clock.Now() - cm.lastChange
	return out
}

// HoldTime is the cumulative time with channels committed to this radio.
func (cm *chainMachine) HoldTime() time.Duration {
	d := cm.holdTime
	if cm.holdingActive() {
		d += cm.clock.Now() - cm.holdSince
	}
	return d
}

// NextDemotion reports the pending demotion deadline, if armed.
func (cm *chainMachine) NextDemotion() (time.Duration, bool) {
	return cm.demoteTimer.Deadline(), cm.demoteTimer.Armed()
}

// RequestActive asks for the active state and calls ready once reached.
func (cm *chainMachine) RequestActive(ready func()) {
	if ready == nil {
		return
	}
	switch {
	case cm.state == cm.active:
		cm.clock.Defer(0, ready)
	case cm.state == cm.promo || cm.state == cm.releasing:
		// Queue; promotion completion (or the release completion's fresh
		// promotion) will run it.
		cm.waiters = append(cm.waiters, ready)
	default: // a stable state below active
		cm.waiters = append(cm.waiters, ready)
		cm.demoteTimer.Disarm()
		cm.startPromotionFrom(cm.state)
	}
}

// startPromotionFrom begins a promotion from stable state s, charging its
// lump signaling energy to the PROMO slot.
func (cm *chainMachine) startPromotionFrom(s State) {
	st := &cm.spec.Stable[s-1]
	cm.energyJ += st.PromoLumpJ
	cm.energyInState[cm.promo] += st.PromoLumpJ
	cm.setState(cm.promo)
	cm.clock.Defer(st.PromoLatency, cm.promoFinishFn)
}

// promoFinish completes a pending promotion; queued waiters run in arrival
// order on the same double-buffered backing array as the UMTS machine.
func (cm *chainMachine) promoFinish() {
	cm.setState(cm.active)
	cm.armDemote(cm.active)
	waiters := cm.waiters
	cm.waiters = cm.spareWaiters[:0]
	for _, w := range waiters {
		w()
	}
	for i := range waiters {
		waiters[i] = nil
	}
	cm.spareWaiters = waiters[:0]
}

// armDemote arms the inactivity timer with stable state s's dwell.
func (cm *chainMachine) armDemote(s State) {
	cm.demoteTimer.Arm(cm.spec.Stable[s-1].Dwell)
}

// demoteExpired steps the radio one rung down the ladder and re-arms for
// the next rung (unless the terminal stage was reached).
func (cm *chainMachine) demoteExpired() {
	if cm.state > cm.active || cm.state == StateIdle {
		return
	}
	if cm.state == cm.active && cm.transferring > 0 {
		return
	}
	next := cm.state - 1
	cm.setState(next)
	if next > StateIdle {
		cm.armDemote(next)
	}
}

// BeginTransfer marks the start of a user-data transfer (active only).
func (cm *chainMachine) BeginTransfer() error {
	if cm.state != cm.active {
		return fmt.Errorf("rrc: begin transfer in %v, need %s", cm.StateName(cm.state), cm.names[cm.active])
	}
	cm.accrue()
	cm.transferring++
	cm.demoteTimer.Disarm()
	return nil
}

// EndTransfer marks the end of a transfer; the last one arms demotion.
func (cm *chainMachine) EndTransfer() error {
	if cm.state != cm.active || cm.transferring == 0 {
		return fmt.Errorf("rrc: end transfer in %v with %d active", cm.StateName(cm.state), cm.transferring)
	}
	cm.accrue()
	cm.transferring--
	if cm.transferring == 0 {
		cm.armDemote(cm.active)
	}
	return nil
}

// SharedReady reports false: DRX chains have no FACH-like shared channel.
func (cm *chainMachine) SharedReady() bool { return false }

// TouchShared is a no-op on chain backends.
func (cm *chainMachine) TouchShared() {}

// ForceIdle releases the connection early (fast dormancy), with the same
// busy rules as the UMTS machine.
func (cm *chainMachine) ForceIdle() error {
	if cm.state == StateIdle || cm.state == cm.releasing {
		return nil
	}
	if cm.state == cm.promo {
		return ErrBusy
	}
	if cm.transferring > 0 || len(cm.waiters) > 0 {
		return ErrBusy
	}
	cm.demoteTimer.Disarm()
	cm.energyJ += cm.spec.ReleaseLumpJ
	cm.energyInState[cm.releasing] += cm.spec.ReleaseLumpJ
	cm.setState(cm.releasing)
	cm.clock.Defer(cm.spec.ReleaseDelay, cm.releaseDoneFn)
	return nil
}

func (cm *chainMachine) releaseDone() {
	if cm.state != cm.releasing {
		return
	}
	cm.setState(StateIdle)
	if len(cm.waiters) > 0 {
		cm.startPromotionFrom(StateIdle)
	}
}

// Tail describes this chain's demotion ladder.
func (cm *chainMachine) Tail() TailProfile { return cm.spec.Tail() }

// Reset returns the chain to a fresh terminal-idle radio at the clock's
// current time. The owning session must Reset the shared clock first.
func (cm *chainMachine) Reset() {
	cm.state = StateIdle
	cm.transferring = 0
	cm.demoteTimer.Disarm()
	cm.waiters = cm.waiters[:0]
	cm.lastChange = cm.clock.Now()
	cm.energyJ = 0
	cm.timeInState = [MaxStates]time.Duration{}
	cm.energyInState = [MaxStates]float64{}
	cm.history = cm.history[:0]
	cm.holdSince = 0
	cm.holdTime = 0
}

// History returns recorded transitions (WithTransitionTrace only); a copy.
func (cm *chainMachine) History() []Transition {
	out := make([]Transition, len(cm.history))
	copy(out, cm.history)
	return out
}

// holdingActive reports whether channels are committed (active or PROMO).
func (cm *chainMachine) holdingActive() bool {
	return cm.state == cm.active || cm.state == cm.promo
}

func (cm *chainMachine) setState(next State) {
	if next == cm.state {
		return
	}
	wasHolding := cm.holdingActive()
	cm.accrue()
	tr := Transition{At: cm.clock.Now(), From: cm.state, To: next}
	cm.state = next
	nowHolding := cm.holdingActive()
	switch {
	case !wasHolding && nowHolding:
		cm.holdSince = cm.clock.Now()
	case wasHolding && !nowHolding:
		cm.holdTime += cm.clock.Now() - cm.holdSince
	}
	if cm.recordTrace {
		cm.history = append(cm.history, tr)
	}
	if cm.onTransition != nil {
		cm.onTransition(tr)
	}
}

// accrue integrates energy and residency up to now at the current power.
func (cm *chainMachine) accrue() {
	now := cm.clock.Now()
	if now == cm.lastChange {
		return
	}
	e := cm.RadioPower() * sinceSeconds(cm.lastChange, now)
	cm.energyJ += e
	cm.energyInState[cm.state] += e
	cm.timeInState[cm.state] += now - cm.lastChange
	cm.lastChange = now
}
