package rrc

import (
	"errors"
	"math"
	"testing"
	"time"

	"eabrowse/internal/simtime"
)

func newTestMachine(t *testing.T, opts ...Option) (*simtime.Clock, *Machine) {
	t.Helper()
	clock := simtime.NewClock()
	m, err := NewMachine(clock, DefaultConfig(), opts...)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return clock, m
}

func TestNewMachineStartsIdle(t *testing.T) {
	_, m := newTestMachine(t)
	if m.State() != StateIdle {
		t.Fatalf("State = %v, want IDLE", m.State())
	}
	if m.Transferring() {
		t.Fatal("new machine reports transferring")
	}
}

func TestNewMachineNilClock(t *testing.T) {
	if _, err := NewMachine(nil, DefaultConfig()); err == nil {
		t.Fatal("NewMachine(nil clock) succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero T1", func(c *Config) { c.T1 = 0 }},
		{"zero T2", func(c *Config) { c.T2 = 0 }},
		{"zero promo", func(c *Config) { c.PromoIdleToDCH = 0 }},
		{"negative release delay", func(c *Config) { c.ReleaseDelay = -time.Second }},
		{"FACH below idle", func(c *Config) { c.PowerFACH = 0.01 }},
		{"DCH below FACH", func(c *Config) { c.PowerDCHIdle = 0.2 }},
		{"tx below DCH idle", func(c *Config) { c.PowerDCHTx = 0.5 }},
		{"negative release energy", func(c *Config) { c.ReleaseSignalEnergy = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate succeeded, want error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestPromotionFromIdle(t *testing.T) {
	clock, m := newTestMachine(t)
	ready := false
	m.RequestDCH(func() { ready = true })
	if m.State() != StatePromoIdleDCH {
		t.Fatalf("State = %v, want promo", m.State())
	}
	clock.Run()
	if !ready {
		t.Fatal("DCH callback never ran")
	}
	// Promotion latency consumed, then T1+T2 demotions happened during Run.
	if m.State() != StateIdle {
		t.Fatalf("final State = %v, want IDLE after timers", m.State())
	}
}

func TestPromotionLatency(t *testing.T) {
	clock, m := newTestMachine(t)
	var readyAt time.Duration
	m.RequestDCH(func() { readyAt = clock.Now() })
	clock.RunUntil(m.Config().PromoIdleToDCH)
	if readyAt != m.Config().PromoIdleToDCH {
		t.Fatalf("DCH ready at %v, want %v", readyAt, m.Config().PromoIdleToDCH)
	}
}

func TestFACHPromotionFaster(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {})
	clock.RunUntil(m.Config().PromoIdleToDCH) // now DCH
	clock.RunFor(m.Config().T1)               // demoted to FACH
	if m.State() != StateFACH {
		t.Fatalf("State = %v, want FACH after T1", m.State())
	}
	start := clock.Now()
	var readyAt time.Duration
	m.RequestDCH(func() { readyAt = clock.Now() })
	clock.RunFor(time.Second)
	if got := readyAt - start; got != m.Config().PromoFACHToDCH {
		t.Fatalf("FACH→DCH latency = %v, want %v", got, m.Config().PromoFACHToDCH)
	}
}

func TestTimerChain(t *testing.T) {
	clock, m := newTestMachine(t, WithTransitionTrace())
	m.RequestDCH(func() {
		if err := m.BeginTransfer(); err != nil {
			t.Fatalf("BeginTransfer: %v", err)
		}
		clock.After(time.Second, func() {
			if err := m.EndTransfer(); err != nil {
				t.Fatalf("EndTransfer: %v", err)
			}
		})
	})
	clock.Run()
	cfg := m.Config()
	// Expected: IDLE→promo at 0, promo→DCH at 1.75, transfer 1s,
	// DCH→FACH at 1.75+1+T1, FACH→IDLE T2 later.
	wantFACHAt := cfg.PromoIdleToDCH + time.Second + cfg.T1
	wantIdleAt := wantFACHAt + cfg.T2
	hist := m.History()
	var gotFACHAt, gotIdleAt time.Duration
	for _, tr := range hist {
		if tr.To == StateFACH {
			gotFACHAt = tr.At
		}
		if tr.To == StateIdle {
			gotIdleAt = tr.At
		}
	}
	if gotFACHAt != wantFACHAt {
		t.Fatalf("DCH→FACH at %v, want %v (history %v)", gotFACHAt, wantFACHAt, hist)
	}
	if gotIdleAt != wantIdleAt {
		t.Fatalf("FACH→IDLE at %v, want %v", gotIdleAt, wantIdleAt)
	}
}

func TestTransferResetsT1(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(time.Second, func() { mustEnd(t, m) })
	})
	clock.RunUntil(m.Config().PromoIdleToDCH + time.Second)
	// 3 s later (inside T1) a new transfer arrives and resets the timer.
	clock.RunFor(3 * time.Second)
	if m.State() != StateDCH {
		t.Fatalf("State = %v, want DCH before T1 expiry", m.State())
	}
	mustBegin(t, m)
	clock.RunFor(2 * time.Second)
	mustEnd(t, m)
	// Still DCH: T1 restarted at transfer end.
	clock.RunFor(m.Config().T1 - time.Second)
	if m.State() != StateDCH {
		t.Fatalf("State = %v, want DCH, T1 should have been reset", m.State())
	}
	clock.RunFor(2 * time.Second)
	if m.State() != StateFACH {
		t.Fatalf("State = %v, want FACH after reset T1 expiry", m.State())
	}
}

func TestBeginTransferOutsideDCHFails(t *testing.T) {
	_, m := newTestMachine(t)
	if err := m.BeginTransfer(); err == nil {
		t.Fatal("BeginTransfer in IDLE succeeded")
	}
}

func TestEndTransferWithoutBeginFails(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {})
	clock.RunUntil(m.Config().PromoIdleToDCH)
	if err := m.EndTransfer(); err == nil {
		t.Fatal("EndTransfer without Begin succeeded")
	}
}

func TestConcurrentTransfers(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {
		mustBegin(t, m)
		mustBegin(t, m)
		clock.After(time.Second, func() { mustEnd(t, m) })
		clock.After(2*time.Second, func() { mustEnd(t, m) })
	})
	clock.RunUntil(m.Config().PromoIdleToDCH + 1500*time.Millisecond)
	if !m.Transferring() {
		t.Fatal("radio idle while one transfer still active")
	}
	clock.RunFor(time.Second)
	if m.Transferring() {
		t.Fatal("radio transferring after both transfers ended")
	}
	// T1 armed only at the last EndTransfer (t=3.75s), so it expires at
	// 3.75s+T1; at 7.25s the radio must still be in DCH.
	clock.RunFor(3 * time.Second)
	if m.State() != StateDCH {
		t.Fatalf("State = %v, want DCH before T1", m.State())
	}
	clock.RunFor(time.Second)
	if m.State() != StateFACH {
		t.Fatalf("State = %v, want FACH after T1", m.State())
	}
}

func TestForceIdleFromFACH(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {})
	clock.RunUntil(m.Config().PromoIdleToDCH)
	clock.RunFor(m.Config().T1) // now FACH
	if err := m.ForceIdle(); err != nil {
		t.Fatalf("ForceIdle: %v", err)
	}
	if m.State() != StateReleasing {
		t.Fatalf("State = %v, want RELEASING", m.State())
	}
	clock.RunFor(m.Config().ReleaseDelay)
	if m.State() != StateIdle {
		t.Fatalf("State = %v, want IDLE after release", m.State())
	}
}

func TestForceIdleWhileTransferringFails(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() { mustBegin(t, m) })
	clock.RunUntil(m.Config().PromoIdleToDCH)
	if err := m.ForceIdle(); !errors.Is(err, ErrBusy) {
		t.Fatalf("ForceIdle during transfer = %v, want ErrBusy", err)
	}
}

func TestForceIdleWhilePromotingFails(t *testing.T) {
	_, m := newTestMachine(t)
	m.RequestDCH(func() {})
	if err := m.ForceIdle(); !errors.Is(err, ErrBusy) {
		t.Fatalf("ForceIdle during promo = %v, want ErrBusy", err)
	}
}

func TestForceIdleWhenIdleIsNoop(t *testing.T) {
	_, m := newTestMachine(t)
	if err := m.ForceIdle(); err != nil {
		t.Fatalf("ForceIdle when idle: %v", err)
	}
	if m.State() != StateIdle {
		t.Fatalf("State = %v, want IDLE", m.State())
	}
}

func TestForceIdleChargesReleaseEnergy(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {})
	clock.RunUntil(m.Config().PromoIdleToDCH)
	before := m.EnergyJ()
	if err := m.ForceIdle(); err != nil {
		t.Fatalf("ForceIdle: %v", err)
	}
	after := m.EnergyJ()
	if got := after - before; math.Abs(got-m.Config().ReleaseSignalEnergy) > 1e-9 {
		t.Fatalf("release lump energy = %v, want %v", got, m.Config().ReleaseSignalEnergy)
	}
}

func TestRequestDCHDuringRelease(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {})
	clock.RunUntil(m.Config().PromoIdleToDCH)
	if err := m.ForceIdle(); err != nil {
		t.Fatalf("ForceIdle: %v", err)
	}
	ready := false
	m.RequestDCH(func() { ready = true })
	clock.RunFor(m.Config().ReleaseDelay + m.Config().PromoIdleToDCH)
	if !ready {
		t.Fatal("DCH request queued during release never served")
	}
	if m.State() != StateDCH {
		t.Fatalf("State = %v, want DCH", m.State())
	}
}

func TestRadioPowerByState(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	if got := m.RadioPower(); got != cfg.PowerIdle {
		t.Fatalf("idle power = %v, want %v", got, cfg.PowerIdle)
	}
	m.RequestDCH(func() {})
	if got := m.RadioPower(); got != cfg.PowerPromo {
		t.Fatalf("promo power = %v, want %v", got, cfg.PowerPromo)
	}
	clock.RunUntil(cfg.PromoIdleToDCH)
	if got := m.RadioPower(); got != cfg.PowerDCHIdle {
		t.Fatalf("DCH idle power = %v, want %v", got, cfg.PowerDCHIdle)
	}
	mustBegin(t, m)
	if got := m.RadioPower(); got != cfg.PowerDCHTx {
		t.Fatalf("DCH tx power = %v, want %v", got, cfg.PowerDCHTx)
	}
	mustEnd(t, m)
	clock.RunFor(cfg.T1)
	if got := m.RadioPower(); got != cfg.PowerFACH {
		t.Fatalf("FACH power = %v, want %v", got, cfg.PowerFACH)
	}
}

func TestEnergyIntegrationExact(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(2*time.Second, func() { mustEnd(t, m) })
	})
	clock.Run() // promo, 2s tx, T1 in DCH, T2 in FACH, then idle forever
	clock.RunFor(10 * time.Second)
	want := cfg.PromoIdleSignalEnergy +
		cfg.PowerPromo*cfg.PromoIdleToDCH.Seconds() +
		cfg.PowerDCHTx*2 +
		cfg.PowerDCHIdle*cfg.T1.Seconds() +
		cfg.PowerFACH*cfg.T2.Seconds() +
		cfg.PowerIdle*10
	if got := m.EnergyJ(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("EnergyJ = %v, want %v", got, want)
	}
}

func TestTimeInAccounting(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(time.Second, func() { mustEnd(t, m) })
	})
	clock.Run()
	clock.RunFor(5 * time.Second)
	if got := m.TimeIn(StateDCH); got != time.Second+cfg.T1 {
		t.Fatalf("TimeIn(DCH) = %v, want %v", got, time.Second+cfg.T1)
	}
	if got := m.TimeIn(StateFACH); got != cfg.T2 {
		t.Fatalf("TimeIn(FACH) = %v, want %v", got, cfg.T2)
	}
	if got := m.TimeIn(StateIdle); got != 5*time.Second {
		t.Fatalf("TimeIn(IDLE) = %v, want 5s", got)
	}
}

func TestDCHHoldTime(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(time.Second, func() { mustEnd(t, m) })
	})
	clock.Run()
	// Holds during both promo and DCH until demotion to FACH.
	want := cfg.PromoIdleToDCH + time.Second + cfg.T1
	if got := m.DCHHoldTime(); got != want {
		t.Fatalf("DCHHoldTime = %v, want %v", got, want)
	}
}

func TestTransitionHook(t *testing.T) {
	clock := simtime.NewClock()
	var seen []State
	m, err := NewMachine(clock, DefaultConfig(), WithTransitionHook(func(tr Transition) {
		seen = append(seen, tr.To)
	}))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	m.RequestDCH(func() {})
	clock.Run()
	want := []State{StatePromoIdleDCH, StateDCH, StateFACH, StateIdle}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		give State
		want string
	}{
		{StateIdle, "IDLE"},
		{StateFACH, "FACH"},
		{StateDCH, "DCH"},
		{StateReleasing, "RELEASING"},
		{State(99), "State(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Fatalf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestStableStates(t *testing.T) {
	for _, s := range []State{StateIdle, StateFACH, StateDCH} {
		if !s.Stable() {
			t.Fatalf("%v not stable", s)
		}
	}
	for _, s := range []State{StatePromoIdleDCH, StatePromoFACHDCH, StateReleasing} {
		if s.Stable() {
			t.Fatalf("%v stable", s)
		}
	}
}

func TestRequestDCHNilCallback(t *testing.T) {
	_, m := newTestMachine(t)
	m.RequestDCH(nil) // must not panic or change state
	if m.State() != StateIdle {
		t.Fatalf("State = %v after nil request, want IDLE", m.State())
	}
}

func mustBegin(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.BeginTransfer(); err != nil {
		t.Fatalf("BeginTransfer: %v", err)
	}
}

func mustEnd(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.EndTransfer(); err != nil {
		t.Fatalf("EndTransfer: %v", err)
	}
}

func TestResidencySumsToElapsed(t *testing.T) {
	clock, m := newTestMachine(t)
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(2*time.Second, func() { mustEnd(t, m) })
	})
	clock.Run()
	clock.RunFor(7 * time.Second)
	res := m.Residency()
	var total time.Duration
	for _, d := range res {
		total += d
	}
	if total != clock.Now() {
		t.Fatalf("residency sums to %v, elapsed %v", total, clock.Now())
	}
	if res[StateDCH] == 0 || res[StateFACH] == 0 || res[StateIdle] == 0 {
		t.Fatalf("residency missing states: %v", res)
	}
	// The returned map is a copy.
	res[StateIdle] = 0
	if m.Residency()[StateIdle] == 0 {
		t.Fatal("Residency exposed internal state")
	}
}

func TestEnergyByStateSumsToTotal(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(2*time.Second, func() { mustEnd(t, m) })
	})
	clock.Run()
	clock.RunFor(10 * time.Second)
	byState := m.EnergyByState()
	var sum float64
	for _, j := range byState {
		if j < 0 {
			t.Fatalf("negative per-state energy: %v", byState)
		}
		sum += j
	}
	if got := m.EnergyJ(); math.Abs(sum-got) > 1e-9 {
		t.Fatalf("EnergyByState sums to %v, EnergyJ = %v", sum, got)
	}
	// The per-state split must carry the signaling lump in the promo bucket
	// and the exact per-state integrals everywhere else.
	wantPromo := cfg.PromoIdleSignalEnergy + cfg.PowerPromo*cfg.PromoIdleToDCH.Seconds()
	if got := byState[StatePromoIdleDCH.String()]; math.Abs(got-wantPromo) > 1e-9 {
		t.Fatalf("promo bucket = %v, want %v", got, wantPromo)
	}
	wantFACH := cfg.PowerFACH * cfg.T2.Seconds()
	if got := byState[StateFACH.String()]; math.Abs(got-wantFACH) > 1e-9 {
		t.Fatalf("FACH bucket = %v, want %v", got, wantFACH)
	}
}

func TestEnergyByStateIncludesCurrentPartial(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	clock.RunFor(4 * time.Second) // sits in IDLE, no transition yet
	want := cfg.PowerIdle * 4
	if got := m.EnergyByState()[StateIdle.String()]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("IDLE bucket mid-state = %v, want %v", got, want)
	}
}

func TestEnergyByStateChargesReleaseLump(t *testing.T) {
	clock, m := newTestMachine(t)
	cfg := m.Config()
	m.RequestDCH(func() {
		mustBegin(t, m)
		clock.After(time.Second, func() {
			mustEnd(t, m)
			// Release early from DCH, before the inactivity timers demote.
			if err := m.ForceIdle(); err != nil {
				t.Errorf("ForceIdle: %v", err)
			}
		})
	})
	clock.Run()
	if m.State() != StateIdle {
		t.Fatalf("expected IDLE after the release, got %v", m.State())
	}
	rel := m.EnergyByState()[StateReleasing.String()]
	wantMin := cfg.ReleaseSignalEnergy
	if rel < wantMin {
		t.Fatalf("RELEASING bucket = %v, want at least the %v signal lump", rel, wantMin)
	}
}
