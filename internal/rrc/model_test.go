package rrc

import (
	"math"
	"testing"
	"time"

	"eabrowse/internal/simtime"
)

// allSpecs returns every built-in backend spec, in registry order.
func allSpecs(t *testing.T) []ModelSpec {
	t.Helper()
	out := make([]ModelSpec, 0, len(Profiles()))
	for _, name := range Profiles() {
		spec, err := ProfileSpec(name)
		if err != nil {
			t.Fatalf("ProfileSpec(%q): %v", name, err)
		}
		if spec.Profile() != name {
			t.Fatalf("ProfileSpec(%q).Profile() = %q", name, spec.Profile())
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %q invalid: %v", name, err)
		}
		out = append(out, spec)
	}
	return out
}

func newModel(t *testing.T, spec ModelSpec) (*simtime.Clock, RadioModel) {
	t.Helper()
	clock := simtime.NewClock()
	m, err := spec.New(clock)
	if err != nil {
		t.Fatalf("%s: New: %v", spec.Profile(), err)
	}
	return clock, m
}

// transferOnce promotes, runs one d-long transfer, and returns to inactivity.
func transferOnce(t *testing.T, clock *simtime.Clock, m RadioModel, d time.Duration) {
	t.Helper()
	active := false
	m.RequestActive(func() { active = true })
	// Step, don't Run: draining the whole queue would also fire the
	// inactivity demotions and settle the radio back to idle.
	for !active && clock.Step() {
	}
	if !active {
		t.Fatalf("%s: RequestActive callback never ran", m.Profile())
	}
	if err := m.BeginTransfer(); err != nil {
		t.Fatalf("%s: BeginTransfer: %v", m.Profile(), err)
	}
	clock.RunFor(d)
	if err := m.EndTransfer(); err != nil {
		t.Fatalf("%s: EndTransfer: %v", m.Profile(), err)
	}
}

func TestProfileSpecUnknownNameListsValid(t *testing.T) {
	_, err := ProfileSpec("wimax")
	if err == nil {
		t.Fatal("ProfileSpec(wimax) succeeded")
	}
	want := `rrc: unknown radio profile "wimax" (have: lte, nr, umts)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

// TestConformanceEnergyMonotone drives each backend through a busy script
// and checks that EnergyJ never decreases and EnergyVec always sums to it.
func TestConformanceEnergyMonotone(t *testing.T) {
	for _, spec := range allSpecs(t) {
		t.Run(spec.Profile(), func(t *testing.T) {
			clock, m := newModel(t, spec)
			last := 0.0
			check := func(where string) {
				e := m.EnergyJ()
				if e < last-1e-12 {
					t.Fatalf("%s: energy decreased %v -> %v", where, last, e)
				}
				last = e
				sum := 0.0
				for _, v := range m.EnergyVec() {
					sum += v
				}
				if math.Abs(sum-e) > 1e-9*(1+e) {
					t.Fatalf("%s: EnergyVec sums to %v, EnergyJ %v", where, sum, e)
				}
				bySum := 0.0
				for _, v := range m.EnergyByState() {
					bySum += v
				}
				if math.Abs(bySum-e) > 1e-9*(1+e) {
					t.Fatalf("%s: EnergyByState sums to %v, EnergyJ %v", where, bySum, e)
				}
			}
			check("fresh")
			clock.RunFor(2 * time.Second)
			check("idle wait")
			transferOnce(t, clock, m, 700*time.Millisecond)
			check("first transfer")
			tail := m.Tail()
			clock.RunFor(tail.TotalDwell() / 2)
			check("mid tail")
			transferOnce(t, clock, m, 50*time.Millisecond)
			check("second transfer")
			clock.RunFor(tail.TotalDwell() + time.Second)
			check("full tail")
			if err := m.ForceIdle(); err != nil {
				t.Fatalf("ForceIdle after settling: %v", err)
			}
			clock.Run()
			check("after force idle")
		})
	}
}

// TestConformanceReset checks Reset restores a fresh radio: a reset model
// must reproduce a fresh model's energy trace exactly.
func TestConformanceReset(t *testing.T) {
	script := func(clock *simtime.Clock, m RadioModel) []float64 {
		var samples []float64
		transferOnce(t, clock, m, 300*time.Millisecond)
		samples = append(samples, m.EnergyJ())
		clock.RunFor(3 * time.Second)
		samples = append(samples, m.EnergyJ())
		transferOnce(t, clock, m, 90*time.Millisecond)
		tail := m.Tail()
		clock.RunFor(tail.TotalDwell() + 500*time.Millisecond)
		samples = append(samples, m.EnergyJ(), m.RadioPower(), float64(m.State()))
		return samples
	}
	for _, spec := range allSpecs(t) {
		t.Run(spec.Profile(), func(t *testing.T) {
			clock, m := newModel(t, spec)
			fresh := script(clock, m)

			clock.Reset()
			m.Reset()
			if m.State() != StateIdle {
				t.Fatalf("state after Reset = %v", m.State())
			}
			if e := m.EnergyJ(); e != 0 {
				t.Fatalf("EnergyJ after Reset = %v", e)
			}
			if h := m.HoldTime(); h != 0 {
				t.Fatalf("HoldTime after Reset = %v", h)
			}
			if len(m.Residency()) != 1 {
				// Only the zero-duration current state entry.
				t.Fatalf("Residency after Reset = %v", m.Residency())
			}
			if _, armed := m.NextDemotion(); armed {
				t.Fatal("demotion timer still armed after Reset")
			}
			again := script(clock, m)
			if len(fresh) != len(again) {
				t.Fatalf("sample counts differ: %d vs %d", len(fresh), len(again))
			}
			for i := range fresh {
				if fresh[i] != again[i] {
					t.Fatalf("sample %d differs after Reset: %v vs %v", i, fresh[i], again[i])
				}
			}
		})
	}
}

// TestConformanceTransferInvariants checks the BeginTransfer/EndTransfer/
// ForceIdle/StableState contract on every backend.
func TestConformanceTransferInvariants(t *testing.T) {
	for _, spec := range allSpecs(t) {
		t.Run(spec.Profile(), func(t *testing.T) {
			clock, m := newModel(t, spec)
			tail := m.Tail()

			if !m.StableState(m.State()) || m.State() != StateIdle {
				t.Fatalf("fresh radio in %v", m.State())
			}
			if err := m.BeginTransfer(); err == nil {
				t.Fatal("BeginTransfer succeeded outside the active state")
			}
			if err := m.ForceIdle(); err != nil {
				t.Fatalf("ForceIdle when idle: %v", err)
			}

			m.RequestActive(func() {})
			if m.StableState(m.State()) {
				t.Fatalf("promotion state %v reported stable", m.State())
			}
			if err := m.ForceIdle(); err != ErrBusy {
				t.Fatalf("ForceIdle mid-promotion = %v, want ErrBusy", err)
			}
			for m.State() != tail.Active.State && clock.Step() {
			}
			if m.State() != tail.Active.State || !m.StableState(m.State()) {
				t.Fatalf("after promotion in %v, want active %v", m.State(), tail.Active.State)
			}
			if _, armed := m.NextDemotion(); !armed {
				t.Fatal("no demotion armed in idle active state")
			}

			if err := m.BeginTransfer(); err != nil {
				t.Fatalf("BeginTransfer: %v", err)
			}
			if !m.Transferring() {
				t.Fatal("Transferring false during transfer")
			}
			if _, armed := m.NextDemotion(); armed {
				t.Fatal("demotion armed during transfer")
			}
			if err := m.ForceIdle(); err != ErrBusy {
				t.Fatalf("ForceIdle mid-transfer = %v, want ErrBusy", err)
			}
			clock.RunFor(200 * time.Millisecond)
			if err := m.EndTransfer(); err != nil {
				t.Fatalf("EndTransfer: %v", err)
			}
			if err := m.EndTransfer(); err == nil {
				t.Fatal("second EndTransfer succeeded")
			}
			at, armed := m.NextDemotion()
			if !armed {
				t.Fatal("demotion not re-armed after last transfer")
			}
			if want := clock.Now() + tail.Active.Dwell; at != want {
				t.Fatalf("demotion deadline %v, want %v", at, want)
			}

			// Walk the whole ladder: the radio must settle in the terminal
			// stage, visiting each stage for exactly its dwell.
			clock.RunFor(tail.TotalDwell() + time.Second)
			if m.State() != tail.Terminal().State {
				t.Fatalf("settled in %v, want terminal %v", m.State(), tail.Terminal().State)
			}
			for i := 0; i < tail.NumStages()-1; i++ {
				st := tail.Stage(i)
				got := m.TimeIn(st.State)
				if got < st.Dwell {
					t.Fatalf("stage %s residency %v < dwell %v", st.Name, got, st.Dwell)
				}
			}
			if hold := m.HoldTime(); hold <= 0 {
				t.Fatal("HoldTime is zero after holding the active state")
			}
		})
	}
}

// TestConformanceTailMatchesMachine checks the closed-form TailProfile
// against the event-driven machine: energy over the settle-out window after
// a transfer must equal the sum of stage dwell x power plus terminal power
// for the remainder.
func TestConformanceTailMatchesMachine(t *testing.T) {
	const extra = 5 * time.Second
	for _, spec := range allSpecs(t) {
		t.Run(spec.Profile(), func(t *testing.T) {
			clock, m := newModel(t, spec)
			tail := m.Tail()
			transferOnce(t, clock, m, time.Second)
			before := m.EnergyJ()
			clock.RunFor(tail.TotalDwell() + extra)
			got := m.EnergyJ() - before

			want := 0.0
			for i := 0; i < tail.NumStages(); i++ {
				st := tail.Stage(i)
				want += st.PowerW * st.Dwell.Seconds()
			}
			want += tail.Terminal().PowerW * extra.Seconds()
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("tail energy %v, closed form %v", got, want)
			}
		})
	}
}

// TestConformanceTailShape sanity-checks every Tail description against its
// spec's naming and indexing.
func TestConformanceTailShape(t *testing.T) {
	for _, spec := range allSpecs(t) {
		t.Run(spec.Profile(), func(t *testing.T) {
			tail := spec.Tail()
			if tail.Profile != spec.Profile() {
				t.Fatalf("tail profile %q, spec %q", tail.Profile, spec.Profile())
			}
			if got := tail.StageIndexOf(tail.Active.State); got != 0 {
				t.Fatalf("StageIndexOf(active) = %d", got)
			}
			if tail.Terminal().State != StateIdle {
				t.Fatalf("terminal state %v, want %v", tail.Terminal().State, StateIdle)
			}
			if tail.Terminal().Dwell != 0 {
				t.Fatalf("terminal dwell %v, want 0", tail.Terminal().Dwell)
			}
			if got := tail.StageIndexOf(tail.Releasing); got != -1 {
				t.Fatalf("StageIndexOf(releasing) = %d, want -1", got)
			}
			for i := 0; i < tail.NumStages(); i++ {
				st := tail.Stage(i)
				if got := spec.StateName(st.State); got != st.Name {
					t.Fatalf("stage %d name %q, StateName %q", i, st.Name, got)
				}
				if got := tail.StageIndexOf(st.State); got != i {
					t.Fatalf("StageIndexOf(%s) = %d, want %d", st.Name, got, i)
				}
				if i > 0 && st.PowerW > tail.Stage(i-1).PowerW {
					t.Fatalf("power increases down the tail at stage %d", i)
				}
				if i > 0 && st.PromoLatency <= 0 {
					t.Fatalf("stage %s has no promotion latency", st.Name)
				}
			}
			if spec.NumStates() > MaxStates {
				t.Fatalf("NumStates %d exceeds MaxStates", spec.NumStates())
			}
		})
	}
}

// TestUMTSInterfaceBitIdentity drives the same scripted workload through a
// *Machine directly (pre-refactor surface) and through the RadioModel
// interface, asserting bit-identical energy, residency and state at every
// step: the interface extraction adds nothing to the UMTS numbers.
func TestUMTSInterfaceBitIdentity(t *testing.T) {
	type step func(clock *simtime.Clock, direct *Machine, iface RadioModel)
	run := func(d time.Duration) step {
		return func(clock *simtime.Clock, _ *Machine, _ RadioModel) { clock.RunFor(d) }
	}
	script := []step{
		run(1 * time.Second),
		func(clock *simtime.Clock, direct *Machine, iface RadioModel) {
			direct.RequestDCH(func() {})
			iface.RequestActive(func() {})
			for (direct.State() != StateDCH || iface.State() != StateDCH) && clock.Step() {
			}
		},
		func(_ *simtime.Clock, direct *Machine, iface RadioModel) {
			if err := direct.BeginTransfer(); err != nil {
				t.Fatal(err)
			}
			if err := iface.BeginTransfer(); err != nil {
				t.Fatal(err)
			}
		},
		run(800 * time.Millisecond),
		func(_ *simtime.Clock, direct *Machine, iface RadioModel) {
			if err := direct.EndTransfer(); err != nil {
				t.Fatal(err)
			}
			if err := iface.EndTransfer(); err != nil {
				t.Fatal(err)
			}
		},
		run(2 * time.Second),
		func(_ *simtime.Clock, direct *Machine, iface RadioModel) {
			direct.TouchFACH()
			iface.TouchShared()
		},
		run(25 * time.Second),
		func(_ *simtime.Clock, direct *Machine, iface RadioModel) {
			_ = direct.ForceIdle()
			_ = iface.ForceIdle()
		},
		run(3 * time.Second),
	}

	clock := simtime.NewClock()
	direct, err := NewMachine(clock, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	iface, err := DefaultConfig().New(clock)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range script {
		s(clock, direct, iface)
		if direct.EnergyJ() != iface.EnergyJ() {
			t.Fatalf("step %d: EnergyJ %v vs %v", i, direct.EnergyJ(), iface.EnergyJ())
		}
		if direct.State() != iface.State() {
			t.Fatalf("step %d: state %v vs %v", i, direct.State(), iface.State())
		}
		dv, iv := direct.EnergyVec(), iface.EnergyVec()
		if dv != iv {
			t.Fatalf("step %d: EnergyVec %v vs %v", i, dv, iv)
		}
		if direct.DCHHoldTime() != iface.HoldTime() {
			t.Fatalf("step %d: hold time %v vs %v", i, direct.DCHHoldTime(), iface.HoldTime())
		}
	}
}

// TestChainSpecValidate exercises the chain validation errors.
func TestChainSpecValidate(t *testing.T) {
	base := DefaultLTEConfig()

	bad := base
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("nameless chain validated")
	}

	bad = base
	bad.Stable = bad.Stable[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("single-state chain validated")
	}

	bad = base
	bad.Stable = make([]ChainState, len(base.Stable))
	copy(bad.Stable, base.Stable)
	bad.Stable[2].Dwell = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero mid-chain dwell validated")
	}

	bad = base
	bad.Stable = make([]ChainState, len(base.Stable))
	copy(bad.Stable, base.Stable)
	bad.Stable[1].PowerW = 2.0 // above DRX_SHORT: ordering broken
	if err := bad.Validate(); err == nil {
		t.Fatal("non-monotone powers validated")
	}

	bad = base
	bad.TxPowerW = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("tx below active idle power validated")
	}

	bad = base
	six := base.Stable[0]
	bad.Stable = append([]ChainState{six, six, six}, base.Stable...)
	bad.Stable[0].Dwell = 0
	for i := 1; i < len(bad.Stable); i++ {
		if bad.Stable[i].Dwell == 0 {
			bad.Stable[i].Dwell = time.Second
		}
	}
	if bad.NumStates() <= MaxStates {
		t.Fatalf("test chain should exceed MaxStates, has %d", bad.NumStates())
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("over-wide chain validated")
	}
}

// TestChainQueuedWaitersDuringRelease checks the release→re-promotion path:
// a RequestActive while RELEASING must queue and promote from idle after
// the release completes, charging the idle promotion lump.
func TestChainQueuedWaitersDuringRelease(t *testing.T) {
	for _, name := range []string{"lte", "nr"} {
		t.Run(name, func(t *testing.T) {
			spec, err := ProfileSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			clock, m := newModel(t, spec)
			transferOnce(t, clock, m, 100*time.Millisecond)
			clock.RunFor(100 * time.Millisecond) // still mid-tail, not yet idle
			if err := m.ForceIdle(); err != nil {
				t.Fatalf("ForceIdle: %v", err)
			}
			if m.State() != m.Tail().Releasing {
				t.Fatalf("state %v, want releasing", m.State())
			}
			ready := false
			m.RequestActive(func() { ready = true })
			for !ready && clock.Step() {
			}
			if !ready {
				t.Fatal("waiter queued during release never ran")
			}
			tail := m.Tail()
			if m.State() != tail.Active.State {
				t.Fatalf("state %v after release+promotion", m.State())
			}
		})
	}
}
