// Package rrc implements the UMTS Radio Resource Control state machine the
// paper's energy model is built on (Section 2.1): the IDLE, FACH and DCH
// states, the inactivity timers T1 (DCH→FACH, 4 s) and T2 (FACH→IDLE, 15 s),
// the promotion procedures with their latency and energy cost, and the fast
// dormancy path ("state switch" in Section 4.4) that lets the application
// layer force an early release of the signaling connection.
//
// Energy is integrated exactly (piecewise-constant power between state
// changes), so the per-state powers of Table 5 translate directly into
// Joules; the sampling-based meter in internal/energy exists only to
// reproduce the paper's 0.25 s measurement traces (Fig. 1 and Fig. 9).
package rrc

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/simtime"
)

// State is an RRC state of the smartphone radio, including the transient
// promotion/release states the radio passes through between the three
// stable states of the paper.
type State int

const (
	// StateIdle: no signaling connection; near-zero radio power.
	StateIdle State = iota + 1
	// StateFACH: shared channel only; low power, very low throughput.
	StateFACH
	// StateDCH: dedicated channels; high power, full throughput.
	StateDCH
	// StatePromoIdleDCH: establishing a signaling connection and acquiring
	// dedicated channels from IDLE (tens of control messages, >1 s).
	StatePromoIdleDCH
	// StatePromoFACHDCH: acquiring dedicated channels from FACH (signaling
	// connection already exists, so faster than from IDLE).
	StatePromoFACHDCH
	// StateReleasing: tearing down the signaling connection after a fast
	// dormancy request.
	StateReleasing
)

// NumStates is one past the highest State value; arrays indexed by State use
// this length.
const NumStates = int(StateReleasing) + 1

// stateSlots sizes the fixed per-state accounting arrays.
const stateSlots = NumStates

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "IDLE"
	case StateFACH:
		return "FACH"
	case StateDCH:
		return "DCH"
	case StatePromoIdleDCH:
		return "PROMO(IDLE→DCH)"
	case StatePromoFACHDCH:
		return "PROMO(FACH→DCH)"
	case StateReleasing:
		return "RELEASING"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Stable reports whether s is one of the three stable RRC states.
func (s State) Stable() bool {
	return s == StateIdle || s == StateFACH || s == StateDCH
}

// Config holds the timer, latency and power parameters of the radio model.
//
// The stable-state powers come straight from Table 5 of the paper (they
// include display and system-maintenance power, as measured). The promotion
// and release parameters are calibrated so that the "intuitive approach"
// experiment of Section 3.1 reproduces the paper's Fig. 3: switching to IDLE
// after every transfer only pays off when the next transfer is more than
// about 9 seconds away.
type Config struct {
	// T1 is the DCH inactivity timer (dedicated-channel release). Paper: 4 s.
	T1 time.Duration
	// T2 is the FACH inactivity timer (signaling-connection release).
	// Paper: 15 s.
	T2 time.Duration
	// PromoIdleToDCH is the latency of establishing a signaling connection
	// and dedicated channels from IDLE. Paper: "more than one second";
	// the intuitive-approach measurement implies ≈1.75 s of extra delay.
	PromoIdleToDCH time.Duration
	// PromoFACHToDCH is the latency of acquiring dedicated channels when the
	// signaling connection already exists.
	PromoFACHToDCH time.Duration
	// ReleaseDelay is how long a fast-dormancy release keeps the radio busy
	// before IDLE is reached.
	ReleaseDelay time.Duration

	// PowerIdle..PowerDCHTx are the Table 5 stable-state powers, in watts.
	PowerIdle    float64
	PowerFACH    float64
	PowerDCHIdle float64
	PowerDCHTx   float64
	// PowerPromo is the radio power during promotions (control-plane
	// signaling at elevated power).
	PowerPromo float64
	// PowerRelease is the radio power while a fast-dormancy release is in
	// flight.
	PowerRelease float64
	// ReleaseSignalEnergy is the lump energy (J) of the release signaling
	// exchange itself, on top of PowerRelease over ReleaseDelay.
	ReleaseSignalEnergy float64
	// PromoIdleSignalEnergy is the lump energy (J) of re-establishing the
	// signaling connection from IDLE (tens of control messages), on top of
	// PowerPromo over PromoIdleToDCH. Releasing the radio too eagerly pays
	// this on the next transfer — the cost Algorithm 2 trades against.
	PromoIdleSignalEnergy float64
}

// DefaultConfig returns the parameters used throughout the paper's
// evaluation: Table 5 powers, T1 = 4 s, T2 = 15 s, and promotion/release
// costs calibrated so the "intuitive approach" of Section 3.1 reproduces
// Fig. 3: immediately dropping to IDLE after a transfer only saves energy
// when the next transfer is more than 9 s away. The overhead splits into a
// cheap release (paid at dormancy) and an expensive IDLE→DCH re-promotion
// (paid on the next transfer), matching the paper's observation that
// re-establishing the signaling connection dominates the cost.
func DefaultConfig() Config {
	return Config{
		T1:                    4 * time.Second,
		T2:                    15 * time.Second,
		PromoIdleToDCH:        1750 * time.Millisecond,
		PromoFACHToDCH:        500 * time.Millisecond,
		ReleaseDelay:          500 * time.Millisecond,
		PowerIdle:             0.15,
		PowerFACH:             0.63,
		PowerDCHIdle:          1.15,
		PowerDCHTx:            1.25,
		PowerPromo:            1.80,
		PowerRelease:          1.15,
		ReleaseSignalEnergy:   0.50,
		PromoIdleSignalEnergy: 3.15,
	}
}

// Validate checks that the configuration is physically sensible.
func (c Config) Validate() error {
	switch {
	case c.T1 <= 0 || c.T2 <= 0:
		return errors.New("rrc: T1 and T2 must be positive")
	case c.PromoIdleToDCH <= 0 || c.PromoFACHToDCH <= 0:
		return errors.New("rrc: promotion latencies must be positive")
	case c.ReleaseDelay < 0:
		return errors.New("rrc: release delay must be non-negative")
	case c.PowerIdle < 0 || c.PowerFACH < c.PowerIdle || c.PowerDCHIdle < c.PowerFACH:
		return errors.New("rrc: powers must satisfy idle <= FACH <= DCH")
	case c.PowerDCHTx < c.PowerDCHIdle:
		return errors.New("rrc: DCH transmit power below DCH idle power")
	case c.ReleaseSignalEnergy < 0 || c.PromoIdleSignalEnergy < 0:
		return errors.New("rrc: signal energies must be non-negative")
	}
	return nil
}

// Transition records one state change, for test assertions and the
// state-trace figures.
type Transition struct {
	At   time.Duration
	From State
	To   State
}

// ErrBusy is returned by ForceIdle when the radio cannot release (a transfer
// or promotion is in flight).
var ErrBusy = errors.New("rrc: radio busy, cannot force idle")

// Machine is a simulated 3G radio. It is driven by a simtime.Clock and is
// not safe for concurrent use (the whole simulation is single-threaded).
type Machine struct {
	clock *simtime.Clock
	cfg   Config

	state        State
	transferring int // count of active transfers (DCH only)

	// Inactivity timers are lazily re-armed simtime Timers: the fleet replay
	// re-arms T1 on every one of thousands of transfers, and eager
	// cancel-and-push would flood the event queue with dead entries.
	t1Timer *simtime.Timer
	t2Timer *simtime.Timer
	// promoFinishFn/releaseDoneFn are the promotion/release completion
	// callbacks, bound once so scheduling them does not allocate a closure
	// per transition.
	promoFinishFn func()
	releaseDoneFn func()

	// waiters are callbacks waiting for DCH to become available; spare is the
	// previous generation's backing array, swapped back in by promoFinish so
	// steady-state promotions don't reallocate the queue.
	waiters      []func()
	spareWaiters []func()

	// Exact energy integration. Per-state accounting lives in fixed arrays
	// indexed by State (1..6) — the map-based originals allocated on every
	// EnergyByState probe, four-plus times per simulated visit.
	lastChange    time.Duration
	energyJ       float64
	timeInState   [stateSlots]time.Duration
	energyInState [stateSlots]float64

	history      []Transition
	recordTrace  bool
	onTransition func(Transition)

	// dchHolds accumulates the total time dedicated channels were held,
	// which the capacity model uses as the per-session service time.
	dchSince    time.Duration
	dchHoldTime time.Duration
}

// options collects construction-time settings shared by every backend.
type options struct {
	recordTrace  bool
	onTransition func(Transition)
}

// Option configures a radio model at construction time.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithTransitionTrace records every state change in History.
func WithTransitionTrace() Option {
	return optionFunc(func(o *options) { o.recordTrace = true })
}

// WithTransitionHook invokes fn on every state change.
func WithTransitionHook(fn func(Transition)) Option {
	return optionFunc(func(o *options) { o.onTransition = fn })
}

// NewMachine creates a radio in IDLE at the clock's current time.
func NewMachine(clock *simtime.Clock, cfg Config, opts ...Option) (*Machine, error) {
	if clock == nil {
		return nil, errors.New("rrc: nil clock")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		clock:      clock,
		cfg:        cfg,
		state:      StateIdle,
		lastChange: clock.Now(),
	}
	m.t1Timer = clock.NewTimer(m.t1Expired)
	m.t2Timer = clock.NewTimer(m.t2Expired)
	m.promoFinishFn = m.promoFinish
	m.releaseDoneFn = m.releaseDone
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	m.recordTrace = o.recordTrace
	m.onTransition = o.onTransition
	return m, nil
}

// Reset returns the machine to a fresh IDLE radio at the clock's current
// time, zeroing all accumulated energy, residency and hold-time accounting.
// The owning session must Reset the shared clock first so no stale promotion
// or release completions remain queued.
func (m *Machine) Reset() {
	m.state = StateIdle
	m.transferring = 0
	m.t1Timer.Disarm()
	m.t2Timer.Disarm()
	m.waiters = m.waiters[:0]
	m.lastChange = m.clock.Now()
	m.energyJ = 0
	m.timeInState = [stateSlots]time.Duration{}
	m.energyInState = [stateSlots]float64{}
	m.history = m.history[:0]
	m.dchSince = 0
	m.dchHoldTime = 0
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config {
	return m.cfg
}

// State returns the current RRC state.
func (m *Machine) State() State {
	return m.state
}

// Transferring reports whether user data is actively moving.
func (m *Machine) Transferring() bool {
	return m.transferring > 0
}

// RadioPower returns the instantaneous radio power draw in watts (including
// the display/system baseline, as in Table 5).
func (m *Machine) RadioPower() float64 {
	switch m.state {
	case StateIdle:
		return m.cfg.PowerIdle
	case StateFACH:
		return m.cfg.PowerFACH
	case StateDCH:
		if m.transferring > 0 {
			return m.cfg.PowerDCHTx
		}
		return m.cfg.PowerDCHIdle
	case StatePromoIdleDCH, StatePromoFACHDCH:
		return m.cfg.PowerPromo
	case StateReleasing:
		return m.cfg.PowerRelease
	default:
		return 0
	}
}

// EnergyJ returns total radio energy consumed so far, in Joules, integrated
// exactly up to the current simulation time.
func (m *Machine) EnergyJ() float64 {
	return m.energyJ + m.RadioPower()*sinceSeconds(m.lastChange, m.clock.Now())
}

// EnergyByState returns the radio energy consumed so far attributed to each
// RRC state (keyed by State.String()), integrated exactly up to the current
// simulation time. Lump signaling energies are attributed to the state they
// buy: the release exchange to RELEASING, the IDLE→DCH signaling
// re-establishment to PROMO(IDLE→DCH). The values sum to EnergyJ up to
// floating-point association.
func (m *Machine) EnergyByState() map[string]float64 {
	out := make(map[string]float64, stateSlots)
	for i, e := range m.energyInState {
		if e != 0 {
			out[umtsStateNames[i]] = e
		}
	}
	out[umtsStateNames[m.state]] += m.RadioPower() * sinceSeconds(m.lastChange, m.clock.Now())
	return out
}

// umtsStateNames caches the State.String() labels so EnergyByState reuses
// the backend's state names instead of re-deriving them per entry on the
// metrics path.
var umtsStateNames = func() (out [stateSlots]string) {
	for i := range out {
		out[i] = State(i).String()
	}
	return
}()

// EnergyVec returns the same attribution as EnergyByState as a fixed array
// indexed by State, without allocating. Slot 0 is unused, as are slots at
// and above NumStates (the array is MaxStates wide so every backend shares
// one snapshot shape).
func (m *Machine) EnergyVec() [MaxStates]float64 {
	var out [MaxStates]float64
	copy(out[:], m.energyInState[:])
	out[m.state] += m.RadioPower() * sinceSeconds(m.lastChange, m.clock.Now())
	return out
}

// TimeIn returns the cumulative time spent in state s, up to now.
func (m *Machine) TimeIn(s State) time.Duration {
	if s < 0 || int(s) >= stateSlots {
		return 0
	}
	d := m.timeInState[s]
	if m.state == s {
		d += m.clock.Now() - m.lastChange
	}
	return d
}

// Residency returns the cumulative time spent in every state visited so
// far, up to now. The returned map is a copy.
func (m *Machine) Residency() map[State]time.Duration {
	out := make(map[State]time.Duration, stateSlots)
	for i, d := range m.timeInState {
		if d != 0 {
			out[State(i)] = d
		}
	}
	out[m.state] += m.clock.Now() - m.lastChange
	return out
}

// InactivityTimers reports the pending demotion deadlines: whether T1 (or
// T2) is armed and the absolute virtual time it would fire. The fleet replay
// uses this to fast-forward a radio analytically through idle periods.
func (m *Machine) InactivityTimers() (t1At, t2At time.Duration, t1Armed, t2Armed bool) {
	return m.t1Timer.Deadline(), m.t2Timer.Deadline(), m.t1Timer.Armed(), m.t2Timer.Armed()
}

// DCHHoldTime returns the cumulative time dedicated channels were held
// (DCH plus the FACH→DCH promotion, during which the network has committed
// the channels).
func (m *Machine) DCHHoldTime() time.Duration {
	d := m.dchHoldTime
	if m.holdingDCH() {
		d += m.clock.Now() - m.dchSince
	}
	return d
}

// History returns recorded transitions (only populated when the machine was
// built with WithTransitionTrace). The returned slice is a copy.
func (m *Machine) History() []Transition {
	out := make([]Transition, len(m.history))
	copy(out, m.history)
	return out
}

// RequestDCH asks for dedicated channels and calls ready once they are
// available. If the radio is already in DCH the callback runs via the clock
// at the current time (never synchronously, to keep event ordering sane).
func (m *Machine) RequestDCH(ready func()) {
	if ready == nil {
		return
	}
	switch m.state {
	case StateDCH:
		m.clock.Defer(0, ready)
	case StateIdle:
		m.waiters = append(m.waiters, ready)
		m.startIdlePromotion()
	case StateFACH:
		m.waiters = append(m.waiters, ready)
		m.t2Timer.Disarm()
		m.startPromotion(StatePromoFACHDCH, m.cfg.PromoFACHToDCH)
	case StatePromoIdleDCH, StatePromoFACHDCH:
		m.waiters = append(m.waiters, ready)
	case StateReleasing:
		// Queue; the release completion will kick off a fresh promotion.
		m.waiters = append(m.waiters, ready)
	}
}

// BeginTransfer marks the start of a user-data transfer. The radio must be
// in DCH (use RequestDCH first).
func (m *Machine) BeginTransfer() error {
	if m.state != StateDCH {
		return fmt.Errorf("rrc: begin transfer in %v, need DCH", m.state)
	}
	m.accrue()
	m.transferring++
	m.t1Timer.Disarm()
	return nil
}

// EndTransfer marks the end of a user-data transfer; when the last active
// transfer ends the network arms T1.
func (m *Machine) EndTransfer() error {
	if m.state != StateDCH || m.transferring == 0 {
		return fmt.Errorf("rrc: end transfer in %v with %d active", m.state, m.transferring)
	}
	m.accrue()
	m.transferring--
	if m.transferring == 0 {
		m.armT1()
	}
	return nil
}

// TouchFACH records shared-channel activity while in FACH, which resets the
// T2 inactivity timer (small transfers ride the common channels without a
// promotion). It is a no-op in any other state.
func (m *Machine) TouchFACH() {
	if m.state == StateFACH {
		m.armT2()
	}
}

// ForceIdle releases the signaling connection early (fast dormancy through
// the RIL). It fails with ErrBusy if a transfer or promotion is in flight or
// callbacks are waiting for DCH. Forcing an already-idle radio is a no-op.
func (m *Machine) ForceIdle() error {
	switch m.state {
	case StateIdle, StateReleasing:
		return nil
	case StatePromoIdleDCH, StatePromoFACHDCH:
		return ErrBusy
	}
	if m.transferring > 0 || len(m.waiters) > 0 {
		return ErrBusy
	}
	m.t1Timer.Disarm()
	m.t2Timer.Disarm()
	m.energyJ += m.cfg.ReleaseSignalEnergy
	m.energyInState[StateReleasing] += m.cfg.ReleaseSignalEnergy
	m.setState(StateReleasing)
	m.clock.Defer(m.cfg.ReleaseDelay, m.releaseDoneFn)
	return nil
}

func (m *Machine) releaseDone() {
	if m.state != StateReleasing {
		return
	}
	m.setState(StateIdle)
	if len(m.waiters) > 0 {
		m.startIdlePromotion()
	}
}

// startIdlePromotion begins an IDLE→DCH promotion, charging the signaling
// re-establishment lump.
func (m *Machine) startIdlePromotion() {
	if m.state == StatePromoIdleDCH {
		return
	}
	m.energyJ += m.cfg.PromoIdleSignalEnergy
	m.energyInState[StatePromoIdleDCH] += m.cfg.PromoIdleSignalEnergy
	m.startPromotion(StatePromoIdleDCH, m.cfg.PromoIdleToDCH)
}

func (m *Machine) startPromotion(promo State, latency time.Duration) {
	if m.state == promo {
		return
	}
	m.setState(promo)
	m.clock.Defer(latency, m.promoFinishFn)
}

// promoFinish completes a pending promotion: the radio reaches DCH, T1 is
// armed, and queued waiters run in arrival order.
func (m *Machine) promoFinish() {
	m.setState(StateDCH)
	m.armT1()
	// Swap in the spare backing array before running callbacks — a waiter may
	// re-enter RequestDCH and append. The drained array is cleared (dropping
	// closure references) and becomes the next spare.
	waiters := m.waiters
	m.waiters = m.spareWaiters[:0]
	for _, w := range waiters {
		w()
	}
	for i := range waiters {
		waiters[i] = nil
	}
	m.spareWaiters = waiters[:0]
}

func (m *Machine) armT1() {
	m.t1Timer.Arm(m.cfg.T1)
}

// t1Expired demotes an inactive DCH radio to FACH.
func (m *Machine) t1Expired() {
	if m.state != StateDCH || m.transferring > 0 {
		return
	}
	m.setState(StateFACH)
	m.armT2()
}

func (m *Machine) armT2() {
	m.t2Timer.Arm(m.cfg.T2)
}

// t2Expired releases the signaling connection of an inactive FACH radio.
func (m *Machine) t2Expired() {
	if m.state != StateFACH {
		return
	}
	m.setState(StateIdle)
}

// holdingDCH reports whether dedicated channels are currently committed to
// this radio (DCH, or mid FACH→DCH promotion).
func (m *Machine) holdingDCH() bool {
	return m.state == StateDCH || m.state == StatePromoFACHDCH || m.state == StatePromoIdleDCH
}

func (m *Machine) setState(next State) {
	if next == m.state {
		return
	}
	wasHolding := m.holdingDCH()
	m.accrue()
	tr := Transition{At: m.clock.Now(), From: m.state, To: next}
	m.state = next
	nowHolding := m.holdingDCH()
	switch {
	case !wasHolding && nowHolding:
		m.dchSince = m.clock.Now()
	case wasHolding && !nowHolding:
		m.dchHoldTime += m.clock.Now() - m.dchSince
	}
	if m.recordTrace {
		m.history = append(m.history, tr)
	}
	if m.onTransition != nil {
		m.onTransition(tr)
	}
}

// accrue integrates energy and per-state time up to now at the current power.
func (m *Machine) accrue() {
	now := m.clock.Now()
	if now == m.lastChange {
		return
	}
	e := m.RadioPower() * sinceSeconds(m.lastChange, now)
	m.energyJ += e
	m.energyInState[m.state] += e
	m.timeInState[m.state] += now - m.lastChange
	m.lastChange = now
}

func sinceSeconds(from, to time.Duration) float64 {
	return (to - from).Seconds()
}
