package trace

import (
	"math"
	"testing"

	"eabrowse/internal/features"
	"eabrowse/internal/stats"
)

// sharedDataset synthesizes the default trace once for the whole package
// (pool building loads 60 pages through the simulator).
var sharedDataset *Dataset

func dataset(t *testing.T) *Dataset {
	t.Helper()
	if sharedDataset == nil {
		ds, err := Synthesize(DefaultConfig())
		if err != nil {
			t.Fatalf("Synthesize: %v", err)
		}
		sharedDataset = ds
	}
	return sharedDataset
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no users", func(c *Config) { c.Users = 0 }},
		{"no hours", func(c *Config) { c.HoursPerUser = 0 }},
		{"no pool", func(c *Config) { c.PoolSize = 0 }},
		{"no categories", func(c *Config) { c.Categories = 0 }},
		{"too many liked", func(c *Config) { c.LikedCategories = 99 }},
		{"no cap", func(c *Config) { c.CapSeconds = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Synthesize(cfg); err == nil {
				t.Fatal("Synthesize succeeded with invalid config")
			}
		})
	}
}

func TestDatasetShape(t *testing.T) {
	ds := dataset(t)
	cfg := DefaultConfig()
	if len(ds.Pool) != cfg.PoolSize {
		t.Fatalf("pool size = %d, want %d", len(ds.Pool), cfg.PoolSize)
	}
	if len(ds.Visits) < 1000 {
		t.Fatalf("only %d visits for 40 users x 2h", len(ds.Visits))
	}
	users := make(map[int]bool)
	for _, v := range ds.Visits {
		users[v.User] = true
		if v.ReadingSeconds <= 0 {
			t.Fatalf("non-positive reading time %v", v.ReadingSeconds)
		}
		if v.ReadingSeconds > cfg.CapSeconds {
			t.Fatalf("reading time %v above cap %v", v.ReadingSeconds, cfg.CapSeconds)
		}
		if v.Page == "" {
			t.Fatal("visit without page")
		}
	}
	if len(users) != cfg.Users {
		t.Fatalf("visits cover %d users, want %d", len(users), cfg.Users)
	}
}

func TestPoolPagesHaveMeasuredFeatures(t *testing.T) {
	ds := dataset(t)
	for _, pp := range ds.Pool {
		if pp.Page == nil {
			t.Fatalf("%s: no page body", pp.Name)
		}
		if pp.Features[features.DownloadObjects] <= 0 {
			t.Fatalf("%s: no objects measured", pp.Name)
		}
		if pp.Features[features.PageWidth] <= 0 || pp.Features[features.PageHeight] <= 0 {
			t.Fatalf("%s: no geometry measured", pp.Name)
		}
		if pp.Features[features.TransmissionTime] <= 0 {
			t.Fatalf("%s: no transmission time measured", pp.Name)
		}
	}
}

// TestFig7CDFShape asserts the paper's landmark quantiles within tolerance:
// 30% under 2 s, 53% under 9 s, 68% under 20 s (Fig. 7).
func TestFig7CDFShape(t *testing.T) {
	ds := dataset(t)
	reads := make([]float64, 0, len(ds.Visits))
	for _, v := range ds.Visits {
		reads = append(reads, v.ReadingSeconds)
	}
	cdf, err := stats.NewCDF(reads)
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	checks := []struct {
		at   float64
		want float64
		tol  float64
	}{
		{2, 0.30, 0.07},
		{9, 0.53, 0.10},
		{20, 0.68, 0.07},
	}
	for _, c := range checks {
		got := cdf.At(c.at)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("P(reading < %.0fs) = %.2f, want %.2f ± %.2f", c.at, got, c.want, c.tol)
		}
	}
}

// TestTable4NoNotableCorrelation asserts reading time has no strong linear
// relationship with any single feature (the paper's Table 4 point).
func TestTable4NoNotableCorrelation(t *testing.T) {
	ds := dataset(t)
	reads := make([]float64, 0, len(ds.Visits))
	for _, v := range ds.Visits {
		reads = append(reads, v.ReadingSeconds)
	}
	for f := 0; f < features.Num; f++ {
		xs := make([]float64, 0, len(ds.Visits))
		for _, v := range ds.Visits {
			xs = append(xs, v.Features[f])
		}
		r, err := stats.Pearson(xs, reads)
		if err != nil {
			t.Fatalf("Pearson(%s): %v", features.Names[f], err)
		}
		if math.Abs(r) > 0.2 {
			t.Errorf("|corr(%s, reading)| = %.3f, want < 0.2", features.Names[f], r)
		}
	}
}

func TestDeterministicSynthesis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 3
	cfg.PoolSize = 6
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(a.Visits) != len(b.Visits) {
		t.Fatalf("visit counts differ: %d vs %d", len(a.Visits), len(b.Visits))
	}
	for i := range a.Visits {
		if a.Visits[i] != b.Visits[i] {
			t.Fatalf("visit %d differs: %+v vs %+v", i, a.Visits[i], b.Visits[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 3
	cfg.PoolSize = 6
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	cfg.Seed++
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(a.Visits) == len(b.Visits) {
		same := true
		for i := range a.Visits {
			if a.Visits[i].ReadingSeconds != b.Visits[i].ReadingSeconds {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

// TestAbandonedVisitsAreShort checks the latent-interest mechanism: visits
// the user is not interested in are quick bounces.
func TestAbandonedVisitsAreShort(t *testing.T) {
	ds := dataset(t)
	abandoned := 0
	longAbandons := 0
	for _, v := range ds.Visits {
		if !v.Interested {
			abandoned++
			if v.ReadingSeconds > 10 {
				longAbandons++
			}
		}
	}
	if abandoned == 0 {
		t.Fatal("no abandoned visits synthesized")
	}
	frac := float64(abandoned) / float64(len(ds.Visits))
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("abandon fraction = %.2f, want ≈0.3", frac)
	}
	if float64(longAbandons)/float64(abandoned) > 0.01 {
		t.Fatalf("%d of %d abandons read > 10 s", longAbandons, abandoned)
	}
}

// TestEngagedMedianWithinBounds checks the latent median stays clipped.
func TestEngagedMedianWithinBounds(t *testing.T) {
	ds := dataset(t)
	for _, pp := range ds.Pool {
		if pp.engagedMedian < 1.5 || pp.engagedMedian > 200 {
			t.Fatalf("%s: engaged median %v out of [1.5, 200]", pp.Name, pp.engagedMedian)
		}
	}
}

// TestEngagedMedianVariesAcrossPool: the Fig. 15 learnability requires the
// medians to spread widely across pages.
func TestEngagedMedianVariesAcrossPool(t *testing.T) {
	ds := dataset(t)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pp := range ds.Pool {
		lo = math.Min(lo, pp.engagedMedian)
		hi = math.Max(hi, pp.engagedMedian)
	}
	if hi/lo < 4 {
		t.Fatalf("engaged medians span only [%.1f, %.1f]; too narrow to learn", lo, hi)
	}
}

func TestSessionsStructured(t *testing.T) {
	ds := dataset(t)
	// Session ids are non-decreasing per user.
	last := make(map[int]int)
	for _, v := range ds.Visits {
		if prev, ok := last[v.User]; ok && v.Session < prev {
			t.Fatalf("user %d session went backwards: %d -> %d", v.User, prev, v.Session)
		}
		last[v.User] = v.Session
	}
}
