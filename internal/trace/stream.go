package trace

import (
	"math"
	"math/rand"

	"eabrowse/internal/features"
)

// Stream is the streaming counterpart of Synthesize for very large fleets:
// instead of materializing every user's visits up front (O(users·visits)
// memory), it holds only the measured page pool and derives each user's
// visit sequence on demand from an independent per-user random stream.
//
// The per-user streams are seeded by mixing the trace seed with the user
// index, so UserVisits(u) is a pure function of (Config, u): any number of
// workers can generate disjoint user ranges concurrently and the result is
// identical at any parallelism. The visit statistics follow the same model
// as Synthesize (same pool, same engagement and reading-time draws); the
// concrete sequences differ because Synthesize threads one shared rng
// through all users, which is inherently serial.
type Stream struct {
	cfg  Config
	pool []PoolPage
}

// NewStream measures the page pool (each pool page is loaded once through
// the energy-aware pipeline, in parallel) and returns a generator of
// per-user visit sequences. The pool draw consumes the seed rng exactly as
// Synthesize does, so both trace forms share page pools for equal configs.
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool, err := buildPool(cfg, rng)
	if err != nil {
		return nil, err
	}
	return &Stream{cfg: cfg, pool: pool}, nil
}

// Pool returns the distinct pages visits draw from. Read-only: the slice is
// shared by every caller.
func (s *Stream) Pool() []PoolPage { return s.pool }

// UserVisits appends user u's full visit sequence to buf and returns it.
// The sequence is deterministic in (Config, u) and independent of any other
// user's. Safe for concurrent use with distinct buffers.
func (s *Stream) UserVisits(u int, buf []Visit) []Visit {
	return s.UserVisitsRand(rand.New(rand.NewSource(userSeed(s.cfg.Seed, u))), u, buf)
}

// UserVisitsRand is UserVisits with a caller-owned rng, reseeded in place:
// Seed resets a rand.Rand to exactly the state rand.New(rand.NewSource(seed))
// constructs, so the sequence is identical while the per-user source+rng
// allocations (several kB each at fleet scale) disappear. The rng must not
// be shared across concurrent calls.
func (s *Stream) UserVisitsRand(rng *rand.Rand, u int, buf []Visit) []Visit {
	cfg := s.cfg
	rng.Seed(userSeed(cfg.Seed, u))
	liked := pickLiked(rng, cfg.Categories, cfg.LikedCategories)
	userFactor := math.Exp(rng.NormFloat64() * 0.2)
	budget := cfg.HoursPerUser * 3600
	session := 0
	elapsed := 0.0
	for elapsed < budget {
		pagesInSession := 3 + rng.Intn(10)
		for p := 0; p < pagesInSession && elapsed < budget; p++ {
			page := &s.pool[rng.Intn(len(s.pool))]
			interested := engaged(rng, liked[page.Category])
			reading := readingTime(rng, page, interested, userFactor)
			if reading > cfg.CapSeconds {
				elapsed += reading
				continue
			}
			buf = append(buf, Visit{
				User:           u,
				Session:        session,
				Page:           page.Name,
				Features:       page.Features,
				ReadingSeconds: reading,
				Interested:     interested,
			})
			elapsed += reading + page.Features[features.TransmissionTime]
		}
		session++
		elapsed += 60 + rng.Float64()*600
	}
	return buf
}

// userSeed mixes the trace seed with a user index (splitmix64 finalizer), so
// consecutive users get decorrelated streams.
func userSeed(seed int64, u int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(u+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// UserDraw returns one uniform [0, 1) draw that is a pure function of
// (seed, tag, u). Fleet-level per-user assignments (mixed-RAN profile
// picks) use it instead of consuming from the user's visit rng, so adding
// an assignment never perturbs the visit sequences; the tag decorrelates
// independent assignment families from each other and from userSeed.
func UserDraw(seed int64, tag uint64, u int) float64 {
	z := uint64(seed) ^ (tag * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15 * uint64(u+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
