package trace

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestUserVisitsRandMatchesUserVisits pins the rng-reuse fast path: one
// reseeded rand.Rand walked across many users must reproduce exactly the
// visit sequences that per-user freshly constructed rngs produce.
func TestUserVisitsRandMatchesUserVisits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 10
	cfg.HoursPerUser = 0.5
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1)) // state is overwritten by each Seed
	var reused []Visit
	for u := 0; u < cfg.Users; u++ {
		fresh := s.UserVisits(u, nil)
		reused = s.UserVisitsRand(rng, u, reused[:0])
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("user %d: reused-rng visits diverge from fresh-rng visits", u)
		}
		if len(fresh) == 0 {
			t.Fatalf("user %d: empty visit sequence", u)
		}
	}
}
