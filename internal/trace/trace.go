// Package trace synthesizes the browsing traces of Section 5.1.3. The paper
// distributed phones to 40 students, logged ≥2 hours of browsing each, and
// derived per-page reading times (discarding reads over 10 minutes).
//
// Those traces are unavailable, so this synthesizer reproduces their
// published marginal statistics while keeping a latent structure a GBRT can
// learn:
//
//   - the reading-time CDF matches Fig. 7 (≈30% under 2 s, ≈53% under 9 s,
//     ≈68% under 20 s);
//   - reading time has near-zero Pearson correlation with every individual
//     Table 1 feature (Table 4) — the dependence is through *interactions*
//     of features (step functions of text density, page height, figure
//     ratio), which is exactly why the paper needs trees instead of a
//     linear model;
//   - a latent per-user interest term makes ≈30% of visits quick abandons
//     whose reading time is independent of the page — the component the
//     interest threshold α removes (Section 4.3.4).
//
// Feature vectors are not invented: each pool page is actually loaded once
// through the energy-aware pipeline and its Table 1 features extracted from
// the real load.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/features"
	"eabrowse/internal/netsim"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
	"eabrowse/internal/simtime"
	"eabrowse/internal/webpage"
)

// Visit is one page view in a user's trace.
type Visit struct {
	User    int
	Session int
	Page    string
	// Features is the Table 1 vector collected when the page was opened.
	Features features.Vector
	// ReadingSeconds is the time from the page being fully opened to the
	// next click (the prediction target).
	ReadingSeconds float64
	// Interested reports the latent engagement state (not observable by the
	// predictor; used by oracle experiments).
	Interested bool
}

// Dataset is a full synthesized trace.
type Dataset struct {
	Visits []Visit
	// Pool is the distinct pages the visits draw from.
	Pool []PoolPage
}

// PoolPage is one distinct page users visit, with its measured features.
type PoolPage struct {
	Name     string
	Category int
	Mobile   bool
	Features features.Vector
	// Page is the generated page itself, so downstream experiments (the
	// Fig. 16 policy comparison) can load it through either pipeline.
	Page *webpage.Page
	// engagedMedian is the latent median reading time of engaged visits.
	engagedMedian float64
}

// Config parameterizes the synthesizer.
type Config struct {
	// Users is the number of participants (paper: 40).
	Users int
	// HoursPerUser is the browsing time logged per user (paper: ≥2h).
	HoursPerUser float64
	// PoolSize is the number of distinct pages in circulation.
	PoolSize int
	// Categories is the number of content categories (game, finance, ...).
	Categories int
	// LikedCategories is how many categories each user cares about.
	LikedCategories int
	// CapSeconds discards reads longer than this (paper: 10 minutes).
	CapSeconds float64
	// Seed makes the synthesis reproducible.
	Seed int64
}

// DefaultConfig mirrors the paper's collection setup.
func DefaultConfig() Config {
	return Config{
		Users:           40,
		HoursPerUser:    2,
		PoolSize:        60,
		Categories:      8,
		LikedCategories: 3,
		CapSeconds:      600,
		Seed:            20130708,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0:
		return errors.New("trace: need at least one user")
	case c.HoursPerUser <= 0:
		return errors.New("trace: hours per user must be positive")
	case c.PoolSize <= 0:
		return errors.New("trace: pool must not be empty")
	case c.Categories <= 0 || c.LikedCategories <= 0 || c.LikedCategories > c.Categories:
		return errors.New("trace: bad category setup")
	case c.CapSeconds <= 0:
		return errors.New("trace: cap must be positive")
	}
	return nil
}

// Synthesize builds a dataset: a page pool with real measured features, then
// per-user sessions with latent-interest reading times.
func Synthesize(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool, err := buildPool(cfg, rng)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Pool: pool}

	for u := 0; u < cfg.Users; u++ {
		liked := pickLiked(rng, cfg.Categories, cfg.LikedCategories)
		// Per-user pace: some users read everything slowly.
		userFactor := math.Exp(rng.NormFloat64() * 0.2)
		budget := cfg.HoursPerUser * 3600
		session := 0
		elapsed := 0.0
		for elapsed < budget {
			pagesInSession := 3 + rng.Intn(10)
			for p := 0; p < pagesInSession && elapsed < budget; p++ {
				page := &pool[rng.Intn(len(pool))]
				interested := engaged(rng, liked[page.Category])
				reading := readingTime(rng, page, interested, userFactor)
				if reading > cfg.CapSeconds {
					// The paper discards reads over the cap (user likely
					// walked away); the time still passes.
					elapsed += reading
					continue
				}
				ds.Visits = append(ds.Visits, Visit{
					User:           u,
					Session:        session,
					Page:           page.Name,
					Features:       page.Features,
					ReadingSeconds: reading,
					Interested:     interested,
				})
				elapsed += reading + page.Features[features.TransmissionTime]
			}
			session++
			// Break between sessions.
			elapsed += 60 + rng.Float64()*600
		}
	}
	if len(ds.Visits) == 0 {
		return nil, errors.New("trace: synthesis produced no visits")
	}
	return ds, nil
}

// buildPool generates PoolSize distinct pages (a mobile/full mix around the
// benchmark baselines) and loads each once through the energy-aware pipeline
// to measure its Table 1 features.
//
// The specs are drawn from rng sequentially first — the synthesizer's rng
// call order is part of the reproducibility contract — and only then are the
// pages generated and measured on the worker pool (each page load runs on its
// own simulated phone, so the measurements are independent).
func buildPool(cfg Config, rng *rand.Rand) ([]PoolPage, error) {
	specs := make([]webpage.Spec, cfg.PoolSize)
	for i := 0; i < cfg.PoolSize; i++ {
		specs[i] = poolSpec(i, i%2 == 0, rng)
	}
	return runner.Collect(cfg.PoolSize, func(i int) (PoolPage, error) {
		page, err := webpage.Generate(specs[i])
		if err != nil {
			return PoolPage{}, fmt.Errorf("pool page %d: %w", i, err)
		}
		vec, err := measureFeatures(page)
		if err != nil {
			return PoolPage{}, fmt.Errorf("measure pool page %d: %w", i, err)
		}
		pp := PoolPage{
			Name:     specs[i].Name,
			Category: i % cfg.Categories,
			Mobile:   specs[i].Mobile,
			Features: vec,
			Page:     page,
		}
		pp.engagedMedian = engagedMedian(vec)
		return pp, nil
	})
}

func poolSpec(i int, mobile bool, rng *rand.Rand) webpage.Spec {
	name := fmt.Sprintf("pool%02d.example.com", i)
	if mobile {
		return webpage.Spec{
			Name: name, Mobile: true, Seed: int64(9000 + i),
			TextKB:   6 + rng.Intn(14),
			Sections: 2 + rng.Intn(4),
			Images:   3 + rng.Intn(9), ImageKBMin: 2, ImageKBMax: 6,
			Stylesheets: 1, CSSKB: 4 + rng.Intn(5), CSSRules: 40 + rng.Intn(60), CSSImages: 1,
			Scripts: 1 + rng.Intn(3), ScriptKB: 2 + rng.Intn(4),
			ScriptFetches: 1 + rng.Intn(3), ScriptComputeMS: 80 + rng.Intn(250),
			InlineScripts: rng.Intn(2),
			Anchors:       4 + rng.Intn(20),
			PageHeightPX:  900 + rng.Intn(2200), PageWidthPX: 320,
		}
	}
	return webpage.Spec{
		Name: name, Mobile: false, Seed: int64(9000 + i),
		TextKB:   30 + rng.Intn(90),
		Sections: 6 + rng.Intn(8),
		Images:   8 + rng.Intn(24), ImageKBMin: 4, ImageKBMax: 16,
		Stylesheets: 1 + rng.Intn(2), CSSKB: 15 + rng.Intn(30),
		CSSRules: 200 + rng.Intn(400), CSSImages: 1 + rng.Intn(4),
		Scripts: 2 + rng.Intn(4), ScriptKB: 8 + rng.Intn(18),
		ScriptFetches: 2 + rng.Intn(6), ScriptComputeMS: 300 + rng.Intn(700),
		InlineScripts: rng.Intn(3),
		Subdocs:       rng.Intn(2), SubdocTextKB: 4, SubdocImages: 2,
		Anchors:      15 + rng.Intn(45),
		PageHeightPX: 2500 + rng.Intn(5500), PageWidthPX: 1000,
	}
}

// measureFeatures loads a page once on a fresh simulated phone (energy-aware
// pipeline, as the prototype would) and extracts the Table 1 vector.
func measureFeatures(page *webpage.Page) (features.Vector, error) {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig())
	if err != nil {
		return features.Vector{}, err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return features.Vector{}, err
	}
	engine, err := browser.NewEngine(clock, radio, link, browser.DefaultCostModel(), browser.ModeEnergyAware)
	if err != nil {
		return features.Vector{}, err
	}
	var result *browser.Result
	if err := engine.Load(page, func(r *browser.Result) { result = r }); err != nil {
		return features.Vector{}, err
	}
	for result == nil {
		if !clock.Step() {
			return features.Vector{}, errors.New("trace: load stalled")
		}
		if clock.Now() > 30*time.Minute {
			return features.Vector{}, errors.New("trace: load timed out")
		}
	}
	return features.FromResult(result)
}

func pickLiked(rng *rand.Rand, categories, liked int) []bool {
	out := make([]bool, categories)
	perm := rng.Perm(categories)
	for i := 0; i < liked; i++ {
		out[perm[i]] = true
	}
	return out
}

// engaged decides whether the user actually reads the page. Liked topics
// keep attention most of the time; others are usually bounced.
func engaged(rng *rand.Rand, likesCategory bool) bool {
	p := 0.56
	if likesCategory {
		p = 0.92
	}
	return rng.Float64() < p
}

// readingTime draws a reading time. Abandoned visits are short and carry no
// feature signal; engaged visits are lognormal around a median determined by
// feature *interactions* (see engagedMedian).
func readingTime(rng *rand.Rand, page *PoolPage, interested bool, userFactor float64) float64 {
	if !interested {
		// Quick bounce: glance, go back. Independent of page content.
		return 0.3 + rng.ExpFloat64()*0.8
	}
	return page.engagedMedian * userFactor * math.Exp(rng.NormFloat64()*0.32)
}

// engagedMedian maps a feature vector to the median engaged reading time.
// The dependence is deliberately built from step functions and interactions
// with mixed signs, using class-relative thresholds (mobile vs. full pages
// differ on every raw size feature), so that every single feature's linear
// correlation with reading time stays near zero (Table 4) while trees can
// still recover the structure (Fig. 15).
func engagedMedian(v features.Vector) float64 {
	mobile := v[features.PageWidth] < 500
	density := v[features.WebpageSizeKB] / math.Max(v[features.DownloadObjects], 1)
	figShare := v[features.FigureSizeKB] /
		math.Max(v[features.FigureSizeKB]+v[features.WebpageSizeKB], 1)
	// Page length in viewport units is comparable across classes.
	lengthR := v[features.PageHeight] / math.Max(v[features.PageWidth], 1)
	jsTime := v[features.JSRunningTime]

	denseCut, jsCut, linkCut, objCut := 4.4, 3.0, 45.0, 46.0
	if mobile {
		denseCut, jsCut, linkCut, objCut = 1.75, 0.62, 15, 15
	}

	// Multiplicative step factors spread the engaged medians over two
	// orders of magnitude: the Fig. 7 CDF's spread comes from *pages*, not
	// from per-visit noise, which is what makes the reading time learnable
	// (Fig. 15) despite the near-zero linear correlations (Table 4).
	m := 5.4
	if density > denseCut {
		m *= 5.5 // text-dense pages hold attention
	} else {
		m *= 0.85
	}
	switch {
	case lengthR > 6.3:
		m *= 2.4 // long pages take longer to scroll through
	case lengthR > 3.5:
		m *= 1.35
	}
	if figShare > 0.52 {
		m *= 0.45 // galleries get skimmed
	}
	if jsTime > jsCut && density <= denseCut {
		m *= 2.6 // interactive app-like pages despite little text
	}
	if v[features.SecondURL] > linkCut && lengthR <= 6.3 {
		m *= 0.78 // link farms are navigated away from quickly
	}
	if figShare < 0.28 && density > denseCut {
		m *= 2.0 // long-form articles
	}
	if v[features.DownloadObjects] > objCut {
		m *= 1.9 // busy portal pages: many items to look through
	}
	return math.Min(math.Max(m, 1.5), 200)
}
