package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	ds := dataset(t)
	var buf bytes.Buffer
	if err := ds.WriteVisits(&buf); err != nil {
		t.Fatalf("WriteVisits: %v", err)
	}
	visits, err := ReadVisits(&buf)
	if err != nil {
		t.Fatalf("ReadVisits: %v", err)
	}
	if len(visits) != len(ds.Visits) {
		t.Fatalf("round trip lost visits: %d -> %d", len(ds.Visits), len(visits))
	}
	for i := range visits {
		if visits[i] != ds.Visits[i] {
			t.Fatalf("visit %d differs: %+v vs %+v", i, visits[i], ds.Visits[i])
		}
	}
}

func TestWriteEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	empty := &Dataset{}
	if err := empty.WriteVisits(&buf); err == nil {
		t.Fatal("empty dataset written")
	}
	var nilDS *Dataset
	if err := nilDS.WriteVisits(&buf); err == nil {
		t.Fatal("nil dataset written")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadVisits(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadVisits(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Wrong feature width.
	if _, err := ReadVisits(strings.NewReader(
		`{"user":0,"session":0,"page":"p","features":[1,2],"readingSeconds":5}`)); err == nil {
		t.Fatal("short feature vector accepted")
	}
	// Non-positive reading time.
	if _, err := ReadVisits(strings.NewReader(
		`{"user":0,"session":0,"page":"p","features":[1,2,3,4,5,6,7,8,9,10],"readingSeconds":0}`)); err == nil {
		t.Fatal("zero reading time accepted")
	}
}

func TestReadSingleRecord(t *testing.T) {
	visits, err := ReadVisits(strings.NewReader(
		`{"user":3,"session":1,"page":"x","features":[1,2,3,4,5,6,7,8,9,10],"readingSeconds":12.5,"interested":true}`))
	if err != nil {
		t.Fatalf("ReadVisits: %v", err)
	}
	v := visits[0]
	if v.User != 3 || v.Session != 1 || v.Page != "x" || !v.Interested {
		t.Fatalf("visit = %+v", v)
	}
	if v.ReadingSeconds != 12.5 || v.Features[0] != 1 || v.Features[9] != 10 {
		t.Fatalf("visit payload = %+v", v)
	}
}
