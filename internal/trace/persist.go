package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"eabrowse/internal/features"
)

// visitRecord is the on-disk form of a Visit (JSON lines). The field names
// are a stable contract independent of the Go struct.
type visitRecord struct {
	User           int       `json:"user"`
	Session        int       `json:"session"`
	Page           string    `json:"page"`
	Features       []float64 `json:"features"`
	ReadingSeconds float64   `json:"readingSeconds"`
	Interested     bool      `json:"interested"`
}

// WriteVisits streams the dataset's visits as JSON lines — the portable form
// of the paper's collected trace (one record per page view). Pool page
// bodies are not persisted; features travel with each visit.
func (d *Dataset) WriteVisits(w io.Writer) error {
	if d == nil || len(d.Visits) == 0 {
		return errors.New("trace: nothing to write")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, v := range d.Visits {
		rec := visitRecord{
			User:           v.User,
			Session:        v.Session,
			Page:           v.Page,
			Features:       v.Features.Slice(),
			ReadingSeconds: v.ReadingSeconds,
			Interested:     v.Interested,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trace: write visit %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadVisits loads visits previously written with WriteVisits.
func ReadVisits(r io.Reader) ([]Visit, error) {
	dec := json.NewDecoder(r)
	var visits []Visit
	for i := 0; ; i++ {
		var rec visitRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: read visit %d: %w", i, err)
		}
		if len(rec.Features) != features.Num {
			return nil, fmt.Errorf("trace: visit %d has %d features, want %d",
				i, len(rec.Features), features.Num)
		}
		if rec.ReadingSeconds <= 0 {
			return nil, fmt.Errorf("trace: visit %d has non-positive reading time", i)
		}
		var vec features.Vector
		copy(vec[:], rec.Features)
		visits = append(visits, Visit{
			User:           rec.User,
			Session:        rec.Session,
			Page:           rec.Page,
			Features:       vec,
			ReadingSeconds: rec.ReadingSeconds,
			Interested:     rec.Interested,
		})
	}
	if len(visits) == 0 {
		return nil, errors.New("trace: no visits in input")
	}
	return visits, nil
}
