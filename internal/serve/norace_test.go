//go:build !race

package serve

// raceEnabled reports the race detector is on; see race_test.go.
const raceEnabled = false
