package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/channel"
	"eabrowse/internal/experiments"
	"eabrowse/internal/features"
	"eabrowse/internal/obs"
	"eabrowse/internal/policy"
	"eabrowse/internal/rrc"
	"eabrowse/internal/webpage"
)

// Counter and histogram names are prebuilt constants so the hot path never
// concatenates strings.
const (
	counterPredict    = "serve.predict"
	counterDecide     = "serve.decide"
	counterSimulate   = "serve.simulate"
	counterSwitch     = "serve.decide.switch"
	counterBatch      = "serve.predict_batch"
	counterBatchItems = "serve.predict_batch.items"
	latencyPredict    = "serve.latency.predict"
	latencyDecide     = "serve.latency.decide"
	latencySimulate   = "serve.latency.simulate"
	latencyBatch      = "serve.latency.predict_batch"
)

// Handler returns the service's HTTP surface: a direct path switch (the
// Go 1.22+ ServeMux allocates per request; the fast lane cannot afford
// that) inside the request-counting, panic-recovering middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		switch r.URL.Path {
		case "/v1/predict":
			s.handlePredictFast(w, r)
		case "/v1/decide":
			s.handleDecideFast(w, r)
		case "/v1/predict_batch":
			s.handlePredictBatch(w, r)
		case "/v1/simulate":
			s.handleSimulate(w, r)
		case "/healthz":
			s.handleHealthz(w, r)
		case "/readyz":
			s.handleReadyz(w, r)
		case "/metrics":
			s.handleMetrics(w, r)
		case "/admin/reload":
			s.handleReload(w, r)
		default:
			http.NotFound(w, r)
		}
	})
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeWorkError maps request-path failures onto HTTP statuses; the
// backpressure contract (429 + Retry-After on a full queue) lives here.
func (s *Server) writeWorkError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "worker queue full, retry shortly")
	case errors.Is(err, errShuttingDown):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	case errors.Is(err, errNoModel):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "no model loaded yet")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// requestCtx derives the per-request deadline: the server default, shortened
// (never extended) by an X-Request-Timeout-Ms header.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Request-Timeout-Ms"); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// decodeBody reads a size-capped JSON body into v, answering 400/413 itself.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// parseRadio validates an optional radio profile name, defaulting to UMTS.
// Unknown names answer 400 with the valid-name list, mirroring the
// benchmark-page errors.
func parseRadio(w http.ResponseWriter, name string) (string, bool) {
	if name == "" {
		return "umts", true
	}
	if _, err := rrc.ProfileSpec(name); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return "", false
	}
	return name, true
}

// parseFeatures validates a request's feature array into a stack vector.
func parseFeatures(w http.ResponseWriter, raw []float64, vec *features.Vector) bool {
	if len(raw) != features.Num {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("need exactly %d features (Table 1 order), got %d", features.Num, len(raw)))
		return false
	}
	for i, f := range raw {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("feature %d is not finite", i))
			return false
		}
	}
	copy(vec[:], raw)
	return true
}

// --- /v1/predict -----------------------------------------------------------

type predictRequest struct {
	// Features is the Table 1 vector, in index order.
	Features []float64 `json:"features"`
	// Radio optionally names the radio profile the caller's phone runs; it
	// does not change the prediction (Table 1 features are radio-agnostic)
	// but is validated and echoed back so mixed-RAN clients can correlate
	// responses. Empty means "umts".
	Radio string `json:"radio"`
}

type predictResponse struct {
	ReadingSeconds  float64 `json:"reading_seconds"`
	ModelGeneration uint64  `json:"model_generation"`
	Radio           string  `json:"radio"`
}

// predictResult is the internal, allocation-free form of an answer.
type predictResult struct {
	seconds float64
	gen     uint64
}

// predictCoreStripe is the steady-state hot path: one atomic model snapshot,
// one in-place forest walk, one counter bump into the caller's stripe. Zero
// allocations per op — the soak harness and BenchmarkPredictCore pin that.
func (s *Server) predictCoreStripe(vec *features.Vector, st *stripe) (predictResult, error) {
	lm := s.model.current()
	if lm == nil {
		return predictResult{}, errNoModel
	}
	sec, err := lm.pred.PredictVecSeconds(vec)
	if err != nil {
		return predictResult{}, err
	}
	st.count(cPredict)
	return predictResult{seconds: sec, gen: lm.gen}, nil
}

// predictCore keeps the pre-sharding signature for the soak harness and
// benchmarks; callers without a scratch count into stripe 0.
func (s *Server) predictCore(vec *features.Vector) (predictResult, error) {
	return s.predictCoreStripe(vec, &s.stripes[0])
}

// --- /v1/decide ------------------------------------------------------------

type decideRequest struct {
	Features []float64 `json:"features"`
	// Mode is "delay" (default) or "power" — Algorithm 2's two operating
	// points.
	Mode string `json:"mode"`
}

type decideResponse struct {
	ReadingSeconds  float64 `json:"reading_seconds"`
	Switch          bool    `json:"switch"`
	Reason          string  `json:"reason"`
	Mode            string  `json:"mode"`
	TpSeconds       float64 `json:"tp_s"`
	TdSeconds       float64 `json:"td_s"`
	ModelGeneration uint64  `json:"model_generation"`
}

type decideResult struct {
	seconds float64
	d       policy.Decision
	tp, td  time.Duration
	gen     uint64
}

// decideCoreStripe runs Algorithm 2's decision rule on a fresh prediction,
// using the thresholds that travel with the model file.
func (s *Server) decideCoreStripe(vec *features.Vector, mode policy.Mode, st *stripe) (decideResult, error) {
	lm := s.model.current()
	if lm == nil {
		return decideResult{}, errNoModel
	}
	sec, err := lm.pred.PredictVecSeconds(vec)
	if err != nil {
		return decideResult{}, err
	}
	th := lm.pred.Thresholds()
	d := policy.Evaluate(time.Duration(sec*float64(time.Second)), policy.Params{
		Alpha: th.Alpha,
		Tp:    th.Tp,
		Td:    th.Td,
		Mode:  mode,
	})
	st.count(cDecide)
	if d.Switch {
		st.count(cSwitch)
	}
	return decideResult{seconds: sec, d: d, tp: th.Tp, td: th.Td, gen: lm.gen}, nil
}

// parsePolicyMode maps the wire names onto policy modes.
func parsePolicyMode(w http.ResponseWriter, name string) (policy.Mode, bool) {
	switch name {
	case "", "delay", "delay-driven":
		return policy.ModeDelay, true
	case "power", "power-driven":
		return policy.ModePower, true
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown mode %q (want \"delay\" or \"power\")", name))
		return 0, false
	}
}

// --- /v1/simulate ----------------------------------------------------------

// maxSimulatedReading bounds the reading window a request may ask the
// simulator to run.
const maxSimulatedReading = time.Hour

type simulateRequest struct {
	// Page is a benchmark page name (see eabench -list / webpage package).
	Page string `json:"page"`
	// Mode is "original" or "energy-aware" (default).
	Mode string `json:"mode"`
	// Radio is the radio profile the simulated phone runs ("umts", "lte",
	// "nr"); empty means "umts".
	Radio string `json:"radio"`
	// ReadingS is the simulated reading window after the final display.
	ReadingS float64 `json:"reading_s"`
	// Channel optionally names a built-in channel scenario (see
	// channel.Scenarios) the simulated load runs under; empty means the
	// fixed ideal link.
	Channel string `json:"channel"`
}

type simulateResponse struct {
	Page              string  `json:"page"`
	Mode              string  `json:"mode"`
	Radio             string  `json:"radio"`
	Channel           string  `json:"channel,omitempty"`
	LoadSeconds       float64 `json:"load_s"`
	FirstDisplayS     float64 `json:"first_display_s"`
	TransmissionS     float64 `json:"transmission_s"`
	LoadEnergyJ       float64 `json:"load_energy_j"`
	EnergyWithReading float64 `json:"energy_with_reading_j"`
	ReadingEnergyJ    float64 `json:"reading_energy_j"`
}

// simulateCore loads the page and runs the requested reading window. Without
// a channel the session comes from the zero-alloc pool and returns to it only
// after a clean run; an errored or panicked simulation drops it instead of
// recycling unknown state. Channel-shaped requests build a fresh session —
// the pools stay homogeneous (fixed ideal link) so a scenario request can
// never leave shaped state behind for the next caller.
func (s *Server) simulateCore(page *webpage.Page, mode browser.Mode, radio string, sched *channel.Schedule, reading time.Duration) (simulateResponse, error) {
	var sess *experiments.Session
	var pool *experiments.SessionPool
	if sched == nil {
		var err error
		if pool, err = s.pool(mode, radio); err != nil {
			return simulateResponse{}, err
		}
		if sess, err = pool.Get(); err != nil {
			return simulateResponse{}, err
		}
	} else {
		spec, err := rrc.ProfileSpec(radio)
		if err != nil {
			return simulateResponse{}, err
		}
		if sess, err = experiments.New(mode,
			experiments.WithRadioModel(spec),
			experiments.WithChannel(sched)); err != nil {
			return simulateResponse{}, err
		}
	}
	res, err := sess.LoadToEnd(page)
	if err != nil {
		return simulateResponse{}, fmt.Errorf("serve: simulate %s: %w", page.Name, err)
	}
	energyAtFinal := sess.Radio.EnergyJ() + res.CPUEnergyJ
	if reading > 0 {
		sess.Clock.RunFor(reading)
	}
	total := sess.Radio.EnergyJ() + res.CPUEnergyJ
	sess.Engine.CloseLedger()
	out := simulateResponse{
		Page:              page.Name,
		Mode:              mode.String(),
		Radio:             radio,
		LoadSeconds:       res.FinalDisplayAt.Seconds(),
		FirstDisplayS:     res.FirstDisplayAt.Seconds(),
		TransmissionS:     res.TransmissionTime.Seconds(),
		LoadEnergyJ:       obs.Round6(res.TotalEnergyJ()),
		EnergyWithReading: obs.Round6(total),
		ReadingEnergyJ:    obs.Round6(total - energyAtFinal),
	}
	if sched != nil {
		out.Channel = sched.Name()
	}
	s.stripes[0].count(cSimulate)
	if pool != nil {
		pool.Put(sess)
	}
	return out, nil
}

// parseChannel validates an optional channel scenario name. Unknown names
// answer 400 with the valid-name list, like parseRadio.
func parseChannel(w http.ResponseWriter, name string) (*channel.Schedule, bool) {
	if name == "" {
		return nil, true
	}
	sched, err := channel.ScenarioSchedule(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	return sched, true
}

// parseBrowserMode maps the wire names onto browser modes.
func parseBrowserMode(w http.ResponseWriter, name string) (browser.Mode, bool) {
	switch name {
	case "", "energy-aware":
		return browser.ModeEnergyAware, true
	case "original":
		return browser.ModeOriginal, true
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown mode %q (want \"original\" or \"energy-aware\")", name))
		return 0, false
	}
}

// pageByName resolves and caches a benchmark page (generation is pure CPU;
// the cache makes repeated requests cheap). The cache is copy-on-write: a
// lookup is one atomic load, and only a miss takes the writer lock to swap
// in a grown copy of the map.
func (s *Server) pageByName(name string) (*webpage.Page, error) {
	if p, ok := (*s.pages.Load())[name]; ok {
		return p, nil
	}
	s.pagesMu.Lock()
	defer s.pagesMu.Unlock()
	cur := *s.pages.Load()
	if p, ok := cur[name]; ok {
		return p, nil
	}
	p, err := experiments.PageByName(name)
	if err != nil {
		return nil, err
	}
	next := make(map[string]*webpage.Page, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = p
	s.pages.Store(&next)
	return p, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req simulateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	mode, ok := parseBrowserMode(w, req.Mode)
	if !ok {
		return
	}
	radio, ok := parseRadio(w, req.Radio)
	if !ok {
		return
	}
	sched, ok := parseChannel(w, req.Channel)
	if !ok {
		return
	}
	if math.IsNaN(req.ReadingS) || req.ReadingS < 0 || req.ReadingS > maxSimulatedReading.Seconds() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("reading_s must be in [0, %v]", maxSimulatedReading.Seconds()))
		return
	}
	page, err := s.pageByName(req.Page)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	reading := time.Duration(req.ReadingS * float64(time.Second))
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var res simulateResponse
	var coreErr error
	if err := s.submit(ctx, func() { res, coreErr = s.simulateCore(page, mode, radio, sched, reading) }); err != nil {
		s.writeWorkError(w, err)
		return
	}
	if coreErr != nil {
		s.writeWorkError(w, coreErr)
		return
	}
	s.stripes[0].observe(hSimulate, start)
	writeJSON(w, http.StatusOK, res)
}

// --- health, metrics, admin ------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		if s.model.current() == nil {
			_, _ = io.WriteString(w, "not ready: no model loaded\n")
		} else {
			_, _ = io.WriteString(w, "not ready: shutting down\n")
		}
		return
	}
	_, _ = io.WriteString(w, "ready\n")
}

// ModelStatus describes the serving model in the metrics snapshot.
type ModelStatus struct {
	Ready          bool   `json:"ready"`
	Path           string `json:"path,omitempty"`
	Generation     uint64 `json:"generation"`
	Trees          int    `json:"trees,omitempty"`
	LoadedAtUnixMS int64  `json:"loaded_at_unix_ms,omitempty"`
	Reloads        uint64 `json:"reloads"`
	ReloadFailures uint64 `json:"reload_failures"`
}

// RadioStatus surfaces the radio-backend registry in the metrics snapshot:
// the profile new simulations default to and every name a request may ask
// for.
type RadioStatus struct {
	DefaultProfile string   `json:"default_profile"`
	Profiles       []string `json:"profiles"`
}

// Metrics is the /metrics document: the service gauges the soak harness and
// operators watch, plus the obs counters/histograms snapshot.
type Metrics struct {
	UptimeSeconds float64     `json:"uptime_s"`
	QueueDepth    int         `json:"queue_depth"`
	QueueCapacity int         `json:"queue_capacity"`
	InFlight      int64       `json:"in_flight"`
	Requests      uint64      `json:"requests"`
	Rejects       uint64      `json:"rejects"`
	Panics        uint64      `json:"panics"`
	Model         ModelStatus `json:"model"`
	Radio         RadioStatus `json:"radio"`
	Obs           obs.Metrics `json:"obs"`
}

// MetricsSnapshot assembles the current metrics document.
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		InFlight:      s.inFlight.Load(),
		Requests:      s.requests.Load(),
		Rejects:       s.rejects.Load(),
		Panics:        s.panics.Load(),
		Radio: RadioStatus{
			DefaultProfile: experiments.DefaultRadioSpec().Profile(),
			Profiles:       rrc.Profiles(),
		},
	}
	if !s.startedAt.IsZero() {
		m.UptimeSeconds = time.Since(s.startedAt).Seconds()
	}
	m.Model.ReloadFailures = s.model.failures.Load()
	if lm := s.model.current(); lm != nil {
		m.Model.Ready = s.Ready()
		m.Model.Path = lm.path
		m.Model.Generation = lm.gen
		m.Model.Trees = lm.pred.NumTrees()
		m.Model.LoadedAtUnixMS = lm.loadedAt.UnixMilli()
		m.Model.Reloads = lm.gen - 1
	}
	m.Obs = s.obsSnapshot()
	return m
}

// WriteMetrics writes the metrics document as indented JSON — the shutdown
// flush path for cmd/easerd.
func (s *Server) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.MetricsSnapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

type reloadResponse struct {
	Generation uint64 `json:"generation"`
	Trees      int    `json:"trees,omitempty"`
	Error      string `json:"error,omitempty"`
}

// handleReload swaps in a revalidated model. It runs on the admin plane —
// not through the worker queue — so operators can still reload a saturated
// server.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	gen, err := s.Reload()
	if err != nil {
		// The old model (generation gen) is still serving: reloads roll
		// back, they do not break the service.
		writeJSON(w, http.StatusInternalServerError, reloadResponse{
			Generation: gen,
			Error:      err.Error(),
		})
		return
	}
	resp := reloadResponse{Generation: gen}
	if lm := s.model.current(); lm != nil {
		resp.Trees = lm.pred.NumTrees()
	}
	writeJSON(w, http.StatusOK, resp)
}
